// Command mcsim runs one parallel benchmark on one (or every) multicore
// design of Figures 9-10 and prints timing, energy and coherence traffic.
// The design sweep fans out on the worker pool (-j) with bit-identical
// results at any worker count.
//
// Exit codes: 0 on success, 1 on runtime errors (including failed cells
// under -keep-going), 2 on flag/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "mcsim:", msg)
	flag.Usage()
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "mcsim:", err)
	os.Exit(1)
}

func main() {
	bench := flag.String("bench", "Fft", "parallel benchmark name")
	instrs := flag.Uint64("instrs", 600_000, "total parallel work in instructions")
	warm := flag.Uint64("warmup", 30_000, "warmup instructions per core")
	phases := flag.Int("phases", 4, "barrier-delimited phases")
	seed := flag.Int64("seed", 42, "trace seed")
	workers := flag.Int("j", 0, "worker count for the design sweep (0 = GOMAXPROCS); results are identical at any value")
	keepGoing := flag.Bool("keep-going", false, "complete the sweep when cells fail; failed cells print ERR and the exit code is 1")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *instrs == 0 {
		usageErr("-instrs must be > 0")
	}
	if *warm == 0 {
		usageErr("-warmup must be > 0")
	}
	if *phases <= 0 {
		usageErr("-phases must be > 0")
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		usageErr(err.Error())
	}
	suite, err := config.Derive(tech.N22())
	if err != nil {
		die(err)
	}
	opt := multicore.Options{TotalInstrs: *instrs, WarmupPerCore: *warm, Phases: *phases, Seed: *seed, Workers: *workers, KeepGoing: *keepGoing}
	f, err := experiments.Fig9With(suite, []trace.Profile{prof}, opt)
	if err != nil {
		die(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcores\tf(GHz)\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base\thops\tinvs\tforwards")
	for _, d := range config.MulticoreDesigns() {
		mc := f.Configs[d]
		if f.Errors[prof.Name][d] != nil {
			fmt.Fprintf(tw, "%s\t%d\t%.2f\tERR\tERR\tERR\tERR\tERR\tERR\tERR\n", mc.Name, mc.Cores, mc.PerCore.FreqGHz)
			continue
		}
		r := f.Runs[prof.Name][d]
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.1f\t%.2f\t%.1f\t%.2f\t%d\t%d\t%d\n",
			mc.Name, mc.Cores, mc.PerCore.FreqGHz,
			r.Seconds*1e6, f.Speedup[prof.Name][d], r.Energy.AvgWatts(), f.NormEnergy[prof.Name][d],
			r.MemStats.NoCHops, r.MemStats.Invalidations, r.MemStats.Forwards)
	}
	tw.Flush()
	if n := f.FailedCells(); n > 0 {
		fmt.Fprintf(os.Stderr, "mcsim: %d failed cell(s):\n", n)
		for _, d := range config.MulticoreDesigns() {
			if err := f.Errors[prof.Name][d]; err != nil {
				fmt.Fprintf(os.Stderr, "  %s/%s: %v\n", prof.Name, d, err)
			}
		}
		os.Exit(1)
	}
}
