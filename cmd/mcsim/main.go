// Command mcsim runs one parallel benchmark on one (or every) multicore
// design of Figures 9-10 and prints timing, energy and coherence traffic.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/multicore"
	"vertical3d/internal/tech"
	"vertical3d/internal/workload"
)

func main() {
	bench := flag.String("bench", "Fft", "parallel benchmark name")
	instrs := flag.Uint64("instrs", 600_000, "total parallel work in instructions")
	warm := flag.Uint64("warmup", 30_000, "warmup instructions per core")
	phases := flag.Int("phases", 4, "barrier-delimited phases")
	seed := flag.Int64("seed", 42, "trace seed")
	flag.Parse()

	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	suite, err := config.Derive(tech.N22())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mcs := config.DeriveMulticore(suite)
	opt := multicore.Options{TotalInstrs: *instrs, WarmupPerCore: *warm, Phases: *phases, Seed: *seed}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcores\tf(GHz)\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base\thops\tinvs\tforwards")
	var baseSec, baseJ float64
	for _, d := range config.MulticoreDesigns() {
		r, err := multicore.Run(mcs[d], prof, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if d == config.MCBase {
			baseSec, baseJ = r.Seconds, r.Energy.TotalJ()
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.1f\t%.2f\t%.1f\t%.2f\t%d\t%d\t%d\n",
			mcs[d].Name, mcs[d].Cores, mcs[d].PerCore.FreqGHz,
			r.Seconds*1e6, baseSec/r.Seconds, r.Energy.AvgWatts(), r.Energy.TotalJ()/baseJ,
			r.MemStats.NoCHops, r.MemStats.Invalidations, r.MemStats.Forwards)
	}
	tw.Flush()
}
