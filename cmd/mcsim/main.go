// Command mcsim runs one parallel benchmark on one (or every) multicore
// design of Figures 9-10 and prints timing, energy and coherence traffic.
// The design sweep fans out on the worker pool (-j) with bit-identical
// results at any worker count.
//
// Exit codes: 0 on success, 1 on runtime errors (including failed cells
// under -keep-going), 2 on flag/usage errors (including invalid -kernel
// values and uncreatable -cpuprofile/-memprofile paths), 130 when
// interrupted by SIGINT/SIGTERM (the sweep drains, the -journal-dir
// checkpoint flushes, and a re-run resumes from it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/guard"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
	"vertical3d/internal/profutil"
	"vertical3d/internal/shutdown"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/warm"
	"vertical3d/internal/workload"
)

func usageErr(msg string) int {
	fmt.Fprintln(os.Stderr, "mcsim:", msg)
	flag.Usage()
	return 2
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "mcsim:", err)
	return 1
}

// main delegates to run so deferred profile flushes execute on every exit
// path before os.Exit.
func main() {
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "Fft", "parallel benchmark name")
	instrs := flag.Uint64("instrs", 600_000, "total parallel work in instructions")
	warmup := flag.Uint64("warmup", 30_000, "warmup instructions per core")
	phases := flag.Int("phases", 4, "barrier-delimited phases")
	seed := flag.Int64("seed", 42, "trace seed")
	streamBase := flag.Int("stream-base", 0, "trace stream id of core 0 (core i uses stream-base+i); pick a base so streams cannot collide with single-core runs at the same seed")
	traceCache := flag.Bool("trace-cache", true, "record each core's instruction stream once and replay it in every design cell (identical results; disable to re-generate per cell)")
	traceDir := flag.String("trace-dir", "", "directory for packed .m3dtrace recordings, reused across runs (created if missing)")
	warmCache := flag.Bool("warm-cache", true, "capture the sampled per-core warmup once per (benchmark, topology, geometry) and restore it in every other design cell (identical results; implies nothing without -sample)")
	warmDir := flag.String("warm-dir", "", "directory for .m3dwarm warm-state snapshots, reused across runs (created if missing)")
	workers := flag.Int("j", 0, "worker count for the design sweep (0 = GOMAXPROCS); results are identical at any value")
	keepGoing := flag.Bool("keep-going", false, "complete the sweep when cells fail; failed cells print ERR and the exit code is 1")
	journalDir := flag.String("journal-dir", "", "checkpoint completed sweep cells to this write-ahead journal directory; a re-run with the same sizing resumes from it bit-identically (created if missing)")
	retries := flag.Int("retries", 1, "attempts per sweep cell; transient failures (panics, timeouts) retry with jittered exponential backoff")
	taskTimeout := flag.Duration("task-timeout", 0, "per-cell attempt deadline (0 = unbounded); timed-out cells count as failed (and retry under -retries > 1)")
	sweepTimeout := flag.Duration("sweep-timeout", 0, "whole-sweep deadline (0 = unbounded); undispatched cells report which deadline cut them off")
	kernelName := flag.String("kernel", uarch.KernelEvent.String(),
		"simulation kernel: "+strings.Join(uarch.KernelNames(), "|")+"; results are identical at either")
	sample := flag.Bool("sample", false, "fast-forward per-core warmup functionally (caches + predictor only); measured phases stay detailed — per-phase budgets are too small to sample soundly over a shared memory system")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *instrs == 0 {
		return usageErr("-instrs must be > 0")
	}
	if *warmup == 0 {
		return usageErr("-warmup must be > 0")
	}
	if *phases <= 0 {
		return usageErr("-phases must be > 0")
	}
	kernel, err := uarch.ParseKernel(*kernelName)
	if err != nil {
		return usageErr(err.Error())
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		return usageErr(err.Error())
	}
	if err := trace.SetCacheDir(*traceDir); err != nil {
		return usageErr(err.Error())
	}
	if err := warm.SetCacheDir(*warmDir); err != nil {
		return usageErr(err.Error())
	}
	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		return usageErr(err.Error())
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mcsim:", err)
		}
	}()

	// First SIGINT/SIGTERM stops dispatching cells and drains in-flight
	// work (flushing the journal); a second one force-exits. An
	// interrupted run exits 130 so scripts can distinguish it and resume.
	shut := shutdown.Install(context.Background(), shutdown.WithLog(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	}))
	defer shut.Stop()

	suite, err := config.Derive(tech.N22())
	if err != nil {
		return fail(err)
	}
	opt := multicore.Options{TotalInstrs: *instrs, WarmupPerCore: *warmup, Phases: *phases,
		Seed: *seed, StreamBase: *streamBase, NoTraceCache: !*traceCache, WarmCache: *warmCache,
		Workers: *workers, KeepGoing: *keepGoing, Kernel: kernel, Sample: *sample,
		Context:     shut.Context(),
		JournalDir:  *journalDir,
		TaskTimeout: *taskTimeout, SweepTimeout: *sweepTimeout,
		Retry:         parallel.Retry{Attempts: *retries},
		WatchdogGrace: 30 * time.Second,
		WatchdogLog: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
		}}
	f, err := experiments.Fig9With(suite, []trace.Profile{prof}, opt)
	if err != nil {
		return shut.ExitCode(fail(err))
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcores\tf(GHz)\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base\thops\tinvs\tforwards")
	for _, d := range config.MulticoreDesigns() {
		mc := f.Configs[d]
		if f.Errors[prof.Name][d] != nil {
			fmt.Fprintf(tw, "%s\t%d\t%.2f\tERR\tERR\tERR\tERR\tERR\tERR\tERR\n", mc.Name, mc.Cores, mc.PerCore.FreqGHz)
			continue
		}
		r := f.Runs[prof.Name][d]
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.1f\t%.2f\t%.1f\t%.2f\t%d\t%d\t%d\n",
			mc.Name, mc.Cores, mc.PerCore.FreqGHz,
			r.Seconds*1e6, f.Speedup[prof.Name][d], r.Energy.AvgWatts(), f.NormEnergy[prof.Name][d],
			r.MemStats.NoCHops, r.MemStats.Invalidations, r.MemStats.Forwards)
	}
	tw.Flush()
	if n := trace.CacheStats().SaveErrors; *traceDir != "" && n > 0 {
		fmt.Fprintf(os.Stderr, "mcsim: warning: %d trace recording(s) could not be saved to %s\n", n, *traceDir)
	}
	if n := warm.Stats().SaveErrors; *warmDir != "" && n > 0 {
		fmt.Fprintf(os.Stderr, "mcsim: warning: %d warm snapshot(s) could not be saved to %s\n", n, *warmDir)
	}
	if *journalDir != "" {
		experiments.RenderJournalStats(os.Stderr, f.Journal)
	}
	experiments.RenderHealth(os.Stderr, f.Health)
	if n := f.FailedCells(); n > 0 {
		fmt.Fprintf(os.Stderr, "mcsim: %d failed cell(s):\n", n)
		for _, d := range config.MulticoreDesigns() {
			if err := f.Errors[prof.Name][d]; err != nil {
				fmt.Fprintf(os.Stderr, "  %s/%s: [%s] %v\n", prof.Name, d, guard.Classify(err), err)
			}
		}
		return shut.ExitCode(1)
	}
	return shut.ExitCode(0)
}
