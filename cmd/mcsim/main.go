// Command mcsim runs one parallel benchmark on one (or every) multicore
// design of Figures 9-10 and prints timing, energy and coherence traffic.
// The design sweep fans out on the worker pool (-j) with bit-identical
// results at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

func main() {
	bench := flag.String("bench", "Fft", "parallel benchmark name")
	instrs := flag.Uint64("instrs", 600_000, "total parallel work in instructions")
	warm := flag.Uint64("warmup", 30_000, "warmup instructions per core")
	phases := flag.Int("phases", 4, "barrier-delimited phases")
	seed := flag.Int64("seed", 42, "trace seed")
	workers := flag.Int("j", 0, "worker count for the design sweep (0 = GOMAXPROCS); results are identical at any value")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	suite, err := config.Derive(tech.N22())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt := multicore.Options{TotalInstrs: *instrs, WarmupPerCore: *warm, Phases: *phases, Seed: *seed, Workers: *workers}
	f, err := experiments.Fig9With(suite, []trace.Profile{prof}, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcores\tf(GHz)\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base\thops\tinvs\tforwards")
	for _, d := range config.MulticoreDesigns() {
		mc := f.Configs[d]
		r := f.Runs[prof.Name][d]
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.1f\t%.2f\t%.1f\t%.2f\t%d\t%d\t%d\n",
			mc.Name, mc.Cores, mc.PerCore.FreqGHz,
			r.Seconds*1e6, f.Speedup[prof.Name][d], r.Energy.AvgWatts(), f.NormEnergy[prof.Name][d],
			r.MemStats.NoCHops, r.MemStats.Invalidations, r.MemStats.Forwards)
	}
	tw.Flush()
}
