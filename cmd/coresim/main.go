// Command coresim runs one benchmark on one (or every) single-core design
// and prints IPC, runtime, power and the event statistics — the per-cell
// view behind Figures 6 and 7.
//
// Exit codes: 0 on success, 1 on runtime errors (including failed cells
// under -keep-going), 2 on flag/usage errors (including invalid -kernel
// values and uncreatable -cpuprofile/-memprofile paths), 130 when
// interrupted by SIGINT/SIGTERM (the sweep drains, the -journal-dir
// checkpoint flushes, and a re-run resumes from it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/guard"
	"vertical3d/internal/parallel"
	"vertical3d/internal/profutil"
	"vertical3d/internal/shutdown"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/warm"
	"vertical3d/internal/workload"
)

func usageErr(msg string) int {
	fmt.Fprintln(os.Stderr, "coresim:", msg)
	flag.Usage()
	return 2
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "coresim:", err)
	return 1
}

// main delegates to run so deferred profile flushes execute on every exit
// path before os.Exit.
func main() {
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "Gamess", "benchmark name (see workload.Names)")
	warmup := flag.Uint64("warmup", 80_000, "warmup instructions")
	measure := flag.Uint64("measure", 200_000, "measured instructions")
	seed := flag.Int64("seed", 42, "trace seed")
	stream := flag.Int("stream", 0, "trace stream id (multicore core i uses stream i; pick a distinct id to avoid replaying a multicore per-core stream)")
	traceCache := flag.Bool("trace-cache", true, "record the instruction stream once and replay it in every design cell (identical results; disable to re-generate per cell)")
	traceDir := flag.String("trace-dir", "", "directory for packed .m3dtrace recordings, reused across runs (created if missing)")
	warmCache := flag.Bool("warm-cache", true, "checkpoint the sampled fast-forward once per (benchmark, geometry) and restore it in every other design cell (identical results; implies nothing without -sample)")
	warmDir := flag.String("warm-dir", "", "directory for .m3dwarm warm-state snapshots, reused across runs (created if missing)")
	workers := flag.Int("j", 0, "worker count for the design sweep (0 = GOMAXPROCS); results are identical at any value")
	keepGoing := flag.Bool("keep-going", false, "complete the sweep when cells fail; failed cells print ERR and the exit code is 1")
	journalDir := flag.String("journal-dir", "", "checkpoint completed sweep cells to this write-ahead journal directory; a re-run with the same sizing resumes from it bit-identically (created if missing)")
	retries := flag.Int("retries", 1, "attempts per sweep cell; transient failures (panics, timeouts) retry with jittered exponential backoff")
	taskTimeout := flag.Duration("task-timeout", 0, "per-cell attempt deadline (0 = unbounded); timed-out cells count as failed (and retry under -retries > 1)")
	sweepTimeout := flag.Duration("sweep-timeout", 0, "whole-sweep deadline (0 = unbounded); undispatched cells report which deadline cut them off")
	kernelName := flag.String("kernel", uarch.KernelEvent.String(),
		"simulation kernel: "+strings.Join(uarch.KernelNames(), "|")+"; results are identical at either")
	sample := flag.Bool("sample", false, "interval sampling: fast-forward/warm/measure phases per interval, extrapolated Stats (CPI error ≤2%; ≈8-18x faster on the reference kernel, ≈3.5-10x on event); sampled cells journal separately from full cells")
	sampleInterval := flag.Uint64("sample-interval", 0, "sampling interval length in instructions (0 = default 100000); implies nothing without -sample")
	sampleWarmup := flag.Uint64("sample-warmup", 0, "detailed pipeline-warm instructions before each measured window (0 = default 1000)")
	sampleUnit := flag.Uint64("sample-unit", 0, "measured-window length in instructions (0 = default 4000)")
	sampleBudget := flag.Float64("sample-error-budget", 0, "warm-phase oracle bound for sampled cells: relative CPI deviation above this budget re-runs the cell under full simulation (0 = default 0.5, negative disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return 0
	}

	if *measure == 0 {
		return usageErr("-measure must be > 0")
	}
	kernel, err := uarch.ParseKernel(*kernelName)
	if err != nil {
		return usageErr(err.Error())
	}
	sp, err := uarch.SampleParamsFrom(*sample, *sampleInterval, *sampleWarmup, *sampleUnit)
	if err != nil {
		return usageErr(err.Error())
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		return usageErr(err.Error())
	}
	if err := trace.SetCacheDir(*traceDir); err != nil {
		return usageErr(err.Error())
	}
	if err := warm.SetCacheDir(*warmDir); err != nil {
		return usageErr(err.Error())
	}
	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		return usageErr(err.Error())
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "coresim:", err)
		}
	}()

	// First SIGINT/SIGTERM stops dispatching cells and drains in-flight
	// work (flushing the journal); a second one force-exits. An
	// interrupted run exits 130 so scripts can distinguish it and resume.
	shut := shutdown.Install(context.Background(), shutdown.WithLog(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "coresim: "+format+"\n", args...)
	}))
	defer shut.Stop()

	suite, err := config.Derive(tech.N22())
	if err != nil {
		return fail(err)
	}
	opt := experiments.RunOptions{Warmup: *warmup, Measure: *measure, Seed: *seed,
		StreamID: *stream, NoTraceCache: !*traceCache, WarmCache: *warmCache,
		Workers: *workers, KeepGoing: *keepGoing, Kernel: kernel,
		Sample: *sample, SampleParams: sp, SampleErrorBudget: *sampleBudget,
		Context:     shut.Context(),
		JournalDir:  *journalDir,
		TaskTimeout: *taskTimeout, SweepTimeout: *sweepTimeout,
		Retry:         parallel.Retry{Attempts: *retries},
		WatchdogGrace: 30 * time.Second,
		WatchdogLog: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "coresim: "+format+"\n", args...)
		}}
	f, err := experiments.Fig6With(suite, []trace.Profile{prof}, opt)
	if err != nil {
		return shut.ExitCode(fail(err))
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tf(GHz)\tIPC\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base\tmispred%\tL1 load miss%")
	for _, d := range config.SingleCoreDesigns() {
		if f.Errors[prof.Name][d] != nil {
			fmt.Fprintf(tw, "%s\t%.2f\tERR\tERR\tERR\tERR\tERR\tERR\tERR\n", d, suite.Configs[d].FreqGHz)
			continue
		}
		r := f.Runs[prof.Name][d]
		lm := float64(r.Stats.LoadL1Misses) / float64(r.Stats.LoadL1Hits+r.Stats.LoadL1Misses) * 100
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%.2f\t%.1f\t%.2f\t%.1f\t%.1f\n",
			d, suite.Configs[d].FreqGHz, r.IPC, r.Seconds*1e6,
			f.Speedup[prof.Name][d], r.Energy.AvgWatts(), f.NormEnergy[prof.Name][d],
			r.Stats.MispredictRate()*100, lm)
	}
	tw.Flush()
	if n := trace.CacheStats().SaveErrors; *traceDir != "" && n > 0 {
		fmt.Fprintf(os.Stderr, "coresim: warning: %d trace recording(s) could not be saved to %s\n", n, *traceDir)
	}
	if n := warm.Stats().SaveErrors; *warmDir != "" && n > 0 {
		fmt.Fprintf(os.Stderr, "coresim: warning: %d warm snapshot(s) could not be saved to %s\n", n, *warmDir)
	}
	if *journalDir != "" {
		experiments.RenderJournalStats(os.Stderr, f.Journal)
	}
	experiments.RenderHealth(os.Stderr, f.Health)
	if n := f.FailedCells(); n > 0 {
		fmt.Fprintf(os.Stderr, "coresim: %d failed cell(s):\n", n)
		for _, d := range config.SingleCoreDesigns() {
			if err := f.Errors[prof.Name][d]; err != nil {
				fmt.Fprintf(os.Stderr, "  %s/%s: [%s] %v\n", prof.Name, d, guard.Classify(err), err)
			}
		}
		return shut.ExitCode(1)
	}
	return shut.ExitCode(0)
}
