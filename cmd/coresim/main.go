// Command coresim runs one benchmark on one (or every) single-core design
// and prints IPC, runtime, power and the event statistics — the per-cell
// view behind Figures 6 and 7.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/parallel"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

func main() {
	bench := flag.String("bench", "Gamess", "benchmark name (see workload.Names)")
	warm := flag.Uint64("warmup", 80_000, "warmup instructions")
	measure := flag.Uint64("measure", 200_000, "measured instructions")
	seed := flag.Int64("seed", 42, "trace seed")
	workers := flag.Int("j", 0, "worker count for the design sweep (0 = GOMAXPROCS); results are identical at any value")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	suite, err := config.Derive(tech.N22())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt := experiments.RunOptions{Warmup: *warm, Measure: *measure, Seed: *seed, Workers: *workers}
	f, err := experiments.Fig6With(suite, []trace.Profile{prof}, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tf(GHz)\tIPC\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base\tmispred%\tL1 load miss%")
	for _, d := range config.SingleCoreDesigns() {
		r := f.Runs[prof.Name][d]
		lm := float64(r.Stats.LoadL1Misses) / float64(r.Stats.LoadL1Hits+r.Stats.LoadL1Misses) * 100
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%.2f\t%.1f\t%.2f\t%.1f\t%.1f\n",
			d, suite.Configs[d].FreqGHz, r.IPC, r.Seconds*1e6,
			f.Speedup[prof.Name][d], r.Energy.AvgWatts(), f.NormEnergy[prof.Name][d],
			r.Stats.MispredictRate()*100, lm)
	}
	tw.Flush()
}
