// Command coresim runs one benchmark on one (or every) single-core design
// and prints IPC, runtime, power and the event statistics — the per-cell
// view behind Figures 6 and 7.
//
// Exit codes: 0 on success, 1 on runtime errors (including failed cells
// under -keep-going), 2 on flag/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/parallel"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "coresim:", msg)
	flag.Usage()
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "coresim:", err)
	os.Exit(1)
}

func main() {
	bench := flag.String("bench", "Gamess", "benchmark name (see workload.Names)")
	warm := flag.Uint64("warmup", 80_000, "warmup instructions")
	measure := flag.Uint64("measure", 200_000, "measured instructions")
	seed := flag.Int64("seed", 42, "trace seed")
	workers := flag.Int("j", 0, "worker count for the design sweep (0 = GOMAXPROCS); results are identical at any value")
	keepGoing := flag.Bool("keep-going", false, "complete the sweep when cells fail; failed cells print ERR and the exit code is 1")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	if *measure == 0 {
		usageErr("-measure must be > 0")
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		usageErr(err.Error())
	}
	suite, err := config.Derive(tech.N22())
	if err != nil {
		die(err)
	}
	opt := experiments.RunOptions{Warmup: *warm, Measure: *measure, Seed: *seed, Workers: *workers, KeepGoing: *keepGoing}
	f, err := experiments.Fig6With(suite, []trace.Profile{prof}, opt)
	if err != nil {
		die(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tf(GHz)\tIPC\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base\tmispred%\tL1 load miss%")
	for _, d := range config.SingleCoreDesigns() {
		if f.Errors[prof.Name][d] != nil {
			fmt.Fprintf(tw, "%s\t%.2f\tERR\tERR\tERR\tERR\tERR\tERR\tERR\n", d, suite.Configs[d].FreqGHz)
			continue
		}
		r := f.Runs[prof.Name][d]
		lm := float64(r.Stats.LoadL1Misses) / float64(r.Stats.LoadL1Hits+r.Stats.LoadL1Misses) * 100
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%.2f\t%.1f\t%.2f\t%.1f\t%.1f\n",
			d, suite.Configs[d].FreqGHz, r.IPC, r.Seconds*1e6,
			f.Speedup[prof.Name][d], r.Energy.AvgWatts(), f.NormEnergy[prof.Name][d],
			r.Stats.MispredictRate()*100, lm)
	}
	tw.Flush()
	if n := f.FailedCells(); n > 0 {
		fmt.Fprintf(os.Stderr, "coresim: %d failed cell(s):\n", n)
		for _, d := range config.SingleCoreDesigns() {
			if err := f.Errors[prof.Name][d]; err != nil {
				fmt.Fprintf(os.Stderr, "  %s/%s: %v\n", prof.Name, d, err)
			}
		}
		os.Exit(1)
	}
}
