// Command coresim runs one benchmark on one (or every) single-core design
// and prints IPC, runtime, power and the event statistics — the per-cell
// view behind Figures 6 and 7.
//
// Exit codes: 0 on success, 1 on runtime errors (including failed cells
// under -keep-going), 2 on flag/usage errors (including invalid -kernel
// values and uncreatable -cpuprofile/-memprofile paths).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/parallel"
	"vertical3d/internal/profutil"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/workload"
)

func usageErr(msg string) int {
	fmt.Fprintln(os.Stderr, "coresim:", msg)
	flag.Usage()
	return 2
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "coresim:", err)
	return 1
}

// main delegates to run so deferred profile flushes execute on every exit
// path before os.Exit.
func main() {
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "Gamess", "benchmark name (see workload.Names)")
	warm := flag.Uint64("warmup", 80_000, "warmup instructions")
	measure := flag.Uint64("measure", 200_000, "measured instructions")
	seed := flag.Int64("seed", 42, "trace seed")
	stream := flag.Int("stream", 0, "trace stream id (multicore core i uses stream i; pick a distinct id to avoid replaying a multicore per-core stream)")
	traceCache := flag.Bool("trace-cache", true, "record the instruction stream once and replay it in every design cell (identical results; disable to re-generate per cell)")
	traceDir := flag.String("trace-dir", "", "directory for packed .m3dtrace recordings, reused across runs (created if missing)")
	workers := flag.Int("j", 0, "worker count for the design sweep (0 = GOMAXPROCS); results are identical at any value")
	keepGoing := flag.Bool("keep-going", false, "complete the sweep when cells fail; failed cells print ERR and the exit code is 1")
	kernelName := flag.String("kernel", uarch.KernelEvent.String(),
		"simulation kernel: "+strings.Join(uarch.KernelNames(), "|")+"; results are identical at either")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return 0
	}

	if *measure == 0 {
		return usageErr("-measure must be > 0")
	}
	kernel, err := uarch.ParseKernel(*kernelName)
	if err != nil {
		return usageErr(err.Error())
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		return usageErr(err.Error())
	}
	if err := trace.SetCacheDir(*traceDir); err != nil {
		return usageErr(err.Error())
	}
	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		return usageErr(err.Error())
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "coresim:", err)
		}
	}()

	suite, err := config.Derive(tech.N22())
	if err != nil {
		return fail(err)
	}
	opt := experiments.RunOptions{Warmup: *warm, Measure: *measure, Seed: *seed,
		StreamID: *stream, NoTraceCache: !*traceCache,
		Workers: *workers, KeepGoing: *keepGoing, Kernel: kernel}
	f, err := experiments.Fig6With(suite, []trace.Profile{prof}, opt)
	if err != nil {
		return fail(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tf(GHz)\tIPC\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base\tmispred%\tL1 load miss%")
	for _, d := range config.SingleCoreDesigns() {
		if f.Errors[prof.Name][d] != nil {
			fmt.Fprintf(tw, "%s\t%.2f\tERR\tERR\tERR\tERR\tERR\tERR\tERR\n", d, suite.Configs[d].FreqGHz)
			continue
		}
		r := f.Runs[prof.Name][d]
		lm := float64(r.Stats.LoadL1Misses) / float64(r.Stats.LoadL1Hits+r.Stats.LoadL1Misses) * 100
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%.2f\t%.1f\t%.2f\t%.1f\t%.1f\n",
			d, suite.Configs[d].FreqGHz, r.IPC, r.Seconds*1e6,
			f.Speedup[prof.Name][d], r.Energy.AvgWatts(), f.NormEnergy[prof.Name][d],
			r.Stats.MispredictRate()*100, lm)
	}
	tw.Flush()
	if n := trace.CacheStats().SaveErrors; *traceDir != "" && n > 0 {
		fmt.Fprintf(os.Stderr, "coresim: warning: %d trace recording(s) could not be saved to %s\n", n, *traceDir)
	}
	if n := f.FailedCells(); n > 0 {
		fmt.Fprintf(os.Stderr, "coresim: %d failed cell(s):\n", n)
		for _, d := range config.SingleCoreDesigns() {
			if err := f.Errors[prof.Name][d]; err != nil {
				fmt.Fprintf(os.Stderr, "  %s/%s: %v\n", prof.Name, d, err)
			}
		}
		return 1
	}
	return 0
}
