// Command sramstudy explores SRAM/CAM partitioning across the core's storage
// structures, reproducing Tables 3-6 and 8 of the paper. With -compare it
// prints the paper's published number next to each modelled one.
//
// Exit codes: 0 on success, 1 on runtime errors (including rows that failed
// under -keep-going), 2 on flag/usage errors, 130 when interrupted by
// SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vertical3d/internal/core"
	"vertical3d/internal/experiments"
	"vertical3d/internal/guard"
	"vertical3d/internal/parallel"
	"vertical3d/internal/shutdown"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

// keepGoing degrades per-row model failures from a fatal exit to an ERR row;
// failures counts them so main can still exit non-zero. shut is the signal
// layer mapping interrupted runs onto exit 130.
var (
	keepGoing bool
	failures  int
	shut      *shutdown.Handler
)

func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "sramstudy:", msg)
	flag.Usage()
	os.Exit(2)
}

func exitCode(code int) int {
	if shut != nil {
		return shut.ExitCode(code)
	}
	return code
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "sramstudy: [%s] %v\n", guard.Classify(err), err)
	os.Exit(exitCode(1))
}

// fail reports a row-level error: under -keep-going it records it and
// returns (so the caller renders an ERR row); otherwise it exits 1.
func fail(err error) {
	if !keepGoing {
		die(err)
	}
	failures++
	fmt.Fprintf(os.Stderr, "sramstudy: [%s] %v\n", guard.Classify(err), err)
}

func main() {
	table := flag.String("table", "all", "which table to print: 3, 4, 5, 6, 8 or all")
	compare := flag.Bool("compare", true, "print paper values next to modelled values")
	workers := flag.Int("j", 0, "worker count for the partition sweeps (0 = GOMAXPROCS); results are identical at any value")
	kg := flag.Bool("keep-going", false, "complete the tables when rows fail; failed rows print ERR and the exit code is 1")
	journalDir := flag.String("journal-dir", "", "checkpoint completed table cells to this write-ahead journal directory; a re-run merges them bit-identically, and an unusable directory degrades to unjournaled execution (reported below the tables)")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)
	keepGoing = *kg

	// SIGINT/SIGTERM maps the final status onto exit 130; the tables here
	// are sub-second, so there is no dispatch to drain.
	shut = shutdown.Install(context.Background(), shutdown.WithLog(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sramstudy: "+format+"\n", args...)
	}))

	n := tech.N22()
	// With -journal-dir, tables 3-6 route through the journaled experiments
	// layer (the same code path m3dcli uses): completed cells checkpoint as
	// they finish, and an unusable journal degrades the run to unjournaled
	// execution — reported via the Health block — instead of aborting it.
	strat := func(st sram.Strategy, paper map[string]map[string]core.PaperRow) {
		if *journalDir != "" {
			strategyTableJournaled(st, *compare, *journalDir)
			return
		}
		strategyTable(n, st, paper, *compare)
	}
	t6 := func() {
		if *journalDir != "" {
			table6Journaled(*compare, *journalDir)
			return
		}
		table6(n, *compare)
	}
	switch *table {
	case "3":
		strat(sram.BitPart, core.PaperTable3)
	case "4":
		strat(sram.WordPart, core.PaperTable4)
	case "5":
		strat(sram.PortPart, core.PaperTable5)
	case "6":
		t6()
	case "8":
		table8(n, *compare)
	case "all":
		fmt.Println("== Table 3: bit partitioning ==")
		strat(sram.BitPart, core.PaperTable3)
		fmt.Println("\n== Table 4: word partitioning ==")
		strat(sram.WordPart, core.PaperTable4)
		fmt.Println("\n== Table 5: port partitioning ==")
		strat(sram.PortPart, core.PaperTable5)
		fmt.Println("\n== Table 6: best iso-layer partition per structure ==")
		t6()
		fmt.Println("\n== Table 8: hetero-layer partitioning ==")
		table8(n, *compare)
	default:
		usageErr(fmt.Sprintf("unknown table %q", *table))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "sramstudy: %d row(s) failed (rendered as ERR above)\n", failures)
		os.Exit(exitCode(1))
	}
	os.Exit(exitCode(0))
}

func pct(v float64) string { return fmt.Sprintf("%.0f", v*100) }

func strategyTable(n *tech.Node, st sram.Strategy, paper map[string]map[string]core.PaperRow, compare bool) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Struct\tVia\tLatency%\tEnergy%\tFootprint%")
	for _, name := range []string{"RF", "BPT"} {
		stc, err := core.ByName(name)
		if err != nil {
			fail(err)
			fmt.Fprintf(w, "%s\t-\tERR\tERR\tERR\n", name)
			continue
		}
		if st == sram.PortPart && stc.Spec.Ports() < 2 {
			fmt.Fprintf(w, "%s\t-\tn/a (single-ported)\t\t\n", name)
			continue
		}
		for _, via := range []struct {
			label string
			v     tech.Via
		}{{"M3D", tech.MIV()}, {"TSV3D", tech.TSVAggressive()}} {
			c, err := core.Evaluate(n, stc, sram.Iso(st, via.v))
			if err != nil {
				fail(err)
				fmt.Fprintf(w, "%s\t%s\tERR\tERR\tERR\n", name, via.label)
				continue
			}
			row := fmt.Sprintf("%s\t%s\t%s\t%s\t%s", name, via.label,
				pct(c.Reduction.Latency), pct(c.Reduction.Energy), pct(c.Reduction.Footprint))
			if compare {
				if p, ok := paper[via.label][name]; ok {
					row += fmt.Sprintf("\t(paper: %.0f/%.0f/%.0f)", p.Latency, p.Energy, p.Footprint)
				}
			}
			fmt.Fprintln(w, row)
		}
	}
	w.Flush()
}

// strategyTableJournaled prints one strategy table through the journaled
// experiments layer (see -journal-dir): fail-fast rather than per-row ERR,
// with the degradation ladder reported below the table.
func strategyTableJournaled(st sram.Strategy, compare bool, dir string) {
	rows, h, err := experiments.StrategyTableHealth(shut.Context(), st, dir)
	if err != nil {
		fail(err)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Struct\tVia\tLatency%\tEnergy%\tFootprint%")
	for _, r := range rows {
		line := fmt.Sprintf("%s\t%s\t%.0f\t%.0f\t%.0f", r.Structure, r.Via, r.Latency, r.Energy, r.Footprint)
		if compare && r.HasPaper {
			line += fmt.Sprintf("\t(paper: %.0f/%.0f/%.0f)", r.Paper.Latency, r.Paper.Energy, r.Paper.Footprint)
		}
		fmt.Fprintln(w, line)
	}
	w.Flush()
	experiments.RenderHealth(os.Stderr, h)
}

func table6(n *tech.Node, compare bool) {
	m3d, err := core.SelectAll(n, core.IsoLayer, tech.MIV())
	if err != nil {
		fail(err)
		return
	}
	tsv, err := core.SelectAll(n, core.IsoLayer, tech.TSVAggressive())
	if err != nil {
		fail(err)
		return
	}
	renderTable6(m3d, tsv, compare)
}

// table6Journaled is table6 through the journaled experiments layer.
func table6Journaled(compare bool, dir string) {
	m3d, tsv, h, err := experiments.Table6Health(shut.Context(), dir)
	if err != nil {
		fail(err)
		return
	}
	renderTable6(m3d, tsv, compare)
	experiments.RenderHealth(os.Stderr, h)
}

func renderTable6(m3d, tsv []core.Choice, compare bool) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Struct\tM3D best\tLat%\tEner%\tFoot%\tTSV best\tLat%\tEner%\tFoot%")
	for i := range m3d {
		name := m3d[i].Structure.Spec.Name
		row := fmt.Sprintf("%s\t%v\t%s\t%s\t%s\t%v\t%s\t%s\t%s", name,
			m3d[i].Strategy(), pct(m3d[i].Reduction.Latency), pct(m3d[i].Reduction.Energy), pct(m3d[i].Reduction.Footprint),
			tsv[i].Strategy(), pct(tsv[i].Reduction.Latency), pct(tsv[i].Reduction.Energy), pct(tsv[i].Reduction.Footprint))
		if compare {
			pm := core.PaperTable6M3D[name]
			pt := core.PaperTable6TSV[name]
			row += fmt.Sprintf("\t(paper M3D %s %.0f/%.0f/%.0f, TSV %s %.0f/%.0f/%.0f)",
				core.PaperTable6Strategy[name], pm.Latency, pm.Energy, pm.Footprint,
				core.PaperTable6StrategyTSV[name], pt.Latency, pt.Energy, pt.Footprint)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	fmt.Printf("min latency reduction (cycle-critical): %.1f%%\n",
		core.MinLatencyReduction(m3d, true)*100)
}

func table8(n *tech.Node, compare bool) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Struct\tStrategy\tLat%\tEner%\tFoot%")
	het, err := core.SelectAll(n, core.HeteroLayer, tech.MIV())
	if err != nil {
		fail(err)
		w.Flush()
		return
	}
	for _, c := range het {
		name := c.Structure.Spec.Name
		row := fmt.Sprintf("%s\t%v(bf=%.2f,up=%.1f)\t%s\t%s\t%s", name,
			c.Strategy(), c.Result.Partition.BottomFrac, c.Result.Partition.TopUpsize,
			pct(c.Reduction.Latency), pct(c.Reduction.Energy), pct(c.Reduction.Footprint))
		if compare {
			p := core.PaperTable8[name]
			row += fmt.Sprintf("\t(paper %.0f/%.0f/%.0f)", p.Latency, p.Energy, p.Footprint)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	fmt.Printf("min latency reduction (cycle-critical): %.1f%%\n",
		core.MinLatencyReduction(het, true)*100)
}
