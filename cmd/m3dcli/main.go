// Command m3dcli regenerates any table or figure of the paper:
//
//	m3dcli table1 table2 fig2 table3 table4 table5 table6 table7 table8
//	m3dcli logic table10 table11
//	m3dcli fig6 fig7 fig8 fig9 fig10
//	m3dcli all        # everything (figures use -quick sizing unless -full)
//
// Use -quick for fast, small simulations and -full for the benchmark-scale
// runs used in EXPERIMENTS.md.
//
// Exit codes: 0 on success, 1 on runtime errors (including failed sweep
// cells under -keep-going), 2 on flag/usage errors, 130 when interrupted
// by SIGINT/SIGTERM (sweeps drain, the -journal-dir checkpoint flushes,
// and a re-run resumes from it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vertical3d/internal/accel"
	"vertical3d/internal/clocktree"
	"vertical3d/internal/core"
	"vertical3d/internal/experiments"
	"vertical3d/internal/floorplan"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
	"vertical3d/internal/pdn"
	"vertical3d/internal/shutdown"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/warm"
)

// shut is the process-wide signal layer: installed at the top of main,
// consulted by die and the final exit so an interrupted run reports 130.
var shut *shutdown.Handler

func main() {
	quick := flag.Bool("quick", false, "small simulation sizes (fast, noisier)")
	full := flag.Bool("full", false, "benchmark-scale simulation sizes")
	workers := flag.Int("j", 0, "worker count for experiment sweeps (0 = GOMAXPROCS); results are identical at any value")
	keepGoing := flag.Bool("keep-going", false, "complete figure sweeps when cells fail; failed cells render as ERR and the exit code is 1")
	kernelName := flag.String("kernel", uarch.KernelEvent.String(),
		"simulation kernel: "+strings.Join(uarch.KernelNames(), "|")+"; results are identical at either")
	traceCache := flag.Bool("trace-cache", true, "record each workload's instruction stream once and replay it in every sweep cell (identical results; disable to re-generate per cell)")
	traceDir := flag.String("trace-dir", "", "directory for packed .m3dtrace recordings, reused across runs (created if missing)")
	warmCache := flag.Bool("warm-cache", true, "checkpoint sampled fast-forward state once per (benchmark, geometry) and restore it in every other sweep cell (identical results; implies nothing without -sample)")
	warmDir := flag.String("warm-dir", "", "directory for .m3dwarm warm-state snapshots, reused across runs (created if missing)")
	journalDir := flag.String("journal-dir", "", "checkpoint completed sweep cells to this write-ahead journal directory; a re-run with the same sizing resumes from it bit-identically (created if missing)")
	retries := flag.Int("retries", 1, "attempts per sweep cell; transient failures (panics, timeouts) retry with jittered exponential backoff")
	taskTimeout := flag.Duration("task-timeout", 0, "per-cell attempt deadline (0 = unbounded)")
	sweepTimeout := flag.Duration("sweep-timeout", 0, "whole-sweep deadline (0 = unbounded)")
	sample := flag.Bool("sample", false, "interval sampling for single-core sweeps (CPI error ≤2%; ≈8-18x faster on the reference kernel, ≈3.5-10x on event); multicore sweeps fast-forward warmup only. Sampled cells journal separately from full cells")
	sampleInterval := flag.Uint64("sample-interval", 0, "sampling interval length in instructions (0 = default 100000)")
	sampleWarmup := flag.Uint64("sample-warmup", 0, "detailed pipeline-warm instructions before each measured window (0 = default 1000)")
	sampleUnit := flag.Uint64("sample-unit", 0, "measured-window length in instructions (0 = default 4000)")
	sampleBudget := flag.Float64("sample-error-budget", 0, "warm-phase oracle bound for sampled cells: relative CPI deviation above this budget re-runs the cell under full simulation (0 = default 0.5, negative disables)")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	// First SIGINT/SIGTERM stops dispatching sweep cells and drains
	// in-flight work (flushing the journal); a second one force-exits.
	shut = shutdown.Install(context.Background(), shutdown.WithLog(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "m3dcli: "+format+"\n", args...)
	}))
	kernel, err := uarch.ParseKernel(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "m3dcli:", err)
		os.Exit(2)
	}
	if err := trace.SetCacheDir(*traceDir); err != nil {
		fmt.Fprintln(os.Stderr, "m3dcli:", err)
		os.Exit(2)
	}
	if err := warm.SetCacheDir(*warmDir); err != nil {
		fmt.Fprintln(os.Stderr, "m3dcli:", err)
		os.Exit(2)
	}
	sp, err := uarch.SampleParamsFrom(*sample, *sampleInterval, *sampleWarmup, *sampleUnit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "m3dcli:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: m3dcli [-quick|-full] <table1|table2|fig2|table3|table4|table5|table6|table7|table8|logic|lp|table10|table11|fig6|fig7|fig8|fig9|fig10|all>")
		os.Exit(2)
	}

	opt := experiments.DefaultRunOptions()
	mopt := multicore.DefaultOptions()
	if *quick {
		opt = experiments.QuickRunOptions()
		mopt.TotalInstrs = 80_000
		mopt.WarmupPerCore = 5_000
	}
	opt.Workers = *workers
	mopt.Workers = *workers
	opt.KeepGoing = *keepGoing
	mopt.KeepGoing = *keepGoing
	opt.Kernel = kernel
	mopt.Kernel = kernel
	opt.NoTraceCache = !*traceCache
	mopt.NoTraceCache = !*traceCache
	opt.Context = shut.Context()
	mopt.Context = shut.Context()
	opt.JournalDir = *journalDir
	mopt.JournalDir = *journalDir
	opt.TaskTimeout = *taskTimeout
	mopt.TaskTimeout = *taskTimeout
	opt.SweepTimeout = *sweepTimeout
	mopt.SweepTimeout = *sweepTimeout
	opt.Retry = parallel.Retry{Attempts: *retries}
	mopt.Retry = parallel.Retry{Attempts: *retries}
	watchLog := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "m3dcli: "+format+"\n", args...)
	}
	opt.WatchdogGrace = 30 * time.Second
	mopt.WatchdogGrace = 30 * time.Second
	opt.WatchdogLog = watchLog
	mopt.WatchdogLog = watchLog
	opt.Sample = *sample
	opt.SampleParams = sp
	opt.SampleErrorBudget = *sampleBudget
	mopt.Sample = *sample
	opt.WarmCache = *warmCache
	mopt.WarmCache = *warmCache
	_ = full

	var fig6 *experiments.Fig6Result // cached between fig6/7/8
	getFig6 := func() *experiments.Fig6Result {
		if fig6 == nil {
			f, err := experiments.Fig6(opt)
			die(err)
			fig6 = f
		}
		return fig6
	}
	var fig9 *experiments.Fig9Result
	getFig9 := func() *experiments.Fig9Result {
		if fig9 == nil {
			f, err := experiments.Fig9(mopt)
			die(err)
			fig9 = f
		}
		return fig9
	}

	todo := args
	if len(args) == 1 && args[0] == "all" {
		todo = []string{"table1", "table2", "fig2", "table3", "table4", "table5",
			"table6", "table7", "table8", "logic", "lp", "infra", "accel", "table10", "table11",
			"fig6", "fig7", "fig8", "fig9", "fig10"}
	}

	for _, cmd := range todo {
		fmt.Printf("== %s ==\n", cmd)
		switch cmd {
		case "table1":
			experiments.RenderTable1(os.Stdout)
		case "table2":
			experiments.RenderTable2(os.Stdout)
		case "fig2":
			experiments.RenderFig2(os.Stdout)
		case "table3":
			rows, h, err := experiments.StrategyTableHealth(shut.Context(), sram.BitPart, *journalDir)
			die(err)
			experiments.RenderPartitionTable(os.Stdout, rows)
			experiments.RenderHealth(os.Stderr, h)
		case "table4":
			rows, h, err := experiments.StrategyTableHealth(shut.Context(), sram.WordPart, *journalDir)
			die(err)
			experiments.RenderPartitionTable(os.Stdout, rows)
			experiments.RenderHealth(os.Stderr, h)
		case "table5":
			rows, h, err := experiments.StrategyTableHealth(shut.Context(), sram.PortPart, *journalDir)
			die(err)
			experiments.RenderPartitionTable(os.Stdout, rows)
			experiments.RenderHealth(os.Stderr, h)
		case "table6":
			m3d, tsv, h, err := experiments.Table6Health(shut.Context(), *journalDir)
			die(err)
			experiments.RenderHealth(os.Stderr, h)
			fmt.Println("M3D (iso-layer):")
			experiments.RenderChoices(os.Stdout, m3d, core.PaperTable6M3D)
			fmt.Println("TSV3D:")
			experiments.RenderChoices(os.Stdout, tsv, core.PaperTable6TSV)
		case "table7":
			for _, line := range experiments.Table7() {
				fmt.Println("  " + line)
			}
		case "table8":
			het, err := experiments.Table8()
			die(err)
			experiments.RenderChoices(os.Stdout, het, core.PaperTable8)
		case "infra":
			renderInfra()
		case "accel":
			renderAccel()
		case "lp":
			r, err := experiments.LPStudy([]string{"Gamess", "Mcf", "Povray", "Milc"}, opt)
			die(err)
			experiments.RenderLPStudy(os.Stdout, r)
			experiments.RenderHealth(os.Stderr, r.Health)
		case "logic":
			r, err := experiments.LogicStage()
			die(err)
			experiments.RenderLogic(os.Stdout, r)
		case "table10":
			experiments.RenderTable10(os.Stdout)
		case "table11":
			s, err := experiments.Table11()
			die(err)
			experiments.RenderTable11(os.Stdout, s)
		case "fig6":
			experiments.RenderFig6(os.Stdout, getFig6())
		case "fig7":
			experiments.RenderFig7(os.Stdout, getFig6())
		case "fig8":
			rows, h, err := experiments.Fig8Health(getFig6())
			die(err)
			experiments.RenderFig8(os.Stdout, rows)
			experiments.RenderHealth(os.Stderr, h)
		case "fig9":
			experiments.RenderFig9(os.Stdout, getFig9())
		case "fig10":
			experiments.RenderFig10(os.Stdout, getFig9())
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
			os.Exit(2)
		}
		fmt.Println()
	}
	if n := trace.CacheStats().SaveErrors; *traceDir != "" && n > 0 {
		fmt.Fprintf(os.Stderr, "m3dcli: warning: %d trace recording(s) could not be saved to %s\n", n, *traceDir)
	}
	if n := warm.Stats().SaveErrors; *warmDir != "" && n > 0 {
		fmt.Fprintf(os.Stderr, "m3dcli: warning: %d warm snapshot(s) could not be saved to %s\n", n, *warmDir)
	}
	if *journalDir != "" {
		if fig6 != nil {
			experiments.RenderJournalStats(os.Stderr, fig6.Journal)
		}
		if fig9 != nil {
			experiments.RenderJournalStats(os.Stderr, fig9.Journal)
		}
	}
	if fig6 != nil {
		experiments.RenderHealth(os.Stderr, fig6.Health)
	}
	if fig9 != nil {
		experiments.RenderHealth(os.Stderr, fig9.Health)
	}
	failed := 0
	if fig6 != nil {
		failed += fig6.FailedCells()
	}
	if fig9 != nil {
		failed += fig9.FailedCells()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "m3dcli: %d sweep cell(s) failed (rendered as ERR above)\n", failed)
		os.Exit(shut.ExitCode(1))
	}
	os.Exit(shut.ExitCode(0))
}

// renderAccel prints the Section 5 accelerator-integration comparison.
func renderAccel() {
	n := tech.N22()
	const freq = 3.5e9
	for _, in := range []accel.Integration{accel.SideBySide2D(), accel.VerticalM3D()} {
		be, err := in.BreakEvenCycles(n, 128, 4, freq)
		die(err)
		lat, err := in.TransferLatencyCycles(n, 256, freq)
		die(err)
		fmt.Printf("%-17s 256B transfer %4d cycles; offload break-even %5d core cycles (4x engine, 128B payload)\n",
			in.Name, lat, be)
	}
}

// renderInfra prints the clock-tree and PDN analyses of Section 3.3.
func renderInfra() {
	n := tech.N22()
	fp := floorplan.Core2D()
	const sinks = 100_000
	red, err := clocktree.FoldedReduction(n, fp.WidthM, fp.HeightM, sinks, 0.5)
	die(err)
	tree, err := clocktree.Build(n, fp.WidthM, fp.HeightM, sinks)
	die(err)
	fmt.Printf("clock tree: %.0fmm wire, %.0fpF/edge, %.2fW at 2.8GHz; folding to 50%% footprint saves %.0f%% (paper adopts a constant 25%% [42])\n",
		tree.WireLenM*1e3, tree.TotalCapF()*1e12, tree.PowerWatts(0.8, 2.8e9), red*100)

	half, err := floorplan.Folded(0.5)
	die(err)
	spec := pdn.Spec{WidthM: half.WidthM, HeightM: half.HeightM,
		PowerW: 6.4, Vdd: 0.8, BottomShare: 0.55, DroopBudget: 0.05}
	rec, err := pdn.Recommend(n, spec)
	die(err)
	fmt.Printf("PDN: recommended %v — %d metal layers, droop %.1f%% of Vdd, %d power MIVs occupying %.3f%% of the die (Section 3.3 / [10])\n",
		rec.Design, rec.MetalLayersUsed, rec.WorstDroopFrac*100, rec.PowerMIVs, rec.MIVAreaFrac*100)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "m3dcli:", err)
		code := 1
		if shut != nil {
			code = shut.ExitCode(1)
		}
		os.Exit(code)
	}
}
