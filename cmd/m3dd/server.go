package main

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/jobstore"
	"vertical3d/internal/journal"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// serverConfig sizes the daemon. The zero value is usable; newServer fills
// the defaults in.
type serverConfig struct {
	// Workers is the default per-sweep worker count (0 =
	// parallel.DefaultWorkers()); a request's "workers" field overrides it.
	Workers int
	// JournalDir, when non-empty, journals every sweep there and serves
	// cells of previously journaled sweeps through the cache's disk tier.
	JournalDir string
	// JobDir, when non-empty, persists the job ledger there as a
	// write-ahead manifest (internal/jobstore): accepted specs and state
	// transitions survive a crash, and a restarted daemon re-enqueues
	// every unfinished job. Empty means memory-only jobs.
	JobDir string
	// CacheBudget bounds the in-memory result cache in bytes (<= 0 means
	// unbounded). The same budget bounds the retained finished-job results:
	// when they exceed it, the oldest finished jobs are evicted early.
	CacheBudget int64
	// MaxSweeps bounds the sweeps simulating concurrently; further accepted
	// sweeps queue. Default 2.
	MaxSweeps int
	// QueueDepth bounds the accepted-but-not-running sweeps; a POST beyond
	// it is shed with 429 + Retry-After. Default 64.
	QueueDepth int
	// KeepJobs bounds the finished sweeps retained for GET; the oldest
	// finished jobs beyond it are evicted. Default 64.
	KeepJobs int
	// EventCap bounds each job's retained SSE event log: a subscriber that
	// falls more than EventCap events behind is handed a "lost" marker and
	// resumes from the oldest retained event. Default 256.
	EventCap int
	// Quick sizes sweeps with the unit-test sizing instead of the harness
	// defaults (a request's explicit sizing always wins).
	Quick bool
	// Retry re-runs transiently failed cells; the zero value runs each cell
	// once.
	Retry parallel.Retry
	// Logf receives the daemon's progress lines; nil discards.
	Logf func(format string, args ...any)
}

// admissionStats counts the admission-control decisions for /statsz.
type admissionStats struct {
	// Accepted counts admitted sweeps (including restored ones); Shed the
	// POSTs refused with 429 over a full queue; DeadlineRejected the POSTs
	// refused with 400 over an already-expired deadline; ExpiredInQueue
	// the admitted jobs whose deadline passed before a slot freed up;
	// Restored the unfinished jobs re-enqueued from the manifest at boot.
	Accepted         int `json:"accepted"`
	Shed             int `json:"shed_429"`
	DeadlineRejected int `json:"deadline_rejected"`
	ExpiredInQueue   int `json:"expired_in_queue"`
	Restored         int `json:"restored"`
}

// server is the m3dd daemon: a process-wide result cache in front of the
// sweep library, a write-ahead job manifest under the ledger, jobs that
// run on it, and the HTTP surface over all of it.
type server struct {
	cfg   serverConfig
	ctx   context.Context // bounds every sweep; cancelled on shutdown
	cache *resultcache.Cache
	store *jobstore.Store // nil = memory-only jobs
	start time.Time

	draining   atomic.Bool
	storeNoted atomic.Bool // manifest append failure reported once, not per write
	wg         sync.WaitGroup
	kick       chan struct{} // buffered 1; wakes the dispatcher

	mu          sync.Mutex
	stopped     bool // dispatcher has failed the queue; no more dispatch
	seq         int
	jobs        map[string]*job
	order       []string // job ids in creation order (eviction scan)
	queue       []*job   // admitted, waiting for a sweep slot
	running     int
	resultBytes int64 // retained finished-result bytes, against CacheBudget
	admission   admissionStats

	// healthMu guards the degradation log separately from mu: events are
	// appended from paths that already hold mu (always mu before healthMu,
	// never the reverse).
	healthMu sync.Mutex
	health   []experiments.DegradationEvent
}

// newServer builds a server whose sweeps are bounded by ctx: it opens (or
// degrades past) the job manifest, restores the persisted ledger,
// re-enqueues every unfinished job and starts the dispatcher.
func newServer(ctx context.Context, cfg serverConfig) *server {
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.KeepJobs <= 0 {
		cfg.KeepJobs = 64
	}
	if cfg.EventCap <= 0 {
		cfg.EventCap = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &server{
		cfg:   cfg,
		ctx:   ctx,
		cache: resultcache.New(cfg.CacheBudget),
		start: time.Now(),
		kick:  make(chan struct{}, 1),
		jobs:  map[string]*job{},
	}
	if cfg.JournalDir != "" {
		s.cache.SetDiskDir(cfg.JournalDir)
	}
	if cfg.JobDir != "" {
		st, err := jobstore.Open(cfg.JobDir)
		if err != nil {
			// Never refuse to serve over a bookkeeping failure: run with
			// memory-only jobs and say so on /healthz.
			s.note("jobstore", "job manifest unusable, running with memory-only jobs", err)
			s.cfg.Logf("m3dd: job manifest %s unusable, memory-only jobs: %v", cfg.JobDir, err)
		} else {
			s.store = st
			s.restore()
		}
	}
	go s.dispatch()
	return s
}

// restore replays the manifest into the ledger: finished jobs come back as
// restored terminal entries (their per-cell results live in the journal,
// not the manifest), unfinished ones re-enter the queue exactly as if just
// accepted — their cells are then served from the journal/result cache, so
// a kill -9 costs at most the in-flight cells.
func (s *server) restore() {
	persisted := s.store.Jobs()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq = s.store.MaxSeq()
	for _, pj := range persisted {
		if pj.State == jobstore.StateEvicted {
			continue
		}
		var req sweepRequest
		if err := json.Unmarshal(pj.Spec, &req); err == nil {
			if verr := req.validate(); verr != nil {
				err = verr
			}
			if err != nil {
				// A spec this daemon can no longer run (renamed benchmark,
				// older wire format) fails terminally instead of crash-looping
				// the queue.
				_ = s.store.Transition(pj.ID, jobstore.StateFailed, "restored spec no longer valid: "+err.Error())
				continue
			}
		} else {
			_ = s.store.Transition(pj.ID, jobstore.StateFailed, "restored spec undecodable: "+err.Error())
			continue
		}
		j := s.newJobLocked(pj.ID, req)
		j.restored = true
		j.deadline = pj.Deadline
		j.created = pj.Created
		switch pj.State {
		case jobstore.StateDone, jobstore.StateFailed:
			j.mu.Lock()
			j.state = pj.State
			j.err = pj.Error
			j.finished = pj.Updated
			j.emitLocked(jobEvent{Type: pj.State, State: pj.State, Error: pj.Error})
			j.mu.Unlock()
		default:
			// accepted | queued | running | interrupted: back in the queue.
			if pj.State == jobstore.StateInterrupted {
				s.cfg.Logf("m3dd: %s %s interrupted by previous shutdown, resuming", j.id, req.Experiment)
			}
			_ = s.store.Transition(j.id, jobstore.StateQueued, "")
			s.wg.Add(1)
			s.queue = append(s.queue, j)
			s.admission.Restored++
			s.admission.Accepted++
		}
	}
	if s.admission.Restored > 0 {
		s.cfg.Logf("m3dd: restored %d unfinished job(s) from the manifest", s.admission.Restored)
	}
	s.kickLocked()
}

// newJobLocked builds a ledger entry (initial state queued) and registers
// it. Callers hold s.mu and have already claimed the id.
func (s *server) newJobLocked(id string, req sweepRequest) *job {
	j := &job{
		id:       id,
		req:      req,
		identity: s.identityFor(req),
		state:    jobstore.StateQueued,
		created:  time.Now(),
		eventCap: s.cfg.EventCap,
		notify:   make(chan struct{}),
	}
	j.events = append(j.events, jobEvent{Type: "state", State: jobstore.StateQueued})
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

// identityFor computes the journal identity the request's sweep will run
// under — the content address the admission layer probes with
// resultcache.KnownCells to prefer cache-hit-serviceable jobs under load.
func (s *server) identityFor(req sweepRequest) journal.Identity {
	switch req.Experiment {
	case "fig9":
		return experiments.MCIdentity(s.mcOptions(context.Background(), req, nil), "fig9")
	case "table3", "table4", "table5":
		return experiments.StrategyTableIdentity(strategyFor(req.Experiment))
	case "table6":
		return experiments.Table6Identity()
	default: // fig6, lpstudy
		return s.runOptions(context.Background(), req, nil).Identity(req.Experiment)
	}
}

// strategyFor maps a table experiment name onto its partitioning strategy.
func strategyFor(experiment string) sram.Strategy {
	return map[string]sram.Strategy{
		"table3": sram.BitPart, "table4": sram.WordPart, "table5": sram.PortPart,
	}[experiment]
}

// note records a serving-layer degradation event for /healthz and /statsz.
// Safe to call with or without s.mu held (the log has its own mutex).
func (s *server) note(layer, action string, cause error) {
	ev := experiments.DegradationEvent{Layer: layer, Action: action}
	if cause != nil {
		ev.Cause = cause.Error()
	}
	s.appendHealth([]experiments.DegradationEvent{ev})
}

// appendHealth appends degradation events, bounding the retained log.
func (s *server) appendHealth(events []experiments.DegradationEvent) {
	s.healthMu.Lock()
	s.health = append(s.health, events...)
	if n := len(s.health); n > 200 {
		s.health = append([]experiments.DegradationEvent(nil), s.health[n-200:]...)
	}
	s.healthMu.Unlock()
}

// healthSnapshot copies the retained degradation log.
func (s *server) healthSnapshot() []experiments.DegradationEvent {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return append([]experiments.DegradationEvent(nil), s.health...)
}

// transition appends a job state change to the manifest, reporting the
// first append failure as a degradation event (the store itself degrades
// to memory-only after the first failure, so later calls are cheap no-ops).
// Safe with or without s.mu held.
func (s *server) transition(id, state, errMsg string) {
	if s.store == nil {
		return
	}
	if err := s.store.Transition(id, state, errMsg); err != nil {
		s.noteStoreFailure(err)
	}
}

// noteStoreFailure records the manifest's downgrade to memory-only jobs,
// once. Safe with or without s.mu held.
func (s *server) noteStoreFailure(err error) {
	if s.storeNoted.Swap(true) {
		return
	}
	s.note("jobstore", "job manifest append failed, continuing with memory-only jobs", err)
	s.cfg.Logf("m3dd: job manifest degraded to memory-only: %v", err)
}

// drain flips the health check to 503; POST /sweeps starts refusing.
func (s *server) drain() { s.draining.Store(true) }

// wait blocks until every accepted sweep has finished.
func (s *server) wait() { s.wg.Wait() }

// kickLocked wakes the dispatcher (callers hold s.mu; the buffered channel
// makes the wakeup lossless without blocking under the lock).
func (s *server) kickLocked() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// dispatch is the daemon's single scheduling loop: it fills free sweep
// slots from the queue, periodically expires queued jobs whose deadline
// passed while they waited, and, on shutdown, fails whatever never got a
// slot.
func (s *server) dispatch() {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.kick:
			s.dispatchReady()
		case <-tick.C:
			s.mu.Lock()
			if !s.stopped {
				s.expireQueuedLocked(time.Now())
			}
			s.mu.Unlock()
		case <-s.ctx.Done():
			s.stopQueued()
			return
		}
	}
}

// expireQueuedLocked fails queued jobs whose deadline has passed: the
// client has given up, so the job should report that now rather than burn
// a future slot. Called with s.mu held.
func (s *server) expireQueuedLocked(now time.Time) {
	kept := s.queue[:0]
	for _, j := range s.queue {
		if !j.deadline.IsZero() && now.After(j.deadline) {
			s.admission.ExpiredInQueue++
			s.finishJobLocked(j, nil, fmt.Errorf("m3dd: deadline %s expired before the sweep started", j.deadline.Format(time.RFC3339)), jobstore.StateFailed)
			continue
		}
		kept = append(kept, j)
	}
	s.queue = kept
}

// dispatchReady starts queued jobs while slots are free, expiring
// dead-on-arrival deadlines and preferring cache-hit-serviceable jobs.
func (s *server) dispatchReady() {
	for {
		s.mu.Lock()
		if s.stopped || s.running >= s.cfg.MaxSweeps {
			s.mu.Unlock()
			return
		}
		j := s.nextLocked()
		if j == nil {
			s.mu.Unlock()
			return
		}
		s.running++
		s.mu.Unlock()
		go s.run(j)
	}
}

// nextLocked picks the next queued job. Jobs whose deadline has already
// passed are failed in place (no point burning a slot on an abandoned
// request). Under load-shed pressure the pick prefers the first job whose
// cells the cache can already serve (KnownCells > 0): those jobs drain the
// queue at cache speed, freeing slots for the ones that must simulate.
// Called with s.mu held.
func (s *server) nextLocked() *job {
	s.expireQueuedLocked(time.Now())
	if len(s.queue) == 0 {
		return nil
	}
	pick := 0
	if len(s.queue) > 1 {
		for i, j := range s.queue {
			if s.cache.KnownCells(j.identity) > 0 {
				pick = i
				break
			}
		}
	}
	j := s.queue[pick]
	s.queue = append(s.queue[:pick], s.queue[pick+1:]...)
	return j
}

// stopQueued fails every still-queued job when the daemon shuts down. The
// manifest records them as interrupted — a non-terminal state — so the
// next boot against the same -job-dir resumes them instead of forgetting
// them.
func (s *server) stopQueued() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	for _, j := range s.queue {
		s.finishJobLocked(j, nil, fmt.Errorf("m3dd: shutting down before the sweep started"), jobstore.StateInterrupted)
	}
	s.queue = nil
}

// finishJobLocked settles a job that never ran (queue expiry, shutdown):
// terminal in memory, manifestState on disk, wg released. Called with s.mu
// held.
func (s *server) finishJobLocked(j *job, view *sweepResultView, err error, manifestState string) {
	j.finish(view, err)
	s.transition(j.id, manifestState, err.Error())
	s.wg.Done()
}

// run executes one dispatched sweep end to end: derive its context (the
// daemon's, tightened by the job deadline), simulate through the
// process-wide cache, classify the outcome, publish the result and free
// the slot.
func (s *server) run(j *job) {
	defer func() {
		s.mu.Lock()
		s.running--
		s.kickLocked()
		s.mu.Unlock()
		s.wg.Done()
	}()

	j.setState(jobstore.StateRunning)
	s.transition(j.id, jobstore.StateRunning, "")
	s.cfg.Logf("m3dd: %s %s running", j.id, j.req.Experiment)

	jctx := s.ctx
	if !j.deadline.IsZero() {
		var cancel context.CancelFunc
		jctx, cancel = context.WithDeadline(s.ctx, j.deadline)
		defer cancel()
	}

	view, err := s.execute(jctx, j)
	if err == nil && jctx.Err() != nil {
		// A drain or deadline can cancel dispatch mid-sweep; a partially
		// dispatched sweep must not be published as a completed one.
		err = fmt.Errorf("m3dd: sweep interrupted: %w", jctx.Err())
	}

	// Classify for the manifest: a daemon-wide shutdown is an interruption
	// (the next boot resumes the job, its completed cells served from the
	// journal); a failure with the daemon still up — including a blown
	// per-request deadline — is terminal.
	manifestState := jobstore.StateDone
	msg := ""
	if err != nil {
		msg = err.Error()
		if s.ctx.Err() != nil {
			manifestState = jobstore.StateInterrupted
		} else {
			manifestState = jobstore.StateFailed
		}
	}

	j.finish(view, err)
	s.transition(j.id, manifestState, msg)
	if err != nil {
		s.cfg.Logf("m3dd: %s failed: %v", j.id, err)
	} else {
		s.cfg.Logf("m3dd: %s done (%d cell(s) simulated)", j.id, j.simulated.Load())
	}

	if view != nil {
		s.appendHealth(view.Health.Events)
	}
	s.mu.Lock()
	if view != nil {
		s.resultBytes += j.resultSize()
	}
	s.evictLocked()
	s.mu.Unlock()
}

// evictLocked drops the oldest finished jobs beyond KeepJobs — and beyond
// the CacheBudget byte budget over retained results — so a long-lived
// daemon's memory stays bounded by its budget, not its uptime. Queued and
// running jobs are never evicted, and the newest finished job is always
// retained. Every evicted job is recorded in the manifest (compaction then
// forgets it) and emits a final "evicted" event so live SSE subscribers
// terminate instead of hanging on a job that no longer exists.
func (s *server) evictLocked() {
	excess := len(s.order) - s.cfg.KeepJobs
	overBudget := s.cfg.CacheBudget > 0 && s.resultBytes > s.cfg.CacheBudget
	if excess <= 0 && !overBudget {
		return
	}
	// The newest terminal job is sacred: a client that just watched its
	// sweep finish must be able to GET the result.
	newestTerminal := ""
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.jobs[s.order[i]].terminal() {
			newestTerminal = s.order[i]
			break
		}
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		overBudget = s.cfg.CacheBudget > 0 && s.resultBytes > s.cfg.CacheBudget
		if (excess > 0 || overBudget) && id != newestTerminal && j.terminal() {
			delete(s.jobs, id)
			s.resultBytes -= j.resultSize()
			s.transition(id, jobstore.StateEvicted, "")
			j.evict()
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// cellHook is the per-cell progress seam: it fires only for cells that
// reach the simulator, so its count is exactly the sweep's simulated-cell
// count (cache, coalesced and journal serves never fire it).
func (s *server) cellHook(j *job) func(bench, design string) {
	return func(bench, design string) {
		j.simulated.Add(1)
		j.mu.Lock()
		j.emitLocked(jobEvent{Type: "cell", Cell: bench + "/" + design})
		j.mu.Unlock()
	}
}

// runOptions builds the single-core sweep options for a request. A nil job
// builds identity-only options (no hooks) for the admission layer.
func (s *server) runOptions(ctx context.Context, req sweepRequest, j *job) experiments.RunOptions {
	opt := experiments.DefaultRunOptions()
	if s.cfg.Quick {
		opt = experiments.QuickRunOptions()
	}
	if req.Warmup > 0 {
		opt.Warmup = req.Warmup
	}
	if req.Measure > 0 {
		opt.Measure = req.Measure
	}
	if req.Seed != nil {
		opt.Seed = *req.Seed
	}
	opt.Sample = req.Sample
	opt.KeepGoing = req.KeepGoing
	opt.Workers = req.Workers
	if opt.Workers == 0 {
		opt.Workers = s.cfg.Workers
	}
	opt.Context = ctx
	opt.JournalDir = s.cfg.JournalDir
	opt.Cache = s.cache
	opt.Retry = s.cfg.Retry
	if j != nil {
		opt.CellHook = s.cellHook(j)
	}
	return opt
}

// mcOptions builds the fig9 sweep options for a request. A nil job builds
// identity-only options for the admission layer.
func (s *server) mcOptions(ctx context.Context, req sweepRequest, j *job) multicore.Options {
	opt := multicore.DefaultOptions()
	if s.cfg.Quick {
		opt.TotalInstrs, opt.WarmupPerCore = 80_000, 5_000
	}
	if req.Instrs > 0 {
		opt.TotalInstrs = req.Instrs
	}
	if req.Warmup > 0 {
		opt.WarmupPerCore = req.Warmup
	}
	if req.Phases > 0 {
		opt.Phases = req.Phases
	}
	if req.Seed != nil {
		opt.Seed = *req.Seed
	}
	opt.Sample = req.Sample
	opt.KeepGoing = req.KeepGoing
	opt.Workers = req.Workers
	if opt.Workers == 0 {
		opt.Workers = s.cfg.Workers
	}
	opt.Context = ctx
	opt.JournalDir = s.cfg.JournalDir
	opt.Cache = s.cache
	opt.Retry = s.cfg.Retry
	if j != nil {
		opt.CellHook = s.cellHook(j)
	}
	return opt
}

// profiles resolves a request's benchmark list, defaulting to def.
func profiles(names []string, def []trace.Profile) ([]trace.Profile, error) {
	if len(names) == 0 {
		return def, nil
	}
	out := make([]trace.Profile, len(names))
	for i, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// execute dispatches to the sweep library under ctx (the daemon context
// tightened by the job's deadline).
func (s *server) execute(ctx context.Context, j *job) (*sweepResultView, error) {
	switch j.req.Experiment {
	case "fig6":
		suite, err := config.Derive(tech.N22())
		if err != nil {
			return nil, err
		}
		profs, err := profiles(j.req.Benchmarks, workload.SPEC2006())
		if err != nil {
			return nil, err
		}
		f, err := experiments.Fig6With(suite, profs, s.runOptions(ctx, j.req, j))
		if err != nil {
			return nil, err
		}
		return fig6View(f), nil
	case "fig9":
		suite, err := config.Derive(tech.N22())
		if err != nil {
			return nil, err
		}
		profs, err := profiles(j.req.Benchmarks, workload.Parallel())
		if err != nil {
			return nil, err
		}
		f, err := experiments.Fig9With(suite, profs, s.mcOptions(ctx, j.req, j))
		if err != nil {
			return nil, err
		}
		return fig9View(f), nil
	case "lpstudy":
		names := j.req.Benchmarks
		if len(names) == 0 {
			names = lpDefaultBenchmarks
		}
		r, err := experiments.LPStudy(names, s.runOptions(ctx, j.req, j))
		if err != nil {
			return nil, err
		}
		return lpView(r), nil
	case "table3", "table4", "table5":
		rows, h, err := experiments.StrategyTableCached(ctx, strategyFor(j.req.Experiment), s.cfg.JournalDir, s.cache)
		if err != nil {
			return nil, err
		}
		return &sweepResultView{Experiment: j.req.Experiment, Rows: rows, Health: h}, nil
	case "table6":
		m3d, tsv, h, err := experiments.Table6Cached(ctx, s.cfg.JournalDir, s.cache)
		if err != nil {
			return nil, err
		}
		return &sweepResultView{Experiment: "table6", M3DChoices: m3d, TSVChoices: tsv, Health: h}, nil
	}
	return nil, fmt.Errorf("unknown experiment %q", j.req.Experiment)
}
