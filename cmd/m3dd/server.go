package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/core"
	"vertical3d/internal/experiments"
	"vertical3d/internal/journal"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// serverConfig sizes the daemon. The zero value is usable; newServer fills
// the defaults in.
type serverConfig struct {
	// Workers is the default per-sweep worker count (0 =
	// parallel.DefaultWorkers()); a request's "workers" field overrides it.
	Workers int
	// JournalDir, when non-empty, journals every sweep there and serves
	// cells of previously journaled sweeps through the cache's disk tier.
	JournalDir string
	// CacheBudget bounds the in-memory result cache in bytes (<= 0 means
	// unbounded).
	CacheBudget int64
	// MaxSweeps bounds the sweeps simulating concurrently; further accepted
	// sweeps queue. Default 2.
	MaxSweeps int
	// KeepJobs bounds the finished sweeps retained for GET; the oldest
	// finished jobs beyond it are evicted. Default 64.
	KeepJobs int
	// Quick sizes sweeps with the unit-test sizing instead of the harness
	// defaults (a request's explicit sizing always wins).
	Quick bool
	// Retry re-runs transiently failed cells; the zero value runs each cell
	// once.
	Retry parallel.Retry
	// Logf receives the daemon's progress lines; nil discards.
	Logf func(format string, args ...any)
}

// server is the m3dd daemon: a process-wide result cache in front of the
// sweep library, jobs that run on it, and the HTTP surface over both.
type server struct {
	cfg   serverConfig
	ctx   context.Context // bounds every sweep; cancelled on shutdown
	cache *resultcache.Cache
	start time.Time

	draining atomic.Bool
	wg       sync.WaitGroup
	sem      chan struct{} // MaxSweeps tokens

	mu     sync.Mutex
	seq    int
	jobs   map[string]*job
	order  []string // job ids in creation order (eviction scan)
	health []experiments.DegradationEvent
}

// newServer builds a server whose sweeps are bounded by ctx.
func newServer(ctx context.Context, cfg serverConfig) *server {
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = 2
	}
	if cfg.KeepJobs <= 0 {
		cfg.KeepJobs = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &server{
		cfg:   cfg,
		ctx:   ctx,
		cache: resultcache.New(cfg.CacheBudget),
		start: time.Now(),
		sem:   make(chan struct{}, cfg.MaxSweeps),
		jobs:  map[string]*job{},
	}
	if cfg.JournalDir != "" {
		s.cache.SetDiskDir(cfg.JournalDir)
	}
	return s
}

// drain flips the health check to 503; POST /sweeps starts refusing.
func (s *server) drain() { s.draining.Store(true) }

// wait blocks until every accepted sweep has finished.
func (s *server) wait() { s.wg.Wait() }

// routes builds the HTTP surface.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", s.handleCreate)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleGet)
	mux.HandleFunc("GET /sweeps/{id}/cells", s.handleCells)
	mux.HandleFunc("GET /sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// sweepRequest is the POST /sweeps body.
type sweepRequest struct {
	// Experiment is one of fig6, fig9, lpstudy, table3, table4, table5,
	// table6.
	Experiment string `json:"experiment"`
	// Benchmarks defaults to the experiment's full suite; the tables take
	// none.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Warmup/Measure size fig6 and lpstudy cells (Warmup is per-core for
	// fig9); 0 keeps the server default.
	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure,omitempty"`
	// Instrs and Phases size fig9 (total parallel work, barrier phases).
	Instrs uint64 `json:"instrs,omitempty"`
	Phases int    `json:"phases,omitempty"`
	// Seed overrides the default seed (42); a pointer so 0 is expressible.
	Seed *int64 `json:"seed,omitempty"`
	// Sample enables interval sampling, Workers the sweep's pool size,
	// KeepGoing the complete-through-failures mode.
	Sample    bool `json:"sample,omitempty"`
	Workers   int  `json:"workers,omitempty"`
	KeepGoing bool `json:"keep_going,omitempty"`
}

// experimentNames is the accepted experiment set, in rendering order.
var experimentNames = []string{"fig6", "fig9", "lpstudy", "table3", "table4", "table5", "table6"}

// lpDefaultBenchmarks is the LP study's benchmark subset (Section 7.1.2).
var lpDefaultBenchmarks = []string{"Gamess", "Mcf", "Povray", "Milc"}

// validate normalises the request and reports the first problem.
func (r *sweepRequest) validate() error {
	ok := false
	for _, n := range experimentNames {
		if r.Experiment == n {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("unknown experiment %q (want one of %v)", r.Experiment, experimentNames)
	}
	switch r.Experiment {
	case "table3", "table4", "table5", "table6":
		if len(r.Benchmarks) > 0 {
			return fmt.Errorf("experiment %s takes no benchmarks", r.Experiment)
		}
	default:
		for _, b := range r.Benchmarks {
			if _, err := workload.ByName(b); err != nil {
				return err
			}
		}
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", r.Workers)
	}
	if r.Phases < 0 {
		return fmt.Errorf("phases must be >= 0, got %d", r.Phases)
	}
	return nil
}

// job is one accepted sweep and everything the API serves about it.
type job struct {
	id  string
	req sweepRequest

	// simulated counts cells that reached the simulator (cache, coalesced
	// and journal serves don't); accessed atomically from sweep workers.
	simulated atomic.Uint64

	mu       sync.Mutex
	state    string // queued | running | done | failed
	err      string
	result   *sweepResultView
	created  time.Time
	finished time.Time
	events   []jobEvent
	notify   chan struct{} // closed and replaced on every append
}

// jobEvent is one SSE frame of a job's progress stream.
type jobEvent struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"` // state | cell | done | failed
	State string `json:"state,omitempty"`
	Cell  string `json:"cell,omitempty"`
	Error string `json:"error,omitempty"`
}

// emit appends an event and wakes every subscriber. Callers hold j.mu.
func (j *job) emitLocked(ev jobEvent) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
}

// setState transitions the job and emits the matching event.
func (j *job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.emitLocked(jobEvent{Type: "state", State: state})
}

// finish transitions to the terminal state, result and event atomically, so
// an SSE subscriber that observes the terminal state has already been handed
// the final event.
func (j *job) finish(view *sweepResultView, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.state = "failed"
		j.err = err.Error()
		j.emitLocked(jobEvent{Type: "failed", State: "failed", Error: j.err})
		return
	}
	j.state = "done"
	j.result = view
	j.emitLocked(jobEvent{Type: "done", State: "done"})
}

// jobView is the GET /sweeps/{id} document.
type jobView struct {
	ID         string           `json:"id"`
	Experiment string           `json:"experiment"`
	State      string           `json:"state"`
	Error      string           `json:"error,omitempty"`
	Created    time.Time        `json:"created"`
	Simulated  uint64           `json:"simulated_cells"`
	Result     *sweepResultView `json:"result,omitempty"`
}

func (j *job) view(withResult bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:         j.id,
		Experiment: j.req.Experiment,
		State:      j.state,
		Error:      j.err,
		Created:    j.created,
		Simulated:  j.simulated.Load(),
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// cellView is one benchmark × design cell of a sweep result. Result holds
// the cell's full measurement (experiments.AppResult for fig6,
// multicore.RunResult for fig9, total joules for lpstudy), so deep-equality
// over a sweepResultView subsumes a per-cell comparison of everything the
// pipeline measures.
type cellView struct {
	Benchmark string `json:"benchmark"`
	Design    string `json:"design"`
	Error     string `json:"error,omitempty"`
	Result    any    `json:"result,omitempty"`
}

// sweepResultView is the wire form of a finished sweep. Design-keyed maps
// become name-keyed (config.Design is an int; its JSON map keys would be
// opaque digits) and cells are flattened benchmark-major, design-minor.
type sweepResultView struct {
	Experiment string     `json:"experiment"`
	Benchmarks []string   `json:"benchmarks,omitempty"`
	Designs    []string   `json:"designs,omitempty"`
	Cells      []cellView `json:"cells,omitempty"`

	Speedup    map[string]map[string]float64 `json:"speedup,omitempty"`
	NormEnergy map[string]map[string]float64 `json:"norm_energy,omitempty"`

	// lpstudy
	HetEnergy     map[string]float64 `json:"het_energy,omitempty"`
	LPEnergy      map[string]float64 `json:"lp_energy,omitempty"`
	ExtraSavingPP float64            `json:"extra_saving_pp,omitempty"`

	// table3-5 / table6
	Rows       []experiments.PartRow `json:"rows,omitempty"`
	M3DChoices []core.Choice         `json:"m3d_choices,omitempty"`
	TSVChoices []core.Choice         `json:"tsv_choices,omitempty"`

	Journal journal.Stats      `json:"journal"`
	Health  experiments.Health `json:"health"`
}

// fig6View flattens a Fig6Result.
func fig6View(f *experiments.Fig6Result) *sweepResultView {
	v := &sweepResultView{
		Experiment: "fig6",
		Benchmarks: f.Benchmarks,
		Speedup:    map[string]map[string]float64{},
		NormEnergy: map[string]map[string]float64{},
		Journal:    f.Journal,
		Health:     f.Health,
	}
	for _, d := range f.Designs {
		v.Designs = append(v.Designs, d.String())
	}
	for _, b := range f.Benchmarks {
		v.Speedup[b] = map[string]float64{}
		v.NormEnergy[b] = map[string]float64{}
		for _, d := range f.Designs {
			cv := cellView{Benchmark: b, Design: d.String()}
			if err := f.Errors[b][d]; err != nil {
				cv.Error = err.Error()
			} else {
				cv.Result = f.Runs[b][d]
			}
			v.Cells = append(v.Cells, cv)
			if sp, ok := f.Speedup[b][d]; ok {
				v.Speedup[b][d.String()] = sp
			}
			if ne, ok := f.NormEnergy[b][d]; ok {
				v.NormEnergy[b][d.String()] = ne
			}
		}
	}
	return v
}

// fig9View flattens a Fig9Result.
func fig9View(f *experiments.Fig9Result) *sweepResultView {
	v := &sweepResultView{
		Experiment: "fig9",
		Benchmarks: f.Benchmarks,
		Speedup:    map[string]map[string]float64{},
		NormEnergy: map[string]map[string]float64{},
		Journal:    f.Journal,
		Health:     f.Health,
	}
	for _, d := range f.Designs {
		v.Designs = append(v.Designs, d.String())
	}
	for _, b := range f.Benchmarks {
		v.Speedup[b] = map[string]float64{}
		v.NormEnergy[b] = map[string]float64{}
		for _, d := range f.Designs {
			cv := cellView{Benchmark: b, Design: d.String()}
			if err := f.Errors[b][d]; err != nil {
				cv.Error = err.Error()
			} else {
				cv.Result = f.Runs[b][d]
			}
			v.Cells = append(v.Cells, cv)
			if sp, ok := f.Speedup[b][d]; ok {
				v.Speedup[b][d.String()] = sp
			}
			if ne, ok := f.NormEnergy[b][d]; ok {
				v.NormEnergy[b][d.String()] = ne
			}
		}
	}
	return v
}

// lpView flattens an LPStudyResult.
func lpView(r *experiments.LPStudyResult) *sweepResultView {
	return &sweepResultView{
		Experiment:    "lpstudy",
		Benchmarks:    r.Benchmarks,
		HetEnergy:     r.HetEnergy,
		LPEnergy:      r.LPEnergy,
		ExtraSavingPP: r.ExtraSavingPP,
		Journal:       r.Journal,
		Health:        r.Health,
	}
}

// run executes one accepted sweep end to end: wait for a slot, simulate
// through the process-wide cache, publish the result.
func (s *server) run(j *job) {
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-s.ctx.Done():
		j.finish(nil, errors.New("m3dd: shutting down before the sweep started"))
		return
	}
	j.setState("running")
	s.cfg.Logf("m3dd: %s %s running", j.id, j.req.Experiment)

	view, err := s.execute(j)
	if err == nil && s.ctx.Err() != nil {
		// A drain can cancel dispatch mid-sweep; a partially dispatched
		// sweep must not be published as a completed one.
		err = fmt.Errorf("m3dd: sweep interrupted by shutdown: %w", s.ctx.Err())
	}
	j.finish(view, err)
	if err != nil {
		s.cfg.Logf("m3dd: %s failed: %v", j.id, err)
	} else {
		s.cfg.Logf("m3dd: %s done (%d cell(s) simulated)", j.id, j.simulated.Load())
	}
	if view != nil {
		s.mu.Lock()
		s.health = append(s.health, view.Health.Events...)
		if n := len(s.health); n > 200 {
			s.health = append([]experiments.DegradationEvent(nil), s.health[n-200:]...)
		}
		s.mu.Unlock()
	}
}

// cellHook is the per-cell progress seam: it fires only for cells that
// reach the simulator, so its count is exactly the sweep's simulated-cell
// count (cache, coalesced and journal serves never fire it).
func (s *server) cellHook(j *job) func(bench, design string) {
	return func(bench, design string) {
		j.simulated.Add(1)
		j.mu.Lock()
		j.emitLocked(jobEvent{Type: "cell", Cell: bench + "/" + design})
		j.mu.Unlock()
	}
}

// runOptions builds the single-core sweep options for a request.
func (s *server) runOptions(j *job) experiments.RunOptions {
	opt := experiments.DefaultRunOptions()
	if s.cfg.Quick {
		opt = experiments.QuickRunOptions()
	}
	req := j.req
	if req.Warmup > 0 {
		opt.Warmup = req.Warmup
	}
	if req.Measure > 0 {
		opt.Measure = req.Measure
	}
	if req.Seed != nil {
		opt.Seed = *req.Seed
	}
	opt.Sample = req.Sample
	opt.KeepGoing = req.KeepGoing
	opt.Workers = req.Workers
	if opt.Workers == 0 {
		opt.Workers = s.cfg.Workers
	}
	opt.Context = s.ctx
	opt.JournalDir = s.cfg.JournalDir
	opt.Cache = s.cache
	opt.Retry = s.cfg.Retry
	opt.CellHook = s.cellHook(j)
	return opt
}

// mcOptions builds the fig9 sweep options for a request.
func (s *server) mcOptions(j *job) multicore.Options {
	opt := multicore.DefaultOptions()
	if s.cfg.Quick {
		opt.TotalInstrs, opt.WarmupPerCore = 80_000, 5_000
	}
	req := j.req
	if req.Instrs > 0 {
		opt.TotalInstrs = req.Instrs
	}
	if req.Warmup > 0 {
		opt.WarmupPerCore = req.Warmup
	}
	if req.Phases > 0 {
		opt.Phases = req.Phases
	}
	if req.Seed != nil {
		opt.Seed = *req.Seed
	}
	opt.Sample = req.Sample
	opt.KeepGoing = req.KeepGoing
	opt.Workers = req.Workers
	if opt.Workers == 0 {
		opt.Workers = s.cfg.Workers
	}
	opt.Context = s.ctx
	opt.JournalDir = s.cfg.JournalDir
	opt.Cache = s.cache
	opt.Retry = s.cfg.Retry
	opt.CellHook = s.cellHook(j)
	return opt
}

// profiles resolves a request's benchmark list, defaulting to def.
func profiles(names []string, def []trace.Profile) ([]trace.Profile, error) {
	if len(names) == 0 {
		return def, nil
	}
	out := make([]trace.Profile, len(names))
	for i, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// execute dispatches to the sweep library.
func (s *server) execute(j *job) (*sweepResultView, error) {
	switch j.req.Experiment {
	case "fig6":
		suite, err := config.Derive(tech.N22())
		if err != nil {
			return nil, err
		}
		profs, err := profiles(j.req.Benchmarks, workload.SPEC2006())
		if err != nil {
			return nil, err
		}
		f, err := experiments.Fig6With(suite, profs, s.runOptions(j))
		if err != nil {
			return nil, err
		}
		return fig6View(f), nil
	case "fig9":
		suite, err := config.Derive(tech.N22())
		if err != nil {
			return nil, err
		}
		profs, err := profiles(j.req.Benchmarks, workload.Parallel())
		if err != nil {
			return nil, err
		}
		f, err := experiments.Fig9With(suite, profs, s.mcOptions(j))
		if err != nil {
			return nil, err
		}
		return fig9View(f), nil
	case "lpstudy":
		names := j.req.Benchmarks
		if len(names) == 0 {
			names = lpDefaultBenchmarks
		}
		r, err := experiments.LPStudy(names, s.runOptions(j))
		if err != nil {
			return nil, err
		}
		return lpView(r), nil
	case "table3", "table4", "table5":
		st := map[string]sram.Strategy{
			"table3": sram.BitPart, "table4": sram.WordPart, "table5": sram.PortPart,
		}[j.req.Experiment]
		rows, h, err := experiments.StrategyTableCached(s.ctx, st, s.cfg.JournalDir, s.cache)
		if err != nil {
			return nil, err
		}
		return &sweepResultView{Experiment: j.req.Experiment, Rows: rows, Health: h}, nil
	case "table6":
		m3d, tsv, h, err := experiments.Table6Cached(s.ctx, s.cfg.JournalDir, s.cache)
		if err != nil {
			return nil, err
		}
		return &sweepResultView{Experiment: "table6", M3DChoices: m3d, TSVChoices: tsv, Health: h}, nil
	}
	return nil, fmt.Errorf("unknown experiment %q", j.req.Experiment)
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "m3dd is draining")
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	s.seq++
	j := &job{
		id:      fmt.Sprintf("s%06d", s.seq),
		req:     req,
		state:   "queued",
		created: time.Now(),
		notify:  make(chan struct{}),
	}
	j.events = append(j.events, jobEvent{Type: "state", State: "queued"})
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	s.wg.Add(1)
	go s.run(j)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":  j.id,
		"url": "/sweeps/" + j.id,
	})
}

// evictLocked drops the oldest finished jobs beyond KeepJobs so a
// long-lived daemon's memory stays bounded by its budget, not its uptime.
// Queued and running jobs are never evicted.
func (s *server) evictLocked() {
	excess := len(s.order) - s.cfg.KeepJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		terminal := j.state == "done" || j.state == "failed"
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
	}
	return j
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *server) handleCells(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	var cells []cellView
	if j.result != nil {
		cells = j.result.Cells
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"state": state, "cells": cells})
}

// handleEvents streams a job's progress as server-sent events. The stream
// replays the job's full event history and then follows it live; it ends
// after the terminal done/failed event, when the client disconnects, or at
// daemon shutdown.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	idx := 0
	for {
		j.mu.Lock()
		pending := j.events[idx:]
		terminal := j.state == "done" || j.state == "failed"
		notify := j.notify
		j.mu.Unlock()

		for _, ev := range pending {
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			idx++
		}
		flusher.Flush()
		// The terminal event is appended in the same critical section as the
		// terminal state, so observing the state means it was in pending.
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statszView is the GET /statsz document: the cache's hit/coalesce/disk
// counters, the job ledger, and the degradation events of recent sweeps.
type statszView struct {
	Cache         resultcache.Stats               `json:"cache"`
	Jobs          map[string]int                  `json:"jobs"`
	Experiments   []string                        `json:"experiments"`
	Health        []experiments.DegradationEvent  `json:"health,omitempty"`
	UptimeSeconds float64                         `json:"uptime_seconds"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	v := statszView{
		Cache:         s.cache.Stats(),
		Jobs:          map[string]int{},
		Experiments:   experimentNames,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		v.Jobs[j.state]++
		j.mu.Unlock()
	}
	v.Health = append(v.Health, s.health...)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}
