//go:build !race

package main

// raceEnabled reports whether the race detector is instrumenting this test
// binary; timing assertions scale their bounds by it.
const raceEnabled = false
