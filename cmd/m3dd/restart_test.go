package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/jobstore"
	"vertical3d/internal/trace"
)

// startServer is newTestServer with an explicit stop function so a test
// can shut a daemon instance down mid-test and start a successor over the
// same directories.
func startServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server, func()) {
	t.Helper()
	cfg.Quick = true
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := newServer(ctx, cfg)
	ts := httptest.NewServer(s.routes())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		cancel()
		s.wait()
		if s.store != nil {
			_ = s.store.Close()
		}
	}
	t.Cleanup(stop)
	return s, ts, stop
}

// waitTerminal polls a job until done or failed, returning its view.
func waitTerminal(t *testing.T, base, id string) rawJobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var v rawJobView
		if code := getJSON(t, base+"/sweeps/"+id, &v); code != 200 {
			t.Fatalf("GET /sweeps/%s: status %d", id, code)
		}
		if v.State == "done" || v.State == "failed" {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not reach a terminal state", id)
	return rawJobView{}
}

// TestRestartResumesUnfinishedJobs is the restart-resume oracle's
// in-process half: a job the manifest records as running (a crash landed
// mid-sweep) over a journal directory that already holds every cell must
// be re-enqueued by a fresh daemon, complete with ZERO re-simulated cells,
// and serve measurements identical to the uninterrupted reference run.
func TestRestartResumesUnfinishedJobs(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	jdir, jobsDir := t.TempDir(), t.TempDir()
	req := sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}}

	// Reference run fills the journal and pins the expected measurements.
	_, ts1, stop1 := startServer(t, serverConfig{JournalDir: jdir})
	refID := postSweep(t, ts1.URL, req)
	ref := waitDone(t, ts1.URL, refID)
	if ref.Simulated == 0 {
		t.Fatal("reference sweep simulated nothing")
	}
	stop1()

	// Manufacture the crash wreckage: a manifest whose job was mid-run.
	st, err := jobstore.Open(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Accept("s000001", 1, req, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := st.Transition("s000001", jobstore.StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The restarted daemon must re-enqueue and finish it from the journal.
	s2, ts2, _ := startServer(t, serverConfig{JournalDir: jdir, JobDir: jobsDir})
	resumed := waitDone(t, ts2.URL, "s000001")
	if resumed.Simulated != 0 {
		t.Errorf("resumed job re-simulated %d cells, want 0 (journal holds them all)", resumed.Simulated)
	}
	if cs := s2.cache.Stats(); cs.DiskHits == 0 {
		t.Errorf("resume served no disk hits: %+v", cs)
	}
	if !reflect.DeepEqual(stripMeta(t, ref.Result), stripMeta(t, resumed.Result)) {
		t.Error("resumed sweep diverges from the uninterrupted reference")
	}

	var full jobView
	if code := getJSON(t, ts2.URL+"/sweeps/s000001", &full); code != 200 || !full.Restored {
		t.Errorf("resumed job not marked restored: %d %+v", code, full)
	}
	var stz struct {
		Admission admissionStats `json:"admission"`
	}
	getJSON(t, ts2.URL+"/statsz", &stz)
	if stz.Admission.Restored != 1 {
		t.Errorf("statsz restored = %d, want 1", stz.Admission.Restored)
	}

	// The manifest now records the job done: a third boot restores it as a
	// terminal ledger entry, not a queued one.
	s3, ts3, _ := startServer(t, serverConfig{JournalDir: jdir, JobDir: jobsDir})
	var v3 jobView
	if code := getJSON(t, ts3.URL+"/sweeps/s000001", &v3); code != 200 || v3.State != "done" || !v3.Restored {
		t.Errorf("third boot ledger entry: %d %+v, want restored done", code, v3)
	}
	s3.mu.Lock()
	requeued := len(s3.queue)
	s3.mu.Unlock()
	if requeued != 0 {
		t.Errorf("third boot re-enqueued %d job(s), want 0", requeued)
	}
	_ = s2
}

// TestRestartResumeMidSweep interrupts a live sweep (the in-process
// equivalent of a kill mid-run: the daemon context is cancelled, which is
// what SIGTERM does) and proves the successor daemon finishes the job with
// the interrupted run's cells served from the journal — total simulation
// across both runs is exactly one sweep's worth.
func TestRestartResumeMidSweep(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	jdir, jobsDir := t.TempDir(), t.TempDir()
	// One worker and two benchmarks stretch the sweep so the interrupt
	// lands mid-run, not after it.
	req := sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf", "Milc"}, Workers: 1}

	_, ts1, stop1 := startServer(t, serverConfig{JournalDir: jdir, JobDir: jobsDir})
	id := postSweep(t, ts1.URL, req)

	// Wait for the sweep to make some progress, then pull the plug.
	var firstSim uint64
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v rawJobView
		getJSON(t, ts1.URL+"/sweeps/"+id, &v)
		if v.Simulated > 0 {
			firstSim = v.Simulated
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop1()

	// Count what the interrupted run actually journaled (stop1 may have
	// let a few more cells finish after the last poll).
	st, err := jobstore.Open(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := st.Jobs()
	_ = st.Close()
	if len(jobs) != 1 {
		t.Fatalf("manifest holds %d job(s), want 1", len(jobs))
	}
	if got := jobs[0].State; got != jobstore.StateInterrupted && got != jobstore.StateDone {
		t.Fatalf("manifest state after interrupt = %q, want interrupted (or done if the sweep won the race)", got)
	}
	if jobs[0].State == jobstore.StateDone {
		t.Skip("sweep completed before the interrupt landed; nothing to resume")
	}

	s2, ts2, _ := startServer(t, serverConfig{JournalDir: jdir, JobDir: jobsDir})
	resumed := waitDone(t, ts2.URL, id)

	// Zero re-execution: every cell is simulated exactly once across the
	// two daemon lifetimes.
	suite := config.SingleCoreDesigns()
	cells := uint64(2 * len(suite)) // 2 benchmarks × designs
	if got := firstSim + resumed.Simulated; got > cells {
		t.Errorf("cells re-simulated: run1 %d + run2 %d > %d total", firstSim, resumed.Simulated, cells)
	}
	if resumed.Simulated == cells {
		t.Errorf("resume re-simulated the whole sweep (%d cells); journal served nothing", cells)
	}

	// The resumed result must match a clean single-daemon run byte for byte
	// (modulo per-run journal/health bookkeeping).
	cleanDir := t.TempDir()
	_, ts3, _ := startServer(t, serverConfig{JournalDir: cleanDir})
	cleanID := postSweep(t, ts3.URL, req)
	clean := waitDone(t, ts3.URL, cleanID)
	if !reflect.DeepEqual(stripMeta(t, clean.Result), stripMeta(t, resumed.Result)) {
		t.Error("resumed sweep diverges from a clean uninterrupted run")
	}
	_ = s2
}

// TestRestoredSpecNoLongerValidFailsTerminally pins the poisoned-manifest
// guard: a persisted spec this daemon can no longer run must become a
// terminal failure, not a crash-looping queue entry.
func TestRestoredSpecNoLongerValidFailsTerminally(t *testing.T) {
	jobsDir := t.TempDir()
	st, err := jobstore.Open(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Accept("s000001", 1, map[string]string{"experiment": "no-such-experiment"}, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts, stop := startServer(t, serverConfig{JobDir: jobsDir})
	if code := getJSON(t, ts.URL+"/sweeps/s000001", nil); code != 404 {
		t.Errorf("invalid restored spec still in ledger: status %d", code)
	}
	stop()

	st2, err := jobstore.Open(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jobs := st2.Jobs()
	if len(jobs) != 1 || jobs[0].State != jobstore.StateFailed {
		t.Errorf("manifest after restore = %+v, want failed", jobs)
	}
}

// TestRestoredJobSpecRoundTrips pins that the spec the manifest persists
// is the request the daemon accepted, field for field.
func TestRestoredJobSpecRoundTrips(t *testing.T) {
	jobsDir := t.TempDir()
	seed := int64(7)
	req := sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}, Warmup: 11, Measure: 22, Seed: &seed, Sample: true, Workers: 3, KeepGoing: true}

	st, err := jobstore.Open(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Accept("s000001", 1, req, time.Time{}); err != nil {
		t.Fatal(err)
	}
	_ = st.Close()

	st2, err := jobstore.Open(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var got sweepRequest
	if err := json.Unmarshal(st2.Jobs()[0].Spec, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Errorf("spec round-trip: got %+v, want %+v", got, req)
	}
}
