package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vertical3d/internal/trace"
)

// postSweepRaw POSTs a request with optional extra headers and returns the
// response without asserting on the status.
func postSweepRaw(t *testing.T, base string, req sweepRequest, hdr map[string]string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/sweeps", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// longSweep is a request sized to occupy a slot for a few seconds: long
// enough for admission tests to observe a saturated daemon, short enough
// that a cancelled run drains quickly (the pool only observes cancellation
// between cells).
func longSweep() sweepRequest {
	return sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}, Measure: 1_000_000, Workers: 1}
}

// TestQueueFullSheds429 saturates a depth-1 queue behind a single busy slot
// and requires the next POST to be shed fast — the acceptance criterion is
// a 429 with Retry-After within 50ms, not a hang behind the queue.
func TestQueueFullSheds429(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, ts := newTestServer(t, serverConfig{MaxSweeps: 1, QueueDepth: 1})

	// Occupy the only slot with a sweep that outlives the test (the cleanup
	// context cancel kills it), then fill the queue.
	busy := postSweep(t, ts.URL, longSweep())
	waitRunning(t, s, busy)
	queued := postSweep(t, ts.URL, longSweep())

	start := time.Now()
	resp := postSweepRaw(t, ts.URL, longSweep(), nil)
	elapsed := time.Since(start)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429", resp.StatusCode)
	}
	// The 50ms bound is the acceptance criterion on a normal build; the
	// race detector slows the whole process (including the busy sweep
	// hogging the CPU) enough that only a looser bound is meaningful.
	bound := 50 * time.Millisecond
	if raceEnabled {
		bound = 500 * time.Millisecond
	}
	if elapsed > bound {
		t.Errorf("shed took %v, want < %v", elapsed, bound)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	var stz struct {
		Admission admissionStats `json:"admission"`
	}
	getJSON(t, ts.URL+"/statsz", &stz)
	if stz.Admission.Shed != 1 {
		t.Errorf("admission shed = %d, want 1", stz.Admission.Shed)
	}
	if stz.Admission.Accepted != 2 {
		t.Errorf("admission accepted = %d, want 2", stz.Admission.Accepted)
	}
	_ = queued
}

// waitRunning polls until the job leaves the queue and is running.
func waitRunning(t *testing.T, s *server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j != nil {
			j.mu.Lock()
			running := j.state == "running"
			j.mu.Unlock()
			if running {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// TestDeadlineRejections pins the malformed- and already-expired-deadline
// responses: all 400, none admitted.
func TestDeadlineRejections(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})

	cases := []struct {
		name  string
		value string
	}{
		{"past RFC3339", time.Now().Add(-time.Hour).Format(time.RFC3339)},
		{"negative duration", "-5s"},
		{"zero duration", "0s"},
		{"garbage", "soon-ish"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSweepRaw(t, ts.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}},
				map[string]string{deadlineHeader: tc.value})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("deadline %q: status %d, want 400", tc.value, resp.StatusCode)
			}
		})
	}

	// The query parameter is an equivalent spelling.
	body, _ := json.Marshal(sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}})
	resp, err := http.Post(ts.URL+"/sweeps?deadline=-1s", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?deadline=-1s: status %d, want 400", resp.StatusCode)
	}

	var stz struct {
		Admission admissionStats `json:"admission"`
	}
	getJSON(t, ts.URL+"/statsz", &stz)
	if stz.Admission.DeadlineRejected == 0 {
		t.Error("statsz recorded no deadline rejections")
	}
	if stz.Admission.Accepted != 0 {
		t.Errorf("admission accepted = %d, want 0", stz.Admission.Accepted)
	}
}

// TestDeadlineExpiresInQueue parks a short-deadline job behind a busy slot
// and requires the dispatcher's expiry sweep to fail it terminally without
// it ever running.
func TestDeadlineExpiresInQueue(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, ts := newTestServer(t, serverConfig{MaxSweeps: 1, QueueDepth: 4})

	busy := postSweep(t, ts.URL, longSweep())
	waitRunning(t, s, busy)

	resp := postSweepRaw(t, ts.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}},
		map[string]string{deadlineHeader: "50ms"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST with live deadline: status %d, want 202", resp.StatusCode)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}

	v := waitTerminal(t, ts.URL, created.ID)
	if v.State != "failed" {
		t.Fatalf("queued job with expired deadline: state %q, want failed", v.State)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Errorf("failure reason %q does not mention the deadline", v.Error)
	}
	if v.Simulated != 0 {
		t.Errorf("expired job simulated %d cells, want 0", v.Simulated)
	}

	var stz struct {
		Admission admissionStats `json:"admission"`
	}
	getJSON(t, ts.URL+"/statsz", &stz)
	if stz.Admission.ExpiredInQueue != 1 {
		t.Errorf("expired_in_queue = %d, want 1", stz.Admission.ExpiredInQueue)
	}
}

// TestDeadlinePropagatesToRunningSweep gives a long sweep a short deadline
// and requires the context to cut it off mid-run as a terminal failure —
// the daemon is alive, so this is NOT a resumable interruption.
func TestDeadlinePropagatesToRunningSweep(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	_, ts := newTestServer(t, serverConfig{})

	resp := postSweepRaw(t, ts.URL, longSweep(), map[string]string{deadlineHeader: "300ms"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: status %d, want 202", resp.StatusCode)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}

	v := waitTerminal(t, ts.URL, created.ID)
	if v.State != "failed" {
		t.Fatalf("over-deadline sweep: state %q, want failed", v.State)
	}
	if !strings.Contains(v.Error, "deadline") && !strings.Contains(v.Error, "context") {
		t.Errorf("failure reason %q mentions neither deadline nor context", v.Error)
	}

	// The deadline is also visible on the job document.
	var full jobView
	getJSON(t, ts.URL+"/sweeps/"+created.ID, &full)
	if full.Deadline == nil {
		t.Error("job view omits the deadline")
	}
}

// TestLoadShedPrefersCacheServiceable queues one cache-cold and one
// cache-warm sweep behind a busy slot and requires the dispatcher to pick
// the warm one first: under pressure, work the journal can answer cheaply
// jumps the queue.
func TestLoadShedPrefersCacheServiceable(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	jdir := t.TempDir()

	var mu sync.Mutex
	var runOrder []string
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if strings.Contains(line, "running") {
			mu.Lock()
			runOrder = append(runOrder, line)
			mu.Unlock()
		}
	}

	s, ts := newTestServer(t, serverConfig{JournalDir: jdir, MaxSweeps: 1, QueueDepth: 8, Logf: logf})

	// Warm the journal with the sweep the "warm" job will repeat.
	warmReq := sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}}
	warmID := postSweep(t, ts.URL, warmReq)
	waitDone(t, ts.URL, warmID)

	// Saturate the slot with a sweep that holds it for a moment but does
	// finish, then queue cold before warm.
	busy := postSweep(t, ts.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Lbm"}, Measure: 400_000, Workers: 1})
	waitRunning(t, s, busy)
	seed := int64(99)
	coldID := postSweep(t, ts.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Milc"}, Seed: &seed})
	warm2ID := postSweep(t, ts.URL, warmReq)

	// When the slot frees, the dispatcher should pick the warm job first.
	waitDone(t, ts.URL, warm2ID)
	waitDone(t, ts.URL, coldID)

	mu.Lock()
	defer mu.Unlock()
	warmAt, coldAt := -1, -1
	for i, line := range runOrder {
		if strings.Contains(line, warm2ID+" ") {
			warmAt = i
		}
		if strings.Contains(line, coldID+" ") {
			coldAt = i
		}
	}
	if warmAt < 0 || coldAt < 0 {
		t.Fatalf("run order missing jobs: %q", runOrder)
	}
	if warmAt > coldAt {
		t.Errorf("cache-warm job ran after the cold one: %q", runOrder)
	}
}
