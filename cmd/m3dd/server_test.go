package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// newTestServer starts an httptest daemon with quick sizing.
func newTestServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	cfg.Quick = true
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := newServer(ctx, cfg)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.wait()
	})
	return s, ts
}

// postSweep submits a request and returns the job id.
func postSweep(t *testing.T, base string, req sweepRequest) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps: status %d", resp.StatusCode)
	}
	var out struct{ ID string `json:"id"` }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// getJSON decodes a GET endpoint into out and returns the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// rawJobView keeps the result as raw JSON so tests can compare it against
// an independently built view without type-erasure mismatches.
type rawJobView struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Error     string          `json:"error"`
	Simulated uint64          `json:"simulated_cells"`
	Result    json.RawMessage `json:"result"`
}

// waitDone polls a job until it reaches a terminal state.
func waitDone(t *testing.T, base, id string) rawJobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var v rawJobView
		if code := getJSON(t, base+"/sweeps/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /sweeps/%s: status %d", id, code)
		}
		switch v.State {
		case "done":
			return v
		case "failed":
			t.Fatalf("sweep %s failed: %s", id, v.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish", id)
	return rawJobView{}
}

func TestSweepRequestValidation(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, serverConfig{})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name, body string
	}{
		{"unknown experiment", `{"experiment":"fig1"}`},
		{"unknown benchmark", `{"experiment":"fig6","benchmarks":["NoSuchBench"]}`},
		{"unknown field", `{"experiment":"fig6","bogus":1}`},
		{"benchmarks on a table", `{"experiment":"table3","benchmarks":["Mcf"]}`},
		{"negative workers", `{"experiment":"fig6","workers":-1}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		if code := post(c.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
		}
	}
	if code := getJSON(t, ts.URL+"/sweeps/s999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

// TestSweepOracleMatchesDirectRun is the serving-layer acceptance oracle:
// a fig6 sweep served by the daemon — through its cache, worker pool and
// wire encoding — must be value-identical to running the library directly.
func TestSweepOracleMatchesDirectRun(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	_, ts := newTestServer(t, serverConfig{})

	id := postSweep(t, ts.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}})
	v := waitDone(t, ts.URL, id)
	if v.Simulated == 0 {
		t.Fatalf("cold sweep simulated no cells")
	}

	// The direct run: same sizing (the test server runs Quick), no daemon,
	// no cache.
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ByName("Mcf")
	if err != nil {
		t.Fatal(err)
	}
	opt := experiments.QuickRunOptions()
	opt.Workers = 2
	direct, err := experiments.Fig6With(suite, []trace.Profile{prof}, opt)
	if err != nil {
		t.Fatal(err)
	}

	var got, want any
	if err := json.Unmarshal(v.Result, &got); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := json.Marshal(fig6View(direct))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wantBytes, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("daemon fig6 result diverges from the direct library run\n got: %.300s...\nwant: %.300s...",
			v.Result, wantBytes)
	}
}

// TestConcurrentIdenticalSweepsCoalesce is the single-flight acceptance
// gate: K identical sweeps submitted together must execute one sweep's
// worth of simulations — every other cell is served as a memory hit or
// coalesced onto the in-flight computation — and all K must return
// byte-identical cell payloads.
func TestConcurrentIdenticalSweepsCoalesce(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	const k = 4
	s, ts := newTestServer(t, serverConfig{MaxSweeps: k})

	req := sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}}
	ids := make([]string, k)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = postSweep(t, ts.URL, req)
		}(i)
	}
	wg.Wait()
	var totalSim uint64
	for _, id := range ids {
		totalSim += waitDone(t, ts.URL, id).Simulated
	}

	cells := uint64(len(config.SingleCoreDesigns())) // 1 benchmark × designs
	if totalSim != cells {
		t.Errorf("%d sweeps simulated %d cells in total, want exactly %d (one sweep's worth)",
			k, totalSim, cells)
	}
	cs := s.cache.Stats()
	if cs.Computed != cells {
		t.Errorf("cache computed %d cells, want %d", cs.Computed, cells)
	}
	if cs.Hits+cs.Coalesced != (k-1)*cells {
		t.Errorf("cache served %d hits + %d coalesced, want %d", cs.Hits, cs.Coalesced, (k-1)*cells)
	}

	// All K payloads byte-identical.
	var first []byte
	for i, id := range ids {
		resp, err := http.Get(ts.URL + "/sweeps/" + id + "/cells")
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if i == 0 {
			first = body.Bytes()
		} else if !bytes.Equal(first, body.Bytes()) {
			t.Errorf("sweep %s cell payload differs from sweep %s", id, ids[0])
		}
	}
}

// TestEventsStreamFollowsSweep reads a job's SSE stream end to end: it must
// replay the queued state, carry a cell event per simulated cell, and
// terminate with the done event.
func TestEventsStreamFollowsSweep(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	_, ts := newTestServer(t, serverConfig{})

	id := postSweep(t, ts.URL, sweepRequest{Experiment: "lpstudy", Benchmarks: []string{"Mcf"}})
	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			types = append(types, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) < 2 || types[0] != "state" || types[len(types)-1] != "done" {
		t.Fatalf("event stream %v: want state ... done", types)
	}
	cellEvents := 0
	for _, ty := range types {
		if ty == "cell" {
			cellEvents++
		}
	}
	v := waitDone(t, ts.URL, id)
	if uint64(cellEvents) != v.Simulated {
		t.Errorf("stream carried %d cell events, job simulated %d cells", cellEvents, v.Simulated)
	}
}

// TestDiskTierServesAcrossDaemonRestart proves the m3dd restart path: a
// sweep journaled by one daemon instance is served by a fresh instance over
// the same journal directory without any re-simulation.
func TestDiskTierServesAcrossDaemonRestart(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	dir := t.TempDir()

	_, ts1 := newTestServer(t, serverConfig{JournalDir: dir})
	id := postSweep(t, ts1.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}})
	first := waitDone(t, ts1.URL, id)
	if first.Simulated == 0 {
		t.Fatal("cold sweep simulated nothing")
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, serverConfig{JournalDir: dir})
	id2 := postSweep(t, ts2.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}})
	second := waitDone(t, ts2.URL, id2)
	if second.Simulated != 0 {
		t.Errorf("restarted daemon re-simulated %d cells despite the journal", second.Simulated)
	}
	if cs := s2.cache.Stats(); cs.DiskHits == 0 {
		t.Errorf("disk tier served nothing: %+v", cs)
	}
	// The journal/health blocks legitimately differ (the first run appended
	// cells, the second loaded them); the measurements must not.
	if !reflect.DeepEqual(stripMeta(t, first.Result), stripMeta(t, second.Result)) {
		t.Error("disk-served sweep diverges from the original")
	}
}

// stripMeta drops the per-run bookkeeping (journal counters, degradation
// events) from a result document, leaving only the measurements.
func stripMeta(t *testing.T, raw json.RawMessage) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "journal")
	delete(m, "health")
	return m
}

func TestHealthzAndStatsz(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, serverConfig{})

	var hz healthzView
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, hz)
	}
	if hz.JobStore != "disabled" {
		t.Fatalf("healthz jobstore = %q, want disabled (no -job-dir)", hz.JobStore)
	}
	var st struct {
		Cache      resultcache.Stats `json:"cache"`
		Jobs       map[string]int    `json:"jobs"`
		QueueDepth int               `json:"queue_depth"`
		JobStore   string            `json:"jobstore"`
	}
	if code := getJSON(t, ts.URL+"/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz: %d", code)
	}
	if st.QueueDepth == 0 || st.JobStore != "disabled" {
		t.Fatalf("statsz admission fields missing: %+v", st)
	}

	s.drain()
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", code)
	}
	resp, err := http.Post(ts.URL+"/sweeps", "application/json",
		strings.NewReader(`{"experiment":"fig6"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /sweeps: %d, want 503", resp.StatusCode)
	}
}

// TestTableSweeps smoke-runs the non-figure experiments through the API.
func TestTableSweeps(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, serverConfig{})
	for _, exp := range []string{"table6"} {
		id := postSweep(t, ts.URL, sweepRequest{Experiment: exp})
		v := waitDone(t, ts.URL, id)
		var view sweepResultView
		if err := json.Unmarshal(v.Result, &view); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if len(view.M3DChoices) == 0 || len(view.TSVChoices) == 0 {
			t.Errorf("%s: empty choices", exp)
		}
	}
}
