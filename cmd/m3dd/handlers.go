package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"vertical3d/internal/experiments"
	"vertical3d/internal/jobstore"
	"vertical3d/internal/resultcache"
)

// routes builds the HTTP surface.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", s.handleCreate)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleGet)
	mux.HandleFunc("GET /sweeps/{id}/cells", s.handleCells)
	mux.HandleFunc("GET /sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// deadlineHeader and deadlineQuery carry a request's absolute or relative
// deadline: a Go duration ("90s", "2m") relative to arrival, or an RFC 3339
// timestamp. The header wins when both are set.
const deadlineHeader = "X-M3D-Deadline"

// parseDeadline resolves the request's deadline (zero time = none).
func parseDeadline(r *http.Request) (time.Time, error) {
	raw := r.Header.Get(deadlineHeader)
	if raw == "" {
		raw = r.URL.Query().Get("deadline")
	}
	if raw == "" {
		return time.Time{}, nil
	}
	if d, err := time.ParseDuration(raw); err == nil {
		if d <= 0 {
			return time.Time{}, fmt.Errorf("deadline duration must be positive, got %q", raw)
		}
		return time.Now().Add(d), nil
	}
	t, err := time.Parse(time.RFC3339, raw)
	if err != nil {
		return time.Time{}, fmt.Errorf("deadline %q is neither a duration nor RFC 3339", raw)
	}
	return t, nil
}

// handleCreate is the admission gate: validate, resolve the deadline,
// write-ahead the accepted spec, enqueue, and answer 202 — or shed with an
// explicit status the client can act on (503 draining, 400 bad/expired
// deadline, 429 + Retry-After over a full queue).
func (s *server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || s.ctx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "m3dd is draining")
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline, err := parseDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !deadline.IsZero() && !deadline.After(time.Now()) {
		s.mu.Lock()
		s.admission.DeadlineRejected++
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, "deadline %s already expired", deadline.Format(time.RFC3339))
		return
	}

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "m3dd is draining")
		return
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		queued := len(s.queue)
		s.admission.Shed++
		s.mu.Unlock()
		// Retry-After scales with the backlog: a deeper queue means a
		// longer wait before a slot is worth asking for again.
		retry := min(60, max(1, queued/max(1, s.cfg.MaxSweeps)))
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, "queue full (%d sweep(s) queued); retry after %ds", queued, retry)
		return
	}
	s.seq++
	j := s.newJobLocked(fmt.Sprintf("s%06d", s.seq), req)
	j.deadline = deadline
	s.admission.Accepted++
	// Write-ahead: the spec reaches the manifest before the job reaches
	// the queue, so an accepted sweep survives any later crash. An append
	// failure degrades to memory-only jobs — it never refuses the request.
	if s.store != nil {
		if err := s.store.Accept(j.id, s.seq, req, deadline); err != nil {
			s.noteStoreFailure(err)
		} else if terr := s.store.Transition(j.id, jobstore.StateQueued, ""); terr != nil {
			s.noteStoreFailure(terr)
		}
	}
	s.wg.Add(1)
	s.queue = append(s.queue, j)
	s.evictLocked()
	s.kickLocked()
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":  j.id,
		"url": "/sweeps/" + j.id,
	})
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
	}
	return j
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *server) handleCells(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	var cells []cellView
	if j.result != nil {
		cells = j.result.Cells
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"state": state, "cells": cells})
}

// handleEvents streams a job's progress as server-sent events. The stream
// replays the retained event window — the ring holds the last EventCap
// events; a subscriber that has fallen behind it receives a "lost" marker
// carrying the gap, then resumes from the oldest retained event — and then
// follows live. It ends after the terminal done/failed event, after an
// "evicted" marker when the ledger drops the job mid-stream, when the
// client disconnects, or at daemon shutdown.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev jobEvent) {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	}

	next := 0 // absolute sequence number of the next event to stream
	for {
		j.mu.Lock()
		var lost int
		if next < j.firstSeq {
			lost = j.firstSeq - next
			next = j.firstSeq
		}
		// Copy under the lock: the ring trims in place, so streaming a live
		// subslice outside the lock would race the writer.
		pending := append([]jobEvent(nil), j.events[next-j.firstSeq:]...)
		terminal := jobstore.Terminal(j.state) || j.evicted
		notify := j.notify
		j.mu.Unlock()

		if lost > 0 {
			writeEvent(jobEvent{Seq: next - 1, Type: "lost", Lost: lost})
		}
		for _, ev := range pending {
			writeEvent(ev)
			next++
		}
		flusher.Flush()
		// The terminal event is appended in the same critical section as the
		// terminal state, so observing the state means it was in pending.
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// healthzView is the GET /healthz document. The status is "ok" or
// "degraded" — a degraded node is still serving (every rung of the
// degradation ladder keeps answering traffic), so the HTTP status stays
// 200 and load balancers that only look at the code keep routing to it;
// ones that parse the body can prefer healthy peers. Only draining flips
// the code to 503.
type healthzView struct {
	Status string `json:"status"` // ok | degraded | draining
	// JobStore is the manifest's mode: "ok" (persisting), "memory-only"
	// (unusable or append-degraded), "disabled" (no -job-dir).
	JobStore string `json:"jobstore"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Depth    int    `json:"queue_depth"`
	// Degraded lists the layers with recorded degradation events.
	Degraded []string `json:"degraded,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, healthzView{Status: "draining", JobStore: s.jobstoreMode()})
		return
	}
	v := healthzView{Status: "ok", JobStore: s.jobstoreMode(), Depth: s.cfg.QueueDepth}
	s.mu.Lock()
	v.Queued = len(s.queue)
	v.Running = s.running
	s.mu.Unlock()
	seen := map[string]bool{}
	for _, ev := range s.healthSnapshot() {
		if !seen[ev.Layer] {
			seen[ev.Layer] = true
			v.Degraded = append(v.Degraded, ev.Layer)
		}
	}
	if v.JobStore == "memory-only" && !seen["jobstore"] {
		v.Degraded = append(v.Degraded, "jobstore")
	}
	if len(v.Degraded) > 0 {
		v.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, v)
}

// jobstoreMode names the manifest's current mode for /healthz and /statsz.
func (s *server) jobstoreMode() string {
	if s.cfg.JobDir == "" {
		return "disabled"
	}
	if s.store == nil || s.store.DegradedCause() != nil || s.storeNoted.Load() {
		return "memory-only"
	}
	return "ok"
}

// statszView is the GET /statsz document: the cache's hit/coalesce/disk
// counters, the job ledger, the queue and admission counters, the
// manifest's state, and the degradation events of recent sweeps.
type statszView struct {
	Cache         resultcache.Stats              `json:"cache"`
	Jobs          map[string]int                 `json:"jobs"`
	Queued        int                            `json:"queued"`
	Running       int                            `json:"running"`
	QueueDepth    int                            `json:"queue_depth"`
	Admission     admissionStats                 `json:"admission"`
	JobStore      string                         `json:"jobstore"`
	JobStoreStats *jobstore.Stats                `json:"jobstore_stats,omitempty"`
	ResultBytes   int64                          `json:"result_bytes"`
	EventsLost    int                            `json:"events_lost"`
	Experiments   []string                       `json:"experiments"`
	Health        []experiments.DegradationEvent `json:"health,omitempty"`
	UptimeSeconds float64                        `json:"uptime_seconds"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	v := statszView{
		Cache:         s.cache.Stats(),
		Jobs:          map[string]int{},
		QueueDepth:    s.cfg.QueueDepth,
		JobStore:      s.jobstoreMode(),
		Experiments:   experimentNames,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.store != nil {
		st := s.store.Stats()
		v.JobStoreStats = &st
	}
	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		v.Jobs[j.state]++
		v.EventsLost += j.eventsLost
		j.mu.Unlock()
	}
	v.Queued = len(s.queue)
	v.Running = s.running
	v.Admission = s.admission
	v.ResultBytes = s.resultBytes
	s.mu.Unlock()
	v.Health = s.healthSnapshot()
	writeJSON(w, http.StatusOK, v)
}
