package main

import (
	"vertical3d/internal/core"
	"vertical3d/internal/experiments"
	"vertical3d/internal/journal"
)

// cellView is one benchmark × design cell of a sweep result. Result holds
// the cell's full measurement (experiments.AppResult for fig6,
// multicore.RunResult for fig9, total joules for lpstudy), so deep-equality
// over a sweepResultView subsumes a per-cell comparison of everything the
// pipeline measures.
type cellView struct {
	Benchmark string `json:"benchmark"`
	Design    string `json:"design"`
	Error     string `json:"error,omitempty"`
	Result    any    `json:"result,omitempty"`
}

// sweepResultView is the wire form of a finished sweep. Design-keyed maps
// become name-keyed (config.Design is an int; its JSON map keys would be
// opaque digits) and cells are flattened benchmark-major, design-minor.
type sweepResultView struct {
	Experiment string     `json:"experiment"`
	Benchmarks []string   `json:"benchmarks,omitempty"`
	Designs    []string   `json:"designs,omitempty"`
	Cells      []cellView `json:"cells,omitempty"`

	Speedup    map[string]map[string]float64 `json:"speedup,omitempty"`
	NormEnergy map[string]map[string]float64 `json:"norm_energy,omitempty"`

	// lpstudy
	HetEnergy     map[string]float64 `json:"het_energy,omitempty"`
	LPEnergy      map[string]float64 `json:"lp_energy,omitempty"`
	ExtraSavingPP float64            `json:"extra_saving_pp,omitempty"`

	// table3-5 / table6
	Rows       []experiments.PartRow `json:"rows,omitempty"`
	M3DChoices []core.Choice         `json:"m3d_choices,omitempty"`
	TSVChoices []core.Choice         `json:"tsv_choices,omitempty"`

	Journal journal.Stats      `json:"journal"`
	Health  experiments.Health `json:"health"`
}

// fig6View flattens a Fig6Result.
func fig6View(f *experiments.Fig6Result) *sweepResultView {
	v := &sweepResultView{
		Experiment: "fig6",
		Benchmarks: f.Benchmarks,
		Speedup:    map[string]map[string]float64{},
		NormEnergy: map[string]map[string]float64{},
		Journal:    f.Journal,
		Health:     f.Health,
	}
	for _, d := range f.Designs {
		v.Designs = append(v.Designs, d.String())
	}
	for _, b := range f.Benchmarks {
		v.Speedup[b] = map[string]float64{}
		v.NormEnergy[b] = map[string]float64{}
		for _, d := range f.Designs {
			cv := cellView{Benchmark: b, Design: d.String()}
			if err := f.Errors[b][d]; err != nil {
				cv.Error = err.Error()
			} else {
				cv.Result = f.Runs[b][d]
			}
			v.Cells = append(v.Cells, cv)
			if sp, ok := f.Speedup[b][d]; ok {
				v.Speedup[b][d.String()] = sp
			}
			if ne, ok := f.NormEnergy[b][d]; ok {
				v.NormEnergy[b][d.String()] = ne
			}
		}
	}
	return v
}

// fig9View flattens a Fig9Result.
func fig9View(f *experiments.Fig9Result) *sweepResultView {
	v := &sweepResultView{
		Experiment: "fig9",
		Benchmarks: f.Benchmarks,
		Speedup:    map[string]map[string]float64{},
		NormEnergy: map[string]map[string]float64{},
		Journal:    f.Journal,
		Health:     f.Health,
	}
	for _, d := range f.Designs {
		v.Designs = append(v.Designs, d.String())
	}
	for _, b := range f.Benchmarks {
		v.Speedup[b] = map[string]float64{}
		v.NormEnergy[b] = map[string]float64{}
		for _, d := range f.Designs {
			cv := cellView{Benchmark: b, Design: d.String()}
			if err := f.Errors[b][d]; err != nil {
				cv.Error = err.Error()
			} else {
				cv.Result = f.Runs[b][d]
			}
			v.Cells = append(v.Cells, cv)
			if sp, ok := f.Speedup[b][d]; ok {
				v.Speedup[b][d.String()] = sp
			}
			if ne, ok := f.NormEnergy[b][d]; ok {
				v.NormEnergy[b][d.String()] = ne
			}
		}
	}
	return v
}

// lpView flattens an LPStudyResult.
func lpView(r *experiments.LPStudyResult) *sweepResultView {
	return &sweepResultView{
		Experiment:    "lpstudy",
		Benchmarks:    r.Benchmarks,
		HetEnergy:     r.HetEnergy,
		LPEnergy:      r.LPEnergy,
		ExtraSavingPP: r.ExtraSavingPP,
		Journal:       r.Journal,
		Health:        r.Health,
	}
}
