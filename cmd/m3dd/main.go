// Command m3dd is the design-space-exploration daemon: the sweep library
// behind an HTTP/JSON API, with a process-wide content-addressed result
// cache in front of it so repeated and concurrent sweeps are served instead
// of re-simulated, and a write-ahead job manifest under it so accepted
// sweeps survive crashes and redeploys.
//
//	m3dd -addr 127.0.0.1:8321 -journal-dir /var/lib/m3dd/journal -job-dir /var/lib/m3dd/jobs
//
//	POST /sweeps              {"experiment":"fig6","benchmarks":["Mcf"]}  → 202 {id,url}
//	                          429 + Retry-After over a full queue;
//	                          X-M3D-Deadline / ?deadline= bounds the sweep
//	GET  /sweeps              job ledger
//	GET  /sweeps/{id}         job state + full result when done
//	GET  /sweeps/{id}/cells   flattened per-cell results
//	GET  /sweeps/{id}/events  live progress (server-sent events; the last
//	                          -event-buffer events replay, older ones are
//	                          summarised by a "lost" marker)
//	GET  /healthz             200 ok|degraded / 503 draining
//	GET  /statsz              cache, queue, admission and manifest counters
//
// Identical cells across sweeps coalesce onto one simulation (single
// flight); finished cells are served from the in-memory cache; with
// -journal-dir, cells journaled by earlier runs — including m3dcli runs
// over the same directory — are served from disk without re-simulation.
// Results are bit-identical to direct m3dcli output in every case.
//
// With -job-dir, every accepted sweep spec and state transition is
// write-ahead recorded in a job manifest: after a crash (even kill -9) a
// restarted daemon replays the manifest, re-enqueues every unfinished job
// and re-runs it with completed cells served from the journal — zero cell
// re-execution. An unusable manifest downgrades to memory-only jobs and a
// /healthz warning; it never refuses traffic.
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting, queued
// sweeps are recorded as interrupted (resumed by the next boot), running
// sweeps finish their in-flight cells, journals flush, then the process
// exits 130. A second signal force-quits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"vertical3d/internal/parallel"
	"vertical3d/internal/shutdown"
	"vertical3d/internal/trace"
	"vertical3d/internal/warm"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	workers := flag.Int("j", 0, "default worker count per sweep (0 = GOMAXPROCS); results are identical at any value")
	quick := flag.Bool("quick", false, "default sweeps to small simulation sizes (requests can still size explicitly)")
	journalDir := flag.String("journal-dir", "", "journal completed cells here and serve previously journaled cells from disk (created if missing)")
	jobDir := flag.String("job-dir", "", "persist the job ledger here as a write-ahead manifest; a restarted daemon resumes unfinished jobs (created if missing)")
	traceDir := flag.String("trace-dir", "", "directory for packed .m3dtrace recordings, reused across runs (created if missing)")
	warmDir := flag.String("warm-dir", "", "directory for .m3dwarm warm-state snapshots, reused across runs (created if missing)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "in-memory result-cache budget in bytes, also bounding retained job results (<= 0 = unbounded)")
	maxSweeps := flag.Int("max-sweeps", 2, "sweeps simulating concurrently; further accepted sweeps queue")
	queueDepth := flag.Int("queue-depth", 64, "accepted sweeps waiting for a slot before POSTs are shed with 429")
	keepJobs := flag.Int("keep-jobs", 64, "finished sweeps retained for GET before the oldest are evicted")
	eventBuffer := flag.Int("event-buffer", 256, "progress events retained per job for SSE replay; older events collapse into a lost marker")
	retries := flag.Int("retries", 1, "attempts per sweep cell; transient failures retry with jittered exponential backoff")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for open HTTP connections")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	parallel.SetDefaultWorkers(*workers)
	if err := trace.SetCacheDir(*traceDir); err != nil {
		logger.Fatalf("m3dd: -trace-dir: %v", err)
	}
	if err := warm.SetCacheDir(*warmDir); err != nil {
		logger.Fatalf("m3dd: -warm-dir: %v", err)
	}

	shut := shutdown.Install(context.Background(), shutdown.WithLog(logger.Printf))
	defer shut.Stop()

	srv := newServer(shut.Context(), serverConfig{
		Workers:     *workers,
		JournalDir:  *journalDir,
		JobDir:      *jobDir,
		CacheBudget: *cacheBytes,
		MaxSweeps:   *maxSweeps,
		QueueDepth:  *queueDepth,
		KeepJobs:    *keepJobs,
		EventCap:    *eventBuffer,
		Quick:       *quick,
		Retry:       parallel.Retry{Attempts: *retries},
		Logf:        logger.Printf,
	})

	// Listen explicitly so the bound address — which differs from -addr
	// when the port is 0 — is logged before serving; the chaos harness
	// scrapes it to find a restarted daemon.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "m3dd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		<-shut.Context().Done()
		srv.drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	logger.Printf("m3dd: listening on %s (cache %d MiB, %d concurrent sweeps, queue %d)",
		ln.Addr(), *cacheBytes>>20, *maxSweeps, *queueDepth)
	err = httpSrv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "m3dd: %v\n", err)
		os.Exit(1)
	}
	// The listener is down; let accepted sweeps drain before exiting so
	// their journals and the job manifest are complete.
	srv.wait()
	if srv.store != nil {
		if err := srv.store.Close(); err != nil {
			logger.Printf("m3dd: %v", err)
		}
	}
	logger.Printf("m3dd: drained, exiting")
	os.Exit(shut.ExitCode(0))
}
