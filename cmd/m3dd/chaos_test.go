package main

import (
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vertical3d/internal/fsio"
	"vertical3d/internal/jobstore"
	"vertical3d/internal/journal"
	"vertical3d/internal/trace"
)

// TestChaosManifestFaultsUnderLoad injects write faults into the job
// manifest while sweeps are accepted and run: every POST must still be
// accepted, every sweep must finish with results identical to an
// uninjected reference, and the daemon must report the downgrade to
// memory-only jobs — a bookkeeping failure never refuses traffic.
func TestChaosManifestFaultsUnderLoad(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()

	// Uninjected reference.
	refReq := sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}}
	_, tsRef := newTestServer(t, serverConfig{})
	refID := postSweep(t, tsRef.URL, refReq)
	ref := waitDone(t, tsRef.URL, refID)

	// Poison every manifest write after the first few, so the daemon boots
	// clean and degrades mid-service.
	jobsDir := t.TempDir()
	jobstore.SetFS(fsio.NewInjector(1, nil, fsio.Rule{
		Op: fsio.OpWrite, Match: jobsDir, After: 2,
	}))
	defer jobstore.SetFS(nil)

	s, ts := newTestServer(t, serverConfig{JobDir: jobsDir, MaxSweeps: 2, QueueDepth: 16})

	// Several concurrent sweeps; all must be accepted and finish.
	ids := []string{postSweep(t, ts.URL, refReq), postSweep(t, ts.URL, refReq), postSweep(t, ts.URL, refReq)}
	for _, id := range ids {
		v := waitDone(t, ts.URL, id)
		if !reflect.DeepEqual(stripMeta(t, ref.Result), stripMeta(t, v.Result)) {
			t.Errorf("sweep %s under manifest faults diverges from the reference", id)
		}
	}

	// The downgrade is visible: memory-only jobstore, degraded status.
	var hz healthzView
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status %d, want 200 even degraded", code)
	}
	if hz.JobStore != "memory-only" {
		t.Errorf("healthz jobstore = %q, want memory-only", hz.JobStore)
	}
	if hz.Status != "degraded" {
		t.Errorf("healthz status = %q, want degraded", hz.Status)
	}
	if st := s.store.Stats(); !st.Degraded {
		t.Errorf("jobstore stats not degraded: %+v", st)
	}

	// New POSTs still work after the downgrade.
	lateID := postSweep(t, ts.URL, refReq)
	late := waitDone(t, ts.URL, lateID)
	if !reflect.DeepEqual(stripMeta(t, ref.Result), stripMeta(t, late.Result)) {
		t.Error("post-downgrade sweep diverges from the reference")
	}
}

// TestChaosJournalFaultsUnderServing injects journal write faults under a
// live daemon: sweeps must complete with correct results and the result
// document's health block must record the degradation instead of hiding it.
func TestChaosJournalFaultsUnderServing(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()

	refReq := sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}}
	_, tsRef := newTestServer(t, serverConfig{})
	ref := waitDone(t, tsRef.URL, postSweep(t, tsRef.URL, refReq))

	jdir := t.TempDir()
	journal.SetFS(fsio.NewInjector(7, nil, fsio.Rule{
		Op: fsio.OpWrite, Match: jdir, After: 1,
	}))
	defer journal.SetFS(nil)

	_, ts := newTestServer(t, serverConfig{JournalDir: jdir})
	v := waitDone(t, ts.URL, postSweep(t, ts.URL, refReq))
	if !reflect.DeepEqual(stripMeta(t, ref.Result), stripMeta(t, v.Result)) {
		t.Error("sweep under journal faults diverges from the reference")
	}

	// The degradation is recorded in the result's health block.
	var doc struct {
		Result struct {
			Health struct {
				Events []map[string]any `json:"events"`
			} `json:"health"`
		} `json:"result"`
	}
	getJSON(t, ts.URL+"/sweeps/"+v.ID, &doc)
	if len(doc.Result.Health.Events) == 0 {
		t.Error("journal faults produced no health events in the result")
	}
}

// TestChaosManifestUnusableAtBoot points -job-dir at a regular file: the
// daemon must come up memory-only with a healthz warning and serve sweeps
// normally — the serving rung of the degradation ladder.
func TestChaosManifestUnusableAtBoot(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()

	bad := filepath.Join(t.TempDir(), "jobs")
	if err := os.WriteFile(bad, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, serverConfig{JobDir: bad})
	if s.store != nil {
		t.Error("store is non-nil despite an unusable job dir")
	}

	var hz healthzView
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", code)
	}
	if hz.JobStore != "memory-only" {
		t.Errorf("healthz jobstore = %q, want memory-only", hz.JobStore)
	}
	if len(hz.Degraded) == 0 {
		t.Error("healthz carries no degradation warning")
	}

	// Traffic still flows.
	v := waitDone(t, ts.URL, postSweep(t, ts.URL, sweepRequest{Experiment: "lpstudy", Benchmarks: []string{"Mcf"}}))
	if v.State != "done" {
		t.Errorf("sweep under memory-only jobs: state %q", v.State)
	}
}

// TestChaosManifestCorruptSegmentQuarantinedAtBoot writes garbage into the
// job dir next to a valid manifest: the daemon must quarantine the corrupt
// segment, replay the valid one, and keep persisting.
func TestChaosManifestCorruptSegmentQuarantinedAtBoot(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	jobsDir := t.TempDir()

	// A valid manifest with one unfinished job...
	st, err := jobstore.Open(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	req := sweepRequest{Experiment: "lpstudy", Benchmarks: []string{"Mcf"}}
	if err := st.Accept("s000001", 1, req, time.Time{}); err != nil {
		t.Fatal(err)
	}
	_ = st.Close()
	// ...plus a corrupt sibling segment.
	if err := os.WriteFile(filepath.Join(jobsDir, "zzz-corrupt.m3dq"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, serverConfig{JobDir: jobsDir})
	v := waitDone(t, ts.URL, "s000001")
	if v.State != "done" {
		t.Fatalf("restored job state %q, want done", v.State)
	}
	if st := s.store.Stats(); st.Quarantined == 0 && st.SkippedSegments == 0 {
		t.Errorf("corrupt segment neither quarantined nor skipped: %+v", st)
	}
}
