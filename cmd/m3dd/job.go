package main

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vertical3d/internal/journal"
	"vertical3d/internal/jobstore"
	"vertical3d/internal/workload"
)

// sweepRequest is the POST /sweeps body.
type sweepRequest struct {
	// Experiment is one of fig6, fig9, lpstudy, table3, table4, table5,
	// table6.
	Experiment string `json:"experiment"`
	// Benchmarks defaults to the experiment's full suite; the tables take
	// none.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Warmup/Measure size fig6 and lpstudy cells (Warmup is per-core for
	// fig9); 0 keeps the server default.
	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure,omitempty"`
	// Instrs and Phases size fig9 (total parallel work, barrier phases).
	Instrs uint64 `json:"instrs,omitempty"`
	Phases int    `json:"phases,omitempty"`
	// Seed overrides the default seed (42); a pointer so 0 is expressible.
	Seed *int64 `json:"seed,omitempty"`
	// Sample enables interval sampling, Workers the sweep's pool size,
	// KeepGoing the complete-through-failures mode.
	Sample    bool `json:"sample,omitempty"`
	Workers   int  `json:"workers,omitempty"`
	KeepGoing bool `json:"keep_going,omitempty"`
}

// experimentNames is the accepted experiment set, in rendering order.
var experimentNames = []string{"fig6", "fig9", "lpstudy", "table3", "table4", "table5", "table6"}

// lpDefaultBenchmarks is the LP study's benchmark subset (Section 7.1.2).
var lpDefaultBenchmarks = []string{"Gamess", "Mcf", "Povray", "Milc"}

// validate normalises the request and reports the first problem.
func (r *sweepRequest) validate() error {
	ok := false
	for _, n := range experimentNames {
		if r.Experiment == n {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("unknown experiment %q (want one of %v)", r.Experiment, experimentNames)
	}
	switch r.Experiment {
	case "table3", "table4", "table5", "table6":
		if len(r.Benchmarks) > 0 {
			return fmt.Errorf("experiment %s takes no benchmarks", r.Experiment)
		}
	default:
		for _, b := range r.Benchmarks {
			if _, err := workload.ByName(b); err != nil {
				return err
			}
		}
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", r.Workers)
	}
	if r.Phases < 0 {
		return fmt.Errorf("phases must be >= 0, got %d", r.Phases)
	}
	return nil
}

// job is one accepted sweep and everything the API serves about it.
type job struct {
	id       string
	req      sweepRequest
	identity journal.Identity // the content address the sweep runs under
	deadline time.Time        // zero = none
	restored bool             // replayed from the manifest at boot

	// simulated counts cells that reached the simulator (cache, coalesced
	// and journal serves don't); accessed atomically from sweep workers.
	simulated atomic.Uint64

	mu       sync.Mutex
	state    string // jobstore.StateQueued | StateRunning | StateDone | StateFailed
	err      string
	result   *sweepResultView
	resBytes int64 // canonical-JSON size of result, for memory accounting
	created  time.Time
	finished time.Time
	evicted  bool

	// events is a bounded ring of the job's progress stream: at most
	// eventCap events are retained, eventsLost counts the trimmed ones and
	// firstSeq is the absolute sequence number of events[0]. A subscriber
	// that has fallen behind the ring is handed a "lost" marker carrying
	// the gap and resumes from firstSeq.
	events     []jobEvent
	firstSeq   int
	eventsLost int
	eventCap   int
	notify     chan struct{} // closed and replaced on every append
}

// jobEvent is one SSE frame of a job's progress stream.
type jobEvent struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"` // state | cell | done | failed | evicted | lost
	State string `json:"state,omitempty"`
	Cell  string `json:"cell,omitempty"`
	Error string `json:"error,omitempty"`
	// Lost is the number of events trimmed from the ring between the
	// subscriber's position and this frame (type "lost" only).
	Lost int `json:"lost,omitempty"`
}

// emitLocked appends an event, trims the ring to eventCap and wakes every
// subscriber. Callers hold j.mu.
func (j *job) emitLocked(ev jobEvent) {
	ev.Seq = j.firstSeq + len(j.events)
	j.events = append(j.events, ev)
	if j.eventCap > 0 && len(j.events) > j.eventCap {
		drop := len(j.events) - j.eventCap
		// Trim in place: subscribers copy under the lock, so compacting the
		// backing array never races a reader.
		j.events = append(j.events[:0], j.events[drop:]...)
		j.firstSeq += drop
		j.eventsLost += drop
	}
	close(j.notify)
	j.notify = make(chan struct{})
}

// setState transitions the job and emits the matching event.
func (j *job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.emitLocked(jobEvent{Type: "state", State: state})
}

// finish transitions to the terminal state, result and event atomically, so
// an SSE subscriber that observes the terminal state has already been handed
// the final event.
func (j *job) finish(view *sweepResultView, err error) {
	var size int64
	if err == nil && view != nil {
		if raw, merr := json.Marshal(view); merr == nil {
			size = int64(len(raw))
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.state = jobstore.StateFailed
		j.err = err.Error()
		j.emitLocked(jobEvent{Type: "failed", State: jobstore.StateFailed, Error: j.err})
		return
	}
	j.state = jobstore.StateDone
	j.result = view
	j.resBytes = size
	j.emitLocked(jobEvent{Type: "done", State: jobstore.StateDone})
}

// terminal reports whether the job has reached done or failed.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobstore.Terminal(j.state)
}

// resultSize is the retained result's canonical-JSON size in bytes.
func (j *job) resultSize() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resBytes
}

// evict marks the job evicted and emits the final "evicted" event: any
// live SSE subscriber wakes, streams the marker and terminates instead of
// hanging on a job the ledger has forgotten.
func (j *job) evict() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.evicted = true
	j.emitLocked(jobEvent{Type: "evicted", State: j.state})
}

// jobView is the GET /sweeps/{id} document.
type jobView struct {
	ID         string           `json:"id"`
	Experiment string           `json:"experiment"`
	State      string           `json:"state"`
	Error      string           `json:"error,omitempty"`
	Created    time.Time        `json:"created"`
	Deadline   *time.Time       `json:"deadline,omitempty"`
	Restored   bool             `json:"restored,omitempty"`
	Simulated  uint64           `json:"simulated_cells"`
	Result     *sweepResultView `json:"result,omitempty"`
}

func (j *job) view(withResult bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:         j.id,
		Experiment: j.req.Experiment,
		State:      j.state,
		Error:      j.err,
		Created:    j.created,
		Restored:   j.restored,
		Simulated:  j.simulated.Load(),
	}
	if !j.deadline.IsZero() {
		d := j.deadline
		v.Deadline = &d
	}
	if withResult {
		v.Result = j.result
	}
	return v
}
