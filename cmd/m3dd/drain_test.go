package main

import (
	"context"
	"net"
	"net/http"
	"sync"
	"syscall"
	"testing"
	"time"

	"vertical3d/internal/jobstore"
	"vertical3d/internal/shutdown"
	"vertical3d/internal/trace"
)

// TestDrainRejectsConcurrentPosts hammers POST /sweeps from many goroutines
// while the daemon starts draining: every response is either a clean 202 or
// a clean 503 — never a hang, never a partial accept — and once the drain
// flag is up every later POST is 503.
func TestDrainRejectsConcurrentPosts(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{MaxSweeps: 1, QueueDepth: 128})

	const posters = 16
	var wg sync.WaitGroup
	codes := make(chan int, posters*4)
	start := make(chan struct{})
	for i := 0; i < posters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for k := 0; k < 4; k++ {
				resp := postSweepRaw(t, ts.URL, longSweep(), nil)
				codes <- resp.StatusCode
				resp.Body.Close()
			}
		}()
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	s.drain()
	wg.Wait()
	close(codes)

	for code := range codes {
		if code != http.StatusAccepted && code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
			t.Errorf("POST during drain returned %d, want 202, 429 or 503", code)
		}
	}

	// The drain flag is up: every subsequent POST is refused.
	for i := 0; i < 3; i++ {
		resp := postSweepRaw(t, ts.URL, longSweep(), nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST after drain returned %d, want 503", resp.StatusCode)
		}
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", code)
	}
}

// TestShutdownRecordsQueuedJobsInterrupted cancels the daemon with one job
// running and one queued: the queued job must be failed in memory with a
// mid-drain explanation AND recorded interrupted in the manifest, so the
// next boot resumes it rather than losing it.
func TestShutdownRecordsQueuedJobsInterrupted(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	jobsDir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	cfg := serverConfig{JobDir: jobsDir, MaxSweeps: 1, QueueDepth: 4, Quick: true, Workers: 2, Logf: t.Logf}
	s := newServer(ctx, cfg)
	defer func() {
		if s.store != nil {
			_ = s.store.Close()
		}
	}()
	ts := newHTTPServer(t, s)

	busy := postSweep(t, ts, longSweep())
	waitRunning(t, s, busy)
	queued := postSweep(t, ts, longSweep())

	cancel()
	s.wait()

	// In memory: the queued job reports the drain, terminally.
	s.mu.Lock()
	qj := s.jobs[queued]
	s.mu.Unlock()
	qj.mu.Lock()
	qState, qErr := qj.state, qj.err
	qj.mu.Unlock()
	if qState != jobstore.StateFailed {
		t.Errorf("queued job state after drain = %q, want failed", qState)
	}
	if qErr == "" {
		t.Error("queued job carries no mid-drain explanation")
	}

	// On disk: interrupted (resumable), not failed.
	_ = s.store.Close()
	st, err := jobstore.Open(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	states := map[string]string{}
	for _, pj := range st.Jobs() {
		states[pj.ID] = pj.State
	}
	if states[queued] != jobstore.StateInterrupted {
		t.Errorf("manifest records queued job %q, want interrupted", states[queued])
	}
	if states[busy] != jobstore.StateInterrupted {
		t.Errorf("manifest records running job %q, want interrupted", states[busy])
	}
}

// newHTTPServer wires a server's routes to a test listener without the
// newTestServer cleanup (tests that manage their own lifecycle).
func newHTTPServer(t *testing.T, s *server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.routes()}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return "http://" + ln.Addr().String()
}

// TestSecondSignalForceQuits proves the second-SIGTERM path: the first
// signal starts the drain, the second bypasses it through the recorded
// force-exit seam with the interrupted exit status.
func TestSecondSignalForceQuits(t *testing.T) {
	exited := make(chan int, 1)
	shut := shutdown.Install(context.Background(),
		shutdown.WithLog(t.Logf),
		shutdown.WithForceExit(func(code int) { exited <- code }))
	defer shut.Stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-shut.Context().Done():
	case <-time.After(10 * time.Second):
		t.Fatal("first SIGTERM did not cancel the drain context")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != shutdown.ExitInterrupted {
			t.Errorf("force-quit exit code %d, want %d", code, shutdown.ExitInterrupted)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second SIGTERM did not force-quit")
	}
	if code := shut.ExitCode(0); code != shutdown.ExitInterrupted {
		t.Errorf("ExitCode(0) after signal = %d, want %d", code, shutdown.ExitInterrupted)
	}
}

// TestDrainTimeoutReportsMidDrainJobs pins the drain-expiry contract at the
// server layer: when the daemon context dies mid-sweep, the running job is
// failed in memory (so a last status poll sees a terminal state with a
// cause) and recorded interrupted on disk.
func TestDrainTimeoutReportsMidDrainJobs(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	jobsDir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	s := newServer(ctx, serverConfig{JobDir: jobsDir, Quick: true, Workers: 1, Logf: t.Logf})
	defer func() {
		if s.store != nil {
			_ = s.store.Close()
		}
	}()
	ts := newHTTPServer(t, s)

	id := postSweep(t, ts, longSweep())
	waitRunning(t, s, id)
	cancel()
	s.wait()

	v := waitTerminal(t, ts, id)
	if v.State != "failed" {
		t.Errorf("mid-drain job state = %q, want failed", v.State)
	}
	if v.Error == "" {
		t.Error("mid-drain job reports no cause")
	}
}
