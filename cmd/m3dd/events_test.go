package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"vertical3d/internal/trace"
)

// readEventStream consumes a job's SSE stream to termination and returns
// the decoded events in order.
func readEventStream(t *testing.T, base, id string) []jobEvent {
	t.Helper()
	resp, err := http.Get(base + "/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: status %d", resp.StatusCode)
	}
	var events []jobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var ev jobEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("undecodable SSE frame %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestEventRingTrimsWithLostMarker runs a sweep that emits far more events
// than a 4-slot ring retains, then subscribes after completion: the replay
// must open with a "lost" marker accounting for every trimmed event and
// still terminate with the done frame.
func TestEventRingTrimsWithLostMarker(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	_, ts := newTestServer(t, serverConfig{EventCap: 4})

	id := postSweep(t, ts.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}})
	done := waitDone(t, ts.URL, id)
	if done.Simulated < 4 {
		t.Fatalf("sweep simulated %d cells; not enough events to overflow a 4-slot ring", done.Simulated)
	}

	events := readEventStream(t, ts.URL, id)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	if events[0].Type != "lost" {
		t.Fatalf("late subscriber's first event is %q, want lost", events[0].Type)
	}
	// The ring held 4 events; everything before them was trimmed. Total
	// emitted = 1 queued state + 1 running state + cells + 1 done.
	total := int(done.Simulated) + 3
	if want := total - 4; events[0].Lost != want {
		t.Errorf("lost marker reports %d trimmed events, want %d", events[0].Lost, want)
	}
	if last := events[len(events)-1]; last.Type != "done" {
		t.Errorf("stream ends with %q, want done", last.Type)
	}
	// Replayed sequence numbers are contiguous and absolute.
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 && events[i-1].Type != "lost" {
			t.Errorf("non-contiguous seq %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}

	// The trim is visible in /statsz too.
	var stz struct {
		EventsLost int `json:"events_lost"`
	}
	getJSON(t, ts.URL+"/statsz", &stz)
	if stz.EventsLost != total-4 {
		t.Errorf("statsz events_lost = %d, want %d", stz.EventsLost, total-4)
	}
}

// TestEvictionTerminatesSubscribers pins satellite 3: a subscriber attached
// to a job that gets evicted must receive a final "evicted" frame and see
// the stream end, rather than blocking forever on a job the ledger dropped.
func TestEvictionTerminatesSubscribers(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{})

	// Register a ledger entry by hand that no dispatcher will ever run, so
	// the subscriber would hang indefinitely without the eviction wakeup.
	s.mu.Lock()
	s.seq++
	j := s.newJobLocked("s999999", sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}})
	s.mu.Unlock()

	type result struct {
		events []jobEvent
	}
	ch := make(chan result, 1)
	go func() {
		ch <- result{readEventStream(t, ts.URL, "s999999")}
	}()

	// Give the subscriber time to attach, then evict.
	time.Sleep(100 * time.Millisecond)
	j.evict()

	select {
	case r := <-ch:
		if len(r.events) == 0 {
			t.Fatal("subscriber saw no events")
		}
		last := r.events[len(r.events)-1]
		if last.Type != "evicted" {
			t.Errorf("final frame is %q, want evicted", last.Type)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber still blocked after eviction")
	}
}

// TestKeepJobsEvictionDropsLedgerEntry drives eviction through the real
// path: with KeepJobs=1, finishing a second sweep evicts the first, which
// must vanish from every endpoint.
func TestKeepJobsEvictionDropsLedgerEntry(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	_, ts := newTestServer(t, serverConfig{KeepJobs: 1, MaxSweeps: 1})

	first := postSweep(t, ts.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Mcf"}})
	waitDone(t, ts.URL, first)

	second := postSweep(t, ts.URL, sweepRequest{Experiment: "fig6", Benchmarks: []string{"Milc"}})
	waitDone(t, ts.URL, second)

	// first is now evicted from the ledger.
	if code := getJSON(t, ts.URL+"/sweeps/"+first, nil); code != http.StatusNotFound {
		t.Errorf("evicted job still served: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/sweeps/"+first+"/events", nil); code != http.StatusNotFound {
		t.Errorf("evicted job's event stream still served: status %d, want 404", code)
	}
}
