// Command thermalsim solves the three Table 10 stacks under a configurable
// power budget and prints the peak/average temperatures — the standalone
// version of Figure 8's thermal comparison. The design → floorplan/stack
// mapping and the folded power split are experiments.SolveDesignThermal,
// the same path Figure 8 takes, so the tool cannot drift from the paper
// pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
)

func main() {
	watts := flag.Float64("power", 6.4, "total core power in watts (Base)")
	m3dScale := flag.Float64("m3dscale", 0.76, "M3D-Het power relative to Base")
	tsvScale := flag.Float64("tsvscale", 0.90, "TSV3D power relative to Base")
	grid := flag.Int("grid", 20, "thermal grid resolution per axis")
	flag.Parse()

	blocks := map[string]float64{
		"FE": 0.17, "RAT": 0.05, "IQ": 0.12, "RF": 0.12,
		"ALU": 0.11, "FPU": 0.20, "LSU": 0.16, "L2": 0.07,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tpower(W)\tpeak °C\tavg °C\tΔpeak vs Base")
	var basePeak float64

	solve := func(name string, d config.Design, p float64) {
		scaled := map[string]float64{}
		for k, frac := range blocks {
			scaled[k] = frac * p
		}
		r, _, err := experiments.SolveDesignThermal(d, scaled, *grid)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if d == config.Base {
			basePeak = r.PeakC
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%+.1f\n", name, p, r.PeakC, r.AvgC, r.PeakC-basePeak)
	}

	solve("Base-2D", config.Base, *watts)
	solve("M3D-Het", config.M3DHet, *watts**m3dScale)
	solve("TSV3D", config.TSV3D, *watts**tsvScale)
	tw.Flush()
}
