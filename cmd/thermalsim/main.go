// Command thermalsim solves the three Table 10 stacks under a configurable
// power budget and prints the peak/average temperatures — the standalone
// version of Figure 8's thermal comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"vertical3d/internal/floorplan"
	"vertical3d/internal/thermal"
)

func main() {
	watts := flag.Float64("power", 6.4, "total core power in watts (Base)")
	m3dScale := flag.Float64("m3dscale", 0.76, "M3D-Het power relative to Base")
	tsvScale := flag.Float64("tsvscale", 0.90, "TSV3D power relative to Base")
	grid := flag.Int("grid", 20, "thermal grid resolution per axis")
	flag.Parse()

	blocks := map[string]float64{
		"FE": 0.17, "RAT": 0.05, "IQ": 0.12, "RF": 0.12,
		"ALU": 0.11, "FPU": 0.20, "LSU": 0.16, "L2": 0.07,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tpower(W)\tpeak °C\tavg °C\tΔpeak vs Base")
	var basePeak float64

	solve := func(name string, stack []thermal.LayerSpec, folded bool, p float64) {
		fp := floorplan.Core2D()
		var err error
		if folded {
			fp, err = floorplan.Folded(0.5)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		params := thermal.DefaultParams(fp.WidthM, fp.HeightM)
		params.Nx, params.Ny = *grid, *grid
		scaled := map[string]float64{}
		for k, frac := range blocks {
			scaled[k] = frac * p
		}
		var maps [][][]float64
		if folded {
			bot, top := map[string]float64{}, map[string]float64{}
			for k, v := range scaled {
				bot[k], top[k] = v*0.55, v*0.45
			}
			mb, err1 := fp.PowerMap(bot, params.Nx, params.Ny)
			mt, err2 := fp.PowerMap(top, params.Nx, params.Ny)
			if err1 != nil || err2 != nil {
				fmt.Fprintln(os.Stderr, err1, err2)
				os.Exit(1)
			}
			maps = [][][]float64{mb, mt}
		} else {
			m, err := fp.PowerMap(scaled, params.Nx, params.Ny)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			maps = [][][]float64{m}
		}
		r, err := thermal.Solve(stack, params, maps)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if name == "Base-2D" {
			basePeak = r.PeakC
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%+.1f\n", name, p, r.PeakC, r.AvgC, r.PeakC-basePeak)
	}

	solve("Base-2D", thermal.Stack2D(), false, *watts)
	solve("M3D-Het", thermal.StackM3D(), true, *watts**m3dScale)
	solve("TSV3D", thermal.StackTSV3D(), true, *watts**tsvScale)
	tw.Flush()
}
