// Package profutil wires pprof CPU and heap profiling into the command-line
// tools. It exists so every binary validates profile paths the same way
// (bad paths are usage errors, exit code 2) and flushes profiles on every
// exit path, including the non-zero ones.
package profutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for a heap profile to
// be written to memPath when the returned stop function runs. Either path
// may be empty to disable that profile; with both empty, Start is a no-op
// and stop never fails.
//
// Profile files are created eagerly so that an unwritable path fails before
// any simulation work — callers treat that error as a usage error. The stop
// function must run before the process exits (callers use the run() int +
// os.Exit(run()) pattern so deferred stops are not skipped); it is
// idempotent-unsafe and must be called at most once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	var memFile *os.File
	if memPath != "" {
		memFile, err = os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memFile != nil {
			runtime.GC() // materialise up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(memFile, 0); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("-memprofile: %w", err)
			}
			if err := memFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("-memprofile: %w", err)
			}
		}
		return firstErr
	}, nil
}
