package guard

import (
	"context"
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// Kind is the failure class of a failed sweep cell, used by the rendered
// ERR output and the exit-code selection of the command-line binaries,
// and by the worker pool's default retry classification.
type Kind int

const (
	// KindError is a deterministic model or pipeline error — re-running
	// the cell reproduces it.
	KindError Kind = iota
	// KindPanic is a recovered cell panic (parallel.PanicError).
	KindPanic
	// KindTimeout is an expired task or sweep deadline.
	KindTimeout
	// KindCanceled is an externally cancelled cell — typically the
	// SIGINT/SIGTERM shutdown layer stopping dispatch mid-sweep.
	KindCanceled
	// KindIO is a storage-layer failure — ENOSPC, EIO, a permission
	// denial, a short write — anywhere in the error chain. The disk's
	// state, not the cell's inputs, decides whether a re-run reproduces
	// it, so the default retry policy treats it as non-retryable and the
	// degradation ladder handles it by downgrading instead.
	KindIO
)

// String returns the label rendered next to ERR cells.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindTimeout:
		return "timeout"
	case KindCanceled:
		return "canceled"
	case KindIO:
		return "io"
	default:
		return "error"
	}
}

// panicker is the shape of a recovered-panic error. guard depends only on
// the standard library, so the pool's *parallel.PanicError is recognised
// structurally through its PanicValue method rather than by type.
type panicker interface{ PanicValue() any }

// timeouter matches net.Error-style errors that self-report as timeouts.
type timeouter interface{ Timeout() bool }

// Classify maps an error chain onto its failure kind: recovered panics
// first (a panic inside a timed-out cell is still a panic), then
// cancellation, then deadlines, then storage faults. Unrecognised errors
// — including nil — are KindError, the deterministic-failure default.
//
// The timeout check deliberately precedes the I/O check: syscall.Errno
// implements Timeout(), so ETIMEDOUT classifies as a timeout while every
// other errno in a filesystem error chain classifies as I/O.
func Classify(err error) Kind {
	var p panicker
	if errors.As(err, &p) {
		return KindPanic
	}
	if errors.Is(err, context.Canceled) {
		return KindCanceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return KindTimeout
	}
	var t timeouter
	if errors.As(err, &t) && t.Timeout() {
		return KindTimeout
	}
	if isIO(err) {
		return KindIO
	}
	return KindError
}

// isIO recognises storage-layer failures structurally, the way the os
// package shapes them: path/link errors, raw errnos, the fs sentinel
// errors, and short writes.
func isIO(err error) bool {
	var (
		pathErr *fs.PathError
		linkErr *os.LinkError
		errno   syscall.Errno
	)
	switch {
	case errors.As(err, &pathErr),
		errors.As(err, &linkErr),
		errors.As(err, &errno),
		errors.Is(err, fs.ErrPermission),
		errors.Is(err, io.ErrShortWrite):
		return true
	}
	return false
}
