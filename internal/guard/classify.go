package guard

import (
	"context"
	"errors"
)

// Kind is the failure class of a failed sweep cell, used by the rendered
// ERR output and the exit-code selection of the command-line binaries,
// and by the worker pool's default retry classification.
type Kind int

const (
	// KindError is a deterministic model or pipeline error — re-running
	// the cell reproduces it.
	KindError Kind = iota
	// KindPanic is a recovered cell panic (parallel.PanicError).
	KindPanic
	// KindTimeout is an expired task or sweep deadline.
	KindTimeout
	// KindCanceled is an externally cancelled cell — typically the
	// SIGINT/SIGTERM shutdown layer stopping dispatch mid-sweep.
	KindCanceled
)

// String returns the label rendered next to ERR cells.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindTimeout:
		return "timeout"
	case KindCanceled:
		return "canceled"
	default:
		return "error"
	}
}

// panicker is the shape of a recovered-panic error. guard depends only on
// the standard library, so the pool's *parallel.PanicError is recognised
// structurally through its PanicValue method rather than by type.
type panicker interface{ PanicValue() any }

// timeouter matches net.Error-style errors that self-report as timeouts.
type timeouter interface{ Timeout() bool }

// Classify maps an error chain onto its failure kind: recovered panics
// first (a panic inside a timed-out cell is still a panic), then
// cancellation, then deadlines. Unrecognised errors — including nil — are
// KindError, the deterministic-failure default.
func Classify(err error) Kind {
	var p panicker
	if errors.As(err, &p) {
		return KindPanic
	}
	if errors.Is(err, context.Canceled) {
		return KindCanceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return KindTimeout
	}
	var t timeouter
	if errors.As(err, &t) && t.Timeout() {
		return KindTimeout
	}
	return KindError
}
