package guard

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestCheckerCollectsAllViolations(t *testing.T) {
	c := New("m")
	c.Finite("a", math.NaN())
	c.NonNegative("b", -1)
	c.Positive("c", 0)
	c.PositiveInt("d", 0)
	c.PowerOfTwo("e", 12)
	c.InRange("f", 2, 0, 1)
	c.InOpenRange("g", 0, 0, 1)
	c.NonDecreasing("h", 1, 3, 2)
	c.NotNil("i", nil)
	c.Finite("ok", 1.0) // no violation
	err := c.Err()
	if err == nil {
		t.Fatal("expected violations")
	}
	vs, ok := AsViolations(err)
	if !ok {
		t.Fatal("AsViolations failed")
	}
	if len(vs) != 9 {
		t.Fatalf("want 9 violations, got %d: %v", len(vs), err)
	}
	for _, v := range vs {
		if !strings.HasPrefix(v.Path, "m.") {
			t.Fatalf("path %q lacks root prefix", v.Path)
		}
	}
}

func TestCleanCheckerReturnsNil(t *testing.T) {
	c := New("x")
	c.Finite("a", 1)
	c.NonNegative("b", 0)
	c.PowerOfTwo("c", 64)
	c.NonDecreasing("d", 1, 1, 2)
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected violations: %v", err)
	}
	if !c.OK() {
		t.Fatal("OK() should be true")
	}
}

func TestViolationsUnwrapThroughWrapping(t *testing.T) {
	c := New("sram.RF")
	c.Positive("AccessTime", math.Inf(1))
	wrapped := fmt.Errorf("modeling failed: %w", c.Err())

	var vs Violations
	if !errors.As(wrapped, &vs) {
		t.Fatal("errors.As(Violations) failed through wrapping")
	}
	var v *Violation
	if !errors.As(wrapped, &v) {
		t.Fatal("errors.As(*Violation) failed through wrapping")
	}
	if v.Path != "sram.RF.AccessTime" {
		t.Fatalf("unexpected path %q", v.Path)
	}
}

func TestErrorStringMentionsEveryPath(t *testing.T) {
	c := New("")
	c.Violatef("p1", "bad")
	c.Violatef("p2", "worse")
	msg := c.Err().Error()
	if !strings.Contains(msg, "p1") || !strings.Contains(msg, "p2") {
		t.Fatalf("message %q misses a path", msg)
	}
}

func TestHelpers(t *testing.T) {
	if IsFinite(math.NaN()) || IsFinite(math.Inf(-1)) || !IsFinite(0) {
		t.Fatal("IsFinite misbehaves")
	}
	if IsPowerOfTwo(0) || IsPowerOfTwo(-4) || IsPowerOfTwo(12) || !IsPowerOfTwo(1) || !IsPowerOfTwo(4096) {
		t.Fatal("IsPowerOfTwo misbehaves")
	}
}
