// Package guard is the validation-and-invariant layer of the experiment
// pipeline. Analytical models (sram, wire, circuit, thermal, power) and the
// configuration deriver call its Check* helpers at their boundaries so that
// a bad technology node, partition spec or workload profile fails fast with
// a named violation — instead of silently propagating a NaN, an Inf or a
// negative energy into the rendered figures.
//
// Violations carry field paths ("sram.RF.AccessTime") and aggregate into a
// structured multi-error (Violations) that unwraps per Go 1.20 multi-error
// semantics, so callers can errors.As a whole pipeline failure back into
// the individual field violations.
//
// The package depends only on the standard library: every other package in
// the repository may import it without cycles.
package guard

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Violation is one named invariant failure.
type Violation struct {
	// Path names the offending field, dot-separated from the package or
	// structure root, e.g. "config.M3D-Het.FreqGHz".
	Path string
	// Msg describes the violated invariant, including the observed value.
	Msg string
}

// Error implements error.
func (v *Violation) Error() string { return v.Path + ": " + v.Msg }

// Violations aggregates every violation found at one boundary check. It is
// itself an error and unwraps into the individual violations, so both
// errors.As(err, *Violations) and errors.As(err, **Violation) work through
// arbitrary wrapping.
type Violations []*Violation

// Error implements error: one line per violation.
func (vs Violations) Error() string {
	switch len(vs) {
	case 0:
		return "guard: no violations"
	case 1:
		return "guard: " + vs[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "guard: %d violations:", len(vs))
	for _, v := range vs {
		b.WriteString("\n  " + v.Error())
	}
	return b.String()
}

// Unwrap exposes the individual violations to errors.Is/As (Go 1.20
// multi-error unwrapping).
func (vs Violations) Unwrap() []error {
	out := make([]error, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

// AsViolations extracts the structured violation list from an error chain.
func AsViolations(err error) (Violations, bool) {
	var vs Violations
	if errors.As(err, &vs) {
		return vs, true
	}
	return nil, false
}

// IsFinite reports whether v is neither NaN nor ±Inf.
func IsFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Checker accumulates violations under a common root path. The zero value
// is usable; New attaches a root prefix.
type Checker struct {
	root string
	vs   Violations
}

// New returns a checker whose violation paths are prefixed with root.
func New(root string) *Checker { return &Checker{root: root} }

// path joins the root and the field path.
func (c *Checker) path(p string) string {
	if c.root == "" {
		return p
	}
	if p == "" {
		return c.root
	}
	return c.root + "." + p
}

// Violatef records a violation at path with a formatted message.
func (c *Checker) Violatef(path, format string, args ...any) {
	c.vs = append(c.vs, &Violation{Path: c.path(path), Msg: fmt.Sprintf(format, args...)})
}

// Check records a violation unless ok holds.
func (c *Checker) Check(ok bool, path, format string, args ...any) {
	if !ok {
		c.Violatef(path, format, args...)
	}
}

// Finite requires v to be neither NaN nor ±Inf.
func (c *Checker) Finite(path string, v float64) {
	c.Check(IsFinite(v), path, "must be finite, got %v", v)
}

// NonNegative requires v to be finite and >= 0 — the invariant of every
// delay, energy and area a physical model produces.
func (c *Checker) NonNegative(path string, v float64) {
	c.Check(IsFinite(v) && v >= 0, path, "must be finite and >= 0, got %v", v)
}

// Positive requires v to be finite and > 0.
func (c *Checker) Positive(path string, v float64) {
	c.Check(IsFinite(v) && v > 0, path, "must be finite and > 0, got %v", v)
}

// PositiveInt requires n > 0.
func (c *Checker) PositiveInt(path string, n int) {
	c.Check(n > 0, path, "must be > 0, got %d", n)
}

// NonNegativeInt requires n >= 0.
func (c *Checker) NonNegativeInt(path string, n int) {
	c.Check(n >= 0, path, "must be >= 0, got %d", n)
}

// PowerOfTwo requires n to be a positive power of two — cache set counts,
// line sizes and other geometry the address-slicing bit math relies on.
func (c *Checker) PowerOfTwo(path string, n int) {
	c.Check(IsPowerOfTwo(n), path, "must be a positive power of two, got %d", n)
}

// InRange requires lo <= v <= hi (and v finite).
func (c *Checker) InRange(path string, v, lo, hi float64) {
	c.Check(IsFinite(v) && v >= lo && v <= hi, path, "must be in [%v, %v], got %v", lo, hi, v)
}

// InOpenRange requires lo < v < hi (and v finite).
func (c *Checker) InOpenRange(path string, v, lo, hi float64) {
	c.Check(IsFinite(v) && v > lo && v < hi, path, "must be in (%v, %v), got %v", lo, hi, v)
}

// NonDecreasing requires vs to be monotonically non-decreasing — e.g. the
// cache hierarchy's per-level round-trip latencies (L1 <= L2 <= L3).
func (c *Checker) NonDecreasing(path string, vs ...float64) {
	for i := 1; i < len(vs); i++ {
		if !(IsFinite(vs[i-1]) && IsFinite(vs[i])) || vs[i] < vs[i-1] {
			c.Violatef(path, "must be non-decreasing, got %v at position %d after %v", vs[i], i, vs[i-1])
			return
		}
	}
}

// NotNil requires a reference to be present.
func (c *Checker) NotNil(path string, v any) {
	c.Check(v != nil, path, "must not be nil")
}

// OK reports whether no violation has been recorded.
func (c *Checker) OK() bool { return len(c.vs) == 0 }

// Err returns the accumulated violations as an error, or nil if none.
func (c *Checker) Err() error {
	if len(c.vs) == 0 {
		return nil
	}
	return c.vs
}
