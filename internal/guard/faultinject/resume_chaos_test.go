// Chaos tests for the checkpoint journal: a sweep interrupted mid-run
// (graceful-shutdown cancellation while cells are in flight) must leave a
// journal from which a resume reconstructs the uninterrupted result bit
// for bit — at every worker count, on both simulation kernels, without
// re-executing a single journaled cell.
package faultinject_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/uarch"
)

// TestChaosKillMidSweepResumeBitIdentical simulates the operator's
// SIGINT/SIGTERM path end to end, minus the process boundary:
//
//  1. a journaled keep-going sweep has its context cancelled after a few
//     cells start (exactly what shutdown.Handler does on the first
//     signal) — in-flight cells drain and checkpoint, undispatched ones
//     fail with the cancellation;
//  2. a resume from the same journal directory must complete, merge every
//     journaled cell without re-executing it (the hook panics if one
//     runs), execute exactly the cells the interrupt lost, and
//     deep-equal an uninterrupted reference run.
//
// The matrix covers Workers ∈ {1, 8} × both simulation kernels; the
// journal identity pins the kernel, so each combination gets its own
// directory.
func TestChaosKillMidSweepResumeBitIdentical(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	total := len(profiles) * len(config.SingleCoreDesigns())

	for _, kernel := range []uarch.Kernel{uarch.KernelEvent, uarch.KernelReference} {
		kopt := opt
		kopt.Kernel = kernel
		ref, err := experiments.Fig6With(suite, profiles, kopt)
		if err != nil {
			t.Fatalf("kernel=%v: %v", kernel, err)
		}

		for _, w := range []int{1, 8} {
			dir := t.TempDir()

			// Phase 1: cancel the sweep context once a third cell starts.
			// Under KeepGoing the pool drains in-flight cells (they finish
			// and checkpoint) and fails the rest with the cancellation —
			// the exact drain semantics of the first SIGINT/SIGTERM.
			ctx, cancel := context.WithCancel(context.Background())
			var mu sync.Mutex
			started := 0
			p1 := kopt
			p1.Context = ctx
			p1.JournalDir = dir
			p1.Workers = w
			p1.KeepGoing = true
			p1.CellHook = func(bench, design string) {
				mu.Lock()
				started++
				if started == 3 {
					cancel()
				}
				mu.Unlock()
			}
			f1, err := experiments.Fig6With(suite, profiles, p1)
			cancel()
			if err != nil {
				t.Fatalf("kernel=%v workers=%d: interrupted keep-going sweep must complete: %v", kernel, w, err)
			}
			lost := f1.FailedCells()
			if got, want := f1.Journal.Appends, total-lost; got != want {
				t.Fatalf("kernel=%v workers=%d: phase 1 journaled %d cells, want %d (every drained success)",
					kernel, w, got, want)
			}
			// survived[bench/design] marks the cells the interrupt did not
			// lose — the resume must not execute any of them.
			survived := map[string]bool{}
			for _, b := range f1.Benchmarks {
				for _, d := range f1.Designs {
					if _, ok := f1.Runs[b][d]; ok {
						survived[b+"/"+d.String()] = true
					}
				}
			}

			// Phase 2: resume. Executed cells are recorded; executing a
			// journaled cell panics the sweep.
			executed := map[string]bool{}
			p2 := kopt
			p2.JournalDir = dir
			p2.Workers = w
			p2.CellHook = func(bench, design string) {
				key := bench + "/" + design
				if survived[key] {
					panic("journaled cell " + key + " was re-executed on resume")
				}
				mu.Lock()
				executed[key] = true
				mu.Unlock()
			}
			f2, err := experiments.Fig6With(suite, profiles, p2)
			if err != nil {
				t.Fatalf("kernel=%v workers=%d: resume must complete: %v", kernel, w, err)
			}
			if got, want := f2.Journal.Hits, total-lost; got != want {
				t.Errorf("kernel=%v workers=%d: resume merged %d cells, want %d", kernel, w, got, want)
			}
			if got, want := len(executed), lost; got != want {
				t.Errorf("kernel=%v workers=%d: resume executed %d cells, want exactly the %d the interrupt lost",
					kernel, w, got, want)
			}
			if got, want := f2.Journal.Appends, lost; got != want {
				t.Errorf("kernel=%v workers=%d: resume checkpointed %d cells, want %d", kernel, w, got, want)
			}
			if !reflect.DeepEqual(f2.Runs, ref.Runs) {
				t.Errorf("kernel=%v workers=%d: resumed Runs differ from the uninterrupted run", kernel, w)
			}
			if !reflect.DeepEqual(f2.Speedup, ref.Speedup) {
				t.Errorf("kernel=%v workers=%d: resumed Speedup differs from the uninterrupted run", kernel, w)
			}
			if !reflect.DeepEqual(f2.NormEnergy, ref.NormEnergy) {
				t.Errorf("kernel=%v workers=%d: resumed NormEnergy differs from the uninterrupted run", kernel, w)
			}
		}
	}
}

// TestChaosRetryRecoversTransientPanics arms the pool's per-cell retry on
// a sweep whose injector panics each victim cell exactly once: the retried
// attempts must succeed, the sweep must report no failures, and the result
// must be bit-identical to a fault-free run.
func TestChaosRetryRecoversTransientPanics(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	victims := map[string]bool{
		profiles[0].Name + "/" + victimDesign(t).String():  true,
		profiles[1].Name + "/" + config.Base.String():      true,
		profiles[1].Name + "/" + config.M3DHetAgg.String(): true,
	}
	var mu sync.Mutex
	firstVisit := map[string]bool{}
	copt := opt
	copt.Workers = 4
	copt.Retry.Attempts = 2
	copt.CellHook = func(bench, design string) {
		key := bench + "/" + design
		mu.Lock()
		fire := victims[key] && !firstVisit[key]
		firstVisit[key] = true
		mu.Unlock()
		if fire {
			panic("transient: " + key)
		}
	}
	f, err := experiments.Fig6With(suite, profiles, copt)
	if err != nil {
		t.Fatalf("retried sweep must recover every transient panic: %v", err)
	}
	if n := f.FailedCells(); n != 0 {
		t.Fatalf("%d failed cells after retry, want 0", n)
	}
	if !reflect.DeepEqual(f.Runs, ref.Runs) {
		t.Error("retried Runs differ from the fault-free run")
	}
	if !reflect.DeepEqual(f.Speedup, ref.Speedup) {
		t.Error("retried Speedup differs from the fault-free run")
	}
}
