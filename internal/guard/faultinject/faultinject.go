// Package faultinject is a deterministic, seeded fault-injection harness
// for chaos-testing the experiment pipeline. It plugs into the pipeline's
// two seams:
//
//   - the CellHook of experiments.RunOptions / multicore.Options, invoked at
//     the start of every (benchmark × design) sweep cell, and
//   - arbitrary task bodies submitted to the parallel pool (keyed by index
//     via TaskKey).
//
// A fault plan is an explicit map from cell key to Fault, built either by
// hand (PanicAt, SlowAt) or by the seeded selector Pick, so every chaos run
// is reproducible: the same seed poisons the same cells on every schedule
// and at every worker count. The chaos tests in this package assert the
// pipeline's robustness contract — healthy cells bit-identical to a
// fault-free run, panics recovered into *parallel.PanicError with the
// lowest-index error selected — under injected panics, slow cells and
// mid-sweep cancellation.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Kind is the kind of fault injected at a cell.
type Kind int

const (
	// None leaves the cell healthy.
	None Kind = iota
	// Panic panics with an InjectedPanic when the cell starts.
	Panic
	// Slow sleeps for Fault.Delay before letting the cell run.
	Slow
)

// Fault describes the fault injected at one cell.
type Fault struct {
	Kind  Kind
	Delay time.Duration // Slow only
}

// InjectedPanic is the value passed to panic() by a Panic fault, so tests
// can distinguish injected panics from genuine bugs when they surface as
// parallel.PanicError.Value.
type InjectedPanic struct {
	// Key is the poisoned cell's key.
	Key string
}

// String implements fmt.Stringer for readable PanicError messages.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at cell %s", p.Key)
}

// Key is the cell key used by sweep hooks: "benchmark/design".
func Key(bench, design string) string { return bench + "/" + design }

// TaskKey is the cell key used for index-addressed pool tasks.
func TaskKey(i int) string { return strconv.Itoa(i) }

// Injector holds a fault plan and counts how often each cell fired.
// The plan is fixed at setup time; Visit is safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	faults map[string]Fault
	fired  map[string]int
}

// New returns an empty injector (all cells healthy).
func New() *Injector {
	return &Injector{faults: map[string]Fault{}, fired: map[string]int{}}
}

// Set installs a fault at a cell key.
func (in *Injector) Set(key string, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults[key] = f
}

// PanicAt marks the given cells to panic.
func (in *Injector) PanicAt(keys ...string) {
	for _, k := range keys {
		in.Set(k, Fault{Kind: Panic})
	}
}

// SlowAt marks the given cells to sleep for d before running.
func (in *Injector) SlowAt(d time.Duration, keys ...string) {
	for _, k := range keys {
		in.Set(k, Fault{Kind: Slow, Delay: d})
	}
}

// Visit records that the cell fired and applies its fault, if any. A Panic
// fault panics with InjectedPanic{key}; a Slow fault sleeps.
func (in *Injector) Visit(key string) {
	in.mu.Lock()
	in.fired[key]++
	f := in.faults[key]
	in.mu.Unlock()
	switch f.Kind {
	case Panic:
		panic(InjectedPanic{Key: key})
	case Slow:
		time.Sleep(f.Delay)
	}
}

// Hook adapts the injector to the CellHook seam of experiments.RunOptions
// and multicore.Options.
func (in *Injector) Hook() func(bench, design string) {
	return func(bench, design string) { in.Visit(Key(bench, design)) }
}

// Fired returns how many times the cell fired.
func (in *Injector) Fired(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[key]
}

// TotalFired returns the total number of cell starts observed.
func (in *Injector) TotalFired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, c := range in.fired {
		n += c
	}
	return n
}

// Pick deterministically selects k distinct victims from keys using the
// seed: the same (seed, keys, k) always yields the same victims, in stable
// (sorted) order, regardless of the caller's schedule. k is clamped to
// len(keys).
func Pick(seed int64, keys []string, k int) []string {
	if k > len(keys) {
		k = len(keys)
	}
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(keys))
	out := make([]string, 0, k)
	for _, i := range perm[:k] {
		out = append(out, keys[i])
	}
	sort.Strings(out)
	return out
}
