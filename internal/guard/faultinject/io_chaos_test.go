// I/O chaos campaigns: drive the full sweep stack (experiments → journal
// → trace) through seeded storage faults injected underneath unmodified
// production code via the fsio seam, and assert the degrade-don't-die
// contract — the sweep completes, every healthy cell stays bit-identical
// to an uninjected run, and each downgrade appears in the result's
// machine-readable Health block.
package faultinject_test

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vertical3d/internal/experiments"
	"vertical3d/internal/fsio"
	"vertical3d/internal/journal"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
)

// journalInjector routes journal.Open through an injector for the duration
// of the test.
func journalInjector(t *testing.T, seed int64, rules ...fsio.Rule) *fsio.Injector {
	t.Helper()
	in := fsio.NewInjector(seed, nil, rules...)
	journal.SetFS(in)
	t.Cleanup(func() { journal.SetFS(nil) })
	return in
}

// healthRoundTrip asserts the Health block is machine-readable: it must
// survive a JSON round trip unchanged and carry the expected layer tag.
func healthRoundTrip(t *testing.T, h experiments.Health, layer string) {
	t.Helper()
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("Health does not marshal: %v", err)
	}
	var back experiments.Health
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("Health does not unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, h) {
		t.Errorf("Health JSON round trip lost data:\n  sent %+v\n  got  %+v", h, back)
	}
	if !strings.Contains(string(raw), `"layer":"`+layer+`"`) {
		t.Errorf("Health JSON carries no %q event: %s", layer, raw)
	}
}

// TestChaosDiskFullMidSweep fills the disk under the journal a few appends
// into a sweep: the journal must quarantine its active segment and degrade
// to unjournaled execution, while the sweep completes with every cell
// bit-identical to an uninjected run; a later run with the same directory
// must recover full journaling.
func TestChaosDiskFullMidSweep(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Let the segment header and the first three appends through, then
	// every journal write hits a full disk. Workers=1 keeps the append
	// order (and so the counters) deterministic.
	journalInjector(t, 7, fsio.Rule{Op: fsio.OpWrite, Match: ".m3dj", After: 4})
	jopt := opt
	jopt.JournalDir = dir
	jopt.Workers = 1
	f, err := experiments.Fig6With(suite, profiles, jopt)
	if err != nil {
		t.Fatalf("disk-full sweep must complete: %v", err)
	}
	if n := f.FailedCells(); n != 0 {
		t.Fatalf("%d failed cells on a full disk, want 0 (degrade, don't die)", n)
	}
	if !reflect.DeepEqual(f.Runs, ref.Runs) {
		t.Error("disk-full Runs differ from the uninjected run")
	}
	if !reflect.DeepEqual(f.Speedup, ref.Speedup) {
		t.Error("disk-full Speedup differs from the uninjected run")
	}
	if !f.Journal.Degraded {
		t.Error("journal stats do not report the downgrade")
	}
	if f.Journal.Appends != 3 || f.Journal.AppendErrors != 1 {
		t.Errorf("journal counters = %+v, want 3 appends then 1 append error", f.Journal)
	}
	q, err := filepath.Glob(filepath.Join(dir, "*.m3dj.quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine files = %v (err %v), want exactly the active segment", q, err)
	}
	if !f.Health.Degraded {
		t.Fatal("Health does not report the degraded run")
	}
	found := false
	for _, e := range f.Health.Events {
		if e.Layer == "journal" && strings.Contains(e.Action, "unjournaled") {
			found = true
			if !strings.Contains(e.Cause, "no space left") {
				t.Errorf("downgrade event does not carry the ENOSPC cause: %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("no journal downgrade event in %+v", f.Health.Events)
	}
	healthRoundTrip(t, f.Health, "journal")

	// The disk "recovers": a fresh run with the same directory must ignore
	// the quarantined segment, journal every cell and report clean health.
	journal.SetFS(nil)
	f2, err := experiments.Fig6With(suite, profiles, jopt)
	if err != nil {
		t.Fatal(err)
	}
	total := len(profiles) * len(f.Designs)
	if f2.Journal.Hits != 0 || f2.Journal.Appends != total {
		t.Errorf("recovery run journal = %+v, want 0 hits and %d appends", f2.Journal, total)
	}
	if f2.Health.Degraded {
		t.Errorf("recovery run still degraded: %+v", f2.Health.Events)
	}
	if !reflect.DeepEqual(f2.Runs, ref.Runs) {
		t.Error("recovery Runs differ from the uninjected run")
	}
}

// TestChaosBitFlippedJournalTail corrupts the tail of a journaled sweep's
// segment: the resume must cut the torn tail, re-execute exactly the lost
// cells, and reconstruct the uninjected result bit for bit — with no
// degradation event, since torn-tail recovery is the journal's normal
// crash contract, not a downgrade.
func TestChaosBitFlippedJournalTail(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jopt := opt
	jopt.JournalDir = dir
	jopt.Workers = 1
	f1, err := experiments.Fig6With(suite, profiles, jopt)
	if err != nil {
		t.Fatal(err)
	}
	total := len(profiles) * len(f1.Designs)
	if f1.Journal.Appends != total {
		t.Fatalf("phase 1 journaled %d cells, want %d", f1.Journal.Appends, total)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.m3dj"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (err %v), want one", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x10 // flip one bit inside the last record's payload
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	executed := 0
	jopt.CellHook = func(bench, design string) { executed++ }
	f2, err := experiments.Fig6With(suite, profiles, jopt)
	if err != nil {
		t.Fatalf("resume over a bit-flipped tail must complete: %v", err)
	}
	if f2.Journal.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", f2.Journal.TornTails)
	}
	if f2.Journal.Hits != total-1 || executed != 1 {
		t.Errorf("resume merged %d and executed %d cells, want %d and 1",
			f2.Journal.Hits, executed, total-1)
	}
	if f2.Health.Degraded {
		t.Errorf("torn-tail recovery is not a downgrade, but Health = %+v", f2.Health.Events)
	}
	if !reflect.DeepEqual(f2.Runs, ref.Runs) {
		t.Error("resumed Runs differ from the uninjected run")
	}
	if !reflect.DeepEqual(f2.NormEnergy, ref.NormEnergy) {
		t.Error("resumed NormEnergy differs from the uninjected run")
	}
}

// TestChaosReadOnlyJournalDir denies the journal its directory (the
// injected shape of a read-only filesystem — chmod is useless here, tests
// may run as root): the sweep must run unjournaled with a Health event
// instead of aborting.
func TestChaosReadOnlyJournalDir(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	journalInjector(t, 11, fsio.Rule{Op: fsio.OpMkdir, Match: dir, Err: fs.ErrPermission})
	jopt := opt
	jopt.JournalDir = dir
	f, err := experiments.Fig6With(suite, profiles, jopt)
	if err != nil {
		t.Fatalf("sweep with an unwritable journal dir must complete: %v", err)
	}
	if !reflect.DeepEqual(f.Runs, ref.Runs) {
		t.Error("unjournaled Runs differ from the uninjected run")
	}
	if f.Journal != (journal.Stats{}) {
		t.Errorf("journal stats = %+v, want zero (never opened)", f.Journal)
	}
	if !f.Health.Degraded {
		t.Fatal("Health does not report the downgrade")
	}
	found := false
	for _, e := range f.Health.Events {
		if e.Layer == "journal" && strings.Contains(e.Action, "journaling disabled") &&
			strings.Contains(e.Cause, "permission denied") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no journaling-disabled event in %+v", f.Health.Events)
	}
	healthRoundTrip(t, f.Health, "journal")
}

// TestChaosFlakyTraceDir runs a sweep against a trace-cache directory
// whose writes fail: every recording save errors out, the sweep falls back
// to the in-memory single-flight cache, results stay bit-identical, and
// the Health block reports the stale cache.
func TestChaosFlakyTraceDir(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	trace.ResetCache() // drop the recordings the reference run cached
	t.Cleanup(trace.ResetCache)
	if err := trace.SetCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = trace.SetCacheDir("") })
	in := fsio.NewInjector(13, nil, fsio.Rule{Op: fsio.OpSync, Match: ".m3dtrace"})
	trace.SetFS(in)
	t.Cleanup(func() { trace.SetFS(nil) })

	f, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatalf("sweep over a flaky trace dir must complete: %v", err)
	}
	if !reflect.DeepEqual(f.Runs, ref.Runs) {
		t.Error("flaky-trace-dir Runs differ from the uninjected run")
	}
	if in.InjectedOp(fsio.OpSync) != len(profiles) {
		t.Errorf("injected %d sync faults, want one per profile (%d)",
			in.InjectedOp(fsio.OpSync), len(profiles))
	}
	if !f.Health.Degraded {
		t.Fatal("Health does not report the failed cache saves")
	}
	found := false
	for _, e := range f.Health.Events {
		if e.Layer == "trace" && strings.Contains(e.Action, "save(s) failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no trace save-failure event in %+v", f.Health.Events)
	}
	healthRoundTrip(t, f.Health, "trace")
}

// TestChaosSampleBudgetFallback runs a sampled sweep under an absurdly
// tight oracle budget: every cell must fall back to full simulation —
// producing results bit-identical to a full (unsampled) run — with one
// "sample" Health event per cell.
func TestChaosSampleBudgetFallback(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	full, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	sopt := opt
	sopt.Sample = true
	sopt.SampleParams = uarch.SampleParams{Interval: 4_000, Warmup: 500, Unit: 1_000}
	sopt.SampleErrorBudget = 1e-12
	f, err := experiments.Fig6With(suite, profiles, sopt)
	if err != nil {
		t.Fatalf("sampled sweep with fallback must complete: %v", err)
	}
	if !reflect.DeepEqual(f.Runs, full.Runs) {
		t.Error("fallback Runs differ from the full-simulation run")
	}
	total := len(profiles) * len(f.Designs)
	if !f.Health.Degraded || len(f.Health.Events) != total {
		t.Fatalf("Health = %+v, want %d sample fallback events", f.Health, total)
	}
	for _, e := range f.Health.Events {
		if e.Layer != "sample" || !strings.Contains(e.Action, "full simulation") {
			t.Errorf("unexpected event %+v", e)
		}
		if !strings.Contains(e.Cause, "budget") {
			t.Errorf("fallback event does not carry the budget breach: %+v", e)
		}
	}
	healthRoundTrip(t, f.Health, "sample")
}
