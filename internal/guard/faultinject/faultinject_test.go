// Chaos tests: drive the parallel pool and the Fig6/Fig9 sweeps through
// injected panics, slow cells and mid-sweep cancellation, and assert the
// pipeline's robustness contract — healthy cells bit-identical to a
// fault-free run at any worker count, panics recovered as structured
// *parallel.PanicError values, and deterministic lowest-index error
// selection.
package faultinject_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/guard/faultinject"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

var workerCounts = []int{1, 4, 16}

func TestPickDeterministic(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	v1 := faultinject.Pick(7, keys, 3)
	v2 := faultinject.Pick(7, keys, 3)
	if !reflect.DeepEqual(v1, v2) {
		t.Errorf("same seed must pick the same victims: %v vs %v", v1, v2)
	}
	if len(v1) != 3 {
		t.Fatalf("want 3 victims, got %v", v1)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	for _, v := range v1 {
		if !seen[v] {
			t.Errorf("victim %q not in key set", v)
		}
	}
	if got := faultinject.Pick(7, keys, 100); len(got) != len(keys) {
		t.Errorf("k is clamped to len(keys): got %d victims", len(got))
	}
	if got := faultinject.Pick(7, keys, 0); got != nil {
		t.Errorf("k=0 must pick nothing, got %v", got)
	}
}

// TestPoolPanicsRecovered injects panics into pool tasks and checks that,
// at every worker count, healthy cells are untouched and poisoned cells
// carry a *parallel.PanicError with the right index, value and stack.
func TestPoolPanicsRecovered(t *testing.T) {
	const n = 32
	poisoned := []int{5, 17}
	for _, w := range workerCounts {
		in := faultinject.New()
		for _, i := range poisoned {
			in.PanicAt(faultinject.TaskKey(i))
		}
		pool := parallel.Pool{Workers: w}
		out, errs := parallel.MapPartial(context.Background(), pool, n, func(_ context.Context, i int) (int, error) {
			in.Visit(faultinject.TaskKey(i))
			return i * i, nil
		})
		if got := parallel.CountErrors(errs); got != len(poisoned) {
			t.Fatalf("workers=%d: %d failed cells, want %d", w, got, len(poisoned))
		}
		for _, i := range poisoned {
			var pe *parallel.PanicError
			if !errors.As(errs[i], &pe) {
				t.Fatalf("workers=%d: errs[%d] = %v, want *parallel.PanicError", w, i, errs[i])
			}
			if pe.Index != i {
				t.Errorf("workers=%d: PanicError.Index = %d, want %d", w, pe.Index, i)
			}
			ip, ok := pe.Value.(faultinject.InjectedPanic)
			if !ok || ip.Key != faultinject.TaskKey(i) {
				t.Errorf("workers=%d: PanicError.Value = %#v, want InjectedPanic{%q}", w, pe.Value, faultinject.TaskKey(i))
			}
			if !strings.Contains(string(pe.Stack), "faultinject") {
				t.Errorf("workers=%d: stack does not reach the injection site:\n%s", w, pe.Stack)
			}
			if out[i] != 0 {
				t.Errorf("workers=%d: poisoned cell %d leaked a value %d", w, i, out[i])
			}
		}
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				continue
			}
			if out[i] != i*i {
				t.Errorf("workers=%d: healthy cell %d = %d, want %d", w, i, out[i], i*i)
			}
		}
		if in.Fired(faultinject.TaskKey(5)) != 1 {
			t.Errorf("workers=%d: poisoned cell fired %d times", w, in.Fired(faultinject.TaskKey(5)))
		}
	}
}

// TestPoolFailFastLowestIndex checks that with several poisoned cells, the
// fail-fast Map reports the lowest-indexed panic on every schedule.
func TestPoolFailFastLowestIndex(t *testing.T) {
	const n = 32
	for _, w := range workerCounts {
		in := faultinject.New()
		in.PanicAt(faultinject.TaskKey(5), faultinject.TaskKey(17))
		pool := parallel.Pool{Workers: w}
		_, err := parallel.Map(context.Background(), pool, n, func(_ context.Context, i int) (int, error) {
			in.Visit(faultinject.TaskKey(i))
			return i, nil
		})
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *parallel.PanicError", w, err)
		}
		if pe.Index != 5 {
			t.Errorf("workers=%d: reported index %d, want lowest index 5", w, pe.Index)
		}
	}
}

// TestPoolSlowTaskDeadline checks that a cooperative slow cell trips its
// TaskTimeout without disturbing healthy cells.
func TestPoolSlowTaskDeadline(t *testing.T) {
	const n = 8
	const slow = 3
	pool := parallel.Pool{Workers: 4, TaskTimeout: 10 * time.Millisecond}
	out, errs := parallel.MapPartial(context.Background(), pool, n, func(ctx context.Context, i int) (int, error) {
		if i == slow {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Second):
				t.Error("slow task outlived its deadline")
			}
		}
		return i * i, nil
	})
	if !errors.Is(errs[slow], context.DeadlineExceeded) {
		t.Fatalf("errs[%d] = %v, want deadline exceeded", slow, errs[slow])
	}
	if parallel.CountErrors(errs) != 1 {
		t.Errorf("only the slow cell may fail, got %d errors", parallel.CountErrors(errs))
	}
	for i := 0; i < n; i++ {
		if i != slow && out[i] != i*i {
			t.Errorf("healthy cell %d = %d, want %d", i, out[i], i*i)
		}
	}
}

// TestPoolMidSweepCancellation cancels the sweep from inside a cell. With a
// single worker the dispatch order is sequential, so exactly the cells after
// the cancelling one must be marked with the context error.
func TestPoolMidSweepCancellation(t *testing.T) {
	const n = 10
	const cancelAt = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := parallel.Pool{Workers: 1}
	out, errs := parallel.MapPartial(ctx, pool, n, func(_ context.Context, i int) (int, error) {
		if i == cancelAt {
			cancel()
		}
		return i * i, nil
	})
	for i := 0; i <= cancelAt; i++ {
		if errs[i] != nil || out[i] != i*i {
			t.Errorf("cell %d before the cancel: out=%d errs=%v", i, out[i], errs[i])
		}
	}
	for i := cancelAt + 1; i < n; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("cell %d after the cancel: errs=%v, want context.Canceled", i, errs[i])
		}
	}
}

// --- sweep-level chaos -----------------------------------------------------

func fig6Fixture(t *testing.T) (*config.Suite, []trace.Profile, experiments.RunOptions) {
	t.Helper()
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	var profiles []trace.Profile
	for _, name := range []string{"Gamess", "Mcf"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	opt := experiments.RunOptions{Warmup: 2_000, Measure: 8_000, Seed: 42}
	return suite, profiles, opt
}

// victimDesign returns a non-Base single-core design to poison.
func victimDesign(t *testing.T) config.Design {
	t.Helper()
	for _, d := range config.SingleCoreDesigns() {
		if d != config.Base {
			return d
		}
	}
	t.Fatal("no non-Base design")
	return config.Base
}

// TestFig6ChaosHealthyCellsBitIdentical poisons one sweep cell and checks
// that, at every worker count, the keep-going sweep completes with every
// healthy cell bit-identical to a fault-free reference run and the poisoned
// cell reported as a structured PanicError with a stack.
func TestFig6ChaosHealthyCellsBitIdentical(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	victimBench, victim := profiles[1].Name, victimDesign(t)

	for _, w := range workerCounts {
		in := faultinject.New()
		in.PanicAt(faultinject.Key(victimBench, victim.String()))
		copt := opt
		copt.Workers = w
		copt.KeepGoing = true
		copt.CellHook = in.Hook()
		f, err := experiments.Fig6With(suite, profiles, copt)
		if err != nil {
			t.Fatalf("workers=%d: keep-going sweep must complete: %v", w, err)
		}
		if f.FailedCells() != 1 {
			t.Fatalf("workers=%d: %d failed cells, want 1", w, f.FailedCells())
		}
		var pe *parallel.PanicError
		if !errors.As(f.Errors[victimBench][victim], &pe) {
			t.Fatalf("workers=%d: poisoned cell error = %v, want *parallel.PanicError", w, f.Errors[victimBench][victim])
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError carries no stack", w)
		}
		if !errors.As(f.Err(), &pe) {
			t.Errorf("workers=%d: Err() = %v, want the poisoned cell's PanicError", w, f.Err())
		}
		for _, b := range ref.Benchmarks {
			for _, d := range config.SingleCoreDesigns() {
				if b == victimBench && d == victim {
					if _, ok := f.Runs[b][d]; ok {
						t.Errorf("workers=%d: poisoned cell %s/%s must not carry a result", w, b, d)
					}
					continue
				}
				if !reflect.DeepEqual(f.Runs[b][d], ref.Runs[b][d]) {
					t.Errorf("workers=%d: healthy cell %s/%s differs from the fault-free run", w, b, d)
				}
				if f.Speedup[b][d] != ref.Speedup[b][d] {
					t.Errorf("workers=%d: speedup %s/%s = %v, want %v", w, b, d, f.Speedup[b][d], ref.Speedup[b][d])
				}
			}
		}
		// The poisoned cell must have no derived ratios.
		if _, ok := f.Speedup[victimBench][victim]; ok {
			t.Errorf("workers=%d: poisoned cell leaked a speedup entry", w)
		}
	}
}

// TestFig6ChaosPoisonedBase poisons a benchmark's Base cell: the sweep still
// completes, that benchmark loses its derived ratios (no reference), and the
// other benchmark is untouched.
func TestFig6ChaosPoisonedBase(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	victimBench, healthyBench := profiles[0].Name, profiles[1].Name

	in := faultinject.New()
	in.PanicAt(faultinject.Key(victimBench, config.Base.String()))
	copt := opt
	copt.Workers = 4
	copt.KeepGoing = true
	copt.CellHook = in.Hook()
	f, err := experiments.Fig6With(suite, profiles, copt)
	if err != nil {
		t.Fatal(err)
	}
	if f.FailedCells() != 1 {
		t.Fatalf("%d failed cells, want 1", f.FailedCells())
	}
	if len(f.Speedup[victimBench]) != 0 {
		t.Errorf("benchmark with a failed Base cell must have no speedups, got %v", f.Speedup[victimBench])
	}
	for _, d := range config.SingleCoreDesigns() {
		if d != config.Base && !reflect.DeepEqual(f.Runs[victimBench][d], ref.Runs[victimBench][d]) {
			t.Errorf("non-Base cell %s/%s must still run and match", victimBench, d)
		}
		if f.Speedup[healthyBench][d] != ref.Speedup[healthyBench][d] {
			t.Errorf("healthy benchmark's speedup for %s changed", d)
		}
	}
}

// TestFig6FailFastLowestCell checks that without KeepGoing, a sweep with two
// poisoned cells deterministically reports the lower-indexed cell in
// (benchmark-major, design-minor) order at every worker count.
func TestFig6FailFastLowestCell(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	designs := config.SingleCoreDesigns()
	nd := len(designs)
	// Poison (bench 0, design nd-1) and (bench 1, design 1): the first has
	// the lower linear index.
	lo := faultinject.Key(profiles[0].Name, designs[nd-1].String())
	hi := faultinject.Key(profiles[1].Name, designs[1].String())
	for _, w := range workerCounts {
		in := faultinject.New()
		in.PanicAt(lo, hi)
		copt := opt
		copt.Workers = w
		copt.CellHook = in.Hook()
		_, err := experiments.Fig6With(suite, profiles, copt)
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *parallel.PanicError", w, err)
		}
		if want := 0*nd + (nd - 1); pe.Index != want {
			t.Errorf("workers=%d: failed cell index %d, want lowest %d", w, pe.Index, want)
		}
	}
}

// TestFig9ChaosHealthyCellsBitIdentical is the multicore counterpart: one
// poisoned (benchmark × multicore-design) cell, keep-going, healthy cells
// bit-identical to the fault-free reference at every worker count.
func TestFig9ChaosHealthyCellsBitIdentical(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := workload.Parallel()[:1]
	opt := multicore.Options{TotalInstrs: 30_000, WarmupPerCore: 2_000, Phases: 2, Seed: 42}
	ref, err := experiments.Fig9With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	var victim config.MulticoreDesign
	for _, d := range config.MulticoreDesigns() {
		if d != config.MCBase {
			victim = d
			break
		}
	}
	bench := profiles[0].Name

	for _, w := range []int{1, 4} {
		in := faultinject.New()
		in.PanicAt(faultinject.Key(bench, victim.String()))
		copt := opt
		copt.Workers = w
		copt.KeepGoing = true
		copt.CellHook = in.Hook()
		f, err := experiments.Fig9With(suite, profiles, copt)
		if err != nil {
			t.Fatalf("workers=%d: keep-going sweep must complete: %v", w, err)
		}
		var pe *parallel.PanicError
		if !errors.As(f.Errors[bench][victim], &pe) {
			t.Fatalf("workers=%d: poisoned cell error = %v, want *parallel.PanicError", w, f.Errors[bench][victim])
		}
		for _, d := range config.MulticoreDesigns() {
			if d == victim {
				continue
			}
			if !reflect.DeepEqual(f.Runs[bench][d], ref.Runs[bench][d]) {
				t.Errorf("workers=%d: healthy cell %s differs from the fault-free run", w, d)
			}
			if f.Speedup[bench][d] != ref.Speedup[bench][d] {
				t.Errorf("workers=%d: speedup %s = %v, want %v", w, d, f.Speedup[bench][d], ref.Speedup[bench][d])
			}
		}
	}
}

// TestFig6ChaosSeededPlan drives a seeded fault plan end to end: Pick
// chooses the victims, and the sweep must report exactly those cells.
func TestFig6ChaosSeededPlan(t *testing.T) {
	suite, profiles, opt := fig6Fixture(t)
	var keys []string
	for _, p := range profiles {
		for _, d := range config.SingleCoreDesigns() {
			if d == config.Base {
				continue // keep the normalisation reference healthy
			}
			keys = append(keys, faultinject.Key(p.Name, d.String()))
		}
	}
	victims := faultinject.Pick(99, keys, 3)
	in := faultinject.New()
	in.PanicAt(victims...)
	copt := opt
	copt.Workers = 4
	copt.KeepGoing = true
	copt.CellHook = in.Hook()
	f, err := experiments.Fig6With(suite, profiles, copt)
	if err != nil {
		t.Fatal(err)
	}
	if f.FailedCells() != len(victims) {
		t.Fatalf("%d failed cells, want %d", f.FailedCells(), len(victims))
	}
	got := map[string]bool{}
	for b, m := range f.Errors {
		for d, err := range m {
			var pe *parallel.PanicError
			if !errors.As(err, &pe) {
				t.Errorf("cell %s/%s: %v, want *parallel.PanicError", b, d, err)
			}
			got[faultinject.Key(b, d.String())] = true
		}
	}
	for _, v := range victims {
		if !got[v] {
			t.Errorf("planned victim %s not reported", v)
		}
	}
}
