// Chaos tests for the shared trace-recording cache: injected panics and
// mid-sweep cancellation must not corrupt or evict the process-wide
// recordings that record-once/replay-many shares across sweep cells.
package faultinject_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/guard/faultinject"
	"vertical3d/internal/parallel"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// TestChaosSharedRecordingsSurvivePanics runs the Fig6 chaos scenario with
// the trace cache enabled (the default) and checks the replay contract:
//
//  1. healthy cells of every poisoned keep-going sweep are bit-identical to
//     a fault-free reference run,
//  2. the panics never force a re-recording — across all chaos runs the
//     cache still holds exactly one recording per profile, and
//  3. a final fault-free run replaying from the chaos-survived recordings
//     is bit-identical to the reference, proving the shared buffers were
//     neither corrupted nor evicted by recovered panics.
func TestChaosSharedRecordingsSurvivePanics(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	suite, profiles, opt := fig6Fixture(t)

	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantMisses := uint64(len(profiles))
	if st := trace.CacheStats(); st.Misses != wantMisses {
		t.Fatalf("reference run recorded %d streams, want %d", st.Misses, wantMisses)
	}
	victimBench, victim := profiles[1].Name, victimDesign(t)

	for _, w := range workerCounts {
		in := faultinject.New()
		in.PanicAt(faultinject.Key(victimBench, victim.String()))
		copt := opt
		copt.Workers = w
		copt.KeepGoing = true
		copt.CellHook = in.Hook()
		f, err := experiments.Fig6With(suite, profiles, copt)
		if err != nil {
			t.Fatalf("workers=%d: keep-going sweep must complete: %v", w, err)
		}
		var pe *parallel.PanicError
		if !errors.As(f.Errors[victimBench][victim], &pe) {
			t.Fatalf("workers=%d: poisoned cell error = %v, want *parallel.PanicError", w, f.Errors[victimBench][victim])
		}
		for _, b := range ref.Benchmarks {
			for _, d := range config.SingleCoreDesigns() {
				if b == victimBench && d == victim {
					continue
				}
				if !reflect.DeepEqual(f.Runs[b][d], ref.Runs[b][d]) {
					t.Errorf("workers=%d: healthy cell %s/%s differs from the fault-free run", w, b, d)
				}
			}
		}
		// The chaos sweep must have replayed the reference run's recordings,
		// not re-recorded them: miss count frozen since the reference run.
		if st := trace.CacheStats(); st.Misses != wantMisses {
			t.Fatalf("workers=%d: chaos run re-recorded streams: %d misses, want %d", w, st.Misses, wantMisses)
		}
	}

	// Recordings that lived through every panic must still replay the exact
	// reference streams.
	again, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Runs, ref.Runs) {
		t.Error("fault-free run after the chaos sweeps differs — shared recordings were corrupted")
	}
	if st := trace.CacheStats(); st.Misses != wantMisses {
		t.Errorf("final run re-recorded streams: %d misses, want %d (eviction under chaos?)", st.Misses, wantMisses)
	}
}

// TestChaosPanicDuringRecordingDoesNotPoisonCache panics inside the very
// first cell that would record a profile's stream (at Workers=1 the victim
// is the first cell to touch that key). The next cell of the same profile
// must then record the stream itself and every healthy cell must stay
// bit-identical to a fault-free run: a panicking first toucher may waste
// its own cell but must never leave a broken, truncated or missing
// recording behind for the survivors.
func TestChaosPanicDuringRecordingDoesNotPoisonCache(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	suite, profiles, opt := fig6Fixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	trace.ResetCache()
	// Workers=1 dispatches cells sequentially in (benchmark-major,
	// design-minor) order, so cell 0 — profiles[0] × designs[0] — is the
	// cell whose replayer would trigger the recording of profile 0's
	// stream. Poison exactly that cell.
	first := config.SingleCoreDesigns()[0]
	in := faultinject.New()
	in.PanicAt(faultinject.Key(profiles[0].Name, first.String()))
	copt := opt
	copt.Workers = 1
	copt.KeepGoing = true
	copt.CellHook = in.Hook()
	f, err := experiments.Fig6With(suite, profiles, copt)
	if err != nil {
		t.Fatal(err)
	}
	if f.FailedCells() != 1 {
		t.Fatalf("%d failed cells, want 1", f.FailedCells())
	}
	for _, b := range ref.Benchmarks {
		for _, d := range config.SingleCoreDesigns() {
			if b == profiles[0].Name && d == first {
				continue
			}
			if !reflect.DeepEqual(f.Runs[b][d], ref.Runs[b][d]) {
				t.Errorf("healthy cell %s/%s differs after the recorder cell panicked", b, d)
			}
		}
	}
	if st := trace.CacheStats(); st.Misses != uint64(len(profiles)) {
		t.Errorf("cache holds %d recordings, want %d (one per profile)", st.Misses, len(profiles))
	}
}

// TestChaosCancellationLeavesRecordingsIntact cancels a pool sweep whose
// cells replay a shared recording. Cells past the cancellation point are
// skipped, but the recording itself must survive: the cache still holds
// exactly one copy and it still replays bit-identically to a fresh
// generator.
func TestChaosCancellationLeavesRecordingsIntact(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	prof, err := workload.ByName("Mcf")
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	const cancelAt = 3
	const instrs = 5_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	sums := map[int]uint64{}
	pool := parallel.Pool{Workers: 1}
	_, errs := parallel.MapPartial(ctx, pool, n, func(_ context.Context, i int) (int, error) {
		r := trace.NewReplayer(trace.SharedRecording(prof, 42, 0, instrs))
		var sum uint64
		for k := 0; k < instrs; k++ {
			sum += r.Next().PC
		}
		mu.Lock()
		sums[i] = sum
		mu.Unlock()
		if i == cancelAt {
			cancel()
		}
		return i, nil
	})
	for i := cancelAt + 1; i < n; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("cell %d after the cancel: errs=%v, want context.Canceled", i, errs[i])
		}
	}
	for i := 1; i <= cancelAt; i++ {
		if sums[i] != sums[0] {
			t.Errorf("cell %d replayed a different stream than cell 0", i)
		}
	}
	st := trace.CacheStats()
	if st.Misses != 1 {
		t.Errorf("cache recorded %d streams, want 1", st.Misses)
	}
	// The surviving recording still matches generation exactly.
	want := trace.NewGenerator(prof, 42, 0)
	r := trace.NewReplayer(trace.SharedRecording(prof, 42, 0, instrs))
	for k := 0; k < instrs; k++ {
		if g, x := want.Next(), r.Next(); x != g {
			t.Fatalf("instruction %d differs after the cancelled sweep", k)
		}
	}
	if st := trace.CacheStats(); st.Misses != 1 {
		t.Errorf("post-cancel verification re-recorded the stream: %+v", st)
	}
}
