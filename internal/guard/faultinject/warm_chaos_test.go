// Warm-state snapshot chaos campaigns: drive sampled sweeps through
// storage faults injected underneath the .m3dwarm cache (bit flips, full
// disks, unwritable directories) and assert the degrade-don't-die
// contract — the sweep completes, results stay bit-identical to an
// uninjected run, and every downgrade appears in the Health block under
// the "warm" layer.
package faultinject_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/fsio"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/warm"
)

// sampledFixture builds on fig6Fixture: sampling on, snapshot cache on,
// stride = 1000. Both caches are reset before and after the test so runs
// inside one test share state only when the test wants them to.
func sampledFixture(t *testing.T) (*config.Suite, []trace.Profile, experiments.RunOptions) {
	t.Helper()
	suite, profiles, opt := fig6Fixture(t)
	opt.Sample = true
	opt.SampleParams = uarch.SampleParams{Interval: 4_000, Warmup: 500, Unit: 1_000}
	opt.WarmCache = true
	trace.ResetCache()
	warm.ResetCache()
	t.Cleanup(func() {
		trace.ResetCache()
		warm.ResetCache()
	})
	return suite, profiles, opt
}

// warmInjector routes the snapshot file layer through an injector for the
// duration of the test.
func warmInjector(t *testing.T, seed int64, rules ...fsio.Rule) *fsio.Injector {
	t.Helper()
	in := fsio.NewInjector(seed, nil, rules...)
	warm.SetFS(in)
	t.Cleanup(func() { warm.SetFS(nil) })
	return in
}

// warmDir points the snapshot cache at a temp directory for the test.
func warmDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := warm.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = warm.SetCacheDir("") })
	return dir
}

// TestChaosBitFlippedWarmSnapshot corrupts a persisted snapshot between
// two sampled sweeps: the second sweep must quarantine the damaged file,
// rebuild the checkpoint from the trace, produce bit-identical results,
// and report the regeneration in the Health block.
func TestChaosBitFlippedWarmSnapshot(t *testing.T) {
	suite, profiles, opt := sampledFixture(t)
	dir := warmDir(t)

	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.m3dwarm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no snapshots persisted (%v, err %v)", files, err)
	}
	sort.Strings(files)
	victim := files[0]
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A "fresh process" (in-memory cache dropped) must survive the
	// damaged file: quarantine, rebuild, identical results.
	warm.ResetCache()
	f, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatalf("sweep over a corrupt snapshot must complete: %v", err)
	}
	if !reflect.DeepEqual(f.Runs, ref.Runs) {
		t.Error("corrupt-snapshot Runs differ from the uninjected run")
	}
	if !reflect.DeepEqual(f.Speedup, ref.Speedup) {
		t.Error("corrupt-snapshot Speedup differs from the uninjected run")
	}
	if _, err := os.Stat(victim + ".quarantine"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
	if !f.Health.Degraded {
		t.Fatal("Health does not report the regeneration")
	}
	found := false
	for _, e := range f.Health.Events {
		if e.Layer == "warm" && strings.Contains(e.Action, "regenerated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no warm regeneration event in %+v", f.Health.Events)
	}
	healthRoundTrip(t, f.Health, "warm")
}

// TestChaosDiskFullWarmDir fills the disk under the snapshot directory
// mid-save: every snapshot write fails, the sweep keeps its in-memory
// ladder (results bit-identical), and the Health block reports the stale
// snapshot directory.
func TestChaosDiskFullWarmDir(t *testing.T) {
	suite, profiles, opt := sampledFixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	warm.ResetCache()
	warmDir(t)
	in := warmInjector(t, 17, fsio.Rule{Op: fsio.OpWrite, Match: ".m3dwarm", After: 2})
	f, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatalf("sweep over a full snapshot disk must complete: %v", err)
	}
	if !reflect.DeepEqual(f.Runs, ref.Runs) {
		t.Error("disk-full Runs differ from the uninjected run")
	}
	if in.InjectedOp(fsio.OpWrite) == 0 {
		t.Fatal("no write faults were injected under the snapshot dir")
	}
	if warm.Stats().SaveErrors == 0 {
		t.Error("failed snapshot saves were not counted")
	}
	if !f.Health.Degraded {
		t.Fatal("Health does not report the failed snapshot saves")
	}
	found := false
	for _, e := range f.Health.Events {
		if e.Layer == "warm" && strings.Contains(e.Action, "save(s) failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no warm save-failure event in %+v", f.Health.Events)
	}
	healthRoundTrip(t, f.Health, "warm")
}

// TestChaosReadOnlyWarmDir denies the snapshot layer its temp files (the
// injected shape of a read-only snapshot directory): every save fails at
// creation, the sweep runs from the in-memory ladder with bit-identical
// results, and the Health block reports the stale directory.
func TestChaosReadOnlyWarmDir(t *testing.T) {
	suite, profiles, opt := sampledFixture(t)
	ref, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	warm.ResetCache()
	dir := warmDir(t)
	warmInjector(t, 19, fsio.Rule{Op: fsio.OpCreate, Match: dir})
	f, err := experiments.Fig6With(suite, profiles, opt)
	if err != nil {
		t.Fatalf("sweep with an unwritable snapshot dir must complete: %v", err)
	}
	if !reflect.DeepEqual(f.Runs, ref.Runs) {
		t.Error("read-only-dir Runs differ from the uninjected run")
	}
	if warm.Stats().SaveErrors == 0 {
		t.Error("refused snapshot saves were not counted")
	}
	if !f.Health.Degraded {
		t.Fatal("Health does not report the refused saves")
	}
	found := false
	for _, e := range f.Health.Events {
		if e.Layer == "warm" && strings.Contains(e.Action, "save(s) failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no warm save-failure event in %+v", f.Health.Events)
	}
	healthRoundTrip(t, f.Health, "warm")
}
