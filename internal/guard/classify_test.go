package guard_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
	"testing"
	"time"

	"vertical3d/internal/guard"
	"vertical3d/internal/parallel"
)

type fakeTimeout struct{ hit bool }

func (f fakeTimeout) Error() string { return "fake i/o timeout" }
func (f fakeTimeout) Timeout() bool { return f.hit }

func TestClassify(t *testing.T) {
	panicErr := func() error {
		p := parallel.Pool{Workers: 1}
		err := p.ForEach(context.Background(), 1, func(context.Context, int) error {
			panic("boom")
		})
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("pool did not surface a PanicError: %v", err)
		}
		return err
	}()

	ctxTimeout, cancelT := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancelT()
	<-ctxTimeout.Done()

	cases := []struct {
		name string
		err  error
		want guard.Kind
	}{
		{"nil", nil, guard.KindError},
		{"plain", errors.New("model blew up"), guard.KindError},
		{"wrapped-plain", fmt.Errorf("fig6 a/b: %w", errors.New("x")), guard.KindError},
		{"panic", panicErr, guard.KindPanic},
		{"wrapped-panic", fmt.Errorf("fig6 a/b: %w", panicErr), guard.KindPanic},
		{"canceled", context.Canceled, guard.KindCanceled},
		{"wrapped-canceled", fmt.Errorf("cell 3 not dispatched: %w", context.Canceled), guard.KindCanceled},
		{"deadline", context.DeadlineExceeded, guard.KindTimeout},
		{"ctx-deadline-err", ctxTimeout.Err(), guard.KindTimeout},
		{"wrapped-deadline", fmt.Errorf("cell: %w", context.DeadlineExceeded), guard.KindTimeout},
		{"net-style-timeout", fakeTimeout{hit: true}, guard.KindTimeout},
		{"net-style-not-timeout", fakeTimeout{hit: false}, guard.KindError},
		{"path-enospc", &fs.PathError{Op: "write", Path: "seg.m3dj", Err: syscall.ENOSPC}, guard.KindIO},
		{"wrapped-path-enospc", fmt.Errorf("journal: append %q: %w", "k",
			&fs.PathError{Op: "write", Path: "seg.m3dj", Err: syscall.ENOSPC}), guard.KindIO},
		{"deep-wrapped-eio", fmt.Errorf("sweep: %w", fmt.Errorf("cell: %w",
			&fs.PathError{Op: "sync", Path: "x", Err: syscall.EIO})), guard.KindIO},
		{"link-error", &os.LinkError{Op: "rename", Old: "a", New: "b", Err: syscall.EXDEV}, guard.KindIO},
		{"bare-errno", syscall.ENOSPC, guard.KindIO},
		{"fs-permission", fs.ErrPermission, guard.KindIO},
		{"wrapped-permission", fmt.Errorf("journal: %w",
			&fs.PathError{Op: "open", Path: "dir", Err: fs.ErrPermission}), guard.KindIO},
		{"short-write", fmt.Errorf("trace: save: %w", io.ErrShortWrite), guard.KindIO},
		// ETIMEDOUT self-reports as a timeout through syscall.Errno's
		// Timeout() method, so it stays KindTimeout, not KindIO.
		{"errno-timeout", &fs.PathError{Op: "write", Path: "nfs", Err: syscall.ETIMEDOUT}, guard.KindTimeout},
		// Cancellation anywhere in an I/O chain is still cancellation.
		{"canceled-io-chain", &fs.PathError{Op: "read", Path: "x", Err: context.Canceled}, guard.KindCanceled},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := guard.Classify(c.err); got != c.want {
				t.Fatalf("Classify(%v) = %v, want %v", c.err, got, c.want)
			}
		})
	}
}

func TestClassifyPanicWinsOverDeadline(t *testing.T) {
	// A cell that panicked while its deadline expired is still a panic:
	// the panic is the root cause worth surfacing and retry-classifying.
	p := parallel.Pool{Workers: 1, TaskTimeout: time.Hour}
	err := p.ForEach(context.Background(), 1, func(context.Context, int) error {
		panic(context.DeadlineExceeded)
	})
	if got := guard.Classify(err); got != guard.KindPanic {
		t.Fatalf("Classify = %v, want panic", got)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[guard.Kind]string{
		guard.KindError:    "error",
		guard.KindPanic:    "panic",
		guard.KindTimeout:  "timeout",
		guard.KindCanceled: "canceled",
		guard.KindIO:       "io",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
