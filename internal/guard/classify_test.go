package guard_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"vertical3d/internal/guard"
	"vertical3d/internal/parallel"
)

type fakeTimeout struct{ hit bool }

func (f fakeTimeout) Error() string { return "fake i/o timeout" }
func (f fakeTimeout) Timeout() bool { return f.hit }

func TestClassify(t *testing.T) {
	panicErr := func() error {
		p := parallel.Pool{Workers: 1}
		err := p.ForEach(context.Background(), 1, func(context.Context, int) error {
			panic("boom")
		})
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("pool did not surface a PanicError: %v", err)
		}
		return err
	}()

	ctxTimeout, cancelT := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancelT()
	<-ctxTimeout.Done()

	cases := []struct {
		name string
		err  error
		want guard.Kind
	}{
		{"nil", nil, guard.KindError},
		{"plain", errors.New("model blew up"), guard.KindError},
		{"wrapped-plain", fmt.Errorf("fig6 a/b: %w", errors.New("x")), guard.KindError},
		{"panic", panicErr, guard.KindPanic},
		{"wrapped-panic", fmt.Errorf("fig6 a/b: %w", panicErr), guard.KindPanic},
		{"canceled", context.Canceled, guard.KindCanceled},
		{"wrapped-canceled", fmt.Errorf("cell 3 not dispatched: %w", context.Canceled), guard.KindCanceled},
		{"deadline", context.DeadlineExceeded, guard.KindTimeout},
		{"ctx-deadline-err", ctxTimeout.Err(), guard.KindTimeout},
		{"wrapped-deadline", fmt.Errorf("cell: %w", context.DeadlineExceeded), guard.KindTimeout},
		{"net-style-timeout", fakeTimeout{hit: true}, guard.KindTimeout},
		{"net-style-not-timeout", fakeTimeout{hit: false}, guard.KindError},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := guard.Classify(c.err); got != c.want {
				t.Fatalf("Classify(%v) = %v, want %v", c.err, got, c.want)
			}
		})
	}
}

func TestClassifyPanicWinsOverDeadline(t *testing.T) {
	// A cell that panicked while its deadline expired is still a panic:
	// the panic is the root cause worth surfacing and retry-classifying.
	p := parallel.Pool{Workers: 1, TaskTimeout: time.Hour}
	err := p.ForEach(context.Background(), 1, func(context.Context, int) error {
		panic(context.DeadlineExceeded)
	})
	if got := guard.Classify(err); got != guard.KindPanic {
		t.Fatalf("Classify = %v, want panic", got)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[guard.Kind]string{
		guard.KindError:    "error",
		guard.KindPanic:    "panic",
		guard.KindTimeout:  "timeout",
		guard.KindCanceled: "canceled",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
