// Package jobstore is the write-ahead job manifest behind the m3dd
// daemon's crash-tolerant serving. The daemon's job table — which sweeps
// were accepted, what they asked for, and how far they got — used to live
// only in memory, so a crash or redeploy silently lost every queued and
// running sweep even though the cell-level journal (internal/journal)
// already makes the underlying simulations bit-identically resumable. The
// manifest closes that gap: every accepted sweep spec and every state
// transition is appended to disk before it is acted on, so a restarted
// daemon replays the manifest, restores the ledger, and re-enqueues every
// unfinished job. Re-run cells are then served from the journal/result
// cache, so a kill -9 mid-sweep costs at most the in-flight cells — never
// a job, never a completed cell.
//
// On-disk layout: a manifest directory holds append-only segment files,
// one per writing process:
//
//	jobs-<unixnano>-<pid>.m3dq
//
//	offset  size  field
//	0       8     magic "M3DJOB01"
//	8       4     header length H (little-endian uint32)
//	12      H     JSON header {CreatedUnixNano}
//	12+H    ...   records, each:
//	                4  payload length L (little-endian uint32)
//	                4  CRC32 (IEEE) of the payload
//	                L  payload: JSON Record
//
// Durability and safety follow the .m3dj playbook:
//
//   - the segment header is written to a temp file, fsync'd and renamed
//     into place, so no reader ever sees a torn header;
//   - every append is fsync'd before it is acknowledged, so an
//     acknowledged accept or transition survives any later crash;
//   - on load, a torn tail (short frame, implausible length, CRC or JSON
//     mismatch) ends the segment at the last good record, and stale torn
//     segments are physically truncated back to that point;
//   - a segment with a corrupt magic or header is quarantined
//     (renamed to <name>.m3dq.quarantine) and counted, never trusted;
//   - an append or segment-creation failure quarantines the active
//     segment and degrades the store: the in-memory ledger keeps
//     answering, Append stops touching the disk and returns the original
//     cause — the daemon keeps serving with memory-only jobs instead of
//     refusing traffic over a bookkeeping failure.
//
// Replay is last-writer-wins per job: records carry their wall-clock
// nanos and a state update applies only when it is not older than the
// job's latest, so segments from interleaved processes (or a compaction
// racing a crash) merge to the same ledger in any file order.
//
// Compaction: Open folds each job's record chain into one record and,
// when the manifest has accumulated enough dead weight, rewrites it as a
// single compact segment (tmp+fsync+rename) before removing the old
// files — crash-safe at every step because replay of old+new together is
// idempotent under the last-writer-wins rule. Jobs in the terminal
// "evicted" state are dropped from the compact image entirely.
//
// All filesystem access goes through the internal/fsio seam, so the
// serving chaos campaigns inject deterministic storage faults underneath
// unmodified production code.
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vertical3d/internal/fsio"
)

const (
	segMagic = "M3DJOB01"
	segExt   = ".m3dq"

	// quarantineExt is appended to a bad segment's full name, so
	// "x.m3dq" becomes "x.m3dq.quarantine" and no longer matches segExt.
	quarantineExt = ".quarantine"

	// maxHeader and maxPayload bound the length prefixes a loader will
	// trust; anything larger is treated as corruption (torn tail).
	maxHeader  = 1 << 20
	maxPayload = 1 << 22

	// tornTruncateAge guards physical truncation: a torn segment younger
	// than this may still be appended to by a live sibling process.
	tornTruncateAge = time.Minute

	// compactSlack is how many dead records the manifest tolerates before
	// Open rewrites it: a compact image is one record per job, so a
	// manifest is rewritten when it holds more than 2×jobs+compactSlack
	// records (every job contributes at least an accept plus a handful of
	// transitions before going stale).
	compactSlack = 64
)

// Job states, in lifecycle order. Accepted/Queued/Running/Interrupted are
// unfinished — a restarted daemon re-enqueues them; Done/Failed/Evicted
// are terminal.
const (
	StateAccepted    = "accepted"
	StateQueued      = "queued"
	StateRunning     = "running"
	StateInterrupted = "interrupted" // shutdown landed mid-job; resume on restart
	StateDone        = "done"
	StateFailed      = "failed"
	StateEvicted     = "evicted" // dropped from the ledger; compaction forgets it
)

// Terminal reports whether a state ends a job's lifecycle. Unfinished
// (non-terminal) jobs are re-enqueued by a restarted daemon.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateEvicted
}

// Record is one manifest frame: a job acceptance (Spec non-empty) or a
// state transition. Exported so the fuzz targets and the serving chaos
// campaigns can build frames directly.
type Record struct {
	// ID is the job id the record belongs to.
	ID string
	// Seq is the numeric sequence behind the id, persisted so a restarted
	// daemon continues numbering instead of reissuing ids.
	Seq int `json:",omitempty"`
	// State is the job state this record establishes ("" on records that
	// only carry a spec).
	State string `json:",omitempty"`
	// Spec is the accepted sweep request, verbatim JSON; set on accept
	// records and compact images.
	Spec json.RawMessage `json:",omitempty"`
	// Error is the failure message of a failed/interrupted transition.
	Error string `json:",omitempty"`
	// DeadlineUnixNano is the job's absolute deadline (0 = none).
	DeadlineUnixNano int64 `json:",omitempty"`
	// CreatedUnixNano is the job's accept time; set on accept records and
	// compact images.
	CreatedUnixNano int64 `json:",omitempty"`
	// UnixNano is the record's own wall-clock time; replay is
	// last-writer-wins on it.
	UnixNano int64
}

// Job is one replayed ledger entry.
type Job struct {
	ID       string
	Seq      int
	Spec     json.RawMessage
	State    string
	Error    string
	Deadline time.Time // zero = none
	Created  time.Time
	Updated  time.Time
}

// Stats counts what a store loaded and how it was used.
type Stats struct {
	// Segments and Records count what Open replayed; SkippedSegments
	// counts unreadable files; TornTails segments whose tail was cut.
	Segments        int `json:"segments"`
	SkippedSegments int `json:"skipped_segments"`
	Records         int `json:"records"`
	TornTails       int `json:"torn_tails"`

	// Quarantined counts segment files renamed to *.m3dq.quarantine
	// (corrupt headers on load plus the active segment after an append
	// failure). Degraded reports the store has stopped appending after an
	// I/O failure — the in-memory ledger keeps answering.
	Quarantined int  `json:"quarantined"`
	Degraded    bool `json:"degraded"`

	// Jobs is the replayed ledger size; Compacted counts manifest rewrites
	// performed by Open.
	Jobs      int `json:"jobs"`
	Compacted int `json:"compacted"`

	// Appends counts acknowledged records, AppendErrors the ones that
	// failed to reach disk.
	Appends      int `json:"appends"`
	AppendErrors int `json:"append_errors"`
}

// Store is an open job manifest: the replayed ledger plus an append-only
// segment for new records. All methods are safe for concurrent use; a nil
// *Store is valid and behaves as an empty, discard-all manifest, so the
// daemon's memory-only mode needs no guards.
type Store struct {
	mu      sync.Mutex
	fs      fsio.FS
	dir     string
	jobs    map[string]*Job
	f       fsio.File // open segment; created lazily on first append
	segPath string
	cause   error // first fatal append error; non-nil once degraded
	stats   Stats
	now     func() time.Time // test seam
}

// storeFS is the filesystem Open routes through — the real one in
// production, an *fsio.Injector under the serving chaos campaigns.
var (
	fsMu    sync.RWMutex
	storeFS fsio.FS = fsio.OS
)

// SetFS overrides the filesystem Open uses; nil restores the real one.
// Test-only: stores opened afterwards are unaffected by later calls.
func SetFS(fs fsio.FS) {
	fsMu.Lock()
	defer fsMu.Unlock()
	if fs == nil {
		fs = fsio.OS
	}
	storeFS = fs
}

func getFS() fsio.FS {
	fsMu.RLock()
	defer fsMu.RUnlock()
	return storeFS
}

// Open replays every manifest segment of dir (creating the directory if
// needed), compacts the manifest when it has accumulated enough dead
// records, and returns a store ready for Append on the default filesystem
// (see SetFS). See OpenFS.
func Open(dir string) (*Store, error) {
	return OpenFS(getFS(), dir)
}

// OpenFS is Open over an explicit filesystem seam (chaos tests pass an
// *fsio.Injector).
func OpenFS(fsys fsio.FS, dir string) (*Store, error) {
	if fsys == nil {
		fsys = fsio.OS
	}
	if dir == "" {
		return nil, errors.New("jobstore: empty directory")
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s := &Store{fs: fsys, dir: dir, jobs: map[string]*Job{}, now: time.Now}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segExt) {
			names = append(names, e.Name())
		}
	}
	// Name order is cosmetic: replay is last-writer-wins on record time,
	// so any file order converges to the same ledger.
	sort.Strings(names)
	for _, name := range names {
		s.loadSegment(filepath.Join(dir, name))
	}
	s.stats.Jobs = len(s.jobs)
	s.compact(names)
	return s, nil
}

// loadSegment replays one segment file into the ledger. A corrupt magic
// or header quarantines the file; corruption past the header ends the
// segment at the last good record.
func (s *Store) loadSegment(path string) {
	f, err := s.fs.Open(path)
	if err != nil {
		s.stats.SkippedSegments++
		return
	}
	dataStart, ok := readHeader(f)
	if !ok {
		_ = f.Close()
		s.quarantineFile(path)
		return
	}
	good := dataStart
	recs := 0
	torn := false
	for {
		rec, next, err := readRecord(f, good)
		if err == io.EOF {
			break
		}
		if err != nil {
			torn = true
			break
		}
		s.apply(rec)
		good = next
		recs++
	}
	_ = f.Close()
	s.stats.Segments++
	s.stats.Records += recs
	if torn {
		s.stats.TornTails++
		s.truncateStale(path, good)
	}
}

// apply merges one record into the ledger: a record with a spec
// (re)creates the job; a record with a state applies it unless the ledger
// already holds a newer transition (last-writer-wins, so interleaved
// segments merge in any order). Transitions for unknown jobs — an accept
// record lost to a torn tail — are dropped: a job the daemon cannot
// respawn is not worth a ghost ledger row.
func (s *Store) apply(rec Record) {
	if rec.ID == "" {
		return
	}
	j := s.jobs[rec.ID]
	if j == nil {
		if len(rec.Spec) == 0 {
			return
		}
		created := rec.CreatedUnixNano
		if created == 0 {
			created = rec.UnixNano
		}
		j = &Job{
			ID:      rec.ID,
			Seq:     rec.Seq,
			Spec:    rec.Spec,
			State:   StateAccepted,
			Created: time.Unix(0, created),
			Updated: time.Unix(0, rec.UnixNano),
		}
		s.jobs[rec.ID] = j
	} else if len(rec.Spec) > 0 && len(j.Spec) == 0 {
		j.Spec = rec.Spec
	}
	if rec.DeadlineUnixNano != 0 {
		j.Deadline = time.Unix(0, rec.DeadlineUnixNano)
	}
	if rec.State != "" && !time.Unix(0, rec.UnixNano).Before(j.Updated) {
		j.State = rec.State
		j.Error = rec.Error
		j.Updated = time.Unix(0, rec.UnixNano)
	}
}

// compact rewrites the manifest as one compact segment when the replayed
// record count has outgrown the ledger (every dead transition is a record
// the next hundred restarts re-parse). The compact image is published
// first (tmp+fsync+rename), the old segments removed after — a crash at
// any point leaves a manifest that replays to the same ledger, because
// old and compact records merge idempotently. Evicted jobs are dropped
// from the image; their history dies with the old files.
func (s *Store) compact(names []string) {
	if s.stats.Records <= 2*len(s.jobs)+compactSlack {
		return
	}
	var recs []Record
	for _, j := range s.jobs {
		if j.State == StateEvicted {
			continue
		}
		rec := Record{
			ID:              j.ID,
			Seq:             j.Seq,
			State:           j.State,
			Spec:            j.Spec,
			Error:           j.Error,
			CreatedUnixNano: j.Created.UnixNano(),
			UnixNano:        j.Updated.UnixNano(),
		}
		if !j.Deadline.IsZero() {
			rec.DeadlineUnixNano = j.Deadline.UnixNano()
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].Seq < recs[k].Seq })

	tmp, err := s.fs.CreateTemp(s.dir, ".m3dq-tmp-*")
	if err != nil {
		return // compaction is best-effort; the fat manifest still replays
	}
	cleanup := func() {
		_ = tmp.Close()
		_ = s.fs.Remove(tmp.Name())
	}
	buf := headerBytes()
	for _, rec := range recs {
		frame, err := frameRecord(rec)
		if err != nil {
			cleanup()
			return
		}
		buf = append(buf, frame...)
	}
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return
	}
	if err := tmp.Close(); err != nil {
		_ = s.fs.Remove(tmp.Name())
		return
	}
	path := filepath.Join(s.dir, segName("jobsc"))
	if err := s.fs.Rename(tmp.Name(), path); err != nil {
		_ = s.fs.Remove(tmp.Name())
		return
	}
	_ = fsio.SyncDir(s.fs, s.dir)
	// The compact image is durable; the old segments are now dead weight.
	// A failed remove leaves files whose records merge idempotently.
	for _, name := range names {
		_ = s.fs.Remove(filepath.Join(s.dir, name))
	}
	for id, j := range s.jobs {
		if j.State == StateEvicted {
			delete(s.jobs, id)
		}
	}
	s.stats.Jobs = len(s.jobs)
	s.stats.Compacted++
}

// quarantineFile renames a bad segment to <path>.quarantine, best-effort.
func (s *Store) quarantineFile(path string) {
	if err := s.fs.Rename(path, path+quarantineExt); err != nil {
		s.stats.SkippedSegments++
		return
	}
	s.stats.Quarantined++
}

// truncateStale cuts a torn segment back to its last good record when the
// file has been quiet long enough that no sibling can still be appending.
func (s *Store) truncateStale(path string, good int64) {
	info, err := s.fs.Stat(path)
	if err != nil || s.now().Sub(info.ModTime()) < tornTruncateAge {
		return
	}
	_ = s.fs.Truncate(path, good)
}

// headerBytes renders the segment preamble: magic, header length, header.
func headerBytes() []byte {
	hdr, _ := json.Marshal(struct{ CreatedUnixNano int64 }{time.Now().UnixNano()})
	buf := make([]byte, 0, len(segMagic)+4+len(hdr))
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	return append(buf, hdr...)
}

// readHeader verifies the magic and skips the JSON header, returning the
// offset of the first record.
func readHeader(f io.Reader) (int64, bool) {
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		return 0, false
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
		return 0, false
	}
	hlen := binary.LittleEndian.Uint32(lenBuf[:])
	if hlen == 0 || hlen > maxHeader {
		return 0, false
	}
	hdrBytes := make([]byte, hlen)
	if _, err := io.ReadFull(f, hdrBytes); err != nil {
		return 0, false
	}
	if !json.Valid(hdrBytes) {
		return 0, false
	}
	return int64(len(segMagic)) + 4 + int64(hlen), true
}

// readRecord reads and verifies one frame starting at offset off. It
// returns io.EOF at a clean end of file and a non-EOF error for any torn
// or corrupt frame.
func readRecord(f io.Reader, off int64) (Record, int64, error) {
	var pre [8]byte
	if _, err := io.ReadFull(f, pre[:1]); err == io.EOF {
		return Record{}, 0, io.EOF
	} else if err != nil {
		return Record{}, 0, fmt.Errorf("jobstore: torn frame prefix: %w", err)
	}
	if _, err := io.ReadFull(f, pre[1:]); err != nil {
		return Record{}, 0, fmt.Errorf("jobstore: torn frame prefix: %w", err)
	}
	plen := binary.LittleEndian.Uint32(pre[:4])
	sum := binary.LittleEndian.Uint32(pre[4:])
	if plen == 0 || plen > maxPayload {
		return Record{}, 0, fmt.Errorf("jobstore: implausible payload length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return Record{}, 0, fmt.Errorf("jobstore: torn payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, errors.New("jobstore: payload checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("jobstore: payload decode: %w", err)
	}
	if rec.ID == "" {
		return Record{}, 0, errors.New("jobstore: record without a job id")
	}
	return rec, off + 8 + int64(plen), nil
}

// frameRecord renders one CRC-framed record.
func frameRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobstore: encode record %q: %w", rec.ID, err)
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("jobstore: record %q: payload %d exceeds %d bytes", rec.ID, len(payload), maxPayload)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

// Accept records a newly admitted job: its id, sequence number, sweep
// spec and optional deadline. The append is fsync'd before Accept
// returns; the write happens before the daemon acts on the job, which is
// what makes the manifest write-ahead. The in-memory ledger is updated
// even when the disk append fails (memory-only degraded mode), so the
// daemon's live job table never forks from the store. A nil store
// discards. Concurrency-safe.
func (s *Store) Accept(id string, seq int, spec any, deadline time.Time) error {
	if s == nil {
		return nil
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("jobstore: encode spec %q: %w", id, err)
	}
	now := s.now()
	rec := Record{
		ID:              id,
		Seq:             seq,
		State:           StateAccepted,
		Spec:            raw,
		CreatedUnixNano: now.UnixNano(),
		UnixNano:        now.UnixNano(),
	}
	if !deadline.IsZero() {
		rec.DeadlineUnixNano = deadline.UnixNano()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apply(rec)
	s.stats.Jobs = len(s.jobs)
	return s.appendLocked(rec)
}

// Transition records a job state change (and, for failures, the message).
// The in-memory ledger is updated even when the disk append fails. A nil
// store discards. Concurrency-safe.
func (s *Store) Transition(id, state, errMsg string) error {
	if s == nil {
		return nil
	}
	if state == "" {
		return errors.New("jobstore: empty state")
	}
	rec := Record{ID: id, State: state, Error: errMsg, UnixNano: s.now().UnixNano()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs[id] == nil {
		return fmt.Errorf("jobstore: transition for unknown job %q", id)
	}
	s.apply(rec)
	return s.appendLocked(rec)
}

// appendLocked frames and appends one record, fsync'd. Called with s.mu
// held. A failed write, sync or segment creation quarantines the active
// segment and degrades the store.
func (s *Store) appendLocked(rec Record) error {
	if s.cause != nil {
		return s.cause
	}
	frame, err := frameRecord(rec)
	if err != nil {
		s.stats.AppendErrors++
		return err
	}
	if s.f == nil {
		if err := s.createSegment(); err != nil {
			s.stats.AppendErrors++
			s.degrade(err)
			return err
		}
	}
	if _, err := s.f.Write(frame); err != nil {
		s.stats.AppendErrors++
		err = fmt.Errorf("jobstore: append %q: %w", rec.ID, err)
		s.degrade(err)
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.stats.AppendErrors++
		err = fmt.Errorf("jobstore: sync %q: %w", rec.ID, err)
		s.degrade(err)
		return err
	}
	s.stats.Appends++
	return nil
}

// degrade quarantines the active segment (its tail is suspect) and flips
// the store into memory-only mode. Called with s.mu held.
func (s *Store) degrade(cause error) {
	s.cause = cause
	s.stats.Degraded = true
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
	if s.segPath != "" {
		s.quarantineFile(s.segPath)
		s.segPath = ""
	}
}

// createSegment publishes a fresh append segment via tmp+fsync+rename.
// Called with s.mu held.
func (s *Store) createSegment() error {
	tmp, err := s.fs.CreateTemp(s.dir, ".m3dq-tmp-*")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	cleanup := func() {
		_ = tmp.Close()
		_ = s.fs.Remove(tmp.Name())
	}
	if _, err := tmp.Write(headerBytes()); err != nil {
		cleanup()
		return fmt.Errorf("jobstore: write header: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("jobstore: sync header: %w", err)
	}
	path := filepath.Join(s.dir, segName("jobs"))
	if err := s.fs.Rename(tmp.Name(), path); err != nil {
		cleanup()
		return fmt.Errorf("jobstore: publish segment: %w", err)
	}
	_ = fsio.SyncDir(s.fs, s.dir)
	s.f = tmp
	s.segPath = path
	return nil
}

// segName builds a collision-resistant segment file name.
func segName(prefix string) string {
	return fmt.Sprintf("%s-%d-%d%s", prefix, time.Now().UnixNano(), os.Getpid(), segExt)
}

// Jobs returns the replayed ledger sorted by sequence number (creation
// order). The specs are shared read-only slices; callers must not mutate
// them. A nil store returns nil.
func (s *Store) Jobs() []Job {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Seq != out[k].Seq {
			return out[i].Seq < out[k].Seq
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// MaxSeq returns the highest job sequence number in the ledger, so a
// restarted daemon continues numbering instead of reissuing ids.
func (s *Store) MaxSeq() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	maxSeq := 0
	for _, j := range s.jobs {
		maxSeq = max(maxSeq, j.Seq)
	}
	return maxSeq
}

// Stats returns a snapshot of the load/append counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Jobs = len(s.jobs)
	return st
}

// DegradedCause returns the error that degraded the store, or nil while
// it is still appending (a nil store is trivially healthy).
func (s *Store) DegradedCause() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cause
}

// Close flushes and closes the append segment (if one was created).
// Idempotent; a nil or degraded store closes trivially.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	s.segPath = ""
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("jobstore: close: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobstore: close: %w", err)
	}
	return nil
}
