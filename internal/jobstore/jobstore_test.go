package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"vertical3d/internal/fsio"
)

type testSpec struct {
	Experiment string
	Workers    int
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segExt) {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestAcceptTransitionReplay(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	deadline := time.Now().Add(time.Hour).Truncate(0)
	if err := s.Accept("s1", 1, testSpec{"fig6", 4}, deadline); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if err := s.Accept("s2", 2, testSpec{"fig9", 2}, time.Time{}); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	for _, st := range []string{StateQueued, StateRunning, StateDone} {
		if err := s.Transition("s1", st, ""); err != nil {
			t.Fatalf("Transition(%s): %v", st, err)
		}
	}
	if err := s.Transition("s2", StateFailed, "boom"); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	if err := s.Transition("ghost", StateDone, ""); err == nil {
		t.Fatal("Transition on unknown job should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, dir)
	jobs := r.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	j1, j2 := jobs[0], jobs[1]
	if j1.ID != "s1" || j1.Seq != 1 || j1.State != StateDone || j1.Error != "" {
		t.Fatalf("s1 replayed wrong: %+v", j1)
	}
	if !j1.Deadline.Equal(deadline) {
		t.Fatalf("s1 deadline = %v, want %v", j1.Deadline, deadline)
	}
	var spec testSpec
	if err := json.Unmarshal(j1.Spec, &spec); err != nil || spec.Experiment != "fig6" || spec.Workers != 4 {
		t.Fatalf("s1 spec replayed wrong: %s (%v)", j1.Spec, err)
	}
	if j2.ID != "s2" || j2.State != StateFailed || j2.Error != "boom" || !j2.Deadline.IsZero() {
		t.Fatalf("s2 replayed wrong: %+v", j2)
	}
	if got := r.MaxSeq(); got != 2 {
		t.Fatalf("MaxSeq = %d, want 2", got)
	}
	st := r.Stats()
	if st.Segments != 1 || st.Records != 6 || st.Jobs != 2 || st.TornTails != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnfinishedStatesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i, st := range []string{StateAccepted, StateQueued, StateRunning, StateInterrupted} {
		id := string(rune('a' + i))
		if err := s.Accept(id, i+1, testSpec{"fig6", 1}, time.Time{}); err != nil {
			t.Fatalf("Accept: %v", err)
		}
		if st != StateAccepted {
			if err := s.Transition(id, st, ""); err != nil {
				t.Fatalf("Transition: %v", err)
			}
		}
	}
	_ = s.Close()
	r := openT(t, dir)
	for _, j := range r.Jobs() {
		if Terminal(j.State) {
			t.Fatalf("job %s replayed terminal state %s", j.ID, j.State)
		}
	}
	if n := len(r.Jobs()); n != 4 {
		t.Fatalf("replayed %d jobs, want 4", n)
	}
}

func TestTornTailCutAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.Accept("keep", 1, testSpec{"fig6", 1}, time.Time{}); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if err := s.Transition("keep", StateDone, ""); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	_ = s.Close()

	names := segFiles(t, dir)
	if len(names) != 1 {
		t.Fatalf("want 1 segment, got %v", names)
	}
	path := filepath.Join(dir, names[0])
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	good := info.Size()
	// Append a torn frame: a plausible length prefix with no payload.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[:4], 64)
	if _, err := f.Write(pre[:]); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	// Age the file past the truncation guard.
	old := time.Now().Add(-2 * tornTruncateAge)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	jobs := r.Jobs()
	if len(jobs) != 1 || jobs[0].ID != "keep" || jobs[0].State != StateDone {
		t.Fatalf("torn tail lost good records: %+v", jobs)
	}
	if st := r.Stats(); st.TornTails != 1 {
		t.Fatalf("stats = %+v, want 1 torn tail", st)
	}
	info, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != good {
		t.Fatalf("stale torn segment not truncated: size %d, want %d", info.Size(), good)
	}

	// A fresh torn segment is cut in memory but left intact on disk.
	if _, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0); err != nil {
		t.Fatal(err)
	}
	f, _ = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	_, _ = f.Write(pre[:])
	_ = f.Close()
	r2 := openT(t, dir)
	if n := len(r2.Jobs()); n != 1 {
		t.Fatalf("fresh torn tail lost records: %d jobs", n)
	}
	info, _ = os.Stat(path)
	if info.Size() == good {
		t.Fatal("fresh torn segment should not have been truncated yet")
	}
}

func TestCorruptHeaderQuarantined(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "jobs-1-1"+segExt)
	if err := os.WriteFile(bad, []byte("NOTAJOBS"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir)
	if st := s.Stats(); st.Quarantined != 1 || st.Segments != 0 {
		t.Fatalf("stats = %+v, want 1 quarantined / 0 loaded", st)
	}
	if _, err := os.Stat(bad + quarantineExt); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(bad); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt segment still present: %v", err)
	}
	// A quarantined file no longer matches the extension, so a second open
	// does not re-count it.
	_ = s.Close()
	r := openT(t, dir)
	if st := r.Stats(); st.Quarantined != 0 {
		t.Fatalf("quarantined file re-counted: %+v", st)
	}
}

func TestAppendFailureDegradesToMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	// Writes: 1 segment header, 2 accept, 3 running transition — fault #4.
	inj := fsio.NewInjector(1, nil, fsio.Rule{Op: fsio.OpWrite, Match: dir, After: 3})
	s, err := OpenFS(inj, dir)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	defer s.Close()
	if err := s.Accept("j1", 1, testSpec{"fig6", 1}, time.Time{}); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if err := s.Transition("j1", StateRunning, ""); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	// Third write fails: the store degrades but the ledger still applies.
	if err := s.Transition("j1", StateDone, ""); err == nil {
		t.Fatal("append should have failed")
	} else if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("degrade cause = %v, want ENOSPC", err)
	}
	if s.DegradedCause() == nil {
		t.Fatal("DegradedCause nil after append failure")
	}
	jobs := s.Jobs()
	if len(jobs) != 1 || jobs[0].State != StateDone {
		t.Fatalf("memory ledger forked from writes: %+v", jobs)
	}
	// Later appends fail fast with the original cause; memory keeps moving.
	if err := s.Accept("j2", 2, testSpec{"fig9", 1}, time.Time{}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("degraded Accept err = %v", err)
	}
	if len(s.Jobs()) != 2 {
		t.Fatal("degraded Accept did not reach the memory ledger")
	}
	st := s.Stats()
	if !st.Degraded || st.AppendErrors == 0 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if names := segFiles(t, dir); len(names) != 0 {
		t.Fatalf("active segment not quarantined: %v", names)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	// Enough churn to trip the 2*jobs+slack threshold on the next Open.
	for i := 0; i < 3; i++ {
		id := string(rune('a' + i))
		if err := s.Accept(id, i+1, testSpec{"fig6", 1}, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < compactSlack+4; i++ {
		if err := s.Transition("a", StateRunning, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Transition("a", StateDone, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Transition("b", StateEvicted, ""); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	r := openT(t, dir)
	st := r.Stats()
	if st.Compacted != 1 {
		t.Fatalf("stats = %+v, want a compaction", st)
	}
	names := segFiles(t, dir)
	if len(names) != 1 || !strings.HasPrefix(names[0], "jobsc-") {
		t.Fatalf("compaction left %v, want single compact segment", names)
	}
	jobs := r.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("compacted ledger = %+v, want 2 (evicted dropped)", jobs)
	}
	if jobs[0].ID != "a" || jobs[0].State != StateDone || jobs[1].ID != "c" || jobs[1].State != StateAccepted {
		t.Fatalf("compacted ledger wrong: %+v", jobs)
	}
	_ = r.Close()

	// The compact image replays identically and does not re-compact.
	r2 := openT(t, dir)
	if st := r2.Stats(); st.Compacted != 0 || st.Records != 2 {
		t.Fatalf("compact image stats = %+v", st)
	}
	if len(r2.Jobs()) != 2 {
		t.Fatal("compact image replayed wrong")
	}
}

func TestLastWriterWinsAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Two interleaved writer processes: the lexically earlier segment holds
	// the newer transition. Replay must keep the newest by record time.
	write := func(name string, recs ...Record) {
		t.Helper()
		buf := headerBytes()
		for _, rec := range recs {
			frame, err := frameRecord(rec)
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, frame...)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	spec, _ := json.Marshal(testSpec{"fig6", 1})
	write("jobs-1-1"+segExt,
		Record{ID: "x", Seq: 1, State: StateAccepted, Spec: spec, UnixNano: 100},
		Record{ID: "x", State: StateDone, UnixNano: 400},
	)
	write("jobs-2-2"+segExt,
		Record{ID: "x", State: StateRunning, UnixNano: 300},
	)
	s := openT(t, dir)
	jobs := s.Jobs()
	if len(jobs) != 1 || jobs[0].State != StateDone {
		t.Fatalf("last-writer-wins broken: %+v", jobs)
	}
	if !jobs[0].Updated.Equal(time.Unix(0, 400)) {
		t.Fatalf("Updated = %v, want t=400", jobs[0].Updated)
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if err := s.Accept("x", 1, testSpec{}, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Transition("x", StateDone, ""); err != nil {
		t.Fatal(err)
	}
	if s.Jobs() != nil || s.MaxSeq() != 0 || s.DegradedCause() != nil {
		t.Fatal("nil store leaked state")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if (s.Stats() != Stats{}) {
		t.Fatal("nil store stats non-zero")
	}
}
