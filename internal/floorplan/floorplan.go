// Package floorplan provides the core floorplan used for thermal analysis
// (Section 7.1.3): an AMD-Ryzen-like block layout for the 2D baseline, and
// the folded two-layer variant in which every block is partitioned across
// the stack, halving the footprint.
package floorplan

import (
	"errors"
	"fmt"
	"math"
)

// Block is a rectangular floorplan region; coordinates are fractions of the
// die, converted to meters by Floorplan dimensions.
type Block struct {
	Name       string
	X, Y, W, H float64 // fractions of the die in [0,1]
}

// Floorplan is a single-layer block layout.
type Floorplan struct {
	WidthM  float64
	HeightM float64
	Blocks  []Block
}

// coreBlocks is the relative Ryzen-like layout: frontend strip, scheduler /
// register row, execution row, load-store unit, and the L2 slice.
var coreBlocks = []Block{
	{Name: "FE", X: 0, Y: 0, W: 1.0, H: 0.20},
	{Name: "RAT", X: 0, Y: 0.20, W: 0.12, H: 0.25},
	{Name: "IQ", X: 0.12, Y: 0.20, W: 0.18, H: 0.25},
	{Name: "RF", X: 0.30, Y: 0.20, W: 0.16, H: 0.25},
	{Name: "ALU", X: 0.46, Y: 0.20, W: 0.20, H: 0.25},
	{Name: "FPU", X: 0.66, Y: 0.20, W: 0.34, H: 0.25},
	{Name: "LSU", X: 0, Y: 0.45, W: 1.0, H: 0.25},
	{Name: "L2", X: 0, Y: 0.70, W: 1.0, H: 0.30},
}

// Core2D returns the baseline single-layer core floorplan: ≈2.9mm × 2.3mm
// (6.7mm² including the private L2 slice) at 22nm.
func Core2D() Floorplan {
	return Floorplan{WidthM: 2.9e-3, HeightM: 2.3e-3, Blocks: coreBlocks}
}

// Folded returns the two-layer floorplan: the same relative layout at the
// given footprint fraction of the 2D die (the paper conservatively assumes
// 50%). Every block is intra-block partitioned, so both layers carry every
// block; bottomFrac of each block's power goes to the bottom layer.
func Folded(footprintFrac float64) (Floorplan, error) {
	if footprintFrac <= 0 || footprintFrac > 1 {
		return Floorplan{}, fmt.Errorf("floorplan: footprint fraction %v out of (0,1]", footprintFrac)
	}
	base := Core2D()
	scale := math.Sqrt(footprintFrac)
	return Floorplan{
		WidthM:  base.WidthM * scale,
		HeightM: base.HeightM * scale,
		Blocks:  coreBlocks,
	}, nil
}

// PowerMap rasterises per-block powers (watts) onto an nx×ny grid,
// returning per-cell watts. Blocks not present in the map contribute zero.
func (f Floorplan) PowerMap(blockPower map[string]float64, nx, ny int) ([][]float64, error) {
	if nx < 2 || ny < 2 {
		return nil, errors.New("floorplan: grid too small")
	}
	grid := make([][]float64, ny)
	for y := range grid {
		grid[y] = make([]float64, nx)
	}
	for _, b := range f.Blocks {
		p := blockPower[b.Name]
		if p == 0 {
			continue
		}
		x0 := int(b.X * float64(nx))
		x1 := int((b.X + b.W) * float64(nx))
		y0 := int(b.Y * float64(ny))
		y1 := int((b.Y + b.H) * float64(ny))
		if x1 > nx {
			x1 = nx
		}
		if y1 > ny {
			y1 = ny
		}
		cells := (x1 - x0) * (y1 - y0)
		if cells <= 0 {
			continue
		}
		per := p / float64(cells)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				grid[y][x] += per
			}
		}
	}
	return grid, nil
}

// Area returns the die area in m².
func (f Floorplan) Area() float64 { return f.WidthM * f.HeightM }

// BlockArea returns one block's area in m².
func (f Floorplan) BlockArea(name string) (float64, error) {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b.W * b.H * f.Area(), nil
		}
	}
	return 0, fmt.Errorf("floorplan: unknown block %q", name)
}
