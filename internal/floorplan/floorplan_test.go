package floorplan

import (
	"math"
	"testing"
)

func TestCore2DBlocksTile(t *testing.T) {
	fp := Core2D()
	var area float64
	names := map[string]bool{}
	for _, b := range fp.Blocks {
		if b.X < 0 || b.Y < 0 || b.X+b.W > 1.0001 || b.Y+b.H > 1.0001 {
			t.Errorf("block %s out of bounds: %+v", b.Name, b)
		}
		area += b.W * b.H
		if names[b.Name] {
			t.Errorf("duplicate block %q", b.Name)
		}
		names[b.Name] = true
	}
	if area < 0.95 || area > 1.05 {
		t.Errorf("blocks should tile the die, cover %.2f", area)
	}
	for _, want := range []string{"FE", "IQ", "RF", "ALU", "FPU", "LSU", "L2", "RAT"} {
		if !names[want] {
			t.Errorf("missing block %q", want)
		}
	}
}

func TestFoldedHalvesArea(t *testing.T) {
	base := Core2D()
	half, err := Folded(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := half.Area() / base.Area()
	if math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("folded area ratio %.3f, want 0.5", ratio)
	}
	if _, err := Folded(0); err == nil {
		t.Error("expected error for zero fraction")
	}
	if _, err := Folded(1.5); err == nil {
		t.Error("expected error for fraction > 1")
	}
}

func TestPowerMapConservesPower(t *testing.T) {
	fp := Core2D()
	blocks := map[string]float64{"FE": 1.0, "IQ": 0.8, "RF": 0.7, "FPU": 1.5, "LSU": 1.2, "L2": 0.8, "ALU": 0.6, "RAT": 0.2}
	grid, err := fp.PowerMap(blocks, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	var total, want float64
	for _, row := range grid {
		for _, v := range row {
			total += v
		}
	}
	for _, v := range blocks {
		want += v
	}
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("power map total %.3f, want %.3f", total, want)
	}
	if _, err := fp.PowerMap(blocks, 1, 1); err == nil {
		t.Error("expected error for tiny grid")
	}
}

func TestBlockArea(t *testing.T) {
	fp := Core2D()
	a, err := fp.BlockArea("L2")
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 || a >= fp.Area() {
		t.Errorf("L2 area %v implausible", a)
	}
	if _, err := fp.BlockArea("NOPE"); err == nil {
		t.Error("expected error for unknown block")
	}
}
