// Package warm is the warm-state snapshot cache of sampled simulation: it
// checkpoints the functional fast-forward once per identity and lets every
// other sweep cell restore the checkpoint instead of re-warming the same
// stream.
//
// The enabling observation is that everything the fast-forward phase
// computes — cache tag/age lanes, branch-predictor tables, the
// store-forwarding ring — depends only on (profile, seed, stream, cache +
// predictor geometry), never on a design's timing. A Fig6 sweep runs
// dozens of designs that share all of those, so before this cache each
// cell recomputed byte-identical state. The one design-DEPENDENT quantity
// a fast-forward produces, the extra-latency sums the sampling estimator
// regresses on, is reconstructed exactly per cell: snapshots carry
// design-independent per-level miss counts (uarch.WarmObs.FetchFills /
// DataFills) and each cell prices them with its own fill latencies, so a
// snapshot-served cell's estimator inputs are bit-identical to a
// self-warmed cell's.
//
// Architecture: per Identity a Ladder owns a standalone builder warmer
// that advances monotonically through the stream, snapshotting at every
// stride boundary (stride = Interval/4, so a restore leaves at most a
// quarter-interval of residual local warming). Cells reach the ladder
// through a single-flight registry (Shared) and a FastForward hook on the
// core (Bind): each fast-forward restores the deepest checkpoint at or
// below its target, credits the skipped stretch's observables, and warms
// the residual locally. Checkpoints are deep-copied on capture and on
// restore, so concurrent cells never alias shared state.
//
// With a cache directory configured (SetCacheDir, -warm-dir), boundary
// checkpoints persist as CRC32-framed .m3dwarm files written atomically
// through the internal/fsio seam; corrupt or foreign files are
// quarantined and the checkpoint is rebuilt — the same degrade-don't-die
// ladder as the trace and journal layers, surfaced in the sweep Health
// block.
package warm

import (
	"vertical3d/internal/config"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
)

// Geometry is the microarchitectural state shape a snapshot depends on:
// the four cache organisations and the predictor/BTB/store-queue sizing.
// Two configs with equal Geometry produce byte-identical functional state
// from the same stream — latencies, frequency and energy factors are
// deliberately absent. All fields are comparable, so Geometry can key the
// snapshot registry.
type Geometry struct {
	IL1, DL1, L2, L3 config.CacheParams

	PredTable int
	BTBSize   int
	BTBAssoc  int
	SQSize    int
}

// GeometryOf extracts the snapshot-relevant geometry of a configuration.
func GeometryOf(cfg config.Config) Geometry {
	p := cfg.Core
	return Geometry{
		IL1:       p.IL1,
		DL1:       p.DL1,
		L2:        p.L2,
		L3:        p.L3,
		PredTable: p.PredTable,
		BTBSize:   p.BTBSize,
		BTBAssoc:  p.BTBAssoc,
		SQSize:    p.SQSize,
	}
}

// Identity keys one single-core snapshot ladder: the stream identity, the
// state geometry and the sampling geometry (which sets the checkpoint
// stride). Everything else — per-design latencies, worker counts, journal
// settings — is excluded, which is exactly what lets one ladder serve
// every design of a sweep.
type Identity struct {
	Prof   trace.Profile
	Seed   int64
	Stream int
	Sample uarch.SampleParams
	Geom   Geometry
}

// MCIdentity keys one multicore warmup snapshot: per-core streams are
// StreamBase+i, the topology (core count, L2 sharing) shapes the shared
// memory state, and Warmup is the per-core functional warmup distance the
// snapshot stands for. RouterHopCycles is excluded — NoC timing prices
// hops but never changes which lines are where.
type MCIdentity struct {
	Prof       trace.Profile
	Seed       int64
	StreamBase int
	Cores      int
	SharedL2   bool
	Warmup     uint64
	Geom       Geometry
}
