// Process-global snapshot registry. Mirrors the single-flight discipline
// of internal/trace/cache.go: a sync.Map of lazily-initialised holders
// guarantees exactly one Ladder (and one multicore warmup) per identity no
// matter how many sweep cells race to it, and atomic counters feed both
// the sweep Health block and cache-effectiveness reporting.
package warm

import (
	"sync"
	"sync/atomic"
)

var (
	ladders sync.Map // Identity -> *ladderHolder
	mcSnaps sync.Map // MCIdentity -> *mcHolder

	cacheDirMu sync.RWMutex
	cacheDir   string

	buildHookMu sync.RWMutex
	buildHook   func(id Identity, from, to uint64)
)

// ladderHolder is the single-flight slot for one ladder identity.
type ladderHolder struct {
	once sync.Once
	lad  *Ladder
}

// counters aggregates process-lifetime cache telemetry. All fields are
// atomics: cells update them from arbitrary worker goroutines.
var counters struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	builtInstrs   atomic.Uint64
	skippedInstrs atomic.Uint64
	fileLoads     atomic.Uint64
	loadErrors    atomic.Uint64
	saveErrors    atomic.Uint64
	quarantines   atomic.Uint64
	restoreErrors atomic.Uint64
}

// Counters is a point-in-time snapshot of the cache's telemetry.
type Counters struct {
	// Hits counts checkpoint requests served from an already-built rung;
	// Misses counts requests that had to extend a builder.
	Hits, Misses uint64

	// BuiltInstrs counts instructions warmed by ladder builders (paid
	// once per identity); SkippedInstrs counts instructions sweep cells
	// skipped by restoring snapshots instead of re-warming.
	BuiltInstrs, SkippedInstrs uint64

	// FileLoads counts checkpoints restored from -warm-dir; LoadErrors
	// counts unreadable, corrupt or foreign files (rebuilt from the
	// trace); SaveErrors counts failed snapshot writes (cache left
	// stale); Quarantines counts damaged files renamed aside;
	// RestoreErrors counts cells that fell back to local warming after a
	// restore was refused.
	FileLoads, LoadErrors, SaveErrors, Quarantines, RestoreErrors uint64
}

// Stats returns current cache telemetry.
func Stats() Counters {
	return Counters{
		Hits:          counters.hits.Load(),
		Misses:        counters.misses.Load(),
		BuiltInstrs:   counters.builtInstrs.Load(),
		SkippedInstrs: counters.skippedInstrs.Load(),
		FileLoads:     counters.fileLoads.Load(),
		LoadErrors:    counters.loadErrors.Load(),
		SaveErrors:    counters.saveErrors.Load(),
		Quarantines:   counters.quarantines.Load(),
		RestoreErrors: counters.restoreErrors.Load(),
	}
}

// ResetCache drops every cached ladder and multicore snapshot and zeroes
// the counters. Benchmarks use it to measure cold-versus-warm sweeps in
// one process; production code never needs it.
func ResetCache() {
	ladders.Range(func(k, _ any) bool { ladders.Delete(k); return true })
	mcSnaps.Range(func(k, _ any) bool { mcSnaps.Delete(k); return true })
	counters.hits.Store(0)
	counters.misses.Store(0)
	counters.builtInstrs.Store(0)
	counters.skippedInstrs.Store(0)
	counters.fileLoads.Store(0)
	counters.loadErrors.Store(0)
	counters.saveErrors.Store(0)
	counters.quarantines.Store(0)
	counters.restoreErrors.Store(0)
}

// SetCacheDir enables the on-disk snapshot cache rooted at dir ("" turns
// it off), creating the directory if needed. Ladder boundary checkpoints
// and multicore warmup snapshots are loaded from and saved to it as
// .m3dwarm files.
func SetCacheDir(dir string) error {
	if dir != "" {
		if err := getFS().MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	cacheDirMu.Lock()
	cacheDir = dir
	cacheDirMu.Unlock()
	return nil
}

// CacheDir returns the configured on-disk cache directory ("" when the
// disk layer is off).
func CacheDir() string {
	cacheDirMu.RLock()
	defer cacheDirMu.RUnlock()
	return cacheDir
}

// SetBuildHook installs a test-only observer invoked (under the ladder
// lock) immediately before a builder warms the stretch (from, to]. The
// determinism oracle uses it to poison the builder after the first cell
// and prove that snapshot-served cells never re-run the fast-forward; nil
// removes the hook.
func SetBuildHook(fn func(id Identity, from, to uint64)) {
	buildHookMu.Lock()
	buildHook = fn
	buildHookMu.Unlock()
}

// getBuildHook returns the current build observer.
func getBuildHook() func(id Identity, from, to uint64) {
	buildHookMu.RLock()
	defer buildHookMu.RUnlock()
	return buildHook
}
