// Multicore warmup snapshots. A multicore run has exactly one functional
// fast-forward — the per-core warmup before the measured phases — so
// instead of a ladder it gets a single snapshot per MCIdentity: the first
// run warms every core, captures the shared memory system and all core
// functional states, and every later run with the same identity restores
// the capture instead of re-warming.
package warm

import (
	"path/filepath"
	"sync"

	"vertical3d/internal/mem"
	"vertical3d/internal/uarch"
)

// mcSnapshot is the full warm state of one multicore warmup: the
// coherent memory system (caches, directory, NoC counters) plus each
// core's functional state at its post-warmup stream position.
type mcSnapshot struct {
	Mem   *mem.MCState
	Cores []uarch.CoreWarmState
}

// mcHolder is the single-flight slot for one multicore identity.
type mcHolder struct {
	once sync.Once
	snap *mcSnapshot
}

// MCWarmup performs (or skips) the functional warmup of a multicore run.
// The first caller for an identity runs doWarm and captures the resulting
// state; later callers restore the capture into their own backend and
// cores. It never fails: whenever snapshotting or restoring is not
// possible — cores without replayer streams, a capture error, a refused
// restore — the caller's own doWarm runs and the simulation proceeds
// exactly as without the cache.
//
// Callers must pass freshly constructed cores and backend (zero clocks
// and statistics), doWarm must be the functional warmup (FastForward, not
// detailed Run — detailed state is deliberately not captured), and id
// must pin everything the warm state depends on: stream identities,
// topology, warmup distance and geometry.
func MCWarmup(id MCIdentity, backend *mem.Multicore, cores []*uarch.Core, doWarm func()) {
	if backend == nil || len(cores) != id.Cores || !mcEligible(cores) {
		doWarm()
		return
	}
	v, _ := mcSnaps.LoadOrStore(id, &mcHolder{})
	h := v.(*mcHolder)
	first := false
	h.once.Do(func() {
		first = true
		counters.misses.Add(1)
		if snap := mcLoadDisk(id); snap != nil && mcRestore(backend, cores, snap) {
			h.snap = snap
			counters.skippedInstrs.Add(uint64(len(cores)) * id.Warmup)
			return
		}
		doWarm()
		counters.builtInstrs.Add(uint64(len(cores)) * id.Warmup)
		snap := &mcSnapshot{Mem: backend.State(), Cores: make([]uarch.CoreWarmState, 0, len(cores))}
		for _, c := range cores {
			cs, err := c.SnapshotCoreWarm()
			if err != nil {
				return // h.snap stays nil; later callers warm themselves
			}
			snap.Cores = append(snap.Cores, *cs)
		}
		h.snap = snap
		mcSaveDisk(id, snap)
	})
	if first {
		return // warmed (or disk-restored) inside the once
	}
	if h.snap == nil || !mcRestore(backend, cores, h.snap) {
		counters.restoreErrors.Add(1)
		doWarm()
		return
	}
	counters.hits.Add(1)
	counters.skippedInstrs.Add(uint64(len(cores)) * id.Warmup)
}

// mcEligible reports whether every core's stream supports snapshot
// restore (replayer-backed). Checked up front so a restore can never fail
// halfway through and leave a half-mutated memory system behind.
func mcEligible(cores []*uarch.Core) bool {
	for _, c := range cores {
		if _, ok := c.StreamPos(); !ok {
			return false
		}
	}
	return true
}

// mcRestore installs a snapshot into a run's backend and cores. The
// snapshot is copied in everywhere (copy-on-restore); a topology or
// geometry mismatch is rejected on the first component, before any core
// state has been touched — and by identity construction the memory
// topology was validated before the cores.
func mcRestore(backend *mem.Multicore, cores []*uarch.Core, s *mcSnapshot) bool {
	if len(s.Cores) != len(cores) {
		return false
	}
	if err := backend.SetState(s.Mem); err != nil {
		return false
	}
	for i := range cores {
		cs := s.Cores[i]
		if err := cores[i].RestoreCoreWarm(&cs); err != nil {
			return false
		}
	}
	return true
}

// mcLoadDisk tries to read an identity's warmup snapshot from the cache
// directory, quarantining corrupt or foreign files.
func mcLoadDisk(id MCIdentity) *mcSnapshot {
	dir := CacheDir()
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, mcFileName(id))
	var snap mcSnapshot
	hdr, err := loadSnapshot(path, &snap)
	switch {
	case err == nil && hdr.Kind == kindMC && hdr.MC != nil && *hdr.MC == id:
		counters.fileLoads.Add(1)
		return &snap
	case err == nil:
		counters.loadErrors.Add(1)
		quarantine(path)
	case errorsIsCorrupt(err):
		counters.loadErrors.Add(1)
		quarantine(path)
	case fsNotExist(err):
	default:
		counters.loadErrors.Add(1)
	}
	return nil
}

// mcSaveDisk persists a warmup snapshot (best-effort, counted on failure).
func mcSaveDisk(id MCIdentity, snap *mcSnapshot) {
	dir := CacheDir()
	if dir == "" {
		return
	}
	hdr := fileHeader{Kind: kindMC, Pos: id.Warmup, MC: &id}
	if err := saveSnapshot(filepath.Join(dir, mcFileName(id)), hdr, snap); err != nil {
		counters.saveErrors.Add(1)
	}
}
