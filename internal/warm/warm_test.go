package warm

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/workload"
)

// testIdentity returns a small real identity (config, profile) for ladder
// tests: stride = Interval/32 = 125.
func testIdentity(t *testing.T) (Identity, config.Config) {
	t.Helper()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Configs[config.Base]
	prof, err := workload.ByName("Mcf")
	if err != nil {
		t.Fatal(err)
	}
	return Identity{
		Prof:   prof,
		Seed:   7,
		Stream: 0,
		Sample: uarch.SampleParams{Interval: 4_000, Warmup: 500, Unit: 1_000},
		Geom:   GeometryOf(cfg),
	}, cfg
}

func resetAll(t *testing.T) {
	t.Helper()
	trace.ResetCache()
	ResetCache()
	t.Cleanup(func() {
		trace.ResetCache()
		ResetCache()
		if err := SetCacheDir(""); err != nil {
			t.Error(err)
		}
	})
}

func TestLadderBoundaries(t *testing.T) {
	resetAll(t)
	id, cfg := testIdentity(t)
	l := Shared(id, cfg)
	if l.stride != 125 {
		t.Fatalf("stride = %d, want 125", l.stride)
	}
	if ck := l.checkpoint(0, 124); ck != nil {
		t.Errorf("checkpoint below the first boundary = %+v, want nil", ck)
	}
	ck := l.checkpoint(0, 5_300)
	if ck == nil || ck.Pos != 5_250 {
		t.Fatalf("checkpoint(0, 5300) = %+v, want rung at 5250", ck)
	}
	if ck.Cum.Instrs != 5_250 {
		t.Errorf("rung carries %d cumulative instrs, want 5250", ck.Cum.Instrs)
	}
	// Rungs are lazy: only the requested boundary was materialised. A
	// boundary behind the frontier with no stored rung below it is
	// retro-filled from position zero by a fresh warmer.
	st := Stats()
	if ck2 := l.checkpoint(1_200, 3_999); ck2 == nil || ck2.Pos != 3_875 {
		t.Fatalf("checkpoint(1200, 3999) = %+v, want retro-filled rung at 3875", ck2)
	}
	if after := Stats(); after.BuiltInstrs != st.BuiltInstrs+3_875 {
		t.Errorf("retro-fill from zero built %d instrs, want 3875", after.BuiltInstrs-st.BuiltInstrs)
	}
	// A second request for the same boundary is a pure hit.
	st = Stats()
	if ck3 := l.checkpoint(1_200, 3_999); ck3 == nil || ck3.Pos != 3_875 {
		t.Fatalf("repeat checkpoint(1200, 3999) = %+v, want rung at 3875", ck3)
	}
	if after := Stats(); after.BuiltInstrs != st.BuiltInstrs {
		t.Errorf("repeat request built %d more instrs, want 0", after.BuiltInstrs-st.BuiltInstrs)
	}
	// Extend the frontier, then request an unmaterialised boundary behind
	// it: the builder rewinds onto the deepest stored rung below the
	// boundary and warms only the remainder.
	if ck4 := l.checkpoint(5_250, 8_000); ck4 == nil || ck4.Pos != 8_000 {
		t.Fatalf("checkpoint(5250, 8000) = %+v, want rung at 8000", ck4)
	}
	st = Stats()
	if ck5 := l.checkpoint(4_500, 7_300); ck5 == nil || ck5.Pos != 7_250 {
		t.Fatalf("checkpoint(4500, 7300) = %+v, want retro-filled rung at 7250", ck5)
	}
	if after := Stats(); after.BuiltInstrs != st.BuiltInstrs+2_000 {
		t.Errorf("retro-fill from rung 5250 built %d instrs, want 2000", after.BuiltInstrs-st.BuiltInstrs)
	}
	// A rung at or below the current position cannot help.
	if ck6 := l.checkpoint(5_250, 5_300); ck6 != nil {
		t.Errorf("checkpoint(5250, 5300) = %+v, want nil (boundary not past position)", ck6)
	}
}

func TestLadderDiskRoundTrip(t *testing.T) {
	resetAll(t)
	dir := t.TempDir()
	if err := SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	id, cfg := testIdentity(t)
	first := Shared(id, cfg).checkpoint(0, 5_000)
	if first == nil || first.Pos != 5_000 {
		t.Fatalf("checkpoint(0, 5000) = %+v, want rung at 5000", first)
	}
	// Lazy materialisation: exactly one rung (the requested boundary)
	// reaches disk, not one per stride grid point.
	files, err := filepath.Glob(filepath.Join(dir, "*.m3dwarm"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache directory holds %d snapshot files (%v), want 1", len(files), err)
	}

	// A fresh process (simulated by dropping the in-memory cache) must
	// reassemble the same ladder from disk without warming anything.
	ResetCache()
	second := Shared(id, cfg).checkpoint(0, 5_000)
	if second == nil {
		t.Fatal("disk-served checkpoint is nil")
	}
	st := Stats()
	if st.BuiltInstrs != 0 {
		t.Errorf("disk-served ladder warmed %d instrs, want 0", st.BuiltInstrs)
	}
	if st.FileLoads != 1 {
		t.Errorf("FileLoads = %d, want 1", st.FileLoads)
	}
	if first.Pos != second.Pos || !reflect.DeepEqual(first.Cum, second.Cum) {
		t.Error("disk-served rung differs from the built rung")
	}
	if !reflect.DeepEqual(first.State, second.State) {
		t.Error("disk-served warm state differs from the built state")
	}
}

func TestCorruptSnapshotQuarantinedAndRebuilt(t *testing.T) {
	resetAll(t)
	dir := t.TempDir()
	if err := SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	id, cfg := testIdentity(t)
	built := Shared(id, cfg).checkpoint(0, 2_000)
	if built == nil {
		t.Fatal("initial build failed")
	}

	// Flip one payload byte of the rung's file (the only one: rungs are
	// materialised lazily at the requested boundary).
	path := filepath.Join(dir, ladderFileName(id, 2_000))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ResetCache()
	rebuilt := Shared(id, cfg).checkpoint(0, 2_000)
	if rebuilt == nil {
		t.Fatal("rebuild after corruption failed")
	}
	st := Stats()
	if st.LoadErrors == 0 || st.Quarantines == 0 {
		t.Errorf("corrupt file not counted: %+v", st)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Errorf("corrupt file not quarantined: %v", err)
	}
	if !reflect.DeepEqual(built.Cum, rebuilt.Cum) || !reflect.DeepEqual(built.State, rebuilt.State) {
		t.Error("rebuilt rung differs from the original")
	}
}

func TestDecodeSnapshotRejectsDamage(t *testing.T) {
	var st uarch.WarmState
	for name, raw := range map[string]string{
		"empty":     "",
		"truncated": fileMagic,
		"bad magic": "NOTWARM0" + strings.Repeat("x", 64),
	} {
		if _, err := decodeSnapshot(strings.NewReader(raw), &st); !errorsIsCorrupt(err) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestForeignSnapshotQuarantined pins the identity re-verification: a
// well-formed file whose header identity differs from the requested one
// (a hash collision or a renamed file) is quarantined, never trusted.
func TestForeignSnapshotQuarantined(t *testing.T) {
	resetAll(t)
	dir := t.TempDir()
	if err := SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	id, cfg := testIdentity(t)
	if Shared(id, cfg).checkpoint(0, 1_000) == nil {
		t.Fatal("initial build failed")
	}

	// Masquerade the rung of a different seed under this identity's name.
	other := id
	other.Seed = 8
	ResetCache()
	if Shared(other, cfg).checkpoint(0, 1_000) == nil {
		t.Fatal("second build failed")
	}
	src := filepath.Join(dir, ladderFileName(other, 1_000))
	dst := filepath.Join(dir, ladderFileName(id, 1_000))
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}

	ResetCache()
	if Shared(id, cfg).checkpoint(0, 1_000) == nil {
		t.Fatal("rebuild past the foreign file failed")
	}
	st := Stats()
	if st.LoadErrors == 0 || st.Quarantines == 0 {
		t.Errorf("foreign file not counted: %+v", st)
	}
	if _, err := os.Stat(dst + ".quarantine"); err != nil {
		t.Errorf("foreign file not quarantined: %v", err)
	}
}
