// .m3dwarm snapshot files persist warm-state checkpoints across runs
// (-warm-dir in coresim/mcsim/m3dcli). The format mirrors the trace and
// journal layers' framing discipline:
//
//	offset  size  field
//	0       8     magic "M3DWARM1"
//	8       4     header length H (little-endian uint32)
//	12      H     JSON header {Kind, Pos, Cum, Ladder|MC identity}
//	12+H    P     gob-encoded state payload
//	12+H+P  4     CRC32 (IEEE) of the payload bytes (little-endian uint32)
//
// The JSON header carries the full snapshot identity so the loader can
// reject a file whose name collides but whose identity differs; the
// trailing checksum covers every payload byte, so a bit flip makes the
// loader reject the file (ErrCorrupt) instead of restoring garbage cache
// state into a sweep. Rejected files are quarantined (renamed aside) and
// the checkpoint is rebuilt from the trace — snapshots are pure functions
// of their identity, so nothing is lost.
//
// All file access goes through the internal/fsio seam (SetFS), so chaos
// tests inject storage faults underneath unmodified production code.
package warm

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"

	"vertical3d/internal/fsio"
	"vertical3d/internal/uarch"
)

const fileMagic = "M3DWARM1"

// ErrCorrupt tags snapshot files rejected by the payload checksum (or any
// other structural damage past the magic). Callers that see it quarantine
// the file and rebuild the checkpoint from the trace.
var ErrCorrupt = errors.New("corrupt warm snapshot")

var (
	fsMu   sync.RWMutex
	warmFS fsio.FS = fsio.OS
)

// SetFS routes the snapshot file layer through an explicit filesystem seam
// (chaos tests pass an *fsio.Injector; nil restores the real filesystem).
// Package-level because the snapshot cache is process-global.
func SetFS(fs fsio.FS) {
	if fs == nil {
		fs = fsio.OS
	}
	fsMu.Lock()
	warmFS = fs
	fsMu.Unlock()
}

// getFS returns the current filesystem seam.
func getFS() fsio.FS {
	fsMu.RLock()
	defer fsMu.RUnlock()
	return warmFS
}

// Snapshot kinds stored in the file header.
const (
	kindLadder = "ladder"
	kindMC     = "mc"
)

// fileHeader is the JSON header of a snapshot file. Exactly one of Ladder
// and MC is set, matching Kind; Pos is the absolute stream position the
// state was captured at (per-core for MC snapshots) and Cum the
// design-independent observables accumulated from position zero.
type fileHeader struct {
	Kind   string
	Pos    uint64
	Cum    uarch.WarmObs
	Ladder *Identity   `json:",omitempty"`
	MC     *MCIdentity `json:",omitempty"`
}

// sanitizeName maps a profile name onto filesystem-safe runes.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// ladderFileName returns the canonical cache-directory file name for one
// ladder checkpoint: the readable prefix locates it, the FNV-64a hash of
// the full identity (geometry and sampling params included) makes names
// collision-free across sweeps sharing a profile.
func ladderFileName(id Identity, pos uint64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d", id, pos)
	return fmt.Sprintf("%s_s%d_t%d_p%d_%016x.m3dwarm",
		sanitizeName(id.Prof.Name), id.Seed, id.Stream, pos, h.Sum64())
}

// mcFileName returns the canonical cache-directory file name for one
// multicore warmup snapshot.
func mcFileName(id MCIdentity) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", id)
	return fmt.Sprintf("mc%d_%s_s%d_t%d_%016x.m3dwarm",
		id.Cores, sanitizeName(id.Prof.Name), id.Seed, id.StreamBase, h.Sum64())
}

// encodeSnapshot serialises header and gob payload, appending the CRC32 of
// the payload bytes so loaders can reject silent corruption.
func encodeSnapshot(w io.Writer, hdr fileHeader, payload any) error {
	bw := bufio.NewWriter(w)
	hb, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("warm: encode header: %w", err)
	}
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hb))); err != nil {
		return err
	}
	if _, err := bw.Write(hb); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	if err := gob.NewEncoder(io.MultiWriter(bw, crc)).Encode(payload); err != nil {
		return fmt.Errorf("warm: encode state: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// decodeSnapshot deserialises a snapshot file into payload, verifying the
// checksum BEFORE gob decoding so a flipped payload bit can never place
// partially-decoded garbage into the destination. A checksum mismatch
// returns an error wrapping ErrCorrupt.
func decodeSnapshot(r io.Reader, payload any) (fileHeader, error) {
	var hdr fileHeader
	raw, err := io.ReadAll(r)
	if err != nil {
		return hdr, fmt.Errorf("warm: read snapshot: %w", err)
	}
	if len(raw) < len(fileMagic)+4+4 {
		return hdr, fmt.Errorf("warm: %w: truncated file (%d bytes)", ErrCorrupt, len(raw))
	}
	if string(raw[:len(fileMagic)]) != fileMagic {
		return hdr, fmt.Errorf("warm: %w: bad magic %q (want %q)", ErrCorrupt, raw[:len(fileMagic)], fileMagic)
	}
	raw = raw[len(fileMagic):]
	hlen := binary.LittleEndian.Uint32(raw[:4])
	raw = raw[4:]
	if hlen == 0 || hlen > 1<<20 || int(hlen) > len(raw)-4 {
		return hdr, fmt.Errorf("warm: %w: implausible header length %d", ErrCorrupt, hlen)
	}
	if err := json.Unmarshal(raw[:hlen], &hdr); err != nil {
		return hdr, fmt.Errorf("warm: %w: decode header: %v", ErrCorrupt, err)
	}
	body := raw[hlen : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return hdr, fmt.Errorf("warm: %w: payload checksum %08x != %08x", ErrCorrupt, got, want)
	}
	if err := gob.NewDecoder(strings.NewReader(string(body))).Decode(payload); err != nil {
		return hdr, fmt.Errorf("warm: %w: decode state: %v", ErrCorrupt, err)
	}
	return hdr, nil
}

// saveSnapshot writes a snapshot to path durably and atomically: temp
// file, fsync, rename, then a best-effort fsync of the parent directory so
// the rename itself survives a crash. A concurrent or crashed writer never
// leaves a torn file for a later load to trust.
func saveSnapshot(path string, hdr fileHeader, payload any) error {
	fsys := getFS()
	tmp, err := fsys.CreateTemp(filepath.Dir(path), ".m3dwarm-*")
	if err != nil {
		return err
	}
	defer func() { _ = fsys.Remove(tmp.Name()) }() // no-op after successful rename
	if err := encodeSnapshot(tmp, hdr, payload); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	_ = fsio.SyncDir(fsys, filepath.Dir(path))
	return nil
}

// loadSnapshot reads a snapshot file from path.
func loadSnapshot(path string, payload any) (fileHeader, error) {
	f, err := getFS().Open(path)
	if err != nil {
		return fileHeader{}, err
	}
	defer func() { _ = f.Close() }()
	hdr, err := decodeSnapshot(f, payload)
	if err != nil {
		return hdr, fmt.Errorf("%s: %w", path, err)
	}
	return hdr, nil
}

// fsNotExist reports whether an error means the snapshot file is simply
// absent (a cold cache, not a fault).
func fsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// errorsIsCorrupt reports whether an error carries the ErrCorrupt tag.
func errorsIsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// quarantine renames a rejected snapshot file aside (best-effort) so the
// rebuilt replacement can be saved under the canonical name without the
// damaged file ever being trusted again.
func quarantine(path string) {
	_ = getFS().Rename(path, path+".quarantine")
	counters.quarantines.Add(1)
}
