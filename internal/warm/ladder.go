// The snapshot ladder and the per-cell binding that consumes it.
//
// A Ladder owns one standalone FunctionalWarmer (the "builder") per
// identity. The builder advances monotonically through the shared
// recording; rungs are materialised lazily, only at the stride-quantised
// boundaries (stride = Interval/32) that cells actually request — a full
// snapshot costs milliseconds of fresh allocation, so the builder warms
// straight through unrequested grid points. Each rung records the
// cumulative design-independent observables from position zero, so a
// cell restoring rung k can credit the skipped stretch exactly. Rungs
// are built at most once process-wide and — with -warm-dir — at most
// once across runs. Quantising rung positions to the grid (rather than
// to raw request targets) keeps them shared across designs whose
// fast-forward targets jitter by less than a stride.
//
// A Binding hooks one cell's Core.FastForward: it tracks the cell's
// cumulative observables at its current stream position (detailed
// stretches via StreamCounters deltas, local warms via PeekWarmObs
// deltas), asks the ladder for the deepest rung at or below each
// fast-forward target, restores it, credits the skipped observables
// repriced with the cell's own fill latencies, and warms the residual
// locally. A cell whose restore is refused falls back to warming the full
// distance itself — the cache can only ever be a shortcut, never a
// correctness dependency.
package warm

import (
	"errors"
	"path/filepath"
	"sync"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
)

// Checkpoint is one ladder rung: the builder's full functional state at
// stream position Pos, plus the cumulative design-independent observables
// of positions [0, Pos). The State pointer is shared by every cell that
// restores the rung — safe because Core.RestoreWarm copies everything in
// and never retains the snapshot.
type Checkpoint struct {
	Pos   uint64
	Cum   uarch.WarmObs
	State *uarch.WarmState
}

// Ladder is the per-identity checkpoint ladder. All mutable state is
// guarded by mu; concurrent cells requesting overlapping stretches
// serialise on it, so each rung is built exactly once.
type Ladder struct {
	id     Identity
	cfg    config.Config
	stride uint64

	mu         sync.Mutex
	err        error // sticky builder-construction failure; ladder disabled
	builder    *uarch.FunctionalWarmer
	cum        uarch.WarmObs // builder observables accumulated at builderPos
	builderPos uint64        // stream position the builder currently sits at
	ckpts      map[uint64]*Checkpoint
}

// Shared returns the process-wide ladder for an identity, creating it
// single-flight on first use. Only cfg's geometry matters (it must match
// id.Geom); the first caller's config becomes the builder's canonical
// config, and per-design latencies are never baked into shared state.
func Shared(id Identity, cfg config.Config) *Ladder {
	v, _ := ladders.LoadOrStore(id, &ladderHolder{})
	h := v.(*ladderHolder)
	h.once.Do(func() {
		stride := id.Sample.Interval / 32
		if stride == 0 {
			stride = 1
		}
		h.lad = &Ladder{
			id:     id,
			cfg:    cfg,
			stride: stride,
			ckpts:  make(map[uint64]*Checkpoint),
		}
	})
	return h.lad
}

// newBuilder constructs a standalone warmer over the shared recording,
// positioned at stream position zero.
func (l *Ladder) newBuilder() (*uarch.FunctionalWarmer, error) {
	rec := trace.SharedRecording(l.id.Prof, l.id.Seed, l.id.Stream, 0)
	h, err := mem.NewHierarchy(l.cfg)
	if err != nil {
		return nil, err
	}
	w, err := uarch.NewFunctionalWarmer(0, l.cfg, trace.NewReplayer(rec), h)
	if err != nil {
		return nil, err
	}
	if !w.FillsSupported() {
		return nil, errors.New("warm: geometry does not support fill classification")
	}
	return w, nil
}

// initBuilder constructs the ladder's builder on first use. Called under
// mu; failure is sticky and disables the ladder (cells then warm locally,
// exactly as if the cache did not exist).
func (l *Ladder) initBuilder() error {
	if l.builder != nil || l.err != nil {
		return l.err
	}
	w, err := l.newBuilder()
	if err != nil {
		l.err = err
		return err
	}
	l.builder = w
	return nil
}

// checkpoint returns the rung at the stride-quantised boundary of q,
// materialising it on first request; nil means the cache cannot help
// this stretch (target below the first boundary, or the builder is
// unavailable) and the cell should warm [p, q) itself.
//
// A boundary the builder has already passed (a design whose targets
// straddle a different grid point) is retro-filled: the builder restores
// onto the deepest stored rung at or below it — Restore repositions the
// replayer, so the builder can rewind — and warms the short remainder.
// Every grid point ever requested therefore ends up materialised, and
// later cells skip their full stretch regardless of request order.
func (l *Ladder) checkpoint(p, q uint64) *Checkpoint {
	b := q - q%l.stride
	if b == 0 || b <= p {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if ck, ok := l.ckpts[b]; ok {
		counters.hits.Add(1)
		return ck
	}
	if l.initBuilder() != nil {
		return nil
	}
	counters.misses.Add(1)
	ck := l.loadDisk(b)
	if ck != nil {
		// Adopt the persisted rung: teleport the builder onto it so
		// later rungs extend from there instead of re-warming.
		if err := l.builder.Restore(ck.State); err != nil {
			counters.loadErrors.Add(1)
			ck = nil
		} else {
			l.cum = ck.Cum
			l.builderPos = b
		}
	}
	if ck == nil {
		// Position the builder at the deepest known point at or below b:
		// the deepest stored rung if it beats the builder's own position
		// (or if the builder must rewind), else where the builder sits.
		var base *Checkpoint
		for pos, c := range l.ckpts {
			if pos <= b && (base == nil || pos > base.Pos) {
				base = c
			}
		}
		switch {
		case base != nil && (l.builderPos > b || base.Pos > l.builderPos):
			if err := l.builder.Restore(base.State); err != nil {
				l.err = err
				return nil
			}
			l.cum = base.Cum
			l.builderPos = base.Pos
		case base == nil && l.builderPos > b:
			// Rewind below every stored rung: start over from position
			// zero with a fresh warmer.
			w, err := l.newBuilder()
			if err != nil {
				l.err = err
				return nil
			}
			l.builder = w
			l.cum = uarch.WarmObs{}
			l.builderPos = 0
		}
		if hook := getBuildHook(); hook != nil {
			hook(l.id, l.builderPos, b)
		}
		l.builder.Warm(b - l.builderPos)
		counters.builtInstrs.Add(b - l.builderPos)
		l.cum = l.cum.Add(l.builder.TakeObs())
		st, err := l.builder.Snapshot()
		if err != nil {
			l.err = err
			return nil
		}
		ck = &Checkpoint{Pos: b, Cum: l.cum, State: st}
		l.saveDisk(ck)
	}
	l.ckpts[b] = ck
	l.builderPos = b
	return ck
}

// loadDisk tries to read rung pos from the cache directory. Corrupt or
// foreign files are quarantined and counted; an absent file or disabled
// disk layer is silent.
func (l *Ladder) loadDisk(pos uint64) *Checkpoint {
	dir := CacheDir()
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, ladderFileName(l.id, pos))
	var st uarch.WarmState
	hdr, err := loadSnapshot(path, &st)
	switch {
	case err == nil && hdr.Kind == kindLadder && hdr.Ladder != nil && *hdr.Ladder == l.id && hdr.Pos == pos:
		counters.fileLoads.Add(1)
		return &Checkpoint{Pos: pos, Cum: hdr.Cum, State: &st}
	case err == nil:
		// Readable but wrong identity under our canonical name.
		counters.loadErrors.Add(1)
		quarantine(path)
	case errors.Is(err, ErrCorrupt):
		counters.loadErrors.Add(1)
		quarantine(path)
	case fsNotExist(err):
		// Cold cache; nothing to count.
	default:
		counters.loadErrors.Add(1)
	}
	return nil
}

// saveDisk persists a freshly built rung (best-effort: a failed save
// degrades to rebuild-next-run, counted for the Health block).
func (l *Ladder) saveDisk(ck *Checkpoint) {
	dir := CacheDir()
	if dir == "" {
		return
	}
	id := l.id
	hdr := fileHeader{Kind: kindLadder, Pos: ck.Pos, Cum: ck.Cum, Ladder: &id}
	if err := saveSnapshot(filepath.Join(dir, ladderFileName(l.id, ck.Pos)), hdr, ck.State); err != nil {
		counters.saveErrors.Add(1)
	}
}

// Binding connects one sweep cell's core to its identity's ladder via the
// Core.SetFastForward hook. It is single-goroutine state, like the core.
type Binding struct {
	c   *uarch.Core
	lad *Ladder

	cum  uarch.WarmObs // cell observables accumulated from position zero
	mark uarch.WarmObs // StreamCounters value already folded into cum

	e2, e3, ed uint64 // this design's fill prices
}

// Bind installs a snapshot binding on a freshly constructed core whose
// stream is a replayer. It must be called before the core simulates
// anything (the binding assumes zero accumulated observables), and the
// core must support fill classification — otherwise an error is returned
// and the core keeps its plain local fast-forward.
func Bind(c *uarch.Core, rp *trace.Replayer, cfg config.Config, sp uarch.SampleParams) (*Binding, error) {
	if c == nil || rp == nil {
		return nil, errors.New("warm: nil core or replayer")
	}
	e2, e3, ed, ok := c.FillLatencies()
	if !ok {
		return nil, errors.New("warm: core geometry does not support fill classification")
	}
	if _, ok := c.StreamPos(); !ok {
		return nil, errors.New("warm: core stream is not a replayer")
	}
	rec := rp.Recording()
	id := Identity{
		Prof:   rec.Profile(),
		Seed:   rec.Seed(),
		Stream: rec.Stream(),
		Sample: sp,
		Geom:   GeometryOf(cfg),
	}
	b := &Binding{
		c:   c,
		lad: Shared(id, cfg),
		e2:  uint64(e2),
		e3:  uint64(e3),
		ed:  uint64(ed),
	}
	c.SetFastForward(b.fastForward)
	return b, nil
}

// price overwrites a skipped stretch's extra-latency sums with the exact
// values this cell's own warming would have produced: the
// design-independent per-level fill counts priced at this design's fill
// latencies. (The builder's own Extra sums are priced at the canonical
// config and are meaningless to other designs.)
func (b *Binding) price(o *uarch.WarmObs) {
	o.ExtraFetch = o.FetchFills[0]*b.e2 + o.FetchFills[1]*b.e3 + o.FetchFills[2]*b.ed
	o.ExtraData = o.DataFills[0]*b.e2 + o.DataFills[1]*b.e3 + o.DataFills[2]*b.ed
}

// fastForward is the Core.FastForward hook: account the detailed stretch
// since the previous call, restore the deepest usable rung, credit the
// skipped observables, and warm the residual locally. Falls back to plain
// local warming whenever the ladder cannot help.
func (b *Binding) fastForward(n uint64) {
	c := b.c

	// Fold the detailed stretch since the last fast-forward into the
	// cell's cumulative position record. Fast-forwards never move these
	// counters, so the delta is exactly the detailed stretch.
	sc := c.StreamCounters()
	b.cum = b.cum.Add(sc.Sub(b.mark))
	b.mark = sc

	p, ok := c.StreamPos()
	if !ok {
		c.FastForwardLocal(n)
		return
	}
	q := p + n
	if ck := b.lad.checkpoint(p, q); ck != nil && ck.Pos > p {
		// Restore BEFORE crediting observables, so a refused restore
		// leaves no phantom observables behind.
		if err := c.RestoreWarm(ck.State); err == nil {
			skip := ck.Cum.Sub(b.cum)
			b.price(&skip)
			c.AddWarmObs(skip)
			counters.skippedInstrs.Add(ck.Pos - p)
			b.cum = ck.Cum
			p = ck.Pos
		} else {
			counters.restoreErrors.Add(1)
		}
	}
	// Warm the residual locally — always called (even for a zero
	// residual) so the pipeline reset matches an unbound fast-forward
	// exactly.
	before := c.PeekWarmObs()
	c.FastForwardLocal(q - p)
	b.cum = b.cum.Add(c.PeekWarmObs().Sub(before))
}
