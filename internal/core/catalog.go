// Package core implements the paper's primary contribution: partitioning a
// processor core into two M3D layers. It provides the catalog of core
// storage structures (Table 6/8/9), strategy selection for iso-layer M3D,
// hetero-layer M3D and TSV3D (Sections 3 and 4), and the derivation of the
// core configurations and frequencies of Table 11.
package core

import (
	"fmt"

	"vertical3d/internal/sram"
)

// Structure couples an array specification with its role in the pipeline.
type Structure struct {
	Spec sram.Spec

	// CycleCritical marks structures assumed to need single-cycle access in
	// the conservative frequency derivation of Section 6.1 (all arrays in
	// Table 6). The aggressive derivation only considers the traditional
	// frequency-critical structures.
	CycleCritical bool

	// TraditionallyCritical marks the structures that classically limit
	// cycle time (RF, IQ, ALU+bypass) used for the *Agg configurations.
	TraditionallyCritical bool
}

// Catalog returns the twelve core storage structures of Table 6 with the
// dimensions, bank counts and port counts of the modelled architecture
// (Table 9): a 6-issue out-of-order core.
func Catalog() []Structure {
	return []Structure{
		{Spec: sram.Spec{Name: "RF", Words: 160, Bits: 64, Banks: 1, ReadPorts: 12, WritePorts: 6},
			CycleCritical: true, TraditionallyCritical: true},
		{Spec: sram.Spec{Name: "IQ", Words: 84, Bits: 16, Banks: 1, ReadPorts: 6, WritePorts: 2, CAM: true},
			CycleCritical: true, TraditionallyCritical: true},
		{Spec: sram.Spec{Name: "SQ", Words: 56, Bits: 48, Banks: 1, ReadPorts: 1, WritePorts: 1, CAM: true, TagBits: 40},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "LQ", Words: 72, Bits: 48, Banks: 1, ReadPorts: 1, WritePorts: 1, CAM: true, TagBits: 40},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "RAT", Words: 32, Bits: 8, Banks: 1, ReadPorts: 8, WritePorts: 4},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "BPT", Words: 4096, Bits: 8, Banks: 1, ReadPorts: 1, WritePorts: 0},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "BTB", Words: 4096, Bits: 32, Banks: 1, ReadPorts: 1, WritePorts: 0},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "DTLB", Words: 192, Bits: 64, Banks: 8, ReadPorts: 1, WritePorts: 0},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "ITLB", Words: 192, Bits: 64, Banks: 4, ReadPorts: 1, WritePorts: 0},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "IL1", Words: 256, Bits: 256, Banks: 4, ReadPorts: 1, WritePorts: 0},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "DL1", Words: 128, Bits: 256, Banks: 8, ReadPorts: 1, WritePorts: 0},
			CycleCritical: true},
		{Spec: sram.Spec{Name: "L2", Words: 512, Bits: 512, Banks: 8, ReadPorts: 1, WritePorts: 0},
			CycleCritical: false},
	}
}

// ByName returns the catalog structure with the given name.
func ByName(name string) (Structure, error) {
	for _, st := range Catalog() {
		if st.Spec.Name == name {
			return st, nil
		}
	}
	return Structure{}, fmt.Errorf("core: no structure named %q in the catalog", name)
}
