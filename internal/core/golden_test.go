package core

import (
	"math"
	"testing"

	"vertical3d/internal/tech"
)

// The golden values pin the calibrated model outputs (percent reductions,
// rounded to integers) so accidental changes to the physics constants are
// caught immediately. They are THIS REPOSITORY's values, not the paper's;
// EXPERIMENTS.md records the comparison against the paper. If you retune
// internal/sram deliberately, update these.
var goldenIso = map[string][3]float64{
	"RF":   {31, 43, 69},
	"IQ":   {15, 28, 59},
	"SQ":   {6, 12, 37},
	"LQ":   {6, 12, 38},
	"RAT":  {15, 38, 60},
	"BPT":  {26, 38, 48},
	"BTB":  {21, 12, 48},
	"DTLB": {17, 25, 46},
	"ITLB": {16, 25, 46},
	"IL1":  {24, 26, 48},
	"DL1":  {28, 34, 48},
	"L2":   {22, 29, 49},
}

var goldenHet = map[string][3]float64{
	"RF":   {30, 42, 67},
	"IQ":   {15, 28, 59},
	"SQ":   {7, 12, 37},
	"LQ":   {7, 12, 38},
	"RAT":  {15, 38, 60},
	"BPT":  {21, 31, 43},
	"BTB":  {19, 5, 43},
	"DTLB": {15, 19, 42},
	"ITLB": {14, 19, 42},
	"IL1":  {22, 21, 43},
	"DL1":  {25, 28, 43},
	"L2":   {20, 25, 44},
}

func checkGolden(t *testing.T, choices []Choice, golden map[string][3]float64, label string) {
	t.Helper()
	const tolPP = 2.0 // percentage points of slack for float drift
	for _, c := range choices {
		name := c.Structure.Spec.Name
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s: no golden value for %s", label, name)
			continue
		}
		got := [3]float64{
			c.Reduction.Latency * 100,
			c.Reduction.Energy * 100,
			c.Reduction.Footprint * 100,
		}
		for i, metric := range []string{"latency", "energy", "footprint"} {
			if math.Abs(got[i]-want[i]) > tolPP {
				t.Errorf("%s %s %s: %.1f%%, golden %.0f%% (±%.0fpp) — model drifted; retune or update goldens",
					label, name, metric, got[i], want[i], tolPP)
			}
		}
	}
}

func TestGoldenIsoReductions(t *testing.T) {
	choices, err := SelectAll(tech.N22(), IsoLayer, tech.MIV())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, choices, goldenIso, "iso")
}

func TestGoldenHeteroReductions(t *testing.T) {
	choices, err := SelectAll(tech.N22(), HeteroLayer, tech.MIV())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, choices, goldenHet, "hetero")
}
