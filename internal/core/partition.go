package core

import (
	"context"
	"fmt"
	"math"

	"vertical3d/internal/parallel"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

// Mode selects the layer-performance assumption a partition is designed for.
type Mode int

const (
	// IsoLayer assumes both layers have the same performance (Section 3):
	// symmetric splits, no upsizing.
	IsoLayer Mode = iota
	// HeteroLayer assumes the 17%-slower top layer of current M3D
	// technology and applies the paper's countermeasures (Section 4):
	// asymmetric splits and upsized top-layer devices.
	HeteroLayer
)

// String returns the mode name.
func (m Mode) String() string {
	if m == HeteroLayer {
		return "hetero-layer"
	}
	return "iso-layer"
}

// Choice is the outcome of partition selection for one structure.
type Choice struct {
	Structure Structure
	Base      sram.Result // 2D baseline
	Result    sram.Result // chosen 3D organisation
	Reduction sram.Reduction
}

// Strategy returns the chosen partitioning strategy.
func (c Choice) Strategy() sram.Strategy { return c.Result.Partition.Strategy }

// Evaluate models the structure under one explicit partition and returns the
// result alongside the 2D baseline.
func Evaluate(n *tech.Node, st Structure, p sram.Partition) (Choice, error) {
	base, err := sram.Model(n, st.Spec, sram.Flat())
	if err != nil {
		return Choice{}, err
	}
	r, err := sram.Model(n, st.Spec, p)
	if err != nil {
		return Choice{}, err
	}
	return Choice{Structure: st, Base: base, Result: r, Reduction: r.ReductionVs(base)}, nil
}

// candidates enumerates the partition configurations to consider for a
// structure under the given mode and via technology.
func candidates(st Structure, mode Mode, via tech.Via) []sram.Partition {
	var out []sram.Partition
	multiported := st.Spec.Ports() >= 2

	if mode == IsoLayer {
		out = append(out,
			sram.Iso(sram.BitPart, via),
			sram.Iso(sram.WordPart, via),
		)
		if multiported {
			out = append(out, sram.Iso(sram.PortPart, via))
		}
		return out
	}

	// Hetero-layer: asymmetric splits with top-layer upsizing. For BP/WP the
	// paper finds 2/3 of the array below with doubled top widths works well;
	// we sweep around that point. For PP we sweep the port split to balance
	// the two layers' footprints (e.g. 10 below / 8 doubled-width above for
	// the 18-port RF).
	for _, frac := range []float64{0.55, 0.60, 2.0 / 3.0, 0.70} {
		for _, up := range []float64{1.5, 2.0} {
			out = append(out,
				sram.Hetero(sram.BitPart, via, frac, up),
				sram.Hetero(sram.WordPart, via, frac, up),
			)
		}
	}
	if multiported {
		total := st.Spec.Ports()
		for pb := total/2 - 1; pb <= total/2+2; pb++ {
			if pb < 1 || pb >= total {
				continue
			}
			frac := float64(pb) / float64(total)
			for _, up := range []float64{1.5, 2.0} {
				out = append(out, sram.Hetero(sram.PortPart, via, frac, up))
			}
		}
	}
	return out
}

// SelectBest chooses the best partition for the structure: minimise access
// latency, and among candidates within latencyTiePct of the best latency,
// prefer the smallest footprint (the paper prefers latency but resolves the
// BPT's BP/WP tie toward WP's footprint and energy savings).
func SelectBest(n *tech.Node, st Structure, mode Mode, via tech.Via) (Choice, error) {
	const latencyTie = 0.02
	base, err := sram.Model(n, st.Spec, sram.Flat())
	if err != nil {
		return Choice{}, err
	}
	var best sram.Result
	haveBest := false
	for _, p := range candidates(st, mode, via) {
		r, err := sram.Model(n, st.Spec, p)
		if err != nil {
			continue
		}
		if !haveBest {
			best, haveBest = r, true
			continue
		}
		if r.AccessTime < best.AccessTime*(1-latencyTie) {
			best = r
			continue
		}
		if r.AccessTime <= best.AccessTime*(1+latencyTie) && r.FootprintArea < best.FootprintArea {
			best = r
		}
	}
	if !haveBest {
		return Choice{}, fmt.Errorf("core: no feasible partition for %s", st.Spec.Name)
	}
	return Choice{Structure: st, Base: base, Result: best, Reduction: best.ReductionVs(base)}, nil
}

// SelectAll runs SelectBest over the whole catalog, one structure per
// worker-pool task. Choices come back in catalog order; SelectBest itself
// stays sequential so its latency/footprint tie-breaking is evaluated in a
// fixed candidate order — results never depend on scheduling.
func SelectAll(n *tech.Node, mode Mode, via tech.Via) ([]Choice, error) {
	cat := Catalog()
	return parallel.Map(context.Background(), parallel.Default(), len(cat),
		func(_ context.Context, i int) (Choice, error) {
			return SelectBest(n, cat[i], mode, via)
		})
}

// MinLatencyReduction returns the smallest latency reduction across choices,
// optionally restricted to cycle-critical structures — the quantity that
// sets the 3D core frequency (Section 6.1).
func MinLatencyReduction(choices []Choice, onlyCycleCritical bool) float64 {
	min := math.Inf(1)
	for _, c := range choices {
		if onlyCycleCritical && !c.Structure.CycleCritical {
			continue
		}
		if c.Reduction.Latency < min {
			min = c.Reduction.Latency
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// FrequencyLimitingReduction returns the smallest latency reduction among
// the cycle-critical structures whose 2D access time is within nearFrac of
// the slowest one — the structures that actually pin the cycle time. A
// structure far below the cycle ceiling cannot limit frequency no matter
// how little it improves.
func FrequencyLimitingReduction(choices []Choice, nearFrac float64) float64 {
	var maxAccess float64
	for _, c := range choices {
		if c.Structure.CycleCritical && c.Base.AccessTime > maxAccess {
			maxAccess = c.Base.AccessTime
		}
	}
	min := math.Inf(1)
	for _, c := range choices {
		if !c.Structure.CycleCritical || c.Base.AccessTime < nearFrac*maxAccess {
			continue
		}
		if c.Reduction.Latency < min {
			min = c.Reduction.Latency
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// TraditionalLimitReduction returns the smallest latency reduction among the
// traditionally frequency-critical structures (RF, IQ) — the basis of the
// aggressive configurations of Section 6.1.
func TraditionalLimitReduction(choices []Choice) float64 {
	min := math.Inf(1)
	for _, c := range choices {
		if !c.Structure.TraditionallyCritical {
			continue
		}
		if c.Reduction.Latency < min {
			min = c.Reduction.Latency
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// ReductionFor returns the latency reduction of a named structure.
func ReductionFor(choices []Choice, name string) (sram.Reduction, error) {
	for _, c := range choices {
		if c.Structure.Spec.Name == name {
			return c.Reduction, nil
		}
	}
	return sram.Reduction{}, fmt.Errorf("core: structure %q not among choices", name)
}
