package core

import (
	"testing"

	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

func TestCatalogMatchesPaperTable9(t *testing.T) {
	cat := Catalog()
	if len(cat) != 12 {
		t.Fatalf("catalog must list the 12 structures of Table 6, got %d", len(cat))
	}
	dims := map[string][2]int{
		"RF": {160, 64}, "IQ": {84, 16}, "SQ": {56, 48}, "LQ": {72, 48},
		"RAT": {32, 8}, "BPT": {4096, 8}, "BTB": {4096, 32},
		"DTLB": {192, 64}, "ITLB": {192, 64},
		"IL1": {256, 256}, "DL1": {128, 256}, "L2": {512, 512},
	}
	banks := map[string]int{"DTLB": 8, "ITLB": 4, "IL1": 4, "DL1": 8, "L2": 8}
	for _, st := range cat {
		d, ok := dims[st.Spec.Name]
		if !ok {
			t.Errorf("unexpected structure %q", st.Spec.Name)
			continue
		}
		if st.Spec.Words != d[0] || st.Spec.Bits != d[1] {
			t.Errorf("%s: dims %dx%d, Table 6 says %dx%d", st.Spec.Name, st.Spec.Words, st.Spec.Bits, d[0], d[1])
		}
		if want, ok := banks[st.Spec.Name]; ok && st.Spec.Banks != want {
			t.Errorf("%s: banks %d, want %d", st.Spec.Name, st.Spec.Banks, want)
		}
		if err := st.Spec.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", st.Spec.Name, err)
		}
	}
	if _, err := ByName("RF"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("ByName should fail for unknown structures")
	}
}

func TestIsoSelectionMatchesPaperStrategies(t *testing.T) {
	// Table 6 identity: PP for every multiported structure, WP for the tall
	// single-ported BPT, BP for the remaining single-ported structures.
	choices, err := SelectAll(tech.N22(), IsoLayer, tech.MIV())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range choices {
		want := PaperTable6Strategy[c.Structure.Spec.Name]
		if got := c.Strategy().String(); got != want {
			t.Errorf("%s: selected %s, paper's Table 6 shows %s", c.Structure.Spec.Name, got, want)
		}
	}
}

func TestIsoReductionsWithinBands(t *testing.T) {
	// Magnitude bands around the paper's Table 6 M3D column: our substrate
	// is a reimplementation, so allow ±15 percentage points, but require the
	// sign and rough size to hold.
	choices, err := SelectAll(tech.N22(), IsoLayer, tech.MIV())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range choices {
		name := c.Structure.Spec.Name
		paper := PaperTable6M3D[name]
		lat := c.Reduction.Latency * 100
		if lat < paper.Latency-15 || lat > paper.Latency+15 {
			t.Errorf("%s: latency reduction %.0f%% vs paper %.0f%% (band ±15pp)", name, lat, paper.Latency)
		}
		if c.Reduction.Energy <= 0 {
			t.Errorf("%s: M3D energy reduction must be positive, got %.0f%%", name, c.Reduction.Energy*100)
		}
		if c.Reduction.Footprint < 0.25 {
			t.Errorf("%s: M3D footprint reduction %.0f%% implausibly small", name, c.Reduction.Footprint*100)
		}
	}
}

func TestHeteroCloseToIso(t *testing.T) {
	// Table 8 vs Table 6: the compensated hetero design loses only a few
	// points relative to iso layers.
	n := tech.N22()
	iso, err := SelectAll(n, IsoLayer, tech.MIV())
	if err != nil {
		t.Fatal(err)
	}
	het, err := SelectAll(n, HeteroLayer, tech.MIV())
	if err != nil {
		t.Fatal(err)
	}
	for i := range iso {
		name := iso[i].Structure.Spec.Name
		drop := (iso[i].Reduction.Latency - het[i].Reduction.Latency) * 100
		if drop > 8 {
			t.Errorf("%s: hetero latency reduction drops %.1fpp below iso (max 8pp expected)", name, drop)
		}
		if het[i].Reduction.Latency <= 0 {
			t.Errorf("%s: hetero must still beat 2D", name)
		}
	}
	isoMin := MinLatencyReduction(iso, true)
	hetMin := MinLatencyReduction(het, true)
	if hetMin <= 0 || isoMin <= 0 {
		t.Fatalf("min latency reductions must be positive: iso=%v het=%v", isoMin, hetMin)
	}
	if isoMin-hetMin > 0.06 {
		t.Errorf("hetero frequency potential should be close to iso: iso min %.1f%% vs het min %.1f%%",
			isoMin*100, hetMin*100)
	}
}

func TestTSVWorseThanM3D(t *testing.T) {
	n := tech.N22()
	m3d, err := SelectAll(n, IsoLayer, tech.MIV())
	if err != nil {
		t.Fatal(err)
	}
	tsv, err := SelectAll(n, IsoLayer, tech.TSVAggressive())
	if err != nil {
		t.Fatal(err)
	}
	worseCount := 0
	for i := range m3d {
		if tsv[i].Reduction.Latency > m3d[i].Reduction.Latency+0.01 {
			t.Errorf("%s: TSV3D latency reduction %.0f%% beats M3D %.0f%%",
				m3d[i].Structure.Spec.Name, tsv[i].Reduction.Latency*100, m3d[i].Reduction.Latency*100)
		}
		if tsv[i].Reduction.Latency < m3d[i].Reduction.Latency {
			worseCount++
		}
	}
	if worseCount < 8 {
		t.Errorf("TSV3D should be strictly worse than M3D for most structures, only %d/12", worseCount)
	}
	if MinLatencyReduction(tsv, true) > MinLatencyReduction(m3d, true) {
		t.Error("TSV3D core frequency potential should not exceed M3D's")
	}
}

func TestEvaluateExplicitPartition(t *testing.T) {
	n := tech.N22()
	st, err := ByName("RF")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Evaluate(n, st, sram.Iso(sram.PortPart, tech.MIV()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Strategy() != sram.PortPart {
		t.Errorf("Evaluate must preserve the requested strategy, got %v", c.Strategy())
	}
	if c.Reduction.Latency <= 0 {
		t.Error("RF port partitioning with MIVs must reduce latency")
	}
}

func TestMinLatencyReductionFilters(t *testing.T) {
	choices := []Choice{
		{Structure: Structure{Spec: sram.Spec{Name: "a"}, CycleCritical: true}, Reduction: sram.Reduction{Latency: 0.2}},
		{Structure: Structure{Spec: sram.Spec{Name: "b"}, CycleCritical: false}, Reduction: sram.Reduction{Latency: 0.1}},
	}
	if got := MinLatencyReduction(choices, true); got != 0.2 {
		t.Errorf("cycle-critical min = %v, want 0.2", got)
	}
	if got := MinLatencyReduction(choices, false); got != 0.1 {
		t.Errorf("unfiltered min = %v, want 0.1", got)
	}
	if got := MinLatencyReduction(nil, false); got != 0 {
		t.Errorf("empty min = %v, want 0", got)
	}
	if _, err := ReductionFor(choices, "a"); err != nil {
		t.Error(err)
	}
	if _, err := ReductionFor(choices, "zzz"); err == nil {
		t.Error("ReductionFor should fail for missing names")
	}
}

func TestModeStrings(t *testing.T) {
	if IsoLayer.String() != "iso-layer" || HeteroLayer.String() != "hetero-layer" {
		t.Error("mode names wrong")
	}
}
