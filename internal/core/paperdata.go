package core

// This file records the numbers published in the paper's tables so that the
// experiment harness (and EXPERIMENTS.md) can report paper-vs-measured for
// every row. All values are percent reductions relative to a 2D layout;
// negative values mean the 3D organisation is worse.

// PaperRow holds one structure's published reductions.
type PaperRow struct {
	Latency, Energy, Footprint float64
}

// PaperTable3 gives the bit-partitioning reductions of Table 3 for the
// register file and branch prediction table, for M3D and TSV3D.
var PaperTable3 = map[string]map[string]PaperRow{
	"M3D": {
		"RF":  {28, 22, 40},
		"BPT": {14, 15, 37},
	},
	"TSV3D": {
		"RF":  {25, 19, 31},
		"BPT": {4, -3, 4},
	},
}

// PaperTable4 gives the word-partitioning reductions of Table 4.
var PaperTable4 = map[string]map[string]PaperRow{
	"M3D": {
		"RF":  {27, 35, 43},
		"BPT": {14, 36, 57},
	},
	"TSV3D": {
		"RF":  {24, 32, 39},
		"BPT": {-6, 9, 19},
	},
}

// PaperTable5 gives the port-partitioning reductions of Table 5. The BPT is
// single-ported so PP does not apply to it.
var PaperTable5 = map[string]map[string]PaperRow{
	"M3D":   {"RF": {41, 38, 56}},
	"TSV3D": {"RF": {-361, -84, -498}},
}

// PaperTable6Strategy is the best iso-layer strategy per structure
// (M3D column of Table 6).
var PaperTable6Strategy = map[string]string{
	"RF": "PP", "IQ": "PP", "SQ": "PP", "LQ": "PP", "RAT": "PP",
	"BPT": "WP", "BTB": "BP", "DTLB": "BP", "ITLB": "BP",
	"IL1": "BP", "DL1": "BP", "L2": "BP",
}

// PaperTable6StrategyTSV is the best strategy per structure for TSV3D.
var PaperTable6StrategyTSV = map[string]string{
	"RF": "BP", "IQ": "BP", "SQ": "BP", "LQ": "BP", "RAT": "WP",
	"BPT": "BP", "BTB": "BP", "DTLB": "BP", "ITLB": "BP",
	"IL1": "BP", "DL1": "BP", "L2": "BP",
}

// PaperTable6M3D gives the iso-layer M3D reductions of Table 6.
var PaperTable6M3D = map[string]PaperRow{
	"RF":   {41, 38, 56},
	"IQ":   {26, 35, 50},
	"SQ":   {14, 21, 44},
	"LQ":   {15, 36, 48},
	"RAT":  {20, 32, 45},
	"BPT":  {14, 36, 57},
	"BTB":  {15, 20, 37},
	"DTLB": {26, 28, 35},
	"ITLB": {20, 28, 36},
	"IL1":  {30, 36, 41},
	"DL1":  {41, 40, 44},
	"L2":   {32, 47, 53},
}

// PaperTable6TSV gives the TSV3D reductions of Table 6.
var PaperTable6TSV = map[string]PaperRow{
	"RF":   {25, 19, 31},
	"IQ":   {17, 5, 32},
	"SQ":   {-3, -18, 0},
	"LQ":   {2, 8, 10},
	"RAT":  {10, 5, -11},
	"BPT":  {4, -3, 4},
	"BTB":  {-6, -10, -20},
	"DTLB": {18, 20, 22},
	"ITLB": {7, 11, 11},
	"IL1":  {14, 23, 25},
	"DL1":  {31, 33, 34},
	"L2":   {24, 42, 46},
}

// PaperTable8 gives the hetero-layer M3D reductions of Table 8.
var PaperTable8 = map[string]PaperRow{
	"RF":   {40, 32, 47},
	"IQ":   {24, 30, 47},
	"SQ":   {13, 17, 43},
	"LQ":   {13, 30, 47},
	"RAT":  {20, 24, 44},
	"BPT":  {13, 30, 40},
	"BTB":  {13, 16, 26},
	"DTLB": {23, 25, 25},
	"ITLB": {18, 25, 28},
	"IL1":  {27, 33, 30},
	"DL1":  {37, 36, 31},
	"L2":   {29, 42, 42},
}

// Paper frequency/speedup/energy headline numbers used by EXPERIMENTS.md.
const (
	PaperBaseFreqGHz      = 3.30
	PaperIsoFreqGHz       = 3.83
	PaperHetNaiveFreqGHz  = 3.50
	PaperHetFreqGHz       = 3.79
	PaperHetAggFreqGHz    = 4.34
	PaperIsoSpeedup       = 1.28
	PaperHetSpeedup       = 1.25
	PaperHetNaiveSpeedup  = 1.17
	PaperHetAggSpeedup    = 1.38
	PaperTSVSpeedup       = 1.10
	PaperIsoEnergySaving  = 0.41
	PaperHetEnergySaving  = 0.39
	PaperTSVEnergySaving  = 0.24
	PaperMCHetSpeedup     = 1.26
	PaperMCHetWSpeedup    = 1.25
	PaperMCHet2XSpeedup   = 1.92
	PaperMCTSVSpeedup     = 1.11
	PaperMCHetEnergySav   = 0.33
	PaperMCHetWEnergySav  = 0.26
	PaperMCHet2XEnergySav = 0.39
	PaperMCTSVEnergySav   = 0.17
)
