package core_test

import (
	"fmt"

	"vertical3d/internal/core"
	"vertical3d/internal/tech"
)

// ExampleSelectBest picks the best M3D partition for the branch prediction
// table: its tall aspect ratio makes word partitioning win (Section 3.2.2).
func ExampleSelectBest() {
	bpt, err := core.ByName("BPT")
	if err != nil {
		panic(err)
	}
	c, err := core.SelectBest(tech.N22(), bpt, core.IsoLayer, tech.MIV())
	if err != nil {
		panic(err)
	}
	fmt.Println("best strategy for the BPT:", c.Strategy())
	// Output: best strategy for the BPT: WP
}

// ExampleSelectAll reproduces the Table 6 strategy identity: port
// partitioning for every multiported structure, word partitioning for the
// BPT, bit partitioning for the rest.
func ExampleSelectAll() {
	choices, err := core.SelectAll(tech.N22(), core.IsoLayer, tech.MIV())
	if err != nil {
		panic(err)
	}
	for _, c := range choices[:5] {
		fmt.Printf("%s: %v\n", c.Structure.Spec.Name, c.Strategy())
	}
	// Output:
	// RF: PP
	// IQ: PP
	// SQ: PP
	// LQ: PP
	// RAT: PP
}
