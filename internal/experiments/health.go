package experiments

// This file is the bookkeeping side of the degradation ladder. The sweeps
// follow a degrade-don't-die discipline when a dependency turns hostile:
//
//	journal layer   a journal that cannot open or append switches the
//	                sweep to unjournaled execution (the journal package
//	                quarantines the bad segment); results are complete but
//	                not crash-resumable;
//	trace layer     a cache file that is unreadable, corrupt (CRC) or
//	                foreign is regenerated in memory through the
//	                single-flight cache; a failed save leaves the cache
//	                directory stale; results are bit-identical either way;
//	sample layer    a sampled cell whose warm-phase oracle check exceeds
//	                the error budget re-runs under full simulation —
//	                slower, but exact;
//	warm layer      a warm-state snapshot file that is unreadable, corrupt
//	                (CRC) or foreign is quarantined and the checkpoint is
//	                rebuilt from the trace; a refused in-memory restore
//	                falls back to local warming; a failed save leaves the
//	                snapshot directory stale; results are bit-identical in
//	                every case.
//
// Every rung taken is recorded as a DegradationEvent in the result's
// Health block, so an operator (or a service scraping the JSON) can tell a
// clean run from a survived one without diffing logs.

import (
	"fmt"
	"io"
	"sync"

	"vertical3d/internal/journal"
	"vertical3d/internal/trace"
	"vertical3d/internal/warm"
)

// DefaultSampleErrorBudget is the calibrated warm-phase oracle bound for
// sampled cells: the maximum relative deviation between warm-phase CPI
// and measured CPI before a cell falls back to full simulation. Across
// the full SPEC-like suite × every single-core design at the default
// sizing, healthy deviations reach 0.40 (the warm phase carries the
// pipeline-refill ramp), so 0.5 never triggers on a healthy profile while
// still catching sampling geometries that have genuinely lost the
// workload's phase behaviour.
const DefaultSampleErrorBudget = 0.5

// DegradationEvent is one rung of the ladder a sweep stepped down.
type DegradationEvent struct {
	// Layer is the subsystem that degraded: "journal", "trace", "sample",
	// "warm" or "fig8" (thermal rows dropped over failed source cells).
	Layer string `json:"layer"`
	// Cell is the "<benchmark>/<design>" coordinates for per-cell events,
	// empty for sweep-wide ones.
	Cell string `json:"cell,omitempty"`
	// Action is what the sweep did instead of dying.
	Action string `json:"action"`
	// Cause is the underlying error, stringified so the block marshals.
	Cause string `json:"cause,omitempty"`
}

// Health is the machine-readable degradation report of a sweep: Degraded
// is false exactly when the run needed no ladder rung, in which case
// Events is empty. Healthy cells of a degraded sweep remain bit-identical
// to an undegraded run — the ladder changes durability and speed, never
// results.
type Health struct {
	Degraded bool               `json:"degraded"`
	Events   []DegradationEvent `json:"events,omitempty"`
}

// healthRecorder collects degradation events from concurrent sweep cells.
// A nil recorder discards, so code paths shared with recorder-less callers
// need no guards.
type healthRecorder struct {
	mu     sync.Mutex
	events []DegradationEvent
}

// add records one event; cause may be nil.
func (h *healthRecorder) add(layer, cell, action string, cause error) {
	if h == nil {
		return
	}
	ev := DegradationEvent{Layer: layer, Cell: cell, Action: action}
	if cause != nil {
		ev.Cause = cause.Error()
	}
	h.mu.Lock()
	h.events = append(h.events, ev)
	h.mu.Unlock()
}

// health snapshots the collected events into a Health block.
func (h *healthRecorder) health() Health {
	if h == nil {
		return Health{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := Health{Degraded: len(h.events) > 0}
	out.Events = append(out.Events, h.events...)
	return out
}

// journalHealth converts a finished sweep's journal counters into ladder
// events: load-time quarantines and the append-failure downgrade.
func journalHealth(h *healthRecorder, jn *journal.Journal) {
	s := jn.Stats()
	cause := jn.DegradedCause()
	if s.Degraded {
		// One quarantine belongs to the degrade itself (the active
		// segment); report it inside the downgrade event.
		h.add("journal", "", "switched to unjournaled execution, active segment quarantined", cause)
		s.Quarantined--
	}
	if s.Quarantined > 0 {
		h.add("journal", "",
			fmt.Sprintf("quarantined %d corrupt segment(s) on load", s.Quarantined), nil)
	}
}

// traceWatch snapshots the process-global recording-cache counters around
// a sweep so their deltas can be attributed to it. The counters are
// process-wide: concurrent sweeps in one process may cross-attribute
// events, but never invent or lose one.
type traceWatch struct {
	before trace.CacheCounters
}

func watchTrace() traceWatch {
	return traceWatch{before: trace.CacheStats()}
}

// harvest records events for cache files that failed to load or save
// while the watch was open.
func (t traceWatch) harvest(h *healthRecorder) {
	after := trace.CacheStats()
	if n := after.LoadErrors - t.before.LoadErrors; n > 0 {
		h.add("trace", "",
			fmt.Sprintf("regenerated %d recording(s) in memory (cache file unreadable, corrupt or foreign)", n), nil)
	}
	if n := after.SaveErrors - t.before.SaveErrors; n > 0 {
		h.add("trace", "",
			fmt.Sprintf("%d recording save(s) failed, cache directory left stale", n), nil)
	}
}

// warmWatch snapshots the process-global snapshot-cache counters around a
// sweep, mirroring traceWatch.
type warmWatch struct {
	before warm.Counters
}

func watchWarm() warmWatch {
	return warmWatch{before: warm.Stats()}
}

// harvest records events for snapshot files and restores that failed
// while the watch was open.
func (t warmWatch) harvest(h *healthRecorder) {
	after := warm.Stats()
	if n := after.LoadErrors - t.before.LoadErrors; n > 0 {
		h.add("warm", "",
			fmt.Sprintf("regenerated %d warm snapshot(s) from the trace (snapshot file unreadable, corrupt or foreign)", n), nil)
	}
	if n := after.Quarantines - t.before.Quarantines; n > 0 {
		h.add("warm", "",
			fmt.Sprintf("quarantined %d damaged snapshot file(s)", n), nil)
	}
	if n := after.SaveErrors - t.before.SaveErrors; n > 0 {
		h.add("warm", "",
			fmt.Sprintf("%d snapshot save(s) failed, snapshot directory left stale", n), nil)
	}
	if n := after.RestoreErrors - t.before.RestoreErrors; n > 0 {
		h.add("warm", "",
			fmt.Sprintf("%d cell(s) fell back to local warming (snapshot restore refused)", n), nil)
	}
}

// RenderHealth writes the degradation report below a sweep's tables;
// quiet on a healthy run. One line per event, prefixed with the layer, so
// "what did the run survive" reads at a glance.
func RenderHealth(w io.Writer, h Health) {
	if !h.Degraded {
		return
	}
	fmt.Fprintf(w, "degraded: %d downgrade(s) — results complete, durability or speed reduced:\n", len(h.Events))
	for _, e := range h.Events {
		fmt.Fprintf(w, "  [%s]", e.Layer)
		if e.Cell != "" {
			fmt.Fprintf(w, " %s:", e.Cell)
		}
		fmt.Fprintf(w, " %s", e.Action)
		if e.Cause != "" {
			fmt.Fprintf(w, ": %s", e.Cause)
		}
		fmt.Fprintln(w)
	}
}
