// Package experiments regenerates every table and figure of the paper's
// evaluation: the via comparisons (Tables 1-2, Figure 2), the partitioning
// studies (Tables 3-6, 8), the logic-stage anchors (Section 3.1), the
// thermal stack (Table 10), the derived configurations (Table 11), and the
// simulated figures (6-10). Each experiment returns structured rows and can
// render itself as text alongside the paper's published values.
package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/core"
	"vertical3d/internal/journal"
	"vertical3d/internal/logic3d"
	"vertical3d/internal/parallel"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
	"vertical3d/internal/thermal"
)

// Table1Row is one via's area overhead.
type Table1Row struct {
	Via              string
	VsAdderPct       float64
	VsSRAMWordPct    float64
	PaperAdderPct    float64
	PaperSRAMWordPct float64
}

// Table1 computes the MIV/TSV area overheads at 15nm.
func Table1() []Table1Row {
	n := tech.N15()
	mk := func(v tech.Via, pa, ps float64) Table1Row {
		return Table1Row{
			Via:           v.Name,
			VsAdderPct:    v.OverheadVsAdder32(n) * 100,
			VsSRAMWordPct: v.OverheadVsSRAMWord(n) * 100,
			PaperAdderPct: pa, PaperSRAMWordPct: ps,
		}
	}
	return []Table1Row{
		mk(tech.MIV(), 0.01, 0.1),
		mk(tech.TSVAggressive(), 8.0, 271.7),
		mk(tech.TSVResearch(), 128.7, 4347.8),
	}
}

// RenderTable1 writes Table 1.
func RenderTable1(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Via\tvs 32b adder\tvs 32b SRAM word\t(paper)")
	for _, r := range Table1() {
		fmt.Fprintf(tw, "%s\t%.3f%%\t%.1f%%\t(%.2f%% / %.1f%%)\n",
			r.Via, r.VsAdderPct, r.VsSRAMWordPct, r.PaperAdderPct, r.PaperSRAMWordPct)
	}
	tw.Flush()
}

// Table2Row is one via's physical/electrical parameters.
type Table2Row struct {
	Via         tech.Via
	RCDelaySec  float64
	DriveDelayS float64
}

// Table2 lists the via parameters and derived figures of merit.
func Table2() []Table2Row {
	n := tech.N22()
	out := make([]Table2Row, 0, 3)
	for _, v := range []tech.Via{tech.MIV(), tech.TSVAggressive(), tech.TSVResearch()} {
		out = append(out, Table2Row{
			Via:         v,
			RCDelaySec:  v.RCDelay(),
			DriveDelayS: v.DriveDelay(n.RInv, 4*n.CInv),
		})
	}
	return out
}

// RenderTable2 writes Table 2.
func RenderTable2(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Via\tDiameter\tHeight\tCap\tRes\tRC\tdrive delay (min inv)")
	for _, r := range Table2() {
		fmt.Fprintf(tw, "%s\t%.2fµm\t%.2fµm\t%.2ffF\t%.3gΩ\t%.3gps\t%.1fps\n",
			r.Via.Name, r.Via.Diameter*1e6, r.Via.Height*1e6,
			r.Via.Capacitance*1e15, r.Via.Resistance, r.RCDelaySec*1e12, r.DriveDelayS*1e12)
	}
	tw.Flush()
}

// Fig2Result is the relative-area comparison.
type Fig2Result struct {
	Inverter, MIV, SRAMCell, TSV float64
}

// Fig2 computes the relative areas of Figure 2.
func Fig2() Fig2Result {
	inv, miv, sramCell, tsv := tech.RelativeAreaFigure2(tech.N15())
	return Fig2Result{Inverter: inv, MIV: miv, SRAMCell: sramCell, TSV: tsv}
}

// RenderFig2 writes Figure 2's data.
func RenderFig2(w io.Writer) {
	r := Fig2()
	fmt.Fprintf(w, "Relative area at 15nm (paper: 1x / 0.07x / 2x / 37x):\n")
	fmt.Fprintf(w, "  FO1 inverter %.2fx  MIV %.2fx  SRAM bitcell %.2fx  TSV(1.3µm) %.1fx\n",
		r.Inverter, r.MIV, r.SRAMCell, r.TSV)
}

// PartRow is one row of the partition-study tables.
type PartRow struct {
	Structure string
	Via       string
	Strategy  string
	Latency   float64 // percent reduction vs 2D
	Energy    float64
	Footprint float64
	Paper     core.PaperRow
	HasPaper  bool
}

// StrategyTable evaluates one fixed strategy on the RF and BPT for both via
// technologies — Tables 3 (BP), 4 (WP) and 5 (PP). The structure × via
// cells fan out on the default worker pool; rows come back in the fixed
// (structure, via) order regardless of scheduling.
func StrategyTable(st sram.Strategy) ([]PartRow, error) {
	return StrategyTableJournaled(context.Background(), st, "")
}

// StrategyTableJournaled is StrategyTable with graceful shutdown (ctx) and
// crash-safe checkpointing: with a non-empty journal directory, completed
// structure × via cells are journaled as they finish and merged
// bit-identically on re-run. An empty dir disables journaling.
func StrategyTableJournaled(ctx context.Context, st sram.Strategy, dir string) ([]PartRow, error) {
	rows, _, err := StrategyTableHealth(ctx, st, dir)
	return rows, err
}

// StrategyTableHealth is StrategyTableJournaled on the degradation ladder:
// a journal that cannot open or append downgrades the run to unjournaled
// execution instead of aborting it, and the returned Health block reports
// every downgrade taken.
func StrategyTableHealth(ctx context.Context, st sram.Strategy, dir string) ([]PartRow, Health, error) {
	return StrategyTableCached(ctx, st, dir, nil)
}

// StrategyTableCached is StrategyTableHealth with the result-cache tier in
// front of the journal (nil cache skips the tier) — the entry point the
// m3dd daemon serves the strategy tables through. Results are bit-identical
// with or without the cache.
func StrategyTableCached(ctx context.Context, st sram.Strategy, dir string, cache *resultcache.Cache) ([]PartRow, Health, error) {
	n := tech.N22()
	hr := &healthRecorder{}
	id := StrategyTableIdentity(st)
	var jn *journal.Journal
	if dir != "" {
		var err error
		jn, err = journal.Open(dir, id)
		if err != nil {
			hr.add("journal", "", "journaling disabled for this run (journal could not open)", err)
			jn = nil
		}
	}
	defer jn.Close()
	cr := cellRunner{cache: cache, key: resultcache.Key{ID: id}, jn: jn}
	paper := map[sram.Strategy]map[string]map[string]core.PaperRow{
		sram.BitPart:  core.PaperTable3,
		sram.WordPart: core.PaperTable4,
		sram.PortPart: core.PaperTable5,
	}[st]

	// Enumerate the cells sequentially (cheap), then evaluate in parallel.
	type cell struct {
		stc   core.Structure
		name  string
		label string
		via   tech.Via
	}
	var cells []cell
	for _, name := range []string{"RF", "BPT"} {
		stc, err := core.ByName(name)
		if err != nil {
			return nil, Health{}, err
		}
		if st == sram.PortPart && stc.Spec.Ports() < 2 {
			continue
		}
		for _, v := range []struct {
			label string
			via   tech.Via
		}{{"M3D", tech.MIV()}, {"TSV3D", tech.TSVAggressive()}} {
			cells = append(cells, cell{stc: stc, name: name, label: v.label, via: v.via})
		}
	}
	rows, err := parallel.Map(ctx, parallel.Default(), len(cells),
		func(_ context.Context, i int) (PartRow, error) {
			cl := cells[i]
			key := journal.CellKey(cl.name, cl.label, st.String(), cl.via, *n)
			return runCell(cr, cl.name, cl.label, key, func() (PartRow, error) {
				c, err := core.Evaluate(n, cl.stc, sram.Iso(st, cl.via))
				if err != nil {
					return PartRow{}, err
				}
				row := PartRow{
					Structure: cl.name, Via: cl.label, Strategy: st.String(),
					Latency:   c.Reduction.Latency * 100,
					Energy:    c.Reduction.Energy * 100,
					Footprint: c.Reduction.Footprint * 100,
				}
				if p, ok := paper[cl.label][cl.name]; ok {
					row.Paper, row.HasPaper = p, true
				}
				return row, nil
			})
		})
	journalHealth(hr, jn)
	return rows, hr.health(), err
}

// Table6 selects the best iso-layer partition per structure for M3D and
// TSV3D. The two via technologies are selected concurrently (and each
// SelectAll fans out over the catalog itself).
func Table6() (m3d, tsv []core.Choice, err error) {
	return Table6Journaled(context.Background(), "")
}

// Table6Journaled is Table6 with graceful shutdown (ctx) and crash-safe
// checkpointing: with a non-empty journal directory, each via's completed
// selection is journaled and merged bit-identically on re-run. An empty
// dir disables journaling.
func Table6Journaled(ctx context.Context, dir string) (m3d, tsv []core.Choice, err error) {
	m3d, tsv, _, err = Table6Health(ctx, dir)
	return m3d, tsv, err
}

// Table6Health is Table6Journaled on the degradation ladder (see
// StrategyTableHealth).
func Table6Health(ctx context.Context, dir string) (m3d, tsv []core.Choice, h Health, err error) {
	return Table6Cached(ctx, dir, nil)
}

// Table6Cached is Table6Health with the result-cache tier in front of the
// journal (nil cache skips the tier) — the m3dd serving entry point.
func Table6Cached(ctx context.Context, dir string, cache *resultcache.Cache) (m3d, tsv []core.Choice, h Health, err error) {
	n := tech.N22()
	hr := &healthRecorder{}
	id := Table6Identity()
	var jn *journal.Journal
	if dir != "" {
		jn, err = journal.Open(dir, id)
		if err != nil {
			hr.add("journal", "", "journaling disabled for this run (journal could not open)", err)
			jn = nil
		}
	}
	defer jn.Close()
	cr := cellRunner{cache: cache, key: resultcache.Key{ID: id}, jn: jn}
	vias := []tech.Via{tech.MIV(), tech.TSVAggressive()}
	out, err := parallel.Map(ctx, parallel.Default(), len(vias),
		func(_ context.Context, i int) ([]core.Choice, error) {
			key := journal.CellKey("table6", vias[i].Name, vias[i], *n)
			return runCell(cr, "table6", vias[i].Name, key, func() ([]core.Choice, error) {
				return core.SelectAll(n, core.IsoLayer, vias[i])
			})
		})
	journalHealth(hr, jn)
	h = hr.health()
	if err != nil {
		return nil, nil, h, err
	}
	return out[0], out[1], h, nil
}

// Table8 selects the best hetero-layer partition per structure.
func Table8() ([]core.Choice, error) {
	return core.SelectAll(tech.N22(), core.HeteroLayer, tech.MIV())
}

// RenderPartitionTable writes a partition study with paper references.
func RenderPartitionTable(w io.Writer, rows []PartRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Struct\tVia\tStrat\tLat%\tEner%\tFoot%\t(paper L/E/F)")
	for _, r := range rows {
		ref := "-"
		if r.HasPaper {
			ref = fmt.Sprintf("%.0f/%.0f/%.0f", r.Paper.Latency, r.Paper.Energy, r.Paper.Footprint)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f\t%.0f\t%.0f\t%s\n",
			r.Structure, r.Via, r.Strategy, r.Latency, r.Energy, r.Footprint, ref)
	}
	tw.Flush()
}

// RenderChoices writes a Table-6/8 style listing.
func RenderChoices(w io.Writer, choices []core.Choice, paper map[string]core.PaperRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Struct\tBest\tLat%\tEner%\tFoot%\t(paper L/E/F)")
	for _, c := range choices {
		name := c.Structure.Spec.Name
		ref := "-"
		if p, ok := paper[name]; ok {
			ref = fmt.Sprintf("%.0f/%.0f/%.0f", p.Latency, p.Energy, p.Footprint)
		}
		fmt.Fprintf(tw, "%s\t%v\t%.0f\t%.0f\t%.0f\t%s\n", name, c.Strategy(),
			c.Reduction.Latency*100, c.Reduction.Energy*100, c.Reduction.Footprint*100, ref)
	}
	tw.Flush()
}

// Table7 describes the hetero-layer partitioning techniques (qualitative).
func Table7() []string {
	return []string{
		"Logic stage:        critical paths in bottom layer; non-critical paths in top",
		"Storage (PP):       asymmetric port split; larger access transistors in top layer",
		"Storage (BP/WP):    asymmetric array split; larger bit cells in top layer",
		"Mixed stage:        combination of the previous two techniques",
	}
}

// LogicResult bundles the Section 3.1 logic-stage anchors.
type LogicResult struct {
	OneALU  logic3d.StageResult
	FourALU logic3d.StageResult

	CriticalPathFrac float64
	MaxTopSlowdown   float64
}

// LogicStage reproduces the adder/bypass P&R anchors.
func LogicStage() (LogicResult, error) {
	n := tech.N22()
	one, err := logic3d.ALUBypass(n, 1)
	if err != nil {
		return LogicResult{}, err
	}
	four, err := logic3d.ALUBypass(n, 4)
	if err != nil {
		return LogicResult{}, err
	}
	return LogicResult{
		OneALU:           one,
		FourALU:          four,
		CriticalPathFrac: logic3d.NewCarrySkipAdder().CriticalPathFraction(),
		MaxTopSlowdown:   logic3d.MaxTopSlowdown(),
	}, nil
}

// RenderLogic writes the Section 3.1 results.
func RenderLogic(w io.Writer, r LogicResult) {
	fmt.Fprintf(w, "1 ALU + bypass:  M3D freq gain %.0f%% (paper 15%%), footprint -%.0f%% (paper 41%%)\n",
		r.OneALU.FreqGain*100, r.OneALU.FootprintSaving*100)
	fmt.Fprintf(w, "4 ALUs + bypass: M3D freq gain %.0f%% (paper 28%%), energy -%.0f%% (paper 10%%)\n",
		r.FourALU.FreqGain*100, r.FourALU.EnergySaving*100)
	fmt.Fprintf(w, "adder critical-path gates: %.1f%% (paper 1.5%%); max hideable top-layer slowdown: %.0f%%\n",
		r.CriticalPathFrac*100, r.MaxTopSlowdown*100)
}

// Table10 returns the three thermal stacks.
func Table10() map[string][]thermal.LayerSpec {
	return map[string][]thermal.LayerSpec{
		"2D":    thermal.Stack2D(),
		"M3D":   thermal.StackM3D(),
		"TSV3D": thermal.StackTSV3D(),
	}
}

// RenderTable10 writes the stack parameters.
func RenderTable10(w io.Writer) {
	for _, name := range []string{"2D", "M3D", "TSV3D"} {
		fmt.Fprintf(w, "%s stack (bottom-up):\n", name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, l := range Table10()[name] {
			act := ""
			if l.Active {
				act = "  [active]"
			}
			fmt.Fprintf(tw, "  %s\t%.2fµm\t%.1f W/m-K%s\n", l.Name, l.Thickness*1e6, l.Conductivity, act)
		}
		tw.Flush()
	}
}

// Table11 derives the configuration suite.
func Table11() (*config.Suite, error) {
	return config.Derive(tech.N22())
}

// RenderTable11 writes the derived configurations against the paper's.
func RenderTable11(w io.Writer, s *config.Suite) {
	paper := map[config.Design]float64{
		config.Base: core.PaperBaseFreqGHz, config.TSV3D: core.PaperBaseFreqGHz,
		config.M3DIso: core.PaperIsoFreqGHz, config.M3DHetNaive: core.PaperHetNaiveFreqGHz,
		config.M3DHet: core.PaperHetFreqGHz, config.M3DHetAgg: core.PaperHetAggFreqGHz,
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Config\tf (GHz)\tf/fBase\tpaper f (GHz)\tpaper f/fBase")
	base := s.Configs[config.Base].FreqGHz
	for _, d := range config.SingleCoreDesigns() {
		c := s.Configs[d]
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%.2f\t%.3f\n", c.Name, c.FreqGHz, c.FreqGHz/base,
			paper[d], paper[d]/core.PaperBaseFreqGHz)
	}
	tw.Flush()
	fmt.Fprintf(w, "base cycle %.0fps; freq-limiting reductions: iso %.1f%%, hetero %.1f%%, aggressive %.1f%%\n",
		s.BaseCycleTime*1e12, s.MinIsoReduction*100, s.MinHeteroReduction*100, s.IQHeteroReduction*100)
}
