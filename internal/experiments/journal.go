package experiments

import (
	"context"
	"fmt"
	"io"

	"vertical3d/internal/journal"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
)

// This file is the glue between the sweeps and the crash-safety layers:
// it maps run options onto the worker pool's retry/timeout/watchdog knobs
// and onto a per-sweep write-ahead journal (see the journal package).
//
// The journaling contract every sweep follows:
//
//   - the journal identity pins the experiment name and every sizing
//     parameter that changes cell results (warmup, measure, seed, stream,
//     kernel) — but never the worker count, design order or KeepGoing,
//     which are merge-neutral by the pipeline's determinism contract;
//   - each cell's key fingerprints the full input tuple (profile contents
//     and derived configuration), so an edited profile or derivation
//     quietly invalidates stale entries;
//   - Lookup happens before the cell's CellHook and simulation, so a
//     journal hit skips the cell entirely — the Hits counter is the
//     resume oracle's witness that nothing was re-executed;
//   - only successful cells are recorded: failed cells stay un-journaled
//     and are re-attempted by the next run.

// ctx returns the sweep context (Background when unset).
func (opt RunOptions) ctx() context.Context {
	if opt.Context != nil {
		return opt.Context
	}
	return context.Background()
}

// pool maps the options onto the sweep worker pool.
func (opt RunOptions) pool() parallel.Pool {
	return parallel.Pool{
		Workers:       opt.Workers,
		TaskTimeout:   opt.TaskTimeout,
		SweepTimeout:  opt.SweepTimeout,
		Retry:         opt.Retry,
		WatchdogGrace: opt.WatchdogGrace,
		WatchdogLog:   opt.WatchdogLog,
	}
}

// identity canonicalises the sweep definition: the experiment name plus
// every sizing parameter that changes cell results. It is shared by the
// journal layer (segment identity headers) and the result cache (content
// addresses), so a cached cell and a journaled cell agree on what "the
// same sweep" means by construction.
func (opt RunOptions) identity(experiment string) journal.Identity {
	kv := []string{
		"warmup", fmt.Sprint(opt.Warmup),
		"measure", fmt.Sprint(opt.Measure),
		"seed", fmt.Sprint(opt.Seed),
		"stream", fmt.Sprint(opt.StreamID),
		"kernel", opt.Kernel.String(),
	}
	// Sampling joins the identity tuple only when enabled: full-run
	// journals keep their historical identity, and a sampled sweep can
	// never resume from — or poison — a full sweep's journal (and vice
	// versa), because their identities always differ. The error budget is
	// part of the identity because it decides which cells fall back to
	// full simulation, and fallback cells' results differ from sampled
	// ones.
	if opt.Sample {
		kv = append(kv, "sample", opt.sampleParams().String())
		if b := opt.sampleBudget(); b > 0 {
			kv = append(kv, "budget", fmt.Sprint(b))
		}
		// The snapshot cache joins the identity defensively: its results
		// are proven bit-identical to snapshot-off runs, but pinning it
		// means a resume can never mix cells from runs that took different
		// fast-forward paths.
		if opt.WarmCache && !opt.NoTraceCache {
			kv = append(kv, "warm", "snapshot")
		}
	}
	return journal.Identity{Experiment: experiment, Params: journal.Params(kv...)}
}

// openJournal opens the sweep's checkpoint journal, or returns a nil
// (inert) journal when JournalDir is empty.
func (opt RunOptions) openJournal(experiment string) (*journal.Journal, error) {
	if opt.JournalDir == "" {
		return nil, nil
	}
	j, err := journal.Open(opt.JournalDir, opt.identity(experiment))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", experiment, err)
	}
	return j, nil
}

// openJournalHealth is openJournal on the degradation ladder: a journal
// that cannot open (read-only directory, full disk, unreadable entries)
// downgrades the sweep to unjournaled execution — recorded as a ladder
// event — instead of aborting it. Results stay bit-identical; only
// crash-resumability is lost.
func (opt RunOptions) openJournalHealth(experiment string, h *healthRecorder) *journal.Journal {
	jn, err := opt.openJournal(experiment)
	if err != nil {
		h.add("journal", "", "journaling disabled for this run (journal could not open)", err)
		return nil
	}
	return jn
}

// mcCtx returns a multicore sweep's context (Background when unset).
func mcCtx(opt multicore.Options) context.Context {
	if opt.Context != nil {
		return opt.Context
	}
	return context.Background()
}

// mcPool maps multicore options onto the sweep worker pool.
func mcPool(opt multicore.Options) parallel.Pool {
	return parallel.Pool{
		Workers:       opt.Workers,
		TaskTimeout:   opt.TaskTimeout,
		SweepTimeout:  opt.SweepTimeout,
		Retry:         opt.Retry,
		WatchdogGrace: opt.WatchdogGrace,
		WatchdogLog:   opt.WatchdogLog,
	}
}

// mcIdentity canonicalises a multicore sweep definition, pinning every
// Options field that changes cell results; Lockstep is included because it
// changes the shared-memory interleaving and thus the contention
// statistics. Shared by the journal and the result cache like
// RunOptions.identity.
func mcIdentity(opt multicore.Options, experiment string) journal.Identity {
	kv := []string{
		"instrs", fmt.Sprint(opt.TotalInstrs),
		"warmup", fmt.Sprint(opt.WarmupPerCore),
		"phases", fmt.Sprint(opt.Phases),
		"seed", fmt.Sprint(opt.Seed),
		"lockstep", fmt.Sprint(opt.Lockstep),
		"streambase", fmt.Sprint(opt.StreamBase),
		"kernel", opt.Kernel.String(),
	}
	// Functional warmup changes cache/predictor warmth, so it joins the
	// identity only when enabled — mirroring the single-core rule that
	// sampled and full journals can never mix.
	if opt.Sample {
		kv = append(kv, "sample", "warmup")
		if opt.WarmCache && !opt.NoTraceCache {
			kv = append(kv, "warm", "snapshot")
		}
	}
	return journal.Identity{Experiment: experiment, Params: journal.Params(kv...)}
}

// mcJournal opens a multicore sweep's checkpoint journal (nil when
// disabled).
func mcJournal(opt multicore.Options, experiment string) (*journal.Journal, error) {
	if opt.JournalDir == "" {
		return nil, nil
	}
	j, err := journal.Open(opt.JournalDir, mcIdentity(opt, experiment))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", experiment, err)
	}
	return j, nil
}

// mcJournalHealth is mcJournal on the degradation ladder (see
// openJournalHealth).
func mcJournalHealth(opt multicore.Options, experiment string, h *healthRecorder) *journal.Journal {
	jn, err := mcJournal(opt, experiment)
	if err != nil {
		h.add("journal", "", "journaling disabled for this run (journal could not open)", err)
		return nil
	}
	return jn
}

// RenderJournalStats writes a one-line resume summary when a sweep ran
// with a journal; quiet otherwise.
func RenderJournalStats(w io.Writer, s journal.Stats) {
	if s == (journal.Stats{}) {
		return
	}
	fmt.Fprintf(w, "journal: %d cell(s) resumed from %d segment(s), %d executed and checkpointed",
		s.Hits, s.Segments, s.Appends)
	if s.TornTails > 0 {
		fmt.Fprintf(w, ", %d torn tail(s) cut", s.TornTails)
	}
	if s.SkippedSegments > 0 {
		fmt.Fprintf(w, ", %d foreign segment(s) skipped", s.SkippedSegments)
	}
	if s.AppendErrors > 0 {
		fmt.Fprintf(w, ", %d append error(s)", s.AppendErrors)
	}
	if s.Quarantined > 0 {
		fmt.Fprintf(w, ", %d segment(s) quarantined", s.Quarantined)
	}
	if s.Degraded {
		fmt.Fprint(w, ", degraded to unjournaled execution")
	}
	fmt.Fprintln(w)
}
