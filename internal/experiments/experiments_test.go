package experiments

import (
	"bytes"
	"strings"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/multicore"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table 1 compares 3 vias, got %d", len(rows))
	}
	for _, r := range rows[1:] { // TSVs: model must land on the paper values
		if r.VsAdderPct < r.PaperAdderPct*0.9 || r.VsAdderPct > r.PaperAdderPct*1.1 {
			t.Errorf("%s adder overhead %.1f%% vs paper %.1f%%", r.Via, r.VsAdderPct, r.PaperAdderPct)
		}
	}
	if rows[0].VsAdderPct > 0.01 {
		t.Errorf("MIV overhead %.4f%% must be <0.01%%", rows[0].VsAdderPct)
	}
}

func TestStrategyTablesRun(t *testing.T) {
	for _, st := range []sram.Strategy{sram.BitPart, sram.WordPart, sram.PortPart} {
		rows, err := StrategyTable(st)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatalf("%v: no rows", st)
		}
		var buf bytes.Buffer
		RenderPartitionTable(&buf, rows)
		if !strings.Contains(buf.String(), "RF") {
			t.Errorf("%v rendering lacks the RF row", st)
		}
	}
}

func TestTable6And8Consistent(t *testing.T) {
	m3d, tsv, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	het, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(m3d) != 12 || len(tsv) != 12 || len(het) != 12 {
		t.Fatalf("tables must cover 12 structures: %d/%d/%d", len(m3d), len(tsv), len(het))
	}
	var buf bytes.Buffer
	RenderChoices(&buf, m3d, nil)
	if !strings.Contains(buf.String(), "L2") {
		t.Error("rendering lacks the L2 row")
	}
	if len(Table7()) != 4 {
		t.Error("Table 7 lists 4 technique rows")
	}
}

func TestLogicAndStacksRender(t *testing.T) {
	r, err := LogicStage()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderLogic(&buf, r)
	RenderTable10(&buf)
	RenderTable1(&buf)
	RenderTable2(&buf)
	RenderFig2(&buf)
	if len(Table10()) != 3 {
		t.Error("Table 10 has 3 stacks")
	}
	s, err := Table11()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable11(&buf, s)
	if buf.Len() == 0 {
		t.Error("rendering produced nothing")
	}
}

func TestFig6QuickShape(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	// Three representative apps: core-bound, memory-bound, branchy.
	var profs []string = []string{"Hmmer", "Mcf", "Gobmk"}
	var list = workloadSubset(t, profs)
	f, err := Fig6With(suite, list, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range profs {
		if f.Speedup[b][config.Base] != 1.0 {
			t.Errorf("%s: Base speedup must be 1.0", b)
		}
		if f.Speedup[b][config.M3DHet] <= 1.0 {
			t.Errorf("%s: M3D-Het must beat Base, got %.2f", b, f.Speedup[b][config.M3DHet])
		}
		if f.NormEnergy[b][config.M3DHet] >= 1.0 {
			t.Errorf("%s: M3D-Het must save energy, got %.2f", b, f.NormEnergy[b][config.M3DHet])
		}
	}
	// Core-bound apps gain more from the M3D frequency than memory-bound.
	if f.Speedup["Hmmer"][config.M3DHet] <= f.Speedup["Mcf"][config.M3DHet] {
		t.Errorf("Hmmer (%.2f) should out-gain Mcf (%.2f) under M3D-Het",
			f.Speedup["Hmmer"][config.M3DHet], f.Speedup["Mcf"][config.M3DHet])
	}
	if avg := f.AverageSpeedup(config.M3DHet); avg <= 1.02 {
		t.Errorf("average M3D-Het speedup %.2f too small", avg)
	}
	var buf bytes.Buffer
	RenderFig6(&buf, f)
	RenderFig7(&buf, f)

	// Figure 8 on the same runs.
	rows, err := Fig8(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		base := r.PeakC[config.Base]
		if base < 50 || base > 110 {
			t.Errorf("%s: Base peak %.1f°C implausible", r.Benchmark, base)
		}
		if r.PeakC[config.TSV3D] <= r.PeakC[config.M3DHet]-1 {
			t.Errorf("%s: TSV3D (%.1f°C) should run hotter than M3D-Het (%.1f°C)",
				r.Benchmark, r.PeakC[config.TSV3D], r.PeakC[config.M3DHet])
		}
	}
	RenderFig8(&buf, rows)
	if buf.Len() == 0 {
		t.Error("fig rendering empty")
	}
}

func TestFig9QuickShape(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Blackscholes", "Canneal"})
	opt := multicore.Options{TotalInstrs: 60_000, WarmupPerCore: 4_000, Phases: 2, Seed: 1}
	f, err := Fig9With(suite, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Benchmarks {
		if f.Speedup[b][config.MCBase] != 1.0 {
			t.Errorf("%s: Base speedup must be 1.0", b)
		}
		if f.Speedup[b][config.MCHet2X] <= f.Speedup[b][config.MCHet] {
			t.Errorf("%s: doubling cores must beat the 4-core M3D-Het", b)
		}
	}
	if avg := f.AverageSpeedup(config.MCHet2X); avg < 1.25 {
		t.Errorf("average M3D-Het-2X speedup %.2f too small", avg)
	}
	if e := f.AverageNormEnergy(config.MCHet); e >= 1.0 {
		t.Errorf("M3D-Het multicore must save energy, got %.2f", e)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, f)
	RenderFig10(&buf, f)
	if f.AveragePowerRatio(config.MCHet2X) <= 0 {
		t.Error("power ratio must be positive")
	}
}

func workloadSubset(t *testing.T, names []string) []trace.Profile {
	t.Helper()
	var out []trace.Profile
	for _, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestLPStudy(t *testing.T) {
	r, err := LPStudy([]string{"Gamess", "Mcf"}, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Section 7.1.2: the FDSOI top layer saves additional energy (paper:
	// ≈9pp) at the same performance.
	if r.ExtraSavingPP < 4 || r.ExtraSavingPP > 20 {
		t.Errorf("LP top layer extra saving %.1fpp outside [4,20] around the paper's 9pp", r.ExtraSavingPP)
	}
	for _, b := range r.Benchmarks {
		if r.LPEnergy[b] >= r.HetEnergy[b] {
			t.Errorf("%s: LP design must save more than plain M3D-Het", b)
		}
	}
	var buf bytes.Buffer
	RenderLPStudy(&buf, r)
	if buf.Len() == 0 {
		t.Error("empty rendering")
	}
}
