package experiments

import (
	"reflect"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
)

// TestJournalResumeAcrossWorkerCounts proves the journal identity excludes
// the worker count: cells checkpointed by an 8-worker sweep are served —
// via journal.Lookup, without re-simulation — to a single-worker resume of
// the same sweep, bit-identically. The worker count only schedules cells;
// it never changes what a cell computes, so it must not partition the
// journal.
func TestJournalResumeAcrossWorkerCounts(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf")
	dir := t.TempDir()

	opt := QuickRunOptions()
	opt.JournalDir = dir
	opt.Workers = 8
	first, err := Fig6With(s, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(profiles) * len(config.SingleCoreDesigns())
	if got := int(first.Journal.Appends); got != cells {
		t.Fatalf("first run journaled %d cells, want %d", got, cells)
	}

	opt2 := QuickRunOptions()
	opt2.JournalDir = dir
	opt2.Workers = 1
	opt2.CellHook = func(bench, design string) {
		t.Errorf("cell %s/%s re-simulated despite a journal written at another worker count", bench, design)
	}
	second, err := Fig6With(s, profiles, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(second.Journal.Hits); got != cells {
		t.Errorf("resume served %d cells from the journal, want %d", got, cells)
	}
	if !reflect.DeepEqual(first.Runs, second.Runs) {
		t.Error("resumed sweep diverges from the journaling run")
	}
}
