package experiments

// Resume-merge contract of the journaled sweeps: a run that checkpoints
// into a journal directory and a later run that resumes from it must be
// bit-identical to a single uninterrupted run — at any worker count, in
// any design order — and the resume must not re-execute a single
// journaled cell. These tests pin that contract with poisoned CellHooks:
// a hook that panics for a journaled cell turns any re-execution into a
// loud sweep failure, so the journal's Hits counter is corroborated by
// the absence of panics, not just trusted.

import (
	"context"
	"reflect"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/journal"
	"vertical3d/internal/multicore"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

// fig6Cells is the quick two-benchmark fixture's cell count.
const fig6Designs = 6 // len(config.SingleCoreDesigns())

// forbidBench returns a CellHook that panics when the sweep executes any
// cell of the named benchmark — the witness that those cells came from
// the journal.
func forbidBench(t *testing.T, name string) func(bench, design string) {
	t.Helper()
	return func(bench, design string) {
		if bench == name {
			panic("journaled cell " + bench + "/" + design + " was re-executed")
		}
	}
}

// TestFig6ResumeMergesJournaledCellsBitIdentically is the end-to-end
// resume oracle for the single-core sweep:
//
//  1. a fresh, journal-free run is the reference;
//  2. a journaled run at Workers=8 with one benchmark's cells poisoned
//     checkpoints only the healthy benchmark (a partial journal — the
//     crash-interrupted sweep);
//  3. a resume at Workers=1 with a shuffled design list and a hook that
//     panics if any journaled cell re-executes must complete and
//     deep-equal the reference;
//  4. a second resume with every cell poisoned must be served entirely
//     from the journal (Appends == 0).
//
// Worker count and design order differ deliberately between the phases:
// both are merge-neutral under the journal identity.
func TestFig6ResumeMergesJournaledCellsBitIdentically(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Hmmer", "Mcf"})
	opt := QuickRunOptions()
	ref, err := Fig6With(suite, list, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()

	// Phase 1: Workers=8, every Mcf cell panics. The sweep keeps going, so
	// all Hmmer cells complete and are checkpointed; the Mcf cells fail and
	// stay un-journaled.
	p1 := opt
	p1.JournalDir = dir
	p1.Workers = 8
	p1.KeepGoing = true
	p1.CellHook = func(bench, design string) {
		if bench == "Mcf" {
			panic("injected: " + bench + "/" + design)
		}
	}
	f1, err := Fig6With(suite, list, p1)
	if err != nil {
		t.Fatalf("phase 1 keep-going sweep must complete: %v", err)
	}
	if got, want := f1.FailedCells(), fig6Designs; got != want {
		t.Fatalf("phase 1 failed cells = %d, want %d (all Mcf cells)", got, want)
	}
	if got, want := f1.Journal.Appends, fig6Designs; got != want {
		t.Fatalf("phase 1 journal appends = %d, want %d (all Hmmer cells)", got, want)
	}
	if f1.Journal.Hits != 0 {
		t.Fatalf("phase 1 journal hits = %d, want 0 (empty journal)", f1.Journal.Hits)
	}

	// Phase 2: resume at Workers=1 with the design order shuffled (Base
	// last) and the journaled benchmark's cells poisoned. The resume must
	// merge all Hmmer cells from the journal — any re-execution panics and
	// fails the sweep — execute only the Mcf cells, and deep-equal the
	// uninterrupted reference.
	shuffled := []config.Design{config.M3DHetAgg, config.M3DHet, config.M3DHetNaive, config.M3DIso, config.TSV3D, config.Base}
	p2 := opt
	p2.JournalDir = dir
	p2.Workers = 1
	p2.CellHook = forbidBench(t, "Hmmer")
	f2, err := Fig6WithDesigns(suite, list, shuffled, p2)
	if err != nil {
		t.Fatalf("phase 2 resume must complete without re-executing journaled cells: %v", err)
	}
	if got, want := f2.Journal.Hits, fig6Designs; got != want {
		t.Errorf("phase 2 journal hits = %d, want %d (all Hmmer cells merged)", got, want)
	}
	if got, want := f2.Journal.Appends, fig6Designs; got != want {
		t.Errorf("phase 2 journal appends = %d, want %d (all Mcf cells executed)", got, want)
	}
	if got, want := f2.Journal.Records, fig6Designs; got != want {
		t.Errorf("phase 2 loaded records = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(f2.Runs, ref.Runs) {
		t.Error("resumed Runs differ from the uninterrupted reference")
	}
	if !reflect.DeepEqual(f2.Speedup, ref.Speedup) {
		t.Error("resumed Speedup differs from the uninterrupted reference")
	}
	if !reflect.DeepEqual(f2.NormEnergy, ref.NormEnergy) {
		t.Error("resumed NormEnergy differs from the uninterrupted reference")
	}
	if !reflect.DeepEqual(f2.Benchmarks, ref.Benchmarks) {
		t.Error("resumed benchmark order differs from the uninterrupted reference")
	}

	// Phase 3: the journal is now complete. A run with every cell poisoned
	// must be served entirely from it: zero executions, zero appends.
	p3 := opt
	p3.JournalDir = dir
	p3.Workers = 8
	p3.CellHook = func(bench, design string) {
		panic("fully journaled sweep executed " + bench + "/" + design)
	}
	f3, err := Fig6With(suite, list, p3)
	if err != nil {
		t.Fatalf("fully journaled run must execute nothing: %v", err)
	}
	total := 2 * fig6Designs
	if got := f3.Journal.Hits; got != total {
		t.Errorf("full-resume hits = %d, want %d", got, total)
	}
	if f3.Journal.Appends != 0 {
		t.Errorf("full-resume appends = %d, want 0", f3.Journal.Appends)
	}
	if got := f3.Journal.Records; got != total {
		t.Errorf("full-resume loaded records = %d, want %d (both segments merged)", got, total)
	}
	if f3.Journal.Segments != 2 {
		t.Errorf("full-resume segments = %d, want 2 (phase 1 + phase 2)", f3.Journal.Segments)
	}
	if !reflect.DeepEqual(f3.Runs, ref.Runs) {
		t.Error("fully journaled Runs differ from the uninterrupted reference")
	}
	if !reflect.DeepEqual(f3.Speedup, ref.Speedup) {
		t.Error("fully journaled Speedup differs from the uninterrupted reference")
	}
}

// TestFig6JournalIdentityInvalidation pins that the journal identity
// covers the sizing: a journal written at one seed must not leak into a
// run at another seed, whose results differ.
func TestFig6JournalIdentityInvalidation(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Gobmk"})
	dir := t.TempDir()

	opt := QuickRunOptions()
	opt.JournalDir = dir
	if _, err := Fig6With(suite, list, opt); err != nil {
		t.Fatal(err)
	}

	// Same directory, different seed: the old segment must be skipped as
	// foreign, and every cell must execute afresh.
	executed := 0
	opt2 := QuickRunOptions()
	opt2.Seed = opt.Seed + 1
	opt2.JournalDir = dir
	opt2.CellHook = func(bench, design string) { executed++ }
	opt2.Workers = 1 // serial so the plain counter needs no lock
	f, err := Fig6With(suite, list, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Journal.Hits != 0 {
		t.Errorf("seed change must invalidate the journal: %d hits", f.Journal.Hits)
	}
	if f.Journal.SkippedSegments == 0 {
		t.Error("the other seed's segment should be skipped as foreign")
	}
	if executed != fig6Designs {
		t.Errorf("executed %d cells, want %d (no journal reuse)", executed, fig6Designs)
	}
}

// TestFig9ResumeMergesBitIdentically is the multicore counterpart:
// journal at Workers=8 with two designs poisoned, resume at Workers=1 in
// shuffled design order with the journaled designs poisoned, deep-equal
// against a fresh uninterrupted run.
func TestFig9ResumeMergesBitIdentically(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Blackscholes"})
	opt := multicore.Options{TotalInstrs: 40_000, WarmupPerCore: 3_000, Phases: 2, Seed: 7}
	ref, err := Fig9With(suite, list, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	poisoned := map[string]bool{config.MCHet.String(): true, config.MCBase.String(): true}

	p1 := opt
	p1.JournalDir = dir
	p1.Workers = 8
	p1.KeepGoing = true
	p1.CellHook = func(bench, design string) {
		if poisoned[design] {
			panic("injected: " + bench + "/" + design)
		}
	}
	f1, err := Fig9With(suite, list, p1)
	if err != nil {
		t.Fatalf("phase 1 keep-going sweep must complete: %v", err)
	}
	nd := len(config.MulticoreDesigns())
	if got, want := f1.FailedCells(), len(poisoned); got != want {
		t.Fatalf("phase 1 failed cells = %d, want %d", got, want)
	}
	if got, want := f1.Journal.Appends, nd-len(poisoned); got != want {
		t.Fatalf("phase 1 journal appends = %d, want %d", got, want)
	}

	shuffled := []config.MulticoreDesign{config.MCHet2X, config.MCHetW, config.MCHet, config.MCTSV3D, config.MCBase}
	p2 := opt
	p2.JournalDir = dir
	p2.Workers = 1
	p2.CellHook = func(bench, design string) {
		if !poisoned[design] {
			panic("journaled cell " + bench + "/" + design + " was re-executed")
		}
	}
	f2, err := Fig9WithDesigns(suite, list, shuffled, p2)
	if err != nil {
		t.Fatalf("phase 2 resume must complete without re-executing journaled cells: %v", err)
	}
	if got, want := f2.Journal.Hits, nd-len(poisoned); got != want {
		t.Errorf("phase 2 journal hits = %d, want %d", got, want)
	}
	if got, want := f2.Journal.Appends, len(poisoned); got != want {
		t.Errorf("phase 2 journal appends = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(f2.Runs, ref.Runs) {
		t.Error("resumed Runs differ from the uninterrupted reference")
	}
	if !reflect.DeepEqual(f2.Speedup, ref.Speedup) {
		t.Error("resumed Speedup differs from the uninterrupted reference")
	}
	if !reflect.DeepEqual(f2.NormEnergy, ref.NormEnergy) {
		t.Error("resumed NormEnergy differs from the uninterrupted reference")
	}
}

// TestLPStudyResumeServedFromJournal journals a complete LP study, then
// re-runs it with every cell poisoned: the second run must be served
// entirely from the journal and match the first bit for bit.
func TestLPStudyResumeServedFromJournal(t *testing.T) {
	dir := t.TempDir()
	opt := QuickRunOptions()
	opt.JournalDir = dir
	first, err := LPStudy([]string{"Gamess", "Mcf"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Journal.Appends == 0 {
		t.Fatal("first run should checkpoint its cells")
	}

	opt2 := QuickRunOptions()
	opt2.JournalDir = dir
	opt2.CellHook = func(bench, design string) {
		panic("journaled LP cell " + bench + "/" + design + " was re-executed")
	}
	second, err := LPStudy([]string{"Gamess", "Mcf"}, opt2)
	if err != nil {
		t.Fatalf("fully journaled LP study must execute nothing: %v", err)
	}
	if second.Journal.Appends != 0 {
		t.Errorf("second run appends = %d, want 0", second.Journal.Appends)
	}
	if got, want := second.Journal.Hits, first.Journal.Appends; got != want {
		t.Errorf("second run hits = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(first.HetEnergy, second.HetEnergy) ||
		!reflect.DeepEqual(first.LPEnergy, second.LPEnergy) ||
		first.ExtraSavingPP != second.ExtraSavingPP {
		t.Error("journaled LP study differs from the original run")
	}
}

// TestTablesJournaledResume journals the analytic partition tables and
// re-runs them from the same directory: rows must be bit-identical, and
// reopening the journal under the same identity must show every cell on
// disk (the witness that the re-run had a full checkpoint to merge).
func TestTablesJournaledResume(t *testing.T) {
	t.Run("strategy", func(t *testing.T) {
		dir := t.TempDir()
		ctx := context.Background()
		first, err := StrategyTableJournaled(ctx, sram.BitPart, dir)
		if err != nil {
			t.Fatal(err)
		}
		second, err := StrategyTableJournaled(ctx, sram.BitPart, dir)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Error("journaled StrategyTable rows changed across a resume")
		}
		n := tech.N22()
		jn, err := journal.Open(dir, journal.Identity{
			Experiment: "strategy",
			Params:     journal.Params("strategy", sram.BitPart.String(), "node", n.Name),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer jn.Close()
		if jn.Stats().Records == 0 {
			t.Error("strategy journal holds no records")
		}
	})
	t.Run("table6", func(t *testing.T) {
		dir := t.TempDir()
		ctx := context.Background()
		m1, t1, err := Table6Journaled(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}
		m2, t2, err := Table6Journaled(ctx, dir)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(t1, t2) {
			t.Error("journaled Table6 choices changed across a resume")
		}
	})
}
