package experiments

// This file is the cell-level serving seam every sweep routes through:
// one (benchmark × design) cell consults, in order,
//
//	result cache → checkpoint journal → simulation
//
// The cache tier (RunOptions.Cache / multicore.Options.Cache) is optional
// and nil for the command-line one-shot runs; the m3dd daemon installs a
// process-wide cache so repeated and concurrent sweeps serve finished
// cells in O(1) and coalesce identical in-flight ones. The journal tier is
// the existing crash-safety layer and keeps its contract unchanged: Lookup
// before CellHook and simulation, record only successes.
//
// Bit-identity: the cache stores canonical JSON and decodes every serve
// from it — the same encoding the journal stores — and every journaled
// result type round-trips JSON bit-identically (the resume oracles prove
// it), so a sweep's results are deep-equal whether each cell was computed,
// journal-resumed, cache-served or coalesced, at any worker count.

import (
	"vertical3d/internal/journal"
	"vertical3d/internal/resultcache"
)

// cellRunner carries the per-sweep serving state into each cell task.
type cellRunner struct {
	cache *resultcache.Cache // nil = no cache tier
	key   resultcache.Key    // ID filled per sweep; Cell per call
	jn    *journal.Journal   // the sweep's journal (nil-safe)
	hook  func(bench, design string)
}

// runCell executes one sweep cell through the serving seam. sim runs the
// actual simulation; it is only called when neither the cache nor the
// journal has the cell. The error a failed sim returns passes through
// unwrapped (tasks add their "<experiment> <bench>/<design>:" context), and
// failed cells are cached nowhere.
func runCell[T any](cr cellRunner, bench, design, cellKey string, sim func() (T, error)) (T, error) {
	compute := func() (any, error) {
		var cached T
		if cr.jn.Lookup(cellKey, &cached) {
			return cached, nil
		}
		if cr.hook != nil {
			cr.hook(bench, design)
		}
		r, err := sim()
		if err != nil {
			return nil, err
		}
		_ = cr.jn.Record(cellKey, r) // append failures are counted, never fatal
		return r, nil
	}
	if cr.cache == nil {
		// No cache tier: preserve the exact pre-cache behaviour, including
		// returning the simulated value without a JSON round-trip.
		v, err := compute()
		if err != nil {
			var zero T
			return zero, err
		}
		return v.(T), nil
	}
	key := cr.key
	key.Cell = cellKey
	var out T
	_, err := cr.cache.Do(key, &out, compute)
	return out, err
}
