package experiments

import (
	"fmt"
	"io"

	"vertical3d/internal/config"
	"vertical3d/internal/stats"
	"vertical3d/internal/tech"

	"vertical3d/internal/workload"
)

// LPStudyResult is the Section 7.1.2 scenario: M3D-Het with a low-power
// FDSOI top layer, which matches M3D-Het's performance while saving more
// energy (the paper reports ≈9 additional percentage points).
type LPStudyResult struct {
	Benchmarks []string
	// HetEnergy and LPEnergy are normalised to Base per benchmark.
	HetEnergy map[string]float64
	LPEnergy  map[string]float64
	// ExtraSavingPP is the mean additional saving in percentage points.
	ExtraSavingPP float64
}

// LPStudy runs the comparison on a benchmark subset.
func LPStudy(names []string, opt RunOptions) (*LPStudyResult, error) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		return nil, err
	}
	res := &LPStudyResult{
		HetEnergy: map[string]float64{},
		LPEnergy:  map[string]float64{},
	}
	var deltas []float64
	for _, name := range names {
		prof, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		var base, het, lp float64
		for _, d := range []config.Design{config.Base, config.M3DHet, config.M3DHetLP} {
			r, err := runSingle(suite.Configs[d], prof, opt)
			if err != nil {
				return nil, err
			}
			switch d {
			case config.Base:
				base = r.Energy.TotalJ()
			case config.M3DHet:
				het = r.Energy.TotalJ()
			case config.M3DHetLP:
				lp = r.Energy.TotalJ()
			}
		}
		res.Benchmarks = append(res.Benchmarks, name)
		res.HetEnergy[name] = het / base
		res.LPEnergy[name] = lp / base
		deltas = append(deltas, (het-lp)/base*100)
	}
	m, err := stats.Mean(deltas)
	if err != nil {
		return nil, err
	}
	res.ExtraSavingPP = m
	return res, nil
}

// RenderLPStudy writes the comparison.
func RenderLPStudy(w io.Writer, r *LPStudyResult) {
	fmt.Fprintln(w, "M3D-Het with LP (FDSOI) top layer — energy normalised to Base:")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(w, "  %-14s M3D-Het %.2f  M3D-Het-LP %.2f\n", b, r.HetEnergy[b], r.LPEnergy[b])
	}
	fmt.Fprintf(w, "Additional saving: %.1f percentage points (paper: ≈9pp, Section 7.1.2)\n",
		r.ExtraSavingPP)
}
