package experiments

import (
	"context"
	"fmt"
	"io"

	"vertical3d/internal/config"
	"vertical3d/internal/journal"
	"vertical3d/internal/parallel"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/stats"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// LPStudyResult is the Section 7.1.2 scenario: M3D-Het with a low-power
// FDSOI top layer, which matches M3D-Het's performance while saving more
// energy (the paper reports ≈9 additional percentage points).
type LPStudyResult struct {
	Benchmarks []string
	// HetEnergy and LPEnergy are normalised to Base per benchmark.
	HetEnergy map[string]float64
	LPEnergy  map[string]float64
	// ExtraSavingPP is the mean additional saving in percentage points.
	ExtraSavingPP float64

	// Journal reports the checkpoint journal's counters when the study ran
	// with RunOptions.JournalDir; zero otherwise.
	Journal journal.Stats

	// Health is the study's degradation report (see Fig6Result.Health).
	Health Health
}

// lpDesigns is the fixed design triple every LP-study cell sweeps.
var lpDesigns = [...]config.Design{config.Base, config.M3DHet, config.M3DHetLP}

// LPStudy runs the comparison on a benchmark subset. The benchmark ×
// design cells fan out on the worker pool; normalisation is a second pass
// after the join, so results are bit-identical at any opt.Workers.
func LPStudy(names []string, opt RunOptions) (*LPStudyResult, error) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		return nil, err
	}
	// Resolve the profiles up front so a bad name fails deterministically.
	profiles := make([]workloadProfile, len(names))
	for i, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		profiles[i] = workloadProfile{name: name, prof: p}
	}

	hr := &healthRecorder{}
	tw := watchTrace()
	ww := watchWarm()
	opt.health = hr
	jn := opt.openJournalHealth("lpstudy", hr)
	defer jn.Close()
	cr := cellRunner{
		cache: opt.Cache,
		key:   resultcache.Key{ID: opt.identity("lpstudy")},
		jn:    jn,
		hook:  opt.CellHook,
	}
	nd := len(lpDesigns)
	pool := opt.pool()
	cells, err := parallel.Map(opt.ctx(), pool, len(profiles)*nd,
		func(_ context.Context, i int) (float64, error) {
			p, d := profiles[i/nd], lpDesigns[i%nd]
			key := journal.CellKey(p.name, d.String(), suite.Configs[d], p.prof)
			e, err := runCell(cr, p.name, d.String(), key, func() (float64, error) {
				r, err := runSingle(suite.Configs[d], p.prof, opt)
				if err != nil {
					return 0, err
				}
				return r.Energy.TotalJ(), nil
			})
			if err != nil {
				return 0, fmt.Errorf("lpstudy %s/%s: %w", p.name, d, err)
			}
			return e, nil
		})
	if err != nil {
		return nil, err
	}

	res := &LPStudyResult{
		HetEnergy: map[string]float64{},
		LPEnergy:  map[string]float64{},
	}
	var deltas []float64
	for pi, p := range profiles {
		base, het, lp := cells[pi*nd], cells[pi*nd+1], cells[pi*nd+2]
		res.Benchmarks = append(res.Benchmarks, p.name)
		res.HetEnergy[p.name] = het / base
		res.LPEnergy[p.name] = lp / base
		deltas = append(deltas, (het-lp)/base*100)
	}
	m, err := stats.Mean(deltas)
	if err != nil {
		return nil, err
	}
	res.ExtraSavingPP = m
	res.Journal = jn.Stats()
	journalHealth(hr, jn)
	tw.harvest(hr)
	ww.harvest(hr)
	res.Health = hr.health()
	return res, nil
}

// workloadProfile pairs a benchmark name with its resolved trace profile.
type workloadProfile struct {
	name string
	prof trace.Profile
}

// RenderLPStudy writes the comparison.
func RenderLPStudy(w io.Writer, r *LPStudyResult) {
	fmt.Fprintln(w, "M3D-Het with LP (FDSOI) top layer — energy normalised to Base:")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(w, "  %-14s M3D-Het %.2f  M3D-Het-LP %.2f\n", b, r.HetEnergy[b], r.LPEnergy[b])
	}
	fmt.Fprintf(w, "Additional saving: %.1f percentage points (paper: ≈9pp, Section 7.1.2)\n",
		r.ExtraSavingPP)
}
