package experiments

import (
	"reflect"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
)

// TestOracleFig6ResultCacheInvariant is the serving-layer acceptance gate:
// a Fig6 sweep must produce deep-equal results with the result cache off, a
// cold cache, a warm cache (every cell served from memory) and at one and
// eight workers. Runs carry the full Stats/HierStats/Energy of every cell,
// so this subsumes a per-cell comparison of everything the pipeline
// measures.
func TestOracleFig6ResultCacheInvariant(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf", "Gobmk")
	opt := QuickRunOptions()

	cache := resultcache.New(64 << 20)
	var results []*Fig6Result
	for _, w := range []int{1, 8} {
		for _, c := range []*resultcache.Cache{nil, cache, cache} {
			o := opt
			o.Workers, o.Cache = w, c
			f, err := Fig6With(s, profiles, o)
			if err != nil {
				t.Fatalf("workers=%d cache=%v: %v", w, c != nil, err)
			}
			results = append(results, f)
		}
	}
	base := results[0]
	for i, f := range results[1:] {
		if !reflect.DeepEqual(base.Runs, f.Runs) {
			t.Errorf("Fig6 Runs diverge between variant 0 and %d", i+1)
		}
		if !reflect.DeepEqual(base.Speedup, f.Speedup) || !reflect.DeepEqual(base.NormEnergy, f.NormEnergy) {
			t.Errorf("Fig6 derived ratios diverge between variant 0 and %d", i+1)
		}
	}
	// Three cached sweeps over the same cells: the first computed every
	// cell, the other two must have served all of them without simulating.
	cells := uint64(len(profiles) * len(config.SingleCoreDesigns()))
	cs := cache.Stats()
	if cs.Computed != cells {
		t.Errorf("cache computed %d cells, want %d (one sweep's worth)", cs.Computed, cells)
	}
	if cs.Hits+cs.Coalesced != 3*cells {
		t.Errorf("cache served %d hits + %d coalesced, want %d total (three warm sweeps)",
			cs.Hits, cs.Coalesced, 3*cells)
	}
}

// TestResultCacheDiskTierServesJournaledSweep proves the m3dd cold-start
// path: a sweep journaled by one process (here: one Fig6 run with
// JournalDir) is served by a fresh cache's disk tier without re-simulation
// — the CellHook poison makes any simulation attempt fail the test.
func TestResultCacheDiskTierServesJournaledSweep(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf")
	dir := t.TempDir()

	opt := QuickRunOptions()
	opt.JournalDir = dir
	fresh, err := Fig6With(s, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	// A different process would build a new cache over the same directory.
	cache := resultcache.New(64 << 20)
	cache.SetDiskDir(dir)
	opt2 := QuickRunOptions()
	opt2.Cache = cache
	opt2.CellHook = func(bench, design string) {
		t.Errorf("cell %s/%s was re-simulated despite the journal on disk", bench, design)
	}
	served, err := Fig6With(s, profiles, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Runs, served.Runs) {
		t.Error("disk-tier-served sweep diverges from the journaled original")
	}
	if cs := cache.Stats(); cs.DiskHits == 0 {
		t.Errorf("disk tier served nothing: %+v", cs)
	}
}
