package experiments

// Journal isolation between sampled and full sweeps: sampling params join
// the journal identity (journal.go), so a sampled run must never resume
// from — or poison — a full run's journal, and vice versa. These tests pin
// that with the same poisoned-CellHook technique as resume_test.go: any
// cross-mode journal reuse either shows up as a Hits count or, worse, as a
// silently wrong result — both are asserted against.

import (
	"reflect"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/tech"
	"vertical3d/internal/uarch"
)

// uarchDefaultHalfInterval returns the default sampling geometry with the
// interval halved — a valid but distinct identity.
func uarchDefaultHalfInterval() uarch.SampleParams {
	p := uarch.DefaultSampleParams()
	p.Interval /= 2
	return p
}

// TestFig6SampledJournalIsolation interleaves full and sampled sweeps over
// one journal directory:
//
//  1. a full run checkpoints its cells;
//  2. a sampled run with identical sizing must see the full segment as
//     foreign — zero hits, every cell executed afresh;
//  3. a second sampled run must be served from the sampled segment alone
//     (every cell poisoned, zero appends);
//  4. a second full run must likewise be served from the full segment,
//     untouched by the sampled appends, and match the first bit for bit.
func TestFig6SampledJournalIsolation(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Hmmer"})
	dir := t.TempDir()

	full := QuickRunOptions()
	full.JournalDir = dir
	f1, err := Fig6With(suite, list, full)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f1.Journal.Appends, fig6Designs; got != want {
		t.Fatalf("full run appends = %d, want %d", got, want)
	}

	// Phase 2: sampled, same directory, same sizing. The full segment's
	// identity lacks the sample param, so it must be skipped as foreign.
	executed := 0
	samp := QuickRunOptions()
	samp.JournalDir = dir
	samp.Sample = true
	samp.Workers = 1 // serial so the plain counter needs no lock
	samp.CellHook = func(bench, design string) { executed++ }
	s1, err := Fig6With(suite, list, samp)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Journal.Hits != 0 {
		t.Errorf("sampled run resumed %d cell(s) from the full journal, want 0", s1.Journal.Hits)
	}
	if s1.Journal.SkippedSegments == 0 {
		t.Error("the full run's segment should be skipped as foreign")
	}
	if executed != fig6Designs {
		t.Errorf("sampled run executed %d cells, want %d (no cross-mode reuse)", executed, fig6Designs)
	}

	// Phase 3: the sampled journal is complete; a poisoned re-run must be
	// served entirely from it.
	samp2 := QuickRunOptions()
	samp2.JournalDir = dir
	samp2.Sample = true
	samp2.CellHook = func(bench, design string) {
		panic("journaled sampled cell " + bench + "/" + design + " was re-executed")
	}
	s2, err := Fig6With(suite, list, samp2)
	if err != nil {
		t.Fatalf("fully journaled sampled run must execute nothing: %v", err)
	}
	if got, want := s2.Journal.Hits, fig6Designs; got != want {
		t.Errorf("sampled resume hits = %d, want %d", got, want)
	}
	if s2.Journal.Appends != 0 {
		t.Errorf("sampled resume appends = %d, want 0", s2.Journal.Appends)
	}
	if !reflect.DeepEqual(s2.Runs, s1.Runs) {
		t.Error("sampled resume differs from the original sampled run")
	}

	// Phase 4: the full journal must be equally intact — the sampled
	// appends in the same directory must not leak back.
	full2 := QuickRunOptions()
	full2.JournalDir = dir
	full2.CellHook = func(bench, design string) {
		panic("journaled full cell " + bench + "/" + design + " was re-executed")
	}
	f2, err := Fig6With(suite, list, full2)
	if err != nil {
		t.Fatalf("fully journaled full run must execute nothing: %v", err)
	}
	if got, want := f2.Journal.Hits, fig6Designs; got != want {
		t.Errorf("full resume hits = %d, want %d", got, want)
	}
	if f2.Journal.Appends != 0 {
		t.Errorf("full resume appends = %d, want 0", f2.Journal.Appends)
	}
	if !reflect.DeepEqual(f2.Runs, f1.Runs) {
		t.Error("full resume differs from the original full run — the sampled segment leaked in")
	}

	// Sampled and full results over the same cells must actually differ
	// somewhere (otherwise the isolation above proves nothing).
	if reflect.DeepEqual(s1.Runs, f1.Runs) {
		t.Error("sampled and full runs are bit-identical; the isolation oracle is vacuous")
	}
}

// TestFig6SampledJournalIdentityIncludesGeometry pins that the sampling
// geometry itself is part of the identity: a journal written at one
// interval must not serve a run at another.
func TestFig6SampledJournalIdentityIncludesGeometry(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Gobmk"})
	dir := t.TempDir()

	opt := QuickRunOptions()
	opt.JournalDir = dir
	opt.Sample = true
	if _, err := Fig6With(suite, list, opt); err != nil {
		t.Fatal(err)
	}

	executed := 0
	opt2 := QuickRunOptions()
	opt2.JournalDir = dir
	opt2.Sample = true
	opt2.SampleParams = uarchDefaultHalfInterval()
	opt2.Workers = 1
	opt2.CellHook = func(bench, design string) { executed++ }
	f, err := Fig6With(suite, list, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Journal.Hits != 0 {
		t.Errorf("geometry change must invalidate the journal: %d hits", f.Journal.Hits)
	}
	if executed != fig6Designs {
		t.Errorf("executed %d cells, want %d", executed, fig6Designs)
	}
}
