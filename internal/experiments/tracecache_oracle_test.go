package experiments

import (
	"reflect"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/multicore"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
)

// TestOracleFig6TraceCacheInvariant is the record-once/replay-many
// acceptance gate for the single-core sweep: with the shared-recording
// cache enabled and disabled, at one and eight workers, on both kernels,
// every Run map and derived ratio must deep-equal. Runs carry the full
// Stats/HierStats/Energy of every cell, so this subsumes a per-cell
// comparison of everything the pipeline measures.
func TestOracleFig6TraceCacheInvariant(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf", "Gobmk")
	opt := RunOptions{Warmup: 4_000, Measure: 15_000, Seed: 5}

	var results []*Fig6Result
	for _, k := range []uarch.Kernel{uarch.KernelReference, uarch.KernelEvent} {
		for _, w := range []int{1, 8} {
			for _, noCache := range []bool{false, true} {
				o := opt
				o.Kernel, o.Workers, o.NoTraceCache = k, w, noCache
				f, err := Fig6With(s, profiles, o)
				if err != nil {
					t.Fatalf("kernel=%v workers=%d noCache=%v: %v", k, w, noCache, err)
				}
				results = append(results, f)
			}
		}
	}
	base := results[0]
	for i, f := range results[1:] {
		if !reflect.DeepEqual(base.Runs, f.Runs) {
			t.Errorf("Fig6 Runs diverge between variant 0 and %d", i+1)
		}
		if !reflect.DeepEqual(base.Speedup, f.Speedup) || !reflect.DeepEqual(base.NormEnergy, f.NormEnergy) {
			t.Errorf("Fig6 derived ratios diverge between variant 0 and %d", i+1)
		}
	}
	// The cached variants must actually have shared recordings: one miss
	// per (profile, stream) key and a hit for every other cell.
	st := trace.CacheStats()
	if st.Misses != uint64(len(profiles)) {
		t.Errorf("trace cache recorded %d streams, want %d (one per profile)", st.Misses, len(profiles))
	}
	if st.Hits == 0 {
		t.Error("trace cache saw no hits across the sweep cells")
	}
}

// TestOracleFig9TraceCacheInvariant is the multicore counterpart,
// including the per-core stream keying (core i = stream StreamBase+i).
func TestOracleFig9TraceCacheInvariant(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Fft", "Barnes")
	opt := multicore.Options{TotalInstrs: 30_000, WarmupPerCore: 2_000, Phases: 2, Seed: 5}

	var results []*Fig9Result
	for _, k := range []uarch.Kernel{uarch.KernelReference, uarch.KernelEvent} {
		for _, w := range []int{1, 8} {
			for _, noCache := range []bool{false, true} {
				o := opt
				o.Kernel, o.Workers, o.NoTraceCache = k, w, noCache
				f, err := Fig9With(s, profiles, o)
				if err != nil {
					t.Fatalf("kernel=%v workers=%d noCache=%v: %v", k, w, noCache, err)
				}
				results = append(results, f)
			}
		}
	}
	base := results[0]
	for i, f := range results[1:] {
		if !reflect.DeepEqual(base.Runs, f.Runs) {
			t.Errorf("Fig9 Runs diverge between variant 0 and %d", i+1)
		}
		if !reflect.DeepEqual(base.Speedup, f.Speedup) || !reflect.DeepEqual(base.NormEnergy, f.NormEnergy) {
			t.Errorf("Fig9 derived ratios diverge between variant 0 and %d", i+1)
		}
	}
	if st := trace.CacheStats(); st.Hits == 0 {
		t.Error("trace cache saw no hits across the multicore sweep cells")
	}
}

// TestStreamIDPlumbing pins the stale-seed fix: RunOptions.StreamID must
// reach the generator (distinct ids ⇒ distinct streams ⇒ distinct
// results; equal ids ⇒ bit-identical results), with and without the
// trace cache, and multicore's StreamBase must shift every core's stream.
func TestStreamIDPlumbing(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf")
	designs := []config.Design{config.Base}
	base := RunOptions{Warmup: 2_000, Measure: 8_000, Seed: 5}

	run := func(stream int, noCache bool) *Fig6Result {
		o := base
		o.StreamID, o.NoTraceCache = stream, noCache
		f, err := Fig6WithDesigns(s, profiles, designs, o)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	s0, s7 := run(0, false), run(7, false)
	if reflect.DeepEqual(s0.Runs, s7.Runs) {
		t.Error("StreamID=0 and StreamID=7 produced identical runs — stream id is not plumbed through")
	}
	if !reflect.DeepEqual(s7.Runs, run(7, false).Runs) {
		t.Error("same StreamID is not deterministic")
	}
	if !reflect.DeepEqual(s7.Runs, run(7, true).Runs) {
		t.Error("StreamID=7 differs between cached replay and per-cell generation")
	}

	// Multicore: shifting StreamBase must change the streams the cores
	// draw, deterministically.
	prof := oracleProfiles(t, "Fft")[0]
	mcs := config.DeriveMulticore(s)
	mrun := func(streamBase int, noCache bool) multicore.RunResult {
		o := multicore.Options{TotalInstrs: 20_000, WarmupPerCore: 1_000, Phases: 2, Seed: 5,
			StreamBase: streamBase, NoTraceCache: noCache}
		r, err := multicore.Run(mcs[config.MCBase], prof, o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	m0, m100 := mrun(0, false), mrun(100, false)
	if reflect.DeepEqual(m0.CoreStats, m100.CoreStats) {
		t.Error("StreamBase=0 and StreamBase=100 produced identical multicore runs")
	}
	if !reflect.DeepEqual(m100, mrun(100, false)) {
		t.Error("same StreamBase is not deterministic")
	}
	if !reflect.DeepEqual(m100, mrun(100, true)) {
		t.Error("StreamBase=100 differs between cached replay and per-cell generation")
	}
}
