package experiments

import (
	"vertical3d/internal/journal"
	"vertical3d/internal/multicore"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

// This file exports the sweeps' canonical journal identities to the
// serving layer. The m3dd daemon's admission control asks the result
// cache how many of a queued job's cells are already serviceable
// (resultcache.KnownCells) before picking what to run under load — and
// that question is only answerable with the exact identity the sweep will
// execute under. Keeping these as thin wrappers over the same unexported
// constructors the sweeps use means the serving layer can never drift
// from the journal layer's definition of "the same sweep".

// Identity is the sweep's canonical journal identity — the content
// address its cells are journaled and cached under (see the unexported
// identity for the parameter-pinning rules).
func (opt RunOptions) Identity(experiment string) journal.Identity {
	return opt.identity(experiment)
}

// MCIdentity is a multicore sweep's canonical journal identity (see
// mcIdentity for the parameter-pinning rules).
func MCIdentity(opt multicore.Options, experiment string) journal.Identity {
	return mcIdentity(opt, experiment)
}

// StrategyTableIdentity is the journal identity StrategyTableCached runs
// the given partitioning strategy's table under.
func StrategyTableIdentity(st sram.Strategy) journal.Identity {
	return journal.Identity{
		Experiment: "strategy",
		Params:     journal.Params("strategy", st.String(), "node", tech.N22().Name),
	}
}

// Table6Identity is the journal identity Table6Cached runs under.
func Table6Identity() journal.Identity {
	return journal.Identity{
		Experiment: "table6",
		Params:     journal.Params("node", tech.N22().Name),
	}
}
