package experiments

import (
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
)

// TestFig8HealthReportsDroppedRows proves the keep-going skip path is no
// longer silent: a benchmark whose Fig6 cells partially failed is dropped
// from the Figure 8 table, and every failed source cell behind the drop is
// recorded as a "fig8" DegradationEvent.
func TestFig8HealthReportsDroppedRows(t *testing.T) {
	trace.ResetCache()
	defer trace.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf", "Gobmk")

	opt := QuickRunOptions()
	opt.KeepGoing = true
	opt.CellHook = func(bench, design string) {
		if bench == "Mcf" && design == config.TSV3D.String() {
			panic("injected: thermal-relevant cell lost")
		}
	}
	f, err := Fig6With(s, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}
	if f.FailedCells() != 1 {
		t.Fatalf("want exactly the injected failure, got %d failed cells", f.FailedCells())
	}

	rows, h, err := Fig8Health(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Benchmark != "Gobmk" {
		t.Fatalf("want only Gobmk's thermal row, got %d row(s)", len(rows))
	}
	if !h.Degraded || len(h.Events) != 1 {
		t.Fatalf("want one degradation event for the dropped row, got %+v", h)
	}
	ev := h.Events[0]
	if ev.Layer != "fig8" || ev.Cell != "Mcf/TSV3D" {
		t.Errorf("event = %+v, want layer fig8 cell Mcf/TSV3D", ev)
	}
	if ev.Cause == "" {
		t.Error("event carries no cause")
	}

	// The legacy entry point stays behaviour-compatible: same rows, no
	// error, just without the report.
	legacy, err := Fig8(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(rows) {
		t.Errorf("Fig8 and Fig8Health disagree: %d vs %d rows", len(legacy), len(rows))
	}

	// A fault-free source sweep reports a clean bill.
	clean, err := Fig6With(s, profiles, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, h, err = Fig8Health(clean); err != nil || h.Degraded {
		t.Errorf("clean sweep: err=%v degraded=%v", err, h.Degraded)
	}
}
