package experiments

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/multicore"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/warm"
)

// sampledOracleOptions returns sweep sizing small enough for a unit test
// but large enough that every cell crosses several snapshot-stride
// boundaries (stride = Interval/4 = 1000).
func sampledOracleOptions() RunOptions {
	return RunOptions{
		Warmup: 6_000, Measure: 24_000, Seed: 5,
		Sample:       true,
		SampleParams: uarch.SampleParams{Interval: 4_000, Warmup: 500, Unit: 1_000},
	}
}

// TestOracleFig6WarmCacheInvariant is the warm-state snapshot acceptance
// gate for the single-core sweep: with the snapshot cache enabled and
// disabled, at one and eight workers, on both kernels, every Run map and
// derived ratio of a sampled sweep must deep-equal. Runs carry the full
// Stats/HierStats/Energy of every cell, so this subsumes a per-cell
// comparison of everything the pipeline measures — including the
// repriced ExtraFetch/ExtraData sums the sampling estimator regresses on.
func TestOracleFig6WarmCacheInvariant(t *testing.T) {
	trace.ResetCache()
	warm.ResetCache()
	defer trace.ResetCache()
	defer warm.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf", "Gobmk")
	opt := sampledOracleOptions()

	var results []*Fig6Result
	for _, k := range []uarch.Kernel{uarch.KernelReference, uarch.KernelEvent} {
		for _, w := range []int{1, 8} {
			for _, warmOn := range []bool{false, true} {
				o := opt
				o.Kernel, o.Workers, o.WarmCache = k, w, warmOn
				f, err := Fig6With(s, profiles, o)
				if err != nil {
					t.Fatalf("kernel=%v workers=%d warm=%v: %v", k, w, warmOn, err)
				}
				results = append(results, f)
			}
		}
	}
	base := results[0]
	for i, f := range results[1:] {
		if !reflect.DeepEqual(base.Runs, f.Runs) {
			t.Errorf("Fig6 Runs diverge between variant 0 and %d", i+1)
		}
		if !reflect.DeepEqual(base.Speedup, f.Speedup) || !reflect.DeepEqual(base.NormEnergy, f.NormEnergy) {
			t.Errorf("Fig6 derived ratios diverge between variant 0 and %d", i+1)
		}
	}
	// The warm variants must actually have shared snapshots: the ladders
	// warmed instructions once and every reuse skipped a fast-forward
	// prefix.
	st := warm.Stats()
	if st.BuiltInstrs == 0 {
		t.Error("warm cache built no ladder checkpoints across the sampled sweeps")
	}
	if st.SkippedInstrs == 0 {
		t.Error("warm cache skipped no fast-forward instructions across the sweep cells")
	}
	if st.Hits == 0 {
		t.Error("warm cache saw no checkpoint hits across the sweep cells")
	}
}

// TestOracleWarmSnapshotNoRebuild is the poisoned-builder oracle: once a
// sweep has populated the snapshot cache, an identical sweep must be
// served entirely from snapshots — the ladder builders must never warm
// another instruction. The build hook panicking inside a cell would fail
// that cell (and the sweep), and the atomic counter gives a readable
// failure even if a build happens outside any cell.
func TestOracleWarmSnapshotNoRebuild(t *testing.T) {
	trace.ResetCache()
	warm.ResetCache()
	defer trace.ResetCache()
	defer warm.ResetCache()
	defer warm.SetBuildHook(nil)
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf")
	opt := sampledOracleOptions()
	opt.WarmCache = true

	first, err := Fig6With(s, profiles, opt)
	if err != nil {
		t.Fatal(err)
	}

	var rebuilds atomic.Uint64
	warm.SetBuildHook(func(id warm.Identity, from, to uint64) {
		rebuilds.Add(1)
		panic(fmt.Sprintf("warm builder re-ran for %s: [%d, %d)", id.Prof.Name, from, to))
	})
	second, err := Fig6With(s, profiles, opt)
	if err != nil {
		t.Fatalf("snapshot-served sweep failed: %v", err)
	}
	if n := rebuilds.Load(); n != 0 {
		t.Errorf("ladder builders warmed %d stretch(es) on a fully populated cache, want 0", n)
	}
	if !reflect.DeepEqual(first.Runs, second.Runs) {
		t.Error("snapshot-served sweep diverges from the sweep that built the snapshots")
	}
}

// TestOracleFig9WarmCacheInvariant is the multicore counterpart: one
// captured warmup per (profile, topology, geometry) identity, restored
// into every other design cell, must leave every Run map deep-equal to
// the uncached sweep at any worker count.
func TestOracleFig9WarmCacheInvariant(t *testing.T) {
	trace.ResetCache()
	warm.ResetCache()
	defer trace.ResetCache()
	defer warm.ResetCache()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Fft", "Barnes")
	opt := multicore.Options{TotalInstrs: 30_000, WarmupPerCore: 2_000, Phases: 2, Seed: 5, Sample: true}

	var results []*Fig9Result
	for _, k := range []uarch.Kernel{uarch.KernelReference, uarch.KernelEvent} {
		for _, w := range []int{1, 8} {
			for _, warmOn := range []bool{false, true} {
				o := opt
				o.Kernel, o.Workers, o.WarmCache = k, w, warmOn
				f, err := Fig9With(s, profiles, o)
				if err != nil {
					t.Fatalf("kernel=%v workers=%d warm=%v: %v", k, w, warmOn, err)
				}
				results = append(results, f)
			}
		}
	}
	base := results[0]
	for i, f := range results[1:] {
		if !reflect.DeepEqual(base.Runs, f.Runs) {
			t.Errorf("Fig9 Runs diverge between variant 0 and %d", i+1)
		}
		if !reflect.DeepEqual(base.Speedup, f.Speedup) || !reflect.DeepEqual(base.NormEnergy, f.NormEnergy) {
			t.Errorf("Fig9 derived ratios diverge between variant 0 and %d", i+1)
		}
	}
	if st := warm.Stats(); st.Hits == 0 && st.SkippedInstrs == 0 {
		t.Error("multicore warm cache skipped no warmups across the sweep cells")
	}
}
