package experiments

import (
	"vertical3d/internal/config"
	"vertical3d/internal/floorplan"
	"vertical3d/internal/thermal"
)

// This file is the single owner of the design → thermal-model mapping:
// which floorplan and Table 10 stack a design solves on, and how a folded
// design's block powers split across its two active layers. Figure 8, the
// thermalsim command and the thermal_analysis example all route through it,
// so the mapping cannot drift between the paper pipeline and the
// standalone tools.

// foldedBottomShare is the intra-block power partitioning of a folded
// design: each block spreads over both layers with the bottom layer
// carrying slightly more of the logic.
const foldedBottomShare = 0.55

// DesignStack maps a design to its floorplan and thermal stack. Folded
// reports whether the design stacks two active layers (every 3D variant)
// — callers partition block power across both layers exactly when it is
// set.
func DesignStack(d config.Design) (fp floorplan.Floorplan, stack []thermal.LayerSpec, folded bool, err error) {
	switch d {
	case config.Base:
		return floorplan.Core2D(), thermal.Stack2D(), false, nil
	case config.TSV3D:
		fp, err = floorplan.Folded(0.5)
		return fp, thermal.StackTSV3D(), true, err
	default: // all M3D variants
		fp, err = floorplan.Folded(0.5)
		return fp, thermal.StackM3D(), true, err
	}
}

// SolveDesignThermal solves a design's thermal model for per-block powers
// (watts, keyed by floorplan block name): the design's stack over its
// floorplan, with folded designs splitting each block
// foldedBottomShare/bottom. grid overrides the Nx×Ny solver resolution;
// <= 0 keeps thermal.DefaultParams' default. It returns the solve result
// and the total power actually placed on the grid.
func SolveDesignThermal(d config.Design, blocks map[string]float64, grid int) (thermal.Result, float64, error) {
	fp, stack, folded, err := DesignStack(d)
	if err != nil {
		return thermal.Result{}, 0, err
	}
	p := thermal.DefaultParams(fp.WidthM, fp.HeightM)
	if grid > 0 {
		p.Nx, p.Ny = grid, grid
	}

	var maps [][][]float64
	var watts float64
	if folded {
		bot := map[string]float64{}
		top := map[string]float64{}
		for k, v := range blocks {
			bot[k] = v * foldedBottomShare
			top[k] = v * (1 - foldedBottomShare)
		}
		mb, err := fp.PowerMap(bot, p.Nx, p.Ny)
		if err != nil {
			return thermal.Result{}, 0, err
		}
		mt, err := fp.PowerMap(top, p.Nx, p.Ny)
		if err != nil {
			return thermal.Result{}, 0, err
		}
		maps = [][][]float64{mb, mt}
		watts = thermal.TotalPower(mb) + thermal.TotalPower(mt)
	} else {
		m, err := fp.PowerMap(blocks, p.Nx, p.Ny)
		if err != nil {
			return thermal.Result{}, 0, err
		}
		maps = [][][]float64{m}
		watts = thermal.TotalPower(m)
	}
	res, err := thermal.Solve(stack, p, maps)
	if err != nil {
		return thermal.Result{}, 0, err
	}
	return res, watts, nil
}
