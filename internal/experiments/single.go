package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/guard"
	"vertical3d/internal/journal"
	"vertical3d/internal/mem"
	"vertical3d/internal/parallel"
	"vertical3d/internal/power"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/stats"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/warm"
	"vertical3d/internal/workload"
)

// RunOptions sizes the simulated runs.
type RunOptions struct {
	Warmup  uint64
	Measure uint64
	Seed    int64

	// Context, when non-nil, bounds the whole sweep: cancelling it stops
	// dispatching new cells (in-flight cells drain) — the graceful-shutdown
	// path of the command-line binaries. Nil means context.Background().
	Context context.Context

	// JournalDir enables crash-safe checkpointing: every completed cell is
	// appended to a write-ahead journal in this directory the moment it
	// finishes, and a re-run with the same directory and sizing merges the
	// journaled results bit-identically instead of re-executing them. Empty
	// disables journaling. See the journal package for the format and the
	// identity rules.
	JournalDir string

	// TaskTimeout bounds each cell attempt and SweepTimeout the whole
	// sweep; zero means unbounded. Retry re-runs transiently failed cells
	// (panics, timeouts) with jittered exponential backoff; the zero value
	// runs every cell exactly once. All three map directly onto the worker
	// pool's fields.
	TaskTimeout  time.Duration
	SweepTimeout time.Duration
	Retry        parallel.Retry

	// WatchdogGrace and WatchdogLog arm the pool's stuck-cell watchdog:
	// cells still running WatchdogGrace past their TaskTimeout are reported
	// to WatchdogLog once per attempt.
	WatchdogGrace time.Duration
	WatchdogLog   func(format string, args ...any)

	// StreamID is the trace stream id (the third trace.NewGenerator
	// argument, historically hardcoded to 0 here). It is explicit so
	// single-core studies can be decoupled from multicore per-core streams:
	// multicore core i draws stream StreamBase+i from the same seed, so a
	// single-core run at the default StreamID 0 replays exactly multicore
	// core 0's stream — plumb a distinct id when that collision matters.
	StreamID int

	// NoTraceCache disables the shared trace-recording cache and
	// regenerates the instruction stream inside every sweep cell, exactly
	// as the pipeline behaved before record-once/replay-many. Results are
	// bit-identical either way (see tracecache_oracle_test.go); the flag
	// exists for differential debugging and the BENCH_trace.json
	// comparison.
	NoTraceCache bool

	// Workers bounds the worker pool that fans out the sweep's
	// (benchmark × design) cells. 0 means parallel.DefaultWorkers().
	// Results are bit-identical at any worker count: every cell is an
	// independent simulation seeded only by (profile, design, Seed), and
	// base-relative ratios are computed in a second pass after the join.
	Workers int

	// KeepGoing completes the sweep even when individual cells fail or
	// panic: healthy cells are bit-identical to a fault-free run, failed
	// cells are recorded in the result's Errors map and rendered as ERR.
	// Without it the sweep fails fast on the lowest-index error.
	KeepGoing bool

	// CellHook, when non-nil, is invoked at the start of every
	// (benchmark × design) cell with the cell's coordinates. It exists as a
	// deterministic fault-injection seam for the chaos tests
	// (guard/faultinject); production callers leave it nil.
	CellHook func(bench, design string)

	// Kernel selects the core simulation kernel. The zero value is
	// uarch.KernelEvent (the fast event-driven kernel); the reference
	// scan kernel is available for differential debugging and produces
	// bit-identical results (see the kernel oracle tests).
	Kernel uarch.Kernel

	// Sample enables SMARTS-style interval sampling for single-core cells:
	// the warmup is fast-forwarded functionally (caches + branch predictor
	// only) and the measure phase alternates fast-forward / detailed-warm /
	// measure windows, with Stats and HierStats extrapolated from the
	// measured windows (see uarch.RunSampled). Sampled results approximate
	// full simulation — CPI error is bounded at ≤2% per profile by
	// sample_test.go — and carry a distinct journal identity, so sampled
	// and full sweeps can never resume from each other's journals.
	Sample bool

	// SampleParams sizes the sampling intervals when Sample is set. The
	// zero value means uarch.DefaultSampleParams().
	SampleParams uarch.SampleParams

	// WarmCache enables the warm-state snapshot cache for sampled cells:
	// the functional fast-forward of each (profile, seed, stream,
	// sample-params, geometry) identity is checkpointed once and every
	// other cell restores the checkpoint instead of re-warming (see
	// internal/warm). Results are bit-identical either way — the snapshot
	// oracle tests prove it — so the flag only trades memory for
	// fast-forward time. It is ignored without Sample, and implies
	// nothing when NoTraceCache is set (snapshots need replayer-backed
	// streams).
	WarmCache bool

	// Cache, when non-nil, adds the content-addressed result-cache tier in
	// front of the journal: each cell consults cache → journal → simulate,
	// concurrent identical cells coalesce onto one simulation, and results
	// stay bit-identical at any worker count (the cache stores and serves
	// the same canonical JSON the journal does). Nil — the default for the
	// one-shot command-line runs — skips the tier entirely; the m3dd
	// daemon installs a process-wide cache here so repeated sweeps are
	// O(1). See internal/resultcache.
	Cache *resultcache.Cache

	// SampleErrorBudget bounds the warm-phase oracle check of sampled
	// cells: when |warm CPI − measured CPI| / measured CPI exceeds the
	// budget, the cell falls back to full simulation and the downgrade is
	// recorded in the sweep's Health block. 0 means
	// DefaultSampleErrorBudget; negative disables the guard. The budget
	// joins the sampled journal identity, since it decides which cells'
	// results are sampled and which are exact.
	SampleErrorBudget float64

	// health collects degradation-ladder events while a sweep runs. It is
	// set by the sweep entry points (Fig6WithDesigns and friends); nil —
	// the zero value for direct runSingle-style callers — discards.
	health *healthRecorder
}

// sampleParams resolves the effective sampling geometry.
func (opt RunOptions) sampleParams() uarch.SampleParams {
	if opt.SampleParams == (uarch.SampleParams{}) {
		return uarch.DefaultSampleParams()
	}
	return opt.SampleParams
}

// sampleBudget resolves the effective oracle budget (0 = guard disabled).
func (opt RunOptions) sampleBudget() float64 {
	switch {
	case opt.SampleErrorBudget < 0:
		return 0
	case opt.SampleErrorBudget == 0:
		return DefaultSampleErrorBudget
	default:
		return opt.SampleErrorBudget
	}
}

// DefaultRunOptions returns the harness defaults.
func DefaultRunOptions() RunOptions {
	return RunOptions{Warmup: 80_000, Measure: 200_000, Seed: 42}
}

// QuickRunOptions returns small counts for unit tests.
func QuickRunOptions() RunOptions {
	return RunOptions{Warmup: 20_000, Measure: 60_000, Seed: 42}
}

// AppResult is one benchmark × design measurement.
type AppResult struct {
	Benchmark string
	Design    config.Design

	Seconds float64
	IPC     float64
	Stats   uarch.Stats
	Mem     mem.HierStats
	Energy  power.Breakdown
}

// Fig6Result holds the single-core performance study.
type Fig6Result struct {
	Suite *config.Suite
	// Runs[benchmark][design]
	Runs map[string]map[config.Design]AppResult
	// Speedup[benchmark][design] over Base; Energy normalised likewise.
	// Under KeepGoing, entries exist only for cells where both the cell and
	// the benchmark's Base cell succeeded.
	Speedup    map[string]map[config.Design]float64
	NormEnergy map[string]map[config.Design]float64
	Benchmarks []string
	// Designs is the sweep's design list in cell order.
	Designs []config.Design

	// Errors[benchmark][design] records failed cells of a KeepGoing sweep
	// (including recovered panics, as *parallel.PanicError). Empty for a
	// fault-free or fail-fast run.
	Errors map[string]map[config.Design]error

	// Journal reports the checkpoint journal's load/hit/append counters
	// when the sweep ran with RunOptions.JournalDir; zero otherwise. Hits
	// counts cells merged from a previous run instead of re-executed.
	Journal journal.Stats

	// Health is the sweep's degradation report: every rung of the
	// degrade-don't-die ladder taken while the sweep ran (journal
	// downgrades, trace-cache regenerations, sampled-cell fallbacks).
	// Degraded is false for a run that needed none.
	Health Health
}

// Err returns the first failed cell's error in sweep (benchmark-major,
// design-minor) order, or nil if every cell succeeded.
func (f *Fig6Result) Err() error {
	for _, b := range f.Benchmarks {
		for _, d := range f.Designs {
			if err := f.Errors[b][d]; err != nil {
				return err
			}
		}
	}
	return nil
}

// FailedCells counts the cells recorded in Errors.
func (f *Fig6Result) FailedCells() int {
	n := 0
	for _, m := range f.Errors {
		n += len(m)
	}
	return n
}

// traceSource returns the instruction source for one sweep cell: by
// default a replayer over the process-wide shared recording of the
// (profile, seed, stream) triple — recorded once, replayed by every design
// point — or a fresh generator when the cache is disabled. Both sources
// are bit-identical instruction for instruction.
func traceSource(prof trace.Profile, opt RunOptions) trace.Source {
	if opt.NoTraceCache {
		return trace.NewGenerator(prof, opt.Seed, opt.StreamID)
	}
	// Size the recording for the instructions a cell retires; squashed
	// wrong-path fetches consume more, which the recording's on-demand
	// extension absorbs.
	hint := int(min(opt.Warmup+opt.Measure, 1<<30))
	return trace.NewReplayer(trace.SharedRecording(prof, opt.Seed, opt.StreamID, hint))
}

// errSampleBudget marks a sampled cell whose warm-phase oracle check
// exceeded RunOptions.SampleErrorBudget; runSingle catches it and re-runs
// the cell under full simulation (the "sample" rung of the degradation
// ladder).
var errSampleBudget = errors.New("sample error budget exceeded")

// runSingle executes one benchmark on one configuration, routing to the
// sampled engine when RunOptions.Sample is set. A sampled cell that blows
// its oracle budget falls back to full simulation — slower but exact —
// and the downgrade is recorded on opt.health.
func runSingle(cfg config.Config, prof trace.Profile, opt RunOptions) (AppResult, error) {
	if !opt.Sample {
		return runSingleFull(cfg, prof, opt)
	}
	r, err := runSingleSampled(cfg, prof, opt)
	if errors.Is(err, errSampleBudget) {
		opt.health.add("sample", fmt.Sprintf("%s/%s", prof.Name, cfg.Design),
			"fell back to full simulation", err)
		return runSingleFull(cfg, prof, opt)
	}
	return r, err
}

// runSingleFull is the full-simulation path: detailed warmup, detailed
// measure, no extrapolation.
func runSingleFull(cfg config.Config, prof trace.Profile, opt RunOptions) (AppResult, error) {
	src := traceSource(prof, opt)
	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		return AppResult{}, err
	}
	c, err := uarch.NewCoreKernel(0, cfg, src, h, opt.Kernel)
	if err != nil {
		return AppResult{}, err
	}
	c.Run(opt.Warmup)
	s0 := c.Stats
	m0 := h.Stats()
	c.Run(opt.Warmup + opt.Measure)
	s1 := c.Stats
	m1 := h.Stats()

	st := s1
	st.Cycles -= s0.Cycles
	st.Instrs -= s0.Instrs
	st.RFReads -= s0.RFReads
	st.RFWrites -= s0.RFWrites
	st.RATLookups -= s0.RATLookups
	st.IQInserts -= s0.IQInserts
	st.IQWakeups -= s0.IQWakeups
	st.SQSearches -= s0.SQSearches
	st.ROBWrites -= s0.ROBWrites
	st.Branches -= s0.Branches
	st.Mispredicts -= s0.Mispredicts
	for i := range st.KindCount {
		st.KindCount[i] -= s0.KindCount[i]
	}
	hs := mem.HierStats{
		IL1:          diffCache(m1.IL1, m0.IL1),
		DL1:          diffCache(m1.DL1, m0.DL1),
		L2:           diffCache(m1.L2, m0.L2),
		L3:           diffCache(m1.L3, m0.L3),
		DRAMAccesses: m1.DRAMAccesses - m0.DRAMAccesses,
	}
	sec := float64(st.Cycles) / (cfg.FreqGHz * 1e9)
	energy := power.Estimate(cfg, st, hs, sec)
	if err := energy.Validate(); err != nil {
		return AppResult{}, fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, err)
	}
	return AppResult{
		Benchmark: prof.Name,
		Design:    cfg.Design,
		Seconds:   sec,
		IPC:       float64(st.Instrs) / float64(st.Cycles),
		Stats:     st,
		Mem:       hs,
		Energy:    energy,
	}, nil
}

func diffCache(a, b mem.CacheStats) mem.CacheStats {
	return mem.CacheStats{
		Accesses:   a.Accesses - b.Accesses,
		Misses:     a.Misses - b.Misses,
		Writebacks: a.Writebacks - b.Writebacks,
	}
}

// runSingleSampled is the sampled-mode counterpart of runSingle: warmup is
// fast-forwarded functionally, the measure phase runs under interval
// sampling, and the full-run Stats/HierStats are extrapolated from the
// measured windows. The hierarchy counters are snapshotted around each
// measured window via the RunSampled callback, so they cover exactly the
// cycles the core measurements cover.
func runSingleSampled(cfg config.Config, prof trace.Profile, opt RunOptions) (AppResult, error) {
	sp := opt.sampleParams()
	if err := sp.Validate(); err != nil {
		return AppResult{}, err
	}
	src := traceSource(prof, opt)
	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		return AppResult{}, err
	}
	c, err := uarch.NewCoreKernel(0, cfg, src, h, opt.Kernel)
	if err != nil {
		return AppResult{}, err
	}
	if opt.WarmCache && !opt.NoTraceCache {
		if rp, ok := src.(*trace.Replayer); ok {
			// Best-effort: a geometry that can't classify fills just keeps
			// its plain local fast-forward.
			_, _ = warm.Bind(c, rp, cfg, sp)
		}
	}
	// Functional warmup: caches and predictor only — the pipeline state a
	// detailed warmup would build is rebuilt by each interval's warm phase.
	c.FastForward(opt.Warmup)

	var hsum, hwin mem.HierStats
	res, err := c.RunSampled(opt.Measure, sp, func(begin bool) {
		if begin {
			hwin = h.Stats()
		} else {
			hsum = addHier(hsum, diffHier(h.Stats(), hwin))
		}
	})
	if err != nil {
		return AppResult{}, err
	}
	measured := res.MeasuredInstrs()
	if measured == 0 {
		return AppResult{}, fmt.Errorf("%s/%s: sampled run measured no instructions", prof.Name, cfg.Name)
	}
	// Oracle check: the detailed-warm phases replay the same interval
	// geometry as the measured windows, so a large CPI gap between them
	// means the sampling geometry has lost the workload's phase behaviour
	// and the extrapolation cannot be trusted.
	if b := opt.sampleBudget(); b > 0 {
		if dev := res.OracleDeviation(); dev > b {
			return AppResult{}, fmt.Errorf("%s/%s: %w: warm-phase CPI deviation %.3f > budget %.3f",
				prof.Name, cfg.Name, errSampleBudget, dev, b)
		}
	}
	st := res.Extrapolate(opt.Measure)
	hs := scaleHier(hsum, float64(opt.Measure)/float64(measured))
	sec := float64(st.Cycles) / (cfg.FreqGHz * 1e9)
	energy := power.Estimate(cfg, st, hs, sec)
	if err := energy.Validate(); err != nil {
		return AppResult{}, fmt.Errorf("%s/%s: %w", prof.Name, cfg.Name, err)
	}
	return AppResult{
		Benchmark: prof.Name,
		Design:    cfg.Design,
		Seconds:   sec,
		IPC:       float64(st.Instrs) / float64(st.Cycles),
		Stats:     st,
		Mem:       hs,
		Energy:    energy,
	}, nil
}

func addHier(a, b mem.HierStats) mem.HierStats {
	add := func(x, y mem.CacheStats) mem.CacheStats {
		return mem.CacheStats{
			Accesses:   x.Accesses + y.Accesses,
			Misses:     x.Misses + y.Misses,
			Writebacks: x.Writebacks + y.Writebacks,
		}
	}
	return mem.HierStats{
		IL1:          add(a.IL1, b.IL1),
		DL1:          add(a.DL1, b.DL1),
		L2:           add(a.L2, b.L2),
		L3:           add(a.L3, b.L3),
		DRAMAccesses: a.DRAMAccesses + b.DRAMAccesses,
	}
}

func diffHier(a, b mem.HierStats) mem.HierStats {
	return mem.HierStats{
		IL1:          diffCache(a.IL1, b.IL1),
		DL1:          diffCache(a.DL1, b.DL1),
		L2:           diffCache(a.L2, b.L2),
		L3:           diffCache(a.L3, b.L3),
		DRAMAccesses: a.DRAMAccesses - b.DRAMAccesses,
	}
}

func scaleHier(hs mem.HierStats, f float64) mem.HierStats {
	sc := func(v uint64) uint64 { return uint64(math.Round(float64(v) * f)) }
	scale := func(c mem.CacheStats) mem.CacheStats {
		return mem.CacheStats{
			Accesses:   sc(c.Accesses),
			Misses:     sc(c.Misses),
			Writebacks: sc(c.Writebacks),
		}
	}
	return mem.HierStats{
		IL1:          scale(hs.IL1),
		DL1:          scale(hs.DL1),
		L2:           scale(hs.L2),
		L3:           scale(hs.L3),
		DRAMAccesses: sc(hs.DRAMAccesses),
	}
}

// Fig6 runs every SPEC-like benchmark on every single-core design,
// producing the speedups of Figure 6 and the energies of Figure 7.
func Fig6(opt RunOptions) (*Fig6Result, error) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		return nil, err
	}
	return Fig6With(suite, workload.SPEC2006(), opt)
}

// Fig6With runs an explicit benchmark list against a prepared suite.
func Fig6With(suite *config.Suite, profiles []trace.Profile, opt RunOptions) (*Fig6Result, error) {
	return Fig6WithDesigns(suite, profiles, config.SingleCoreDesigns(), opt)
}

// Fig6WithDesigns runs an explicit benchmark × design sweep. Every cell is
// an independent simulation fanned out on the worker pool; the Speedup and
// NormEnergy ratios are computed in a second pass after the join, so the
// result never depends on the position of config.Base in the design list
// (the list must contain it) or on goroutine scheduling. With
// opt.JournalDir set, completed cells are checkpointed as they finish and
// a re-run resumes from them bit-identically — at any worker count and in
// any design order, since both are merge-neutral.
func Fig6WithDesigns(suite *config.Suite, profiles []trace.Profile, designs []config.Design, opt RunOptions) (*Fig6Result, error) {
	hasBase := false
	for _, d := range designs {
		if d == config.Base {
			hasBase = true
		}
	}
	if !hasBase {
		return nil, fmt.Errorf("fig6: design list must include config.Base for the normalisation pass")
	}

	// Pass 1: fan out every (benchmark × design) cell. Cell i is fully
	// determined by (profiles[i/len(designs)], designs[i%len(designs)],
	// opt.Seed), so collection by index is deterministic. Under KeepGoing
	// the sweep completes through cell failures and panics, recording them
	// per cell; otherwise the lowest-index error aborts the sweep.
	//
	// With a journal, each cell first looks up its checkpoint — a hit is
	// merged without touching the CellHook or the simulator — and each
	// freshly computed success is checkpointed before the cell returns.
	hr := &healthRecorder{}
	tw := watchTrace()
	ww := watchWarm()
	opt.health = hr
	jn := opt.openJournalHealth("fig6", hr)
	defer jn.Close()
	cr := cellRunner{
		cache: opt.Cache,
		key:   resultcache.Key{ID: opt.identity("fig6")},
		jn:    jn,
		hook:  opt.CellHook,
	}
	nd := len(designs)
	pool := opt.pool()
	task := func(_ context.Context, i int) (AppResult, error) {
		prof, d := profiles[i/nd], designs[i%nd]
		key := journal.CellKey(prof.Name, d.String(), suite.Configs[d], prof)
		r, err := runCell(cr, prof.Name, d.String(), key, func() (AppResult, error) {
			return runSingle(suite.Configs[d], prof, opt)
		})
		if err != nil {
			return AppResult{}, fmt.Errorf("fig6 %s/%s: %w", prof.Name, d, err)
		}
		return r, nil
	}
	var cells []AppResult
	var cellErrs []error
	if opt.KeepGoing {
		cells, cellErrs = parallel.MapPartial(opt.ctx(), pool, len(profiles)*nd, task)
	} else {
		var err error
		cells, err = parallel.Map(opt.ctx(), pool, len(profiles)*nd, task)
		if err != nil {
			return nil, err
		}
	}

	res := &Fig6Result{
		Suite:      suite,
		Runs:       map[string]map[config.Design]AppResult{},
		Speedup:    map[string]map[config.Design]float64{},
		NormEnergy: map[string]map[config.Design]float64{},
		Designs:    designs,
		Errors:     map[string]map[config.Design]error{},
	}
	for pi, prof := range profiles {
		res.Benchmarks = append(res.Benchmarks, prof.Name)
		res.Runs[prof.Name] = map[config.Design]AppResult{}
		for di, d := range designs {
			i := pi*nd + di
			if cellErrs != nil && cellErrs[i] != nil {
				if res.Errors[prof.Name] == nil {
					res.Errors[prof.Name] = map[config.Design]error{}
				}
				res.Errors[prof.Name][d] = cellErrs[i]
				continue
			}
			res.Runs[prof.Name][d] = cells[i]
		}
	}

	// Pass 2: base-relative ratios for every benchmark whose Base cell
	// succeeded, covering exactly the healthy cells.
	for _, prof := range profiles {
		res.Speedup[prof.Name] = map[config.Design]float64{}
		res.NormEnergy[prof.Name] = map[config.Design]float64{}
		if res.Errors[prof.Name][config.Base] != nil {
			continue
		}
		base := res.Runs[prof.Name][config.Base]
		baseSec, baseJ := base.Seconds, base.Energy.TotalJ()
		for _, d := range designs {
			if res.Errors[prof.Name][d] != nil {
				continue
			}
			r := res.Runs[prof.Name][d]
			res.Speedup[prof.Name][d] = baseSec / r.Seconds
			res.NormEnergy[prof.Name][d] = r.Energy.TotalJ() / baseJ
		}
	}
	res.Journal = jn.Stats()
	journalHealth(hr, jn)
	tw.harvest(hr)
	ww.harvest(hr)
	res.Health = hr.health()
	return res, nil
}

// AverageSpeedup returns the mean speedup of a design across the benchmarks
// whose cells succeeded (all of them, outside KeepGoing).
func (f *Fig6Result) AverageSpeedup(d config.Design) float64 {
	var xs []float64
	for _, b := range f.Benchmarks {
		if v, ok := f.Speedup[b][d]; ok {
			xs = append(xs, v)
		}
	}
	m, err := stats.Mean(xs)
	if err != nil {
		return 0
	}
	return m
}

// AverageNormEnergy returns the mean normalised energy of a design across
// the benchmarks whose cells succeeded.
func (f *Fig6Result) AverageNormEnergy(d config.Design) float64 {
	var xs []float64
	for _, b := range f.Benchmarks {
		if v, ok := f.NormEnergy[b][d]; ok {
			xs = append(xs, v)
		}
	}
	m, err := stats.Mean(xs)
	if err != nil {
		return 0
	}
	return m
}

// RenderFig6 writes the speedup matrix.
func RenderFig6(w io.Writer, f *Fig6Result) {
	renderMatrix(w, f, f.Speedup, "Speedup over Base")
}

// RenderFig7 writes the normalised-energy matrix.
func RenderFig7(w io.Writer, f *Fig6Result) {
	renderMatrix(w, f, f.NormEnergy, "Energy normalised to Base")
}

func renderMatrix(w io.Writer, f *Fig6Result, m map[string]map[config.Design]float64, title string) {
	designs := f.Designs
	if len(designs) == 0 {
		designs = config.SingleCoreDesigns()
	}
	fmt.Fprintln(w, title+":")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark")
	for _, d := range designs {
		fmt.Fprintf(tw, "\t%s", d)
	}
	fmt.Fprintln(tw)
	for _, b := range f.Benchmarks {
		fmt.Fprint(tw, b)
		for _, d := range designs {
			switch v, ok := m[b][d]; {
			case f.Errors[b][d] != nil:
				fmt.Fprint(tw, "\tERR")
			case !ok:
				// The cell ran, but its Base reference failed (KeepGoing).
				fmt.Fprint(tw, "\tn/a")
			default:
				fmt.Fprintf(tw, "\t%.2f", v)
			}
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "Average")
	for _, d := range designs {
		var xs []float64
		for _, b := range f.Benchmarks {
			if v, ok := m[b][d]; ok {
				xs = append(xs, v)
			}
		}
		mean, err := stats.Mean(xs)
		if err != nil {
			fmt.Fprint(tw, "\tn/a")
		} else {
			fmt.Fprintf(tw, "\t%.2f", mean)
		}
	}
	fmt.Fprintln(tw)
	tw.Flush()
	renderCellErrors(w, f.FailedCells(), func(emit func(string, error)) {
		for _, b := range f.Benchmarks {
			for _, d := range designs {
				if err := f.Errors[b][d]; err != nil {
					emit(fmt.Sprintf("%s/%s", b, d), err)
				}
			}
		}
	})
}

// renderCellErrors appends a failed-cell summary below a table when a
// KeepGoing sweep recorded errors. Each line is prefixed with the cell's
// failure class (guard.Classify), so a panic storm, a deadline overrun and
// an operator interrupt read differently at a glance.
func renderCellErrors(w io.Writer, n int, visit func(emit func(string, error))) {
	if n == 0 {
		return
	}
	fmt.Fprintf(w, "%d failed cell(s):\n", n)
	visit(func(cell string, err error) {
		fmt.Fprintf(w, "  %s: [%s] %v\n", cell, guard.Classify(err), err)
	})
}

// Fig8Row is one benchmark's peak temperatures.
type Fig8Row struct {
	Benchmark string
	PeakC     map[config.Design]float64
	PowerW    map[config.Design]float64
}

// Fig8 computes peak temperatures for Base, TSV3D and M3D-Het using the
// Figure 6 runs' power maps over the three thermal stacks. Benchmarks with
// failed source cells (KeepGoing sweeps) are dropped from the table; use
// Fig8Health to see which, and why.
func Fig8(f *Fig6Result) ([]Fig8Row, error) {
	rows, _, err := Fig8Health(f)
	return rows, err
}

// Fig8Health is Fig8 on the degradation ladder. The thermal comparison
// needs all three designs of a benchmark, so a KeepGoing source sweep that
// lost cells costs whole rows; instead of dropping them silently, every
// failed source cell behind a dropped row is recorded as a "fig8"
// DegradationEvent in the returned Health block.
func Fig8Health(f *Fig6Result) ([]Fig8Row, Health, error) {
	designs := []config.Design{config.Base, config.TSV3D, config.M3DHet}
	hr := &healthRecorder{}
	var out []Fig8Row
	for _, b := range f.Benchmarks {
		skip := false
		for _, d := range designs {
			if err := f.Errors[b][d]; err != nil {
				skip = true
				hr.add("fig8", fmt.Sprintf("%s/%s", b, d),
					"dropped the benchmark's thermal row (source cell failed in the Fig6 sweep)", err)
			}
		}
		if skip {
			continue
		}
		row := Fig8Row{Benchmark: b, PeakC: map[config.Design]float64{}, PowerW: map[config.Design]float64{}}
		for _, d := range designs {
			run := f.Runs[b][d]
			cfg := f.Suite.Configs[d]
			blocks := power.BlockPowers(cfg, run.Stats, run.Mem, run.Seconds)
			res, watts, err := SolveDesignThermal(d, blocks, 0)
			if err != nil {
				return nil, Health{}, fmt.Errorf("fig8 %s/%s: %w", b, d, err)
			}
			row.PeakC[d] = res.PeakC
			row.PowerW[d] = watts
		}
		out = append(out, row)
	}
	return out, hr.health(), nil
}

// RenderFig8 writes the peak-temperature table.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tBase °C (W)\tTSV3D °C (W)\tM3D-Het °C (W)")
	var dBase, dTSV, dHet []float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f (%.1f)\t%.1f (%.1f)\t%.1f (%.1f)\n", r.Benchmark,
			r.PeakC[config.Base], r.PowerW[config.Base],
			r.PeakC[config.TSV3D], r.PowerW[config.TSV3D],
			r.PeakC[config.M3DHet], r.PowerW[config.M3DHet])
		dBase = append(dBase, r.PeakC[config.Base])
		dTSV = append(dTSV, r.PeakC[config.TSV3D])
		dHet = append(dHet, r.PeakC[config.M3DHet])
	}
	tw.Flush()
	mb, _ := stats.Mean(dBase)
	mt, _ := stats.Mean(dTSV)
	mh, _ := stats.Mean(dHet)
	fmt.Fprintf(w, "Average peak: Base %.1f°C, TSV3D %.1f°C (+%.1f), M3D-Het %.1f°C (+%.1f)\n",
		mb, mt, mt-mb, mh, mh-mb)
	fmt.Fprintf(w, "(paper: M3D-Het ≈ +5°C over Base on average, TSV3D ≈ +30°C, exceeding Tjmax≈100°C for some apps)\n")
}
