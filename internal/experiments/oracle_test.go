package experiments

import (
	"reflect"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/multicore"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/workload"
)

func oracleProfiles(t *testing.T, names ...string) []trace.Profile {
	t.Helper()
	ps := make([]trace.Profile, 0, len(names))
	for _, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

// TestOracleFig6KernelAndWorkersInvariant runs the single-core sweep on both
// kernels at one and eight workers and demands deep-equal results — the
// ISSUE acceptance gate. Run maps carry every stat the kernels produce, so
// this subsumes the per-cell Stats/HierStats comparison.
func TestOracleFig6KernelAndWorkersInvariant(t *testing.T) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Mcf", "Hmmer", "Gobmk")
	opt := RunOptions{Warmup: 4_000, Measure: 15_000, Seed: 5}

	var results []*Fig6Result
	for _, k := range []uarch.Kernel{uarch.KernelReference, uarch.KernelEvent} {
		for _, w := range []int{1, 8} {
			o := opt
			o.Kernel, o.Workers = k, w
			f, err := Fig6With(s, profiles, o)
			if err != nil {
				t.Fatalf("kernel=%v workers=%d: %v", k, w, err)
			}
			results = append(results, f)
		}
	}
	base := results[0]
	for i, f := range results[1:] {
		if !reflect.DeepEqual(base.Runs, f.Runs) {
			t.Errorf("Fig6 Runs diverge between variant 0 and %d", i+1)
		}
		if !reflect.DeepEqual(base.Speedup, f.Speedup) || !reflect.DeepEqual(base.NormEnergy, f.NormEnergy) {
			t.Errorf("Fig6 derived ratios diverge between variant 0 and %d", i+1)
		}
	}
}

// TestOracleFig9KernelAndWorkersInvariant is the multicore counterpart.
func TestOracleFig9KernelAndWorkersInvariant(t *testing.T) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	profiles := oracleProfiles(t, "Fft", "Barnes")
	opt := multicore.Options{TotalInstrs: 30_000, WarmupPerCore: 2_000, Phases: 2, Seed: 5}

	var results []*Fig9Result
	for _, k := range []uarch.Kernel{uarch.KernelReference, uarch.KernelEvent} {
		for _, w := range []int{1, 8} {
			o := opt
			o.Kernel, o.Workers = k, w
			f, err := Fig9With(s, profiles, o)
			if err != nil {
				t.Fatalf("kernel=%v workers=%d: %v", k, w, err)
			}
			results = append(results, f)
		}
	}
	base := results[0]
	for i, f := range results[1:] {
		if !reflect.DeepEqual(base.Runs, f.Runs) {
			t.Errorf("Fig9 Runs diverge between variant 0 and %d", i+1)
		}
		if !reflect.DeepEqual(base.Speedup, f.Speedup) || !reflect.DeepEqual(base.NormEnergy, f.NormEnergy) {
			t.Errorf("Fig9 derived ratios diverge between variant 0 and %d", i+1)
		}
	}
}
