package experiments

// Determinism contract of the parallel sweeps: results depend only on
// (profile, design, seed) — never on the worker count, the scheduling
// order, or the position of the base design in the design list. These
// tests pin all three properties.

import (
	"reflect"
	"strings"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/multicore"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

// TestFig6DeterministicAcrossWorkers runs the quick single-core sweep with
// one worker and with eight and requires bit-identical results.
func TestFig6DeterministicAcrossWorkers(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Hmmer", "Mcf"})
	run := func(workers int) *Fig6Result {
		opt := QuickRunOptions()
		opt.Workers = workers
		f, err := Fig6With(suite, list, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return f
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Error("Fig6 Runs differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a.Speedup, b.Speedup) {
		t.Error("Fig6 Speedup differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a.NormEnergy, b.NormEnergy) {
		t.Error("Fig6 NormEnergy differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a.Benchmarks, b.Benchmarks) {
		t.Error("Fig6 benchmark order differs between 1 and 8 workers")
	}
}

// TestFig9DeterministicAcrossWorkers is the multicore counterpart.
func TestFig9DeterministicAcrossWorkers(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Blackscholes"})
	run := func(workers int) *Fig9Result {
		opt := multicore.Options{TotalInstrs: 40_000, WarmupPerCore: 3_000, Phases: 2, Seed: 7, Workers: workers}
		f, err := Fig9With(suite, list, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return f
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Error("Fig9 Runs differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a.Speedup, b.Speedup) {
		t.Error("Fig9 Speedup differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(a.NormEnergy, b.NormEnergy) {
		t.Error("Fig9 NormEnergy differs between 1 and 8 workers")
	}
}

// TestFig6ShuffledDesignOrder is the regression test for the base-ratio
// ordering hazard: with the old single-pass loop, any design evaluated
// before config.Base divided by a zero baseSec/baseJ. The two-pass join
// must give identical ratios no matter where Base sits in the list.
func TestFig6ShuffledDesignOrder(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Gobmk"})
	opt := QuickRunOptions()
	ref, err := Fig6With(suite, list, opt) // plot order: Base first
	if err != nil {
		t.Fatal(err)
	}
	// Base dead last, the rest reversed.
	shuffled := []config.Design{config.M3DHetAgg, config.M3DHet, config.M3DHetNaive, config.M3DIso, config.TSV3D, config.Base}
	got, err := Fig6WithDesigns(suite, list, shuffled, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range shuffled {
		if ref.Speedup["Gobmk"][d] != got.Speedup["Gobmk"][d] {
			t.Errorf("%s: speedup %.6f (plot order) != %.6f (base last)", d, ref.Speedup["Gobmk"][d], got.Speedup["Gobmk"][d])
		}
		if ref.NormEnergy["Gobmk"][d] != got.NormEnergy["Gobmk"][d] {
			t.Errorf("%s: norm energy %.6f (plot order) != %.6f (base last)", d, ref.NormEnergy["Gobmk"][d], got.NormEnergy["Gobmk"][d])
		}
	}
	if got.Speedup["Gobmk"][config.Base] != 1.0 {
		t.Errorf("Base speedup must be exactly 1.0 with Base last, got %v", got.Speedup["Gobmk"][config.Base])
	}

	// A design list without Base cannot be normalised and must fail loudly
	// instead of dividing by zero.
	if _, err := Fig6WithDesigns(suite, list, []config.Design{config.TSV3D, config.M3DHet}, opt); err == nil {
		t.Error("Fig6WithDesigns must reject a design list without config.Base")
	} else if !strings.Contains(err.Error(), "config.Base") {
		t.Errorf("error should name config.Base, got: %v", err)
	}
}

// TestFig9ShuffledDesignOrder pins the same contract for the multicore sweep.
func TestFig9ShuffledDesignOrder(t *testing.T) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	list := workloadSubset(t, []string{"Canneal"})
	opt := multicore.Options{TotalInstrs: 40_000, WarmupPerCore: 3_000, Phases: 2, Seed: 7}
	ref, err := Fig9With(suite, list, opt)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []config.MulticoreDesign{config.MCHet2X, config.MCHetW, config.MCHet, config.MCTSV3D, config.MCBase}
	got, err := Fig9WithDesigns(suite, list, shuffled, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range shuffled {
		if ref.Speedup["Canneal"][d] != got.Speedup["Canneal"][d] {
			t.Errorf("%s: speedup %.6f (plot order) != %.6f (base last)", d, ref.Speedup["Canneal"][d], got.Speedup["Canneal"][d])
		}
		if ref.NormEnergy["Canneal"][d] != got.NormEnergy["Canneal"][d] {
			t.Errorf("%s: norm energy %.6f (plot order) != %.6f (base last)", d, ref.NormEnergy["Canneal"][d], got.NormEnergy["Canneal"][d])
		}
	}
	if _, err := Fig9WithDesigns(suite, list, []config.MulticoreDesign{config.MCHet}, opt); err == nil {
		t.Error("Fig9WithDesigns must reject a design list without config.MCBase")
	}
}

// TestStrategyTableCacheHits runs a partition table twice and requires the
// second pass to be served (at least partly) from the SRAM model cache with
// identical rows.
func TestStrategyTableCacheHits(t *testing.T) {
	sram.ResetModelCache()
	first, err := StrategyTable(sram.BitPart)
	if err != nil {
		t.Fatal(err)
	}
	second, err := StrategyTable(sram.BitPart)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("StrategyTable rows changed between cached runs")
	}
	st := sram.CacheStats()
	if st.Hits == 0 {
		t.Errorf("second StrategyTable run should hit the model cache: %+v", st)
	}
	if st.Misses == 0 {
		t.Errorf("first StrategyTable run should miss the empty cache: %+v", st)
	}
}
