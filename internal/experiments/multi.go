package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/journal"
	"vertical3d/internal/multicore"
	"vertical3d/internal/parallel"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/stats"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// Fig9Result holds the multicore study of Figures 9 and 10.
type Fig9Result struct {
	Suite   *config.Suite
	Configs map[config.MulticoreDesign]config.MCConfig
	Runs    map[string]map[config.MulticoreDesign]multicore.RunResult
	// Speedup and NormEnergy carry entries only for cells where both the
	// cell and the benchmark's MCBase cell succeeded (all of them, outside
	// KeepGoing).
	Speedup    map[string]map[config.MulticoreDesign]float64
	NormEnergy map[string]map[config.MulticoreDesign]float64
	Benchmarks []string
	// Designs is the sweep's design list in cell order.
	Designs []config.MulticoreDesign

	// Errors[benchmark][design] records failed cells of a KeepGoing sweep
	// (including recovered panics, as *parallel.PanicError).
	Errors map[string]map[config.MulticoreDesign]error

	// Journal reports the checkpoint journal's load/hit/append counters
	// when the sweep ran with Options.JournalDir; zero otherwise. Hits
	// counts cells merged from a previous run instead of re-executed.
	Journal journal.Stats

	// Health is the sweep's degradation report (see Fig6Result.Health).
	Health Health
}

// Err returns the first failed cell's error in sweep (benchmark-major,
// design-minor) order, or nil if every cell succeeded.
func (f *Fig9Result) Err() error {
	for _, b := range f.Benchmarks {
		for _, d := range f.Designs {
			if err := f.Errors[b][d]; err != nil {
				return err
			}
		}
	}
	return nil
}

// FailedCells counts the cells recorded in Errors.
func (f *Fig9Result) FailedCells() int {
	n := 0
	for _, m := range f.Errors {
		n += len(m)
	}
	return n
}

// Fig9 runs every parallel benchmark on every multicore design.
func Fig9(opt multicore.Options) (*Fig9Result, error) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		return nil, err
	}
	return Fig9With(suite, workload.Parallel(), opt)
}

// Fig9With runs an explicit profile list.
func Fig9With(suite *config.Suite, profiles []trace.Profile, opt multicore.Options) (*Fig9Result, error) {
	return Fig9WithDesigns(suite, profiles, config.MulticoreDesigns(), opt)
}

// Fig9WithDesigns runs an explicit benchmark × multicore-design sweep.
// Like Fig6WithDesigns, every cell runs as an independent task on the
// worker pool and the base-relative ratios are a second pass after the
// join, so config.MCBase may appear anywhere in the design list (it must
// appear) and results are bit-identical at any opt.Workers — and, via
// opt.Kernel, at either simulation kernel (see the kernel oracle tests).
// With opt.JournalDir set, completed cells are checkpointed as they finish
// and a re-run resumes from them bit-identically.
func Fig9WithDesigns(suite *config.Suite, profiles []trace.Profile, designs []config.MulticoreDesign, opt multicore.Options) (*Fig9Result, error) {
	hasBase := false
	for _, d := range designs {
		if d == config.MCBase {
			hasBase = true
		}
	}
	if !hasBase {
		return nil, fmt.Errorf("fig9: design list must include config.MCBase for the normalisation pass")
	}

	mcs := config.DeriveMulticore(suite)
	hr := &healthRecorder{}
	tws := watchTrace()
	ww := watchWarm()
	jn := mcJournalHealth(opt, "fig9", hr)
	defer jn.Close()
	cr := cellRunner{
		cache: opt.Cache,
		key:   resultcache.Key{ID: mcIdentity(opt, "fig9")},
		jn:    jn,
		hook:  opt.CellHook,
	}
	nd := len(designs)
	pool := mcPool(opt)
	task := func(_ context.Context, i int) (multicore.RunResult, error) {
		prof, d := profiles[i/nd], designs[i%nd]
		key := journal.CellKey(prof.Name, d.String(), mcs[d], prof)
		r, err := runCell(cr, prof.Name, d.String(), key, func() (multicore.RunResult, error) {
			return multicore.Run(mcs[d], prof, opt)
		})
		if err != nil {
			return multicore.RunResult{}, fmt.Errorf("fig9 %s/%s: %w", prof.Name, d, err)
		}
		return r, nil
	}
	var cells []multicore.RunResult
	var cellErrs []error
	if opt.KeepGoing {
		cells, cellErrs = parallel.MapPartial(mcCtx(opt), pool, len(profiles)*nd, task)
	} else {
		var err error
		cells, err = parallel.Map(mcCtx(opt), pool, len(profiles)*nd, task)
		if err != nil {
			return nil, err
		}
	}

	res := &Fig9Result{
		Suite:      suite,
		Configs:    mcs,
		Runs:       map[string]map[config.MulticoreDesign]multicore.RunResult{},
		Speedup:    map[string]map[config.MulticoreDesign]float64{},
		NormEnergy: map[string]map[config.MulticoreDesign]float64{},
		Designs:    designs,
		Errors:     map[string]map[config.MulticoreDesign]error{},
	}
	for pi, prof := range profiles {
		res.Benchmarks = append(res.Benchmarks, prof.Name)
		res.Runs[prof.Name] = map[config.MulticoreDesign]multicore.RunResult{}
		for di, d := range designs {
			i := pi*nd + di
			if cellErrs != nil && cellErrs[i] != nil {
				if res.Errors[prof.Name] == nil {
					res.Errors[prof.Name] = map[config.MulticoreDesign]error{}
				}
				res.Errors[prof.Name][d] = cellErrs[i]
				continue
			}
			res.Runs[prof.Name][d] = cells[i]
		}
	}
	for _, prof := range profiles {
		res.Speedup[prof.Name] = map[config.MulticoreDesign]float64{}
		res.NormEnergy[prof.Name] = map[config.MulticoreDesign]float64{}
		if res.Errors[prof.Name][config.MCBase] != nil {
			continue
		}
		base := res.Runs[prof.Name][config.MCBase]
		baseSec, baseJ := base.Seconds, base.Energy.TotalJ()
		for _, d := range designs {
			if res.Errors[prof.Name][d] != nil {
				continue
			}
			r := res.Runs[prof.Name][d]
			res.Speedup[prof.Name][d] = baseSec / r.Seconds
			res.NormEnergy[prof.Name][d] = r.Energy.TotalJ() / baseJ
		}
	}
	res.Journal = jn.Stats()
	journalHealth(hr, jn)
	tws.harvest(hr)
	ww.harvest(hr)
	res.Health = hr.health()
	return res, nil
}

// AverageSpeedup returns the mean speedup of a multicore design across the
// benchmarks whose cells succeeded (all of them, outside KeepGoing).
func (f *Fig9Result) AverageSpeedup(d config.MulticoreDesign) float64 {
	var xs []float64
	for _, b := range f.Benchmarks {
		if v, ok := f.Speedup[b][d]; ok {
			xs = append(xs, v)
		}
	}
	m, err := stats.Mean(xs)
	if err != nil {
		return 0
	}
	return m
}

// AverageNormEnergy returns the mean normalised energy of a design across
// the benchmarks whose cells succeeded.
func (f *Fig9Result) AverageNormEnergy(d config.MulticoreDesign) float64 {
	var xs []float64
	for _, b := range f.Benchmarks {
		if v, ok := f.NormEnergy[b][d]; ok {
			xs = append(xs, v)
		}
	}
	m, err := stats.Mean(xs)
	if err != nil {
		return 0
	}
	return m
}

// AveragePowerRatio reports a design's average power relative to MCBase —
// the iso-power check for M3D-Het-2X (Section 7.2.2).
func (f *Fig9Result) AveragePowerRatio(d config.MulticoreDesign) float64 {
	var xs []float64
	for _, b := range f.Benchmarks {
		if f.Errors[b][d] != nil || f.Errors[b][config.MCBase] != nil {
			continue
		}
		base := f.Runs[b][config.MCBase].Energy.AvgWatts()
		if base <= 0 {
			continue
		}
		xs = append(xs, f.Runs[b][d].Energy.AvgWatts()/base)
	}
	m, err := stats.Mean(xs)
	if err != nil {
		return 0
	}
	return m
}

// RenderFig9 writes the multicore speedups.
func RenderFig9(w io.Writer, f *Fig9Result) {
	renderMCMatrix(w, f, f.Speedup, "Multicore speedup over 4-core Base")
}

// RenderFig10 writes the multicore energies.
func RenderFig10(w io.Writer, f *Fig9Result) {
	renderMCMatrix(w, f, f.NormEnergy, "Multicore energy normalised to 4-core Base")
}

func renderMCMatrix(w io.Writer, f *Fig9Result, m map[string]map[config.MulticoreDesign]float64, title string) {
	designs := f.Designs
	if len(designs) == 0 {
		designs = config.MulticoreDesigns()
	}
	fmt.Fprintln(w, title+":")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark")
	for _, d := range designs {
		fmt.Fprintf(tw, "\t%s", d)
	}
	fmt.Fprintln(tw)
	for _, b := range f.Benchmarks {
		fmt.Fprint(tw, b)
		for _, d := range designs {
			switch v, ok := m[b][d]; {
			case f.Errors[b][d] != nil:
				fmt.Fprint(tw, "\tERR")
			case !ok:
				fmt.Fprint(tw, "\tn/a")
			default:
				fmt.Fprintf(tw, "\t%.2f", v)
			}
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "Average")
	for _, d := range designs {
		var xs []float64
		for _, b := range f.Benchmarks {
			if v, ok := m[b][d]; ok {
				xs = append(xs, v)
			}
		}
		mean, err := stats.Mean(xs)
		if err != nil {
			fmt.Fprint(tw, "\tn/a")
		} else {
			fmt.Fprintf(tw, "\t%.2f", mean)
		}
	}
	fmt.Fprintln(tw)
	tw.Flush()
	renderCellErrors(w, f.FailedCells(), func(emit func(string, error)) {
		for _, b := range f.Benchmarks {
			for _, d := range designs {
				if err := f.Errors[b][d]; err != nil {
					emit(fmt.Sprintf("%s/%s", b, d), err)
				}
			}
		}
	})
}
