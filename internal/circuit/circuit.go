// Package circuit provides gate-level delay and energy building blocks used
// by the SRAM and logic-stage models: the method of logical effort for sizing
// multi-stage drivers, decoder chains, and simple energy bookkeeping.
package circuit

import (
	"math"

	"vertical3d/internal/guard"
	"vertical3d/internal/tech"
)

// Gate describes one logic stage in the logical-effort framework.
type Gate struct {
	// LogicalEffort g: 1 for an inverter, 4/3 for NAND2, 5/3 for NOR2, ...
	LogicalEffort float64
	// ParasiticDelay p in units of tau: 1 for an inverter, ~2 for NAND2.
	ParasiticDelay float64
	// Size is the input capacitance in multiples of a minimum inverter.
	Size float64
}

// Inverter returns an inverter gate of the given size.
func Inverter(size float64) Gate {
	return Gate{LogicalEffort: 1, ParasiticDelay: 1, Size: size}
}

// NAND2 returns a 2-input NAND of the given size.
func NAND2(size float64) Gate {
	return Gate{LogicalEffort: 4.0 / 3.0, ParasiticDelay: 2, Size: size}
}

// NOR2 returns a 2-input NOR of the given size.
func NOR2(size float64) Gate {
	return Gate{LogicalEffort: 5.0 / 3.0, ParasiticDelay: 2, Size: size}
}

// StageDelay returns the delay of this gate driving a load of cload farads
// at the given node: tau * (p + g*h) with h the electrical effort.
func (g Gate) StageDelay(n *tech.Node, cload float64) float64 {
	cin := g.Size * n.CInv
	h := cload / cin
	return n.Tau * (g.ParasiticDelay + g.LogicalEffort*h)
}

// DriveResistance returns the effective output resistance of the gate.
func (g Gate) DriveResistance(n *tech.Node) float64 {
	return n.RInv * g.LogicalEffort / g.Size
}

// InputCap returns the gate input capacitance in farads.
func (g Gate) InputCap(n *tech.Node) float64 { return g.Size * n.CInv }

// Chain is a sequence of gates sized to drive a final load.
type Chain struct {
	Gates []Gate
	// Delay is the total chain delay in seconds (filled by SizeChain).
	Delay float64
	// Energy is the switching energy of all internal nodes plus final load
	// for one transition pair (filled by SizeChain).
	Energy float64
}

// SizeChain builds an optimally sized driver chain from an input capacitance
// cin (multiples of minimum inverter) to a final load cload (farads), using
// inverters only. It returns the chain with delay and energy filled in.
func SizeChain(n *tech.Node, cin float64, cload float64) (Chain, error) {
	c := guard.New("circuit.SizeChain")
	c.Check(n != nil, "node", "must not be nil")
	c.Positive("cin", cin)
	c.Positive("cload", cload)
	if err := c.Err(); err != nil {
		return Chain{}, err
	}
	cinF := cin * n.CInv
	f := cload / cinF // total electrical effort
	if f < 1 {
		f = 1
	}
	// Optimal stage effort ≈ 4; number of stages rounds to at least 1.
	stages := int(math.Max(1, math.Round(math.Log(f)/math.Log(4))))
	per := math.Pow(f, 1/float64(stages))

	gates := make([]Gate, stages)
	size := cin
	var delay, energy float64
	for i := 0; i < stages; i++ {
		gates[i] = Inverter(size)
		var next float64
		if i == stages-1 {
			next = cload
		} else {
			size *= per
			next = size * n.CInv
		}
		delay += gates[i].StageDelay(n, next)
		energy += next * n.Vdd * n.Vdd
	}
	return Chain{Gates: gates, Delay: delay, Energy: energy}, nil
}

// DecoderDelay models an N-to-2^N row decoder as a chain of predecode NANDs
// and a final wordline-driver NOR, following the standard CACTI structure.
// fanIn is the number of address bits; cload is the wordline driver input
// load in farads. Returns delay in seconds and energy per access in joules.
func DecoderDelay(n *tech.Node, addressBits int, cload float64) (float64, float64, error) {
	c := guard.New("circuit.DecoderDelay")
	c.Check(n != nil, "node", "must not be nil")
	c.PositiveInt("addressBits", addressBits)
	c.Positive("cload", cload)
	if err := c.Err(); err != nil {
		return 0, 0, err
	}
	// Predecode in groups of 3 bits (3-to-8 predecoders).
	levels := (addressBits + 2) / 3
	if levels < 1 {
		levels = 1
	}
	var delay, energy float64
	load := cload
	for i := levels - 1; i >= 0; i-- {
		g := NAND2(math.Max(1, load/(4*n.CInv)))
		delay += g.StageDelay(n, load)
		energy += load * n.Vdd * n.Vdd
		load = g.InputCap(n)
	}
	return delay, energy, nil
}

// Horowitz returns the Horowitz ramp-input delay approximation used by CACTI:
// the delay of a stage with intrinsic RC time constant tf, input rise time
// inputRamp, and switching threshold vth (fraction of Vdd).
func Horowitz(inputRamp, tf, vth float64) float64 {
	if inputRamp <= 0 {
		return tf * math.Sqrt(2*vth) // step input limit approximation
	}
	a := inputRamp / tf
	return tf * math.Sqrt(math.Log(vth)*math.Log(vth)+2*a*(1-vth))
}

// SwitchEnergy returns CV² energy at the node supply.
func SwitchEnergy(n *tech.Node, c float64) float64 {
	return c * n.Vdd * n.Vdd
}
