package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"vertical3d/internal/tech"
)

func TestInverterFO4(t *testing.T) {
	n := tech.N22()
	inv := Inverter(1)
	// FO4: an inverter driving 4 copies of itself → tau*(1 + 4).
	got := inv.StageDelay(n, 4*n.CInv)
	want := n.FO4()
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("FO4 delay = %v, want %v", got, want)
	}
}

func TestGateEfforts(t *testing.T) {
	n := tech.N22()
	load := 8 * n.CInv
	dInv := Inverter(1).StageDelay(n, load)
	dNand := NAND2(1).StageDelay(n, load)
	dNor := NOR2(1).StageDelay(n, load)
	if !(dInv < dNand && dNand < dNor) {
		t.Errorf("expected inv < nand2 < nor2 at equal size/load: %v %v %v", dInv, dNand, dNor)
	}
}

func TestDriveResistanceScalesInversely(t *testing.T) {
	n := tech.N22()
	r1 := Inverter(1).DriveResistance(n)
	r4 := Inverter(4).DriveResistance(n)
	if math.Abs(r1/4-r4)/r4 > 1e-9 {
		t.Errorf("4x inverter should have 1/4 drive resistance: %v vs %v", r1, r4)
	}
}

func TestSizeChainMatchesOptimalEffort(t *testing.T) {
	n := tech.N22()
	// Driving 256x the input cap should take ~4 stages of effort 4.
	ch, err := SizeChain(n, 1, 256*n.CInv)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Gates) < 3 || len(ch.Gates) > 5 {
		t.Errorf("256x fanout should use ≈4 stages, got %d", len(ch.Gates))
	}
	if ch.Delay <= 0 || ch.Energy <= 0 {
		t.Error("chain delay and energy must be positive")
	}
}

func TestSizeChainSingleStageForSmallLoad(t *testing.T) {
	n := tech.N22()
	ch, err := SizeChain(n, 1, 2*n.CInv)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Gates) != 1 {
		t.Errorf("small load should need one stage, got %d", len(ch.Gates))
	}
}

func TestSizeChainErrors(t *testing.T) {
	n := tech.N22()
	if _, err := SizeChain(n, 0, 1e-15); err == nil {
		t.Error("expected error for zero input cap")
	}
	if _, err := SizeChain(n, 1, 0); err == nil {
		t.Error("expected error for zero load")
	}
}

func TestDecoderDelayGrowsWithBits(t *testing.T) {
	n := tech.N22()
	load := 50 * n.CInv
	d4, e4, err := DecoderDelay(n, 4, load)
	if err != nil {
		t.Fatal(err)
	}
	d8, e8, err := DecoderDelay(n, 8, load)
	if err != nil {
		t.Fatal(err)
	}
	if d8 <= d4 {
		t.Errorf("8-bit decoder should be slower than 4-bit: %v vs %v", d8, d4)
	}
	if e8 <= e4 {
		t.Errorf("8-bit decoder should use more energy: %v vs %v", e8, e4)
	}
	if _, _, err := DecoderDelay(n, 0, load); err == nil {
		t.Error("expected error for zero address bits")
	}
}

func TestHorowitzLimits(t *testing.T) {
	tf := 10e-12
	// Step input: delay is near tf*sqrt(2*vth).
	step := Horowitz(0, tf, 0.5)
	if math.Abs(step-tf*math.Sqrt(1.0))/step > 0.01 {
		t.Errorf("step-input Horowitz = %v, want %v", step, tf)
	}
	// Slow ramps increase delay.
	slow := Horowitz(40e-12, tf, 0.5)
	if slow <= step {
		t.Errorf("slow input ramp should increase delay: %v <= %v", slow, step)
	}
}

func TestPropertyChainDelayMonotoneInLoad(t *testing.T) {
	n := tech.N22()
	f := func(seed uint16) bool {
		load := (1 + float64(seed)) * n.CInv
		a, err1 := SizeChain(n, 1, load)
		b, err2 := SizeChain(n, 1, load*8)
		if err1 != nil || err2 != nil {
			return false
		}
		return b.Delay > a.Delay
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyEnergyPositiveAndMonotone(t *testing.T) {
	n := tech.N22()
	f := func(seed uint16) bool {
		c := (1 + float64(seed)) * 1e-16
		e := SwitchEnergy(n, c)
		return e > 0 && SwitchEnergy(n, 2*c) > e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
