package mem

import (
	"testing"
	"testing/quick"

	"vertical3d/internal/config"
	"vertical3d/internal/tech"
)

func testConfig(t *testing.T) config.Config {
	t.Helper()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	return s.Configs[config.Base]
}

func mustCache(t *testing.T, sizeKB, assoc, lineBytes int) *Cache {
	t.Helper()
	c, err := NewCache(sizeKB, assoc, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustHierarchy(t *testing.T, cfg config.Config) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustMulticore(t *testing.T, mc config.MCConfig) *Multicore {
	t.Helper()
	m, err := NewMulticore(mc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := mustCache(t, 32, 4, 32)
	if hit, _, _ := c.Access(0x1000, false); hit {
		t.Error("first access must miss")
	}
	if hit, _, _ := c.Access(0x1000, false); !hit {
		t.Error("second access must hit")
	}
	if hit, _, _ := c.Access(0x101f, false); !hit {
		t.Error("same line must hit")
	}
	if hit, _, _ := c.Access(0x1020, false); hit {
		t.Error("next line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := mustCache(t, 1, 2, 32) // 32 lines, 2-way, 16 sets
	setStride := uint64(32 * 16)
	// Fill one set's two ways, then a third line evicts the LRU.
	c.Access(0, false)
	c.Access(setStride, false)
	c.Access(0, false) // touch way 0 so the other is LRU
	c.Access(2*setStride, false)
	if hit, _, _ := c.Access(0, false); !hit {
		t.Error("recently used line should survive")
	}
	if hit, _, _ := c.Access(setStride, false); hit {
		t.Error("LRU line should have been evicted")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := mustCache(t, 1, 1, 32) // direct-mapped, 32 lines
	c.Access(0, true)           // dirty
	stride := uint64(32 * 32)
	_, victim, dirty := c.Access(stride, false)
	if !dirty || victim != 0 {
		t.Errorf("expected dirty writeback of line 0, got victim=%#x dirty=%v", victim, dirty)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := mustCache(t, 32, 4, 32)
	c.Access(0x4000, true)
	present, dirty := c.Invalidate(0x4000)
	if !present || !dirty {
		t.Errorf("invalidate should find dirty line, got %v/%v", present, dirty)
	}
	if c.Probe(0x4000) {
		t.Error("line must be gone after invalidate")
	}
	if p, _ := c.Invalidate(0x4000); p {
		t.Error("second invalidate should find nothing")
	}
}

func TestCacheBadGeometryErrors(t *testing.T) {
	cases := []struct {
		name                     string
		sizeKB, assoc, lineBytes int
	}{
		{"zero size", 0, 4, 32},
		{"negative assoc", 32, -1, 32},
		{"zero line", 32, 4, 0},
		{"non-power-of-two line", 32, 4, 48},
		{"non-power-of-two sets", 33, 4, 32},
		{"assoc exceeds lines", 1, 64, 32},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cache, err := NewCache(c.sizeKB, c.assoc, c.lineBytes)
			if err == nil {
				t.Fatalf("NewCache(%d, %d, %d) accepted bad geometry", c.sizeKB, c.assoc, c.lineBytes)
			}
			if cache != nil {
				t.Error("failed construction must return a nil cache")
			}
		})
	}
}

func TestHierarchyBadGeometryErrors(t *testing.T) {
	cfg := testConfig(t)
	cfg.Core.L2.SizeKB = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("NewHierarchy accepted a zero-size L2")
	}
}

func TestMulticoreBadConfigErrors(t *testing.T) {
	mc := mcConfig(t, false, 4)
	mc.Cores = 0
	if _, err := NewMulticore(mc); err == nil {
		t.Error("NewMulticore accepted zero cores")
	}
	mc = mcConfig(t, true, 4)
	mc.PerCore.Core.DL1.LineBytes = 48
	if _, err := NewMulticore(mc); err == nil {
		t.Error("NewMulticore accepted a non-power-of-two DL1 line size")
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := mustHierarchy(t, testConfig(t))
	// Cold access goes to DRAM; the next hits L1.
	cold := h.DataExtra(0, 0x10_0000, false)
	warm := h.DataExtra(0, 0x10_0000, false)
	if warm != 0 {
		t.Errorf("warm access extra = %d, want 0", warm)
	}
	if cold <= 40 {
		t.Errorf("cold access extra = %d, should include DRAM latency", cold)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := testConfig(t)
	h := mustHierarchy(t, cfg)
	// Touch enough distinct lines to overflow the 32KB DL1 but stay in L2.
	for i := 0; i < 3000; i++ {
		h.DataExtra(0, uint64(i)*32, false)
	}
	// Re-walk: everything should now come from the DL1 (stream prefetch) or
	// the L2 — never from DRAM.
	l2rt := cfg.Core.L2.RTCycles
	near := 0
	for i := 0; i < 1000; i++ {
		if e := h.DataExtra(0, uint64(i)*32, false); e <= l2rt {
			near++
		}
	}
	if near < 900 {
		t.Errorf("expected nearly all accesses within L2 after warmup, got %d/1000", near)
	}
}

func TestStreamPrefetchHidesSequentialMisses(t *testing.T) {
	cfg := testConfig(t)
	seq := mustHierarchy(t, cfg)
	var seqExtra int
	for i := 0; i < 20_000; i++ {
		seqExtra += seq.DataExtra(0, 0x100_0000+uint64(i)*8, false)
	}
	rnd := mustHierarchy(t, cfg)
	var rndExtra int
	addr := uint64(1)
	for i := 0; i < 20_000; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		rndExtra += rnd.DataExtra(0, 0x100_0000+(addr%(64<<20))&^7, false)
	}
	if seqExtra*4 > rndExtra {
		t.Errorf("sequential stream (%d extra cycles) should be far cheaper than random (%d)", seqExtra, rndExtra)
	}
}

func mcConfig(t *testing.T, shared bool, cores int) config.MCConfig {
	t.Helper()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	mcs := config.DeriveMulticore(s)
	mc := mcs[config.MCBase]
	if shared {
		mc = mcs[config.MCHet]
	}
	mc.Cores = cores
	return mc
}

func TestMulticoreCoherenceInvalidation(t *testing.T) {
	mc := mcConfig(t, false, 4)
	m := mustMulticore(t, mc)
	addr := uint64(0x5000_0000)

	m.DataExtra(0, addr, false) // core 0 reads
	m.DataExtra(1, addr, false) // core 1 reads: shared
	before := m.Extra.Invalidations
	m.DataExtra(0, addr, true) // core 0 writes: invalidates core 1
	if m.Extra.Invalidations <= before {
		t.Error("write to a shared line must invalidate the other sharer")
	}
	// Core 1 re-reads: must miss in its L1 (was invalidated).
	extra := m.DataExtra(1, addr, false)
	if extra == 0 {
		t.Error("invalidated line cannot hit in L1")
	}
}

func TestMulticoreDirtyForwarding(t *testing.T) {
	mc := mcConfig(t, false, 4)
	m := mustMulticore(t, mc)
	addr := uint64(0x6000_0000)
	m.DataExtra(2, addr, true) // core 2 owns the line Modified
	before := m.Extra.Forwards
	m.DataExtra(3, addr, false) // core 3 reads: must be forwarded
	if m.Extra.Forwards <= before {
		t.Error("read of a remotely-modified line must be forwarded")
	}
}

func TestSharedL2PairsSeeEachOthersLines(t *testing.T) {
	mc := mcConfig(t, true, 4)
	m := mustMulticore(t, mc)
	addr := uint64(0x7100_0000)
	m.DataExtra(0, addr, false)
	// Core 1 shares core 0's L2: its miss should cost only the L2 RT.
	extra := m.DataExtra(1, addr, false)
	if extra != mc.PerCore.Core.L2.RTCycles {
		t.Errorf("paired core should hit the shared L2 (extra=%d, want %d)", extra, mc.PerCore.Core.L2.RTCycles)
	}
}

func TestSharedRouterHalvesStops(t *testing.T) {
	private := mustMulticore(t, mcConfig(t, false, 4))
	shared := mustMulticore(t, mcConfig(t, true, 4))
	if private.stops != 4 || shared.stops != 2 {
		t.Errorf("stops: private=%d shared=%d, want 4 and 2", private.stops, shared.stops)
	}
	if shared.String() == private.String() {
		t.Error("topologies should describe themselves differently")
	}
}

func TestRingHops(t *testing.T) {
	m := mustMulticore(t, mcConfig(t, false, 8))
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {0, 7, 1}, {2, 6, 4}, {1, 7, 2},
	}
	for _, c := range cases {
		if got := m.hops(c.a, c.b); got != c.want {
			t.Errorf("hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPropertyHopsSymmetricAndBounded(t *testing.T) {
	m := mustMulticore(t, mcConfig(t, false, 8))
	f := func(a, b uint8) bool {
		x, y := int(a)%8, int(b)%8
		h := m.hops(x, y)
		return h == m.hops(y, x) && h >= 0 && h <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulticoreStatsAggregate(t *testing.T) {
	m := mustMulticore(t, mcConfig(t, false, 4))
	for c := 0; c < 4; c++ {
		for i := 0; i < 100; i++ {
			m.DataExtra(c, uint64(0x1000_0000+c<<20+i*64), false)
			m.FetchExtra(c, uint64(0x40_0000+i*32))
		}
	}
	s := m.Stats()
	if s.DL1.Accesses != 400 || s.IL1.Accesses != 400 {
		t.Errorf("expected 400 DL1/IL1 accesses, got %d/%d", s.DL1.Accesses, s.IL1.Accesses)
	}
	if s.DRAMAccesses == 0 {
		t.Error("cold misses should reach DRAM")
	}
}
