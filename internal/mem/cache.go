// Package mem implements the memory system of the simulated machine: set
// associative caches with LRU replacement and write-back policy, a
// single-core hierarchy (IL1/DL1/L2/L3/DRAM), and a multicore hierarchy
// with MESI directory coherence over a ring NoC — the substrate of Table 9.
package mem

import (
	"fmt"
)

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	age   uint32
}

// CacheStats counts accesses and misses.
type CacheStats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	setMask   uint64
	lines     []line // sets*ways, row-major by set
	clock     uint32

	Stats CacheStats
}

// NewCache builds a cache of sizeKB kilobytes with the given associativity
// and line size. Bad geometry (non-positive dimensions, a non-power-of-two
// line size or set count) is a configuration error and is returned as one;
// the address-slicing bit math below depends on these invariants.
func NewCache(sizeKB, assoc, lineBytes int) (*Cache, error) {
	if sizeKB <= 0 || assoc <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("mem: bad cache geometry %dKB/%dway/%dB", sizeKB, assoc, lineBytes)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("mem: line size %dB must be a power of two", lineBytes)
	}
	nlines := sizeKB * 1024 / lineBytes
	sets := nlines / assoc
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: set count %d (from %dKB/%dway/%dB) must be a power of two", sets, sizeKB, assoc, lineBytes)
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &Cache{
		sets:      sets,
		ways:      assoc,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		lines:     make([]line, sets*assoc),
	}, nil
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// lineAddr returns the line-aligned address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// Access looks up addr, allocating on miss. It returns whether the access
// hit, and if an eviction occurred, the victim's line-aligned address and
// dirtiness.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	c.Stats.Accesses++
	c.clock++
	la := c.lineAddr(addr)
	set := int(la & c.setMask)
	base := set * c.ways

	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == la {
			l.age = c.clock
			if write {
				l.dirty = true
			}
			return true, 0, false
		}
	}
	c.Stats.Misses++

	// Choose a victim: invalid way first, else LRU.
	vi := -1
	var oldest uint32 = ^uint32(0)
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if !l.valid {
			vi = i
			break
		}
		if l.age <= oldest {
			oldest = l.age
			vi = i
		}
	}
	v := &c.lines[base+vi]
	if v.valid && v.dirty {
		victim = v.tag << c.lineShift
		victimDirty = true
		c.Stats.Writebacks++
	} else if v.valid {
		victim = v.tag << c.lineShift
	}
	v.tag = la
	v.valid = true
	v.dirty = write
	v.age = c.clock
	return false, victim, victimDirty
}

// Probe reports whether the address is present without disturbing LRU.
func (c *Cache) Probe(addr uint64) bool {
	la := c.lineAddr(addr)
	base := int(la&c.setMask) * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == la {
			return true
		}
	}
	return false
}

// Invalidate removes the line if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := c.lineAddr(addr)
	base := int(la&c.setMask) * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == la {
			l.valid = false
			return true, l.dirty
		}
	}
	return false, false
}
