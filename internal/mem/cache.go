// Package mem implements the memory system of the simulated machine: set
// associative caches with LRU replacement and write-back policy, a
// single-core hierarchy (IL1/DL1/L2/L3/DRAM), and a multicore hierarchy
// with MESI directory coherence over a ring NoC — the substrate of Table 9.
package mem

import (
	"fmt"
)

// invalidTag marks an empty way in the packed word lane. Real tags must
// stay below it; see the tag-width guard in Access.
const invalidTag = 0xFFFF_FFFF

// CacheStats counts accesses and misses.
type CacheStats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache.
//
// Line bookkeeping is packed into a single uint64 lane, tag<<32 | age:
// the lookup path — by far the hottest loop in the whole simulator, every
// fetch and data probe of both the detailed core and the functional warmer
// lands here — then touches exactly one 64-byte host cache line per 8-way
// set, for the hit scan, the LRU-stamp update and the victim scan alike.
// The earlier []line struct slice spread a set over two-plus host lines
// and cost a second line again on the age update; for simulated L2/L3
// sizes whose bookkeeping exceeds the host's own caches, those extra lines
// were the simulator's dominant cost. Dirty bits live in a separate,
// rarely-touched lane.
//
// The 32-bit packed tag bounds supported addresses: addr >> lineShift must
// stay below 2^32 × sets (e.g. 2^50 for a 64-set cache with 64-byte
// lines), far above anything the trace generators produce; Access guards
// the invariant with a panic rather than silently aliasing.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	setShift  uint // log2(sets)
	setMask   uint64
	words     []uint64 // sets*ways, row-major by set; tag<<32 | age
	dirty     []bool   // write-back state, same indexing
	clock     uint32

	// lastLA/lastIdx memoise the way the previous access resolved to.
	// Consecutive accesses to one line are the most common probe pattern,
	// and the fast path re-verifies the memo against the stored tag before
	// trusting it, so an eviction or invalidation in between simply falls
	// back to the scan — outcomes are exactly the scan's in every case
	// (tags are unique within a set, so the memoised way is the way a scan
	// would find).
	lastLA  uint64
	lastIdx int32

	Stats CacheStats
}

// NewCache builds a cache of sizeKB kilobytes with the given associativity
// and line size. Bad geometry (non-positive dimensions, a non-power-of-two
// line size or set count) is a configuration error and is returned as one;
// the address-slicing bit math below depends on these invariants.
func NewCache(sizeKB, assoc, lineBytes int) (*Cache, error) {
	if sizeKB <= 0 || assoc <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("mem: bad cache geometry %dKB/%dway/%dB", sizeKB, assoc, lineBytes)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("mem: line size %dB must be a power of two", lineBytes)
	}
	nlines := sizeKB * 1024 / lineBytes
	sets := nlines / assoc
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: set count %d (from %dKB/%dway/%dB) must be a power of two", sets, sizeKB, assoc, lineBytes)
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	setShift := uint(0)
	for 1<<setShift < sets {
		setShift++
	}
	c := &Cache{
		sets:      sets,
		ways:      assoc,
		lineShift: shift,
		setShift:  setShift,
		setMask:   uint64(sets - 1),
		words:     make([]uint64, sets*assoc),
		dirty:     make([]bool, sets*assoc),
		lastIdx:   -1,
	}
	for i := range c.words {
		c.words[i] = invalidTag << 32
	}
	return c, nil
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// lineAddr returns the line-aligned address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// Access looks up addr, allocating on miss. It returns whether the access
// hit, and if an eviction occurred, the victim's line-aligned address and
// dirtiness.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	la := addr >> c.lineShift
	if la == c.lastLA {
		if i := c.lastIdx; i >= 0 && c.words[i]>>32 == la>>c.setShift {
			c.Stats.Accesses++
			c.clock++
			c.words[i] = c.words[i]&^uint64(^uint32(0)) | uint64(c.clock)
			if write {
				c.dirty[i] = true
			}
			return true, 0, false
		}
	}
	c.Stats.Accesses++
	c.clock++
	set := la & c.setMask
	tag := la >> c.setShift
	if tag >= invalidTag {
		panic(fmt.Sprintf("mem: address %#x beyond the packed-tag range", addr))
	}
	key := tag << 32
	base := int(set) * c.ways
	words := c.words[base : base+c.ways]

	for i, w := range words {
		if w>>32 == tag {
			words[i] = key | uint64(c.clock)
			if write {
				c.dirty[base+i] = true
			}
			c.lastLA, c.lastIdx = la, int32(base+i)
			return true, 0, false
		}
	}
	c.Stats.Misses++

	// Choose a victim: invalid way first, else LRU (ties keep the last
	// minimal-age way, preserving the original <= scan's choice).
	vi := -1
	var oldest uint32 = ^uint32(0)
	for i, w := range words {
		if w>>32 == invalidTag {
			vi = i
			break
		}
		if a := uint32(w); a <= oldest {
			oldest = a
			vi = i
		}
	}
	if vt := words[vi] >> 32; vt != invalidTag {
		victim = (vt<<c.setShift | set) << c.lineShift
		if c.dirty[base+vi] {
			victimDirty = true
			c.Stats.Writebacks++
		}
	}
	words[vi] = key | uint64(c.clock)
	c.dirty[base+vi] = write
	c.lastLA, c.lastIdx = la, int32(base+vi)
	return false, victim, victimDirty
}

// Probe reports whether the address is present without disturbing LRU.
func (c *Cache) Probe(addr uint64) bool {
	la := addr >> c.lineShift
	tag := la >> c.setShift
	base := int(la&c.setMask) * c.ways
	for _, w := range c.words[base : base+c.ways] {
		if w>>32 == tag {
			return true
		}
	}
	return false
}

// Invalidate removes the line if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := addr >> c.lineShift
	tag := la >> c.setShift
	base := int(la&c.setMask) * c.ways
	for i, w := range c.words[base : base+c.ways] {
		if w>>32 == tag {
			c.words[base+i] = invalidTag<<32 | w&0xFFFF_FFFF
			return true, c.dirty[base+i]
		}
	}
	return false, false
}
