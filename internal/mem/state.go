package mem

import "fmt"

// CacheState is a deep copy of a Cache's mutable contents — the packed
// tag/age lane, dirty bits, LRU clock, way memo and statistics — plus the
// geometry it was captured from. It is the unit of the warm-state snapshot
// layer: a snapshot taken once per (profile, seed, stream, geometry)
// identity is restored into many concurrently running sweep cells, so
// State copies out and SetState copies in; neither ever aliases the
// snapshot's slices (copy-on-restore).
type CacheState struct {
	Sets      int
	Ways      int
	LineShift uint

	Words  []uint64
	Dirty  []bool
	Clock  uint32
	LastLA uint64
	LastIdx int32
	Stats  CacheStats
}

// State returns a deep copy of the cache's mutable state.
func (c *Cache) State() CacheState {
	return CacheState{
		Sets:      c.sets,
		Ways:      c.ways,
		LineShift: c.lineShift,
		Words:     append([]uint64(nil), c.words...),
		Dirty:     append([]bool(nil), c.dirty...),
		Clock:     c.clock,
		LastLA:    c.lastLA,
		LastIdx:   c.lastIdx,
		Stats:     c.Stats,
	}
}

// compatible reports whether the snapshot was captured from a cache of this
// geometry. Restoring a mismatched snapshot would alias lines across sets.
func (c *Cache) compatible(s *CacheState) error {
	if s.Sets != c.sets || s.Ways != c.ways || s.LineShift != c.lineShift ||
		len(s.Words) != len(c.words) || len(s.Dirty) != len(c.dirty) {
		return fmt.Errorf("mem: snapshot geometry %dx%d way (shift %d, %d words) does not match cache %dx%d way (shift %d, %d words)",
			s.Sets, s.Ways, s.LineShift, len(s.Words), c.sets, c.ways, c.lineShift, len(c.words))
	}
	return nil
}

// setState copies the snapshot into the cache's own storage. The caller has
// already verified compatibility.
func (c *Cache) setState(s *CacheState) {
	copy(c.words, s.Words)
	copy(c.dirty, s.Dirty)
	c.clock = s.Clock
	c.lastLA = s.LastLA
	c.lastIdx = s.LastIdx
	c.Stats = s.Stats
}

// SetState restores a snapshot taken by State into this cache, copying into
// the cache's existing arrays so the snapshot can keep serving other cells.
// A geometry mismatch is rejected before any mutation.
func (c *Cache) SetState(s *CacheState) error {
	if err := c.compatible(s); err != nil {
		return err
	}
	c.setState(s)
	return nil
}

// HierState is a deep snapshot of a single-core Hierarchy: all four cache
// levels plus the stream-prefetcher state. Configuration (latencies,
// frequency) is deliberately excluded — it is design-dependent, while the
// state captured here depends only on the probe sequence and the cache
// geometry, which is what lets one snapshot serve every design of a sweep.
type HierState struct {
	IL1, DL1, L2, L3 CacheState

	LastDataLine uint64
	Prefetches   uint64
}

// State returns a deep copy of the hierarchy's mutable state.
func (h *Hierarchy) State() *HierState {
	return &HierState{
		IL1:          h.il1.State(),
		DL1:          h.dl1.State(),
		L2:           h.l2.State(),
		L3:           h.l3.State(),
		LastDataLine: h.lastDataLine,
		Prefetches:   h.Prefetches,
	}
}

// SetState restores a snapshot taken by State. Every level is checked for
// geometry compatibility before any level is mutated, so a mismatch never
// leaves the hierarchy half-restored.
func (h *Hierarchy) SetState(s *HierState) error {
	levels := []struct {
		name string
		dst  *Cache
		src  *CacheState
	}{
		{"IL1", h.il1, &s.IL1},
		{"DL1", h.dl1, &s.DL1},
		{"L2", h.l2, &s.L2},
		{"L3", h.l3, &s.L3},
	}
	for _, l := range levels {
		if err := l.dst.compatible(l.src); err != nil {
			return fmt.Errorf("mem: %s: %w", l.name, err)
		}
	}
	for _, l := range levels {
		l.dst.setState(l.src)
	}
	h.lastDataLine = s.LastDataLine
	h.Prefetches = s.Prefetches
	return nil
}

// FillLatencies returns the three possible extra latencies an L1 miss can
// resolve with in this hierarchy: an L2 hit, an L3 hit, and a DRAM fill
// (each inclusive of the levels above it). Together with the guarantee that
// fillFromL2 returns exactly one of these values, they let callers classify
// every miss by fill level — the design-independent form of the warm-phase
// observations (see uarch.WarmObs).
func (h *Hierarchy) FillLatencies() (l2, l3, dram int) {
	l2 = h.cfg.L2.RTCycles
	l3 = l2 + h.cfg.L3.RTCycles
	return l2, l3, l3 + h.dramCycles
}

// DirEntryState is the exported form of a directory entry in an MCState.
type DirEntryState struct {
	Sharers uint32
	Owner   int8
	State   uint8
}

// MCState is a deep snapshot of a Multicore memory system: every private
// and shared cache, the coherence directory, the per-core prefetcher state
// and the NoC/coherence counters. Like HierState it carries no
// configuration, only probe-sequence-dependent state.
type MCState struct {
	IL1, DL1, L2 []CacheState
	L3           CacheState

	Dir          map[uint64]DirEntryState
	LastDataLine []uint64

	NoCHops       uint64
	Invalidations uint64
	Forwards      uint64
	Prefetches    uint64
}

// State returns a deep copy of the multicore system's mutable state.
func (m *Multicore) State() *MCState {
	s := &MCState{
		L3:           m.l3.State(),
		Dir:          make(map[uint64]DirEntryState, len(m.dir)),
		LastDataLine: append([]uint64(nil), m.lastDataLine...),

		NoCHops:       m.Extra.NoCHops,
		Invalidations: m.Extra.Invalidations,
		Forwards:      m.Extra.Forwards,
		Prefetches:    m.Extra.Prefetches,
	}
	for _, c := range m.il1 {
		s.IL1 = append(s.IL1, c.State())
	}
	for _, c := range m.dl1 {
		s.DL1 = append(s.DL1, c.State())
	}
	for _, c := range m.l2 {
		s.L2 = append(s.L2, c.State())
	}
	for la, e := range m.dir {
		s.Dir[la] = DirEntryState{Sharers: e.sharers, Owner: e.owner, State: uint8(e.state)}
	}
	return s
}

// SetState restores a snapshot taken by State. Topology and geometry are
// checked across every cache before any mutation; the directory is rebuilt
// from a fresh map so concurrent cells never share entries.
func (m *Multicore) SetState(s *MCState) error {
	if len(s.IL1) != len(m.il1) || len(s.DL1) != len(m.dl1) || len(s.L2) != len(m.l2) ||
		len(s.LastDataLine) != len(m.lastDataLine) {
		return fmt.Errorf("mem: snapshot topology (%d IL1, %d DL1, %d L2) does not match %s",
			len(s.IL1), len(s.DL1), len(s.L2), m)
	}
	for i := range m.il1 {
		if err := m.il1[i].compatible(&s.IL1[i]); err != nil {
			return fmt.Errorf("mem: IL1[%d]: %w", i, err)
		}
	}
	for i := range m.dl1 {
		if err := m.dl1[i].compatible(&s.DL1[i]); err != nil {
			return fmt.Errorf("mem: DL1[%d]: %w", i, err)
		}
	}
	for i := range m.l2 {
		if err := m.l2[i].compatible(&s.L2[i]); err != nil {
			return fmt.Errorf("mem: L2[%d]: %w", i, err)
		}
	}
	if err := m.l3.compatible(&s.L3); err != nil {
		return fmt.Errorf("mem: L3: %w", err)
	}
	for i := range m.il1 {
		m.il1[i].setState(&s.IL1[i])
	}
	for i := range m.dl1 {
		m.dl1[i].setState(&s.DL1[i])
	}
	for i := range m.l2 {
		m.l2[i].setState(&s.L2[i])
	}
	m.l3.setState(&s.L3)
	m.dir = make(map[uint64]*dirEntry, len(s.Dir))
	for la, e := range s.Dir {
		m.dir[la] = &dirEntry{sharers: e.Sharers, owner: e.Owner, state: dirState(e.State)}
	}
	copy(m.lastDataLine, s.LastDataLine)
	m.Extra.NoCHops = s.NoCHops
	m.Extra.Invalidations = s.Invalidations
	m.Extra.Forwards = s.Forwards
	m.Extra.Prefetches = s.Prefetches
	return nil
}
