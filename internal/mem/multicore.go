package mem

import (
	"fmt"

	"vertical3d/internal/config"
)

// dirState is the MESI-style directory state of a line.
type dirState uint8

const (
	dirShared dirState = iota
	dirModified
)

// dirEntry tracks a line in the sliced L3 directory.
type dirEntry struct {
	sharers uint32 // bitmask of private-cache domains holding the line
	owner   int8   // domain holding the line Modified, -1 otherwise
	state   dirState
}

// Multicore is the multicore memory system: private IL1/DL1 per core,
// private or pair-shared L2s, and a shared, sliced L3 with a MESI directory
// over a ring NoC (Table 9's "Ring with MESI directory-based protocol").
type Multicore struct {
	ncores   int
	sharedL2 bool

	il1 []*Cache
	dl1 []*Cache
	l2  []*Cache // indexed by L2 domain

	l3  *Cache
	dir map[uint64]*dirEntry

	cfg        config.CoreParams
	hopCycles  int
	stops      int
	dramCycles int

	lineShift uint

	// lastDataLine supports the per-core next-line stream prefetcher.
	lastDataLine []uint64

	// Extra counts the coherence/NoC events for the power model.
	Extra struct {
		NoCHops       uint64
		Invalidations uint64
		Forwards      uint64
		Prefetches    uint64
	}
}

// NewMulticore builds the memory system for an MCConfig. When SharedL2 is
// set, pairs of cores share an L2 of twice the capacity and one NoC router
// stop (Figure 4), halving the ring's stop count. A configuration with a
// non-positive core count or bad cache geometry is reported as an error.
func NewMulticore(mc config.MCConfig) (*Multicore, error) {
	p := mc.PerCore.Core
	n := mc.Cores
	if n < 1 {
		return nil, fmt.Errorf("mem: %s: core count must be >= 1, got %d", mc.Name, n)
	}
	m := &Multicore{
		ncores:     n,
		sharedL2:   mc.SharedL2,
		cfg:        p,
		hopCycles:  mc.RouterHopCycles,
		dir:        make(map[uint64]*dirEntry, 1<<16),
		dramCycles: int(p.DRAMLatencyNs * mc.PerCore.FreqGHz),
	}
	fail := func(level string, err error) (*Multicore, error) {
		return nil, fmt.Errorf("mem: %s %s: %w", mc.Name, level, err)
	}
	for i := 0; i < n; i++ {
		il1, err := NewCache(p.IL1.SizeKB, p.IL1.Assoc, p.IL1.LineBytes)
		if err != nil {
			return fail("IL1", err)
		}
		dl1, err := NewCache(p.DL1.SizeKB, p.DL1.Assoc, p.DL1.LineBytes)
		if err != nil {
			return fail("DL1", err)
		}
		m.il1 = append(m.il1, il1)
		m.dl1 = append(m.dl1, dl1)
	}
	if mc.SharedL2 {
		for i := 0; i < n/2; i++ {
			l2, err := NewCache(p.L2.SizeKB*2, p.L2.Assoc, p.L2.LineBytes)
			if err != nil {
				return fail("L2", err)
			}
			m.l2 = append(m.l2, l2)
		}
		m.stops = n / 2
	} else {
		for i := 0; i < n; i++ {
			l2, err := NewCache(p.L2.SizeKB, p.L2.Assoc, p.L2.LineBytes)
			if err != nil {
				return fail("L2", err)
			}
			m.l2 = append(m.l2, l2)
		}
		m.stops = n
	}
	if m.stops < 1 {
		m.stops = 1
	}
	// The shared L3 scales with the core count (2MB per core, Table 9).
	l3, err := NewCache(p.L3.SizeKB*n, p.L3.Assoc, p.L3.LineBytes)
	if err != nil {
		return fail("L3", err)
	}
	m.l3 = l3
	shift := uint(0)
	for 1<<shift < p.L3.LineBytes {
		shift++
	}
	m.lineShift = shift
	m.lastDataLine = make([]uint64, n)
	return m, nil
}

// domain maps a core to its private-cache domain (L2 index).
func (m *Multicore) domain(core int) int {
	if m.sharedL2 {
		return core / 2
	}
	return core
}

// slice maps a line to its L3 slice / directory home stop.
func (m *Multicore) slice(la uint64) int { return int(la % uint64(m.stops)) }

// hops returns the ring distance between stops a and b.
func (m *Multicore) hops(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := m.stops - d; alt < d {
		d = alt
	}
	return d
}

// FetchExtra performs an instruction fetch for the core.
func (m *Multicore) FetchExtra(core int, pc uint64) int {
	if hit, _, _ := m.il1[core].Access(pc, false); hit {
		return 0
	}
	dom := m.domain(core)
	extra := m.cfg.L2.RTCycles
	if hit, _, _ := m.l2[dom].Access(pc, false); hit {
		return extra
	}
	h := m.hops(dom, m.slice(pc>>m.lineShift))
	m.Extra.NoCHops += uint64(h)
	extra += h*m.hopCycles + m.cfg.L3.RTCycles
	if hit, _, _ := m.l3.Access(pc, false); hit {
		return extra
	}
	return extra + m.dramCycles
}

// DataExtra performs a data access for the core with full directory
// coherence, returning the extra latency beyond a DL1 hit.
func (m *Multicore) DataExtra(core int, addr uint64, write bool) int {
	dom := m.domain(core)
	la := addr >> m.lineShift

	// Per-core next-line stream prefetch into the domain's L2.
	dla := addr >> uint(5) // DL1 line granularity
	if dla == m.lastDataLine[core]+1 {
		m.Extra.Prefetches++
		next := (dla + 2) << 5
		if !m.dl1[core].Probe(next) {
			m.dl1[core].Access(next, false)
			m.l2[dom].Access(next, false)
			m.l3.Access(next, false)
		}
	}
	m.lastDataLine[core] = dla

	hit, victim, dirty := m.dl1[core].Access(addr, write)
	if dirty {
		m.l2[dom].Access(victim, true)
	}
	if hit {
		if !write {
			return 0
		}
		// Write hit: if other domains share the line, pay an upgrade.
		if e, ok := m.dir[la]; ok && e.sharers&^(1<<uint(dom)) != 0 {
			return m.invalidateOthers(e, la, dom)
		}
		return 0
	}

	extra := m.cfg.L2.RTCycles
	l2hit, v2, d2 := m.l2[dom].Access(addr, write)
	if d2 {
		m.l3.Access(v2, true)
	}
	if l2hit && !write {
		return extra
	}
	if l2hit && write {
		if e, ok := m.dir[la]; ok && e.sharers&^(1<<uint(dom)) != 0 {
			return extra + m.invalidateOthers(e, la, dom)
		}
		return extra
	}

	// Miss in the private domain: go to the home L3 slice.
	home := m.slice(la)
	h := m.hops(dom, home)
	m.Extra.NoCHops += uint64(h)
	extra += h*m.hopCycles + m.cfg.L3.RTCycles

	e := m.dir[la]
	if e == nil {
		e = &dirEntry{owner: -1}
		m.dir[la] = e
	}

	// If another domain holds the line Modified, forward from its cache.
	if e.state == dirModified && e.owner >= 0 && int(e.owner) != dom {
		fh := m.hops(home, int(e.owner)) + m.hops(int(e.owner), dom)
		m.Extra.NoCHops += uint64(fh)
		m.Extra.Forwards++
		extra += fh*m.hopCycles + m.cfg.L2.RTCycles
		e.state = dirShared
		e.sharers |= 1 << uint(e.owner)
		e.owner = -1
	}

	if write {
		extra += m.invalidateOthers(e, la, dom)
		e.state = dirModified
		e.owner = int8(dom)
		e.sharers = 1 << uint(dom)
	} else {
		e.sharers |= 1 << uint(dom)
	}

	if hit3, _, _ := m.l3.Access(addr, write); hit3 {
		return extra
	}
	return extra + m.dramCycles
}

// invalidateOthers removes the line from every other sharer's caches and
// returns the invalidation latency (the farthest acknowledgement).
func (m *Multicore) invalidateOthers(e *dirEntry, la uint64, dom int) int {
	addr := la << m.lineShift
	worst := 0
	for d := 0; d < m.stops; d++ {
		if d == dom || e.sharers&(1<<uint(d)) == 0 {
			continue
		}
		m.Extra.Invalidations++
		m.l2[d].Invalidate(addr)
		// Invalidate the L1s of the domain's cores.
		if m.sharedL2 {
			m.dl1[2*d].Invalidate(addr)
			if 2*d+1 < m.ncores {
				m.dl1[2*d+1].Invalidate(addr)
			}
		} else {
			m.dl1[d].Invalidate(addr)
		}
		if h := m.hops(dom, d); h > worst {
			worst = h
		}
	}
	e.sharers = 1 << uint(dom)
	e.owner = int8(dom)
	e.state = dirModified
	m.Extra.NoCHops += uint64(2 * worst)
	return 2 * worst * m.hopCycles
}

// Stats aggregates the hierarchy statistics across cores.
func (m *Multicore) Stats() HierStats {
	var s HierStats
	for _, c := range m.il1 {
		s.IL1.Accesses += c.Stats.Accesses
		s.IL1.Misses += c.Stats.Misses
	}
	for _, c := range m.dl1 {
		s.DL1.Accesses += c.Stats.Accesses
		s.DL1.Misses += c.Stats.Misses
	}
	for _, c := range m.l2 {
		s.L2.Accesses += c.Stats.Accesses
		s.L2.Misses += c.Stats.Misses
		s.L2.Writebacks += c.Stats.Writebacks
	}
	s.L3 = m.l3.Stats
	s.DRAMAccesses = m.l3.Stats.Misses
	s.NoCHops = m.Extra.NoCHops
	s.Invalidations = m.Extra.Invalidations
	s.Forwards = m.Extra.Forwards
	return s
}

// String describes the topology.
func (m *Multicore) String() string {
	kind := "private L2s"
	if m.sharedL2 {
		kind = "pair-shared L2s"
	}
	return fmt.Sprintf("%d cores, %s, %d ring stops, %d-cycle hops", m.ncores, kind, m.stops, m.hopCycles)
}

var _ Backend = (*Multicore)(nil)
