package mem

import (
	"fmt"

	"vertical3d/internal/config"
)

// Backend is the interface the core simulator uses: it returns the extra
// latency in cycles beyond an L1 hit (0 on hit) for instruction and data
// accesses.
//
// Backends are stateful (cache contents, coherence directory, prefetcher
// state), so results depend on the exact call sequence. The uarch kernels
// rely on this contract: both the scan-based reference kernel and the
// event-driven kernel make FetchExtra/DataExtra calls in the same order
// (idle-skipped cycles perform no accesses), which is what keeps
// HierStats bit-identical between them — including multicore lockstep
// runs, where per-cycle Step interleaves the cores' accesses.
type Backend interface {
	FetchExtra(coreID int, pc uint64) int
	DataExtra(coreID int, addr uint64, write bool) int
}

// HierStats aggregates hierarchy-wide event counts for the power model.
type HierStats struct {
	IL1, DL1, L2, L3 CacheStats
	DRAMAccesses     uint64
	NoCHops          uint64
	Invalidations    uint64
	Forwards         uint64
}

// Hierarchy is the single-core memory system of Table 9.
type Hierarchy struct {
	il1, dl1, l2, l3 *Cache
	cfg              config.CoreParams
	freqGHz          float64
	dramCycles       int

	// lastDataLine supports a simple next-line stream prefetcher that pulls
	// ascending streams into the L2, hiding most of the DRAM latency of
	// sequential workloads while leaving pointer-chasing traffic exposed.
	lastDataLine uint64
	Prefetches   uint64
}

// NewHierarchy builds the single-core hierarchy for a configuration. The
// DRAM latency is fixed in nanoseconds, so faster cores wait more cycles.
// A configuration with bad cache geometry is reported as an error naming
// the offending level.
func NewHierarchy(c config.Config) (*Hierarchy, error) {
	p := c.Core
	h := &Hierarchy{
		cfg:        p,
		freqGHz:    c.FreqGHz,
		dramCycles: int(p.DRAMLatencyNs * c.FreqGHz),
	}
	var err error
	levels := []struct {
		name string
		dst  **Cache
		cp   config.CacheParams
	}{
		{"IL1", &h.il1, p.IL1},
		{"DL1", &h.dl1, p.DL1},
		{"L2", &h.l2, p.L2},
		{"L3", &h.l3, p.L3},
	}
	for _, l := range levels {
		if *l.dst, err = NewCache(l.cp.SizeKB, l.cp.Assoc, l.cp.LineBytes); err != nil {
			return nil, fmt.Errorf("mem: %s %s: %w", c.Name, l.name, err)
		}
	}
	return h, nil
}

// FetchExtra performs an instruction fetch; returns extra cycles beyond an
// IL1 hit.
func (h *Hierarchy) FetchExtra(_ int, pc uint64) int {
	if hit, _, _ := h.il1.Access(pc, false); hit {
		return 0
	}
	return h.fillFromL2(pc, false)
}

// DataExtra performs a data access; returns extra cycles beyond a DL1 hit.
func (h *Hierarchy) DataExtra(_ int, addr uint64, write bool) int {
	// Stream prefetch: an access to the successor of the previous data line
	// pulls the following line into L2 ahead of time.
	la := addr >> h.dl1.lineShift
	if la == h.lastDataLine+1 {
		h.Prefetches++
		next := (la + 2) << h.dl1.lineShift
		if !h.dl1.Probe(next) {
			h.dl1.Access(next, false)
			h.l2.Access(next, false)
			h.l3.Access(next, false)
		}
	}
	h.lastDataLine = la

	hit, victim, dirty := h.dl1.Access(addr, write)
	if dirty {
		h.l2.Access(victim, true) // write back the victim
	}
	if hit {
		return 0
	}
	return h.fillFromL2(addr, write)
}

// fillFromL2 walks L2 → L3 → DRAM and returns the extra fill latency.
func (h *Hierarchy) fillFromL2(addr uint64, write bool) int {
	extra := h.cfg.L2.RTCycles
	hit, victim, dirty := h.l2.Access(addr, write)
	if dirty {
		h.l3.Access(victim, true)
	}
	if hit {
		return extra
	}
	extra += h.cfg.L3.RTCycles
	if hit3, _, _ := h.l3.Access(addr, write); hit3 {
		return extra
	}
	return extra + h.dramCycles
}

// Stats returns the per-level statistics.
func (h *Hierarchy) Stats() HierStats {
	return HierStats{
		IL1:          h.il1.Stats,
		DL1:          h.dl1.Stats,
		L2:           h.l2.Stats,
		L3:           h.l3.Stats,
		DRAMAccesses: h.l3.Stats.Misses,
	}
}

var _ Backend = (*Hierarchy)(nil)
