package clocktree

import (
	"testing"
	"testing/quick"

	"vertical3d/internal/tech"
)

const (
	dieW = 2.9e-3
	dieH = 2.3e-3
	// A 6-issue out-of-order core carries on the order of 100k flops.
	coreSinks = 100_000
)

func TestBuildBasics(t *testing.T) {
	n := tech.N22()
	tr, err := Build(n, dieW, dieH, coreSinks)
	if err != nil {
		t.Fatal(err)
	}
	if tr.WireLenM <= dieW {
		t.Error("clock tree must be far longer than the die")
	}
	if tr.TotalCapF() <= 0 || tr.Levels < 5 {
		t.Errorf("implausible tree: %+v", tr)
	}
	// Power at 2.8GHz/0.8V should land near the ~1W clock budget of the
	// power model.
	w := tr.PowerWatts(0.8, 2.8e9)
	if w < 0.1 || w > 4 {
		t.Errorf("clock power %.2fW outside [0.2,4]W", w)
	}
}

func TestBuildValidation(t *testing.T) {
	n := tech.N22()
	if _, err := Build(n, 0, dieH, 10); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := Build(n, dieW, dieH, 0); err == nil {
		t.Error("expected error for zero sinks")
	}
}

func TestFoldedReductionNearPaperConstant(t *testing.T) {
	// The paper adopts a constant 25% clock switching-power reduction for
	// the folded core [42]. The geometric model should land in the same
	// neighbourhood for a 50% footprint reduction.
	n := tech.N22()
	red, err := FoldedReduction(n, dieW, dieH, coreSinks, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if red < 0.10 || red > 0.45 {
		t.Errorf("folded clock reduction %.0f%% outside [10,45]%% around the paper's 25%%", red*100)
	}
}

func TestFoldedReductionValidation(t *testing.T) {
	n := tech.N22()
	if _, err := FoldedReduction(n, dieW, dieH, 10, 0); err == nil {
		t.Error("expected error for zero fraction")
	}
	if _, err := FoldedReduction(n, dieW, dieH, 10, 2); err == nil {
		t.Error("expected error for fraction > 1")
	}
}

func TestPropertySmallerFootprintLessPower(t *testing.T) {
	n := tech.N22()
	f := func(seed uint8) bool {
		frac := 0.3 + float64(seed)/512.0 // 0.3 .. ~0.8
		red, err := FoldedReduction(n, dieW, dieH, coreSinks, frac)
		if err != nil {
			return false
		}
		redSmaller, err := FoldedReduction(n, dieW, dieH, coreSinks, frac/1.5)
		if err != nil {
			return false
		}
		return red > 0 && redSmaller > red
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPowerScalesWithFrequencyAndV2(t *testing.T) {
	n := tech.N22()
	tr, err := Build(n, dieW, dieH, coreSinks)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PowerWatts(0.8, 3e9) <= tr.PowerWatts(0.8, 2e9) {
		t.Error("clock power must grow with frequency")
	}
	hi, lo := tr.PowerWatts(0.8, 3e9), tr.PowerWatts(0.75, 3e9)
	want := (0.75 / 0.8) * (0.75 / 0.8)
	if got := lo / hi; got < want-0.001 || got > want+0.001 {
		t.Errorf("voltage scaling ratio %.4f, want %.4f", got, want)
	}
}
