// Package clocktree models the core's clock distribution network as a
// buffered H-tree: total wire length, capacitance, and switching power as a
// function of the die footprint and sink (latch) count. The paper applies a
// constant 25% clock-power reduction for the folded core [42]; this model
// derives the reduction from geometry instead, enabling the ablation of
// that methodology choice.
package clocktree

import (
	"errors"
	"math"

	"vertical3d/internal/tech"
)

// Tree describes an H-tree clock network over a rectangular die.
type Tree struct {
	// WidthM and HeightM are the covered footprint.
	WidthM, HeightM float64

	// Sinks is the number of clocked elements (latches/flops) served.
	Sinks int

	// Levels is the H-tree recursion depth.
	Levels int

	// WireLenM is the total distribution wire length.
	WireLenM float64

	// WireCapF and SinkCapF are the wire and sink capacitances.
	WireCapF float64
	SinkCapF float64

	// BufferCapF is the input capacitance of the repeater/buffer stages.
	BufferCapF float64
}

// Build constructs the H-tree for a die of the given dimensions and sink
// count at the node. The recursion depth is chosen so each leaf region
// serves a small cluster of sinks.
func Build(n *tech.Node, widthM, heightM float64, sinks int) (Tree, error) {
	if widthM <= 0 || heightM <= 0 {
		return Tree{}, errors.New("clocktree: non-positive die dimensions")
	}
	if sinks < 1 {
		return Tree{}, errors.New("clocktree: need at least one sink")
	}
	const sinksPerLeaf = 64
	leaves := float64(sinks) / sinksPerLeaf
	levels := int(math.Max(1, math.Ceil(math.Log2(math.Max(1, leaves)))))

	// H-tree wire length: at each level the tree adds 2^k segments of
	// length ~ (W+H)/2^(k/2+1); the closed form is close to
	// L ≈ 1.5 * sqrt(A) * sqrt(2^levels).
	area := widthM * heightM
	wireLen := 1.5 * math.Sqrt(area) * math.Sqrt(math.Pow(2, float64(levels)))

	// Local clock wiring: each sink adds a short run of local wire whose
	// length tracks the die's linear dimension (denser die, shorter runs).
	const refArea = 2.9e-3 * 2.3e-3
	localWire := float64(sinks) * 3e-6 * math.Sqrt(area/refArea)
	wireCap := wireLen*n.SemiGlobalWireC + localWire*n.LocalWireC
	sinkCap := float64(sinks) * 4 * n.CInv // clock pin + local latch loading
	bufCap := wireCap * 0.4                // repeaters sized to drive the mesh

	return Tree{
		WidthM: widthM, HeightM: heightM,
		Sinks: sinks, Levels: levels,
		WireLenM: wireLen,
		WireCapF: wireCap, SinkCapF: sinkCap, BufferCapF: bufCap,
	}, nil
}

// TotalCapF returns the total switched capacitance per clock edge.
func (t Tree) TotalCapF() float64 { return t.WireCapF + t.SinkCapF + t.BufferCapF }

// PowerWatts returns the clock network's dynamic power at the given supply
// and frequency; the clock switches every cycle (activity 1).
func (t Tree) PowerWatts(vdd, freqHz float64) float64 {
	return t.TotalCapF() * vdd * vdd * freqHz
}

// FoldedReduction returns the fractional clock-power reduction of folding
// the die to footprintFrac of its area with the same sink count: the wire
// and buffer components shrink with the footprint, the sink component does
// not. This is the geometric counterpart of the constant 25% reduction the
// paper adopts from [42].
func FoldedReduction(n *tech.Node, widthM, heightM float64, sinks int, footprintFrac float64) (float64, error) {
	if footprintFrac <= 0 || footprintFrac > 1 {
		return 0, errors.New("clocktree: footprint fraction out of range")
	}
	flat, err := Build(n, widthM, heightM, sinks)
	if err != nil {
		return 0, err
	}
	s := math.Sqrt(footprintFrac)
	folded, err := Build(n, widthM*s, heightM*s, sinks)
	if err != nil {
		return 0, err
	}
	return 1 - folded.TotalCapF()/flat.TotalCapF(), nil
}
