// Package thermal is the HotSpot substitute: a steady-state 3D resistive
// grid solver over the layer stacks of Table 10. It models lateral and
// vertical conduction through every material layer (bulk silicon, active
// layers, metal, inter-layer dielectric, TIM, heat spreader), with the heat
// sink above the stack and an adiabatic board side below, exactly the
// configuration of Figure 1.
package thermal

import (
	"fmt"
	"math"
	"sync"

	"vertical3d/internal/guard"
)

// LayerSpec is one material layer of the stack, listed bottom-up.
type LayerSpec struct {
	Name         string
	Thickness    float64 // meters
	Conductivity float64 // W/(m·K)
	Active       bool    // receives a power map
}

// Stack2D returns the single-die baseline stack (bottom-up).
func Stack2D() []LayerSpec {
	return []LayerSpec{
		{Name: "bulk-si", Thickness: 100e-6, Conductivity: 120},
		{Name: "active", Thickness: 1e-6, Conductivity: 120, Active: true},
		{Name: "metal", Thickness: 12e-6, Conductivity: 12},
		{Name: "tim", Thickness: 50e-6, Conductivity: 5},
		{Name: "ihs", Thickness: 1000e-6, Conductivity: 400},
	}
}

// StackM3D returns the two-layer monolithic stack of Table 10: the two
// active layers sit within ≈1µm of each other, separated by a 100nm ILD and
// a thin bottom metal layer, so vertical coupling is strong.
func StackM3D() []LayerSpec {
	return []LayerSpec{
		{Name: "bulk-si", Thickness: 100e-6, Conductivity: 120},
		{Name: "bottom-active", Thickness: 1e-6, Conductivity: 120, Active: true},
		{Name: "bottom-metal", Thickness: 1e-6, Conductivity: 12},
		{Name: "ild", Thickness: 0.1e-6, Conductivity: 1.5},
		{Name: "top-active", Thickness: 0.1e-6, Conductivity: 120, Active: true},
		{Name: "top-metal", Thickness: 12e-6, Conductivity: 12},
		{Name: "tim", Thickness: 50e-6, Conductivity: 5},
		{Name: "ihs", Thickness: 1000e-6, Conductivity: 400},
	}
}

// StackTSV3D returns the die-stacked alternative of Table 10: a 20µm
// die-to-die layer with poor conductivity separates the dies, and the
// bottom die (far from the sink) must push its heat through it.
func StackTSV3D() []LayerSpec {
	return []LayerSpec{
		{Name: "bulk-si", Thickness: 100e-6, Conductivity: 120},
		{Name: "bottom-active", Thickness: 1e-6, Conductivity: 120, Active: true},
		{Name: "bottom-metal", Thickness: 12e-6, Conductivity: 12},
		{Name: "d2d-ild", Thickness: 20e-6, Conductivity: 1.5},
		{Name: "top-si", Thickness: 20e-6, Conductivity: 120},
		{Name: "top-active", Thickness: 1e-6, Conductivity: 120, Active: true},
		{Name: "top-metal", Thickness: 12e-6, Conductivity: 12},
		{Name: "tim", Thickness: 50e-6, Conductivity: 5},
		{Name: "ihs", Thickness: 1000e-6, Conductivity: 400},
	}
}

// Params configures a solve.
type Params struct {
	ChipW, ChipH float64 // die dimensions in meters
	Nx, Ny       int     // grid resolution
	AmbientC     float64 // ambient temperature (°C)

	// SinkRUnit is the area-normalised thermal resistance from the top of
	// the stack into the heat-sink base (K·m²/W) — the density-sensitive
	// part of the package.
	SinkRUnit float64

	// SinkRAbs is the absolute heat-sink resistance to ambient (K/W). The
	// sink is much larger than the die, so this term responds to total
	// power, not power density — which is why a folded die at twice the
	// density but lower power barely warms up (Section 7.1.3).
	SinkRAbs float64

	MaxIters int
	Tol      float64

	// Omega is the over-relaxation factor for Solve's red-black SOR sweeps.
	// Zero selects DefaultOmega. Any value in (0,2) converges on this
	// symmetric positive-definite conductance system (1.0 degenerates to
	// plain Gauss-Seidel); the default is tuned to cut sweeps ≥3× vs the
	// natural-order reference at the same Tol (see thermal_test.go).
	Omega float64
}

// DefaultOmega is the tuned SOR factor. The grid is a 20×20×nl 7-point
// stencil whose Jacobi spectral radius sits near cos(π/20); the classic
// optimum 2/(1+√(1−ρ²)) lands near 1.73, but the strong vertical coupling
// of the thin stacks pushes the empirical optimum higher: sweeping ω over
// all three Table-10 stacks at the default tolerance gives 12–15× fewer
// sweeps at 1.9, with convergence degrading again past ~1.93.
const DefaultOmega = 1.9

// DefaultParams returns the calibrated solve parameters: a 45°C ambient and
// a sink resistance that puts the ~6.4W 2D baseline core near 75°C.
func DefaultParams(chipW, chipH float64) Params {
	return Params{
		ChipW: chipW, ChipH: chipH,
		Nx: 20, Ny: 20,
		AmbientC:  45,
		SinkRUnit: 0.9e-5,
		SinkRAbs:  2.2,
		MaxIters:  20000,
		Tol:       1e-4,
		Omega:     DefaultOmega,
	}
}

// Validate checks the solver configuration: positive die dimensions, a grid
// of at least 2x2 cells, finite ambient, positive sink resistances and a
// positive iteration budget. All violations are reported together as
// guard.Violations with per-field paths.
func (p Params) Validate() error {
	c := guard.New("thermal.Params")
	c.Positive("ChipW", p.ChipW)
	c.Positive("ChipH", p.ChipH)
	c.Check(p.Nx >= 2, "Nx", "grid must be at least 2 cells wide, got %d", p.Nx)
	c.Check(p.Ny >= 2, "Ny", "grid must be at least 2 cells tall, got %d", p.Ny)
	c.Finite("AmbientC", p.AmbientC)
	c.Positive("SinkRUnit", p.SinkRUnit)
	c.Positive("SinkRAbs", p.SinkRAbs)
	c.PositiveInt("MaxIters", p.MaxIters)
	c.Positive("Tol", p.Tol)
	c.Check(p.Omega >= 0 && p.Omega < 2, "Omega", "SOR factor must be in [0,2), got %v", p.Omega)
	return c.Err()
}

// validateStack checks every layer for a positive thickness and
// conductivity — a zero in either turns the grid conductances into NaN/Inf
// and corrupts the whole Gauss-Seidel solve.
func validateStack(stack []LayerSpec) error {
	c := guard.New("thermal.stack")
	c.Check(len(stack) >= 1, "layers", "stack must have at least one layer")
	for i, l := range stack {
		c.Positive(fmt.Sprintf("[%d:%s].Thickness", i, l.Name), l.Thickness)
		c.Positive(fmt.Sprintf("[%d:%s].Conductivity", i, l.Name), l.Conductivity)
	}
	return c.Err()
}

// validatePowerMaps checks that each active layer's map is exactly ny rows
// of nx finite, non-negative watts-per-cell entries.
func validatePowerMaps(powerMaps [][][]float64, nx, ny int) error {
	c := guard.New("thermal.powerMaps")
	for li, pm := range powerMaps {
		if len(pm) != ny {
			c.Violatef(fmt.Sprintf("[%d]", li), "power map has %d rows, grid is %d", len(pm), ny)
			continue
		}
		for y, row := range pm {
			if len(row) != nx {
				c.Violatef(fmt.Sprintf("[%d][%d]", li, y), "power map row has %d cells, grid is %d", len(row), nx)
				continue
			}
			for x, v := range row {
				if !guard.IsFinite(v) || v < 0 {
					c.Violatef(fmt.Sprintf("[%d][%d][%d]", li, y, x), "power must be finite and >= 0, got %v", v)
				}
			}
		}
	}
	return c.Err()
}

// Result is the solved temperature field.
type Result struct {
	PeakC float64
	AvgC  float64
	// Layers holds the temperature grid of each ACTIVE layer, bottom-up.
	Layers [][][]float64
	// Iters is the number of full-grid sweeps the solver ran before the
	// convergence criterion (maxDelta < Tol) was met, or MaxIters if it
	// never was.
	Iters int
}

// scratch is the per-solve working memory: flat temperature and power slabs
// (node (l,y,x) lives at (l*ny+y)*nx+x) plus the conductance tables. Solves
// borrow one from a pool so thermal-bound sweeps stop allocating — and GC
// churning — ~2·nl·nx·ny floats per call.
type scratch struct {
	t, pw               []float64
	gLatX, gLatY, gVert []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// grow reuses s when its capacity suffices, else allocates. Contents are
// unspecified; callers overwrite every element.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// problem is a validated, discretised solve instance shared by the
// red-black SOR solver and the natural-order reference.
type problem struct {
	stack  []LayerSpec
	p      Params
	nl     int
	nx, ny int
	gSink  float64
	totalP float64
	sc     *scratch
}

// buildProblem validates the inputs and assembles the conductance network
// and flat power/temperature slabs in pooled scratch memory.
func buildProblem(stack []LayerSpec, p Params, powerMaps [][][]float64) (*problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := validateStack(stack); err != nil {
		return nil, err
	}
	nActive := 0
	for _, l := range stack {
		if l.Active {
			nActive++
		}
	}
	if nActive != len(powerMaps) {
		return nil, fmt.Errorf("thermal: %d active layers but %d power maps", nActive, len(powerMaps))
	}
	if err := validatePowerMaps(powerMaps, p.Nx, p.Ny); err != nil {
		return nil, err
	}
	nl := len(stack)
	nx, ny := p.Nx, p.Ny
	dx := p.ChipW / float64(nx)
	dy := p.ChipH / float64(ny)
	cellA := dx * dy

	sc := scratchPool.Get().(*scratch)
	// Per-layer lateral conductances and per-interface vertical conductances.
	sc.gLatX = grow(sc.gLatX, nl)
	sc.gLatY = grow(sc.gLatY, nl)
	for i, l := range stack {
		sc.gLatX[i] = l.Conductivity * l.Thickness * dy / dx
		sc.gLatY[i] = l.Conductivity * l.Thickness * dx / dy
	}
	sc.gVert = grow(sc.gVert, nl-1) // between layer i and i+1
	for i := 0; i < nl-1; i++ {
		r := 0.5*stack[i].Thickness/stack[i].Conductivity +
			0.5*stack[i+1].Thickness/stack[i+1].Conductivity
		sc.gVert[i] = cellA / r
	}

	// Power per node, and the ambient-initialised temperature field.
	sc.pw = grow(sc.pw, nl*nx*ny)
	for i := range sc.pw {
		sc.pw[i] = 0
	}
	var totalP float64
	ai := 0
	for i, l := range stack {
		if !l.Active {
			continue
		}
		pm := powerMaps[ai]
		ai++
		base := i * ny * nx
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				sc.pw[base+y*nx+x] = pm[y][x]
				totalP += pm[y][x]
			}
		}
	}
	sc.t = grow(sc.t, nl*nx*ny)
	for i := range sc.t {
		sc.t[i] = p.AmbientC
	}

	return &problem{
		stack: stack, p: p,
		nl: nl, nx: nx, ny: ny,
		gSink:  cellA / p.SinkRUnit, // top layer to ambient
		totalP: totalP,
		sc:     sc,
	}, nil
}

// release returns the scratch memory to the pool.
func (pr *problem) release() {
	scratchPool.Put(pr.sc)
	pr.sc = nil
}

// nodeSum accumulates the neighbour conductance and conductance-weighted
// temperature sums for node (l,y,x) at flat index j — the single piece of
// stencil arithmetic both solvers share, so their fixed point is identical
// by construction.
func (pr *problem) nodeSum(l, y, x, j int) (gSum, tSum float64) {
	sc := pr.sc
	t := sc.t
	if x > 0 {
		gSum += sc.gLatX[l]
		tSum += sc.gLatX[l] * t[j-1]
	}
	if x < pr.nx-1 {
		gSum += sc.gLatX[l]
		tSum += sc.gLatX[l] * t[j+1]
	}
	if y > 0 {
		gSum += sc.gLatY[l]
		tSum += sc.gLatY[l] * t[j-pr.nx]
	}
	if y < pr.ny-1 {
		gSum += sc.gLatY[l]
		tSum += sc.gLatY[l] * t[j+pr.nx]
	}
	plane := pr.nx * pr.ny
	if l > 0 {
		gSum += sc.gVert[l-1]
		tSum += sc.gVert[l-1] * t[j-plane]
	}
	if l < pr.nl-1 {
		gSum += sc.gVert[l]
		tSum += sc.gVert[l] * t[j+plane]
	} else {
		gSum += pr.gSink
		tSum += pr.gSink * pr.p.AmbientC
	}
	return gSum, tSum
}

// result extracts the active-layer grids, applies the lumped-sink offset
// and finite-checks the field. Must run before release.
func (pr *problem) result(iters int) (Result, error) {
	// The lumped heat sink raises the whole die by P_total * SinkRAbs.
	offset := pr.totalP * pr.p.SinkRAbs

	res := Result{Iters: iters}
	var sum float64
	var cnt int
	for i, l := range pr.stack {
		if !l.Active {
			continue
		}
		base := i * pr.ny * pr.nx
		grid := make([][]float64, pr.ny)
		for y := 0; y < pr.ny; y++ {
			grid[y] = make([]float64, pr.nx)
			for x := 0; x < pr.nx; x++ {
				v := pr.sc.t[base+y*pr.nx+x] + offset
				grid[y][x] = v
				if v > res.PeakC {
					res.PeakC = v
				}
				sum += v
				cnt++
			}
		}
		res.Layers = append(res.Layers, grid)
	}
	if cnt > 0 {
		res.AvgC = sum / float64(cnt)
	}
	out := guard.New("thermal.Result")
	out.Finite("PeakC", res.PeakC)
	out.Finite("AvgC", res.AvgC)
	if err := out.Err(); err != nil {
		return Result{}, fmt.Errorf("thermal: solve diverged: %w", err)
	}
	return res, nil
}

// Solve computes the steady-state temperature field. powerMaps supplies one
// nx×ny watts-per-cell map per active layer, bottom-up.
//
// The iteration is red-black successive over-relaxation: nodes are
// two-coloured by the parity of x+y+l — every neighbour of a node has the
// opposite colour under the 7-point stencil — and each sweep updates all
// red nodes, then all black, each by t += ω·(gs−t) where gs is the plain
// Gauss-Seidel value. The convergence criterion is unchanged from the
// reference solver (max |update| < Tol), and for 0 < ω < 2 SOR converges on
// this symmetric positive-definite system (Ostrowski), to the same unique
// fixed point: at convergence the update is zero, so t equals the
// Gauss-Seidel value at every node regardless of ω or sweep order.
// SolveReference keeps the natural-order ω=1 solver for the equivalence
// tests, which pin agreement within tolerance and the ≥3× sweep reduction.
func Solve(stack []LayerSpec, p Params, powerMaps [][][]float64) (Result, error) {
	pr, err := buildProblem(stack, p, powerMaps)
	if err != nil {
		return Result{}, err
	}
	defer pr.release()
	omega := p.Omega
	if omega == 0 {
		omega = DefaultOmega
	}
	t := pr.sc.t
	iters := 0
	for iter := 0; iter < p.MaxIters; iter++ {
		var maxDelta float64
		for color := 0; color <= 1; color++ {
			for l := 0; l < pr.nl; l++ {
				base := l * pr.ny * pr.nx
				for y := 0; y < pr.ny; y++ {
					row := base + y*pr.nx
					for x := (color + l + y) & 1; x < pr.nx; x += 2 {
						j := row + x
						gSum, tSum := pr.nodeSum(l, y, x, j)
						gs := (tSum + pr.sc.pw[j]) / gSum
						nt := t[j] + omega*(gs-t[j])
						if d := math.Abs(nt - t[j]); d > maxDelta {
							maxDelta = d
						}
						t[j] = nt
					}
				}
			}
		}
		iters = iter + 1
		if maxDelta < p.Tol {
			break
		}
	}
	return pr.result(iters)
}

// SolveReference is the original natural-order Gauss-Seidel solver, kept as
// the ground truth the red-black SOR path is tested against. Identical
// stencil arithmetic (nodeSum), identical convergence criterion; only the
// sweep order and relaxation factor differ.
func SolveReference(stack []LayerSpec, p Params, powerMaps [][][]float64) (Result, error) {
	pr, err := buildProblem(stack, p, powerMaps)
	if err != nil {
		return Result{}, err
	}
	defer pr.release()
	t := pr.sc.t
	iters := 0
	for iter := 0; iter < p.MaxIters; iter++ {
		var maxDelta float64
		for l := 0; l < pr.nl; l++ {
			base := l * pr.ny * pr.nx
			for y := 0; y < pr.ny; y++ {
				row := base + y*pr.nx
				for x := 0; x < pr.nx; x++ {
					j := row + x
					gSum, tSum := pr.nodeSum(l, y, x, j)
					nt := (tSum + pr.sc.pw[j]) / gSum
					if d := math.Abs(nt - t[j]); d > maxDelta {
						maxDelta = d
					}
					t[j] = nt
				}
			}
		}
		iters = iter + 1
		if maxDelta < p.Tol {
			break
		}
	}
	return pr.result(iters)
}

// TotalPower sums a power map (helper for tests and reports).
func TotalPower(pm [][]float64) float64 {
	var s float64
	for _, row := range pm {
		for _, v := range row {
			s += v
		}
	}
	return s
}
