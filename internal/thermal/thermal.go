// Package thermal is the HotSpot substitute: a steady-state 3D resistive
// grid solver over the layer stacks of Table 10. It models lateral and
// vertical conduction through every material layer (bulk silicon, active
// layers, metal, inter-layer dielectric, TIM, heat spreader), with the heat
// sink above the stack and an adiabatic board side below, exactly the
// configuration of Figure 1.
package thermal

import (
	"fmt"
	"math"

	"vertical3d/internal/guard"
)

// LayerSpec is one material layer of the stack, listed bottom-up.
type LayerSpec struct {
	Name         string
	Thickness    float64 // meters
	Conductivity float64 // W/(m·K)
	Active       bool    // receives a power map
}

// Stack2D returns the single-die baseline stack (bottom-up).
func Stack2D() []LayerSpec {
	return []LayerSpec{
		{Name: "bulk-si", Thickness: 100e-6, Conductivity: 120},
		{Name: "active", Thickness: 1e-6, Conductivity: 120, Active: true},
		{Name: "metal", Thickness: 12e-6, Conductivity: 12},
		{Name: "tim", Thickness: 50e-6, Conductivity: 5},
		{Name: "ihs", Thickness: 1000e-6, Conductivity: 400},
	}
}

// StackM3D returns the two-layer monolithic stack of Table 10: the two
// active layers sit within ≈1µm of each other, separated by a 100nm ILD and
// a thin bottom metal layer, so vertical coupling is strong.
func StackM3D() []LayerSpec {
	return []LayerSpec{
		{Name: "bulk-si", Thickness: 100e-6, Conductivity: 120},
		{Name: "bottom-active", Thickness: 1e-6, Conductivity: 120, Active: true},
		{Name: "bottom-metal", Thickness: 1e-6, Conductivity: 12},
		{Name: "ild", Thickness: 0.1e-6, Conductivity: 1.5},
		{Name: "top-active", Thickness: 0.1e-6, Conductivity: 120, Active: true},
		{Name: "top-metal", Thickness: 12e-6, Conductivity: 12},
		{Name: "tim", Thickness: 50e-6, Conductivity: 5},
		{Name: "ihs", Thickness: 1000e-6, Conductivity: 400},
	}
}

// StackTSV3D returns the die-stacked alternative of Table 10: a 20µm
// die-to-die layer with poor conductivity separates the dies, and the
// bottom die (far from the sink) must push its heat through it.
func StackTSV3D() []LayerSpec {
	return []LayerSpec{
		{Name: "bulk-si", Thickness: 100e-6, Conductivity: 120},
		{Name: "bottom-active", Thickness: 1e-6, Conductivity: 120, Active: true},
		{Name: "bottom-metal", Thickness: 12e-6, Conductivity: 12},
		{Name: "d2d-ild", Thickness: 20e-6, Conductivity: 1.5},
		{Name: "top-si", Thickness: 20e-6, Conductivity: 120},
		{Name: "top-active", Thickness: 1e-6, Conductivity: 120, Active: true},
		{Name: "top-metal", Thickness: 12e-6, Conductivity: 12},
		{Name: "tim", Thickness: 50e-6, Conductivity: 5},
		{Name: "ihs", Thickness: 1000e-6, Conductivity: 400},
	}
}

// Params configures a solve.
type Params struct {
	ChipW, ChipH float64 // die dimensions in meters
	Nx, Ny       int     // grid resolution
	AmbientC     float64 // ambient temperature (°C)

	// SinkRUnit is the area-normalised thermal resistance from the top of
	// the stack into the heat-sink base (K·m²/W) — the density-sensitive
	// part of the package.
	SinkRUnit float64

	// SinkRAbs is the absolute heat-sink resistance to ambient (K/W). The
	// sink is much larger than the die, so this term responds to total
	// power, not power density — which is why a folded die at twice the
	// density but lower power barely warms up (Section 7.1.3).
	SinkRAbs float64

	MaxIters int
	Tol      float64
}

// DefaultParams returns the calibrated solve parameters: a 45°C ambient and
// a sink resistance that puts the ~6.4W 2D baseline core near 75°C.
func DefaultParams(chipW, chipH float64) Params {
	return Params{
		ChipW: chipW, ChipH: chipH,
		Nx: 20, Ny: 20,
		AmbientC:  45,
		SinkRUnit: 0.9e-5,
		SinkRAbs:  2.2,
		MaxIters:  20000,
		Tol:       1e-4,
	}
}

// Validate checks the solver configuration: positive die dimensions, a grid
// of at least 2x2 cells, finite ambient, positive sink resistances and a
// positive iteration budget. All violations are reported together as
// guard.Violations with per-field paths.
func (p Params) Validate() error {
	c := guard.New("thermal.Params")
	c.Positive("ChipW", p.ChipW)
	c.Positive("ChipH", p.ChipH)
	c.Check(p.Nx >= 2, "Nx", "grid must be at least 2 cells wide, got %d", p.Nx)
	c.Check(p.Ny >= 2, "Ny", "grid must be at least 2 cells tall, got %d", p.Ny)
	c.Finite("AmbientC", p.AmbientC)
	c.Positive("SinkRUnit", p.SinkRUnit)
	c.Positive("SinkRAbs", p.SinkRAbs)
	c.PositiveInt("MaxIters", p.MaxIters)
	c.Positive("Tol", p.Tol)
	return c.Err()
}

// validateStack checks every layer for a positive thickness and
// conductivity — a zero in either turns the grid conductances into NaN/Inf
// and corrupts the whole Gauss-Seidel solve.
func validateStack(stack []LayerSpec) error {
	c := guard.New("thermal.stack")
	c.Check(len(stack) >= 1, "layers", "stack must have at least one layer")
	for i, l := range stack {
		c.Positive(fmt.Sprintf("[%d:%s].Thickness", i, l.Name), l.Thickness)
		c.Positive(fmt.Sprintf("[%d:%s].Conductivity", i, l.Name), l.Conductivity)
	}
	return c.Err()
}

// validatePowerMaps checks that each active layer's map is exactly ny rows
// of nx finite, non-negative watts-per-cell entries.
func validatePowerMaps(powerMaps [][][]float64, nx, ny int) error {
	c := guard.New("thermal.powerMaps")
	for li, pm := range powerMaps {
		if len(pm) != ny {
			c.Violatef(fmt.Sprintf("[%d]", li), "power map has %d rows, grid is %d", len(pm), ny)
			continue
		}
		for y, row := range pm {
			if len(row) != nx {
				c.Violatef(fmt.Sprintf("[%d][%d]", li, y), "power map row has %d cells, grid is %d", len(row), nx)
				continue
			}
			for x, v := range row {
				if !guard.IsFinite(v) || v < 0 {
					c.Violatef(fmt.Sprintf("[%d][%d][%d]", li, y, x), "power must be finite and >= 0, got %v", v)
				}
			}
		}
	}
	return c.Err()
}

// Result is the solved temperature field.
type Result struct {
	PeakC float64
	AvgC  float64
	// Layers holds the temperature grid of each ACTIVE layer, bottom-up.
	Layers [][][]float64
}

// Solve computes the steady-state temperature field. powerMaps supplies one
// nx×ny watts-per-cell map per active layer, bottom-up.
func Solve(stack []LayerSpec, p Params, powerMaps [][][]float64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := validateStack(stack); err != nil {
		return Result{}, err
	}
	nActive := 0
	for _, l := range stack {
		if l.Active {
			nActive++
		}
	}
	if nActive != len(powerMaps) {
		return Result{}, fmt.Errorf("thermal: %d active layers but %d power maps", nActive, len(powerMaps))
	}
	if err := validatePowerMaps(powerMaps, p.Nx, p.Ny); err != nil {
		return Result{}, err
	}
	nl := len(stack)
	nx, ny := p.Nx, p.Ny
	dx := p.ChipW / float64(nx)
	dy := p.ChipH / float64(ny)
	cellA := dx * dy

	// Per-layer lateral conductances and per-interface vertical conductances.
	gLatX := make([]float64, nl)
	gLatY := make([]float64, nl)
	for i, l := range stack {
		gLatX[i] = l.Conductivity * l.Thickness * dy / dx
		gLatY[i] = l.Conductivity * l.Thickness * dx / dy
	}
	gVert := make([]float64, nl-1) // between layer i and i+1
	for i := 0; i < nl-1; i++ {
		r := 0.5*stack[i].Thickness/stack[i].Conductivity +
			0.5*stack[i+1].Thickness/stack[i+1].Conductivity
		gVert[i] = cellA / r
	}
	gSink := cellA / p.SinkRUnit // top layer to ambient

	// Power per node.
	pw := make([][]float64, nl)
	for i := range pw {
		pw[i] = make([]float64, nx*ny)
	}
	ai := 0
	for i, l := range stack {
		if !l.Active {
			continue
		}
		pm := powerMaps[ai]
		ai++
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				pw[i][y*nx+x] = pm[y][x]
			}
		}
	}

	// Gauss-Seidel iteration.
	t := make([][]float64, nl)
	for i := range t {
		t[i] = make([]float64, nx*ny)
		for j := range t[i] {
			t[i][j] = p.AmbientC
		}
	}
	for iter := 0; iter < p.MaxIters; iter++ {
		var maxDelta float64
		for l := 0; l < nl; l++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					j := y*nx + x
					var gSum, tSum float64
					if x > 0 {
						gSum += gLatX[l]
						tSum += gLatX[l] * t[l][j-1]
					}
					if x < nx-1 {
						gSum += gLatX[l]
						tSum += gLatX[l] * t[l][j+1]
					}
					if y > 0 {
						gSum += gLatY[l]
						tSum += gLatY[l] * t[l][j-nx]
					}
					if y < ny-1 {
						gSum += gLatY[l]
						tSum += gLatY[l] * t[l][j+nx]
					}
					if l > 0 {
						gSum += gVert[l-1]
						tSum += gVert[l-1] * t[l-1][j]
					}
					if l < nl-1 {
						gSum += gVert[l]
						tSum += gVert[l] * t[l+1][j]
					} else {
						gSum += gSink
						tSum += gSink * p.AmbientC
					}
					nt := (tSum + pw[l][j]) / gSum
					if d := math.Abs(nt - t[l][j]); d > maxDelta {
						maxDelta = d
					}
					t[l][j] = nt
				}
			}
		}
		if maxDelta < p.Tol {
			break
		}
	}

	// The lumped heat sink raises the whole die by P_total * SinkRAbs.
	var totalP float64
	for _, pm := range powerMaps {
		totalP += TotalPower(pm)
	}
	offset := totalP * p.SinkRAbs

	res := Result{}
	var sum float64
	var cnt int
	for i, l := range stack {
		if !l.Active {
			continue
		}
		grid := make([][]float64, ny)
		for y := 0; y < ny; y++ {
			grid[y] = make([]float64, nx)
			for x := 0; x < nx; x++ {
				v := t[i][y*nx+x] + offset
				grid[y][x] = v
				if v > res.PeakC {
					res.PeakC = v
				}
				sum += v
				cnt++
			}
		}
		res.Layers = append(res.Layers, grid)
	}
	if cnt > 0 {
		res.AvgC = sum / float64(cnt)
	}
	out := guard.New("thermal.Result")
	out.Finite("PeakC", res.PeakC)
	out.Finite("AvgC", res.AvgC)
	if err := out.Err(); err != nil {
		return Result{}, fmt.Errorf("thermal: solve diverged: %w", err)
	}
	return res, nil
}

// TotalPower sums a power map (helper for tests and reports).
func TotalPower(pm [][]float64) float64 {
	var s float64
	for _, row := range pm {
		for _, v := range row {
			s += v
		}
	}
	return s
}
