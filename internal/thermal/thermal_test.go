package thermal

import (
	"testing"
	"testing/quick"
)

// uniformMap spreads watts evenly over an nx×ny grid.
func uniformMap(watts float64, nx, ny int) [][]float64 {
	per := watts / float64(nx*ny)
	g := make([][]float64, ny)
	for y := range g {
		g[y] = make([]float64, nx)
		for x := range g[y] {
			g[y][x] = per
		}
	}
	return g
}

func solve2D(t *testing.T, watts float64) Result {
	t.Helper()
	p := DefaultParams(2.9e-3, 2.3e-3)
	r, err := Solve(Stack2D(), p, [][][]float64{uniformMap(watts, p.Nx, p.Ny)})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestZeroPowerStaysAmbient(t *testing.T) {
	r := solve2D(t, 0)
	if r.PeakC < 44.9 || r.PeakC > 45.1 {
		t.Errorf("zero power must stay at ambient 45°C, got %.2f", r.PeakC)
	}
}

func TestBaselineTemperaturePlausible(t *testing.T) {
	// A ~6.4W 2D core should land in the 65-95°C range the paper's Figure 8
	// shows for Base.
	r := solve2D(t, 6.4)
	if r.PeakC < 60 || r.PeakC > 100 {
		t.Errorf("6.4W baseline peak %.1f°C outside [60,100]", r.PeakC)
	}
	if r.AvgC > r.PeakC {
		t.Error("average cannot exceed peak")
	}
}

func TestMorePowerIsHotter(t *testing.T) {
	a := solve2D(t, 4)
	b := solve2D(t, 8)
	if b.PeakC <= a.PeakC {
		t.Errorf("doubling power must raise temperature: %.1f vs %.1f", a.PeakC, b.PeakC)
	}
}

func TestHotspotExceedsUniform(t *testing.T) {
	p := DefaultParams(2.9e-3, 2.3e-3)
	watts := 6.0
	uni, err := Solve(Stack2D(), p, [][][]float64{uniformMap(watts, p.Nx, p.Ny)})
	if err != nil {
		t.Fatal(err)
	}
	// Concentrate the same power in one quarter of the die.
	hot := uniformMap(0, p.Nx, p.Ny)
	cells := (p.Nx / 2) * (p.Ny / 2)
	for y := 0; y < p.Ny/2; y++ {
		for x := 0; x < p.Nx/2; x++ {
			hot[y][x] = watts / float64(cells)
		}
	}
	conc, err := Solve(Stack2D(), p, [][][]float64{hot})
	if err != nil {
		t.Fatal(err)
	}
	if conc.PeakC <= uni.PeakC {
		t.Errorf("a hotspot must run hotter than uniform power: %.1f vs %.1f", conc.PeakC, uni.PeakC)
	}
}

// twoLayerPeak solves a folded two-layer stack with the power split 55/45.
func twoLayerPeak(t *testing.T, stack []LayerSpec, watts float64) float64 {
	t.Helper()
	// Folded die: half the footprint.
	p := DefaultParams(2.9e-3*0.7071, 2.3e-3*0.7071)
	maps := [][][]float64{
		uniformMap(watts*0.55, p.Nx, p.Ny),
		uniformMap(watts*0.45, p.Nx, p.Ny),
	}
	r, err := Solve(stack, p, maps)
	if err != nil {
		t.Fatal(err)
	}
	return r.PeakC
}

func TestM3DCoolerThanTSV3D(t *testing.T) {
	// The paper's Figure 8 story: at equal power and footprint, the
	// monolithic stack (thin ILD) runs much cooler than the die-stacked one
	// (20µm thermally-resistive D2D layer).
	watts := 6.4
	m3d := twoLayerPeak(t, StackM3D(), watts)
	tsv := twoLayerPeak(t, StackTSV3D(), watts)
	if m3d >= tsv {
		t.Errorf("M3D (%.1f°C) must run cooler than TSV3D (%.1f°C)", m3d, tsv)
	}
	if tsv-m3d < 3 {
		t.Errorf("TSV3D should be clearly hotter, gap only %.1f°C", tsv-m3d)
	}
}

func TestFoldedM3DOnlyModeratelyHotter(t *testing.T) {
	base := solve2D(t, 6.4)
	// The M3D core consumes ~24% less power than Base at double density.
	m3d := twoLayerPeak(t, StackM3D(), 6.4*0.76)
	delta := m3d - base.PeakC
	if delta < -2 || delta > 15 {
		t.Errorf("M3D-Het peak should be within ~0-15°C of Base (paper: ≈+5°C), got %+.1f°C", delta)
	}
}

func TestSolveValidation(t *testing.T) {
	p := DefaultParams(1e-3, 1e-3)
	if _, err := Solve(Stack2D(), p, nil); err == nil {
		t.Error("expected error for missing power maps")
	}
	p2 := p
	p2.Nx = 1
	if _, err := Solve(Stack2D(), p2, [][][]float64{uniformMap(1, 1, 1)}); err == nil {
		t.Error("expected error for tiny grid")
	}
}

func TestStacksMatchTable10(t *testing.T) {
	m3d := StackM3D()
	tsv := StackTSV3D()
	find := func(ls []LayerSpec, name string) LayerSpec {
		for _, l := range ls {
			if l.Name == name {
				return l
			}
		}
		t.Fatalf("layer %q missing", name)
		return LayerSpec{}
	}
	if l := find(m3d, "ild"); l.Thickness != 0.1e-6 || l.Conductivity != 1.5 {
		t.Errorf("M3D ILD %v disagrees with Table 10", l)
	}
	if l := find(tsv, "d2d-ild"); l.Thickness != 20e-6 {
		t.Errorf("TSV3D D2D ILD %v disagrees with Table 10", l)
	}
	if l := find(m3d, "top-active"); l.Thickness != 0.1e-6 {
		t.Errorf("M3D top silicon %v disagrees with Table 10 (100nm)", l)
	}
	count := func(ls []LayerSpec) int {
		n := 0
		for _, l := range ls {
			if l.Active {
				n++
			}
		}
		return n
	}
	if count(m3d) != 2 || count(tsv) != 2 || count(Stack2D()) != 1 {
		t.Error("active layer counts wrong")
	}
}

func TestPropertyMonotoneInPower(t *testing.T) {
	p := DefaultParams(2e-3, 2e-3)
	p.Nx, p.Ny = 8, 8
	p.MaxIters = 4000
	f := func(seed uint8) bool {
		w := 1 + float64(seed)/16
		a, err1 := Solve(Stack2D(), p, [][][]float64{uniformMap(w, 8, 8)})
		b, err2 := Solve(Stack2D(), p, [][][]float64{uniformMap(w*1.5, 8, 8)})
		if err1 != nil || err2 != nil {
			return false
		}
		return b.PeakC > a.PeakC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTotalPower(t *testing.T) {
	if got := TotalPower(uniformMap(6.4, 10, 10)); got < 6.39 || got > 6.41 {
		t.Errorf("TotalPower = %v, want 6.4", got)
	}
}
