package thermal

import (
	"math"
	"runtime"
	"testing"
)

// stackMaps builds a uniform power split for every active layer of a stack.
func stackMaps(stack []LayerSpec, watts float64, nx, ny int) [][][]float64 {
	n := 0
	for _, l := range stack {
		if l.Active {
			n++
		}
	}
	maps := make([][][]float64, n)
	for i := range maps {
		maps[i] = uniformMap(watts/float64(n), nx, ny)
	}
	return maps
}

// TestSORMatchesReference pins the tolerance proof: at a tight tolerance the
// red-black SOR solver and the natural-order Gauss-Seidel reference agree on
// every active-layer node. Both iterate to the same fixed point — the
// stencil arithmetic is shared (nodeSum) and at convergence the SOR update
// ω·(gs−t) vanishes exactly when the Gauss-Seidel update does — so the only
// difference is how far inside Tol each stops.
func TestSORMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stack []LayerSpec
	}{
		{"2d", Stack2D()},
		{"m3d", StackM3D()},
		{"tsv3d", StackTSV3D()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams(2.9e-3, 2.3e-3)
			p.Tol = 1e-6 // tighten so both solvers sit hard on the fixed point
			maps := stackMaps(tc.stack, 6.4, p.Nx, p.Ny)
			sor, err := Solve(tc.stack, p, maps)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := SolveReference(tc.stack, p, maps)
			if err != nil {
				t.Fatal(err)
			}
			const tol = 0.01 // °C agreement across the whole field
			if d := math.Abs(sor.PeakC - ref.PeakC); d > tol {
				t.Errorf("peak disagrees by %.4f°C (SOR %.4f vs ref %.4f)", d, sor.PeakC, ref.PeakC)
			}
			if d := math.Abs(sor.AvgC - ref.AvgC); d > tol {
				t.Errorf("avg disagrees by %.4f°C", d)
			}
			for li := range ref.Layers {
				for y := range ref.Layers[li] {
					for x := range ref.Layers[li][y] {
						if d := math.Abs(sor.Layers[li][y][x] - ref.Layers[li][y][x]); d > tol {
							t.Fatalf("layer %d node (%d,%d) disagrees by %.4f°C", li, x, y, d)
						}
					}
				}
			}
		})
	}
}

// TestSORSweepReduction pins the performance claim from the issue: the tuned
// red-black SOR converges in at least 3× fewer sweeps than the reference
// solver at the same convergence criterion (in practice 12–15× at ω=1.9).
func TestSORSweepReduction(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stack []LayerSpec
	}{
		{"2d", Stack2D()},
		{"m3d", StackM3D()},
		{"tsv3d", StackTSV3D()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams(2.9e-3, 2.3e-3)
			maps := stackMaps(tc.stack, 6.4, p.Nx, p.Ny)
			sor, err := Solve(tc.stack, p, maps)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := SolveReference(tc.stack, p, maps)
			if err != nil {
				t.Fatal(err)
			}
			if sor.Iters == 0 || ref.Iters == 0 {
				t.Fatalf("solvers reported zero sweeps (sor %d, ref %d)", sor.Iters, ref.Iters)
			}
			if ratio := float64(ref.Iters) / float64(sor.Iters); ratio < 3 {
				t.Errorf("SOR must converge in ≥3× fewer sweeps, got %.1f× (%d vs %d)",
					ratio, sor.Iters, ref.Iters)
			}
		})
	}
}

// TestSolveScratchReuse pins the GC-churn fix: after a warmup solve has
// populated the pool, further solves of the same geometry allocate only the
// returned Result grids and small validation strings, not the internal
// temperature/power slabs. The slabs for the 8-layer M3D stack are
// 2·nl·nx·ny float64 ≈ 51KB per solve; everything else is ~10KB, so a
// 30KB/solve ceiling cleanly separates reuse from re-allocation.
func TestSolveScratchReuse(t *testing.T) {
	p := DefaultParams(2.9e-3, 2.3e-3)
	stack := StackM3D()
	maps := stackMaps(stack, 6.4, p.Nx, p.Ny)
	solve := func() {
		if _, err := Solve(stack, p, maps); err != nil {
			t.Fatal(err)
		}
	}
	solve() // prime the pool

	const runs = 20
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		solve()
	}
	runtime.ReadMemStats(&after)
	perRun := float64(after.TotalAlloc-before.TotalAlloc) / runs
	if perRun > 30_000 {
		t.Errorf("Solve allocates %.0f bytes/run, want ≤ 30000 (scratch slabs not reused?)", perRun)
	}
}
