package sram

import "vertical3d/internal/guard"

// Params holds the calibration constants of the array model. DefaultParams
// is tuned so that the 2D baselines and the partitioned organisations
// reproduce the reductions reported in Tables 3-6 and 8 of the paper within
// a few percentage points. All constants are dimensionless multipliers of
// node quantities unless noted.
type Params struct {
	// CellAspect is the width/height ratio of a bitcell.
	CellAspect float64

	// CoreEquivPorts expresses the area of the bitcell's cross-coupled
	// inverter pair in "port equivalents". The paper measures the two
	// inverters to be comparable to two ports (Section 4.2.1).
	CoreEquivPorts float64

	// UpsizePitchFrac is the fraction of a transistor-width increase that
	// turns into cell pitch increase: doubling device widths does not double
	// the port pitch because wire pitch dominates.
	UpsizePitchFrac float64

	// CAMCellWFactor widens CAM cells for the match transistors.
	CAMCellWFactor float64

	// AccessGateCapFrac is the gate capacitance of one access transistor in
	// minimum-inverter input capacitances.
	AccessGateCapFrac float64

	// DrainCapFrac is the bitline drain capacitance contributed per cell, in
	// minimum-inverter input capacitances.
	DrainCapFrac float64

	// CellDriveResFactor is the bitline discharge resistance of a cell in
	// multiples of the minimum-inverter drive resistance.
	CellDriveResFactor float64

	// BitlineTimeFactor converts the bitline RC into a delay to the
	// sense-amp threshold swing.
	BitlineTimeFactor float64

	// ArrayWireRFactor inflates the node's local wire resistance for the
	// wordline/bitline wires, which must pitch-match the cells and therefore
	// use the finest (most resistive) metal.
	ArrayWireRFactor float64

	// SenseAmpFO4 is the sense-amplifier delay in FO4 units.
	SenseAmpFO4 float64

	// SenseAmpCapInv is the sense-amp energy-equivalent capacitance per
	// column, in minimum-inverter input capacitances.
	SenseAmpCapInv float64

	// BitlineSwingFrac is the read swing as a fraction of Vdd for energy.
	BitlineSwingFrac float64

	// MatchMissFrac is the fraction of matchlines that discharge on a CAM
	// search (most words mismatch).
	MatchMissFrac float64

	// MatchTimeFactor converts the matchline RC into delay.
	MatchTimeFactor float64

	// PriorityFO4PerLevel is the delay per binary level of the priority
	// encoder / OR-reduction in FO4 units.
	PriorityFO4PerLevel float64

	// WPMergeLevels is the extra arbitration depth a word-partitioned CAM
	// pays to merge the two layers' match vectors.
	WPMergeLevels float64

	// DecoderDelayFactor scales the generic decoder-chain delay for the
	// skewed, self-resetting decoders real arrays use.
	DecoderDelayFactor float64

	// MaxFold caps the column-multiplexing degree used to balance tall
	// arrays (CACTI's Ndbl folding).
	MaxFold int

	// MinRows is the smallest physical row count folding may produce.
	MinRows int

	// MatMaxRows caps the bitline length: arrays taller than this are split
	// into multiple mats tied together by an H-tree (CACTI's Ndbl).
	MatMaxRows int

	// HTreeDelayFactor inflates the ideal repeatered-wire delay of the
	// inter-mat H-tree for buffers, turns and muxing.
	HTreeDelayFactor float64

	// DecoderStripF, WLDriverStripF, SenseStripF size the peripheral strips
	// in feature sizes: the decoder column width per address bit, the
	// wordline-driver column width, and the sense-amp row height.
	DecoderStripF  float64
	WLDriverStripF float64
	SenseStripF    float64

	// PeriphFixedFrac inflates every layer's area for control logic,
	// precharge, and routing that does not shrink with partitioning.
	PeriphFixedFrac float64

	// BankRouteFrac scales the inter-bank H-tree routing distance relative
	// to the bank perimeter.
	BankRouteFrac float64

	// LeakPerCellInv is the leakage of one bitcell in minimum-inverter
	// leakage units; periphery adds PeriphLeakFrac on top.
	LeakPerCellInv  float64
	PeriphLeakFrac  float64
	PortLeakPerCell float64 // additional leakage per extra port per cell
}

// Validate checks the calibration constants for physical sense. Every
// multiplier must be finite and positive (zero would silently null out a
// delay or energy term), fractions must stay in (0, 1], and the integer
// folding knobs must be positive. All violations are reported together as
// guard.Violations with per-field paths.
func (p Params) Validate() error {
	c := guard.New("sram.Params")
	c.Positive("CellAspect", p.CellAspect)
	c.Positive("CoreEquivPorts", p.CoreEquivPorts)
	c.InRange("UpsizePitchFrac", p.UpsizePitchFrac, 0, 1)
	c.Positive("CAMCellWFactor", p.CAMCellWFactor)
	c.Positive("AccessGateCapFrac", p.AccessGateCapFrac)
	c.Positive("DrainCapFrac", p.DrainCapFrac)
	c.Positive("CellDriveResFactor", p.CellDriveResFactor)
	c.Positive("BitlineTimeFactor", p.BitlineTimeFactor)
	c.Positive("ArrayWireRFactor", p.ArrayWireRFactor)
	c.Positive("SenseAmpFO4", p.SenseAmpFO4)
	c.Positive("SenseAmpCapInv", p.SenseAmpCapInv)
	c.InOpenRange("BitlineSwingFrac", p.BitlineSwingFrac, 0, 1)
	c.InRange("MatchMissFrac", p.MatchMissFrac, 0, 1)
	c.Positive("MatchTimeFactor", p.MatchTimeFactor)
	c.Positive("PriorityFO4PerLevel", p.PriorityFO4PerLevel)
	c.NonNegative("WPMergeLevels", p.WPMergeLevels)
	c.Positive("DecoderDelayFactor", p.DecoderDelayFactor)
	c.PositiveInt("MaxFold", p.MaxFold)
	c.PositiveInt("MinRows", p.MinRows)
	c.PositiveInt("MatMaxRows", p.MatMaxRows)
	c.Positive("HTreeDelayFactor", p.HTreeDelayFactor)
	c.Positive("DecoderStripF", p.DecoderStripF)
	c.Positive("WLDriverStripF", p.WLDriverStripF)
	c.Positive("SenseStripF", p.SenseStripF)
	c.NonNegative("PeriphFixedFrac", p.PeriphFixedFrac)
	c.NonNegative("BankRouteFrac", p.BankRouteFrac)
	c.Positive("LeakPerCellInv", p.LeakPerCellInv)
	c.NonNegative("PeriphLeakFrac", p.PeriphLeakFrac)
	c.NonNegative("PortLeakPerCell", p.PortLeakPerCell)
	return c.Err()
}

// DefaultParams returns the calibrated constants used throughout the
// repository.
func DefaultParams() Params {
	return Params{
		CellAspect:          2.0,
		CoreEquivPorts:      2.0,
		UpsizePitchFrac:     0.5,
		CAMCellWFactor:      1.25,
		AccessGateCapFrac:   0.3,
		DrainCapFrac:        0.3,
		CellDriveResFactor:  0.9,
		BitlineTimeFactor:   0.3,
		ArrayWireRFactor:    2.2,
		SenseAmpFO4:         1.5,
		SenseAmpCapInv:      4.0,
		BitlineSwingFrac:    0.08,
		MatchMissFrac:       0.9,
		MatchTimeFactor:     0.25,
		PriorityFO4PerLevel: 0.5,
		WPMergeLevels:       2.0,
		DecoderDelayFactor:  0.6,
		MaxFold:             16,
		MinRows:             96,
		MatMaxRows:          256,
		HTreeDelayFactor:    3.5,
		DecoderStripF:       30,
		WLDriverStripF:      60,
		SenseStripF:         180,
		PeriphFixedFrac:     0.10,
		BankRouteFrac:       1.0,
		LeakPerCellInv:      1.5,
		PeriphLeakFrac:      0.25,
		PortLeakPerCell:     0.4,
	}
}
