package sram_test

import (
	"fmt"

	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

// ExampleModel partitions the paper's 18-port register file with port
// partitioning and prints the reductions a vertical M3D layout delivers.
func ExampleModel() {
	node := tech.N22()
	rf := sram.Spec{Name: "RF", Words: 160, Bits: 64, Banks: 1, ReadPorts: 12, WritePorts: 6}

	base, err := sram.Model(node, rf, sram.Flat())
	if err != nil {
		panic(err)
	}
	pp, err := sram.Model(node, rf, sram.Iso(sram.PortPart, tech.MIV()))
	if err != nil {
		panic(err)
	}
	red := pp.ReductionVs(base)
	fmt.Printf("latency -%.0f%% energy -%.0f%% footprint -%.0f%%\n",
		red.Latency*100, red.Energy*100, red.Footprint*100)
	// Output: latency -31% energy -43% footprint -69%
}

// ExampleHetero shows the hetero-layer design: a slower top layer,
// compensated by an asymmetric split and upsized top-layer devices.
func ExampleHetero() {
	node := tech.N22()
	rf := sram.Spec{Name: "RF", Words: 160, Bits: 64, Banks: 1, ReadPorts: 12, WritePorts: 6}
	p := sram.Hetero(sram.PortPart, tech.MIV(), 10.0/18.0, 2.0)
	fmt.Printf("strategy=%v bottomFrac=%.2f topDelay=%.2f upsize=%.1f\n",
		p.Strategy, p.BottomFrac, p.TopDelayFactor, p.TopUpsize)
	_, err := sram.Model(node, rf, p)
	fmt.Println("feasible:", err == nil)
	// Output:
	// strategy=PP bottomFrac=0.56 topDelay=1.17 upsize=2.0
	// feasible: true
}
