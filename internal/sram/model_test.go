package sram

import (
	"math"
	"testing"
	"testing/quick"

	"vertical3d/internal/tech"
)

func n22() *tech.Node { return tech.N22() }

func rfSpec() Spec {
	return Spec{Name: "RF", Words: 160, Bits: 64, Banks: 1, ReadPorts: 12, WritePorts: 6}
}

func bptSpec() Spec {
	return Spec{Name: "BPT", Words: 4096, Bits: 8, Banks: 1, ReadPorts: 1}
}

func sqSpec() Spec {
	return Spec{Name: "SQ", Words: 56, Bits: 48, Banks: 1, ReadPorts: 1, WritePorts: 1, CAM: true, TagBits: 40}
}

func mustModel(t *testing.T, s Spec, p Partition) Result {
	t.Helper()
	r, err := Model(n22(), s, p)
	if err != nil {
		t.Fatalf("Model(%s, %v): %v", s.Name, p.Strategy, err)
	}
	return r
}

func TestFlat2DBasicSanity(t *testing.T) {
	for _, s := range []Spec{rfSpec(), bptSpec(), sqSpec()} {
		r := mustModel(t, s, Flat())
		if r.AccessTime <= 0 || r.ReadEnergy <= 0 || r.WriteEnergy <= 0 {
			t.Errorf("%s: non-positive access metrics: %+v", s.Name, r)
		}
		if r.FootprintArea <= 0 || r.TotalSiliconArea < r.FootprintArea*0.99 {
			t.Errorf("%s: inconsistent areas: foot=%v total=%v", s.Name, r.FootprintArea, r.TotalSiliconArea)
		}
		if r.LeakageWatts <= 0 {
			t.Errorf("%s: leakage must be positive", s.Name)
		}
		if r.Vias != 0 {
			t.Errorf("%s: 2D layout must use no vias, got %d", s.Name, r.Vias)
		}
	}
}

func TestCAMHasSearchMetrics(t *testing.T) {
	r := mustModel(t, sqSpec(), Flat())
	if r.SearchEnergy <= 0 {
		t.Error("CAM structure must report search energy")
	}
	if r.Breakdown.MatchLine <= 0 || r.Breakdown.TagDrive <= 0 || r.Breakdown.Priority <= 0 {
		t.Errorf("CAM breakdown missing search components: %+v", r.Breakdown)
	}
	ram := mustModel(t, rfSpec(), Flat())
	if ram.SearchEnergy != 0 {
		t.Error("non-CAM structure must not report search energy")
	}
}

func TestM3DPartitionsReduceFootprint(t *testing.T) {
	for _, s := range []Spec{rfSpec(), bptSpec(), sqSpec()} {
		base := mustModel(t, s, Flat())
		for _, st := range []Strategy{BitPart, WordPart, PortPart} {
			if st == PortPart && s.Ports() < 2 {
				continue
			}
			r := mustModel(t, s, Iso(st, tech.MIV()))
			red := r.ReductionVs(base)
			if red.Footprint < 0.25 || red.Footprint > 0.75 {
				t.Errorf("%s/%v: M3D footprint reduction %.0f%% outside the plausible 25-75%% band",
					s.Name, st, red.Footprint*100)
			}
			if r.Vias == 0 {
				t.Errorf("%s/%v: 3D organisation must use vias", s.Name, st)
			}
		}
	}
}

func TestM3DBeatsTSV3DEverywhere(t *testing.T) {
	// The headline technology claim: at equal strategy, MIV-based M3D always
	// achieves at least the latency and footprint reduction of TSV3D.
	for _, s := range []Spec{rfSpec(), bptSpec(), sqSpec()} {
		base := mustModel(t, s, Flat())
		for _, st := range []Strategy{BitPart, WordPart, PortPart} {
			if st == PortPart && s.Ports() < 2 {
				continue
			}
			m3d := mustModel(t, s, Iso(st, tech.MIV())).ReductionVs(base)
			tsv := mustModel(t, s, Iso(st, tech.TSVAggressive())).ReductionVs(base)
			if m3d.Latency < tsv.Latency-1e-9 {
				t.Errorf("%s/%v: M3D latency reduction %.1f%% < TSV3D %.1f%%",
					s.Name, st, m3d.Latency*100, tsv.Latency*100)
			}
			if m3d.Footprint < tsv.Footprint-1e-9 {
				t.Errorf("%s/%v: M3D footprint reduction %.1f%% < TSV3D %.1f%%",
					s.Name, st, m3d.Footprint*100, tsv.Footprint*100)
			}
		}
	}
}

func TestPortPartitioningCatastrophicWithTSVs(t *testing.T) {
	// Table 5: two TSVs per cell blow up the register file — the footprint
	// and latency get dramatically worse, unlike with MIVs.
	base := mustModel(t, rfSpec(), Flat())
	tsv := mustModel(t, rfSpec(), Iso(PortPart, tech.TSVAggressive())).ReductionVs(base)
	if tsv.Footprint > -1.0 {
		t.Errorf("TSV port partitioning should at least double the RF footprint, got %.0f%% reduction", tsv.Footprint*100)
	}
	if tsv.Latency > 0 {
		t.Errorf("TSV port partitioning should slow the RF down, got %.0f%% reduction", tsv.Latency*100)
	}
	miv := mustModel(t, rfSpec(), Iso(PortPart, tech.MIV())).ReductionVs(base)
	if miv.Latency < 0.25 || miv.Footprint < 0.4 {
		t.Errorf("MIV port partitioning should strongly improve the RF, got lat %.0f%% foot %.0f%%",
			miv.Latency*100, miv.Footprint*100)
	}
}

func TestPortPartitioningBestForRegisterFile(t *testing.T) {
	// Table 6: PP gives the multiported RF its largest latency reduction.
	base := mustModel(t, rfSpec(), Flat())
	bp := mustModel(t, rfSpec(), Iso(BitPart, tech.MIV()))
	wp := mustModel(t, rfSpec(), Iso(WordPart, tech.MIV()))
	pp := mustModel(t, rfSpec(), Iso(PortPart, tech.MIV()))
	if pp.AccessTime >= bp.AccessTime || pp.AccessTime >= wp.AccessTime {
		t.Errorf("PP should be fastest for the RF: pp=%v bp=%v wp=%v",
			pp.AccessTime, bp.AccessTime, wp.AccessTime)
	}
	if red := pp.ReductionVs(base); red.Latency < 0.30 || red.Latency > 0.55 {
		t.Errorf("RF PP latency reduction %.0f%% outside the 30-55%% band around the paper's 41%%", red.Latency*100)
	}
}

func TestWordPartitioningBestForTallBPT(t *testing.T) {
	// Table 6: the BPT's tall aspect ratio makes WP the best choice.
	bp := mustModel(t, bptSpec(), Iso(BitPart, tech.MIV()))
	wp := mustModel(t, bptSpec(), Iso(WordPart, tech.MIV()))
	if wp.AccessTime >= bp.AccessTime {
		t.Errorf("WP should beat BP for the tall BPT: wp=%v bp=%v", wp.AccessTime, bp.AccessTime)
	}
	if wp.Energy() >= bp.Energy() {
		t.Errorf("WP should beat BP on BPT energy: wp=%v bp=%v", wp.Energy(), bp.Energy())
	}
}

func TestHeteroLayerRecoversIsoGains(t *testing.T) {
	// The paper's core message (Table 8 vs Table 6): asymmetric partitioning
	// with upsized top-layer devices keeps hetero-layer results within a few
	// points of the same-performance-layer results.
	cases := []struct {
		spec Spec
		st   Strategy
		frac float64
	}{
		{rfSpec(), PortPart, 10.0 / 18.0},
		{bptSpec(), WordPart, 0.55},
		{sqSpec(), PortPart, 0.5},
	}
	for _, c := range cases {
		base := mustModel(t, c.spec, Flat())
		iso := mustModel(t, c.spec, Iso(c.st, tech.MIV())).ReductionVs(base)
		het := mustModel(t, c.spec, Hetero(c.st, tech.MIV(), c.frac, 1.5)).ReductionVs(base)
		if het.Latency < iso.Latency-0.10 {
			t.Errorf("%s/%v: hetero latency reduction %.0f%% falls more than 10pp below iso %.0f%%",
				c.spec.Name, c.st, het.Latency*100, iso.Latency*100)
		}
		if het.Latency <= 0 {
			t.Errorf("%s/%v: hetero partitioning must still beat 2D, got %.0f%%",
				c.spec.Name, c.st, het.Latency*100)
		}
	}
}

func TestNaiveHeteroWorseThanCompensated(t *testing.T) {
	// Without upsizing, a symmetric split on hetero layers is slower than
	// the compensated asymmetric design.
	s := bptSpec()
	naive := mustModel(t, s, Partition{
		Strategy: WordPart, Via: tech.MIV(), BottomFrac: 0.5,
		TopDelayFactor: tech.LPTopLayer.DelayFactor(), TopUpsize: 1.0,
	})
	comp := mustModel(t, s, Hetero(WordPart, tech.MIV(), 0.55, 1.5))
	if comp.AccessTime >= naive.AccessTime {
		t.Errorf("compensated hetero (%.1fps) should beat naive hetero (%.1fps)",
			comp.AccessTime*1e12, naive.AccessTime*1e12)
	}
}

func TestValidation(t *testing.T) {
	n := n22()
	if _, err := Model(n, Spec{Name: "bad", Words: 1, Bits: 8, Banks: 1}, Flat()); err == nil {
		t.Error("expected error for 1-word array")
	}
	if _, err := Model(n, Spec{Name: "bad", Words: 64, Bits: 8, Banks: 0}, Flat()); err == nil {
		t.Error("expected error for zero banks")
	}
	s := rfSpec()
	if _, err := Model(n, s, Partition{Strategy: BitPart, BottomFrac: 0, Via: tech.MIV(), TopDelayFactor: 1, TopUpsize: 1}); err == nil {
		t.Error("expected error for BottomFrac=0")
	}
	if _, err := Model(n, s, Partition{Strategy: BitPart, BottomFrac: 0.5, TopDelayFactor: 1, TopUpsize: 1}); err == nil {
		t.Error("expected error for missing via")
	}
	if _, err := Model(n, bptSpec(), Iso(PortPart, tech.MIV())); err == nil {
		t.Error("expected error port-partitioning a single-ported array")
	}
}

func TestBanksIncreaseAreaAndLatency(t *testing.T) {
	one := Spec{Name: "c1", Words: 256, Bits: 256, Banks: 1, ReadPorts: 1}
	four := Spec{Name: "c4", Words: 256, Bits: 256, Banks: 4, ReadPorts: 1}
	r1 := mustModel(t, one, Flat())
	r4 := mustModel(t, four, Flat())
	if r4.FootprintArea <= 3*r1.FootprintArea {
		t.Error("4 banks should occupy nearly 4x the area")
	}
	if r4.AccessTime <= r1.AccessTime {
		t.Error("bank routing should add latency")
	}
	if r4.LeakageWatts <= 3*r1.LeakageWatts {
		t.Error("4 banks should leak nearly 4x")
	}
}

func TestMorePortsGrowTheArray(t *testing.T) {
	small := Spec{Name: "p2", Words: 64, Bits: 32, Banks: 1, ReadPorts: 1, WritePorts: 1}
	big := Spec{Name: "p8", Words: 64, Bits: 32, Banks: 1, ReadPorts: 6, WritePorts: 2}
	rs := mustModel(t, small, Flat())
	rb := mustModel(t, big, Flat())
	// Area grows roughly with the square of the port count (Section 3.2).
	ratio := rb.FootprintArea / rs.FootprintArea
	if ratio < 3 {
		t.Errorf("8-port array should be much larger than 2-port: ratio %.1f", ratio)
	}
	if rb.AccessTime <= rs.AccessTime {
		t.Error("more ports should slow the array down")
	}
}

func TestPropertyFootprintNeverExceedsTotalArea(t *testing.T) {
	n := n22()
	f := func(wSeed, bSeed, pSeed uint8) bool {
		s := Spec{
			Name:      "q",
			Words:     32 + int(wSeed)*8,
			Bits:      8 + int(bSeed)%64,
			Banks:     1 + int(pSeed)%4,
			ReadPorts: 1 + int(pSeed)%6,
		}
		for _, p := range []Partition{Flat(), Iso(BitPart, tech.MIV()), Iso(WordPart, tech.MIV())} {
			r, err := Model(n, s, p)
			if err != nil {
				return false
			}
			if r.FootprintArea > r.TotalSiliconArea*1.0000001 {
				return false
			}
			if r.AccessTime <= 0 || r.ReadEnergy <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBiggerArraysSlower(t *testing.T) {
	n := n22()
	f := func(seed uint8) bool {
		words := 64 + int(seed)*4
		a := Spec{Name: "a", Words: words, Bits: 32, Banks: 1, ReadPorts: 1}
		b := Spec{Name: "b", Words: words * 4, Bits: 32, Banks: 1, ReadPorts: 1}
		ra, err1 := Model(n, a, Flat())
		rb, err2 := Model(n, b, Flat())
		if err1 != nil || err2 != nil {
			return false
		}
		return rb.AccessTime > ra.AccessTime && rb.FootprintArea > ra.FootprintArea
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReductionVsMath(t *testing.T) {
	base := Result{AccessTime: 100, ReadEnergy: 10, FootprintArea: 1000}
	r := Result{AccessTime: 60, ReadEnergy: 7, FootprintArea: 500}
	red := r.ReductionVs(base)
	if math.Abs(red.Latency-0.4) > 1e-12 || math.Abs(red.Energy-0.3) > 1e-12 || math.Abs(red.Footprint-0.5) > 1e-12 {
		t.Errorf("reduction math wrong: %+v", red)
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{Flat2D: "2D", BitPart: "BP", WordPart: "WP", PortPart: "PP"}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), w)
		}
	}
}
