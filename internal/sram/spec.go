// Package sram is a CACTI-equivalent analytical model of SRAM and CAM
// arrays: given an array specification and a technology node it derives the
// physical organisation (folding, cell dimensions, wordline/bitline lengths)
// and from it access latency, access energy, leakage, and area.
//
// Unlike CACTI it also models two-layer 3D organisations directly: bit
// partitioning (BP), word partitioning (WP) and port partitioning (PP), both
// with same-performance layers (iso-layer M3D, Section 3.2 of the paper) and
// with a slower top layer compensated by asymmetric splits and upsized
// transistors (hetero-layer M3D, Section 4.2). Via overheads are modelled
// from the tech.Via geometry, which is what makes MIV-based M3D fine-grained
// partitioning viable and TSV-based partitioning unattractive.
package sram

import (
	"fmt"

	"vertical3d/internal/guard"
	"vertical3d/internal/tech"
)

// Spec describes a storage structure in the core.
type Spec struct {
	Name string

	// Words and Bits give the logical array dimensions per bank.
	Words int
	Bits  int

	// Banks is the number of identical, independently addressed banks. A
	// single access activates one bank; latency includes inter-bank routing.
	Banks int

	// ReadPorts and WritePorts. A structure's total port count determines
	// bitcell size (area grows with the square of the port count).
	ReadPorts  int
	WritePorts int

	// CAM marks content-addressable structures (IQ, LQ, SQ, cache tags).
	// CAM cells carry match transistors and a matchline per word; their
	// critical path is taglines + matchline + priority logic.
	CAM bool

	// TagBits is the searched field width for CAM structures. Zero means
	// the full word (Bits) is searched.
	TagBits int
}

// Ports returns the total port count (minimum 1).
func (s Spec) Ports() int {
	p := s.ReadPorts + s.WritePorts
	if p < 1 {
		p = 1
	}
	return p
}

// SearchBits returns the CAM search width.
func (s Spec) SearchBits() int {
	if s.TagBits > 0 {
		return s.TagBits
	}
	return s.Bits
}

// Physical upper bounds on a single structure. Nothing in a core comes
// close (the largest catalog entry is the 2MB L3 tag/data arrays); anything
// beyond these limits is a corrupt spec, and rejecting it keeps the integer
// geometry arithmetic in the model far from overflow.
const (
	MaxWords = 1 << 28
	MaxBits  = 1 << 20
	MaxBanks = 1 << 12
	MaxPorts = 64
)

// Validate checks the specification for consistency. All violations are
// reported together as guard.Violations with per-field paths.
func (s Spec) Validate() error {
	c := guard.New("sram." + s.Name)
	c.Check(s.Words >= 2 && s.Words <= MaxWords, "Words", "must be in [2, %d], got %d", MaxWords, s.Words)
	c.Check(s.Bits >= 1 && s.Bits <= MaxBits, "Bits", "must be in [1, %d], got %d", MaxBits, s.Bits)
	c.Check(s.Banks >= 1 && s.Banks <= MaxBanks, "Banks", "must be in [1, %d], got %d", MaxBanks, s.Banks)
	c.NonNegativeInt("ReadPorts", s.ReadPorts)
	c.NonNegativeInt("WritePorts", s.WritePorts)
	c.Check(s.ReadPorts+s.WritePorts <= MaxPorts, "Ports", "total ports must be <= %d, got %d", MaxPorts, s.ReadPorts+s.WritePorts)
	c.NonNegativeInt("TagBits", s.TagBits)
	if s.CAM {
		c.Check(s.SearchBits() <= s.Bits, "TagBits", "tag bits %d exceed word width %d", s.SearchBits(), s.Bits)
	}
	return c.Err()
}

// Strategy selects the (possibly 3D) physical organisation of the array.
type Strategy int

const (
	// Flat2D is the conventional single-layer layout.
	Flat2D Strategy = iota
	// BitPart spreads the bits of each word over two layers, halving the
	// wordline (Figure 3a). One via per physical row plus the returning
	// data bits cross the layers.
	BitPart
	// WordPart spreads the words over two layers, halving the bitline
	// (Figure 3b). One via per bit column crosses the layers.
	WordPart
	// PortPart keeps the bitcell's cross-coupled inverters in the bottom
	// layer and moves a subset of the ports to the top layer (Figure 3c),
	// shrinking the cell in both dimensions. Two vias per cell.
	PortPart
)

// String returns the short name the paper uses.
func (st Strategy) String() string {
	switch st {
	case Flat2D:
		return "2D"
	case BitPart:
		return "BP"
	case WordPart:
		return "WP"
	case PortPart:
		return "PP"
	default:
		return fmt.Sprintf("Strategy(%d)", int(st))
	}
}

// Partition describes how an array is organised across two layers.
type Partition struct {
	Strategy Strategy

	// Via is the inter-layer via technology (tech.MIV() for M3D,
	// tech.TSVAggressive() for TSV3D). Ignored for Flat2D.
	Via tech.Via

	// BottomFrac is the fraction of the partitioned resource (bits, words
	// or ports) placed in the bottom layer. 0.5 gives the symmetric
	// iso-layer split of Section 3.2. Hetero-layer designs give more to the
	// bottom layer (Section 4.2 uses about 2/3 for BP/WP).
	BottomFrac float64

	// TopDelayFactor is the gate-delay penalty of the top layer
	// (1.0 = iso-layer, 1.17 = low-temperature top layer per [45]).
	TopDelayFactor float64

	// TopUpsize is the transistor width multiplier applied to top-layer
	// access devices and drivers to claw back the process penalty
	// (Section 4.2 doubles widths, so 2.0).
	TopUpsize float64
}

// Flat returns the 2D baseline partition.
func Flat() Partition {
	return Partition{Strategy: Flat2D, BottomFrac: 1, TopDelayFactor: 1, TopUpsize: 1}
}

// Iso returns a symmetric same-performance-layer partition with the given
// strategy and via.
func Iso(st Strategy, via tech.Via) Partition {
	return Partition{Strategy: st, Via: via, BottomFrac: 0.5, TopDelayFactor: 1, TopUpsize: 1}
}

// Hetero returns an asymmetric slow-top-layer partition: bottomFrac of the
// resource below, top devices upsized by upsize, and the 17% top-layer
// delay penalty of [45].
func Hetero(st Strategy, via tech.Via, bottomFrac, upsize float64) Partition {
	return Partition{
		Strategy:       st,
		Via:            via,
		BottomFrac:     bottomFrac,
		TopDelayFactor: tech.LPTopLayer.DelayFactor(),
		TopUpsize:      upsize,
	}
}

// Validate checks the partition parameters. All violations are reported
// together as guard.Violations with per-field paths.
func (p Partition) Validate() error {
	c := guard.New("sram.Partition")
	switch p.Strategy {
	case Flat2D:
		return nil
	case BitPart, WordPart, PortPart:
	default:
		c.Violatef("Strategy", "unknown strategy %d", int(p.Strategy))
		return c.Err()
	}
	c.InOpenRange("BottomFrac", p.BottomFrac, 0, 1)
	c.Check(guard.IsFinite(p.TopDelayFactor) && p.TopDelayFactor >= 1, "TopDelayFactor", "must be finite and >= 1, got %v", p.TopDelayFactor)
	c.Check(guard.IsFinite(p.TopUpsize) && p.TopUpsize >= 1, "TopUpsize", "must be finite and >= 1, got %v", p.TopUpsize)
	c.Check(guard.IsFinite(p.Via.Diameter) && p.Via.Diameter > 0, "Via.Diameter", "3D partition needs a via technology, got diameter %v", p.Via.Diameter)
	c.NonNegative("Via.Resistance", p.Via.Resistance)
	c.NonNegative("Via.Capacitance", p.Via.Capacitance)
	return c.Err()
}

// Components is the per-stage delay breakdown of an access, in seconds.
type Components struct {
	Decoder   float64
	Wordline  float64
	Bitline   float64
	SenseAmp  float64
	Output    float64
	TagDrive  float64 // CAM only: search-line drive
	MatchLine float64 // CAM only
	Priority  float64 // CAM only: priority encode / OR reduce
}

// Result carries the derived metrics of one organisation.
type Result struct {
	Spec      Spec
	Partition Partition

	// AccessTime is the worst-case access latency in seconds (read path for
	// RAM; max of read and search paths for CAM).
	AccessTime float64

	// ReadEnergy, WriteEnergy, SearchEnergy are per-access dynamic energies
	// in joules. SearchEnergy is zero for non-CAM structures.
	ReadEnergy   float64
	WriteEnergy  float64
	SearchEnergy float64

	// LeakageWatts is static power of the whole structure (all banks).
	LeakageWatts float64

	// FootprintArea is the silicon area of the largest layer in m² — the
	// quantity that shrinks when a structure is folded into two layers.
	FootprintArea float64

	// FootprintW and FootprintH are the footprint dimensions in meters.
	FootprintW, FootprintH float64

	// TotalSiliconArea sums the active area over all layers.
	TotalSiliconArea float64

	// Vias is the number of inter-layer vias used (0 for 2D).
	Vias int

	// Breakdown is the per-stage delay decomposition.
	Breakdown Components
}

// Validate checks the model's output invariants: every delay, energy and
// area must be finite and non-negative, the access time strictly positive,
// and the per-stage breakdown must not exceed physical sense. ModelWith
// runs this after every evaluation, so a degenerate spec that survives
// input validation still cannot leak NaN/Inf into the figures.
func (r Result) Validate() error {
	c := guard.New("sram." + r.Spec.Name)
	c.Positive("AccessTime", r.AccessTime)
	c.Positive("ReadEnergy", r.ReadEnergy)
	c.NonNegative("WriteEnergy", r.WriteEnergy)
	c.NonNegative("SearchEnergy", r.SearchEnergy)
	c.NonNegative("LeakageWatts", r.LeakageWatts)
	c.Positive("FootprintArea", r.FootprintArea)
	c.Positive("FootprintW", r.FootprintW)
	c.Positive("FootprintH", r.FootprintH)
	c.Positive("TotalSiliconArea", r.TotalSiliconArea)
	c.NonNegativeInt("Vias", r.Vias)
	b := r.Breakdown
	c.NonNegative("Breakdown.Decoder", b.Decoder)
	c.NonNegative("Breakdown.Wordline", b.Wordline)
	c.NonNegative("Breakdown.Bitline", b.Bitline)
	c.NonNegative("Breakdown.SenseAmp", b.SenseAmp)
	c.NonNegative("Breakdown.Output", b.Output)
	c.NonNegative("Breakdown.TagDrive", b.TagDrive)
	c.NonNegative("Breakdown.MatchLine", b.MatchLine)
	c.NonNegative("Breakdown.Priority", b.Priority)
	return c.Err()
}

// Energy returns the representative per-access dynamic energy: the search
// energy for CAMs (their common operation) and the read energy otherwise.
func (r Result) Energy() float64 {
	if r.Spec.CAM && r.SearchEnergy > 0 {
		return r.SearchEnergy
	}
	return r.ReadEnergy
}

// Reduction summarises a 3D organisation against its 2D baseline as the
// fractional reductions the paper's tables report. Positive means the 3D
// design is better; negative (as for TSV port partitioning) means worse.
type Reduction struct {
	Latency   float64
	Energy    float64
	Footprint float64
}

// ReductionVs computes the reduction of r relative to the 2D baseline.
func (r Result) ReductionVs(base Result) Reduction {
	return Reduction{
		Latency:   1 - r.AccessTime/base.AccessTime,
		Energy:    1 - r.Energy()/base.Energy(),
		Footprint: 1 - r.FootprintArea/base.FootprintArea,
	}
}
