package sram

import (
	"sync"
	"sync/atomic"

	"vertical3d/internal/tech"
)

// The model cache memoizes ModelWith: the full Elmore/Horowitz pipeline is
// a pure function of (node, spec, partition, params), and the experiment
// sweeps evaluate the same handful of organisations thousands of times —
// config.Derive alone re-models the whole catalog for every suite, and
// every figure derives a suite. All four key components are comparable
// value types, so the key is the tuple itself (no hashing ambiguity, no
// collisions) and the cache is a sync.Map safe for the concurrent sweeps
// in internal/parallel. Only successful results are cached; Result is a
// pure value type, so sharing entries across goroutines is safe.

// modelKey identifies one memoized evaluation. tech.Node is stored by
// value: two nodes with identical constants are the same model input even
// if they are distinct allocations (tech.N22() returns a fresh pointer on
// every call).
type modelKey struct {
	node tech.Node
	spec Spec
	part Partition
	pm   Params
}

var (
	modelCache  sync.Map // modelKey -> Result
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

// CacheCounters reports the model cache effectiveness.
type CacheCounters struct {
	Hits   uint64
	Misses uint64
}

// CacheStats returns the cumulative hit/miss counters of the model cache.
func CacheStats() CacheCounters {
	return CacheCounters{Hits: cacheHits.Load(), Misses: cacheMisses.Load()}
}

// ResetModelCache empties the cache and zeroes the counters (tests and
// long-running sweeps over hypothetical nodes use this to bound memory).
func ResetModelCache() {
	modelCache.Range(func(k, _ any) bool {
		modelCache.Delete(k)
		return true
	})
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// CachedModel is Model with memoization under the default calibration
// parameters. Model itself delegates here, so every caller of the public
// API benefits; use ModelWith to force a fresh evaluation.
func CachedModel(n *tech.Node, s Spec, p Partition) (Result, error) {
	return CachedModelWith(n, s, p, DefaultParams())
}

// CachedModelWith memoizes ModelWith. Concurrent callers may race to
// compute the same key; both compute the identical pure result and one
// wins the insert, so the cached value never depends on scheduling.
func CachedModelWith(n *tech.Node, s Spec, p Partition, pm Params) (Result, error) {
	key := modelKey{node: *n, spec: s, part: p, pm: pm}
	if v, ok := modelCache.Load(key); ok {
		cacheHits.Add(1)
		return v.(Result), nil
	}
	r, err := ModelWith(n, s, p, pm)
	if err != nil {
		return Result{}, err
	}
	cacheMisses.Add(1)
	modelCache.Store(key, r)
	return r, nil
}
