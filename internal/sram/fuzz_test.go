package sram

import (
	"math"
	"testing"

	"vertical3d/internal/tech"
)

// FuzzModel throws adversarial organisations at the full SRAM/CAM pipeline
// and asserts the robustness contract of ModelWith: it never panics, and
// whenever it accepts an input, every figure of merit in the Result is
// finite and non-negative. Invalid geometry must surface as an error (the
// guard layer), never as NaN/Inf results.
func FuzzModel(f *testing.F) {
	// Seed corpus: the register file and a cache-tag CAM under each
	// strategy, plus degenerate shapes.
	f.Add(64, 70, 1, 8, 4, false, 0, int(BitPart), true, 0.5, 1.0, 1.0)
	f.Add(512, 40, 2, 1, 1, true, 36, int(WordPart), false, 0.5, 1.17, 2.0)
	f.Add(128, 64, 1, 2, 2, true, 0, int(PortPart), true, 0.66, 1.17, 2.0)
	f.Add(0, 0, 0, 0, 0, false, 0, int(Flat2D), true, 0.0, 0.0, 0.0)
	f.Add(1, 1, 1, 1, 0, false, -5, int(BitPart), false, -1.0, math.Inf(1), math.NaN())
	f.Add(1<<20, 1<<12, 64, 16, 16, true, 1<<10, 3, true, 0.999, 1.5, 8.0)

	n := tech.N22()
	pm := DefaultParams()
	f.Fuzz(func(t *testing.T, words, bits, banks, rp, wp int, cam bool, tagBits, strategy int, miv bool,
		bottomFrac, topDelay, topUpsize float64) {
		s := Spec{
			Name:       "fuzz",
			Words:      words,
			Bits:       bits,
			Banks:      banks,
			ReadPorts:  rp,
			WritePorts: wp,
			CAM:        cam,
			TagBits:    tagBits,
		}
		via := tech.TSVAggressive()
		if miv {
			via = tech.MIV()
		}
		p := Partition{
			Strategy:       Strategy(((strategy % 4) + 4) % 4),
			Via:            via,
			BottomFrac:     bottomFrac,
			TopDelayFactor: topDelay,
			TopUpsize:      topUpsize,
		}
		res, err := ModelWith(n, s, p, pm) // must not panic
		if err != nil {
			return // rejected inputs are fine; crashing or lying is not
		}
		checks := []struct {
			name string
			v    float64
		}{
			{"AccessTime", res.AccessTime},
			{"ReadEnergy", res.ReadEnergy},
			{"WriteEnergy", res.WriteEnergy},
			{"SearchEnergy", res.SearchEnergy},
			{"LeakageWatts", res.LeakageWatts},
			{"FootprintArea", res.FootprintArea},
			{"FootprintW", res.FootprintW},
			{"FootprintH", res.FootprintH},
			{"TotalSiliconArea", res.TotalSiliconArea},
		}
		for _, c := range checks {
			if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
				t.Fatalf("%s = %v for accepted spec %+v partition %+v", c.name, c.v, s, p)
			}
			if c.v < 0 {
				t.Fatalf("%s = %v negative for accepted spec %+v partition %+v", c.name, c.v, s, p)
			}
		}
		if res.Vias < 0 {
			t.Fatalf("Vias = %d negative", res.Vias)
		}
	})
}
