package sram

import (
	"reflect"
	"sync"
	"testing"

	"vertical3d/internal/tech"
)

func testSpec() Spec {
	return Spec{Name: "RF-test", Words: 160, Bits: 64, Banks: 1, ReadPorts: 12, WritePorts: 6}
}

func TestCachedModelMatchesModelWith(t *testing.T) {
	ResetModelCache()
	n := tech.N22()
	for _, p := range []Partition{Flat(), Iso(BitPart, tech.MIV()), Hetero(WordPart, tech.MIV(), 2.0/3.0, 2.0)} {
		want, err := ModelWith(n, testSpec(), p, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		got, err := CachedModel(n, testSpec(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: cached result differs from direct evaluation", p.Strategy)
		}
		// Second call must be a hit and bit-identical.
		again, err := CachedModel(n, testSpec(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, want) {
			t.Fatalf("%v: cache hit returned a different result", p.Strategy)
		}
	}
	st := CacheStats()
	if st.Hits < 3 || st.Misses != 3 {
		t.Fatalf("expected 3 misses and >=3 hits, got %+v", st)
	}
}

func TestCacheKeyDistinguishesInputs(t *testing.T) {
	ResetModelCache()
	n := tech.N22()
	a, err := CachedModel(n, testSpec(), Iso(BitPart, tech.MIV()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedModel(n, testSpec(), Iso(WordPart, tech.MIV()))
	if err != nil {
		t.Fatal(err)
	}
	if a.AccessTime == b.AccessTime && a.FootprintArea == b.FootprintArea {
		t.Fatal("different partitions returned identical results — key collision?")
	}
	// A distinct node allocation with identical constants must hit.
	before := CacheStats().Hits
	if _, err := CachedModel(tech.N22(), testSpec(), Iso(BitPart, tech.MIV())); err != nil {
		t.Fatal(err)
	}
	if CacheStats().Hits != before+1 {
		t.Fatal("value-identical node should hit the cache across allocations")
	}
}

func TestCachedModelDoesNotCacheErrors(t *testing.T) {
	ResetModelCache()
	bad := Spec{Name: "bad", Words: 1, Bits: 0, Banks: 1}
	if _, err := CachedModel(tech.N22(), bad, Flat()); err == nil {
		t.Fatal("invalid spec must error")
	}
	if st := CacheStats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("errors must not touch the counters: %+v", st)
	}
}

func TestCachedModelConcurrent(t *testing.T) {
	ResetModelCache()
	n := tech.N22()
	parts := []Partition{Flat(), Iso(BitPart, tech.MIV()), Iso(WordPart, tech.MIV()), Iso(PortPart, tech.MIV())}
	ref := make([]Result, len(parts))
	for i, p := range parts {
		r, err := CachedModel(n, testSpec(), p)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = r
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				p := parts[(g+iter)%len(parts)]
				r, err := CachedModel(n, testSpec(), p)
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(r, ref[(g+iter)%len(parts)]) {
					errs[g] = errDiverged
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var errDiverged = &divergedError{}

type divergedError struct{}

func (*divergedError) Error() string { return "concurrent cache read diverged from reference" }
