package sram

import (
	"fmt"
	"math"

	"vertical3d/internal/circuit"
	"vertical3d/internal/tech"
	"vertical3d/internal/wire"
)

// Model evaluates the array described by s under partition p at node n with
// the default calibration constants. Results are memoized (see cache.go):
// the model is a pure function of its inputs, so the partition sweeps and
// config.Derive hit the cache instead of re-running the Elmore/Horowitz
// pipeline for identical specs.
func Model(n *tech.Node, s Spec, p Partition) (Result, error) {
	return CachedModelWith(n, s, p, DefaultParams())
}

// ModelWith is Model with explicit calibration parameters and no
// memoization: it always runs the full pipeline. Inputs are guard-checked
// before the pipeline runs (node constants, spec geometry, partition
// parameters) and the result is guard-checked after, so callers get a
// structured violation for a bad organisation rather than NaN figures.
func ModelWith(n *tech.Node, s Spec, p Partition, pm Params) (Result, error) {
	if n == nil {
		return Result{}, fmt.Errorf("sram: %s: nil tech node", s.Name)
	}
	if err := n.Validate(); err != nil {
		return Result{}, fmt.Errorf("sram: %s: %w", s.Name, err)
	}
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("%s: %w", s.Name, err)
	}
	if err := pm.Validate(); err != nil {
		return Result{}, fmt.Errorf("%s: %w", s.Name, err)
	}
	m := &modelCtx{n: n, s: s, p: p, pm: pm}
	res, err := m.run()
	if err != nil {
		return Result{}, err
	}
	if err := res.Validate(); err != nil {
		return Result{}, fmt.Errorf("sram: model output violates invariants: %w", err)
	}
	return res, nil
}

// layer is the physical organisation of one silicon layer. Tall arrays are
// split into multiple mats (bitline segments) tiled in a grid and joined by
// an H-tree, exactly as CACTI organises large arrays.
type layer struct {
	rows, cols int // total physical rows/columns in this layer
	ports      int
	upsize     float64 // device width multiplier for this layer
	slow       float64 // process delay factor for this layer
	top        bool

	hasDecoder bool
	hasSense   bool

	matRows  int // rows per mat (bitline length in cells)
	nmats    int
	gx, gy   int // mat grid
	cellW    float64
	cellH    float64
	width    float64 // total cell-matrix width (m)
	height   float64 // total cell-matrix height (m)
	matWidth float64 // one mat's width (wordline length)
	area     float64 // layer area incl. periphery and via blocks (m²)
}

type modelCtx struct {
	n  *tech.Node
	s  Spec
	p  Partition
	pm Params

	fold       int
	rows, cols int // physical 2D organisation before partitioning

	driveScale float64 // device sizing scale from total port count
	capScale   float64 // capacitance scale (sub-linear in drive)

	vias int
}

func (m *modelCtx) run() (Result, error) {
	pm := m.pm

	// Device sizing: cells of heavily multiported structures use larger
	// drivers; caps grow sub-linearly with drive.
	unitEq := pm.CoreEquivPorts + 1
	m.driveScale = (pm.CoreEquivPorts + float64(m.s.Ports())) / unitEq
	m.capScale = math.Sqrt(m.driveScale)

	// Fold tall arrays (column multiplexing) toward a square aspect.
	cw, ch := m.cellDims(m.s.Ports(), 1.0, true)
	m.fold = m.chooseFold(cw, ch)
	m.rows = ceilDiv(m.s.Words, m.fold)
	m.cols = m.s.Bits * m.fold

	layers, err := m.buildLayers()
	if err != nil {
		return Result{}, err
	}

	res := Result{Spec: m.s, Partition: m.p, Vias: m.vias}

	// --- Delay path -------------------------------------------------------
	var bd Components
	bd.Decoder, _ = m.decoderDelay(layers)
	bd.Wordline = m.worstWordline(layers)
	bd.Bitline = m.worstBitline(layers)
	bd.SenseAmp = pm.SenseAmpFO4 * m.n.FO4()
	bd.Output = m.outputDelay(layers)

	read := bd.Decoder + bd.Wordline + bd.Bitline + bd.SenseAmp + bd.Output
	access := read
	if m.s.CAM {
		bd.TagDrive, bd.MatchLine, bd.Priority = m.searchDelay(layers)
		search := bd.TagDrive + bd.MatchLine + bd.Priority + bd.Output
		if search > access {
			access = search
		}
	}
	res.Breakdown = bd
	res.AccessTime = access

	// --- Energy -----------------------------------------------------------
	res.ReadEnergy, res.WriteEnergy = m.accessEnergy(layers)
	if m.s.CAM {
		res.SearchEnergy = m.searchEnergy(layers)
	}

	// --- Area and leakage -------------------------------------------------
	m.areas(layers)
	var foot, total float64
	for i := range layers {
		total += layers[i].area
		if layers[i].area > foot {
			foot = layers[i].area
			res.FootprintW = layers[i].width
			res.FootprintH = layers[i].height
		}
	}
	// Multiple banks tile in a grid; routing adds a fixed fraction.
	banks := float64(m.s.Banks)
	routeOverhead := 1.0
	if m.s.Banks > 1 {
		routeOverhead = 1.05
	}
	res.FootprintArea = foot * banks * routeOverhead
	res.TotalSiliconArea = total * banks * routeOverhead

	res.AccessTime += m.bankRouteDelay(foot)
	res.LeakageWatts = m.leakage(layers)
	return res, nil
}

// cellDims returns the bitcell pitch for a layer with the given port count
// and upsize. withCore includes the cross-coupled inverter pair (absent in
// the top layer of a port partition).
func (m *modelCtx) cellDims(ports int, upsize float64, withCore bool) (w, h float64) {
	pm, n := m.pm, m.n
	unitEq := pm.CoreEquivPorts + 1
	unitW := math.Sqrt(n.SRAMCellArea*pm.CellAspect) / unitEq
	unitH := math.Sqrt(n.SRAMCellArea/pm.CellAspect) / unitEq

	eq := float64(ports) * (1 + pm.UpsizePitchFrac*(upsize-1))
	if withCore {
		eq += pm.CoreEquivPorts
	}
	if eq < 1 {
		eq = 1
	}
	w, h = unitW*eq, unitH*eq
	if m.s.CAM {
		w *= pm.CAMCellWFactor
	}
	return w, h
}

// chooseFold picks the power-of-two column-mux degree that brings a single
// mat closest to the target aspect (wordline about twice the bitline, which
// minimises delay given the relative strength of drivers and cells). Ties go
// to the larger fold — shorter bitlines. Folding below MinRows rows is not
// allowed: tiny row counts waste sense amplifiers.
func (m *modelCtx) chooseFold(cellW, cellH float64) int {
	pm := m.pm
	const targetAspect = 2.0
	best, bestScore := 1, math.Inf(1)
	for fold := 1; fold <= pm.MaxFold; fold *= 2 {
		rows := ceilDiv(m.s.Words, fold)
		if rows < pm.MinRows && fold > 1 {
			break
		}
		matRows := min(rows, pm.MatMaxRows)
		h := float64(matRows) * cellH
		w := float64(m.s.Bits*fold) * cellW
		score := math.Abs(math.Log(w / (targetAspect * h)))
		if score <= bestScore {
			best, bestScore = fold, score
		}
	}
	return best
}

// buildLayers constructs the per-layer organisation for the partition and
// counts vias.
func (m *modelCtx) buildLayers() ([]layer, error) {
	p := m.p
	switch p.Strategy {
	case Flat2D:
		ly := layer{
			rows: m.rows, cols: m.cols, ports: m.s.Ports(),
			upsize: 1, slow: 1, hasDecoder: true, hasSense: true,
		}
		m.finishLayer(&ly, true)
		return []layer{ly}, nil

	case BitPart:
		colsB := clampInt(int(math.Round(float64(m.cols)*p.BottomFrac)), 1, m.cols-1)
		bot := layer{rows: m.rows, cols: colsB, ports: m.s.Ports(),
			upsize: 1, slow: 1, hasDecoder: true, hasSense: true}
		top := layer{rows: m.rows, cols: m.cols - colsB, ports: m.s.Ports(),
			upsize: p.TopUpsize, slow: p.TopDelayFactor, top: true, hasSense: true}
		m.finishLayer(&bot, true)
		m.finishLayer(&top, true)
		// One via per physical row per port carries the wordlines up; the
		// top layer's data bits return through one via per top column.
		m.vias = min(m.rows, m.pm.MatMaxRows)*m.nmatsOf(m.rows)*m.s.Ports() + top.cols
		return []layer{bot, top}, nil

	case WordPart:
		rowsB := clampInt(int(math.Round(float64(m.rows)*p.BottomFrac)), 1, m.rows-1)
		bot := layer{rows: rowsB, cols: m.cols, ports: m.s.Ports(),
			upsize: 1, slow: 1, hasDecoder: true, hasSense: true}
		top := layer{rows: m.rows - rowsB, cols: m.cols, ports: m.s.Ports(),
			upsize: p.TopUpsize, slow: p.TopDelayFactor, top: true, hasDecoder: true}
		m.finishLayer(&bot, true)
		m.finishLayer(&top, true)
		// One via per bit column brings the top layer's bitlines down to the
		// shared sense amplifiers (Figure 3b).
		m.vias = m.cols + 8
		return []layer{bot, top}, nil

	case PortPart:
		total := m.s.Ports()
		if total < 2 {
			return nil, fmt.Errorf("sram: %s: port partitioning needs >=2 ports", m.s.Name)
		}
		pb := clampInt(int(math.Round(float64(total)*p.BottomFrac)), 1, total-1)
		bot := layer{rows: m.rows, cols: m.cols, ports: pb,
			upsize: 1, slow: 1, hasDecoder: true, hasSense: true}
		top := layer{rows: m.rows, cols: m.cols, ports: total - pb,
			upsize: p.TopUpsize, slow: p.TopDelayFactor, top: true, hasSense: true}
		// The cell matrices must align vertically: pitch is the max of the
		// two layers'. The bottom layer holds the inverter core.
		bw, bh := m.cellDims(bot.ports, bot.upsize, true)
		tw, th := m.cellDims(top.ports, top.upsize, false)
		pw, ph := math.Max(bw, tw), math.Max(bh, th)
		// Two vias per cell (Figure 3c) inflate the shared pitch.
		viaPerCell := 2 * m.p.Via.OccupiedArea()
		pw += viaPerCell / ph
		bot.cellW, bot.cellH = pw, ph
		top.cellW, top.cellH = pw, ph
		m.finishLayer(&bot, false)
		m.finishLayer(&top, false)
		m.vias = 2 * m.rows * m.cols
		return []layer{bot, top}, nil
	}
	return nil, fmt.Errorf("sram: unknown strategy %v", p.Strategy)
}

func (m *modelCtx) nmatsOf(rows int) int {
	return ceilDiv(rows, m.pm.MatMaxRows)
}

// finishLayer fills the derived geometry; when setCell is true the cell
// dimensions are computed from the layer's own port count.
func (m *modelCtx) finishLayer(ly *layer, setCell bool) {
	if setCell {
		ly.cellW, ly.cellH = m.cellDims(m.s.Ports(), 1.0, true)
		if ly.top && ly.upsize > 1 {
			// Hetero BP/WP: top-layer cells grow along the partitioned
			// dimension only, inside the headroom the asymmetric split
			// creates (the bottom layer keeps the larger array section).
			grow := 1 + m.pm.UpsizePitchFrac*(ly.upsize-1)
			switch m.p.Strategy {
			case BitPart:
				ly.cellW *= grow
			case WordPart:
				ly.cellH *= grow
			}
		}
	}
	ly.matRows = min(ly.rows, m.pm.MatMaxRows)
	ly.nmats = ceilDiv(ly.rows, ly.matRows)
	ly.gy = int(math.Ceil(math.Sqrt(float64(ly.nmats))))
	ly.gx = ceilDiv(ly.nmats, ly.gy)
	ly.matWidth = float64(ly.cols) * ly.cellW
	ly.width = float64(ly.gx) * ly.matWidth
	ly.height = float64(ly.gy) * float64(ly.matRows) * ly.cellH
}

// arrayWire returns a local-class wire with the in-array resistance penalty.
func (m *modelCtx) arrayWireRC(length float64) (r, c float64) {
	w := wire.Wire{Node: m.n, Class: wire.Local, Length: length}
	return w.Resistance() * m.pm.ArrayWireRFactor, w.Capacitance()
}

// --- Delay components ------------------------------------------------------

// decoderDelay models the row decoder: predecode chain plus a buffered
// predecode wire running along the array height. Only layers that own a
// decoder count; the worst one is returned.
func (m *modelCtx) decoderDelay(layers []layer) (float64, float64) {
	n := m.n
	var worst, energy float64
	for _, ly := range layers {
		if !ly.hasDecoder {
			continue
		}
		bits := int(math.Max(1, math.Ceil(math.Log2(float64(ly.rows)))))
		load := 4 * n.CInv * m.capScale // wordline-driver first stage
		d, e, err := circuit.DecoderDelay(n, bits, load)
		if err != nil {
			continue
		}
		d *= m.pm.DecoderDelayFactor
		// Predecode lines run half the array height on average, buffered.
		w := wire.Wire{Node: n, Class: wire.Local, Length: ly.height / 2}
		d += wire.DelayOrRaw(w)
		e += w.Capacitance() * n.Vdd * n.Vdd * float64(bits)
		d *= ly.slow
		if d > worst {
			worst = d
		}
		energy += e
	}
	return worst, energy
}

// wordlineDelay returns the delay of one mat's wordline in the layer:
// driver chain plus distributed wire with gate loads.
func (m *modelCtx) wordlineDelay(ly layer, viaInPath bool) float64 {
	n, pm := m.n, m.pm
	gateC := 2 * pm.AccessGateCapFrac * n.CInv * ly.upsize
	cGates := float64(ly.cols) * gateC
	rWire, cWire := m.arrayWireRC(ly.matWidth)

	var d float64
	const subWLSpan = 100e-6
	if ly.matWidth > subWLSpan {
		// Divided wordline: a buffered global line spans the mat and drives
		// local segments, linearising the delay in width.
		rep, err := wire.InsertRepeaters(wire.Wire{Node: n, Class: wire.Local, Length: ly.matWidth})
		var global float64
		if err == nil {
			global = rep.Delay * 1.3 // local-segment tap buffers
		}
		frac := subWLSpan / ly.matWidth
		segGates, segWire := cGates*frac, cWire*frac
		chain, _ := circuit.SizeChain(n, 4, segGates+segWire)
		d = global + chain.Delay + rWire*frac*(segWire/2+segGates/2)
	} else {
		chain, _ := circuit.SizeChain(n, 4, cGates+cWire)
		d = chain.Delay + rWire*(cWire/2+cGates/2)
	}

	d *= ly.slow / math.Min(ly.upsize, ly.slow*ly.slow) // upsizing claws back process slowness
	if ly.slow > 1 && ly.upsize > 1 {
		d = math.Max(d, m.isoWordline(ly)) // cannot beat the iso-layer delay
	}
	if viaInPath {
		v := m.p.Via
		d += (n.RInv/8 + v.Resistance) * v.Capacitance
	}
	return d
}

// isoWordline computes the layer's wordline delay as if it were built in the
// bottom process, used as a floor for upsized top layers.
func (m *modelCtx) isoWordline(ly layer) float64 {
	iso := ly
	iso.slow, iso.upsize = 1, 1
	return m.wordlineDelay(iso, false)
}

func (m *modelCtx) worstWordline(layers []layer) float64 {
	var worst float64
	for _, ly := range layers {
		d := m.wordlineDelay(ly, ly.top)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// bitlineDelay returns the discharge delay of one mat-height bitline:
// cell pull-down through the distributed bitline RC.
func (m *modelCtx) bitlineDelay(ly layer) float64 {
	n, pm := m.n, m.pm
	drainC := pm.DrainCapFrac * n.CInv * ly.upsize
	blLen := float64(ly.matRows) * ly.cellH
	rWire, cWire := m.arrayWireRC(blLen)
	cbl := float64(ly.matRows)*drainC + cWire

	rCell := pm.CellDriveResFactor * n.RInv / m.driveScale
	rCell *= ly.slow / ly.upsize
	if m.p.Strategy == PortPart && ly.top {
		// Top-layer port: the pull-down path crosses the via from the
		// bottom-layer inverter core.
		v := m.p.Via
		rCell += v.Resistance
		cbl += v.Capacitance
	}
	if !ly.hasSense {
		// Bitline continues through a via to the shared sense amps below.
		v := m.p.Via
		rCell += v.Resistance
		cbl += v.Capacitance
	}
	return (rCell*cbl + rWire*(cWire/2+float64(ly.matRows)*drainC/2)) * pm.BitlineTimeFactor
}

func (m *modelCtx) worstBitline(layers []layer) float64 {
	var worst float64
	for _, ly := range layers {
		d := m.bitlineDelay(ly)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// outputDelay routes the read data from the accessed mat's sense amps to the
// block edge. Multi-mat and banked arrays pay the full H-tree buffering
// overhead; a single small mat drives the block port almost directly.
func (m *modelCtx) outputDelay(layers []layer) float64 {
	n := m.n
	fw, fh := m.footDims(layers)
	out := wire.Wire{Node: n, Class: wire.SemiGlobal, Length: (fw + fh) / 2}
	factor := 1.5
	for _, ly := range layers {
		if ly.nmats > 1 {
			factor = m.pm.HTreeDelayFactor
		}
	}
	if m.s.Banks > 1 {
		factor = m.pm.HTreeDelayFactor
	}
	return wire.DelayOrRaw(out)*factor + n.FO4() // + output mux
}

// searchDelay models the CAM search path: tag (search-line) drive, matchline
// discharge, and the priority/OR reduction.
func (m *modelCtx) searchDelay(layers []layer) (tag, match, prio float64) {
	n, pm := m.n, m.pm
	for _, ly := range layers {
		// Search lines run the mat height, loading every row's match gates.
		gateC := 2 * pm.AccessGateCapFrac * n.CInv
		blLen := float64(ly.matRows) * ly.cellH
		rsl, cslWire := m.arrayWireRC(blLen)
		csl := float64(ly.matRows)*gateC + cslWire
		chain, _ := circuit.SizeChain(n, 4, csl)
		t := (chain.Delay + rsl*(cslWire/2+float64(ly.matRows)*gateC/2)) *
			ly.slow / math.Min(ly.upsize, ly.slow*ly.slow)
		if ly.top {
			t += (n.RInv/8 + m.p.Via.Resistance) * m.p.Via.Capacitance
		}
		if t > tag {
			tag = t
		}

		// Matchline spans the searched bits of this layer's words.
		searchFrac := float64(m.s.SearchBits()) / float64(m.s.Bits)
		mlLen := ly.matWidth * searchFrac / float64(m.fold)
		rml, cmlWire := m.arrayWireRC(mlLen)
		searchedBits := float64(m.s.SearchBits()) * float64(ly.cols) / float64(m.cols)
		cml := searchedBits*2*pm.DrainCapFrac*n.CInv + cmlWire
		rCell := pm.CellDriveResFactor * n.RInv / m.driveScale * ly.slow / ly.upsize
		mt := (rCell*cml + rml*cmlWire/2) * pm.MatchTimeFactor
		if m.p.Strategy == BitPart {
			// Bit partitioning splits each word's matchline across layers:
			// the partial matches must cross a via and be ANDed.
			v := m.p.Via
			mt += (n.RInv/4+v.Resistance)*v.Capacitance + 2*n.FO4()
		}
		if mt > match {
			match = mt
		}

		if ly.hasSense {
			levels := math.Ceil(math.Log2(float64(max(2, ly.rows))))
			p := levels*pm.PriorityFO4PerLevel*n.FO4() +
				wire.DelayOrRaw(wire.Wire{Node: n, Class: wire.SemiGlobal, Length: ly.height / 2})
			if m.p.Strategy == WordPart {
				// The entries are split across layers: the age-ordered
				// priority resolution must merge both layers' match vectors
				// through vias and extra arbitration levels.
				v := m.p.Via
				p += (n.RInv/4+v.Resistance)*v.Capacitance +
					pm.WPMergeLevels*pm.PriorityFO4PerLevel*n.FO4()
			}
			if p > prio {
				prio = p
			}
		}
	}
	return tag, match, prio
}

// --- Energy ------------------------------------------------------------------

func (m *modelCtx) accessEnergy(layers []layer) (read, write float64) {
	n, pm := m.n, m.pm
	v := n.Vdd
	_, decE := m.decoderDelay(layers)
	read += decE
	write += decE

	for _, ly := range layers {
		weight := m.layerAccessWeight(ly)
		if weight == 0 {
			continue
		}
		// Wordline swing: wire plus gates of the accessed mat row.
		gateC := 2 * pm.AccessGateCapFrac * n.CInv * ly.upsize
		_, cwlWire := m.arrayWireRC(ly.matWidth)
		cwl := float64(ly.cols)*gateC + cwlWire
		read += weight * cwl * v * v
		write += weight * cwl * v * v

		// Bitlines: partial swing on the accessed mat's columns for a read,
		// full swing on the written word's columns for a write.
		drainC := pm.DrainCapFrac * n.CInv * ly.upsize
		_, cblWire := m.arrayWireRC(float64(ly.matRows) * ly.cellH)
		cblCol := float64(ly.matRows)*drainC + cblWire
		read += weight * float64(ly.cols) * cblCol * v * (v * pm.BitlineSwingFrac) * 2 // differential pair
		writtenCols := float64(ly.cols) / float64(m.fold)
		write += weight * writtenCols * cblCol * v * v

		if ly.hasSense || m.p.Strategy == WordPart {
			read += weight * float64(ly.cols) / float64(m.fold) * pm.SenseAmpCapInv * n.CInv * v * v
		}
	}

	// Data and address routing between the block port and the accessed mat.
	// This H-tree-style distribution scales with the footprint, which is why
	// every folded organisation saves energy even when the raw array
	// switching is unchanged (notably bit partitioning).
	fw, fh := m.footDims(layers)
	routeC := wire.Wire{Node: n, Class: wire.SemiGlobal, Length: (fw + fh) / 2}.Capacitance()
	addrBits := math.Ceil(math.Log2(float64(m.s.Words)))
	read += (float64(m.s.Bits) + addrBits) * routeC * v * v
	write += (float64(m.s.Bits) + addrBits) * routeC * v * v

	// Via switching on the data path.
	read += m.activeViaEnergy()
	write += m.activeViaEnergy()
	return read, write
}

// layerAccessWeight returns the expected fraction of accesses that exercise
// this layer's wordlines and bitlines. Bit partitioning splits every word
// over both layers, so both always switch. Word partitioning places each
// word wholly in one layer, so a layer switches with the probability of
// holding the accessed word. Port partitioning exercises the layer that
// holds the used port.
func (m *modelCtx) layerAccessWeight(ly layer) float64 {
	switch m.p.Strategy {
	case WordPart:
		if ly.top {
			return 1 - m.p.BottomFrac
		}
		return m.p.BottomFrac
	case PortPart:
		total := float64(m.s.Ports())
		return float64(ly.ports) / total
	default:
		return 1
	}
}

func (m *modelCtx) activeViaEnergy() float64 {
	if m.p.Strategy == Flat2D {
		return 0
	}
	v := m.p.Via
	switch m.p.Strategy {
	case BitPart:
		return float64(m.s.Bits) / 2 * v.SwitchEnergy(m.n.Vdd)
	case WordPart:
		return float64(m.s.Bits) * v.SwitchEnergy(m.n.Vdd) * (1 - m.p.BottomFrac)
	case PortPart:
		return float64(m.s.Bits) * v.SwitchEnergy(m.n.Vdd)
	}
	return 0
}

func (m *modelCtx) searchEnergy(layers []layer) float64 {
	n, pm := m.n, m.pm
	v := n.Vdd
	var e float64
	for _, ly := range layers {
		// A CAM search interrogates every entry, so under bit and word
		// partitioning both layers participate fully; under port
		// partitioning the broadcast uses one search port, located in one
		// layer.
		weight := 1.0
		if m.p.Strategy == PortPart {
			weight = float64(ly.ports) / float64(m.s.Ports())
		}
		gateC := 2 * pm.AccessGateCapFrac * n.CInv
		_, cslWire := m.arrayWireRC(float64(ly.matRows) * ly.cellH)
		csl := (float64(ly.matRows)*gateC + cslWire) * float64(ly.nmats)
		// Every search bit present in this layer drives true and complement
		// lines (bit partitioning splits the searched bits across layers).
		bitsHere := float64(m.s.SearchBits()) * float64(ly.cols) / float64(m.cols)
		e += weight * bitsHere * 2 * csl * v * v / 2

		searchFrac := float64(m.s.SearchBits()) / float64(m.s.Bits)
		_, cmlWire := m.arrayWireRC(ly.matWidth * searchFrac / float64(m.fold))
		searchedBits := float64(m.s.SearchBits()) * float64(ly.cols) / float64(m.cols)
		cml := searchedBits*2*pm.DrainCapFrac*n.CInv + cmlWire
		e += weight * float64(ly.rows) * float64(m.fold) * cml * v * v * pm.MatchMissFrac
	}
	return e
}

// --- Area and leakage -------------------------------------------------------

func (m *modelCtx) areas(layers []layer) {
	pm, n := m.pm, m.n
	f := n.FeatureSize
	for i := range layers {
		ly := &layers[i]
		w, h := ly.width, ly.height
		if ly.hasDecoder {
			bits := math.Max(1, math.Ceil(math.Log2(float64(ly.rows))))
			w += pm.DecoderStripF * f * bits
		}
		w += pm.WLDriverStripF * f * float64(ly.gx)
		if ly.hasSense {
			h += pm.SenseStripF * f * float64(ly.gy)
		}
		area := w * h * (1 + pm.PeriphFixedFrac)

		// Via blocks for row/column crossings (BP/WP). PP's via cost is
		// already inside the cell pitch.
		if m.p.Strategy == BitPart && ly.top {
			area += float64(ly.matRows*ly.nmats*m.s.Ports()) * m.p.Via.OccupiedArea()
		}
		if m.p.Strategy == WordPart && ly.top {
			area += float64(m.cols) * m.p.Via.OccupiedArea()
		}
		ly.area = area
	}
}

func (m *modelCtx) footDims(layers []layer) (w, h float64) {
	for _, ly := range layers {
		if ly.width > w {
			w = ly.width
		}
		if ly.height > h {
			h = ly.height
		}
	}
	return w, h
}

func (m *modelCtx) bankRouteDelay(bankFoot float64) float64 {
	if m.s.Banks <= 1 {
		return 0
	}
	side := math.Sqrt(bankFoot)
	span := m.pm.BankRouteFrac * side * math.Sqrt(float64(m.s.Banks))
	return wire.DelayOrRaw(wire.Wire{Node: m.n, Class: wire.SemiGlobal, Length: span}) *
		m.pm.HTreeDelayFactor
}

func (m *modelCtx) leakage(layers []layer) float64 {
	pm, n := m.pm, m.n
	cells := float64(m.s.Words) * float64(m.s.Bits) * float64(m.s.Banks)
	perCell := pm.LeakPerCellInv + pm.PortLeakPerCell*float64(m.s.Ports()-1)
	leak := cells * perCell * n.LeakagePerInvWatts * m.capScale
	return leak * (1 + pm.PeriphLeakFrac)
}

// --- small helpers -----------------------------------------------------------

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
