package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"vertical3d/internal/fsio"
)

// seedJournal journals n cells into dir on the real filesystem and closes.
func seedJournal(t *testing.T, dir string, n int) {
	t.Helper()
	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Record(CellKey("b", "d", i), mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func quarantined(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*"+segExt+quarantineExt))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDegradeOnAppendFailure proves a mid-sweep write failure quarantines
// the active segment and flips the journal into degraded mode that keeps
// serving lookups while refusing further disk writes.
func TestDegradeOnAppendFailure(t *testing.T) {
	dir := t.TempDir()
	seedJournal(t, dir, 3)

	// Let the header publish and two appends through, then run out of disk.
	in := fsio.NewInjector(1, fsio.OS, fsio.Rule{
		Op: fsio.OpWrite, Match: segExt, After: 3,
	})
	j, err := OpenFS(in, dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 3 {
		t.Fatalf("resume index lost: %d cells", j.Len())
	}

	var appendErr error
	recorded := 0
	for i := 10; i < 20; i++ {
		if err := j.Record(CellKey("b", "d", i), mkResult(i)); err != nil {
			appendErr = err
			break
		}
		recorded++
	}
	if appendErr == nil {
		t.Fatal("injected ENOSPC never surfaced")
	}
	if !errors.Is(appendErr, syscall.ENOSPC) {
		t.Fatalf("cause lost in wrapping: %v", appendErr)
	}
	if recorded != 2 {
		t.Fatalf("want 2 healthy appends before the fault, got %d", recorded)
	}

	s := j.Stats()
	if !s.Degraded || s.Quarantined != 1 || s.AppendErrors != 1 {
		t.Fatalf("degrade not recorded: %+v", s)
	}
	if got := quarantined(t, dir); len(got) != 1 {
		t.Fatalf("active segment not quarantined: %v", got)
	}
	if cause := j.DegradedCause(); !errors.Is(cause, syscall.ENOSPC) {
		t.Fatalf("DegradedCause = %v", cause)
	}

	// Later records return the original cause without touching the disk
	// or inflating the error counter.
	if err := j.Record(CellKey("b", "d", 99), mkResult(99)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("degraded Record = %v", err)
	}
	if s2 := j.Stats(); s2.AppendErrors != 1 {
		t.Fatalf("degraded records must not count as new errors: %+v", s2)
	}

	// Lookups keep serving both the resumed index and this run's healthy
	// appends — the sweep continues unjournaled, it does not abort.
	var v cellResult
	if !j.Lookup(CellKey("b", "d", 0), &v) || !j.Lookup(CellKey("b", "d", 11), &v) {
		t.Fatal("degraded journal stopped serving lookups")
	}
}

// TestDegradeOnSyncFailure proves a failed fsync — acknowledged data of
// unknown durability — degrades exactly like a failed write.
func TestDegradeOnSyncFailure(t *testing.T) {
	dir := t.TempDir()
	in := fsio.NewInjector(1, fsio.OS, fsio.Rule{
		Op: fsio.OpSync, Match: segExt, Err: syscall.EIO, After: 1,
	})
	j, err := OpenFS(in, dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// After:1 lets the header fsync through; the first record fsync fails.
	if err := j.Record(CellKey("b", "d"), mkResult(1)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO from record fsync, got %v", err)
	}
	if s := j.Stats(); !s.Degraded || s.Quarantined != 1 {
		t.Fatalf("sync failure must degrade: %+v", s)
	}
}

// TestDegradeOnSegmentCreateFailure proves a journal that cannot even
// publish its segment (read-only or full directory) degrades with no
// quarantine file — there is nothing on disk to quarantine.
func TestDegradeOnSegmentCreateFailure(t *testing.T) {
	dir := t.TempDir()
	in := fsio.NewInjector(1, fsio.OS, fsio.Rule{
		Op: fsio.OpCreate, Err: os.ErrPermission,
	})
	j, err := OpenFS(in, dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record(CellKey("b", "d"), mkResult(1)); !errors.Is(err, os.ErrPermission) {
		t.Fatalf("want permission error, got %v", err)
	}
	s := j.Stats()
	if !s.Degraded || s.Quarantined != 0 {
		t.Fatalf("create failure: %+v", s)
	}
	if got := quarantined(t, dir); len(got) != 0 {
		t.Fatalf("phantom quarantine files: %v", got)
	}
}

// TestQuarantineCorruptHeaderOnLoad proves a bit-flipped segment header is
// moved aside on open while healthy siblings still load, and that the
// quarantined file is invisible to the next open.
func TestQuarantineCorruptHeaderOnLoad(t *testing.T) {
	dir := t.TempDir()
	seedJournal(t, dir, 2)
	// A second process's segment, corrupted in its magic.
	other := t.TempDir()
	seedJournal(t, other, 1)
	segs, _ := filepath.Glob(filepath.Join(other, "*"+segExt))
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[3] ^= 0x40 // flip one bit inside the magic
	bad := filepath.Join(dir, "zz-corrupt"+segExt)
	if err := os.WriteFile(bad, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	s := j.Stats()
	if s.Segments != 1 || s.Records != 2 || s.Quarantined != 1 {
		t.Fatalf("load: %+v", s)
	}
	if _, err := os.Stat(bad + quarantineExt); err != nil {
		t.Fatalf("corrupt segment not renamed: %v", err)
	}
	j.Close()

	// The quarantined file is out of the merge set from now on.
	j2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if s2 := j2.Stats(); s2.Quarantined != 0 || s2.Segments != 1 || s2.Records != 2 {
		t.Fatalf("reopen after quarantine: %+v", s2)
	}
}

// TestForeignIdentityNeverQuarantined proves a healthy segment belonging
// to another sweep sharing the directory is skipped, not quarantined —
// quarantine is for corruption, not for neighbours.
func TestForeignIdentityNeverQuarantined(t *testing.T) {
	dir := t.TempDir()
	seedJournal(t, dir, 1)
	foreign := testIdentity()
	foreign.Params = append(foreign.Params, Param{Key: "sample", Value: "1"})
	jf, err := Open(dir, foreign)
	if err != nil {
		t.Fatal(err)
	}
	if err := jf.Record(CellKey("b", "d"), mkResult(9)); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s := j.Stats()
	if s.Segments != 1 || s.SkippedSegments != 1 || s.Quarantined != 0 {
		t.Fatalf("foreign segment mishandled: %+v", s)
	}
	if got := quarantined(t, dir); len(got) != 0 {
		t.Fatalf("foreign segment quarantined: %v", got)
	}
}

// TestDegradedJournalRecoversOnReopen proves degradation is per-process
// state: a fresh open over the same directory (disk healthy again)
// appends normally and still sees every cell acknowledged before the
// fault, minus the quarantined segment's.
func TestDegradedJournalRecoversOnReopen(t *testing.T) {
	dir := t.TempDir()
	seedJournal(t, dir, 2)
	in := fsio.NewInjector(1, fsio.OS, fsio.Rule{
		Op: fsio.OpWrite, Match: segExt, After: 1, // header through, first append fails
	})
	j, err := OpenFS(in, dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(CellKey("b", "d", 10), mkResult(10)); err == nil {
		t.Fatal("fault did not fire")
	}
	j.Close()

	j2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("pre-fault cells lost on reopen: %d", j2.Len())
	}
	if err := j2.Record(CellKey("b", "d", 10), mkResult(10)); err != nil {
		t.Fatalf("healthy reopen cannot append: %v", err)
	}
	if s := j2.Stats(); s.Degraded {
		t.Fatalf("degradation leaked across opens: %+v", s)
	}
}

// TestQuarantineNamesStayOutOfMergeSet pins the naming contract: the
// quarantine suffix must defeat the segment-suffix match.
func TestQuarantineNamesStayOutOfMergeSet(t *testing.T) {
	if strings.HasSuffix("x"+segExt+quarantineExt, segExt) {
		t.Fatal("quarantine extension still matches the segment suffix")
	}
}
