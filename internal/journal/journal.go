// Package journal is the write-ahead, per-cell result journal behind the
// experiment pipeline's crash-safe sweeps (-journal-dir in the command-line
// binaries). A large design-space sweep — Fig. 6/9, the strategy tables,
// the LP study — is a set of independent (benchmark × design) cells, each a
// pure function of its identity tuple (profile, design, config, sizing,
// seed, kernel). The journal checkpoints every completed cell to disk the
// moment it finishes, so a panic storm, an OOM kill or a plain Ctrl-C
// throws away at most the in-flight cells: a re-run with the same journal
// directory skips every journaled cell and merges its recorded result
// bit-identically into the new sweep.
//
// On-disk layout: a journal directory holds append-only segment files, one
// per writing process:
//
//	<experiment>-<identity fnv64>-<unixnano>-<pid>.m3dj
//
//	offset  size  field
//	0       8     magic "M3DJNL01"
//	8       4     header length H (little-endian uint32)
//	12      H     JSON header {Identity, CreatedUnixNano}
//	12+H    ...   records, each:
//	                4  payload length L (little-endian uint32)
//	                4  CRC32 (IEEE) of the payload
//	                L  payload: JSON {"K": cell key, "V": result}
//
// Durability and safety follow the .m3dtrace playbook plus a write-ahead
// twist:
//
//   - the segment header is written to a temp file, fsync'd and renamed
//     into place, so no reader ever sees a torn header;
//   - every Record append is fsync'd before it is acknowledged, so an
//     acknowledged cell survives any later crash;
//   - on load, a torn tail (short frame, implausible length, CRC or JSON
//     mismatch — the signature of a crash mid-append) ends the segment at
//     the last good record; stale torn segments are physically truncated
//     back to that point, recent ones (possibly being appended to by a
//     live sibling process) are left alone;
//   - the identity header is verified before a segment is trusted:
//     segments of other sweeps (or other sizings of the same sweep) in a
//     shared directory are skipped, never merged.
//
// The journal degrades rather than dies when the storage layer turns
// hostile:
//
//   - a segment whose magic or header is corrupt (a bit-flipped publish —
//     the tmp+fsync+rename protocol means no *torn* header is ever
//     visible) is quarantined on load: renamed to <name>.m3dj.quarantine
//     so later opens ignore it, and counted in Stats.Quarantined;
//   - an append or segment-creation failure (ENOSPC, EIO, a failed fsync)
//     quarantines the active segment the same way and flips the journal
//     into degraded mode: Lookup keeps serving the in-memory index, but
//     Record stops touching the disk and returns the original cause, so a
//     sweep continues unjournaled instead of aborting. The experiments
//     layer surfaces the downgrade through Stats().Degraded and
//     DegradedCause().
//
// All filesystem access goes through the internal/fsio seam, so chaos
// tests inject deterministic storage faults underneath this unmodified
// production code. The package depends only on the standard library plus
// fsio, so every layer of the pipeline (parallel, experiments, multicore,
// the cmds) can import it without cycles.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vertical3d/internal/fsio"
)

const (
	segMagic = "M3DJNL01"
	segExt   = ".m3dj"

	// quarantineExt is appended to a bad segment's full name, so
	// "x.m3dj" becomes "x.m3dj.quarantine" and no longer matches segExt.
	quarantineExt = ".quarantine"

	// maxHeader and maxPayload bound the length prefixes a loader will
	// trust; anything larger is treated as corruption (torn tail).
	maxHeader  = 1 << 20
	maxPayload = 1 << 26

	// tornTruncateAge guards physical truncation: a torn segment younger
	// than this may still be appended to by a live sibling process, so its
	// tail is skipped logically but the file is left untouched.
	tornTruncateAge = time.Minute
)

// Param is one key/value pair of a sweep identity.
type Param struct {
	Key   string
	Value string
}

// Params builds a parameter list from alternating key/value strings.
// It panics on an odd argument count — identities are built from literals.
func Params(kv ...string) []Param {
	if len(kv)%2 != 0 {
		panic("journal: Params needs alternating key/value pairs")
	}
	out := make([]Param, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Param{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// Identity pins a journal to one sweep definition: the experiment name
// plus every parameter that changes cell results (sizing, seed, kernel —
// but never the worker count or the design order, which are merge-neutral
// by the pipeline's determinism contract). Segments whose identity does
// not match are skipped on load, so several sweeps can share a directory.
type Identity struct {
	Experiment string
	Params     []Param
}

// Hash folds the identity into the 64-bit FNV-1a fingerprint used in
// segment file names.
func (id Identity) Hash() uint64 {
	h := fnv.New64a()
	io.WriteString(h, id.Experiment)
	for _, p := range id.Params {
		io.WriteString(h, "|")
		io.WriteString(h, p.Key)
		io.WriteString(h, "=")
		io.WriteString(h, p.Value)
	}
	return h.Sum64()
}

// String renders the identity for log lines.
func (id Identity) String() string {
	var b strings.Builder
	b.WriteString(id.Experiment)
	for _, p := range id.Params {
		fmt.Fprintf(&b, " %s=%s", p.Key, p.Value)
	}
	return b.String()
}

// equal reports field-wise equality (order-sensitive: identities are
// built from literals, so the order is canonical).
func (id Identity) equal(o Identity) bool {
	if id.Experiment != o.Experiment || len(id.Params) != len(o.Params) {
		return false
	}
	for i := range id.Params {
		if id.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// segHeader is the JSON header of a segment file.
type segHeader struct {
	Identity        Identity
	CreatedUnixNano int64
}

// record is the JSON payload of one journal frame.
type record struct {
	K string
	V json.RawMessage
}

// Stats counts what a journal loaded and how it was used. The Hits counter
// is the resume oracle's witness that journaled cells were merged, not
// re-executed.
type Stats struct {
	// Segments and Records count what Open loaded for this identity;
	// SkippedSegments counts files in the directory belonging to other
	// identities (or that could not be opened). TornTails counts segments
	// whose tail was cut at the last good record.
	Segments        int
	SkippedSegments int
	Records         int
	TornTails       int

	// Quarantined counts segment files renamed to *.m3dj.quarantine:
	// corrupt headers found on load plus the active segment after an
	// append failure. Degraded reports the journal has stopped appending
	// after an I/O failure (Lookup still serves the in-memory index).
	Quarantined int
	Degraded    bool

	// Hits and Misses count Lookup outcomes; Appends counts recorded
	// cells and AppendErrors the appends that failed to reach disk.
	Hits         int
	Misses       int
	Appends      int
	AppendErrors int
}

// Journal is an open per-sweep result journal: an in-memory index of every
// previously journaled cell plus an append-only segment for newly
// completed ones. All methods are safe for concurrent use by the worker
// pool; a nil *Journal is valid and behaves as an always-miss, discard-all
// journal, so call sites need no guards.
type Journal struct {
	mu      sync.Mutex
	fs      fsio.FS
	dir     string
	id      Identity
	cells   map[string]json.RawMessage
	f       fsio.File // open segment; created lazily on first Record
	segPath string    // published path of the open segment
	cause   error     // first fatal append error; non-nil once degraded
	stats   Stats
	now     func() time.Time // test seam for torn-tail age checks
}

// journalFS is the filesystem Open routes through — the real one in
// production, an *fsio.Injector under the chaos campaigns that drive the
// whole sweep stack (experiments → journal) through injected storage
// faults without plumbing an FS through every layer.
var (
	fsMu      sync.RWMutex
	journalFS fsio.FS = fsio.OS
)

// SetFS overrides the filesystem Open uses; nil restores the real one.
// Test-only: journals opened afterwards are unaffected by later calls.
func SetFS(fs fsio.FS) {
	fsMu.Lock()
	defer fsMu.Unlock()
	if fs == nil {
		fs = fsio.OS
	}
	journalFS = fs
}

func getFS() fsio.FS {
	fsMu.RLock()
	defer fsMu.RUnlock()
	return journalFS
}

// Open loads every matching segment of dir (creating the directory if
// needed) and returns a journal ready for Lookup/Record on the default
// filesystem (see SetFS). See OpenFS.
func Open(dir string, id Identity) (*Journal, error) {
	return OpenFS(getFS(), dir, id)
}

// OpenFS is Open over an explicit filesystem seam (chaos tests pass an
// *fsio.Injector). Segments with a foreign identity are skipped; segments
// with a corrupt magic or header are quarantined; torn tails are cut (and
// stale ones physically truncated). The append segment is created lazily
// on the first Record, so re-running a fully journaled sweep leaves the
// directory untouched.
func OpenFS(fsys fsio.FS, dir string, id Identity) (*Journal, error) {
	if fsys == nil {
		fsys = fsio.OS
	}
	if dir == "" {
		return nil, errors.New("journal: empty directory")
	}
	if id.Experiment == "" {
		return nil, errors.New("journal: identity needs an experiment name")
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{fs: fsys, dir: dir, id: id, cells: map[string]json.RawMessage{}, now: time.Now}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segExt) {
			names = append(names, e.Name())
		}
	}
	// Deterministic merge order; within one identity all values for a key
	// are bit-identical by the determinism contract, so order only breaks
	// ties between identical payloads.
	sort.Strings(names)
	for _, name := range names {
		j.loadSegment(filepath.Join(dir, name))
	}
	return j, nil
}

// loadSegment reads one segment file into the cell index, verifying the
// magic, the identity header and every record frame. A corrupt magic or
// header quarantines the file; corruption past the header ends the
// segment at the last good record (torn tail); stale torn segments are
// truncated in place, best-effort.
func (j *Journal) loadSegment(path string) {
	f, err := j.fs.Open(path)
	if err != nil {
		j.stats.SkippedSegments++
		return
	}

	hdr, dataStart, ok := readHeader(f)
	if !ok {
		// The publish protocol (tmp+fsync+rename) never exposes a torn
		// header, so a visible segment that fails here is genuinely
		// corrupt — quarantine it rather than reloading garbage forever.
		_ = f.Close()
		j.quarantineFile(path)
		return
	}
	if !hdr.Identity.equal(j.id) {
		_ = f.Close()
		j.stats.SkippedSegments++
		return
	}

	good := dataStart // offset just past the last verified record
	recs := 0
	torn := false
	for {
		rec, next, err := readRecord(f, good)
		if err == io.EOF {
			break
		}
		if err != nil {
			torn = true
			break
		}
		j.cells[rec.K] = rec.V
		good = next
		recs++
	}
	_ = f.Close()
	j.stats.Segments++
	j.stats.Records += recs
	if torn {
		j.stats.TornTails++
		j.truncateStale(path, good)
	}
}

// quarantineFile renames a bad segment to <path>.quarantine (best-effort;
// a failed rename leaves the file to be retried on the next open) and
// counts it. Quarantined files no longer match the segment suffix, so
// later opens ignore them while an operator can still inspect the bytes.
func (j *Journal) quarantineFile(path string) {
	if err := j.fs.Rename(path, path+quarantineExt); err != nil {
		j.stats.SkippedSegments++
		return
	}
	j.stats.Quarantined++
}

// readHeader verifies the magic and decodes the JSON header, returning
// the offset of the first record.
func readHeader(f io.Reader) (segHeader, int64, bool) {
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		return segHeader{}, 0, false
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
		return segHeader{}, 0, false
	}
	hlen := binary.LittleEndian.Uint32(lenBuf[:])
	if hlen == 0 || hlen > maxHeader {
		return segHeader{}, 0, false
	}
	hdrBytes := make([]byte, hlen)
	if _, err := io.ReadFull(f, hdrBytes); err != nil {
		return segHeader{}, 0, false
	}
	var hdr segHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return segHeader{}, 0, false
	}
	return hdr, int64(len(segMagic)) + 4 + int64(hlen), true
}

// readRecord reads and verifies one frame starting at offset off. It
// returns io.EOF at a clean end of file and a non-EOF error for any torn
// or corrupt frame.
func readRecord(f io.Reader, off int64) (record, int64, error) {
	var pre [8]byte
	if _, err := io.ReadFull(f, pre[:1]); err == io.EOF {
		return record{}, 0, io.EOF // clean end
	} else if err != nil {
		return record{}, 0, fmt.Errorf("journal: torn frame prefix: %w", err)
	}
	if _, err := io.ReadFull(f, pre[1:]); err != nil {
		return record{}, 0, fmt.Errorf("journal: torn frame prefix: %w", err)
	}
	plen := binary.LittleEndian.Uint32(pre[:4])
	sum := binary.LittleEndian.Uint32(pre[4:])
	if plen == 0 || plen > maxPayload {
		return record{}, 0, fmt.Errorf("journal: implausible payload length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(f, payload); err != nil {
		return record{}, 0, fmt.Errorf("journal: torn payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return record{}, 0, errors.New("journal: payload checksum mismatch")
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, 0, fmt.Errorf("journal: payload decode: %w", err)
	}
	if rec.K == "" {
		return record{}, 0, errors.New("journal: record without a key")
	}
	return rec, off + 8 + int64(plen), nil
}

// truncateStale cuts a torn segment back to its last good record, but
// only when the file has been quiet for tornTruncateAge — a fresh mtime
// means a sibling process may still be appending, and truncating under a
// live writer would corrupt its acknowledged records.
func (j *Journal) truncateStale(path string, good int64) {
	info, err := j.fs.Stat(path)
	if err != nil || j.now().Sub(info.ModTime()) < tornTruncateAge {
		return
	}
	_ = j.fs.Truncate(path, good) // best-effort cleanup
}

// Lookup unmarshals the journaled result of a cell into out and reports
// whether the cell was found. A nil journal (or an undecodable record)
// misses. Concurrency-safe.
func (j *Journal) Lookup(key string, out any) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	raw, ok := j.cells[key]
	if !ok {
		j.stats.Misses++
		j.mu.Unlock()
		return false
	}
	j.stats.Hits++
	j.mu.Unlock()
	// Unmarshal outside the lock: raw is never mutated once stored.
	if err := json.Unmarshal(raw, out); err != nil {
		j.mu.Lock()
		j.stats.Hits--
		j.stats.Misses++
		j.mu.Unlock()
		return false
	}
	return true
}

// LookupRaw returns the journaled result of a cell as its canonical JSON
// encoding, without decoding it — the read path of the result cache's disk
// tier, which stores and re-serves exactly these bytes so a cached cell is
// byte-identical to a journal-resumed one. The returned slice is never
// mutated after being stored; callers must treat it as read-only. A nil
// journal misses. Concurrency-safe; counted in Stats like Lookup.
func (j *Journal) LookupRaw(key string) (json.RawMessage, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.cells[key]
	if ok {
		j.stats.Hits++
	} else {
		j.stats.Misses++
	}
	return raw, ok
}

// Record journals a completed cell: the append is fsync'd before Record
// returns, so an acknowledged cell survives any later crash. The value
// must round-trip through JSON bit-identically (plain exported structs of
// finite floats, integers and strings — every sweep result type in this
// repository qualifies). A nil journal discards. Concurrency-safe.
//
// A failed write, sync or segment creation quarantines the active segment
// and degrades the journal: this and every later Record return the
// original cause without touching the disk, while Lookup keeps serving
// the in-memory index. Degradation is observable through Stats().Degraded
// and DegradedCause().
func (j *Journal) Record(key string, v any) error {
	if j == nil {
		return nil
	}
	if key == "" {
		return errors.New("journal: empty cell key")
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return j.appendFailed(fmt.Errorf("journal: encode %q: %w", key, err))
	}
	payload, err := json.Marshal(record{K: key, V: raw})
	if err != nil {
		return j.appendFailed(fmt.Errorf("journal: frame %q: %w", key, err))
	}
	if len(payload) > maxPayload {
		return j.appendFailed(fmt.Errorf("journal: %q: payload %d exceeds %d bytes", key, len(payload), maxPayload))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cause != nil {
		return j.cause
	}
	if j.f == nil {
		if err := j.createSegment(); err != nil {
			j.stats.AppendErrors++
			j.degrade(err)
			return err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		j.stats.AppendErrors++
		err = fmt.Errorf("journal: append %q: %w", key, err)
		j.degrade(err)
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.stats.AppendErrors++
		err = fmt.Errorf("journal: sync %q: %w", key, err)
		j.degrade(err)
		return err
	}
	j.cells[key] = raw
	j.stats.Appends++
	return nil
}

// degrade quarantines the active segment (its tail is suspect — a partial
// frame or unsynced bytes) and flips the journal into degraded mode.
// Called with j.mu held.
func (j *Journal) degrade(cause error) {
	j.cause = cause
	j.stats.Degraded = true
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
	if j.segPath != "" {
		j.quarantineFile(j.segPath)
		j.segPath = ""
	}
}

// appendFailed counts a failed append under the lock. Encoding failures
// are per-value, not a sick disk, so they do not degrade the journal.
func (j *Journal) appendFailed(err error) error {
	j.mu.Lock()
	j.stats.AppendErrors++
	j.mu.Unlock()
	return err
}

// createSegment writes the identity header to a temp file, fsyncs it and
// renames it into place, keeping the handle open for appends. Called with
// j.mu held.
func (j *Journal) createSegment() error {
	hdr, err := json.Marshal(segHeader{Identity: j.id, CreatedUnixNano: time.Now().UnixNano()})
	if err != nil {
		return fmt.Errorf("journal: encode header: %w", err)
	}
	tmp, err := j.fs.CreateTemp(j.dir, ".m3dj-tmp-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	cleanup := func() {
		_ = tmp.Close()
		_ = j.fs.Remove(tmp.Name())
	}
	buf := make([]byte, 0, len(segMagic)+4+len(hdr))
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return fmt.Errorf("journal: write header: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("journal: sync header: %w", err)
	}
	name := fmt.Sprintf("%s-%016x-%d-%d%s",
		sanitize(j.id.Experiment), j.id.Hash(), time.Now().UnixNano(), os.Getpid(), segExt)
	path := filepath.Join(j.dir, name)
	if err := j.fs.Rename(tmp.Name(), path); err != nil {
		cleanup()
		return fmt.Errorf("journal: publish segment: %w", err)
	}
	// Persist the directory entry too, best-effort: some filesystems need
	// an explicit fsync of the parent for the rename to survive a crash.
	_ = fsio.SyncDir(j.fs, j.dir)
	j.f = tmp
	j.segPath = path
	return nil
}

// sanitize keeps file names portable.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// Len returns the number of distinct journaled cells currently indexed.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Stats returns a snapshot of the load/hit/append counters.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// DegradedCause returns the error that degraded the journal, or nil while
// it is still appending (a nil journal is trivially healthy).
func (j *Journal) DegradedCause() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cause
}

// Close flushes and closes the append segment (if one was created).
// Idempotent; a nil or degraded journal closes trivially.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	j.segPath = ""
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: close: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// CellKey builds the canonical per-cell journal key: a readable
// "<bench>/<design>" prefix plus the FNV-64a fingerprint of every value
// in the cell's identity tuple (profile contents, derived configuration,
// sizing, seed, kernel), rendered via %+v. Two cells agree on a key only
// when every input that could change their result agrees.
//
// Callers must pass values whose %+v rendering is deterministic — structs
// of plain data, not pointers or funcs.
func CellKey(bench, design string, identity ...any) string {
	h := fnv.New64a()
	for _, v := range identity {
		fmt.Fprintf(h, "%+v|", v)
	}
	return fmt.Sprintf("%s/%s#%016x", bench, design, h.Sum64())
}
