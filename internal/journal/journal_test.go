package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// cellResult stands in for a sweep cell's result payload.
type cellResult struct {
	IPC     float64
	Cycles  uint64
	Instrs  uint64
	Name    string
	Kind    [4]uint64
	Speedup float64
}

func testIdentity() Identity {
	return Identity{Experiment: "fig6", Params: Params(
		"warmup", "80000", "measure", "200000", "seed", "42", "kernel", "event")}
}

func mkResult(i int) cellResult {
	return cellResult{
		IPC:     1.0/3.0 + float64(i), // non-terminating binary fraction
		Cycles:  uint64(1)<<62 + uint64(i),
		Instrs:  uint64(i) * 1_000_003,
		Name:    fmt.Sprintf("cell-%d", i),
		Kind:    [4]uint64{uint64(i), 2, 3, 1<<63 + 7},
		Speedup: 1.234567890123456789 * float64(i+1),
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	id := testIdentity()
	j, err := Open(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]cellResult{}
	for i := 0; i < 20; i++ {
		key := CellKey("bench", fmt.Sprint(i), i, "profile", 42)
		want[key] = mkResult(i)
		if err := j.Record(key, want[key]); err != nil {
			t.Fatal(err)
		}
	}
	// Same-process lookups hit the in-memory index.
	for key, w := range want {
		var got cellResult
		if !j.Lookup(key, &got) {
			t.Fatalf("lookup miss for %s", key)
		}
		if got != w {
			t.Fatalf("lookup %s = %+v, want %+v", key, got, w)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh Open must reload every record bit-identically.
	j2, err := Open(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if s := j2.Stats(); s.Segments != 1 || s.Records != len(want) || s.TornTails != 0 || s.SkippedSegments != 0 {
		t.Fatalf("reload stats = %+v", s)
	}
	for key, w := range want {
		var got cellResult
		if !j2.Lookup(key, &got) {
			t.Fatalf("reload miss for %s", key)
		}
		if got != w {
			t.Fatalf("reload %s = %+v, want %+v", key, got, w)
		}
	}
	if s := j2.Stats(); s.Hits != len(want) || s.Misses != 0 {
		t.Fatalf("hit counters = %+v", s)
	}
	var dummy cellResult
	if j2.Lookup("absent", &dummy) {
		t.Fatal("lookup of absent key hit")
	}
	if s := j2.Stats(); s.Misses != 1 {
		t.Fatalf("miss counter = %+v", s)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Record("k", 1); err != nil {
		t.Fatal(err)
	}
	var v int
	if j.Lookup("k", &v) {
		t.Fatal("nil journal hit")
	}
	if j.Len() != 0 || j.Stats() != (Stats{}) || j.Close() != nil {
		t.Fatal("nil journal not inert")
	}
}

func TestIdentityMismatchSkipsSegment(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a/b#0", mkResult(1)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := testIdentity()
	other.Params[0].Value = "81000" // one differing sizing parameter
	j2, err := Open(dir, other)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 0 {
		t.Fatalf("foreign identity loaded %d cells", j2.Len())
	}
	if s := j2.Stats(); s.SkippedSegments != 1 || s.Segments != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// segPath returns the single segment file of dir.
func segPath(t *testing.T, dir string) string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if err != nil || len(m) != 1 {
		t.Fatalf("want one segment, got %v (%v)", m, err)
	}
	return m[0]
}

func writeJournal(t *testing.T, dir string, n int) {
	t.Helper()
	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Record(CellKey("b", fmt.Sprint(i)), mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
}

func TestTornTailIsCutAtLastGoodRecord(t *testing.T) {
	for _, tear := range []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated-mid-payload", func(b []byte) []byte { return b[:len(b)-7] }},
		{"truncated-tail-short", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bit-flip-in-payload", func(b []byte) []byte { b[len(b)-2] ^= 0x40; return b }},
		{"garbage-appended", func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef) }},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			writeJournal(t, dir, 5)
			path := segPath(t, dir)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear.mut(append([]byte(nil), b...)), 0o644); err != nil {
				t.Fatal(err)
			}

			j, err := Open(dir, testIdentity())
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			s := j.Stats()
			if s.TornTails != 1 {
				t.Fatalf("stats = %+v, want one torn tail", s)
			}
			// Every record before the tear survives.
			wantSurvivors := 4
			if tear.name == "garbage-appended" {
				wantSurvivors = 5
			}
			if s.Records != wantSurvivors || j.Len() != wantSurvivors {
				t.Fatalf("survivors = %d (stats %+v), want %d", j.Len(), s, wantSurvivors)
			}
			for i := 0; i < wantSurvivors; i++ {
				var got cellResult
				if !j.Lookup(CellKey("b", fmt.Sprint(i)), &got) {
					t.Fatalf("record %d lost", i)
				}
				if got != mkResult(i) {
					t.Fatalf("record %d corrupted: %+v", i, got)
				}
			}
		})
	}
}

func TestTornTailTruncationRespectsAge(t *testing.T) {
	build := func(t *testing.T) (dir, path string, goodLen int64) {
		dir = t.TempDir()
		writeJournal(t, dir, 3)
		path = segPath(t, dir)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Append a torn half-frame.
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xaa}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return dir, path, info.Size()
	}

	t.Run("stale-segment-truncated", func(t *testing.T) {
		dir, path, goodLen := build(t)
		old := time.Now().Add(-2 * tornTruncateAge)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, testIdentity())
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != goodLen {
			t.Fatalf("stale torn segment size = %d, want truncated to %d", info.Size(), goodLen)
		}
	})

	t.Run("fresh-segment-left-alone", func(t *testing.T) {
		dir, path, goodLen := build(t)
		j, err := Open(dir, testIdentity())
		if err != nil {
			t.Fatal(err)
		}
		if j.Len() != 3 {
			t.Fatalf("loaded %d records, want 3", j.Len())
		}
		j.Close()
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() <= goodLen {
			t.Fatal("fresh torn segment was truncated under a potentially live writer")
		}
	})
}

func TestMultiSegmentMerge(t *testing.T) {
	dir := t.TempDir()
	// Two separate runs journal disjoint halves (as an interrupted run and
	// its resume would).
	j1, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j1.Record(CellKey("b", fmt.Sprint(i)), mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close()
	time.Sleep(2 * time.Millisecond) // distinct segment names (unixnano)
	j2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 4 {
		t.Fatalf("resume loaded %d, want 4", j2.Len())
	}
	for i := 4; i < 8; i++ {
		if err := j2.Record(CellKey("b", fmt.Sprint(i)), mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	j2.Close()

	j3, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if s := j3.Stats(); s.Segments != 2 || s.Records != 8 || j3.Len() != 8 {
		t.Fatalf("merged stats = %+v len=%d", s, j3.Len())
	}
	for i := 0; i < 8; i++ {
		var got cellResult
		if !j3.Lookup(CellKey("b", fmt.Sprint(i)), &got) || got != mkResult(i) {
			t.Fatalf("merged record %d wrong: %+v", i, got)
		}
	}
}

// TestConcurrentAppendAndLookup is the -race witness for the worker-pool
// usage pattern: many goroutines recording disjoint cells while others
// look up, against one shared journal.
func TestConcurrentAppendAndLookup(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * n / 8; i < (g+1)*n/8; i++ {
				if err := j.Record(CellKey("b", fmt.Sprint(i)), mkResult(i)); err != nil {
					t.Error(err)
				}
				var got cellResult
				j.Lookup(CellKey("b", fmt.Sprint((i+13)%n)), &got)
				j.Len()
				j.Stats()
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != n {
		t.Fatalf("reloaded %d cells, want %d", j2.Len(), n)
	}
	for i := 0; i < n; i++ {
		var got cellResult
		if !j2.Lookup(CellKey("b", fmt.Sprint(i)), &got) || got != mkResult(i) {
			t.Fatalf("cell %d wrong after concurrent append: %+v", i, got)
		}
	}
}

func TestCellKeyStability(t *testing.T) {
	a := CellKey("Gamess", "M3D-Het", 1, "x", 2.5)
	b := CellKey("Gamess", "M3D-Het", 1, "x", 2.5)
	if a != b {
		t.Fatalf("key not stable: %s vs %s", a, b)
	}
	if !strings.HasPrefix(a, "Gamess/M3D-Het#") {
		t.Fatalf("key prefix: %s", a)
	}
	if c := CellKey("Gamess", "M3D-Het", 1, "x", 2.5000001); c == a {
		t.Fatal("identity change did not change the key")
	}
}

func TestIdentityHashAndEquality(t *testing.T) {
	a := testIdentity()
	b := testIdentity()
	if a.Hash() != b.Hash() || !a.equal(b) {
		t.Fatal("identical identities disagree")
	}
	c := testIdentity()
	c.Params[3].Value = "reference"
	if a.Hash() == c.Hash() || a.equal(c) {
		t.Fatal("differing identities agree")
	}
	if !strings.Contains(a.String(), "fig6") || !strings.Contains(a.String(), "seed=42") {
		t.Fatalf("identity string: %s", a.String())
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", testIdentity()); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), Identity{}); err == nil {
		t.Fatal("empty identity accepted")
	}
}

func TestNoSegmentCreatedWithoutAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(m) != 0 {
		t.Fatalf("append-free journal left files: %v", m)
	}
}

func TestLastRecordWinsAcrossDuplicates(t *testing.T) {
	// Within one identity duplicates are bit-identical by contract, but the
	// loader must still behave deterministically if they ever differ.
	dir := t.TempDir()
	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("dup", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("dup", 2); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var v int
	if !j2.Lookup("dup", &v) || v != 2 {
		t.Fatalf("dup = %d, want last-write 2", v)
	}
}

func TestStatsSnapshotIsValue(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s := j.Stats()
	s.Hits = 999
	if j.Stats().Hits == 999 {
		t.Fatal("Stats leaked internal state")
	}
	if !reflect.DeepEqual(j.Stats(), Stats{}) {
		t.Fatalf("fresh stats = %+v", j.Stats())
	}
}

// TestHeaderFrameLayout pins the on-disk framing documented in the package
// comment: magic, little-endian header length, JSON header, then
// length+CRC framed records.
func TestHeaderFrameLayout(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 1)
	b, err := os.ReadFile(segPath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:8]) != segMagic {
		t.Fatalf("magic = %q", b[:8])
	}
	hlen := binary.LittleEndian.Uint32(b[8:12])
	if int(12+hlen) > len(b) {
		t.Fatalf("header length %d overruns file", hlen)
	}
	hdr := b[12 : 12+hlen]
	if !strings.Contains(string(hdr), `"Experiment":"fig6"`) {
		t.Fatalf("header JSON: %s", hdr)
	}
	rec := b[12+hlen:]
	plen := binary.LittleEndian.Uint32(rec[:4])
	if int(8+plen) != len(rec) {
		t.Fatalf("record frame length %d vs remaining %d", plen, len(rec)-8)
	}
}
