package journal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// validSegment builds a well-formed one-record segment for the seed corpus.
func validSegment(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	j, err := Open(dir, testIdentity())
	if err != nil {
		tb.Fatal(err)
	}
	if err := j.Record(CellKey("b", "d"), mkResult(7)); err != nil {
		tb.Fatal(err)
	}
	j.Close()
	m, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if len(m) != 1 {
		tb.Fatalf("want one segment, got %v", m)
	}
	b, err := os.ReadFile(m[0])
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// FuzzJournal feeds arbitrary bytes to the segment loader as an on-disk
// file: the reject-or-valid contract is that Open never panics, never
// returns corrupt records (CRC-verified), and — for stale files — only
// ever truncates, never grows or scrambles, the input.
func FuzzJournal(f *testing.F) {
	valid := validSegment(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])             // torn payload
	f.Add(valid[:10])                       // torn header
	f.Add([]byte(segMagic))                 // magic only
	f.Add([]byte{})                         // empty file
	f.Add([]byte("M3DTRC01 not a journal")) // foreign magic
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x08
	f.Add(flip)
	huge := append([]byte(nil), valid[:12]...)
	binary.LittleEndian.PutUint32(huge[8:12], 1<<30) // implausible header length
	f.Add(huge)
	// Valid header, record claiming a huge payload.
	hlen := binary.LittleEndian.Uint32(valid[8:12])
	bigRec := append([]byte(nil), valid[:12+hlen]...)
	bigRec = binary.LittleEndian.AppendUint32(bigRec, 1<<31-1)
	bigRec = binary.LittleEndian.AppendUint32(bigRec, crc32.ChecksumIEEE(nil))
	f.Add(bigRec)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz-seg"+segExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		// Age the file so the stale-truncation path is exercised too.
		old := time.Now().Add(-2 * tornTruncateAge)
		_ = os.Chtimes(path, old, old)

		j, err := Open(dir, testIdentity())
		if err != nil {
			t.Fatalf("Open must not fail on a corrupt segment (skip it instead): %v", err)
		}
		defer j.Close()
		s := j.Stats()
		if s.Segments+s.SkippedSegments+s.Quarantined != 1 {
			t.Fatalf("segment neither loaded, skipped nor quarantined: %+v", s)
		}
		// A quarantined segment must be out of the way (renamed), not gone.
		if s.Quarantined == 1 {
			if _, err := os.Stat(path + quarantineExt); err != nil {
				t.Fatalf("quarantined bytes lost: %v", err)
			}
		}
		if s.Records < 0 || j.Len() > s.Records {
			t.Fatalf("inconsistent record accounting: %+v len=%d", s, j.Len())
		}
		// Truncation may only shrink the file, never extend or replace it.
		if info, err := os.Stat(path); err == nil {
			if info.Size() > int64(len(data)) {
				t.Fatalf("loader grew the segment: %d > %d", info.Size(), len(data))
			}
		}
		// The journal must stay fully usable after swallowing garbage.
		if err := j.Record("post-fuzz", 42); err != nil {
			t.Fatalf("journal unusable after corrupt load: %v", err)
		}
		var v int
		if !j.Lookup("post-fuzz", &v) || v != 42 {
			t.Fatal("post-fuzz record lost")
		}
	})
}
