// Package parallel provides the bounded worker pool every experiment sweep
// in this repository fans out through. Each (benchmark × design) cell of a
// figure or table is an independent cycle-level simulation, so sweeps
// parallelise embarrassingly well — but the results must stay bit-identical
// at any worker count. The pool therefore guarantees:
//
//   - deterministic result collection: Map writes the result of task i into
//     slot i of a pre-sized slice, so output order never depends on
//     goroutine scheduling;
//   - deterministic error selection: when several tasks fail, the error of
//     the lowest-indexed failing task is returned;
//   - context cancellation: the first failure (or an external cancel) stops
//     the dispatch of any task that has not started yet;
//   - a bounded worker count: at most Workers goroutines run tasks, with
//     Workers <= 0 meaning DefaultWorkers().
//
// Tasks themselves must be pure functions of their index (plus immutable
// captured state); the pool adds no synchronisation beyond the join, which
// is exactly what makes "results depend only on (profile, design, seed),
// never on scheduling order" enforceable.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the pool-wide default when positive. It is set
// by the -j flag of the command-line binaries.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used by
// pools whose Workers field is zero. n <= 0 restores the GOMAXPROCS
// default. It returns the previous override (0 if none was set).
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers returns the default worker count: the value installed with
// SetDefaultWorkers if positive, else runtime.GOMAXPROCS(0).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded worker pool. The zero value is ready to use and runs
// DefaultWorkers() tasks concurrently.
type Pool struct {
	// Workers is the maximum number of concurrently running tasks.
	// Values <= 0 mean DefaultWorkers().
	Workers int
}

// Default returns a pool using the process-wide default worker count.
func Default() Pool { return Pool{} }

// size clamps the worker count to [1, n].
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	return min(max(w, 1), max(n, 1))
}

// ForEach runs fn(ctx, i) for every i in [0, n), at most p.Workers at a
// time, and blocks until all started tasks have finished. The first error
// cancels the context passed to every task and stops dispatching new ones;
// among the tasks that did fail, the error of the lowest index is returned
// so the reported error does not depend on goroutine scheduling.
func (p Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.size(n)
	errs := make([]error, n) // slot per task: no locking, no ordering races
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel() // first failure stops new dispatch
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Map runs fn over [0, n) on pool p and collects the results by index, so
// out[i] is always the result of task i regardless of completion order.
// On error the partial results are discarded and the lowest-indexed task
// error is returned.
func Map[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := p.ForEach(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
