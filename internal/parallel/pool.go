// Package parallel provides the bounded worker pool every experiment sweep
// in this repository fans out through. Each (benchmark × design) cell of a
// figure or table is an independent cycle-level simulation, so sweeps
// parallelise embarrassingly well — but the results must stay bit-identical
// at any worker count. The pool therefore guarantees:
//
//   - deterministic result collection: Map writes the result of task i into
//     slot i of a pre-sized slice, so output order never depends on
//     goroutine scheduling;
//   - deterministic error selection: when several tasks fail, the error of
//     the lowest-indexed failing task is returned;
//   - context cancellation: the first failure (or an external cancel) stops
//     the dispatch of any task that has not started yet;
//   - panic safety: a panicking task is recovered into a *PanicError
//     carrying the task index and stack, and reported like any other task
//     error instead of crashing the whole sweep;
//   - deadlines: TaskTimeout bounds each task's context and SweepTimeout
//     bounds the whole ForEach/Map call;
//   - bounded retries: Retry re-runs transiently failing cells (panics,
//     task timeouts) with deterministic jittered exponential backoff —
//     sound because cells are pure functions of their index;
//   - a watchdog: WatchdogGrace logs cells still running past their
//     TaskTimeout plus grace, catching tasks that ignore their context;
//   - a bounded worker count: at most Workers goroutines run tasks, with
//     Workers <= 0 meaning DefaultWorkers().
//
// Map fails fast; MapPartial keeps going, running every cell and recording
// per-cell errors so a sweep with one poisoned cell still yields every
// healthy cell (the -keep-going mode of the command-line binaries).
//
// Tasks themselves must be pure functions of their index (plus immutable
// captured state); the pool adds no synchronisation beyond the join, which
// is exactly what makes "results depend only on (profile, design, seed),
// never on scheduling order" enforceable.
package parallel

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"vertical3d/internal/guard"
)

// defaultWorkers overrides the pool-wide default when positive. It is set
// by the -j flag of the command-line binaries.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used by
// pools whose Workers field is zero. n <= 0 restores the GOMAXPROCS
// default. It returns the previous override (0 if none was set).
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers returns the default worker count: the value installed with
// SetDefaultWorkers if positive, else runtime.GOMAXPROCS(0).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is a task panic recovered by the pool. It preserves the task
// index, the panic value and the goroutine stack at the panic site, so a
// crash inside one (benchmark × design) cell is attributable instead of
// killing the entire sweep.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", p.Index, p.Value)
}

// String includes the stack trace.
func (p *PanicError) String() string {
	return p.Error() + "\n" + string(p.Stack)
}

// PanicValue returns the recovered panic value. It is the structural
// marker guard.Classify uses to recognise recovered panics without
// importing this package.
func (p *PanicError) PanicValue() any { return p.Value }

// CellAbortError marks a cell that never ran: the sweep's context was
// cancelled — externally, or by an expired SweepTimeout — before the cell
// was dispatched. It carries the cell index and the sweep deadline so a
// resumed run can report exactly which cells were preempted instead of a
// generic context error.
type CellAbortError struct {
	// Index is the undispatched cell.
	Index int
	// Deadline is the sweep deadline that preempted dispatch; zero when
	// the sweep was cancelled without a deadline (external cancel).
	Deadline time.Time
	// Err is the underlying context error (context.Canceled or
	// context.DeadlineExceeded); errors.Is sees through it.
	Err error
}

// Error implements error.
func (e *CellAbortError) Error() string {
	if !e.Deadline.IsZero() {
		return fmt.Sprintf("parallel: cell %d not dispatched: sweep deadline %s exceeded: %v",
			e.Index, e.Deadline.Format(time.RFC3339Nano), e.Err)
	}
	return fmt.Sprintf("parallel: cell %d not dispatched: %v", e.Index, e.Err)
}

// Unwrap exposes the context error to errors.Is/As.
func (e *CellAbortError) Unwrap() error { return e.Err }

// Retry bounds per-cell re-execution of transiently failing tasks with
// jittered exponential backoff. The zero value disables retries, keeping
// every cell single-shot.
//
// Retrying is sound in this pipeline because cells are pure functions of
// their index: a successful re-execution is bit-identical to a first-try
// success, so retries change only availability, never results.
type Retry struct {
	// Attempts is the maximum number of times a cell runs, including the
	// first. Values <= 1 disable retries.
	Attempts int

	// BaseDelay is the backoff before the first retry; it doubles on
	// every further retry. 0 means 10ms.
	BaseDelay time.Duration

	// MaxDelay caps the exponential backoff. 0 means 1s.
	MaxDelay time.Duration

	// Jitter widens each delay by a deterministic per-(cell, attempt)
	// factor in [1-Jitter, 1+Jitter], decorrelating retry bursts without
	// sacrificing run-to-run reproducibility (the factor is a hash, not a
	// random draw). 0 means 0.5; negative disables jitter.
	Jitter float64

	// Retryable classifies errors; nil means DefaultRetryable. It is
	// consulted after every failed attempt except the last.
	Retryable func(error) bool
}

// attempts clamps the configured attempt budget.
func (r Retry) attempts() int { return max(r.Attempts, 1) }

// retryable applies the configured or default classification.
func (r Retry) retryable(err error) bool {
	if r.Retryable != nil {
		return r.Retryable(err)
	}
	return DefaultRetryable(err)
}

// DefaultRetryable is the default retry classification, built on
// guard.Classify: recovered panics and expired task deadlines are
// transient (an OOM-adjacent allocation failure or an overloaded machine
// may not recur); cancellation is deliberate and deterministic model
// errors would only fail again, so neither is retried.
func DefaultRetryable(err error) bool {
	switch guard.Classify(err) {
	case guard.KindPanic, guard.KindTimeout:
		return true
	default:
		return false
	}
}

// backoff returns the delay before retry number attempt (1-based count of
// failures so far) of the given cell. Deterministic: the same (cell,
// attempt) always backs off for the same duration.
func (r Retry) backoff(cell, attempt int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxD := r.MaxDelay
	if maxD <= 0 {
		maxD = time.Second
	}
	d := maxD
	if attempt-1 < 30 { // past 2^30 the cap always wins; avoid overflow
		if shifted := base << (attempt - 1); shifted > 0 && shifted < maxD {
			d = shifted
		}
	}
	j := r.Jitter
	if j == 0 {
		j = 0.5
	}
	if j > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%d", cell, attempt)
		u := float64(h.Sum64()) / float64(math.MaxUint64) // [0, 1)
		d = time.Duration(float64(d) * (1 + j*(2*u-1)))
	}
	return max(d, 0)
}

// sleepCtx sleeps for d unless ctx is done first; it reports whether the
// full backoff elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Pool is a bounded worker pool. The zero value is ready to use and runs
// DefaultWorkers() tasks concurrently.
type Pool struct {
	// Workers is the maximum number of concurrently running tasks.
	// Values <= 0 mean DefaultWorkers().
	Workers int

	// TaskTimeout, when positive, bounds the context passed to each task.
	// Tasks observe the deadline through their context; a cooperative task
	// returns its ctx.Err(), which the pool reports like any other task
	// error. The pool cannot forcibly stop a task that ignores its context.
	TaskTimeout time.Duration

	// SweepTimeout, when positive, bounds the whole ForEach/Map call: on
	// expiry the context passed to every task is cancelled and no new task
	// is dispatched.
	SweepTimeout time.Duration

	// Retry re-runs transiently failing cells (recovered panics, expired
	// task deadlines) with jittered exponential backoff. The zero value
	// disables retries.
	Retry Retry

	// WatchdogGrace, when positive together with TaskTimeout, arms a
	// watchdog that logs every cell still running WatchdogGrace past its
	// TaskTimeout — the signature of a task ignoring its context. The
	// watchdog only observes and logs; it cannot stop a runaway goroutine.
	WatchdogGrace time.Duration

	// WatchdogLog receives the watchdog's stuck-cell reports. Nil means
	// the standard library logger (stderr).
	WatchdogLog func(format string, args ...any)
}

// Default returns a pool using the process-wide default worker count.
func Default() Pool { return Pool{} }

// size clamps the worker count to [1, n].
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	return min(max(w, 1), max(n, 1))
}

// watchdog tracks per-cell start times and logs cells overrunning the
// task deadline past the grace period. All methods are nil-receiver safe
// so the dispatch loop needs no branches when the watchdog is disarmed.
type watchdog struct {
	limit  time.Duration // TaskTimeout + grace
	logf   func(format string, args ...any)
	starts []atomic.Int64 // start unix-nanos per cell; 0 = not running
	warned []atomic.Bool
	stop   chan struct{}
	done   sync.WaitGroup
}

// newWatchdog arms a watchdog for n cells, or returns nil when the pool
// has no task deadline or no grace configured.
func (p Pool) newWatchdog(n int) *watchdog {
	if p.TaskTimeout <= 0 || p.WatchdogGrace <= 0 {
		return nil
	}
	logf := p.WatchdogLog
	if logf == nil {
		logf = log.Printf
	}
	w := &watchdog{
		limit:  p.TaskTimeout + p.WatchdogGrace,
		logf:   logf,
		starts: make([]atomic.Int64, n),
		warned: make([]atomic.Bool, n),
		stop:   make(chan struct{}),
	}
	interval := max(p.WatchdogGrace/4, time.Millisecond)
	w.done.Add(1)
	go w.loop(interval, p.TaskTimeout, p.WatchdogGrace)
	return w
}

// loop scans the running cells on every tick and logs each overrun once
// per attempt.
func (w *watchdog) loop(interval, timeout, grace time.Duration) {
	defer w.done.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			now := time.Now().UnixNano()
			for i := range w.starts {
				s := w.starts[i].Load()
				if s == 0 || time.Duration(now-s) < w.limit {
					continue
				}
				if w.warned[i].CompareAndSwap(false, true) {
					w.logf("parallel: watchdog: cell %d stuck: running %v, more than %v past its %v task timeout",
						i, time.Duration(now-s).Round(time.Millisecond), grace, timeout)
				}
			}
		}
	}
}

// begin marks cell i as running (one attempt).
func (w *watchdog) begin(i int) {
	if w != nil {
		w.warned[i].Store(false)
		w.starts[i].Store(time.Now().UnixNano())
	}
}

// end marks cell i as no longer running.
func (w *watchdog) end(i int) {
	if w != nil {
		w.starts[i].Store(0)
	}
}

// close stops the scan goroutine and waits for it.
func (w *watchdog) close() {
	if w != nil {
		close(w.stop)
		w.done.Wait()
	}
}

// call runs one cell to completion: up to Retry.attempts() executions of
// fn with panic recovery, per-attempt task deadlines and deterministic
// jittered backoff between attempts. Retrying stops early when the sweep
// context is cancelled or the error classifies as non-retryable; the
// cell's own (last) error is returned, never the backoff interruption.
func (p Pool) call(ctx context.Context, i int, wd *watchdog, fn func(ctx context.Context, i int) error) error {
	attempts := p.Retry.attempts()
	for a := 1; ; a++ {
		err := p.callOnce(ctx, i, wd, fn)
		if err == nil || a >= attempts || ctx.Err() != nil || !p.Retry.retryable(err) {
			return err
		}
		if !sleepCtx(ctx, p.Retry.backoff(i, a)) {
			return err // sweep cancelled mid-backoff
		}
	}
}

// callOnce runs fn(ctx, i) once with panic recovery, the per-task
// deadline, and watchdog bookkeeping.
func (p Pool) callOnce(ctx context.Context, i int, wd *watchdog, fn func(ctx context.Context, i int) error) (err error) {
	if p.TaskTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.TaskTimeout)
		defer cancel()
	}
	wd.begin(i)
	defer wd.end(i)
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// run is the shared dispatch loop: it executes fn over [0, n) writing task
// errors into errs by index. When failFast is set, the first error cancels
// the context and stops dispatching new tasks; otherwise every task runs
// unless the (external or sweep-deadline) context is cancelled first, in
// which case undispatched tasks are marked with the context error. The
// returned error is the context error (external cancel or expired
// SweepTimeout) if it stopped any dispatch, nil otherwise.
func (p Pool) run(ctx context.Context, n int, failFast bool, errs []error, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if p.SweepTimeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, p.SweepTimeout)
		defer cancelT()
	}

	workers := p.size(n)
	wd := p.newWatchdog(n)
	defer wd.close()
	var next atomic.Int64
	var skipped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					skipped.Store(true)
					if failFast {
						return
					}
					// Keep-going mode: attribute the cancellation to every
					// undispatched cell — tagged with the cell index and the
					// sweep deadline, so a resumed run can report exactly
					// which cells were preempted — letting MapPartial
					// callers tell "not run" from "ran and succeeded".
					deadline, _ := ctx.Deadline()
					errs[i] = &CellAbortError{Index: i, Deadline: deadline, Err: err}
					continue
				}
				if err := p.call(ctx, i, wd, fn); err != nil {
					errs[i] = err
					if failFast {
						cancel() // first failure stops new dispatch
					}
				}
			}
		}()
	}
	wg.Wait()
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}

// ForEach runs fn(ctx, i) for every i in [0, n), at most p.Workers at a
// time, and blocks until all started tasks have finished. The first error
// (including a recovered panic) cancels the context passed to every task
// and stops dispatching new ones; among the tasks that did fail, the error
// of the lowest index is returned so the reported error does not depend on
// goroutine scheduling.
func (p Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	errs := make([]error, n) // slot per task: no locking, no ordering races
	runErr := p.run(ctx, n, true, errs, fn)
	if err := FirstError(errs); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	return ctx.Err()
}

// Map runs fn over [0, n) on pool p and collects the results by index, so
// out[i] is always the result of task i regardless of completion order.
// On error the partial results are discarded and the lowest-indexed task
// error is returned.
func Map[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := p.ForEach(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapPartial runs fn over [0, n) without failing fast: a failing (or
// panicking) cell does not cancel the sweep, so every healthy cell still
// completes and is collected by index. It returns the results and a
// parallel errs slice with errs[i] non-nil exactly when cell i failed
// (out[i] is then the zero value). External cancellation — or an expired
// SweepTimeout — still stops dispatch; cells skipped that way carry a
// *CellAbortError tagging the cell index and the sweep deadline (and
// unwrapping to the context error). Healthy cells are bit-identical to a
// fault-free run at
// any worker count, because each cell remains a pure function of its index.
func MapPartial[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) (out []T, errs []error) {
	if n <= 0 {
		return nil, nil
	}
	out = make([]T, n)
	errs = make([]error, n)
	p.run(ctx, n, false, errs, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	// A cell that panicked after writing a partial value must not leak it.
	var zero T
	for i, err := range errs {
		if err != nil {
			out[i] = zero
		}
	}
	return out, errs
}

// FirstError returns the lowest-index non-nil error of a per-cell error
// slice (as produced by MapPartial), or nil when every cell succeeded.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CountErrors returns the number of failed cells.
func CountErrors(errs []error) int {
	c := 0
	for _, err := range errs {
		if err != nil {
			c++
		}
	}
	return c
}
