// Package parallel provides the bounded worker pool every experiment sweep
// in this repository fans out through. Each (benchmark × design) cell of a
// figure or table is an independent cycle-level simulation, so sweeps
// parallelise embarrassingly well — but the results must stay bit-identical
// at any worker count. The pool therefore guarantees:
//
//   - deterministic result collection: Map writes the result of task i into
//     slot i of a pre-sized slice, so output order never depends on
//     goroutine scheduling;
//   - deterministic error selection: when several tasks fail, the error of
//     the lowest-indexed failing task is returned;
//   - context cancellation: the first failure (or an external cancel) stops
//     the dispatch of any task that has not started yet;
//   - panic safety: a panicking task is recovered into a *PanicError
//     carrying the task index and stack, and reported like any other task
//     error instead of crashing the whole sweep;
//   - deadlines: TaskTimeout bounds each task's context and SweepTimeout
//     bounds the whole ForEach/Map call;
//   - a bounded worker count: at most Workers goroutines run tasks, with
//     Workers <= 0 meaning DefaultWorkers().
//
// Map fails fast; MapPartial keeps going, running every cell and recording
// per-cell errors so a sweep with one poisoned cell still yields every
// healthy cell (the -keep-going mode of the command-line binaries).
//
// Tasks themselves must be pure functions of their index (plus immutable
// captured state); the pool adds no synchronisation beyond the join, which
// is exactly what makes "results depend only on (profile, design, seed),
// never on scheduling order" enforceable.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// defaultWorkers overrides the pool-wide default when positive. It is set
// by the -j flag of the command-line binaries.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used by
// pools whose Workers field is zero. n <= 0 restores the GOMAXPROCS
// default. It returns the previous override (0 if none was set).
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers returns the default worker count: the value installed with
// SetDefaultWorkers if positive, else runtime.GOMAXPROCS(0).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is a task panic recovered by the pool. It preserves the task
// index, the panic value and the goroutine stack at the panic site, so a
// crash inside one (benchmark × design) cell is attributable instead of
// killing the entire sweep.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", p.Index, p.Value)
}

// String includes the stack trace.
func (p *PanicError) String() string {
	return p.Error() + "\n" + string(p.Stack)
}

// Pool is a bounded worker pool. The zero value is ready to use and runs
// DefaultWorkers() tasks concurrently.
type Pool struct {
	// Workers is the maximum number of concurrently running tasks.
	// Values <= 0 mean DefaultWorkers().
	Workers int

	// TaskTimeout, when positive, bounds the context passed to each task.
	// Tasks observe the deadline through their context; a cooperative task
	// returns its ctx.Err(), which the pool reports like any other task
	// error. The pool cannot forcibly stop a task that ignores its context.
	TaskTimeout time.Duration

	// SweepTimeout, when positive, bounds the whole ForEach/Map call: on
	// expiry the context passed to every task is cancelled and no new task
	// is dispatched.
	SweepTimeout time.Duration
}

// Default returns a pool using the process-wide default worker count.
func Default() Pool { return Pool{} }

// size clamps the worker count to [1, n].
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	return min(max(w, 1), max(n, 1))
}

// call runs fn(ctx, i) with panic recovery and the per-task deadline.
func (p Pool) call(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	if p.TaskTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.TaskTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// run is the shared dispatch loop: it executes fn over [0, n) writing task
// errors into errs by index. When failFast is set, the first error cancels
// the context and stops dispatching new tasks; otherwise every task runs
// unless the (external or sweep-deadline) context is cancelled first, in
// which case undispatched tasks are marked with the context error. The
// returned error is the context error (external cancel or expired
// SweepTimeout) if it stopped any dispatch, nil otherwise.
func (p Pool) run(ctx context.Context, n int, failFast bool, errs []error, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if p.SweepTimeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, p.SweepTimeout)
		defer cancelT()
	}

	workers := p.size(n)
	var next atomic.Int64
	var skipped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					skipped.Store(true)
					if failFast {
						return
					}
					// Keep-going mode: attribute the cancellation to every
					// undispatched cell, so MapPartial callers can tell
					// "not run" from "ran and succeeded".
					errs[i] = err
					continue
				}
				if err := p.call(ctx, i, fn); err != nil {
					errs[i] = err
					if failFast {
						cancel() // first failure stops new dispatch
					}
				}
			}
		}()
	}
	wg.Wait()
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}

// ForEach runs fn(ctx, i) for every i in [0, n), at most p.Workers at a
// time, and blocks until all started tasks have finished. The first error
// (including a recovered panic) cancels the context passed to every task
// and stops dispatching new ones; among the tasks that did fail, the error
// of the lowest index is returned so the reported error does not depend on
// goroutine scheduling.
func (p Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	errs := make([]error, n) // slot per task: no locking, no ordering races
	runErr := p.run(ctx, n, true, errs, fn)
	if err := FirstError(errs); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	return ctx.Err()
}

// Map runs fn over [0, n) on pool p and collects the results by index, so
// out[i] is always the result of task i regardless of completion order.
// On error the partial results are discarded and the lowest-indexed task
// error is returned.
func Map[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := p.ForEach(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapPartial runs fn over [0, n) without failing fast: a failing (or
// panicking) cell does not cancel the sweep, so every healthy cell still
// completes and is collected by index. It returns the results and a
// parallel errs slice with errs[i] non-nil exactly when cell i failed
// (out[i] is then the zero value). External cancellation — or an expired
// SweepTimeout — still stops dispatch; cells skipped that way carry the
// context error. Healthy cells are bit-identical to a fault-free run at
// any worker count, because each cell remains a pure function of its index.
func MapPartial[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) (out []T, errs []error) {
	if n <= 0 {
		return nil, nil
	}
	out = make([]T, n)
	errs = make([]error, n)
	p.run(ctx, n, false, errs, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	// A cell that panicked after writing a partial value must not leak it.
	var zero T
	for i, err := range errs {
		if err != nil {
			out[i] = zero
		}
	}
	return out, errs
}

// FirstError returns the lowest-index non-nil error of a per-cell error
// slice (as produced by MapPartial), or nil when every cell succeeded.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CountErrors returns the number of failed cells.
func CountErrors(errs []error) int {
	c := 0
	for _, err := range errs {
		if err != nil {
			c++
		}
	}
	return c
}
