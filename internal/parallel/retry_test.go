package parallel

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestRetryRecoversTransientPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var tries [8]atomic.Int64
		p := Pool{Workers: workers, Retry: Retry{Attempts: 3, BaseDelay: time.Microsecond}}
		out, err := Map(context.Background(), p, 8, func(_ context.Context, i int) (int, error) {
			// Cells 2 and 5 panic on their first two attempts, then heal.
			if n := tries[i].Add(1); (i == 2 || i == 5) && n < 3 {
				panic(fmt.Sprintf("transient fault at cell %d attempt %d", i, n))
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: sweep failed despite retries: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		for i := range tries {
			want := int64(1)
			if i == 2 || i == 5 {
				want = 3
			}
			if got := tries[i].Load(); got != want {
				t.Fatalf("workers=%d: cell %d ran %d times, want %d", workers, i, got, want)
			}
		}
	}
}

func TestRetryExhaustionReportsCellError(t *testing.T) {
	var tries atomic.Int64
	p := Pool{Workers: 2, Retry: Retry{Attempts: 3, BaseDelay: time.Microsecond}}
	err := p.ForEach(context.Background(), 4, func(_ context.Context, i int) error {
		if i == 1 {
			tries.Add(1)
			panic("permanent fault")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("want PanicError at cell 1, got %v", err)
	}
	if got := tries.Load(); got != 3 {
		t.Fatalf("cell ran %d times, want the full 3-attempt budget", got)
	}
}

func TestRetryDoesNotRetryDeterministicErrors(t *testing.T) {
	boom := errors.New("model violation")
	var tries atomic.Int64
	p := Pool{Workers: 1, Retry: Retry{Attempts: 5, BaseDelay: time.Microsecond}}
	err := p.ForEach(context.Background(), 1, func(context.Context, int) error {
		tries.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if tries.Load() != 1 {
		t.Fatalf("deterministic error retried %d times", tries.Load())
	}
}

func TestRetryDoesNotRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var tries atomic.Int64
	p := Pool{Workers: 1, Retry: Retry{Attempts: 5, BaseDelay: time.Microsecond}}
	err := p.ForEach(ctx, 1, func(ctx context.Context, _ int) error {
		tries.Add(1)
		cancel()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if tries.Load() != 1 {
		t.Fatalf("cancelled cell retried %d times", tries.Load())
	}
}

func TestRetryDoesNotRetryIOFailures(t *testing.T) {
	// A full or dying disk is not healed by re-running the cell — the
	// degradation ladder downgrades instead. DefaultRetryable must treat
	// every KindIO chain as permanent.
	ioErrs := []error{
		&fs.PathError{Op: "write", Path: "seg.m3dj", Err: syscall.ENOSPC},
		fmt.Errorf("journal: sync %q: %w", "cell",
			&fs.PathError{Op: "sync", Path: "seg.m3dj", Err: syscall.EIO}),
		&os.LinkError{Op: "rename", Old: "a", New: "b", Err: syscall.EXDEV},
		fs.ErrPermission,
	}
	for _, ioErr := range ioErrs {
		if DefaultRetryable(ioErr) {
			t.Fatalf("DefaultRetryable(%v) = true, want false", ioErr)
		}
		var tries atomic.Int64
		p := Pool{Workers: 1, Retry: Retry{Attempts: 5, BaseDelay: time.Microsecond}}
		err := p.ForEach(context.Background(), 1, func(context.Context, int) error {
			tries.Add(1)
			return ioErr
		})
		if !errors.Is(err, ioErr) {
			t.Fatalf("err = %v", err)
		}
		if tries.Load() != 1 {
			t.Fatalf("I/O failure %v retried %d times", ioErr, tries.Load())
		}
	}
}

func TestRetryTaskTimeoutGetsFreshDeadline(t *testing.T) {
	var tries atomic.Int64
	p := Pool{Workers: 1, TaskTimeout: 30 * time.Millisecond,
		Retry: Retry{Attempts: 2, BaseDelay: time.Microsecond}}
	err := p.ForEach(context.Background(), 1, func(ctx context.Context, _ int) error {
		if tries.Add(1) == 1 {
			<-ctx.Done() // first attempt burns its whole deadline
			return ctx.Err()
		}
		return nil // second attempt has a fresh deadline and succeeds
	})
	if err != nil {
		t.Fatalf("retry after task timeout failed: %v", err)
	}
	if tries.Load() != 2 {
		t.Fatalf("ran %d attempts, want 2", tries.Load())
	}
}

func TestBackoffIsDeterministicBoundedAndJittered(t *testing.T) {
	r := Retry{Attempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	if a, b := r.backoff(3, 2), r.backoff(3, 2); a != b {
		t.Fatalf("backoff not deterministic: %v vs %v", a, b)
	}
	// Exponential growth up to the cap, with jitter within ±50%.
	prevBase := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := r.backoff(0, attempt)
		base := min(r.BaseDelay<<(attempt-1), r.MaxDelay)
		if d < base/2 || d > base*3/2 {
			t.Fatalf("attempt %d: backoff %v outside jitter band of %v", attempt, d, base)
		}
		if base < prevBase {
			t.Fatalf("base shrank: %v after %v", base, prevBase)
		}
		prevBase = base
	}
	// Very large attempt numbers must not overflow below zero.
	if d := r.backoff(0, 500); d < 0 || d > r.MaxDelay*3/2 {
		t.Fatalf("attempt 500 backoff = %v", d)
	}
	// Different cells decorrelate.
	same := true
	for cell := 1; cell < 8; cell++ {
		if r.backoff(cell, 1) != r.backoff(0, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("jitter identical across all cells")
	}
	// Negative jitter disables it.
	noJ := Retry{BaseDelay: 8 * time.Millisecond, Jitter: -1}
	if d := noJ.backoff(5, 1); d != 8*time.Millisecond {
		t.Fatalf("jitter-free backoff = %v", d)
	}
}

func TestCellAbortErrorTagsSkippedCells(t *testing.T) {
	// SweepTimeout path: a slow first cell eats the sweep budget, so the
	// remaining cells are never dispatched and must carry the index and
	// the sweep deadline.
	p := Pool{Workers: 1, SweepTimeout: 20 * time.Millisecond}
	_, errs := MapPartial(context.Background(), p, 3, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return i, nil
	})
	var found bool
	for i, err := range errs {
		var ce *CellAbortError
		if !errors.As(err, &ce) {
			continue
		}
		found = true
		if ce.Index != i {
			t.Fatalf("abort error at slot %d carries index %d", i, ce.Index)
		}
		if ce.Deadline.IsZero() {
			t.Fatalf("sweep-deadline abort without deadline: %v", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("abort error does not unwrap to DeadlineExceeded: %v", err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("cell %d not dispatched", i)) ||
			!strings.Contains(err.Error(), "sweep deadline") {
			t.Fatalf("abort message: %v", err)
		}
	}
	if !found {
		t.Fatal("no cell was tagged as aborted")
	}

	// External-cancel path: no deadline, still indexed, unwraps Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs = MapPartial(ctx, Pool{Workers: 1}, 2, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	var ce *CellAbortError
	if !errors.As(errs[0], &ce) || ce.Index != 0 || !ce.Deadline.IsZero() {
		t.Fatalf("external-cancel abort = %v", errs[0])
	}
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("abort does not unwrap to Canceled: %v", errs[0])
	}
}

func TestWatchdogLogsStuckCells(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	p := Pool{
		Workers:       2,
		TaskTimeout:   10 * time.Millisecond,
		WatchdogGrace: 10 * time.Millisecond,
		WatchdogLog: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}
	// The stuck cell ignores its context, so MapPartial cannot return until
	// it is released. A watcher goroutine waits for the watchdog to report
	// the overrun, then unblocks the cell.
	release := make(chan struct{})
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			n := len(lines)
			mu.Unlock()
			if n > 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		close(release)
	}()
	_, errs := MapPartial(context.Background(), p, 3, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			<-release // ignores its context: exactly what the watchdog hunts
			return 0, ctx.Err()
		}
		return i, nil
	})
	_ = errs

	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("watchdog never reported the stuck cell")
	}
	for _, l := range lines {
		if !strings.Contains(l, "cell 1 stuck") {
			t.Fatalf("unexpected watchdog line: %q", l)
		}
	}
	if len(lines) > 1 {
		t.Fatalf("stuck cell reported %d times for one attempt", len(lines))
	}
}

func TestWatchdogQuietForHealthySweep(t *testing.T) {
	p := Pool{
		Workers:       4,
		TaskTimeout:   time.Second,
		WatchdogGrace: time.Millisecond,
		WatchdogLog: func(format string, args ...any) {
			t.Errorf("watchdog fired on a healthy sweep: "+format, args...)
		},
	}
	if err := p.ForEach(context.Background(), 64, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
