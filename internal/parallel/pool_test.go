package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCollectsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := Map(context.Background(), Pool{Workers: workers}, 100,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := make([]int, 100)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results out of order", workers)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), Pool{Workers: workers}, 64,
			func(_ context.Context, i int) (float64, error) {
				return float64(i) * 1.7, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("results differ between 1 and 8 workers")
	}
}

func TestFirstErrorByLowestIndex(t *testing.T) {
	errLow := errors.New("low")
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), Pool{Workers: workers}, 32,
			func(_ context.Context, i int) (int, error) {
				switch i {
				case 3:
					return 0, errLow
				case 20:
					return 0, fmt.Errorf("high")
				}
				return i, nil
			})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: want lowest-index error, got %v", workers, err)
		}
	}
}

func TestErrorCancelsRemainingTasks(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	err := Pool{Workers: 2}.ForEach(context.Background(), 1000,
		func(_ context.Context, i int) error {
			started.Add(1)
			if i == 0 {
				return boom
			}
			time.Sleep(time.Millisecond)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: %d tasks started", n)
	}
}

func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Pool{Workers: 4}.ForEach(ctx, 100, func(ctx context.Context, i int) error {
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	out, err := Map(context.Background(), Default(), 0,
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty input: out=%v err=%v", out, err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers()=%d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	prev := SetDefaultWorkers(3)
	defer SetDefaultWorkers(prev)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("after SetDefaultWorkers(3): %d", got)
	}
	if got := (Pool{}).size(100); got != 3 {
		t.Fatalf("zero pool size should follow default, got %d", got)
	}
	if got := (Pool{Workers: 8}).size(2); got != 2 {
		t.Fatalf("size must clamp to task count, got %d", got)
	}
}

func TestConcurrencyBound(t *testing.T) {
	var cur, peak atomic.Int64
	err := Pool{Workers: 3}.ForEach(context.Background(), 64,
		func(_ context.Context, i int) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			cur.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent tasks, pool bound is 3", p)
	}
}
