package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCollectsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := Map(context.Background(), Pool{Workers: workers}, 100,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := make([]int, 100)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results out of order", workers)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), Pool{Workers: workers}, 64,
			func(_ context.Context, i int) (float64, error) {
				return float64(i) * 1.7, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("results differ between 1 and 8 workers")
	}
}

func TestFirstErrorByLowestIndex(t *testing.T) {
	errLow := errors.New("low")
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), Pool{Workers: workers}, 32,
			func(_ context.Context, i int) (int, error) {
				switch i {
				case 3:
					return 0, errLow
				case 20:
					return 0, fmt.Errorf("high")
				}
				return i, nil
			})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: want lowest-index error, got %v", workers, err)
		}
	}
}

func TestErrorCancelsRemainingTasks(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	err := Pool{Workers: 2}.ForEach(context.Background(), 1000,
		func(_ context.Context, i int) error {
			started.Add(1)
			if i == 0 {
				return boom
			}
			time.Sleep(time.Millisecond)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: %d tasks started", n)
	}
}

func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Pool{Workers: 4}.ForEach(ctx, 100, func(ctx context.Context, i int) error {
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	out, err := Map(context.Background(), Default(), 0,
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty input: out=%v err=%v", out, err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers()=%d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	prev := SetDefaultWorkers(3)
	defer SetDefaultWorkers(prev)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("after SetDefaultWorkers(3): %d", got)
	}
	if got := (Pool{}).size(100); got != 3 {
		t.Fatalf("zero pool size should follow default, got %d", got)
	}
	if got := (Pool{Workers: 8}).size(2); got != 2 {
		t.Fatalf("size must clamp to task count, got %d", got)
	}
}

func TestPanicRecoveredIntoPanicError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), Pool{Workers: workers}, 32,
			func(_ context.Context, i int) (int, error) {
				if i == 7 {
					panic("boom cell")
				}
				return i, nil
			})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Index != 7 || pe.Value != "boom cell" {
			t.Fatalf("workers=%d: wrong panic attribution: %+v", workers, pe)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: missing stack", workers)
		}
	}
}

func TestPanicLowestIndexSelection(t *testing.T) {
	// Panics at 5 and 25: dispatch is in index order, so index 5 always
	// runs and must be the reported error at any worker count.
	for _, workers := range []int{1, 2, 8} {
		err := Pool{Workers: workers}.ForEach(context.Background(), 64,
			func(_ context.Context, i int) error {
				if i == 5 || i == 25 {
					panic(i)
				}
				return nil
			})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 5 {
			t.Fatalf("workers=%d: want panic at index 5, got %v", workers, err)
		}
	}
}

func TestMapPartialKeepsHealthyCells(t *testing.T) {
	boom := errors.New("boom")
	var want []int
	for i := 0; i < 50; i++ {
		want = append(want, i*i)
	}
	for _, workers := range []int{1, 3, 16} {
		out, errs := MapPartial(context.Background(), Pool{Workers: workers}, 50,
			func(_ context.Context, i int) (int, error) {
				switch i {
				case 4:
					return 0, boom
				case 31:
					panic("mid-sweep panic")
				}
				return i * i, nil
			})
		if n := CountErrors(errs); n != 2 {
			t.Fatalf("workers=%d: want 2 failed cells, got %d", workers, n)
		}
		if !errors.Is(errs[4], boom) {
			t.Fatalf("workers=%d: cell 4 error = %v", workers, errs[4])
		}
		var pe *PanicError
		if !errors.As(errs[31], &pe) || pe.Index != 31 {
			t.Fatalf("workers=%d: cell 31 error = %v", workers, errs[31])
		}
		if !errors.Is(FirstError(errs), boom) {
			t.Fatalf("workers=%d: FirstError should be lowest index", workers)
		}
		for i, v := range out {
			if i == 4 || i == 31 {
				if v != 0 {
					t.Fatalf("workers=%d: failed cell %d has non-zero value", workers, i)
				}
				continue
			}
			if v != want[i] {
				t.Fatalf("workers=%d: healthy cell %d = %d, want %d", workers, i, v, want[i])
			}
		}
	}
}

func TestMapPartialExternalCancelMarksSkippedCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, errs := MapPartial(ctx, Pool{Workers: 2}, 10,
		func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if len(out) != 10 || len(errs) != 10 {
		t.Fatalf("want full-length slices, got %d/%d", len(out), len(errs))
	}
	if n := CountErrors(errs); n != 10 {
		t.Fatalf("pre-cancelled context: want all cells marked, got %d", n)
	}
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", errs[0])
	}
}

func TestTaskTimeout(t *testing.T) {
	p := Pool{Workers: 2, TaskTimeout: 5 * time.Millisecond}
	err := p.ForEach(context.Background(), 4, func(ctx context.Context, i int) error {
		if i == 2 { // cooperative slow task observes its deadline
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return nil
			}
		}
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestSweepTimeout(t *testing.T) {
	p := Pool{Workers: 1, SweepTimeout: 10 * time.Millisecond}
	var ran atomic.Int64
	err := p.ForEach(context.Background(), 1000, func(ctx context.Context, i int) error {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("sweep deadline did not stop dispatch: %d tasks ran", n)
	}
}

func TestFirstAndCountErrorHelpers(t *testing.T) {
	if FirstError(nil) != nil || CountErrors(nil) != 0 {
		t.Fatal("nil slice should be clean")
	}
	e1, e2 := errors.New("a"), errors.New("b")
	errs := []error{nil, e1, nil, e2}
	if !errors.Is(FirstError(errs), e1) || CountErrors(errs) != 2 {
		t.Fatal("helpers misbehave")
	}
}

func TestConcurrencyBound(t *testing.T) {
	var cur, peak atomic.Int64
	err := Pool{Workers: 3}.ForEach(context.Background(), 64,
		func(_ context.Context, i int) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			cur.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent tasks, pool bound is 3", p)
	}
}

// TestExternalDeadlinePropagates drives MapPartial with a caller-supplied
// deadline context — the shape m3dd hands a sweep when a request carries
// X-M3D-Deadline. Expiry must stop dispatch, and the skipped cells must be
// tagged with a *CellAbortError carrying that external deadline so the
// serving layer can report which deadline preempted them.
func TestExternalDeadlinePropagates(t *testing.T) {
	deadline := time.Now().Add(15 * time.Millisecond)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	var ran atomic.Int64
	out, errs := MapPartial(ctx, Pool{Workers: 1}, 500, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return i * 2, nil
	})
	if n := ran.Load(); n >= 500 {
		t.Fatalf("external deadline did not stop dispatch: %d cells ran", n)
	}
	if len(out) != 500 || len(errs) != 500 {
		t.Fatalf("partial map lost its shape: %d results, %d errs", len(out), len(errs))
	}

	aborted := 0
	for i, err := range errs {
		if err == nil {
			if out[i] != i*2 {
				t.Fatalf("healthy cell %d = %d, want %d", i, out[i], i*2)
			}
			continue
		}
		var abort *CellAbortError
		if !errors.As(err, &abort) {
			t.Fatalf("cell %d: %v, want *CellAbortError", i, err)
		}
		if !abort.Deadline.Equal(deadline) {
			t.Fatalf("cell %d abort carries deadline %v, want %v", i, abort.Deadline, deadline)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("cell %d abort does not unwrap to DeadlineExceeded: %v", i, err)
		}
		aborted++
	}
	if aborted == 0 {
		t.Fatal("no cells were abort-tagged despite the expired deadline")
	}
}
