package pdn

import (
	"testing"

	"vertical3d/internal/tech"
)

func coreSpec() Spec {
	return Spec{
		WidthM: 2.05e-3, HeightM: 1.63e-3, // folded core footprint
		PowerW: 6.4, Vdd: 0.8,
		BottomShare: 0.55,
		DroopBudget: 0.05,
	}
}

func TestSingleTopGridUsesLessMetal(t *testing.T) {
	n := tech.N22()
	single, err := Evaluate(n, coreSpec(), SingleTopGrid)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := Evaluate(n, coreSpec(), DualGrid)
	if err != nil {
		t.Fatal(err)
	}
	if single.GridWireM >= dual.GridWireM {
		t.Error("single grid must use less wire than dual grids")
	}
	if single.MetalLayersUsed >= dual.MetalLayersUsed {
		t.Error("single grid must use fewer metal layers")
	}
}

func TestMIVPowerDeliveryFeasible(t *testing.T) {
	// Section 3.3 / [10]: delivering the bottom layer's power through MIVs
	// is viable because MIVs are tiny — the power-MIV array must occupy a
	// negligible area fraction while meeting the droop budget.
	n := tech.N22()
	single, err := Evaluate(n, coreSpec(), SingleTopGrid)
	if err != nil {
		t.Fatal(err)
	}
	if !single.MeetsBudget {
		t.Errorf("single-top-grid should meet the droop budget, droop %.3f", single.WorstDroopFrac)
	}
	if single.PowerMIVs < 100 {
		t.Errorf("bottom-layer power needs a substantial MIV array, got %d", single.PowerMIVs)
	}
	if single.MIVAreaFrac > 0.02 {
		t.Errorf("power MIVs occupy %.2f%% of the die — should be ≤2%%", single.MIVAreaFrac*100)
	}
}

func TestRecommendPrefersSingleGrid(t *testing.T) {
	n := tech.N22()
	r, err := Recommend(n, coreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r.Design != SingleTopGrid {
		t.Errorf("Billoint et al. [10] style recommendation should pick the single top grid, got %v", r.Design)
	}
}

func TestRecommendFallsBackUnderTightBudget(t *testing.T) {
	n := tech.N22()
	s := coreSpec()
	s.PowerW = 200 // absurd power: droop cannot be met by either design
	r, err := Recommend(n, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Design != DualGrid {
		t.Error("when the single grid misses the budget, fall back to dual grids")
	}
}

func TestValidation(t *testing.T) {
	n := tech.N22()
	bad := coreSpec()
	bad.PowerW = 0
	if _, err := Evaluate(n, bad, DualGrid); err == nil {
		t.Error("expected error for zero power")
	}
	bad = coreSpec()
	bad.DroopBudget = 0.5
	if _, err := Evaluate(n, bad, DualGrid); err == nil {
		t.Error("expected error for absurd droop budget")
	}
	bad = coreSpec()
	bad.BottomShare = 1.5
	if _, err := Evaluate(n, bad, SingleTopGrid); err == nil {
		t.Error("expected error for bottom share > 1")
	}
}

func TestDroopGrowsWithPower(t *testing.T) {
	n := tech.N22()
	lo := coreSpec()
	hi := coreSpec()
	hi.PowerW = 2 * lo.PowerW
	rl, err := Evaluate(n, lo, SingleTopGrid)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Evaluate(n, hi, SingleTopGrid)
	if err != nil {
		t.Fatal(err)
	}
	if rh.WorstDroopFrac <= rl.WorstDroopFrac {
		t.Error("more power must droop more")
	}
}

func TestDesignStrings(t *testing.T) {
	if DualGrid.String() != "dual-grid" || SingleTopGrid.String() != "single-top-grid" {
		t.Error("design names wrong")
	}
}
