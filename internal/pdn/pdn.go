// Package pdn models the power delivery network options of Section 3.3:
// either each M3D layer carries its own grid (more metal, more routing
// complexity and cost), or a single grid lives in the top layer and feeds
// the bottom layer through MIVs (Billoint et al. [10] recommend this). The
// model estimates grid metal usage, IR drop, and the MIV count needed to
// keep the bottom layer within the droop budget.
package pdn

import (
	"errors"
	"math"

	"vertical3d/internal/tech"
)

// Design selects the PDN organisation for a two-layer stack.
type Design int

const (
	// DualGrid gives each layer its own power grid.
	DualGrid Design = iota
	// SingleTopGrid routes one grid in the top layer and drops power to the
	// bottom layer through MIV arrays.
	SingleTopGrid
)

// String names the design.
func (d Design) String() string {
	if d == SingleTopGrid {
		return "single-top-grid"
	}
	return "dual-grid"
}

// Spec describes the supply requirements of the stack.
type Spec struct {
	WidthM, HeightM float64
	PowerW          float64
	Vdd             float64
	// BottomShare is the fraction of the power drawn by the bottom layer.
	BottomShare float64
	// DroopBudget is the tolerated IR drop as a fraction of Vdd.
	DroopBudget float64
}

// Result summarises one PDN design point.
type Result struct {
	Design Design

	// GridWireM is the total power-grid wire length across layers.
	GridWireM float64

	// MetalLayersUsed counts the metal levels consumed by power routing.
	MetalLayersUsed int

	// WorstDroopFrac is the worst-case IR drop as a fraction of Vdd.
	WorstDroopFrac float64

	// PowerMIVs is the number of MIVs used to deliver power downward
	// (zero for the dual-grid design).
	PowerMIVs int

	// MIVAreaFrac is the silicon-area fraction those MIVs occupy.
	MIVAreaFrac float64

	// MeetsBudget reports whether WorstDroopFrac fits the droop budget.
	MeetsBudget bool
}

// gridPitch is the power-strap pitch of a standard grid.
const gridPitch = 20e-6

// strapSheetResistance approximates the ohms-per-square of a thick power
// strap stack.
const strapSheetResistance = 0.005

// Evaluate computes the PDN metrics for the chosen design.
func Evaluate(n *tech.Node, s Spec, d Design) (Result, error) {
	if s.WidthM <= 0 || s.HeightM <= 0 || s.PowerW <= 0 || s.Vdd <= 0 {
		return Result{}, errors.New("pdn: non-positive spec")
	}
	if s.BottomShare < 0 || s.BottomShare > 1 {
		return Result{}, errors.New("pdn: bottom share out of [0,1]")
	}
	if s.DroopBudget <= 0 || s.DroopBudget >= 0.2 {
		return Result{}, errors.New("pdn: droop budget out of (0,0.2)")
	}

	straps := int(s.WidthM/gridPitch) + int(s.HeightM/gridPitch)
	gridLen := float64(int(s.WidthM/gridPitch))*s.HeightM +
		float64(int(s.HeightM/gridPitch))*s.WidthM
	if straps < 2 {
		return Result{}, errors.New("pdn: die too small for a grid")
	}

	current := s.PowerW / s.Vdd
	// IR drop across half a strap span carrying its share of the current.
	perStrap := current / float64(straps)
	rStrap := strapSheetResistance * (s.HeightM / 2) / gridPitch * 2
	baseDroop := perStrap * rStrap / s.Vdd

	res := Result{Design: d}
	switch d {
	case DualGrid:
		res.GridWireM = 2 * gridLen
		res.MetalLayersUsed = 4 // two levels per layer
		res.WorstDroopFrac = baseDroop
	case SingleTopGrid:
		res.GridWireM = gridLen
		res.MetalLayersUsed = 2
		// The bottom layer's current crosses MIVs; size the MIV array so the
		// added drop stays within 20% of the budget.
		iBottom := current * s.BottomShare
		miv := tech.MIV()
		allowed := s.DroopBudget * 0.2 * s.Vdd
		nMIV := int(math.Ceil(iBottom * miv.Resistance / allowed))
		if nMIV < 1 {
			nMIV = 1
		}
		res.PowerMIVs = nMIV
		res.MIVAreaFrac = float64(nMIV) * miv.OccupiedArea() / (s.WidthM * s.HeightM)
		res.WorstDroopFrac = baseDroop + iBottom*miv.Resistance/float64(nMIV)/s.Vdd
	default:
		return Result{}, errors.New("pdn: unknown design")
	}
	res.MeetsBudget = res.WorstDroopFrac <= s.DroopBudget
	return res, nil
}

// Recommend compares both designs and returns the one Billoint et al. [10]
// style reasoning favours: the cheapest (fewest metal layers, least wire)
// design that meets the droop budget.
func Recommend(n *tech.Node, s Spec) (Result, error) {
	single, err := Evaluate(n, s, SingleTopGrid)
	if err != nil {
		return Result{}, err
	}
	dual, err := Evaluate(n, s, DualGrid)
	if err != nil {
		return Result{}, err
	}
	if single.MeetsBudget {
		return single, nil
	}
	return dual, nil
}
