package uarch

import (
	"math"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// fullMeasure runs the detailed core exactly as a full (unsampled) cell
// does — detailed warmup, then a measured region — and returns the measured
// region's Stats.
func fullMeasure(t *testing.T, cfg config.Config, bench string, seed int64, k Kernel, warmup, measure uint64) Stats {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoreKernel(0, cfg, trace.NewGenerator(p, seed, 0), h, k)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(warmup)
	before := c.Stats
	c.Run(warmup + measure)
	return c.Stats.Sub(before)
}

// sampledMeasure runs the same cell in sampled mode — functional warmup,
// interval sampling, extrapolation — and returns the extrapolated Stats
// plus the raw sample result.
func sampledMeasure(t *testing.T, cfg config.Config, bench string, seed int64, k Kernel, warmup, measure uint64, sp SampleParams) (Stats, SampleResult) {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoreKernel(0, cfg, trace.NewGenerator(p, seed, 0), h, k)
	if err != nil {
		t.Fatal(err)
	}
	c.FastForward(warmup)
	res, err := c.RunSampled(measure, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Extrapolate(measure), res
}

func cpi(s Stats) float64 { return float64(s.Cycles) / float64(s.Instrs) }

// TestSampledCPIErrorBound is the sampled-simulation oracle: for EVERY
// workload profile, the extrapolated CPI of a sampled run must be within
// 2% of the CPI a full detailed run measures over the same region. This is
// the error bound BENCH_sample.json's speedups are quoted against; a
// profile drifting past it means the sampling geometry or the functional
// warmer no longer captures that workload's behaviour.
//
// The bound is established on the event kernel and transfers to the
// reference kernel by oracle composition: full runs are bit-identical
// across kernels (the differential oracle in kernel tests), and sampled
// runs are too (TestSampledCrossKernelIdentical covers every profile), so
// a reference-kernel sampled run has exactly the event kernel's CPI error.
// Running the ~20× slower reference kernel through 4M-instruction full
// baselines here would re-derive the same numbers at enormous cost.
func TestSampledCPIErrorBound(t *testing.T) {
	s := suite(t)
	cfg := s.Configs[config.Base]
	const (
		warmup  = 50_000
		measure = 4_000_000
	)
	sp := SampleParams{Interval: 40_000, Warmup: 1_000, Unit: 8_000}
	for _, bench := range workload.Names() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			full := fullMeasure(t, cfg, bench, 7, KernelEvent, warmup, measure)
			sampled, res := sampledMeasure(t, cfg, bench, 7, KernelEvent, warmup, measure, sp)
			if res.Windows == 0 || res.MeasuredInstrs() == 0 {
				t.Fatalf("sampled run measured nothing: %+v", res)
			}
			errPct := math.Abs(cpi(sampled)-cpi(full)) / cpi(full) * 100
			t.Logf("full CPI %.4f, sampled CPI %.4f, err %.2f%% (%d windows, %d/%d instrs detailed)",
				cpi(full), cpi(sampled), errPct,
				res.Windows, res.DetailedWarm+res.MeasuredInstrs(), uint64(measure))
			if errPct > 2.0 {
				t.Errorf("CPI error %.2f%% exceeds the 2%% bound (full %.4f vs sampled %.4f)",
					errPct, cpi(full), cpi(sampled))
			}
		})
	}
}

// TestSampledDeterministic pins reproducibility: two sampled runs of the
// same cell are bit-identical in every extrapolated counter and every
// sample-phase count.
func TestSampledDeterministic(t *testing.T) {
	s := suite(t)
	cfg := s.Configs[config.M3DHet]
	sp := DefaultSampleParams()
	a, ra := sampledMeasure(t, cfg, "Mcf", 7, KernelEvent, 50_000, 500_000, sp)
	b, rb := sampledMeasure(t, cfg, "Mcf", 7, KernelEvent, 50_000, 500_000, sp)
	if a != b {
		t.Errorf("sampled Stats not deterministic:\na %+v\nb %+v", a, b)
	}
	if ra != rb {
		t.Errorf("SampleResult not deterministic:\na %+v\nb %+v", ra, rb)
	}
}

// TestSampledCrossKernelIdentical extends the differential oracle to the
// sampled path on EVERY workload profile: fast-forward and pipeline reset
// are kernel-independent, and full runs are bit-identical across kernels,
// so sampled runs must be too. Together with TestSampledCPIErrorBound
// (event kernel, every profile) this pins the 2% CPI error bound for the
// reference kernel as well — bit-identical Stats means bit-identical
// extrapolated CPI. The geometry is scaled down because the reference
// kernel's detailed phases are ~20× slower; bit-identity is structural,
// not statistical, so a short run exercises it fully.
func TestSampledCrossKernelIdentical(t *testing.T) {
	s := suite(t)
	cfg := s.Configs[config.Base]
	sp := SampleParams{Interval: 20_000, Warmup: 500, Unit: 2_000}
	for _, bench := range workload.Names() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			ev, rev := sampledMeasure(t, cfg, bench, 7, KernelEvent, 20_000, 100_000, sp)
			rf, rrf := sampledMeasure(t, cfg, bench, 7, KernelReference, 20_000, 100_000, sp)
			if ev != rf {
				t.Errorf("sampled Stats diverge across kernels:\nevt %+v\nref %+v", ev, rf)
			}
			if rev != rrf {
				t.Errorf("SampleResult diverges across kernels:\nevt %+v\nref %+v", rev, rrf)
			}
		})
	}
}

// TestSampleParamsValidate covers the interval-geometry guard.
func TestSampleParamsValidate(t *testing.T) {
	if err := DefaultSampleParams().Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
	bad := []SampleParams{
		{Interval: 0, Warmup: 1, Unit: 1},
		{Interval: 100, Warmup: 0, Unit: 1},
		{Interval: 100, Warmup: 1, Unit: 0},
		{Interval: 100, Warmup: 60, Unit: 50},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%v must fail validation", p)
		}
	}
	if s := DefaultSampleParams().String(); s != "100000:1000:4000" {
		t.Errorf("String() = %q", s)
	}
	// Flag plumbing: zeros take defaults, explicit values override, and an
	// enabled-but-inconsistent geometry is rejected.
	p, err := SampleParamsFrom(true, 0, 0, 0)
	if err != nil || p != DefaultSampleParams() {
		t.Errorf("SampleParamsFrom zeros = %v, %v", p, err)
	}
	p, err = SampleParamsFrom(true, 50_000, 2_000, 8_000)
	if err != nil || p != (SampleParams{Interval: 50_000, Warmup: 2_000, Unit: 8_000}) {
		t.Errorf("SampleParamsFrom overrides = %v, %v", p, err)
	}
	if _, err = SampleParamsFrom(true, 1_000, 900, 900); err == nil {
		t.Error("SampleParamsFrom must reject warm+unit > interval when enabled")
	}
	if _, err = SampleParamsFrom(false, 1_000, 900, 900); err != nil {
		t.Errorf("SampleParamsFrom must ignore geometry when disabled: %v", err)
	}
}

// TestSampledGeneratorReplayerIdentical pins that sampling over a
// trace.Replayer — the shared-recording path every sweep cell takes — is
// bit-identical to sampling over a fresh trace.Generator, on every
// workload profile. The warmer consumes the Source through the same
// batch-buffer seam as the detailed frontend, so replay must be invisible
// to both the measured Stats and the SampleResult accounting
// (fast-forward distances, window counts, estimator inputs).
func TestSampledGeneratorReplayerIdentical(t *testing.T) {
	s := suite(t)
	cfg := s.Configs[config.Base]
	sp := SampleParams{Interval: 20_000, Warmup: 500, Unit: 2_000}
	for _, bench := range workload.Names() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			p, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}

			hg, err := mem.NewHierarchy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cg, err := NewCoreKernel(0, cfg, trace.NewGenerator(p, 7, 0), hg, KernelEvent)
			if err != nil {
				t.Fatal(err)
			}
			cg.FastForward(20_000)
			rg, err := cg.RunSampled(150_000, sp, nil)
			if err != nil {
				t.Fatal(err)
			}

			rec := trace.Record(p, 7, 0, 250_000)
			hr, err := mem.NewHierarchy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cr, err := NewCoreKernel(0, cfg, trace.NewReplayer(rec), hr, KernelEvent)
			if err != nil {
				t.Fatal(err)
			}
			cr.FastForward(20_000)
			rr, err := cr.RunSampled(150_000, sp, nil)
			if err != nil {
				t.Fatal(err)
			}

			if cg.Stats != cr.Stats {
				t.Errorf("Stats diverge generator vs replayer:\ngen %+v\nrep %+v", cg.Stats, cr.Stats)
			}
			if rg != rr {
				t.Errorf("SampleResult diverges generator vs replayer:\ngen %+v\nrep %+v", rg, rr)
			}
		})
	}
}
