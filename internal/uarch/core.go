package uarch

import (
	"errors"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
)

// Stats holds the event counts of one simulated core, consumed by the power
// model and the experiment harness.
type Stats struct {
	Cycles uint64
	Instrs uint64

	KindCount [16]uint64

	RFReads     uint64
	RFWrites    uint64
	RATLookups  uint64
	IQInserts   uint64
	IQWakeups   uint64
	SQSearches  uint64
	Forwards    uint64
	ROBWrites   uint64
	ComplexOps  uint64
	FetchGroups uint64

	Branches    uint64
	Mispredicts uint64
	BTBMisses   uint64

	LoadL1Hits   uint64
	LoadL1Misses uint64

	// StallFull counts dispatch stalls due to full structures.
	StallROB, StallIQ, StallLQ, StallSQ, StallRF uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// robState tracks an entry's pipeline progress.
type robState uint8

const (
	stWaiting robState = iota
	stIssued
	stDone
)

// robEntry is one in-flight instruction.
type robEntry struct {
	kind    trace.Kind
	state   robState
	doneAt  int64
	dst     int16
	src1    int16
	src2    int16
	prod1   regRef // producer of src1 (slot+seq; zero seq = ready)
	prod2   regRef
	prevMap regRef // previous producer of dst, for squash undo
	addr    uint64
	pc      uint64
	taken   bool
	mispred bool
	btbMiss bool
	complex bool
	seq     uint64
}

// regRef identifies a producing instruction by ROB slot and sequence
// number. The sequence number guards against slot reuse: if the slot no
// longer holds that instruction, the value is architecturally available.
type regRef struct {
	slot int32
	seq  uint64
}

// Core simulates one out-of-order core.
type Core struct {
	ID  int
	cfg config.Config

	gen  *trace.Generator
	mem  mem.Backend
	pred *Predictor

	rob      []robEntry
	head     int
	tail     int
	count    int
	seq      uint64
	iqCount  int
	lqCount  int
	sqCount  int
	freePhys int

	// lastMap maps an architectural register to its newest in-flight
	// producer; a zero seq means the committed value is current.
	lastMap [64]regRef

	// frontq is the fetched-but-not-dispatched queue (frontend pipeline).
	frontq     []fetched
	fetchGate  int64 // cycle at which fetch may resume
	frontDepth int64

	// storeRing holds recent store line addresses for forwarding checks.
	storeAddrs []uint64
	storeSeqs  []uint64
	storeHead  int

	// Functional-unit ports: per-kind per-cycle issue budgets and
	// busy-until times for unpipelined units.
	divBusy   []int64
	fpDivBusy []int64

	// icache line tracking.
	curFetchLine uint64

	now   int64
	Stats Stats
}

// fetched is an instruction waiting in the frontend.
type fetched struct {
	in      trace.Inst
	readyAt int64
}

// NewCore builds a core over the given generator and memory backend.
func NewCore(id int, cfg config.Config, gen *trace.Generator, backend mem.Backend) (*Core, error) {
	if gen == nil || backend == nil {
		return nil, errors.New("uarch: nil generator or memory backend")
	}
	p := cfg.Core
	c := &Core{
		ID:         id,
		cfg:        cfg,
		gen:        gen,
		mem:        backend,
		pred:       NewPredictor(p),
		rob:        make([]robEntry, p.ROBSize),
		freePhys:   p.IntRF + p.FPRF - 2*64,
		frontDepth: 4,
		storeAddrs: make([]uint64, p.SQSize),
		storeSeqs:  make([]uint64, p.SQSize),
		divBusy:    make([]int64, p.NumMulDiv),
		fpDivBusy:  make([]int64, p.NumFPU),
	}
	return c, nil
}

// Run simulates until n instructions commit and returns the statistics.
func (c *Core) Run(n uint64) Stats {
	for c.Stats.Instrs < n {
		c.Step()
	}
	return c.Stats
}

// Step advances the core by one cycle. Exported so the multicore harness
// can run cores in lockstep.
func (c *Core) Step() {
	c.now++
	c.Stats.Cycles++
	c.commit()
	c.issue()
	c.dispatch()
	c.fetch()
}

// Done reports the retired instruction count.
func (c *Core) Done() uint64 { return c.Stats.Instrs }

// ---------------------------------------------------------------------------

// commit retires up to CommitWidth finished instructions from the ROB head.
func (c *Core) commit() {
	w := c.cfg.Core.CommitWidth
	for i := 0; i < w && c.count > 0; i++ {
		e := &c.rob[c.head]
		if e.state != stDone || e.doneAt > c.now {
			return
		}
		// Stores access the DL1 at commit time.
		if e.kind == trace.Store {
			c.mem.DataExtra(c.ID, e.addr, true)
			c.sqCount--
		}
		if e.kind == trace.Load {
			c.lqCount--
		}
		if e.dst >= 0 {
			c.freePhys++
			c.Stats.RFWrites++
			if c.lastMap[e.dst].slot == int32(c.head) && c.lastMap[e.dst].seq == e.seq {
				c.lastMap[e.dst] = regRef{}
			}
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.Stats.Instrs++
	}
}

// issue wakes up and selects ready instructions, oldest first, respecting
// functional-unit ports, and executes them.
func (c *Core) issue() {
	p := c.cfg.Core
	budgetALU := p.NumALU
	budgetMul := p.NumMulDiv
	budgetLSU := p.NumLSU
	budgetFPU := p.NumFPU
	issued := 0

	idx := c.head
	for scanned := 0; scanned < c.count && issued < p.IssueWidth; scanned++ {
		e := &c.rob[idx]
		if e.state != stWaiting {
			idx = (idx + 1) % len(c.rob)
			continue
		}
		if !c.ready(e) {
			idx = (idx + 1) % len(c.rob)
			continue
		}

		var ok bool
		var lat int
		switch e.kind {
		case trace.ALU, trace.Branch:
			if budgetALU > 0 {
				budgetALU--
				ok, lat = true, p.ALULatency
			}
		case trace.Mul:
			if budgetMul > 0 {
				budgetMul--
				ok, lat = true, p.MulLatency
			}
		case trace.Div:
			for u := range c.divBusy {
				if c.divBusy[u] <= c.now {
					c.divBusy[u] = c.now + int64(p.DivLatency)
					ok, lat = true, p.DivLatency
					break
				}
			}
		case trace.FPAdd:
			if budgetFPU > 0 {
				budgetFPU--
				ok, lat = true, p.FPAddLatency
			}
		case trace.FPMul:
			if budgetFPU > 0 {
				budgetFPU--
				ok, lat = true, p.FPMulLatency
			}
		case trace.FPDiv:
			for u := range c.fpDivBusy {
				if c.fpDivBusy[u] <= c.now {
					c.fpDivBusy[u] = c.now + int64(p.FPDivLatency)
					ok, lat = true, p.FPDivLatency
					break
				}
			}
		case trace.Load, trace.Store:
			if budgetLSU > 0 {
				budgetLSU--
				ok = true
				lat = c.memLatency(e)
			}
		}
		if !ok {
			idx = (idx + 1) % len(c.rob)
			continue
		}

		e.state = stIssued
		e.doneAt = c.now + int64(lat)
		c.iqCount--
		issued++
		c.Stats.IQWakeups++
		if e.src1 >= 0 {
			c.Stats.RFReads++
		}
		if e.src2 >= 0 {
			c.Stats.RFReads++
		}

		// Branches resolve at completion; mispredictions flush everything
		// younger, so the issue scan cannot continue past them.
		if e.kind == trace.Branch && (e.mispred || e.btbMiss) {
			c.squashAfter(idx, e)
			c.finish(e)
			break
		}
		c.finish(e)
		idx = (idx + 1) % len(c.rob)
	}
}

// finish marks the entry executed (results bypassed to dependents via
// doneAt comparisons).
func (c *Core) finish(e *robEntry) { e.state = stDone }

// ready reports whether the entry's sources are available this cycle. A
// producer reference whose slot no longer holds that sequence number refers
// to a committed (or squashed) instruction, so the value is available.
func (c *Core) ready(e *robEntry) bool {
	if e.prod1.seq != 0 {
		p := &c.rob[e.prod1.slot]
		if p.seq == e.prod1.seq && (p.state != stDone || p.doneAt > c.now) {
			return false
		}
	}
	if e.prod2.seq != 0 {
		p := &c.rob[e.prod2.slot]
		if p.seq == e.prod2.seq && (p.state != stDone || p.doneAt > c.now) {
			return false
		}
	}
	return true
}

// memLatency computes a load or store's completion latency: address
// generation, store-queue search, forwarding or DL1/hierarchy access.
func (c *Core) memLatency(e *robEntry) int {
	p := c.cfg.Core
	if e.kind == trace.Store {
		// Record the address for forwarding; the cache write happens at
		// commit. The store completes after address generation.
		c.storeAddrs[c.storeHead] = e.addr &^ 7
		c.storeSeqs[c.storeHead] = e.seq
		c.storeHead = (c.storeHead + 1) % len(c.storeAddrs)
		return p.LSULatency
	}
	// Loads search the store queue (CAM) for an older matching store.
	c.Stats.SQSearches++
	la := e.addr &^ 7
	for i := range c.storeAddrs {
		if c.storeAddrs[i] == la && c.storeSeqs[i] != 0 && c.storeSeqs[i] < e.seq {
			c.Stats.Forwards++
			return p.LSULatency + 1
		}
	}
	extra := c.mem.DataExtra(c.ID, e.addr, false)
	if extra == 0 {
		c.Stats.LoadL1Hits++
		return p.LoadToUseCycles
	}
	c.Stats.LoadL1Misses++
	return p.LoadToUseCycles + extra
}

// squashAfter flushes every entry younger than the branch at slot idx and
// redirects fetch after the misprediction penalty.
func (c *Core) squashAfter(idx int, br *robEntry) {
	if br.mispred {
		c.Stats.Mispredicts++
	}
	// Pop from the tail back to (but excluding) idx.
	for c.count > 0 {
		t := (c.tail - 1 + len(c.rob)) % len(c.rob)
		if t == idx {
			break
		}
		e := &c.rob[t]
		if e.dst >= 0 {
			c.freePhys++
			c.lastMap[e.dst] = e.prevMap
		}
		switch e.kind {
		case trace.Load:
			c.lqCount--
		case trace.Store:
			c.sqCount--
			// Remove the store's forwarding record.
			la := e.addr &^ 7
			for i := range c.storeAddrs {
				if c.storeAddrs[i] == la && c.storeSeqs[i] == e.seq {
					c.storeSeqs[i] = 0
					c.storeAddrs[i] = ^uint64(0)
				}
			}
		}
		if e.state == stWaiting {
			c.iqCount--
		}
		c.tail = t
		c.count--
	}
	// Discard the wrong-path frontend and stall fetch for the refill.
	c.frontq = c.frontq[:0]
	penalty := int64(c.cfg.Core.BranchPenaltyCycles) - c.frontDepth
	if br.btbMiss && !br.mispred {
		penalty = 3 // late target redirect only
	}
	if penalty < 1 {
		penalty = 1
	}
	gate := br.doneAt + penalty
	if gate > c.fetchGate {
		c.fetchGate = gate
	}
	c.curFetchLine = 0
}

// dispatch moves instructions from the frontend queue into the ROB/IQ/LSQ,
// renaming their registers.
func (c *Core) dispatch() {
	p := c.cfg.Core
	slots := p.DispatchWidth
	for slots > 0 && len(c.frontq) > 0 {
		f := c.frontq[0]
		if f.readyAt > c.now {
			return
		}
		if c.count >= p.ROBSize {
			c.Stats.StallROB++
			return
		}
		if c.iqCount >= p.IQSize {
			c.Stats.StallIQ++
			return
		}
		in := f.in
		switch in.Kind {
		case trace.Load:
			if c.lqCount >= p.LQSize {
				c.Stats.StallLQ++
				return
			}
		case trace.Store:
			if c.sqCount >= p.SQSize {
				c.Stats.StallSQ++
				return
			}
		}
		if in.Dst >= 0 && c.freePhys <= 0 {
			c.Stats.StallRF++
			return
		}
		if in.Complex {
			// The complex-decoder latency is charged in the frontend
			// (fetch sets a later readyAt); here we only count the event.
			c.Stats.ComplexOps++
		}

		// Rename.
		c.Stats.RATLookups++
		c.seq++
		e := robEntry{
			kind:    in.Kind,
			state:   stWaiting,
			dst:     in.Dst,
			src1:    in.Src1,
			src2:    in.Src2,
			addr:    in.Addr,
			pc:      in.PC,
			taken:   in.Taken,
			complex: in.Complex,
			seq:     c.seq,
		}
		if in.Src1 >= 0 {
			e.prod1 = c.lastMap[in.Src1]
		}
		if in.Src2 >= 0 {
			e.prod2 = c.lastMap[in.Src2]
		}
		if in.Dst >= 0 {
			c.freePhys--
			e.prevMap = c.lastMap[in.Dst]
			c.lastMap[in.Dst] = regRef{slot: int32(c.tail), seq: c.seq}
		}
		if in.Kind == trace.Branch {
			c.Stats.Branches++
			predTaken, predTarget, btbHit := c.pred.Predict(in.PC)
			e.mispred = predTaken != in.Taken ||
				(in.Taken && btbHit && predTarget != in.Target)
			e.btbMiss = in.Taken && !btbHit
			if e.btbMiss {
				c.Stats.BTBMisses++
			}
			c.pred.Update(in.PC, in.Taken, in.Target)
		}
		switch in.Kind {
		case trace.Load:
			c.lqCount++
		case trace.Store:
			c.sqCount++
		}
		c.Stats.KindCount[in.Kind]++
		c.Stats.IQInserts++
		c.Stats.ROBWrites++
		c.iqCount++
		c.rob[c.tail] = e
		c.tail = (c.tail + 1) % len(c.rob)
		c.count++
		c.frontq = c.frontq[1:]
		slots--
	}
}

// fetch brings new instructions into the frontend queue, modelling the IL1
// and stopping at taken branches.
func (c *Core) fetch() {
	p := c.cfg.Core
	if c.now < c.fetchGate || len(c.frontq) >= 2*p.FetchWidth {
		return
	}
	c.Stats.FetchGroups++
	lineMask := ^uint64(uint64(p.IL1.LineBytes) - 1)
	for i := 0; i < p.FetchWidth; i++ {
		in := c.gen.Next()
		if line := in.PC & lineMask; line != c.curFetchLine {
			c.curFetchLine = line
			if extra := c.mem.FetchExtra(c.ID, in.PC); extra > 0 {
				// Instruction miss: this group's tail is delayed.
				c.fetchGate = c.now + int64(extra)
			}
		}
		readyAt := c.now + c.frontDepth
		if in.Complex {
			// Complex instructions pass through the complex decoder — one
			// extra cycle when it lives in the slower top M3D layer
			// (Section 4.1.2).
			readyAt += int64(p.ComplexDecodeExtra)
		}
		c.frontq = append(c.frontq, fetched{in: in, readyAt: readyAt})
		if in.Kind == trace.Branch && in.Taken {
			break // taken branch ends the fetch group
		}
	}
}
