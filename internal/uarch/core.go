package uarch

import (
	"errors"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
)

// Stats holds the event counts of one simulated core, consumed by the power
// model and the experiment harness.
type Stats struct {
	Cycles uint64
	Instrs uint64

	KindCount [16]uint64

	RFReads     uint64
	RFWrites    uint64
	RATLookups  uint64
	IQInserts   uint64
	IQWakeups   uint64
	SQSearches  uint64
	Forwards    uint64
	ROBWrites   uint64
	ComplexOps  uint64
	FetchGroups uint64

	Branches    uint64
	Mispredicts uint64
	BTBMisses   uint64

	// PredSquashes counts squash triggers at dispatch time: one per
	// direction/target mispredict plus one per taken BTB miss (a branch
	// that is both counts twice). Unlike Mispredicts (counted only when
	// the squash actually executes at issue), this is accounted exactly
	// like the functional warmer's WarmObs.Mispredicts, which makes it
	// usable as a sampling regressor (sample.go).
	PredSquashes uint64

	// Fetched counts trace instructions pulled into the frontend, including
	// ones later squashed (retired Instrs excludes those). Every fetch-time
	// counter — KindCount, Branches, PredSquashes, the hierarchy probes —
	// covers this same once-per-trace-instruction population, which makes
	// Fetched the matching instruction count for rate or regression use:
	// sample.go pairs it with the functional warmer's WarmObs.Instrs, which
	// counts the identical population over fast-forwarded regions.
	Fetched uint64

	LoadL1Hits   uint64
	LoadL1Misses uint64

	// MemExtraFetch and MemExtraData sum the extra miss cycles the memory
	// hierarchy returned for instruction and data accesses. They are the
	// control variates of the sampled-simulation estimator (sample.go):
	// the functional warmer observes the same sums over fast-forwarded
	// stream regions, so window cycles regressed on these predict the
	// cycles of the regions that were never simulated in detail.
	MemExtraFetch uint64
	MemExtraData  uint64

	// MissRuns counts maximal bursts of consecutive missing data probes in
	// the program-order probe stream (forwarded loads, which probe nothing,
	// are transparent to the run). It separates clustered misses — which
	// overlap inside the out-of-order window and cost roughly one stall per
	// burst — from isolated ones that each pay full latency; per-cycle cost
	// tracks runs more linearly than total miss cycles, which is why the
	// sampled-simulation estimator uses it as a control variate.
	MissRuns uint64

	// StallFull counts dispatch stalls due to full structures.
	StallROB, StallIQ, StallLQ, StallSQ, StallRF uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// robState tracks an entry's pipeline progress.
type robState uint8

const (
	stWaiting robState = iota
	stIssued
	stDone
)

// robEntry is one in-flight instruction.
type robEntry struct {
	kind    trace.Kind
	state   robState
	doneAt  int64
	dst     int16
	src1    int16
	src2    int16
	prod1   regRef // producer of src1 (slot+seq; zero seq = ready)
	prod2   regRef
	prevMap regRef // previous producer of dst, for squash undo
	addr    uint64
	pc      uint64
	taken   bool
	mispred bool
	btbMiss bool
	complex bool
	fwd     bool // load forwards from the store ring (decided at dispatch)
	seq     uint64

	// memExtra is the extra hierarchy latency of a load beyond a DL1 hit,
	// probed at dispatch in program order (see dispatch); consumed when the
	// load issues.
	memExtra int32

	// Event-kernel scheduling state (unused by the reference kernel).
	// nwait counts in-flight producers whose doneAt is still unknown;
	// readyAt folds the doneAt of every resolved producer.
	nwait   uint8
	readyAt int64
}

// regRef identifies a producing instruction by ROB slot and sequence
// number. The sequence number guards against slot reuse: if the slot no
// longer holds that instruction, the value is architecturally available.
// Sequence numbers are globally unique and never reused, so a (slot, seq)
// pair identifies one dynamic instruction for the core's whole lifetime —
// the property the event kernel's lazy queue invalidation relies on.
type regRef struct {
	slot int32
	seq  uint64
}

// Core simulates one out-of-order core.
type Core struct {
	ID   int
	cfg  config.Config
	kern Kernel

	src  trace.Source
	mem  mem.Backend
	pred *Predictor

	// instBuf is the frontend's prefill buffer: fetch pulls single
	// instructions from it and it refills in batches via src.NextBatch,
	// amortising the per-instruction interface call (and, for replayed
	// recordings, the packed decode) over a whole buffer. The stream has no
	// feedback from the core, so prefilling ahead of fetch is unobservable.
	instBuf []trace.Inst
	instPos int

	rob      []robEntry
	head     int
	tail     int
	count    int
	seq      uint64
	iqCount  int
	lqCount  int
	sqCount  int
	freePhys int

	// lastMap maps an architectural register to its newest in-flight
	// producer; a zero seq means the committed value is current.
	lastMap [64]regRef

	// fq is the fetched-but-not-dispatched queue (frontend pipeline), a
	// fixed-capacity ring buffer: fetch stops once 2*FetchWidth entries are
	// queued and a group adds at most FetchWidth more, so 3*FetchWidth
	// slots never overflow and no dispatch/fetch ever reallocates.
	fq         []fetched
	fqHead     int
	fqLen      int
	fetchGate  int64 // cycle at which fetch may resume
	frontDepth int64

	// storeRing holds the line addresses of the last SQSize dispatched
	// stores, program order, for the dispatch-time forwarding check. The
	// ring is stream state rather than pipeline state: records survive
	// squashes and pipeline resets (squashed stores leave stale records),
	// which is exactly the approximation the functional warmer can mirror,
	// keeping sampled fast-forward and detailed simulation commensurate.
	storeAddrs []uint64
	storeHead  int

	// stCounts is a counting filter over the ring's hashed line addresses:
	// a zero bucket proves the address is absent, so the forwarding check
	// skips the ring scan for the common no-forward case. Counts are exact
	// (every insert increments, every overwrite decrements), so a positive
	// bucket only means "maybe" and the scan still decides. The functional
	// warmer shares this array alongside the ring itself.
	stCounts [256]uint8

	// dataMissRun tracks whether the previous data-cache probe (load or
	// store, program order, forwarded loads excluded) missed — the state
	// behind Stats.MissRuns. Like the store ring it is stream state, not
	// pipeline state: it survives squashes and resets, and the functional
	// warmer continues it across fast-forwards.
	dataMissRun bool

	// Functional-unit ports: per-kind per-cycle issue budgets and
	// busy-until times for unpipelined units.
	divBusy   []int64
	fpDivBusy []int64

	// icache line tracking.
	curFetchLine uint64

	// Event-kernel scheduling structures. readyQ is a seq-keyed min-heap of
	// waiting entries whose operands are available now (pop order = program
	// order, the scan kernel's oldest-first selection); readyKept is the
	// issue pass's scratch list of port-conflicted entries to re-offer;
	// wakeHeap is a time-ordered min-heap of entries whose operands become
	// available at a known future cycle. Consumer wake lists live in a
	// slab arena: wakeHead[slot] heads a freelist-linked chain of wakeNodes
	// in wakeArena naming the consumers to notify when the producer in that
	// slot issues — no per-slot slice headers, no steady-state allocation.
	// All of these hold (slot, seq) refs that are lazily invalidated after
	// squashes via the seq check.
	readyQ    []qref
	readyKept []qref
	wakeHeap  []wakeEv
	wakeArena []wakeNode
	wakeHead  []int32
	wakeFree  int32

	// Sampled-simulation state: the cached functional warmer bound to this
	// core's stream/backend/predictor, and the count of instructions
	// fast-forwarded past the detailed pipeline (see sample.go).
	fwd      *FunctionalWarmer
	ffInstrs uint64

	// ffHook, when installed via SetFastForward, intercepts FastForward —
	// the seam the warm-state snapshot cache binds through (internal/warm).
	ffHook func(n uint64)

	// latL2/latL3/fillsOK and fetchFills/dataFills classify detailed-path
	// misses by fill level, mirroring WarmObs.FetchFills/DataFills — the
	// design-independent form of the miss observables a snapshot binding
	// needs to reprice skipped stretches exactly (see StreamCounters). They
	// are deliberately kept out of Stats so existing journal records keep
	// decoding unchanged.
	latL2, latL3 int
	fillsOK      bool
	fetchFills   [3]uint64
	dataFills    [3]uint64

	now   int64
	Stats Stats
}

// qref references a ROB entry from a scheduling queue.
type qref struct {
	slot int32
	seq  uint64
}

// wakeEv schedules a ROB entry to become issue-eligible at a cycle.
type wakeEv struct {
	at   int64
	slot int32
	seq  uint64
}

// fetched is an instruction waiting in the frontend, carrying the results
// of the fetch-stage probes (branch prediction, store-forwarding check,
// data-hierarchy latency) into dispatch.
type fetched struct {
	in       trace.Inst
	readyAt  int64
	memExtra int32 // extra DL1-miss cycles probed at fetch (loads)
	fwd      bool  // load forwards from the store ring
	mispred  bool
	btbMiss  bool
}

// NewCore builds a core over the given instruction source and memory
// backend using the default event-driven kernel. The source is any
// trace.Source: a *trace.Generator synthesises the stream in place, a
// *trace.Replayer replays a shared packed recording; both yield
// bit-identical simulations for the same (profile, seed, stream).
func NewCore(id int, cfg config.Config, src trace.Source, backend mem.Backend) (*Core, error) {
	return NewCoreKernel(id, cfg, src, backend, KernelEvent)
}

// NewCoreKernel builds a core with an explicit simulation kernel. Both
// kernels produce bit-identical Stats (see oracle_test.go); KernelEvent is
// strictly faster and is the default everywhere.
func NewCoreKernel(id int, cfg config.Config, src trace.Source, backend mem.Backend, k Kernel) (*Core, error) {
	if src == nil || backend == nil {
		return nil, errors.New("uarch: nil instruction source or memory backend")
	}
	if k != KernelEvent && k != KernelReference {
		return nil, errors.New("uarch: unknown kernel")
	}
	p := cfg.Core
	c := &Core{
		ID:         id,
		cfg:        cfg,
		kern:       k,
		src:        src,
		mem:        backend,
		pred:       NewPredictor(p),
		rob:        make([]robEntry, p.ROBSize),
		freePhys:   p.IntRF + p.FPRF - 2*64,
		frontDepth: 4,
		fq:         make([]fetched, 3*p.FetchWidth),
		storeAddrs: make([]uint64, p.SQSize),
		divBusy:    make([]int64, p.NumMulDiv),
		fpDivBusy:  make([]int64, p.NumFPU),
		instBuf:    make([]trace.Inst, 0, max(8*p.FetchWidth, 64)),
	}
	// Sentinel-fill the store ring: a zero entry would spuriously match a
	// load in the first data page.
	for i := range c.storeAddrs {
		c.storeAddrs[i] = ^uint64(0)
	}
	if h, ok := backend.(*mem.Hierarchy); ok {
		e2, e3, ed := h.FillLatencies()
		if e2 > 0 && e3 > e2 && ed > e3 {
			c.latL2, c.latL3, c.fillsOK = e2, e3, true
		}
	}
	if k == KernelEvent {
		c.readyQ = make([]qref, 0, p.IssueWidth*4)
		c.readyKept = make([]qref, 0, p.IssueWidth)
		c.wakeHeap = make([]wakeEv, 0, p.ROBSize)
		// Each in-flight instruction registers on at most two producers, so
		// 2*ROBSize nodes bound the arena's live set.
		c.wakeArena = make([]wakeNode, 0, 2*p.ROBSize)
		c.wakeHead = make([]int32, p.ROBSize)
		for i := range c.wakeHead {
			c.wakeHead[i] = wakeNil
		}
		c.wakeFree = wakeNil
	}
	return c, nil
}

// Run simulates until n instructions commit and returns the statistics.
// The event kernel fast-forwards over cycles in which no pipeline stage
// can make progress (long memory stalls); the skipped cycles are batched
// into the Cycles and dispatch-stall counters, so the returned Stats are
// bit-identical to stepping every cycle.
func (c *Core) Run(n uint64) Stats {
	if c.kern == KernelEvent {
		for c.Stats.Instrs < n {
			c.skipIdle()
			c.Step()
		}
		return c.Stats
	}
	for c.Stats.Instrs < n {
		c.Step()
	}
	return c.Stats
}

// Step advances the core by exactly one cycle. Exported so the multicore
// harness can run cores in lockstep; it never idle-skips, so the lockstep
// interleaving of shared-memory accesses is independent of the kernel.
func (c *Core) Step() {
	c.now++
	c.Stats.Cycles++
	c.commit()
	if c.kern == KernelEvent {
		c.issueEvent()
	} else {
		c.issueRef()
	}
	c.dispatch()
	c.fetch()
}

// Done reports the retired instruction count.
func (c *Core) Done() uint64 { return c.Stats.Instrs }

// ---------------------------------------------------------------------------

// fqPush appends to the frontend ring.
func (c *Core) fqPush(f fetched) {
	c.fq[(c.fqHead+c.fqLen)%len(c.fq)] = f
	c.fqLen++
}

// fqPop removes the oldest frontend entry.
func (c *Core) fqPop() {
	c.fqHead = (c.fqHead + 1) % len(c.fq)
	c.fqLen--
}

// fqClear discards the whole frontend queue (wrong-path squash).
func (c *Core) fqClear() {
	c.fqHead, c.fqLen = 0, 0
}

// ---------------------------------------------------------------------------

// commit retires up to CommitWidth finished instructions from the ROB head.
func (c *Core) commit() {
	w := c.cfg.Core.CommitWidth
	for i := 0; i < w && c.count > 0; i++ {
		e := &c.rob[c.head]
		if e.state != stDone || e.doneAt > c.now {
			return
		}
		// The store's DL1 write already happened at dispatch (program-order
		// probing); commit only releases the SQ slot.
		if e.kind == trace.Store {
			c.sqCount--
		}
		if e.kind == trace.Load {
			c.lqCount--
		}
		if e.dst >= 0 {
			c.freePhys++
			c.Stats.RFWrites++
			if c.lastMap[e.dst].slot == int32(c.head) && c.lastMap[e.dst].seq == e.seq {
				c.lastMap[e.dst] = regRef{}
			}
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.Stats.Instrs++
	}
}

// fuBudget carries the per-cycle per-kind issue budgets through one issue
// pass.
type fuBudget struct {
	alu, mul, lsu, fpu int
}

func (c *Core) newBudget() fuBudget {
	p := c.cfg.Core
	return fuBudget{alu: p.NumALU, mul: p.NumMulDiv, lsu: p.NumLSU, fpu: p.NumFPU}
}

// allocFU reserves a functional unit for the entry, returning whether it
// can issue this cycle and its completion latency. memLat computes the
// load/store latency and is only invoked once the LSU port is granted, so
// its side effects (SQ search, cache access, forwarding records) happen in
// exactly the same order under both kernels.
func (c *Core) allocFU(e *robEntry, b *fuBudget, memLat func(*robEntry) int) (bool, int) {
	p := c.cfg.Core
	switch e.kind {
	case trace.ALU, trace.Branch:
		if b.alu > 0 {
			b.alu--
			return true, p.ALULatency
		}
	case trace.Mul:
		if b.mul > 0 {
			b.mul--
			return true, p.MulLatency
		}
	case trace.Div:
		for u := range c.divBusy {
			if c.divBusy[u] <= c.now {
				c.divBusy[u] = c.now + int64(p.DivLatency)
				return true, p.DivLatency
			}
		}
	case trace.FPAdd:
		if b.fpu > 0 {
			b.fpu--
			return true, p.FPAddLatency
		}
	case trace.FPMul:
		if b.fpu > 0 {
			b.fpu--
			return true, p.FPMulLatency
		}
	case trace.FPDiv:
		for u := range c.fpDivBusy {
			if c.fpDivBusy[u] <= c.now {
				c.fpDivBusy[u] = c.now + int64(p.FPDivLatency)
				return true, p.FPDivLatency
			}
		}
	case trace.Load, trace.Store:
		if b.lsu > 0 {
			b.lsu--
			return true, memLat(e)
		}
	}
	return false, 0
}

// markIssued applies the bookkeeping common to both kernels when an entry
// wins issue.
func (c *Core) markIssued(e *robEntry, lat int) {
	e.state = stIssued
	e.doneAt = c.now + int64(lat)
	c.iqCount--
	c.Stats.IQWakeups++
	if e.src1 >= 0 {
		c.Stats.RFReads++
	}
	if e.src2 >= 0 {
		c.Stats.RFReads++
	}
}

// finish marks the entry executed (results bypassed to dependents via
// doneAt comparisons).
func (c *Core) finish(e *robEntry) { e.state = stDone }

// stHash buckets a store line address into the counting filter.
func stHash(la uint64) uint8 {
	return uint8((la * 0x9E3779B97F4A7C15) >> 56)
}

// storeRingHas reports whether the line address matches a recently
// dispatched store — the dispatch-time forwarding check.
func (c *Core) storeRingHas(la uint64) bool {
	if c.stCounts[stHash(la)] == 0 {
		return false
	}
	for _, a := range c.storeAddrs {
		if a == la {
			return true
		}
	}
	return false
}

// memLatency returns a load or store's completion latency from the
// dispatch-time probe results. Shared by both kernels: the forwarding
// decision and the hierarchy access happened at dispatch, so nothing here
// depends on issue order.
func (c *Core) memLatency(e *robEntry) int {
	p := c.cfg.Core
	if e.kind == trace.Store {
		return p.LSULatency
	}
	if e.fwd {
		return p.LSULatency + 1
	}
	return p.LoadToUseCycles + int(e.memExtra)
}

// ready reports whether the entry's sources are available this cycle. A
// producer reference whose slot no longer holds that sequence number refers
// to a committed (or squashed) instruction, so the value is available.
func (c *Core) ready(e *robEntry) bool {
	if e.prod1.seq != 0 {
		p := &c.rob[e.prod1.slot]
		if p.seq == e.prod1.seq && (p.state != stDone || p.doneAt > c.now) {
			return false
		}
	}
	if e.prod2.seq != 0 {
		p := &c.rob[e.prod2.slot]
		if p.seq == e.prod2.seq && (p.state != stDone || p.doneAt > c.now) {
			return false
		}
	}
	return true
}

// squashAfter flushes every entry younger than the branch at slot idx and
// redirects fetch after the misprediction penalty.
func (c *Core) squashAfter(idx int, br *robEntry) {
	if br.mispred {
		c.Stats.Mispredicts++
	}
	// Pop from the tail back to (but excluding) idx.
	for c.count > 0 {
		t := (c.tail - 1 + len(c.rob)) % len(c.rob)
		if t == idx {
			break
		}
		e := &c.rob[t]
		if e.dst >= 0 {
			c.freePhys++
			c.lastMap[e.dst] = e.prevMap
		}
		switch e.kind {
		case trace.Load:
			c.lqCount--
		case trace.Store:
			// The store's ring record deliberately survives the squash:
			// the ring is program-order stream state (see its declaration),
			// so a squashed store's line may still satisfy a later load's
			// forwarding check — the same approximation the functional
			// warmer makes.
			c.sqCount--
		}
		if e.state == stWaiting {
			c.iqCount--
		}
		// Invalidate the popped slot's sequence number so any scheduling
		// ref (readyQ/wakeHeap/wakes) still pointing at it stops
		// validating before the slot is reused. Live entries never
		// reference squashed (younger) slots, so this is unobservable to
		// the reference kernel.
		e.seq = 0
		c.tail = t
		c.count--
	}
	// Discard the wrong-path frontend and stall fetch for the refill.
	// Squashed entries still referenced from readyQ/wakeHeap/wakes are
	// dropped lazily: their (slot, seq) refs stop validating.
	c.fqClear()
	penalty := int64(c.cfg.Core.BranchPenaltyCycles) - c.frontDepth
	if br.btbMiss && !br.mispred {
		penalty = 3 // late target redirect only
	}
	if penalty < 1 {
		penalty = 1
	}
	gate := br.doneAt + penalty
	if gate > c.fetchGate {
		c.fetchGate = gate
	}
	// curFetchLine is deliberately left alone: the IL1 is touched once per
	// line change of the trace stream, with no post-squash re-touch. A
	// re-touch would fire at the (timing-dependent) run-ahead position and
	// make the probe sequence diverge from the functional warmer's, which
	// has no notion of run-ahead; the redirect's timing cost is fully
	// carried by the fetch gate.
}

// dispatch moves instructions from the frontend queue into the ROB/IQ/LSQ,
// renaming their registers.
func (c *Core) dispatch() {
	p := c.cfg.Core
	slots := p.DispatchWidth
	for slots > 0 && c.fqLen > 0 {
		f := c.fq[c.fqHead]
		if f.readyAt > c.now {
			return
		}
		if c.count >= p.ROBSize {
			c.Stats.StallROB++
			return
		}
		if c.iqCount >= p.IQSize {
			c.Stats.StallIQ++
			return
		}
		in := f.in
		switch in.Kind {
		case trace.Load:
			if c.lqCount >= p.LQSize {
				c.Stats.StallLQ++
				return
			}
		case trace.Store:
			if c.sqCount >= p.SQSize {
				c.Stats.StallSQ++
				return
			}
		}
		if in.Dst >= 0 && c.freePhys <= 0 {
			c.Stats.StallRF++
			return
		}
		if in.Complex {
			// The complex-decoder latency is charged in the frontend
			// (fetch sets a later readyAt); here we only count the event.
			c.Stats.ComplexOps++
		}

		// Rename. The cache/predictor/ring probes already happened at fetch
		// (see fetch); dispatch only copies their results onto the ROB entry.
		c.Stats.RATLookups++
		c.seq++
		e := robEntry{
			kind:     in.Kind,
			state:    stWaiting,
			dst:      in.Dst,
			src1:     in.Src1,
			src2:     in.Src2,
			addr:     in.Addr,
			pc:       in.PC,
			taken:    in.Taken,
			complex:  in.Complex,
			mispred:  f.mispred,
			btbMiss:  f.btbMiss,
			fwd:      f.fwd,
			memExtra: f.memExtra,
			seq:      c.seq,
		}
		if in.Src1 >= 0 {
			e.prod1 = c.lastMap[in.Src1]
		}
		if in.Src2 >= 0 {
			e.prod2 = c.lastMap[in.Src2]
		}
		if in.Dst >= 0 {
			c.freePhys--
			e.prevMap = c.lastMap[in.Dst]
			c.lastMap[in.Dst] = regRef{slot: int32(c.tail), seq: c.seq}
		}
		switch in.Kind {
		case trace.Load:
			c.lqCount++
		case trace.Store:
			c.sqCount++
		}
		c.Stats.IQInserts++
		c.Stats.ROBWrites++
		c.iqCount++
		slot := c.tail
		c.rob[slot] = e
		c.tail = (c.tail + 1) % len(c.rob)
		c.count++
		c.fqPop()
		slots--
		if c.kern == KernelEvent {
			c.registerDeps(slot)
		}
	}
}

// nextInst returns the next instruction of the stream, refilling the
// prefill buffer in whole batches so the Source interface call (and any
// packed-recording decode) is amortised over cap(instBuf) instructions.
func (c *Core) nextInst() trace.Inst {
	if c.instPos == len(c.instBuf) {
		buf := c.instBuf[:cap(c.instBuf)]
		n := c.src.NextBatch(buf)
		if n <= 0 {
			panic("uarch: trace source exhausted (sources must be infinite)")
		}
		c.instBuf = buf[:n]
		c.instPos = 0
	}
	in := c.instBuf[c.instPos]
	c.instPos++
	return in
}

// fetch brings new instructions into the frontend queue, modelling the IL1
// and stopping at taken branches.
//
// All long-lived-state probes happen here, per trace instruction, in pure
// program order: the branch predictor is looked up and trained, stores
// enter the forwarding ring and loads check it, and data accesses probe the
// memory hierarchy. The probed results ride on the fetched entry into
// dispatch and the ROB, so the backend never touches cache, predictor or
// ring state — which is exactly what lets sampled simulation's functional
// warmer (warmer.go) evolve that state identically while skipping the
// backend: every trace instruction probes exactly once, in the same order,
// in both modes. Instructions later squashed keep their probe side effects
// (wrong-path work warms caches and trains predictors in real machines
// too).
func (c *Core) fetch() {
	p := c.cfg.Core
	if c.now < c.fetchGate || c.fqLen >= 2*p.FetchWidth {
		return
	}
	c.Stats.FetchGroups++
	lineMask := ^uint64(uint64(p.IL1.LineBytes) - 1)
	for i := 0; i < p.FetchWidth && c.fqLen < len(c.fq); i++ {
		in := c.nextInst()
		c.Stats.Fetched++
		c.Stats.KindCount[in.Kind]++
		if line := in.PC & lineMask; line != c.curFetchLine {
			c.curFetchLine = line
			if extra := c.mem.FetchExtra(c.ID, in.PC); extra > 0 {
				// Instruction miss: this group's tail is delayed.
				c.fetchGate = c.now + int64(extra)
				c.Stats.MemExtraFetch += uint64(extra)
				if c.fillsOK {
					c.fetchFills[fillClass(extra, c.latL2, c.latL3)]++
				}
			}
		}
		readyAt := c.now + c.frontDepth
		if in.Complex {
			// Complex instructions pass through the complex decoder — one
			// extra cycle when it lives in the slower top M3D layer
			// (Section 4.1.2).
			readyAt += int64(p.ComplexDecodeExtra)
		}
		f := fetched{in: in, readyAt: readyAt}
		switch in.Kind {
		case trace.Branch:
			c.Stats.Branches++
			predTaken, predTarget, btbHit := c.pred.Predict(in.PC)
			f.mispred = predTaken != in.Taken ||
				(in.Taken && btbHit && predTarget != in.Target)
			f.btbMiss = in.Taken && !btbHit
			if f.btbMiss {
				c.Stats.BTBMisses++
			}
			if f.mispred {
				c.Stats.PredSquashes++
			}
			if f.btbMiss {
				c.Stats.PredSquashes++
			}
			c.pred.Update(in.PC, in.Taken, in.Target)
		case trace.Load:
			c.Stats.SQSearches++
			if c.storeRingHas(in.Addr &^ 7) {
				c.Stats.Forwards++
				f.fwd = true
			} else if extra := c.mem.DataExtra(c.ID, in.Addr, false); extra == 0 {
				c.Stats.LoadL1Hits++
				c.dataMissRun = false
			} else {
				c.Stats.LoadL1Misses++
				c.Stats.MemExtraData += uint64(extra)
				if c.fillsOK {
					c.dataFills[fillClass(extra, c.latL2, c.latL3)]++
				}
				if !c.dataMissRun {
					c.Stats.MissRuns++
					c.dataMissRun = true
				}
				f.memExtra = int32(extra)
			}
		case trace.Store:
			if old := c.storeAddrs[c.storeHead]; old != ^uint64(0) {
				c.stCounts[stHash(old)]--
			}
			c.stCounts[stHash(in.Addr&^7)]++
			c.storeAddrs[c.storeHead] = in.Addr &^ 7
			c.storeHead = (c.storeHead + 1) % len(c.storeAddrs)
			if extra := c.mem.DataExtra(c.ID, in.Addr, true); extra > 0 {
				c.Stats.MemExtraData += uint64(extra)
				if c.fillsOK {
					c.dataFills[fillClass(extra, c.latL2, c.latL3)]++
				}
				if !c.dataMissRun {
					c.Stats.MissRuns++
					c.dataMissRun = true
				}
			} else {
				c.dataMissRun = false
			}
		}
		c.fqPush(f)
		if in.Kind == trace.Branch && in.Taken {
			break // taken branch ends the fetch group
		}
	}
}
