package uarch

import (
	"os"
	"strconv"
	"testing"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// sampleBenchPlan is one kernel's BENCH_sample.json section: the profiles
// it covers, the cell length, and the sampling geometry the speedups are
// quoted at. The event section runs 32M-instruction cells at a 400k
// interval — 80 measured windows, which measurement shows keeps every
// profile's CPI error under the 2% oracle bound (40 windows let the worst
// profile, Fmm, drift to 2.4%). The reference section halves both the
// interval and the cell length: same 2.25%→4.5% detailed-fraction
// trade-off the kernel's 4–20×-slower detailed mode tolerates, and 8M
// cells keep the full reference baselines (up to ~15 µs/instruction on
// Mcf) from taking many minutes per profile; its 40 windows are enough
// because the section spans 4 profiles, not 36 draws of the worst case.
type sampleBenchPlan struct {
	kernel   Kernel
	profiles []string
	n        uint64
	sp       SampleParams
}

// benchCellLen reads the per-cell instruction budget, overridable for the
// CI smoke run (SAMPLE_BENCH_N=1000000 finishes in seconds; the error
// metric is meaningless at that length — a couple of windows — and is not
// gated there. Keep overrides ≥800k so the reference section's n/4 cell
// still fits one 200k sampling interval).
func benchCellLen() uint64 {
	if s := os.Getenv("SAMPLE_BENCH_N"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 32_000_000
}

func sampleBenchPlans() []sampleBenchPlan {
	n := benchCellLen()
	return []sampleBenchPlan{
		{
			kernel:   KernelEvent,
			profiles: workload.Names(),
			n:        n,
			sp:       SampleParams{Interval: 400_000, Warmup: 1_000, Unit: 8_000},
		},
		{
			// The BENCH_core.json profile set, so the reference cells line
			// up with the committed detailed baseline — and so bench.sh can
			// quote the cross-kernel headline (sampled event cell vs full
			// reference cell) on profiles both sections measure.
			kernel:   KernelReference,
			profiles: []string{"Hmmer", "Mcf", "Gobmk", "Lbm"},
			n:        n / 4,
			sp:       SampleParams{Interval: 200_000, Warmup: 1_000, Unit: 8_000},
		},
	}
}

// BenchmarkSampledCell measures, per kernel and workload profile, one full
// detailed sweep cell against the same cell in sampled mode — same binary,
// same kernel, same shared recording, same stream footprint — and reports:
//
//	speedup_x    full wall time / sampled wall time
//	cpi_err_pct  |sampled CPI − full CPI| / full CPI × 100
//	full_ms      full detailed cell wall time
//	sampled_ms   sampled cell wall time
//	eff_mips     retired-instruction throughput of the sampled cell
//
// scripts/bench.sh parses these into BENCH_sample.json. The cell mirrors
// the Fig6 cell shape (warmup, then a measured region): the full cell runs
// detailed warmup + detailed measure; the sampled cell fast-forwards the
// warmup functionally and interval-samples the measure region.
//
// An untimed sampled run precedes the timed pair: its stream footprint
// matches the full run's (RunSampled's cumulative top-up), so it extends
// the shared recording to nearly the full consumption up front. Without
// it, squash-heavy profiles would pay the recording's trace synthesis
// inside the full run's timer — in a real sweep the recording is shared
// across all cells and that cost is paid once, not per cell.
func BenchmarkSampledCell(b *testing.B) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.Configs[config.Base]
	const warm = 50_000

	for _, plan := range sampleBenchPlans() {
		plan := plan
		b.Run(plan.kernel.String(), func(b *testing.B) {
			for _, name := range plan.profiles {
				b.Run(name, func(b *testing.B) {
					benchOneSampledCell(b, cfg, plan, name, warm)
				})
			}
		})
	}
}

func benchOneSampledCell(b *testing.B, cfg config.Config, plan sampleBenchPlan, name string, warm uint64) {
	p, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	n := plan.n
	rec := trace.Record(p, 7, 0, int(warm+n+n/2))

	runSampledCell := func() (Stats, float64) {
		h, err := mem.NewHierarchy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c, err := NewCoreKernel(0, cfg, trace.NewReplayer(rec), h, plan.kernel)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		c.FastForward(warm)
		res, err := c.RunSampled(n, plan.sp, nil)
		if err != nil {
			b.Fatal(err)
		}
		return res.Extrapolate(n), time.Since(t0).Seconds()
	}

	// Untimed pre-pass: extends the recording to (almost) the full
	// footprint and pages its lanes in, as a warm shared-recording sweep
	// cell would see them.
	runSampledCell()

	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCoreKernel(0, cfg, trace.NewReplayer(rec), h, plan.kernel)
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Now()
	c.Run(warm)
	before := c.Stats
	c.Run(warm + n)
	fullSec := time.Since(t0).Seconds()
	full := c.Stats.Sub(before)

	var est Stats
	var sampSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, sampSec = runSampledCell()
	}
	b.StopTimer()

	fullCPI := float64(full.Cycles) / float64(full.Instrs)
	sampCPI := float64(est.Cycles) / float64(est.Instrs)
	errPct := (sampCPI/fullCPI - 1) * 100
	if errPct < 0 {
		errPct = -errPct
	}
	b.ReportMetric(fullSec/sampSec, "speedup_x")
	b.ReportMetric(errPct, "cpi_err_pct")
	b.ReportMetric(fullSec*1e3, "full_ms")
	b.ReportMetric(sampSec*1e3, "sampled_ms")
	b.ReportMetric(float64(n)/sampSec/1e6, "eff_mips")
}
