package uarch

import (
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// runKernel executes one benchmark on one kernel and returns the core stats
// and the full memory-hierarchy stats — every externally visible number.
func runKernel(t *testing.T, cfg config.Config, bench string, seed int64, k Kernel, instrs uint64) (Stats, mem.HierStats) {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(p, seed, 0)
	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoreKernel(0, cfg, gen, h, k)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Run(instrs)
	return st, h.Stats()
}

// TestOracleKernelsBitIdentical is the differential oracle of the event
// kernel: every workload profile, on the slowest and fastest single-core
// designs, must produce byte-for-byte identical Stats AND HierStats under
// both kernels. Any divergence in issue selection, store forwarding,
// idle-skip accounting or squash handling shows up here.
func TestOracleKernelsBitIdentical(t *testing.T) {
	s := suite(t)
	for _, d := range []config.Design{config.Base, config.M3DHet} {
		cfg := s.Configs[d]
		for _, bench := range workload.Names() {
			bench := bench
			t.Run(cfg.Name+"/"+bench, func(t *testing.T) {
				t.Parallel()
				refSt, refMem := runKernel(t, cfg, bench, 7, KernelReference, 25_000)
				evSt, evMem := runKernel(t, cfg, bench, 7, KernelEvent, 25_000)
				if refSt != evSt {
					t.Errorf("Stats diverge:\nref %+v\nevt %+v", refSt, evSt)
				}
				if refMem != evMem {
					t.Errorf("HierStats diverge:\nref %+v\nevt %+v", refMem, evMem)
				}
			})
		}
	}
}

// TestOracleStepEquivalentToRun pins the idle-skip transform: Run (which
// fast-forwards idle stretches) must land on exactly the same Stats as
// stepping the event kernel one cycle at a time, which never skips.
func TestOracleStepEquivalentToRun(t *testing.T) {
	s := suite(t)
	cfg := s.Configs[config.Base]
	for _, bench := range []string{"Mcf", "Hmmer", "Gobmk"} {
		p, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		mk := func() *Core {
			h, err := mem.NewHierarchy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCoreKernel(0, cfg, trace.NewGenerator(p, 11, 0), h, KernelEvent)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		run, step := mk(), mk()
		run.Run(20_000)
		for step.Stats.Instrs < 20_000 {
			step.Step()
		}
		if run.Stats != step.Stats {
			t.Errorf("%s: Run (idle-skip) vs Step diverge:\nrun  %+v\nstep %+v", bench, run.Stats, step.Stats)
		}
	}
}

// TestOracleKernelRoundTrip covers the flag plumbing used by the binaries.
func TestOracleKernelRoundTrip(t *testing.T) {
	for _, k := range []Kernel{KernelEvent, KernelReference} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKernel("nope"); err == nil {
		t.Error("ParseKernel must reject unknown names")
	}
	if len(KernelNames()) != 2 {
		t.Errorf("KernelNames() = %v, want two kernels", KernelNames())
	}
}
