package uarch

import (
	"errors"
	"fmt"

	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
)

// This file is the uarch half of the warm-state snapshot layer (the cache
// and on-disk format live in internal/warm). A snapshot captures everything
// the fast-forward phase of sampled simulation computes — cache lanes,
// predictor tables, the store-forwarding ring, the fetch-line register and
// the miss-run flag — at a known stream position, so a sweep warms each
// (profile, seed, stream, geometry) identity once and every other cell
// restores instead of re-simulating. All snapshot state is deep-copied on
// capture and on restore: concurrently running cells never alias a shared
// snapshot's slices.

// PredictorState is a deep copy of a Predictor's trainable state. The
// derived index masks and way counts are excluded — they are geometry, and
// restore validates them by table length instead.
type PredictorState struct {
	Selector []uint8
	Local    []uint8
	LocalHis []uint16
	Global   []uint8
	GHR      uint32

	BTBTags    []uint64
	BTBTargets []uint64

	Stats PredictorStats
}

// State returns a deep copy of the predictor's trainable state.
func (p *Predictor) State() PredictorState {
	return PredictorState{
		Selector:   append([]uint8(nil), p.selector...),
		Local:      append([]uint8(nil), p.local...),
		LocalHis:   append([]uint16(nil), p.localHis...),
		Global:     append([]uint8(nil), p.global...),
		GHR:        p.ghr,
		BTBTags:    append([]uint64(nil), p.btbTags...),
		BTBTargets: append([]uint64(nil), p.btbTargets...),
		Stats:      p.Stats,
	}
}

// compatibleState reports whether the snapshot was captured from a
// predictor of this geometry.
func (p *Predictor) compatibleState(s *PredictorState) error {
	if len(s.Selector) != len(p.selector) || len(s.Local) != len(p.local) ||
		len(s.LocalHis) != len(p.localHis) || len(s.Global) != len(p.global) ||
		len(s.BTBTags) != len(p.btbTags) || len(s.BTBTargets) != len(p.btbTargets) {
		return fmt.Errorf("uarch: predictor snapshot geometry (%d-entry tables, %d-entry BTB) does not match (%d, %d)",
			len(s.Selector), len(s.BTBTags), len(p.selector), len(p.btbTags))
	}
	return nil
}

// applyState copies the snapshot into the predictor's own tables. The
// caller has already verified compatibility.
func (p *Predictor) applyState(s *PredictorState) {
	copy(p.selector, s.Selector)
	copy(p.local, s.Local)
	copy(p.localHis, s.LocalHis)
	copy(p.global, s.Global)
	p.ghr = s.GHR
	copy(p.btbTags, s.BTBTags)
	copy(p.btbTargets, s.BTBTargets)
	p.Stats = s.Stats
}

// SetState restores a snapshot taken by State, copying into the predictor's
// existing tables. A geometry mismatch is rejected before any mutation.
func (p *Predictor) SetState(s *PredictorState) error {
	if err := p.compatibleState(s); err != nil {
		return err
	}
	p.applyState(s)
	return nil
}

// CoreWarmState is the functional, stream-position-dependent state of one
// core outside the memory hierarchy: predictor tables, the store-forwarding
// ring and its counting filter, the current fetch line and the data
// miss-run flag, plus the stream position it was captured at. It carries no
// timing state (clock, Stats, fetch gate) — those are cell-local and evolve
// identically whether a stretch was warmed or restored.
type CoreWarmState struct {
	Pos uint64

	Pred PredictorState

	StoreAddrs  []uint64
	StoreHead   int
	StoreCounts [256]uint8

	CurLine     uint64
	DataMissRun bool
}

// WarmState pairs a core's functional state with its single-core memory
// hierarchy — the full content of one fast-forward checkpoint.
type WarmState struct {
	Core CoreWarmState
	Mem  *mem.HierState
}

// FillsSupported reports whether this warmer classifies misses by fill
// level — a ladder builder without it could not serve design-independent
// fill counts and is rejected at construction (see internal/warm).
func (w *FunctionalWarmer) FillsSupported() bool { return w.fillsOK }

// Snapshot captures the warmer's full functional state at its current
// logical stream position. It requires a replayer-backed warmer over a
// single-core hierarchy — the standalone builder configuration the snapshot
// cache uses (see internal/warm).
func (w *FunctionalWarmer) Snapshot() (*WarmState, error) {
	rp, ok := w.src.(*trace.Replayer)
	if !ok {
		return nil, errors.New("uarch: warm snapshot requires a replayer-backed stream")
	}
	if w.hier == nil {
		return nil, errors.New("uarch: warm snapshot requires a single-core hierarchy")
	}
	// Instructions batched into buf past pos belong to the stream's future:
	// the logical position is the replayer position minus that lookahead.
	buffered := len(w.buf) - w.pos
	return &WarmState{
		Core: CoreWarmState{
			Pos:         uint64(rp.Pos() - buffered),
			Pred:        w.pred.State(),
			StoreAddrs:  append([]uint64(nil), w.stAddrs...),
			StoreHead:   w.stHead,
			StoreCounts: *w.stCounts,
			CurLine:     w.curLine,
			DataMissRun: w.dataMissRun,
		},
		Mem: w.hier.State(),
	}, nil
}

// Restore replaces the warmer's functional state with a snapshot taken by
// Snapshot and repositions the replayer at the snapshot's stream position.
// Everything is copied in (copy-on-restore); a geometry mismatch on any
// component is rejected before any mutation.
func (w *FunctionalWarmer) Restore(s *WarmState) error {
	rp, ok := w.src.(*trace.Replayer)
	if !ok {
		return errors.New("uarch: warm restore requires a replayer-backed stream")
	}
	if w.hier == nil {
		return errors.New("uarch: warm restore requires a single-core hierarchy")
	}
	if len(s.Core.StoreAddrs) != len(w.stAddrs) {
		return fmt.Errorf("uarch: snapshot store ring size %d does not match %d",
			len(s.Core.StoreAddrs), len(w.stAddrs))
	}
	if err := w.pred.compatibleState(&s.Core.Pred); err != nil {
		return err
	}
	if err := w.hier.SetState(s.Mem); err != nil {
		return err
	}
	w.pred.applyState(&s.Core.Pred)
	copy(w.stAddrs, s.Core.StoreAddrs)
	w.stHead = s.Core.StoreHead
	*w.stCounts = s.Core.StoreCounts
	w.curLine = s.Core.CurLine
	w.dataMissRun = s.Core.DataMissRun
	w.buf = w.buf[:0]
	w.pos = 0
	rp.Seek(int(s.Core.Pos))
	return nil
}

// StreamPos returns the core's logical stream position — the number of
// trace instructions consumed by fetch or fast-forward, exclusive of
// batched-ahead buffer entries — when the source is a replayer. Streams
// without random access (generators) report ok=false.
func (c *Core) StreamPos() (pos uint64, ok bool) {
	rp, ok := c.src.(*trace.Replayer)
	if !ok {
		return 0, false
	}
	return uint64(rp.Pos() - (len(c.instBuf) - c.instPos)), true
}

// StreamCounters returns the cumulative functional observables of every
// trace instruction the DETAILED frontend has probed since construction, in
// WarmObs form. Because all hierarchy/predictor/forwarding probes happen in
// fetch exactly once per trace instruction, deltas of this value are the
// exact functional observables of any detailed stretch — how a snapshot
// binding accounts for the gaps between fast-forward calls. Wrong-path and
// squash-discarded instructions are included (Fetched counts them), which
// is precisely the probe population the warmer mirrors.
func (c *Core) StreamCounters() WarmObs {
	return WarmObs{
		Instrs:      c.Stats.Fetched,
		ExtraFetch:  c.Stats.MemExtraFetch,
		ExtraData:   c.Stats.MemExtraData,
		Mispredicts: c.Stats.PredSquashes,
		MissRuns:    c.Stats.MissRuns,
		LongOps:     c.Stats.KindCount[trace.Div] + c.Stats.KindCount[trace.FPDiv],
		FetchFills:  c.fetchFills,
		DataFills:   c.dataFills,
	}
}

// PeekWarmObs returns the warm observables accumulated since the last
// drain (RunSampled's takeWarmObs) without draining them.
func (c *Core) PeekWarmObs() WarmObs {
	if c.fwd == nil {
		return WarmObs{}
	}
	return c.fwd.obs
}

// AddWarmObs credits externally reconstructed fast-forward observables to
// the accumulator RunSampled drains — how a snapshot binding accounts for
// a stretch it restored past instead of warming.
func (c *Core) AddWarmObs(o WarmObs) {
	w := c.warmer()
	w.obs = w.obs.Add(o)
}

// SetFastForward installs a hook that intercepts FastForward; nil
// uninstalls it. The hook is responsible for advancing the stream by n
// instructions — typically by restoring a snapshot for a prefix and calling
// FastForwardLocal for the remainder (see internal/warm).
func (c *Core) SetFastForward(hook func(n uint64)) {
	c.ffHook = hook
}

// FillsSupported reports whether miss-level classification is active: the
// backend is a single-core hierarchy whose three fill latencies are
// positive and strictly increasing, so every miss's extra latency
// identifies its fill level unambiguously.
func (c *Core) FillsSupported() bool { return c.fillsOK }

// FillLatencies returns this design's three per-level fill prices (extra
// cycles for an L2 hit, an L3 hit, and a DRAM fill) when classification is
// supported. A snapshot binding prices the design-independent fill counts
// of a skipped stretch with these values to reconstruct the exact
// ExtraFetch/ExtraData sums this cell's own warming would have produced.
func (c *Core) FillLatencies() (l2, l3, dram int, ok bool) {
	h, hok := c.mem.(*mem.Hierarchy)
	if !hok || !c.fillsOK {
		return 0, 0, 0, false
	}
	l2, l3, dram = h.FillLatencies()
	return l2, l3, dram, true
}

// snapshotCoreWarm captures the core-side functional state at the given
// stream position.
func (c *Core) snapshotCoreWarm(pos uint64) CoreWarmState {
	return CoreWarmState{
		Pos:         pos,
		Pred:        c.pred.State(),
		StoreAddrs:  append([]uint64(nil), c.storeAddrs...),
		StoreHead:   c.storeHead,
		StoreCounts: c.stCounts,
		CurLine:     c.curFetchLine,
		DataMissRun: c.dataMissRun,
	}
}

// SnapshotCoreWarm captures the core's functional state WITHOUT its memory
// backend — the multicore form, where the shared memory system is captured
// separately (mem.Multicore.State) and per-core state is paired with it.
func (c *Core) SnapshotCoreWarm() (*CoreWarmState, error) {
	pos, ok := c.StreamPos()
	if !ok {
		return nil, errors.New("uarch: warm snapshot requires a replayer-backed stream")
	}
	s := c.snapshotCoreWarm(pos)
	return &s, nil
}

// applyCoreWarm copies the validated core-side state in, discards in-flight
// pipeline state and repositions the stream. The caller has already
// validated ring size and predictor geometry.
func (c *Core) applyCoreWarm(s *CoreWarmState, rp *trace.Replayer) {
	c.resetPipeline()
	c.pred.applyState(&s.Pred)
	copy(c.storeAddrs, s.StoreAddrs)
	c.storeHead = s.StoreHead
	c.stCounts = s.StoreCounts
	c.curFetchLine = s.CurLine
	c.dataMissRun = s.DataMissRun
	c.instBuf = c.instBuf[:0]
	c.instPos = 0
	rp.Seek(int(s.Pos))
}

// RestoreCoreWarm restores core-side functional state captured by
// SnapshotCoreWarm: pipeline reset, predictor and store ring copied in,
// prefill buffer dropped, replayer repositioned. The memory backend is the
// caller's responsibility (multicore restores it once for all cores).
// Timing state — clock, Stats, fetch gate — is preserved, exactly as a
// plain FastForward would preserve it.
func (c *Core) RestoreCoreWarm(s *CoreWarmState) error {
	rp, ok := c.src.(*trace.Replayer)
	if !ok {
		return errors.New("uarch: warm restore requires a replayer-backed stream")
	}
	if len(s.StoreAddrs) != len(c.storeAddrs) {
		return fmt.Errorf("uarch: snapshot store ring size %d does not match %d",
			len(s.StoreAddrs), len(c.storeAddrs))
	}
	if err := c.pred.compatibleState(&s.Pred); err != nil {
		return err
	}
	c.applyCoreWarm(s, rp)
	return nil
}

// SnapshotWarm captures the core's functional state AND its single-core
// hierarchy at the current stream position — the full equivalent of a
// builder checkpoint, taken from a live core.
func (c *Core) SnapshotWarm() (*WarmState, error) {
	h, ok := c.mem.(*mem.Hierarchy)
	if !ok {
		return nil, errors.New("uarch: warm snapshot requires a single-core hierarchy")
	}
	pos, ok := c.StreamPos()
	if !ok {
		return nil, errors.New("uarch: warm snapshot requires a replayer-backed stream")
	}
	return &WarmState{Core: c.snapshotCoreWarm(pos), Mem: h.State()}, nil
}

// RestoreWarm restores a full checkpoint — hierarchy and core-side state —
// into this core, validating every component's geometry before mutating
// any. On success the core stands at the snapshot's stream position with an
// empty pipeline, exactly as if it had fast-forwarded there itself.
func (c *Core) RestoreWarm(s *WarmState) error {
	h, ok := c.mem.(*mem.Hierarchy)
	if !ok {
		return errors.New("uarch: warm restore requires a single-core hierarchy")
	}
	rp, ok := c.src.(*trace.Replayer)
	if !ok {
		return errors.New("uarch: warm restore requires a replayer-backed stream")
	}
	if len(s.Core.StoreAddrs) != len(c.storeAddrs) {
		return fmt.Errorf("uarch: snapshot store ring size %d does not match %d",
			len(s.Core.StoreAddrs), len(c.storeAddrs))
	}
	if err := c.pred.compatibleState(&s.Core.Pred); err != nil {
		return err
	}
	if err := h.SetState(s.Mem); err != nil {
		return err
	}
	c.applyCoreWarm(&s.Core, rp)
	return nil
}
