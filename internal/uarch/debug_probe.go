package uarch

// DebugState exposes internal occupancy for tests and troubleshooting.
func (c *Core) DebugState() (fetchBlocked bool, robCount, iqCount, frontLen int) {
	return c.now < c.fetchGate, c.count, c.iqCount, c.fqLen
}

// DebugReadyWaiting counts waiting entries and how many of them are ready
// to issue right now.
func (c *Core) DebugReadyWaiting() (waiting, ready int) {
	idx := c.head
	for scanned := 0; scanned < c.count; scanned++ {
		e := &c.rob[idx]
		if e.state == stWaiting {
			waiting++
			if c.ready(e) {
				ready++
			}
		}
		idx = (idx + 1) % len(c.rob)
	}
	return waiting, ready
}

// DebugWaitingOn classifies what the waiting entries' producers are.
func (c *Core) DebugWaitingOn() (onLoad, onFP, onALU, onOther int) {
	idx := c.head
	for scanned := 0; scanned < c.count; scanned++ {
		e := &c.rob[idx]
		if e.state == stWaiting && !c.ready(e) {
			blocker := e.prod1
			p := &c.rob[blocker.slot]
			if blocker.seq == 0 || p.seq != blocker.seq || (p.state == stDone && p.doneAt <= c.now) {
				blocker = e.prod2
				p = &c.rob[blocker.slot]
			}
			switch {
			case p.kind == 6: // load
				onLoad++
			case p.kind >= 3 && p.kind <= 5:
				onFP++
			case p.kind == 0:
				onALU++
			default:
				onOther++
			}
		}
		idx = (idx + 1) % len(c.rob)
	}
	return
}

// DebugCounters returns (issuedTotal, cyclesAtMaxIssue) style counters by
// re-running issue bookkeeping; instead we expose now + simple sums.
func (c *Core) DebugNow() int64 { return c.now }
