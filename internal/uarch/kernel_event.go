package uarch

import (
	"math"
	"sort"

	"vertical3d/internal/trace"
)

// This file is the event-driven simulation kernel. It replaces the
// reference kernel's per-cycle O(ROBSize) issue scan and O(SQSize) store
// CAM with:
//
//   - producer→consumer wakeup lists (wakes): a dispatching instruction
//     registers on each in-flight producer; when the producer issues and
//     its doneAt becomes known, it notifies its consumers, so ready() is
//     never re-polled;
//   - a time-ordered wakeup heap (wakeHeap) feeding a seq-ordered ready
//     queue (readyQ): issue touches only entries that are actually ready,
//     in oldest-first program order — the same selection the scan makes;
//   - a line-address-indexed store map (storeIdx) mirroring the forwarding
//     ring, making the per-load search a hash lookup;
//   - idle-cycle skipping in Run: when no stage can commit, issue,
//     dispatch or fetch, now jumps to the next event time with batched
//     Cycles/stall accounting.
//
// Squashes never walk the scheduling queues: sequence numbers are unique
// for the core's lifetime, so stale (slot, seq) refs left behind by a
// flush simply stop validating and are dropped when next touched.
//
// The differential oracle (oracle_test.go) checks bit-identical Stats and
// HierStats against the reference kernel for every workload profile.

// registerDeps records the freshly dispatched entry's producer
// dependencies. Entries with no unresolved producers are scheduled
// immediately; the earliest cycle an entry can issue is the one after its
// dispatch, matching the reference scan which runs before dispatch.
func (c *Core) registerDeps(slot int) {
	e := &c.rob[slot]
	e.nwait = 0
	e.readyAt = 0
	c.wakes[slot] = c.wakes[slot][:0] // drop stale consumers of the slot's previous occupant
	for _, ref := range [2]regRef{e.prod1, e.prod2} {
		if ref.seq == 0 {
			continue
		}
		p := &c.rob[ref.slot]
		if p.seq != ref.seq {
			continue // producer committed or squashed: value available
		}
		if p.state == stWaiting {
			c.wakes[ref.slot] = append(c.wakes[ref.slot], qref{slot: int32(slot), seq: e.seq})
			e.nwait++
			continue
		}
		// Issued producer: completion time already known.
		if p.doneAt > e.readyAt {
			e.readyAt = p.doneAt
		}
	}
	if e.nwait == 0 {
		at := e.readyAt
		if at < c.now+1 {
			at = c.now + 1
		}
		c.wakePush(wakeEv{at: at, slot: int32(slot), seq: e.seq})
	}
}

// notifyConsumers wakes the consumers registered on the just-issued
// producer in the given slot. Consumers squashed since registration fail
// the seq check and are dropped.
func (c *Core) notifyConsumers(slot int32, doneAt int64) {
	list := c.wakes[slot]
	for _, w := range list {
		ce := &c.rob[w.slot]
		if ce.seq != w.seq || ce.state != stWaiting || ce.nwait == 0 {
			continue
		}
		if doneAt > ce.readyAt {
			ce.readyAt = doneAt
		}
		ce.nwait--
		if ce.nwait == 0 {
			at := ce.readyAt
			if at < c.now+1 {
				at = c.now + 1
			}
			c.wakePush(wakeEv{at: at, slot: w.slot, seq: w.seq})
		}
	}
	c.wakes[slot] = list[:0]
}

// wakePush inserts into the min-heap ordered by wake time.
func (c *Core) wakePush(ev wakeEv) {
	c.wakeHeap = append(c.wakeHeap, ev)
	i := len(c.wakeHeap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if c.wakeHeap[p].at <= c.wakeHeap[i].at {
			break
		}
		c.wakeHeap[p], c.wakeHeap[i] = c.wakeHeap[i], c.wakeHeap[p]
		i = p
	}
}

// wakePop removes and returns the earliest wakeup.
func (c *Core) wakePop() wakeEv {
	h := c.wakeHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	c.wakeHeap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l].at < h[m].at {
			m = l
		}
		if r < n && h[r].at < h[m].at {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// readyInsert adds a ready entry keeping readyQ sorted by seq (program
// order), preserving the scan kernel's oldest-first selection.
func (c *Core) readyInsert(r qref) {
	q := c.readyQ
	i := sort.Search(len(q), func(i int) bool { return q[i].seq > r.seq })
	q = append(q, qref{})
	copy(q[i+1:], q[i:])
	q[i] = r
	c.readyQ = q
}

// issueEvent selects and executes ready instructions, oldest first,
// respecting functional-unit ports — the event-driven counterpart of
// issueRef with identical selection semantics.
func (c *Core) issueEvent() {
	// Promote wakeups that are due into the ready queue.
	for len(c.wakeHeap) > 0 && c.wakeHeap[0].at <= c.now {
		w := c.wakePop()
		e := &c.rob[w.slot]
		if e.seq == w.seq && e.state == stWaiting {
			c.readyInsert(qref{slot: w.slot, seq: w.seq})
		}
	}
	if len(c.readyQ) == 0 {
		return
	}

	p := c.cfg.Core
	budget := c.newBudget()
	issued := 0
	kept := 0 // write pointer: entries retained after a budget skip
	i := 0
	for ; i < len(c.readyQ) && issued < p.IssueWidth; i++ {
		r := c.readyQ[i]
		e := &c.rob[r.slot]
		if e.seq != r.seq || e.state != stWaiting {
			continue // squashed or already handled: drop lazily
		}
		ok, lat := c.allocFU(e, &budget, c.memLatencyEvent)
		if !ok {
			// Port conflict: the scan kernel skips the entry but keeps
			// scanning younger ones; keep it ready for a later cycle.
			c.readyQ[kept] = r
			kept++
			continue
		}

		c.markIssued(e, lat)
		issued++
		c.notifyConsumers(r.slot, e.doneAt)

		if e.kind == trace.Branch && (e.mispred || e.btbMiss) {
			c.squashAfter(int(r.slot), e)
			c.finish(e)
			i++
			break
		}
		c.finish(e)
	}
	// Compact: keep budget-skipped entries plus the unprocessed tail, both
	// already in seq order (kept <= i always).
	c.readyQ = append(c.readyQ[:kept], c.readyQ[i:]...)
}

// memLatencyEvent is the event kernel's load/store latency: identical
// semantics to memLatencyRef, but the per-load store-queue search is a
// line-address map lookup. The ring is still maintained — it defines which
// record a new store evicts — and the map mirrors its live entries.
func (c *Core) memLatencyEvent(e *robEntry) int {
	p := c.cfg.Core
	la := e.addr &^ 7
	if e.kind == trace.Store {
		if old := c.storeSeqs[c.storeHead]; old != 0 {
			c.storeIdxRemove(c.storeAddrs[c.storeHead], old)
		}
		c.storeAddrs[c.storeHead] = la
		c.storeSeqs[c.storeHead] = e.seq
		c.storeHead = (c.storeHead + 1) % len(c.storeAddrs)
		c.storeIdx[la] = append(c.storeIdx[la], e.seq)
		return p.LSULatency
	}
	c.Stats.SQSearches++
	for _, s := range c.storeIdx[la] {
		if s < e.seq {
			c.Stats.Forwards++
			return p.LSULatency + 1
		}
	}
	extra := c.mem.DataExtra(c.ID, e.addr, false)
	if extra == 0 {
		c.Stats.LoadL1Hits++
		return p.LoadToUseCycles
	}
	c.Stats.LoadL1Misses++
	return p.LoadToUseCycles + extra
}

// storeIdxRemove drops one (line, seq) forwarding record from the map.
func (c *Core) storeIdxRemove(la, seq uint64) {
	ss := c.storeIdx[la]
	for i, s := range ss {
		if s == seq {
			ss[i] = ss[len(ss)-1]
			ss = ss[:len(ss)-1]
			break
		}
	}
	if len(ss) == 0 {
		delete(c.storeIdx, la)
	} else {
		c.storeIdx[la] = ss
	}
}

// skipIdle fast-forwards now over cycles in which Step could only burn
// time: nothing can commit (head not complete), issue (ready queue empty),
// dispatch (frontend empty, not yet decoded, or resource-stalled) or fetch
// (gated or frontend full). The skipped window is provably frozen — the
// only per-cycle state changes the reference kernel would make are
// Cycles++ and, when dispatch is resource-stalled, exactly one stall
// counter++ — so both are batched and the resulting Stats stay
// bit-identical. Skipping stops at the earliest next event: the head's
// completion, the earliest operand wakeup, the frontend head's decode
// time, or the fetch gate.
func (c *Core) skipIdle() {
	if len(c.readyQ) > 0 {
		// Something may issue next cycle (possibly only after a div unit
		// frees, but then issue still has to re-evaluate each cycle).
		return
	}
	next := int64(math.MaxInt64)

	// Commit: the head entry's completion is the only commit event.
	if c.count > 0 {
		h := &c.rob[c.head]
		if h.state == stDone {
			if h.doneAt <= c.now+1 {
				return // commit can retire next cycle
			}
			next = h.doneAt
		}
		// A waiting head is covered by the wakeup heap below.
	}

	// Issue: earliest scheduled operand wakeup (possibly a stale ref from
	// a squash — that only shortens the skip, never overshoots it).
	if len(c.wakeHeap) > 0 {
		if t := c.wakeHeap[0].at; t <= c.now+1 {
			return
		} else if t < next {
			next = t
		}
	}

	// Dispatch: either the frontend head is still decoding (its readyAt is
	// an event), or it is ready and blocked on a structural resource (one
	// stall counter ticks every skipped cycle), or it can dispatch.
	var stall *uint64
	if c.fqLen > 0 {
		f := &c.fq[c.fqHead]
		if f.readyAt > c.now+1 {
			if f.readyAt < next {
				next = f.readyAt
			}
		} else {
			stall = c.dispatchStall(&f.in)
			if stall == nil {
				return // dispatch can make progress next cycle
			}
		}
	}

	// Fetch: runs whenever the gate has passed and the frontend has room.
	if c.fqLen < 2*c.cfg.Core.FetchWidth {
		if c.fetchGate <= c.now+1 {
			return
		}
		if c.fetchGate < next {
			next = c.fetchGate
		}
	}

	if next == math.MaxInt64 || next <= c.now+1 {
		return
	}
	// Cycles now+1 .. next-1 are identical no-ops; batch them.
	skipped := next - c.now - 1
	c.now += skipped
	c.Stats.Cycles += uint64(skipped)
	if stall != nil {
		*stall += uint64(skipped)
	}
}

// dispatchStall returns the stall counter dispatch would increment for the
// decoded frontend head this cycle, replicating dispatch's check order, or
// nil when the instruction can dispatch.
func (c *Core) dispatchStall(in *trace.Inst) *uint64 {
	p := c.cfg.Core
	if c.count >= p.ROBSize {
		return &c.Stats.StallROB
	}
	if c.iqCount >= p.IQSize {
		return &c.Stats.StallIQ
	}
	switch in.Kind {
	case trace.Load:
		if c.lqCount >= p.LQSize {
			return &c.Stats.StallLQ
		}
	case trace.Store:
		if c.sqCount >= p.SQSize {
			return &c.Stats.StallSQ
		}
	}
	if in.Dst >= 0 && c.freePhys <= 0 {
		return &c.Stats.StallRF
	}
	return nil
}
