package uarch

import (
	"math"

	"vertical3d/internal/trace"
)

// This file is the event-driven simulation kernel. It replaces the
// reference kernel's per-cycle O(ROBSize) issue scan and O(SQSize) store
// CAM with:
//
//   - producer→consumer wakeup lists (wakes): a dispatching instruction
//     registers on each in-flight producer; when the producer issues and
//     its doneAt becomes known, it notifies its consumers, so ready() is
//     never re-polled;
//   - a time-ordered wakeup heap (wakeHeap) feeding a seq-ordered ready
//     queue (readyQ): issue touches only entries that are actually ready,
//     in oldest-first program order — the same selection the scan makes;
//   - memory latencies read from the shared dispatch-time probe
//     (Core.memLatency), so issue performs no hierarchy access at all;
//   - idle-cycle skipping in Run: when no stage can commit, issue,
//     dispatch or fetch, now jumps to the next event time with batched
//     Cycles/stall accounting.
//
// Squashes never walk the scheduling queues: sequence numbers are unique
// for the core's lifetime, so stale (slot, seq) refs left behind by a
// flush simply stop validating and are dropped when next touched.
//
// The differential oracle (oracle_test.go) checks bit-identical Stats and
// HierStats against the reference kernel for every workload profile.

// wakeNode is one consumer registration in the wake-list arena: a slab of
// freelist-linked nodes replacing the previous per-slot []qref slices, so
// registering and notifying consumers never allocates in steady state and
// clearing a list is an O(list) splice back onto the freelist.
type wakeNode struct {
	next int32
	ref  qref
}

// wakeNil terminates arena chains (list heads and the freelist).
const wakeNil = int32(-1)

// wakeAdd pushes a consumer registration onto the producer slot's list,
// reusing a freelist node when one is available.
func (c *Core) wakeAdd(slot int32, r qref) {
	nd := wakeNode{next: c.wakeHead[slot], ref: r}
	idx := c.wakeFree
	if idx != wakeNil {
		c.wakeFree = c.wakeArena[idx].next
		c.wakeArena[idx] = nd
	} else {
		idx = int32(len(c.wakeArena))
		c.wakeArena = append(c.wakeArena, nd)
	}
	c.wakeHead[slot] = idx
}

// wakeDrop splices the slot's whole consumer list onto the freelist.
func (c *Core) wakeDrop(slot int32) {
	head := c.wakeHead[slot]
	if head == wakeNil {
		return
	}
	tail := head
	for c.wakeArena[tail].next != wakeNil {
		tail = c.wakeArena[tail].next
	}
	c.wakeArena[tail].next = c.wakeFree
	c.wakeFree = head
	c.wakeHead[slot] = wakeNil
}

// registerDeps records the freshly dispatched entry's producer
// dependencies. Entries with no unresolved producers are scheduled
// immediately; the earliest cycle an entry can issue is the one after its
// dispatch, matching the reference scan which runs before dispatch.
func (c *Core) registerDeps(slot int) {
	e := &c.rob[slot]
	e.nwait = 0
	e.readyAt = 0
	c.wakeDrop(int32(slot)) // drop stale consumers of the slot's previous occupant
	for _, ref := range [2]regRef{e.prod1, e.prod2} {
		if ref.seq == 0 {
			continue
		}
		p := &c.rob[ref.slot]
		if p.seq != ref.seq {
			continue // producer committed or squashed: value available
		}
		if p.state == stWaiting {
			c.wakeAdd(ref.slot, qref{slot: int32(slot), seq: e.seq})
			e.nwait++
			continue
		}
		// Issued producer: completion time already known.
		if p.doneAt > e.readyAt {
			e.readyAt = p.doneAt
		}
	}
	if e.nwait == 0 {
		at := e.readyAt
		if at < c.now+1 {
			at = c.now + 1
		}
		c.wakePush(wakeEv{at: at, slot: int32(slot), seq: e.seq})
	}
}

// notifyConsumers wakes the consumers registered on the just-issued
// producer in the given slot, freeing each arena node as it goes. Consumers
// squashed since registration fail the seq check and are dropped. The walk
// is newest-registration-first (push-front order); that is immaterial
// because each notification is independent — it only decrements the
// consumer's wait count and, at zero, schedules a wakeup whose eventual
// readyQ position is keyed by seq alone.
func (c *Core) notifyConsumers(slot int32, doneAt int64) {
	idx := c.wakeHead[slot]
	if idx == wakeNil {
		return
	}
	c.wakeHead[slot] = wakeNil
	for idx != wakeNil {
		nd := &c.wakeArena[idx]
		w := nd.ref
		next := nd.next
		nd.next = c.wakeFree
		c.wakeFree = idx
		idx = next

		ce := &c.rob[w.slot]
		if ce.seq != w.seq || ce.state != stWaiting || ce.nwait == 0 {
			continue
		}
		if doneAt > ce.readyAt {
			ce.readyAt = doneAt
		}
		ce.nwait--
		if ce.nwait == 0 {
			at := ce.readyAt
			if at < c.now+1 {
				at = c.now + 1
			}
			c.wakePush(wakeEv{at: at, slot: w.slot, seq: w.seq})
		}
	}
}

// wakePush inserts into the min-heap ordered by wake time.
func (c *Core) wakePush(ev wakeEv) {
	c.wakeHeap = append(c.wakeHeap, ev)
	i := len(c.wakeHeap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if c.wakeHeap[p].at <= c.wakeHeap[i].at {
			break
		}
		c.wakeHeap[p], c.wakeHeap[i] = c.wakeHeap[i], c.wakeHeap[p]
		i = p
	}
}

// wakePop removes and returns the earliest wakeup. The sift-down picks
// the smaller child branch-free, like readyPop: on equal wake times the
// left child wins, exactly as the two-conditional form chose, so pop
// order is unchanged (ties are harmless anyway — issueEvent drains every
// event due at or before now and re-validates against the ROB).
func (c *Core) wakePop() wakeEv {
	h := c.wakeHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	c.wakeHeap = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		r := l + 1
		m := l + b2i(r < n && h[r].at < h[l].at)
		if h[i].at <= h[m].at {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// readyPush inserts a ready entry into the seq-keyed min-heap. Sequence
// numbers are unique for the core's lifetime, so pop order is exactly
// program order — the same oldest-first selection the scan kernel makes —
// without the previous sorted-slice insert's O(n) memmove per entry.
func (c *Core) readyPush(r qref) {
	h := append(c.readyQ, r)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].seq <= h[i].seq {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	c.readyQ = h
}

// readyPop removes the oldest ready entry. The sift-down picks the smaller
// child branch-free: unique seqs mean no ties, so the comparison result
// indexes the child directly instead of a second conditional swap.
func (c *Core) readyPop() qref {
	h := c.readyQ
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	c.readyQ = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		r := l + 1
		m := l + b2i(r < n && h[r].seq < h[l].seq)
		if h[i].seq <= h[m].seq {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// issueEvent selects and executes ready instructions, oldest first,
// respecting functional-unit ports — the event-driven counterpart of
// issueRef with identical selection semantics.
func (c *Core) issueEvent() {
	// Promote wakeups that are due into the ready queue.
	for len(c.wakeHeap) > 0 && c.wakeHeap[0].at <= c.now {
		w := c.wakePop()
		e := &c.rob[w.slot]
		if e.seq == w.seq && e.state == stWaiting {
			c.readyPush(qref{slot: w.slot, seq: w.seq})
		}
	}
	if len(c.readyQ) == 0 {
		return
	}

	p := c.cfg.Core
	budget := c.newBudget()
	issued := 0
	kept := c.readyKept[:0] // port-conflict entries retained for a later cycle
	for len(c.readyQ) > 0 && issued < p.IssueWidth {
		r := c.readyPop()
		e := &c.rob[r.slot]
		if e.seq != r.seq || e.state != stWaiting {
			continue // squashed or already handled: drop lazily
		}
		ok, lat := c.allocFU(e, &budget, c.memLatency)
		if !ok {
			// Port conflict: the scan kernel skips the entry but keeps
			// scanning younger ones; keep it ready for a later cycle.
			kept = append(kept, r)
			continue
		}

		c.markIssued(e, lat)
		issued++
		c.notifyConsumers(r.slot, e.doneAt)

		if e.kind == trace.Branch && (e.mispred || e.btbMiss) {
			// Younger entries left in the heap are now stale refs; they
			// fail the seq check and drop lazily when next popped.
			c.squashAfter(int(r.slot), e)
			c.finish(e)
			break
		}
		c.finish(e)
	}
	// Re-arm port-conflicted entries for the next issue cycle.
	for _, r := range kept {
		c.readyPush(r)
	}
	c.readyKept = kept[:0]
}

// skipIdle fast-forwards now over cycles in which Step could only burn
// time: nothing can commit (head not complete), issue (ready queue empty),
// dispatch (frontend empty, not yet decoded, or resource-stalled) or fetch
// (gated or frontend full). The skipped window is provably frozen — the
// only per-cycle state changes the reference kernel would make are
// Cycles++ and, when dispatch is resource-stalled, exactly one stall
// counter++ — so both are batched and the resulting Stats stay
// bit-identical. Skipping stops at the earliest next event: the head's
// completion, the earliest operand wakeup, the frontend head's decode
// time, or the fetch gate.
func (c *Core) skipIdle() {
	if len(c.readyQ) > 0 {
		// Something may issue next cycle (possibly only after a div unit
		// frees, but then issue still has to re-evaluate each cycle).
		return
	}
	next := int64(math.MaxInt64)

	// Commit: the head entry's completion is the only commit event.
	if c.count > 0 {
		h := &c.rob[c.head]
		if h.state == stDone {
			if h.doneAt <= c.now+1 {
				return // commit can retire next cycle
			}
			next = h.doneAt
		}
		// A waiting head is covered by the wakeup heap below.
	}

	// Issue: earliest scheduled operand wakeup (possibly a stale ref from
	// a squash — that only shortens the skip, never overshoots it).
	if len(c.wakeHeap) > 0 {
		if t := c.wakeHeap[0].at; t <= c.now+1 {
			return
		} else if t < next {
			next = t
		}
	}

	// Dispatch: either the frontend head is still decoding (its readyAt is
	// an event), or it is ready and blocked on a structural resource (one
	// stall counter ticks every skipped cycle), or it can dispatch.
	var stall *uint64
	if c.fqLen > 0 {
		f := &c.fq[c.fqHead]
		if f.readyAt > c.now+1 {
			if f.readyAt < next {
				next = f.readyAt
			}
		} else {
			stall = c.dispatchStall(&f.in)
			if stall == nil {
				return // dispatch can make progress next cycle
			}
		}
	}

	// Fetch: runs whenever the gate has passed and the frontend has room.
	if c.fqLen < 2*c.cfg.Core.FetchWidth {
		if c.fetchGate <= c.now+1 {
			return
		}
		if c.fetchGate < next {
			next = c.fetchGate
		}
	}

	if next == math.MaxInt64 || next <= c.now+1 {
		return
	}
	// Cycles now+1 .. next-1 are identical no-ops; batch them.
	skipped := next - c.now - 1
	c.now += skipped
	c.Stats.Cycles += uint64(skipped)
	if stall != nil {
		*stall += uint64(skipped)
	}
}

// dispatchStall returns the stall counter dispatch would increment for the
// decoded frontend head this cycle, replicating dispatch's check order, or
// nil when the instruction can dispatch.
func (c *Core) dispatchStall(in *trace.Inst) *uint64 {
	p := c.cfg.Core
	if c.count >= p.ROBSize {
		return &c.Stats.StallROB
	}
	if c.iqCount >= p.IQSize {
		return &c.Stats.StallIQ
	}
	switch in.Kind {
	case trace.Load:
		if c.lqCount >= p.LQSize {
			return &c.Stats.StallLQ
		}
	case trace.Store:
		if c.sqCount >= p.SQSize {
			return &c.Stats.StallSQ
		}
	}
	if in.Dst >= 0 && c.freePhys <= 0 {
		return &c.Stats.StallRF
	}
	return nil
}
