package uarch

import (
	"fmt"
	"math"

	"vertical3d/internal/guard"
	"vertical3d/internal/trace"
)

// This file implements SMARTS-style interval sampling on top of the
// detailed core. A sampled run walks the instruction stream in fixed-size
// intervals, each split into four phases with the measured window centred:
//
//	|-- fast-forward --|- warm -|- measure -|-- fast-forward --|
//	 functional:        detailed  detailed,   functional
//	 caches+predictor   (discard) counted
//
// Fast-forward skips the out-of-order backend entirely; the short detailed
// warm phase rebuilds the pipeline-local state (ROB occupancy, in-flight
// misses, rename map) that the warmer cannot maintain; the measure phase
// is ordinary detailed simulation whose Stats are kept. Because the
// frontend performs all cache/predictor probes in program order (see
// Core.fetch), the warmer's probe sequence is bit-identical to detailed
// execution's — fast-forwarding loses no hierarchy or predictor fidelity
// at all.
//
// Centring the window matters because cache state is not stationary: the
// hierarchy keeps warming secularly over millions of instructions, so a
// window pinned to an interval's left edge would systematically measure
// colder caches than the interval it stands for. With the window at the
// centre, the first-order secular drift cancels. Each fast-forwarded
// region is then priced with its own interval's window rates (cycles and
// retirements per fetched instruction — see estimateFF), which keeps the
// estimate locally adaptive without fitting anything. The whole scheme is
// bounded against full simulation by the CPI-error oracle in
// sample_test.go (≤ 2% on every profile, both kernels).

// SampleParams sizes the sampling intervals.
type SampleParams struct {
	// Interval is the stream distance in instructions from the start of
	// one measured window to the start of the next (fast-forward + warm +
	// measure). Larger intervals fast-forward more and run faster; smaller
	// intervals measure more often and track phase behaviour more closely.
	Interval uint64

	// Warmup is the detailed-simulation distance run (and discarded)
	// before each measured window to refill the pipeline.
	Warmup uint64

	// Unit is the measured-window length in instructions.
	Unit uint64
}

// DefaultSampleParams returns the calibrated defaults: 100k-instruction
// intervals, 1k detailed warm, 4k measured — a 5% detailed fraction that
// keeps every profile's CPI error under the 2% bound. The speedup it buys
// depends on the kernel's detailed/fast-forward cost ratio: ~8–18× on the
// reference kernel, ~3.5–10× on the event kernel (squash-heavy profiles at
// the low end of each band), and ~10–75× for replacing full reference
// cells with sampled event cells (BENCH_sample.json has the measured
// cells).
func DefaultSampleParams() SampleParams {
	return SampleParams{Interval: 100_000, Warmup: 1_000, Unit: 4_000}
}

// Validate checks the interval geometry: all three phases positive-length
// and the warm+measure portion strictly inside the interval (an interval
// equal to warm+measure would never fast-forward and merely add noise).
func (p SampleParams) Validate() error {
	c := guard.New("uarch.SampleParams")
	c.Check(p.Interval > 0, "Interval", "must be > 0, got %d", p.Interval)
	c.Check(p.Warmup > 0, "Warmup", "must be > 0, got %d", p.Warmup)
	c.Check(p.Unit > 0, "Unit", "must be > 0, got %d", p.Unit)
	c.Check(p.Warmup+p.Unit <= p.Interval,
		"Interval", "warm+unit (%d) must fit inside the interval (%d)", p.Warmup+p.Unit, p.Interval)
	return c.Err()
}

// String renders the params as the compact interval:warmup:unit tuple used
// in journal identities and logs.
func (p SampleParams) String() string {
	return fmt.Sprintf("%d:%d:%d", p.Interval, p.Warmup, p.Unit)
}

// SampleParamsFrom builds SampleParams from command-line flag values: zeros
// take the calibrated defaults, and the result is validated when sampling
// is enabled (disabled runs ignore the geometry, so partial overrides are
// not an error there).
func SampleParamsFrom(enabled bool, interval, warmup, unit uint64) (SampleParams, error) {
	p := DefaultSampleParams()
	if interval != 0 {
		p.Interval = interval
	}
	if warmup != 0 {
		p.Warmup = warmup
	}
	if unit != 0 {
		p.Unit = unit
	}
	if enabled {
		if err := p.Validate(); err != nil {
			return SampleParams{}, err
		}
	}
	return p, nil
}

// SampleResult reports what a sampled run actually simulated.
type SampleResult struct {
	// Measured is the Stats sum over the measured windows only (warm-phase
	// and fast-forwarded instructions excluded). Extrapolate scales it to
	// the full run length.
	Measured Stats

	// FastForwarded and DetailedWarm count the instructions spent in the
	// respective phases; Windows counts measured windows.
	FastForwarded uint64
	DetailedWarm  uint64
	Windows       int

	// Streamed is the total stream distance the run covered (the n passed
	// to RunSampled). EstCycles and EstInstrs are the estimated detailed
	// cycle and retired-instruction counts over it: exact measured-window
	// values plus each fast-forwarded region priced at its own interval's
	// window rates (see estimateFF). Extrapolate reports the
	// EstCycles/EstInstrs CPI instead of the globally ratio-scaled measured
	// one — per-interval pricing tracks the secular warming of the caches,
	// which a single global ratio would average away.
	Streamed  uint64
	EstCycles uint64
	EstInstrs uint64

	// WarmCycles is the detailed cycle count of the discarded warm phases
	// (reported for accounting; excluded from EstCycles along with the warm
	// retirements, so the pipeline-refill ramp does not bias the estimate).
	WarmCycles uint64
}

// MeasuredInstrs returns the instructions retired inside measured windows.
func (r SampleResult) MeasuredInstrs() uint64 { return r.Measured.Instrs }

// WarmCPI returns the CPI of the discarded detailed warm phases, or 0
// when the run had none.
func (r SampleResult) WarmCPI() float64 {
	if r.DetailedWarm == 0 {
		return 0
	}
	return float64(r.WarmCycles) / float64(r.DetailedWarm)
}

// MeasuredCPI returns the CPI over the measured windows, or 0 when
// nothing was measured.
func (r SampleResult) MeasuredCPI() float64 {
	if r.Measured.Instrs == 0 {
		return 0
	}
	return float64(r.Measured.Cycles) / float64(r.Measured.Instrs)
}

// OracleDeviation is the sampled run's built-in self-check: the relative
// deviation |warm − measured| / measured between the warm-phase CPI and
// the measured CPI. The warm phases replay the same stream regions under
// the same detailed model immediately before each window, so on a healthy
// run the two rates agree up to the pipeline-refill ramp the warm phase
// absorbs; a large deviation means the sampling geometry is not capturing
// this workload's phase behaviour and the caller should fall back to full
// simulation (see the experiments layer's SampleErrorBudget). Returns 0
// when either phase retired nothing.
func (r SampleResult) OracleDeviation() float64 {
	w, m := r.WarmCPI(), r.MeasuredCPI()
	if w == 0 || m == 0 {
		return 0
	}
	d := (w - m) / m
	if d < 0 {
		d = -d
	}
	return d
}

// RunSampled advances the core n retired instructions' worth of stream
// using interval sampling and returns the per-window measurement sum.
// onWindow, when non-nil, is invoked with begin=true just before each
// measured window starts and begin=false just after it ends, so the caller
// can snapshot external state (the memory hierarchy's counters) over
// exactly the measured cycles.
//
// Each interval fast-forwards half its budget, runs detailed warm+measure
// at the centre, then fast-forwards the rest. The fast-forward phase
// counts trace instructions while the detailed phases count retirements,
// and squashes make those differ (a full run retires fewer instructions
// than it fetches) — so fast-forward trace lengths are scaled by the
// measured retire/fetch ratio, with cumulative accounting: every
// fast-forward tops the total functional trace distance up to
// (retire-equivalents so far)/ratio, so early chunks issued before the
// first window's ratio was known are corrected by later ones. This keeps
// the sampled run's stream footprint aligned with a full Run(n)'s:
// without it, a squash-heavy workload's sampled run would cover barely
// half the stream and measure systematically colder caches. The final
// partial interval degrades gracefully: a tail shorter than a window is
// fast-forwarded, except that at least one full warm+measure window
// always runs.
func (c *Core) RunSampled(n uint64, sp SampleParams, onWindow func(begin bool)) (SampleResult, error) {
	if err := sp.Validate(); err != nil {
		return SampleResult{}, err
	}
	res := SampleResult{Streamed: n}
	var wins []winObs
	var ffs []ffChunk
	c.takeWarmObs() // discard observables of any caller-driven fast-forward
	detailed := sp.Warmup + sp.Unit
	ratio := 1.0 // measured retire/fetch ratio; 1 until the first window
	var ffRetireEq, ffTrace uint64
	fastForward := func(retireEq uint64, win int) {
		if retireEq == 0 {
			return
		}
		// Cumulative top-up: convert the total fast-forwarded
		// retire-equivalents to trace instructions at the current ratio and
		// issue the shortfall, so a stale ratio on earlier chunks is
		// corrected here rather than accumulating as footprint drift.
		ffRetireEq += retireEq
		target := uint64(math.Round(float64(ffRetireEq) / ratio))
		if target <= ffTrace {
			return
		}
		t := target - ffTrace
		ffTrace = target
		c.FastForward(t)
		ffs = append(ffs, ffChunk{obs: c.takeWarmObs(), win: win})
		res.FastForwarded += t
	}
	remaining := n
	for remaining > 0 {
		var warm, unit uint64
		switch {
		case remaining >= detailed:
			warm, unit = sp.Warmup, sp.Unit
		case res.Windows > 0:
			// Tail shorter than a window: fast-forward it (priced at the
			// last window's rates) and stop rather than emit a structurally
			// different (truncated) measurement.
			fastForward(remaining, res.Windows-1)
			remaining = 0
			continue
		default:
			// The whole run is shorter than one window: shrink the warm
			// phase so at least one instruction is measured.
			warm = min(sp.Warmup, remaining-1)
			unit = remaining - warm
		}
		span := min(sp.Interval, remaining)
		ffBudget := span - min(warm+unit, span)
		lead := ffBudget / 2

		// Leading fast-forward: place the measured window at the interval's
		// centre so the secular warming of the caches averages out instead
		// of biasing every window toward the interval's cold edge. The
		// chunk is priced at the upcoming window's rates.
		fastForward(lead, res.Windows)

		// Detailed warm: refill the pipeline after the fast-forward. Both
		// cycles and retirements are discarded from the estimate — the warm
		// phase absorbs the pipeline-refill ramp, whose above-steady-state
		// CPI would otherwise bias it.
		start := c.Stats
		c.Run(start.Instrs + warm)
		res.WarmCycles += c.Stats.Cycles - start.Cycles
		res.DetailedWarm += warm

		// Measured window.
		if onWindow != nil {
			onWindow(true)
		}
		before := c.Stats
		c.Run(c.Stats.Instrs + unit)
		d := c.Stats.Sub(before)
		res.Measured = res.Measured.Add(d)
		wins = append(wins, winObs{
			cycles:  float64(d.Cycles),
			instrs:  float64(d.Instrs),
			fetched: float64(max(d.Fetched, 1)),
			z:       statObs(d),
		})
		if onWindow != nil {
			onWindow(false)
		}
		res.Windows++
		ratio = float64(res.Measured.Instrs) / float64(max(res.Measured.Fetched, 1))
		ratio = min(max(ratio, 0.1), 1)

		// Trailing fast-forward, priced at the window just measured.
		fastForward(ffBudget-lead, res.Windows-1)
		remaining -= span
	}
	ffCycles, ffInstrs := estimateFF(wins, ffs)
	res.EstCycles = res.Measured.Cycles + ffCycles
	res.EstInstrs = res.Measured.Instrs + ffInstrs
	return res, nil
}

// winObs is one measured window's observation: detailed cycles, retired
// instructions, the fetched (trace) population they came from, and the
// functional observable counts over that population (same accounting as
// the warmer's WarmObs — see statObs).
type winObs struct {
	cycles  float64
	instrs  float64
	fetched float64
	z       [nObs]float64
}

// nObs is the control-variate feature count: extra memory-miss cycles
// (fetch + data), data-miss bursts, squash triggers, divide-class ops —
// per fetched instruction once normalised. Fetch and data miss cycles are
// merged into one feature deliberately: they are physically commensurate
// (both are hierarchy latency added to the pipeline) and merging trims the
// parameter count the fit must support out-of-sample. Miss bursts are kept
// separate from miss cycles because they carry the orthogonal information:
// how much of the miss latency overlaps inside the out-of-order window.
const nObs = 4

// statObs projects a measured window's Stats delta onto the features the
// functional warmer collects for fast-forwarded regions, with identical
// accounting on both sides (WarmObs documents the mirroring): every counter
// is fetch-time state covering the full fetched population, which the
// warmer likewise observes exactly once per stream instruction.
func statObs(d Stats) [nObs]float64 {
	return [nObs]float64{
		float64(d.MemExtraFetch + d.MemExtraData),
		float64(d.MissRuns),
		float64(d.PredSquashes),
		float64(d.KindCount[trace.Div] + d.KindCount[trace.FPDiv]),
	}
}

func warmObsVec(o WarmObs) [nObs]float64 {
	return [nObs]float64{
		float64(o.ExtraFetch + o.ExtraData),
		float64(o.MissRuns),
		float64(o.Mispredicts),
		float64(o.LongOps),
	}
}

// ffChunk is one fast-forwarded region's functional observation tagged with
// the index of the measured window that prices it — the window at the
// centre of the same sampling interval.
type ffChunk struct {
	obs WarmObs
	win int
}

// estimateFF predicts the detailed cycle and retired-instruction counts of
// the fast-forwarded regions. Each region is priced at its own interval's
// window rates — cycles and retirements per fetched instruction — because
// both vary secularly as the caches warm over the run: a region early in
// the stream costs more cycles per instruction than a late one, and its
// local window has measured exactly that. Rates are per fetched (trace)
// instruction, not per retirement, because fast-forwarded regions are
// counted in trace instructions and squashes make the two differ; the
// window's own retire fraction converts back.
//
// On top of the stratified ratio, a control-variate correction removes the
// part of each window's sampling noise that the functional observables
// explain: a window that happened to catch more cache misses than its
// interval's average reads a high cycle rate, but the warmer measured the
// surrounding region's true miss rate exactly, and the deviation term
// β·(z_ff − z_win) cancels the excess. The slopes β are fitted once across
// all windows on mean-centred rates — a well-conditioned nObs-parameter
// fit — and because the correction is a deviation from the interval's own
// window, its expectation is ~0: a poor fit costs variance reduction, not
// bias. Per-region corrections are clamped to ±half the local rate so a
// degenerate fit cannot run away; with too few windows to fit, β = 0 and
// the estimator degrades to the plain stratified ratio.
func estimateFF(wins []winObs, ffs []ffChunk) (cycles, instrs uint64) {
	betaC, okC := fitDeviations(wins, func(w winObs) float64 { return w.cycles })
	betaR, okR := fitDeviations(wins, func(w winObs) float64 { return w.instrs })
	var cyc, ret float64
	for _, ch := range ffs {
		w := wins[ch.win]
		f := float64(ch.obs.Instrs)
		if f == 0 {
			continue
		}
		zff := warmObsVec(ch.obs)
		rC := w.cycles / w.fetched
		rR := w.instrs / w.fetched
		if okC {
			rC = correctRate(rC, betaC, w, zff, f)
		}
		if okR {
			rR = min(correctRate(rR, betaR, w, zff, f), 1)
		}
		cyc += f * rC
		ret += f * rR
	}
	return uint64(math.Round(cyc)), uint64(math.Round(ret))
}

// correctRate applies the control-variate deviation term to a window rate:
// rate + β·(z_ff/f_ff − z_win/f_win), clamped to ±50% of the base rate.
func correctRate(rate float64, beta [nObs]float64, w winObs, zff [nObs]float64, fff float64) float64 {
	var corr float64
	for k := 0; k < nObs; k++ {
		corr += beta[k] * (zff[k]/fff - w.z[k]/w.fetched)
	}
	corr = min(max(corr, -0.5*rate), 0.5*rate)
	return rate + corr
}

// devObs is one window's mean-centred observation: rate deviations of the
// observables and the response, weighted by window size.
type devObs struct {
	dz [nObs]float64
	dr float64
	wt float64
}

// centre converts windows to mean-centred rate deviations (per fetched
// instruction, weighted by window size). Centring removes the intercept
// and the dominant common mode, leaving only window-to-window fluctuation.
func centre(wins []winObs, y func(winObs) float64) []devObs {
	var wt, mr float64
	var mz [nObs]float64
	for _, w := range wins {
		wt += w.fetched
		mr += y(w)
		for k := 0; k < nObs; k++ {
			mz[k] += w.z[k]
		}
	}
	mr /= wt
	for k := range mz {
		mz[k] /= wt
	}
	out := make([]devObs, len(wins))
	for i, w := range wins {
		d := devObs{dr: y(w)/w.fetched - mr, wt: w.fetched}
		for k := 0; k < nObs; k++ {
			d.dz[k] = w.z[k]/w.fetched - mz[k]
		}
		out[i] = d
	}
	return out
}

// solveDev solves the weighted ridge normal equations of a deviation set
// over the active feature subset; inactive features keep a zero slope.
func solveDev(set []devObs, mask []int) ([nObs]float64, bool) {
	var beta [nObs]float64
	m := len(mask)
	var a [nObs][nObs]float64
	var b [nObs]float64
	for _, d := range set {
		for i, fi := range mask {
			for j, fj := range mask {
				a[i][j] += d.wt * d.dz[fi] * d.dz[fj]
			}
			b[i] += d.wt * d.dz[fi] * d.dr
		}
	}
	for i := 0; i < m; i++ {
		a[i][i] += 1e-3*a[i][i] + 1e-12
	}
	// Gaussian elimination with partial pivoting on the small system.
	for col := 0; col < m; col++ {
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-30 {
			return [nObs]float64{}, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for k := col; k < m; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	var x [nObs]float64
	for i := m - 1; i >= 0; i-- {
		v := b[i]
		for k := i + 1; k < m; k++ {
			v -= a[i][k] * x[k]
		}
		x[i] = v / a[i][i]
	}
	for i, fi := range mask {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return [nObs]float64{}, false
		}
		beta[fi] = x[i]
	}
	return beta, true
}

// sseDev returns the weighted squared error of predicting a deviation set's
// responses with the given slopes (all-zero slopes give the baseline).
func sseDev(set []devObs, beta [nObs]float64) float64 {
	var sse float64
	for _, d := range set {
		p := d.dr
		for k := 0; k < nObs; k++ {
			p -= beta[k] * d.dz[k]
		}
		sse += d.wt * p * p
	}
	return sse
}

// cvMasks is the feature-subset cascade fitDeviations tries, richest
// first: all four features, then memory-only subsets of decreasing size
// (miss cycles + bursts, bursts alone, cycles alone). A subset is used
// only if it survives cross-validation, so profiles where squashes or
// divides are pure noise automatically drop to a smaller model.
var cvMasks = [][]int{{0, 1, 2, 3}, {0, 1, 2}, {0, 1}, {1}, {0}}

// fitDeviations fits the response rate (per fetched instruction) against
// the feature rates across windows and gates the result on split-half
// cross-validation: slopes fitted on the even windows must predict the odd
// windows' deviations measurably better than no correction at all, and
// vice versa. The gate is what keeps a noise-chasing fit — a wild slope on
// a near-constant feature — from ever being applied: out of sample such a
// fit scores worse than zero slopes and is rejected, and the cascade
// retries with fewer features before giving up and degrading the estimator
// to the plain stratified ratio.
func fitDeviations(wins []winObs, y func(winObs) float64) ([nObs]float64, bool) {
	var zero [nObs]float64
	if len(wins) < 8 {
		return zero, false
	}
	set := centre(wins, y)
	var even, odd []devObs
	for i, d := range set {
		if i%2 == 0 {
			even = append(even, d)
		} else {
			odd = append(odd, d)
		}
	}
	sse0Odd, sse0Even := sseDev(odd, zero), sseDev(even, zero)
	for _, mask := range cvMasks {
		bEven, okE := solveDev(even, mask)
		bOdd, okO := solveDev(odd, mask)
		if !okE || !okO {
			continue
		}
		// Each half-fit must cut the other half's residual energy by ≥10%.
		if sseDev(odd, bEven) > 0.9*sse0Odd || sseDev(even, bOdd) > 0.9*sse0Even {
			continue
		}
		if beta, ok := solveDev(set, mask); ok {
			return beta, true
		}
	}
	return zero, false
}

// Extrapolate scales the measured Stats up to a run of total instructions:
// every event counter is multiplied by total/measured and Instrs is pinned
// to the total. Cycles come from the event-regression estimate (EstCycles)
// rather than the ratio, which is what keeps the CPI error inside the 2%
// oracle bound. The returned Stats are the sampled estimate of what a full
// detailed run would report.
func (r SampleResult) Extrapolate(total uint64) Stats {
	m := r.Measured
	if m.Instrs == 0 || total == 0 {
		return m
	}
	f := float64(total) / float64(m.Instrs)
	out := Stats{
		Cycles:       scaleU64(m.Cycles, f),
		Instrs:       total,
		RFReads:      scaleU64(m.RFReads, f),
		RFWrites:     scaleU64(m.RFWrites, f),
		RATLookups:   scaleU64(m.RATLookups, f),
		IQInserts:    scaleU64(m.IQInserts, f),
		IQWakeups:    scaleU64(m.IQWakeups, f),
		SQSearches:   scaleU64(m.SQSearches, f),
		Forwards:     scaleU64(m.Forwards, f),
		ROBWrites:    scaleU64(m.ROBWrites, f),
		ComplexOps:   scaleU64(m.ComplexOps, f),
		FetchGroups:  scaleU64(m.FetchGroups, f),
		Branches:     scaleU64(m.Branches, f),
		Mispredicts:  scaleU64(m.Mispredicts, f),
		BTBMisses:    scaleU64(m.BTBMisses, f),
		PredSquashes: scaleU64(m.PredSquashes, f),
		Fetched:      scaleU64(m.Fetched, f),
		LoadL1Hits:    scaleU64(m.LoadL1Hits, f),
		LoadL1Misses:  scaleU64(m.LoadL1Misses, f),
		MemExtraFetch: scaleU64(m.MemExtraFetch, f),
		MemExtraData:  scaleU64(m.MemExtraData, f),
		MissRuns:      scaleU64(m.MissRuns, f),
		StallROB:      scaleU64(m.StallROB, f),
		StallIQ:      scaleU64(m.StallIQ, f),
		StallLQ:      scaleU64(m.StallLQ, f),
		StallSQ:      scaleU64(m.StallSQ, f),
		StallRF:      scaleU64(m.StallRF, f),
	}
	for i := range m.KindCount {
		out.KindCount[i] = scaleU64(m.KindCount[i], f)
	}
	if r.EstCycles > 0 && r.EstInstrs > 0 {
		// CPI comes from the regression estimate: estimated cycles per
		// estimated retirement over everything the run covered, scaled to
		// the requested total.
		out.Cycles = scaleU64(r.EstCycles, float64(total)/float64(r.EstInstrs))
	}
	return out
}

func scaleU64(v uint64, f float64) uint64 {
	return uint64(math.Round(float64(v) * f))
}

// Add returns the field-wise sum of two Stats.
func (s Stats) Add(o Stats) Stats {
	s.Cycles += o.Cycles
	s.Instrs += o.Instrs
	for i := range s.KindCount {
		s.KindCount[i] += o.KindCount[i]
	}
	s.RFReads += o.RFReads
	s.RFWrites += o.RFWrites
	s.RATLookups += o.RATLookups
	s.IQInserts += o.IQInserts
	s.IQWakeups += o.IQWakeups
	s.SQSearches += o.SQSearches
	s.Forwards += o.Forwards
	s.ROBWrites += o.ROBWrites
	s.ComplexOps += o.ComplexOps
	s.FetchGroups += o.FetchGroups
	s.Branches += o.Branches
	s.Mispredicts += o.Mispredicts
	s.BTBMisses += o.BTBMisses
	s.PredSquashes += o.PredSquashes
	s.Fetched += o.Fetched
	s.LoadL1Hits += o.LoadL1Hits
	s.LoadL1Misses += o.LoadL1Misses
	s.MemExtraFetch += o.MemExtraFetch
	s.MemExtraData += o.MemExtraData
	s.MissRuns += o.MissRuns
	s.StallROB += o.StallROB
	s.StallIQ += o.StallIQ
	s.StallLQ += o.StallLQ
	s.StallSQ += o.StallSQ
	s.StallRF += o.StallRF
	return s
}

// Sub returns the field-wise difference s - o (counter snapshot diff).
func (s Stats) Sub(o Stats) Stats {
	s.Cycles -= o.Cycles
	s.Instrs -= o.Instrs
	for i := range s.KindCount {
		s.KindCount[i] -= o.KindCount[i]
	}
	s.RFReads -= o.RFReads
	s.RFWrites -= o.RFWrites
	s.RATLookups -= o.RATLookups
	s.IQInserts -= o.IQInserts
	s.IQWakeups -= o.IQWakeups
	s.SQSearches -= o.SQSearches
	s.Forwards -= o.Forwards
	s.ROBWrites -= o.ROBWrites
	s.ComplexOps -= o.ComplexOps
	s.FetchGroups -= o.FetchGroups
	s.Branches -= o.Branches
	s.Mispredicts -= o.Mispredicts
	s.BTBMisses -= o.BTBMisses
	s.PredSquashes -= o.PredSquashes
	s.Fetched -= o.Fetched
	s.LoadL1Hits -= o.LoadL1Hits
	s.LoadL1Misses -= o.LoadL1Misses
	s.MemExtraFetch -= o.MemExtraFetch
	s.MemExtraData -= o.MemExtraData
	s.MissRuns -= o.MissRuns
	s.StallROB -= o.StallROB
	s.StallIQ -= o.StallIQ
	s.StallLQ -= o.StallLQ
	s.StallSQ -= o.StallSQ
	s.StallRF -= o.StallRF
	return s
}
