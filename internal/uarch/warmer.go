package uarch

import (
	"errors"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
)

// FunctionalWarmer consumes a trace.Source at functional speed, updating
// only the long-lived microarchitectural state — the memory hierarchy and
// the branch predictor — and skipping the out-of-order backend entirely.
// It is the fast-forward engine of sampled simulation (see sample.go): the
// caches and the predictor are the state whose warmth survives across
// sampling intervals, while the pipeline's own state (ROB, queues,
// rename map) is rebuilt by a short detailed-warm phase before each
// measured window.
//
// Per instruction the warmer performs exactly the probes the detailed
// core's fetch stage makes (see Core.fetch — all cache, predictor and
// forwarding-ring probes live there, in program order):
//
//   - instruction fetch touches the IL1 once per new cache line, in stream
//     order (the frontend's line-change check);
//   - branches look up and train the predictor and BTB with the resolved
//     outcome (the fetch stage's Predict+Update pair);
//   - stores access the DL1 and record their 8-byte-aligned address in a
//     store ring sized like the SQ; loads that hit the ring forward and
//     skip the DL1, exactly as the fetch-time forwarding check suppresses
//     the probe for store-forwarded loads.
//
// Because the detailed frontend probes every trace instruction exactly
// once in the same order, the Backend call sequence is bit-identical
// between functional and detailed execution (TestWarmerProbeEquivalence):
// a sampled run's caches and predictor evolve exactly as a full run's
// would. Only multi-core sharing and invalidation timing remain outside
// the warmer's reach.
type FunctionalWarmer struct {
	id   int
	src  trace.Source
	mem  mem.Backend
	// hier is mem when it is the single-core *mem.Hierarchy — the common
	// case — letting the hot loop call it directly instead of through the
	// interface table.
	hier *mem.Hierarchy
	pred *Predictor

	lineMask uint64
	curLine  uint64

	// Program-order mirror of the detailed store ring: the last SQSize
	// store line addresses, used only to decide which loads would forward.
	// stCounts is the same counting filter the core keeps over the ring
	// (see Core.stCounts); a core-bound warmer aliases the core's array so
	// both stay exact across the detailed/functional boundary.
	stAddrs  []uint64
	stHead   int
	stCounts *[256]uint8

	// dataMissRun mirrors Core.dataMissRun — whether the previous data
	// probe missed — so WarmObs.MissRuns continues the detailed
	// Stats.MissRuns accounting across the functional boundary.
	dataMissRun bool

	// latL2/latL3 are the hierarchy's L2-hit and L3-hit fill latencies,
	// used to classify each miss's returned extra cycles into its fill
	// level (see WarmObs.FetchFills). fillsOK gates the classification: it
	// requires the three fill latencies to be positive and distinct, which
	// every derived configuration satisfies.
	latL2, latL3 int
	fillsOK      bool

	// obs accumulates the functional observables of the instructions warmed
	// since the last TakeObs — the control variates the sampled-simulation
	// estimator regresses window cycles against (see sample.go).
	obs WarmObs

	buf []trace.Inst
	pos int
}

// WarmObs are the per-region functional observables: the event counts that
// drive CPI variance and that the warmer can measure exactly while
// fast-forwarding, because it maintains the same caches and predictor the
// detailed core would have used.
type WarmObs struct {
	// Instrs is the number of instructions covered.
	Instrs uint64

	// ExtraFetch and ExtraData sum the extra miss cycles the hierarchy
	// returned for IL1 and DL1 accesses — the functional counterparts of
	// Stats.MemExtraFetch/MemExtraData.
	ExtraFetch uint64
	ExtraData  uint64

	// Mispredicts counts squash triggers the (continuously trained)
	// predictor would have produced, with the same accounting as the
	// detailed Stats.PredSquashes: a direction or target mispredict
	// counts once, a taken BTB miss counts once, a branch that is both
	// counts twice on both sides.
	Mispredicts uint64

	// MissRuns counts maximal bursts of consecutive missing data probes,
	// with the same accounting as Stats.MissRuns: clustered misses overlap
	// in the out-of-order window, so stall cycles track bursts more
	// linearly than total miss cycles.
	MissRuns uint64

	// LongOps counts divide-class instructions, whose multi-cycle latency
	// is the remaining large CPI contributor.
	LongOps uint64

	// FetchFills and DataFills break the misses behind ExtraFetch/ExtraData
	// down by fill level: index 0 = filled from L2, 1 = from L3, 2 = from
	// DRAM. Unlike the extra-cycle SUMS — whose per-miss prices depend on a
	// design's latencies — the per-level counts depend only on the probe
	// sequence and the cache geometry, so a warm-state snapshot can share
	// them across every design of a sweep and each cell reconstructs its own
	// exact sums from its own fill prices (see internal/warm). They are not
	// part of the estimator's regressor vector (warmObsVec is unchanged).
	FetchFills [3]uint64
	DataFills  [3]uint64
}

// Add returns the field-wise sum of two observation sets.
func (o WarmObs) Add(p WarmObs) WarmObs {
	o.Instrs += p.Instrs
	o.ExtraFetch += p.ExtraFetch
	o.ExtraData += p.ExtraData
	o.Mispredicts += p.Mispredicts
	o.MissRuns += p.MissRuns
	o.LongOps += p.LongOps
	for i := range o.FetchFills {
		o.FetchFills[i] += p.FetchFills[i]
		o.DataFills[i] += p.DataFills[i]
	}
	return o
}

// Sub returns the field-wise difference o − p. It is meaningful only when p
// is an earlier reading of the same cumulative counters (a stream prefix of
// o), which is how the snapshot layer turns two absolute checkpoints into
// the observables of the stretch between them.
func (o WarmObs) Sub(p WarmObs) WarmObs {
	o.Instrs -= p.Instrs
	o.ExtraFetch -= p.ExtraFetch
	o.ExtraData -= p.ExtraData
	o.Mispredicts -= p.Mispredicts
	o.MissRuns -= p.MissRuns
	o.LongOps -= p.LongOps
	for i := range o.FetchFills {
		o.FetchFills[i] -= p.FetchFills[i]
		o.DataFills[i] -= p.DataFills[i]
	}
	return o
}

// fillClass maps a positive extra fill latency onto its level index:
// 0 = L2 hit, 1 = L3 hit, 2 = DRAM fill. The hierarchy guarantees every
// miss resolves with exactly one of the three FillLatencies values, so two
// comparisons decide.
func fillClass(extra, l2, l3 int) int {
	switch extra {
	case l2:
		return 0
	case l3:
		return 1
	default:
		return 2
	}
}

// TakeObs returns the observables accumulated since the previous call and
// resets the accumulator.
func (w *FunctionalWarmer) TakeObs() WarmObs {
	o := w.obs
	w.obs = WarmObs{}
	return o
}

// NewFunctionalWarmer builds a standalone warmer over the given stream and
// backend. A warmer that must share a detailed core's stream position and
// predictor is obtained from Core.warmer instead (Core.FastForward uses
// it); the standalone form exists for warming a hierarchy before any core
// is built and for tests.
func NewFunctionalWarmer(id int, cfg config.Config, src trace.Source, backend mem.Backend) (*FunctionalWarmer, error) {
	if src == nil || backend == nil {
		return nil, errors.New("uarch: nil instruction source or memory backend")
	}
	p := cfg.Core
	hier, _ := backend.(*mem.Hierarchy)
	w := &FunctionalWarmer{
		id:       id,
		src:      src,
		mem:      backend,
		hier:     hier,
		pred:     NewPredictor(p),
		lineMask: ^uint64(uint64(p.IL1.LineBytes) - 1),
		stAddrs:  make([]uint64, p.SQSize),
		stCounts: new([256]uint8),
		buf:      make([]trace.Inst, 0, max(8*p.FetchWidth, 64)),
	}
	if hier != nil {
		e2, e3, ed := hier.FillLatencies()
		if e2 > 0 && e3 > e2 && ed > e3 {
			w.latL2, w.latL3, w.fillsOK = e2, e3, true
		}
	}
	w.stClear()
	return w, nil
}

// stClear empties the forwarding ring (sentinel addresses never match a
// load's aligned address, which always has the low bit of bit 3+ patterns).
func (w *FunctionalWarmer) stClear() {
	for i := range w.stAddrs {
		w.stAddrs[i] = ^uint64(0)
	}
	w.stHead = 0
	*w.stCounts = [256]uint8{}
}

// wouldForward reports whether a load at the given 8-byte-aligned address
// would forward from a recent store instead of accessing the DL1.
func (w *FunctionalWarmer) wouldForward(la uint64) bool {
	if w.stCounts[stHash(la)] == 0 {
		return false
	}
	for _, a := range w.stAddrs {
		if a == la {
			return true
		}
	}
	return false
}

// stPush records a store's line address in the ring and the counting
// filter, with the detailed fetch stage's exact bookkeeping.
func (w *FunctionalWarmer) stPush(la uint64) {
	if old := w.stAddrs[w.stHead]; old != ^uint64(0) {
		w.stCounts[stHash(old)]--
	}
	w.stCounts[stHash(la)]++
	w.stAddrs[w.stHead] = la
	w.stHead = (w.stHead + 1) % len(w.stAddrs)
}

// Warm advances the stream by n instructions, updating caches and the
// predictor. Instructions already buffered (shared with the detailed
// frontend) are consumed first; past them, a replayer-backed warmer reads
// the recording's packed lanes directly instead of decoding Inst structs —
// the fast path of every fast-forward phase in a sweep, where cells replay
// shared recordings.
func (w *FunctionalWarmer) Warm(n uint64) {
	for n > 0 && w.pos < len(w.buf) {
		w.step()
		n--
	}
	if rp, ok := w.src.(*trace.Replayer); ok && n > 0 {
		w.warmLanes(rp, n)
		return
	}
	for ; n > 0; n-- {
		w.step()
	}
}

// warmLanes fast-forwards n instructions straight from a replayer's packed
// lanes. The logic is step's exactly — same probe order, same observable
// accounting — restated over lane slices with the counters kept in locals,
// so the per-instruction cost is a few lane reads instead of a 40-byte
// struct decode plus accumulator stores.
func (w *FunctionalWarmer) warmLanes(rp *trace.Replayer, n uint64) {
	var xf, xd, mp, lo, runs uint64
	var ff, df [3]uint64
	curLine, missRun := w.curLine, w.dataMissRun
	fills, e2, e3 := w.fillsOK, w.latL2, w.latL3
	w.obs.Instrs += n
	for n > 0 {
		k := int(min(n, 4096))
		pc, addr, target, meta := rp.View(k)
		addr, target, meta = addr[:len(pc)], target[:len(pc)], meta[:len(pc)]
		for i := range pc {
			if line := pc[i] & w.lineMask; line != curLine {
				curLine = line
				if extra := w.fetchExtra(pc[i]); extra > 0 {
					xf += uint64(extra)
					if fills {
						ff[fillClass(extra, e2, e3)]++
					}
				}
			}
			switch trace.MetaKind(meta[i]) {
			case trace.Branch:
				taken := trace.MetaTaken(meta[i])
				predTaken, predTarget, btbHit := w.pred.Predict(pc[i])
				if predTaken != taken || (taken && btbHit && predTarget != target[i]) {
					mp++
				}
				if taken && !btbHit {
					mp++
				}
				w.pred.Update(pc[i], taken, target[i])
			case trace.Load:
				if !w.wouldForward(addr[i] &^ 7) {
					if extra := w.dataExtra(addr[i], false); extra > 0 {
						xd += uint64(extra)
						if fills {
							df[fillClass(extra, e2, e3)]++
						}
						if !missRun {
							runs++
							missRun = true
						}
					} else {
						missRun = false
					}
				}
			case trace.Store:
				w.stPush(addr[i] &^ 7)
				if extra := w.dataExtra(addr[i], true); extra > 0 {
					xd += uint64(extra)
					if fills {
						df[fillClass(extra, e2, e3)]++
					}
					if !missRun {
						runs++
						missRun = true
					}
				} else {
					missRun = false
				}
			case trace.Div, trace.FPDiv:
				lo++
			}
		}
		rp.Advance(k)
		n -= uint64(k)
	}
	w.curLine, w.dataMissRun = curLine, missRun
	w.obs.ExtraFetch += xf
	w.obs.ExtraData += xd
	w.obs.Mispredicts += mp
	w.obs.LongOps += lo
	w.obs.MissRuns += runs
	for i := range ff {
		w.obs.FetchFills[i] += ff[i]
		w.obs.DataFills[i] += df[i]
	}
}

// step processes one instruction functionally.
func (w *FunctionalWarmer) step() {
	if w.pos == len(w.buf) {
		buf := w.buf[:cap(w.buf)]
		k := w.src.NextBatch(buf)
		if k <= 0 {
			panic("uarch: trace source exhausted (sources must be infinite)")
		}
		w.buf = buf[:k]
		w.pos = 0
	}
	in := &w.buf[w.pos]
	w.pos++

	w.obs.Instrs++
	if line := in.PC & w.lineMask; line != w.curLine {
		w.curLine = line
		if extra := w.fetchExtra(in.PC); extra > 0 {
			w.obs.ExtraFetch += uint64(extra)
			if w.fillsOK {
				w.obs.FetchFills[fillClass(extra, w.latL2, w.latL3)]++
			}
		}
	}
	switch in.Kind {
	case trace.Branch:
		predTaken, predTarget, btbHit := w.pred.Predict(in.PC)
		mispred := predTaken != in.Taken || (in.Taken && btbHit && predTarget != in.Target)
		btbMiss := in.Taken && !btbHit
		w.pred.Update(in.PC, in.Taken, in.Target)
		if mispred {
			w.obs.Mispredicts++
		}
		if btbMiss {
			w.obs.Mispredicts++
		}
	case trace.Load:
		if !w.wouldForward(in.Addr &^ 7) {
			w.dataProbe(w.dataExtra(in.Addr, false))
		}
	case trace.Store:
		w.stPush(in.Addr &^ 7)
		w.dataProbe(w.dataExtra(in.Addr, true))
	case trace.Div, trace.FPDiv:
		w.obs.LongOps++
	}
}

// fetchExtra and dataExtra route hierarchy probes through the concrete
// *mem.Hierarchy when possible, avoiding interface dispatch per probe.
func (w *FunctionalWarmer) fetchExtra(pc uint64) int {
	if w.hier != nil {
		return w.hier.FetchExtra(w.id, pc)
	}
	return w.mem.FetchExtra(w.id, pc)
}

func (w *FunctionalWarmer) dataExtra(addr uint64, write bool) int {
	if w.hier != nil {
		return w.hier.DataExtra(w.id, addr, write)
	}
	return w.mem.DataExtra(w.id, addr, write)
}

// dataProbe records a data-cache probe result with the detailed fetch
// stage's exact MissRuns accounting.
func (w *FunctionalWarmer) dataProbe(extra int) {
	if extra > 0 {
		w.obs.ExtraData += uint64(extra)
		if w.fillsOK {
			w.obs.DataFills[fillClass(extra, w.latL2, w.latL3)]++
		}
		if !w.dataMissRun {
			w.obs.MissRuns++
			w.dataMissRun = true
		}
	} else {
		w.dataMissRun = false
	}
}

// warmer returns a functional warmer bound to the core's own stream,
// backend, predictor and prefill buffer, so fast-forwarded instructions
// come from exactly where the detailed frontend stopped and predictor
// warmth carries over into the next detailed phase. The returned value is
// cached on the core; FastForward is the public entry point.
func (c *Core) warmer() *FunctionalWarmer {
	if c.fwd == nil {
		hier, _ := c.mem.(*mem.Hierarchy)
		c.fwd = &FunctionalWarmer{
			id:       c.ID,
			src:      c.src,
			mem:      c.mem,
			hier:     hier,
			pred:     c.pred,
			lineMask: ^uint64(uint64(c.cfg.Core.IL1.LineBytes) - 1),
			// Alias the core's own store ring and counting filter (same
			// backing arrays) so the program-order forwarding history is
			// continuous across the detailed/functional boundary in both
			// directions.
			stAddrs:  c.storeAddrs,
			stCounts: &c.stCounts,
			latL2:    c.latL2,
			latL3:    c.latL3,
			fillsOK:  c.fillsOK,
		}
	}
	// Adopt the core's prefill buffer position: instructions the frontend
	// batched but has not yet fetched belong to the stream's future and
	// must be warmed, not skipped. Likewise the store-ring head.
	c.fwd.buf = c.instBuf
	c.fwd.pos = c.instPos
	c.fwd.curLine = c.curFetchLine
	c.fwd.stHead = c.storeHead
	c.fwd.dataMissRun = c.dataMissRun
	return c.fwd
}

// takeWarmObs drains the functional observables accumulated by FastForward
// since the previous call (zero if the core never fast-forwarded).
func (c *Core) takeWarmObs() WarmObs {
	if c.fwd == nil {
		return WarmObs{}
	}
	return c.fwd.TakeObs()
}

// FastForward functionally advances the core's instruction stream by n
// instructions, updating only the memory hierarchy and the branch
// predictor. In-flight instructions (ROB, frontend queue) are discarded
// first — their stream positions were already consumed by fetch — and the
// pipeline restarts empty when detailed simulation resumes; committed
// counts in Stats are unaffected. This is the fast-forward phase of
// sampled simulation and the cheap warmup path of multicore runs. When a
// snapshot binding is installed (SetFastForward), the call routes through
// it so eligible fast-forwards restore a cached checkpoint instead of
// re-warming the stretch instruction by instruction.
func (c *Core) FastForward(n uint64) {
	if c.ffHook != nil {
		c.ffHook(n)
		return
	}
	c.FastForwardLocal(n)
}

// FastForwardLocal is the plain warming path of FastForward: it always
// advances by functionally warming the core's own state and never consults
// the snapshot cache. Snapshot bindings call it for the residual stretch
// between a restored checkpoint and the requested position.
func (c *Core) FastForwardLocal(n uint64) {
	c.resetPipeline()
	w := c.warmer()
	w.Warm(n)
	// Hand the (possibly refilled) buffer position back to the frontend.
	c.instBuf = w.buf
	c.instPos = w.pos
	c.curFetchLine = w.curLine
	c.storeHead = w.stHead
	c.dataMissRun = w.dataMissRun
	c.ffInstrs += n
}

// resetPipeline discards all in-flight pipeline state — ROB, frontend
// queue, rename map, scheduling queues — while preserving the long-lived
// state sampling relies on: caches and predictor (external), the
// store-forwarding ring, the trace position (instBuf), committed Stats,
// the cycle clock and the monotonic sequence counter (seq uniqueness is
// what lets stale scheduling refs die quietly).
func (c *Core) resetPipeline() {
	p := c.cfg.Core
	for c.count > 0 {
		t := (c.tail - 1 + len(c.rob)) % len(c.rob)
		c.rob[t].seq = 0 // stale scheduling refs stop validating
		c.tail = t
		c.count--
	}
	c.head, c.tail, c.count = 0, 0, 0
	c.iqCount, c.lqCount, c.sqCount = 0, 0, 0
	c.freePhys = p.IntRF + p.FPRF - 2*64
	c.lastMap = [64]regRef{}
	c.fqClear()
	// The store ring is deliberately NOT cleared: it is program-order
	// stream state (recently dispatched store lines), and the warmer
	// continues it across the fast-forward exactly as dispatch would.
	if c.kern == KernelEvent {
		c.readyQ = c.readyQ[:0]
		c.wakeHeap = c.wakeHeap[:0]
		c.wakeArena = c.wakeArena[:0]
		c.wakeFree = wakeNil
		for i := range c.wakeHead {
			c.wakeHead[i] = wakeNil
		}
	}
	// A fetch gate set by an in-flight branch may point past now; keep it —
	// skipIdle jumps over the dead time exactly as the detailed path would.
}
