package uarch

import (
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// probeRec is one Backend call: an instruction-fetch probe or a data
// access, in the order the core issued it.
type probeRec struct {
	fetch bool
	addr  uint64
	write bool
}

// recBackend wraps a Backend and logs every probe it receives.
type recBackend struct {
	inner mem.Backend
	log   []probeRec
}

func (r *recBackend) FetchExtra(id int, pc uint64) int {
	r.log = append(r.log, probeRec{fetch: true, addr: pc})
	return r.inner.FetchExtra(id, pc)
}

func (r *recBackend) DataExtra(id int, addr uint64, write bool) int {
	r.log = append(r.log, probeRec{addr: addr, write: write})
	return r.inner.DataExtra(id, addr, write)
}

// TestWarmerProbeEquivalence pins the property sampling's fast-forward
// rests on: over the same trace prefix, FastForward issues bit-identically
// the same Backend probe sequence — same addresses, same order, same
// read/write flags — as detailed execution. The frontend performs all
// cache and predictor probes in program order, so the functional warmer
// can replay them without modelling the backend; if a future change makes
// probe order depend on backend state (e.g. probing at issue instead of
// fetch), this fails and sampling's fidelity argument is void.
func TestWarmerProbeEquivalence(t *testing.T) {
	s := suite(t)
	cfg := s.Configs[config.Base]
	for _, bench := range []string{"Povray", "Mcf", "Hmmer", "Gobmk"} {
		p, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}

		hDet, err := mem.NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rDet := &recBackend{inner: hDet}
		cDet, err := NewCoreKernel(0, cfg, trace.NewGenerator(p, 11, 0), rDet, KernelEvent)
		if err != nil {
			t.Fatal(err)
		}
		cDet.Run(100_000)
		nTrace := cDet.Stats.Fetched

		hFun, err := mem.NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rFun := &recBackend{inner: hFun}
		cFun, err := NewCoreKernel(0, cfg, trace.NewGenerator(p, 11, 0), rFun, KernelEvent)
		if err != nil {
			t.Fatal(err)
		}
		cFun.FastForward(nTrace)

		if len(rDet.log) == 0 {
			t.Fatalf("%s: detailed run issued no probes", bench)
		}
		if len(rDet.log) != len(rFun.log) {
			t.Errorf("%s: probe counts diverge over %d trace instructions: detailed %d, functional %d",
				bench, nTrace, len(rDet.log), len(rFun.log))
		}
		for i := 0; i < min(len(rDet.log), len(rFun.log)); i++ {
			if rDet.log[i] != rFun.log[i] {
				t.Errorf("%s: probe %d diverges: detailed %+v, functional %+v",
					bench, i, rDet.log[i], rFun.log[i])
				break
			}
		}
	}
}
