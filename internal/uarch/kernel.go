package uarch

import "fmt"

// Kernel selects the core simulation kernel. Both kernels implement the
// same microarchitecture and produce bit-identical Stats (enforced by the
// differential oracle in oracle_test.go); they differ only in asymptotic
// cost per simulated cycle.
type Kernel uint8

const (
	// KernelEvent is the event-driven kernel: producer→consumer wakeup
	// lists and a seq-ordered ready queue make issue O(ready) instead of
	// O(ROBSize), store-to-load forwarding is a line-address-indexed map
	// lookup instead of an O(SQSize) CAM scan, and Run fast-forwards over
	// cycles in which no pipeline stage can make progress. Default.
	KernelEvent Kernel = iota
	// KernelReference is the original scan-based kernel: every cycle walks
	// the whole ROB re-polling ready() and the whole store queue on every
	// load. Kept as the oracle baseline and for differential debugging.
	KernelReference
)

// String returns the kernel's flag spelling.
func (k Kernel) String() string {
	switch k {
	case KernelEvent:
		return "event"
	case KernelReference:
		return "reference"
	default:
		return fmt.Sprintf("Kernel(%d)", uint8(k))
	}
}

// KernelNames lists the accepted kernel flag values.
func KernelNames() []string { return []string{"event", "reference"} }

// ParseKernel maps a -kernel flag value to a Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "event":
		return KernelEvent, nil
	case "reference":
		return KernelReference, nil
	default:
		return KernelEvent, fmt.Errorf("unknown kernel %q (want event or reference)", s)
	}
}

// KernelKind reports which kernel the core runs.
func (c *Core) KernelKind() Kernel { return c.kern }
