package uarch

import "vertical3d/internal/trace"

// This file is the reference simulation kernel: the original scan-based
// issue logic, kept behind the kernel seam as the baseline for the
// differential oracle (oracle_test.go). Its per-cycle cost is O(ROBSize)
// for issue; the event kernel in kernel_event.go replaces the scan while
// reproducing its Stats bit for bit. Memory latencies come from the shared
// dispatch-time probe (Core.memLatency), identically in both kernels.

// issueRef wakes up and selects ready instructions, oldest first, by
// scanning the whole ROB and re-polling ready() on every waiting entry,
// respecting functional-unit ports, and executes them.
func (c *Core) issueRef() {
	p := c.cfg.Core
	budget := c.newBudget()
	issued := 0

	idx := c.head
	for scanned := 0; scanned < c.count && issued < p.IssueWidth; scanned++ {
		e := &c.rob[idx]
		if e.state != stWaiting {
			idx = (idx + 1) % len(c.rob)
			continue
		}
		if !c.ready(e) {
			idx = (idx + 1) % len(c.rob)
			continue
		}

		ok, lat := c.allocFU(e, &budget, c.memLatency)
		if !ok {
			idx = (idx + 1) % len(c.rob)
			continue
		}

		c.markIssued(e, lat)
		issued++

		// Branches resolve at completion; mispredictions flush everything
		// younger, so the issue scan cannot continue past them.
		if e.kind == trace.Branch && (e.mispred || e.btbMiss) {
			c.squashAfter(idx, e)
			c.finish(e)
			break
		}
		c.finish(e)
		idx = (idx + 1) % len(c.rob)
	}
}

