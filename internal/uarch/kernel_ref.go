package uarch

import "vertical3d/internal/trace"

// This file is the reference simulation kernel: the original scan-based
// issue and store-queue logic, kept verbatim behind the kernel seam as the
// baseline for the differential oracle (oracle_test.go). Its per-cycle cost
// is O(ROBSize) for issue and O(SQSize) per load; the event kernel in
// kernel_event.go replaces both while reproducing its Stats bit for bit.

// issueRef wakes up and selects ready instructions, oldest first, by
// scanning the whole ROB and re-polling ready() on every waiting entry,
// respecting functional-unit ports, and executes them.
func (c *Core) issueRef() {
	p := c.cfg.Core
	budget := c.newBudget()
	issued := 0

	idx := c.head
	for scanned := 0; scanned < c.count && issued < p.IssueWidth; scanned++ {
		e := &c.rob[idx]
		if e.state != stWaiting {
			idx = (idx + 1) % len(c.rob)
			continue
		}
		if !c.ready(e) {
			idx = (idx + 1) % len(c.rob)
			continue
		}

		ok, lat := c.allocFU(e, &budget, c.memLatencyRef)
		if !ok {
			idx = (idx + 1) % len(c.rob)
			continue
		}

		c.markIssued(e, lat)
		issued++

		// Branches resolve at completion; mispredictions flush everything
		// younger, so the issue scan cannot continue past them.
		if e.kind == trace.Branch && (e.mispred || e.btbMiss) {
			c.squashAfter(idx, e)
			c.finish(e)
			break
		}
		c.finish(e)
		idx = (idx + 1) % len(c.rob)
	}
}

// memLatencyRef computes a load or store's completion latency: address
// generation, store-queue search, forwarding or DL1/hierarchy access. The
// store-queue search is the reference linear CAM scan.
func (c *Core) memLatencyRef(e *robEntry) int {
	p := c.cfg.Core
	if e.kind == trace.Store {
		// Record the address for forwarding; the cache write happens at
		// commit. The store completes after address generation.
		c.storeAddrs[c.storeHead] = e.addr &^ 7
		c.storeSeqs[c.storeHead] = e.seq
		c.storeHead = (c.storeHead + 1) % len(c.storeAddrs)
		return p.LSULatency
	}
	// Loads search the store queue (CAM) for an older matching store.
	c.Stats.SQSearches++
	la := e.addr &^ 7
	for i := range c.storeAddrs {
		if c.storeAddrs[i] == la && c.storeSeqs[i] != 0 && c.storeSeqs[i] < e.seq {
			c.Stats.Forwards++
			return p.LSULatency + 1
		}
	}
	extra := c.mem.DataExtra(c.ID, e.addr, false)
	if extra == 0 {
		c.Stats.LoadL1Hits++
		return p.LoadToUseCycles
	}
	c.Stats.LoadL1Misses++
	return p.LoadToUseCycles + extra
}
