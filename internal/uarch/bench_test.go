package uarch

import (
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// benchProfiles spans the behaviours that stress different kernel paths:
// Hmmer (core-bound, issue-limited), Mcf (memory-bound, long idle stretches
// — the idle-skip showcase), Gobmk (branchy, squash-heavy), Lbm (biased
// branches, streaming loads).
var benchProfiles = []string{"Hmmer", "Mcf", "Gobmk", "Lbm"}

// BenchmarkCoreRun measures simulator throughput in simulated MIPS
// (million retired instructions per wall-clock second) for both kernels on
// each profile. scripts/bench.sh parses the mips/ns_per_instr metrics into
// BENCH_core.json; the acceptance bar is event ≥ 2x reference on a
// memory-bound profile with no profile regressing.
func BenchmarkCoreRun(b *testing.B) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.Configs[config.Base]
	const instrs = 150_000
	for _, k := range []Kernel{KernelEvent, KernelReference} {
		for _, bench := range benchProfiles {
			p, err := workload.ByName(bench)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(k.String()+"/"+bench, func(b *testing.B) {
				var retired uint64
				for i := 0; i < b.N; i++ {
					h, err := mem.NewHierarchy(cfg)
					if err != nil {
						b.Fatal(err)
					}
					c, err := NewCoreKernel(0, cfg, trace.NewGenerator(p, 42, 0), h, k)
					if err != nil {
						b.Fatal(err)
					}
					st := c.Run(instrs)
					retired += st.Instrs
				}
				sec := b.Elapsed().Seconds()
				if sec > 0 {
					b.ReportMetric(float64(retired)/sec/1e6, "mips")
					b.ReportMetric(sec*1e9/float64(retired), "ns_per_instr")
				}
			})
		}
	}
}
