package uarch

import (
	"testing"
	"testing/quick"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

func suite(t *testing.T) *config.Suite {
	t.Helper()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func coreFor(t *testing.T, cfg config.Config, bench string, seed int64) (*Core, *mem.Hierarchy) {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(p, seed, 0)
	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(0, cfg, gen, h)
	if err != nil {
		t.Fatal(err)
	}
	return c, h
}

func TestRunRetiresExactly(t *testing.T) {
	s := suite(t)
	c, _ := coreFor(t, s.Configs[config.Base], "Hmmer", 1)
	st := c.Run(20_000)
	if st.Instrs < 20_000 || st.Instrs > 20_000+uint64(s.Configs[config.Base].Core.CommitWidth) {
		t.Errorf("retired %d instructions, want ≈20000", st.Instrs)
	}
	if st.Cycles == 0 || st.IPC() <= 0 {
		t.Error("cycles/IPC must be positive")
	}
}

func TestDeterministicExecution(t *testing.T) {
	s := suite(t)
	a, _ := coreFor(t, s.Configs[config.Base], "Gcc", 3)
	b, _ := coreFor(t, s.Configs[config.Base], "Gcc", 3)
	sa := a.Run(15_000)
	sb := b.Run(15_000)
	if sa != sb {
		t.Errorf("same seed must reproduce identical stats:\n%+v\n%+v", sa, sb)
	}
}

func TestIPCWithinPlausibleBounds(t *testing.T) {
	s := suite(t)
	for _, bench := range []string{"Hmmer", "Gamess", "Mcf"} {
		c, _ := coreFor(t, s.Configs[config.Base], bench, 1)
		c.Run(10_000) // warm
		st0 := c.Stats
		c.Run(40_000)
		ipc := float64(c.Stats.Instrs-st0.Instrs) / float64(c.Stats.Cycles-st0.Cycles)
		if ipc <= 0.01 || ipc > 4 {
			t.Errorf("%s IPC %.3f outside (0.01, 4]", bench, ipc)
		}
	}
}

func TestMemoryBoundSlowerThanCoreBound(t *testing.T) {
	s := suite(t)
	cb, _ := coreFor(t, s.Configs[config.Base], "Hmmer", 1)
	mb, _ := coreFor(t, s.Configs[config.Base], "Mcf", 1)
	cb.Run(30_000)
	mb.Run(30_000)
	if cb.Stats.IPC() <= mb.Stats.IPC() {
		t.Errorf("core-bound Hmmer (%.2f) must out-IPC memory-bound Mcf (%.2f)",
			cb.Stats.IPC(), mb.Stats.IPC())
	}
}

func TestShorterBranchPathHelpsBranchyCode(t *testing.T) {
	s := suite(t)
	base := s.Configs[config.Base]
	tsv := s.Configs[config.TSV3D] // same frequency, shorter 3D paths
	a, _ := coreFor(t, base, "Gobmk", 5)
	b, _ := coreFor(t, tsv, "Gobmk", 5)
	a.Run(60_000)
	b.Run(60_000)
	if b.Stats.Cycles >= a.Stats.Cycles {
		t.Errorf("shorter load-to-use/branch paths should save cycles: %d vs %d",
			b.Stats.Cycles, a.Stats.Cycles)
	}
}

func TestPredictorLearnsBiasedBranches(t *testing.T) {
	s := suite(t)
	c, _ := coreFor(t, s.Configs[config.Base], "Lbm", 2) // highly biased branches
	c.Run(60_000)                                        // Lbm is branch-poor: give the 2-bit counters time to train
	st0 := c.Stats
	c.Run(200_000)
	mr := float64(c.Stats.Mispredicts-st0.Mispredicts) /
		float64(c.Stats.Branches-st0.Branches)
	if mr > 0.08 {
		t.Errorf("Lbm-like biased branches should predict well, got %.1f%% mispredicts", mr*100)
	}
	c2, _ := coreFor(t, s.Configs[config.Base], "Gobmk", 2)
	c2.Run(60_000)
	if c2.Stats.MispredictRate() <= mr {
		t.Error("Gobmk must mispredict more than Lbm")
	}
}

func TestStoreForwarding(t *testing.T) {
	s := suite(t)
	c, _ := coreFor(t, s.Configs[config.Base], "Bzip2", 7)
	c.Run(50_000)
	if c.Stats.Forwards == 0 {
		t.Error("store-to-load forwarding should occur in a store-heavy workload")
	}
	if c.Stats.SQSearches < c.Stats.KindCount[trace.Load]/2 {
		t.Error("every issued load searches the store queue")
	}
}

func TestEventCountsConsistent(t *testing.T) {
	s := suite(t)
	c, _ := coreFor(t, s.Configs[config.Base], "Gamess", 9)
	st := c.Run(30_000)
	var kinds uint64
	for _, k := range st.KindCount {
		kinds += k
	}
	// Fetched (KindCount) ≥ committed (squashed entries fetch too).
	if kinds < st.Instrs {
		t.Errorf("fetched %d < committed %d", kinds, st.Instrs)
	}
	if kinds != st.Fetched {
		t.Errorf("KindCount sum %d != Fetched %d (same fetch-time population)", kinds, st.Fetched)
	}
	if st.RFWrites == 0 || st.RFReads == 0 || st.IQInserts < st.Instrs {
		t.Errorf("implausible event counts: %+v", st)
	}
	if st.Mispredicts > st.Branches {
		t.Error("more mispredicts than branches")
	}
}

func TestComplexDecodeCostsBandwidth(t *testing.T) {
	s := suite(t)
	cfgPlain := s.Configs[config.Base]
	cfgHet := cfgPlain
	cfgHet.Core.ComplexDecodeExtra = 4 // exaggerated for signal over noise

	p, err := workload.ByName("Hmmer") // frontend-sensitive, high IPC
	if err != nil {
		t.Fatal(err)
	}
	p.ComplexFrac = 0.8 // exaggerate to make the effect measurable
	mk := func(cfg config.Config) Stats {
		gen := trace.NewGenerator(p, 4, 0)
		h, err := mem.NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCore(0, cfg, gen, h)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run(30_000)
	}
	a := mk(cfgPlain)
	b := mk(cfgHet)
	if b.Cycles <= a.Cycles {
		t.Errorf("complex-decode penalty should cost cycles: %d vs %d", b.Cycles, a.Cycles)
	}
}

func TestNewCoreValidation(t *testing.T) {
	s := suite(t)
	if _, err := NewCore(0, s.Configs[config.Base], nil, nil); err == nil {
		t.Error("expected error for nil generator/backend")
	}
}

func TestPredictorUnit(t *testing.T) {
	p := NewPredictor(config.DefaultCore())
	pc, tgt := uint64(0x400100), uint64(0x400800)
	// Train taken.
	for i := 0; i < 16; i++ {
		p.Update(pc, true, tgt)
	}
	taken, target, hit := p.Predict(pc)
	if !taken || !hit || target != tgt {
		t.Errorf("predictor failed to learn an always-taken branch: %v %v %#x", taken, hit, target)
	}
	// Re-train not-taken.
	for i := 0; i < 16; i++ {
		p.Update(pc, false, tgt)
	}
	if taken, _, _ := p.Predict(pc); taken {
		t.Error("predictor failed to re-learn a not-taken branch")
	}
}

func TestPredictorAlternatingPattern(t *testing.T) {
	// The local history component should capture a strict alternation.
	p := NewPredictor(config.DefaultCore())
	pc := uint64(0x400204)
	correct := 0
	outcome := false
	for i := 0; i < 400; i++ {
		pred, _, _ := p.Predict(pc)
		if pred == outcome {
			correct++
		}
		p.Update(pc, outcome, 0x400900)
		outcome = !outcome
	}
	if frac := float64(correct) / 400; frac < 0.8 {
		t.Errorf("alternating branch predicted %.0f%%, local history should catch it", frac*100)
	}
}

func TestPropertyRunMonotoneCycles(t *testing.T) {
	s := suite(t)
	f := func(seed uint8) bool {
		c, _ := coreFor(t, s.Configs[config.Base], "Hmmer", int64(seed))
		st1 := c.Run(2000)
		cy1 := st1.Cycles
		st2 := c.Run(4000)
		return st2.Cycles > cy1 && st2.Instrs >= 4000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestSquashRestoresResources(t *testing.T) {
	// After many mispredict squashes, structure occupancy accounting must
	// stay consistent: everything drains once the stream runs clean.
	s := suite(t)
	c, _ := coreFor(t, s.Configs[config.Base], "Gobmk", 13) // branchy
	c.Run(40_000)
	_, rob, iq, _ := c.DebugState()
	if iq > rob {
		t.Errorf("IQ occupancy %d cannot exceed ROB occupancy %d", iq, rob)
	}
	if rob < 0 || iq < 0 {
		t.Errorf("negative occupancy after squashes: rob=%d iq=%d", rob, iq)
	}
	if c.Stats.Mispredicts == 0 {
		t.Error("Gobmk run should contain mispredictions")
	}
}

func TestHigherFrequencySeesMoreMemoryCycles(t *testing.T) {
	// The paper's Section 6 mechanism: DRAM latency is fixed in nanoseconds,
	// so a faster core pays more cycles per miss and memory-bound work gains
	// sub-linearly with frequency.
	s := suite(t)
	base := s.Configs[config.Base]
	fast := s.Configs[config.M3DHet]
	a, _ := coreFor(t, base, "Mcf", 21)
	b, _ := coreFor(t, fast, "Mcf", 21)
	a.Run(30_000)
	b.Run(30_000)
	secA := float64(a.Stats.Cycles) / (base.FreqGHz * 1e9)
	secB := float64(b.Stats.Cycles) / (fast.FreqGHz * 1e9)
	speedup := secA / secB
	freqRatio := fast.FreqGHz / base.FreqGHz
	if speedup >= freqRatio {
		t.Errorf("memory-bound Mcf speedup %.3f should trail the frequency ratio %.3f", speedup, freqRatio)
	}
	if speedup < 0.9 {
		t.Errorf("M3D-Het should still not slow Mcf down: %.3f", speedup)
	}
}

func TestWiderIssueHelpsWhenBackendBound(t *testing.T) {
	s := suite(t)
	narrow := s.Configs[config.Base]
	wide := narrow
	wide.Core.IssueWidth = 1 // throttle issue: the same code must slow down
	a, _ := coreFor(t, narrow, "Hmmer", 3)
	b, _ := coreFor(t, wide, "Hmmer", 3)
	a.Run(20_000) // warm caches so issue bandwidth binds
	b.Run(20_000)
	a0, b0 := a.Stats.Cycles, b.Stats.Cycles
	a.Run(60_000)
	b.Run(60_000)
	if b.Stats.Cycles-b0 <= a.Stats.Cycles-a0 {
		t.Errorf("issue width 1 must be slower than 6: %d vs %d cycles",
			b.Stats.Cycles-b0, a.Stats.Cycles-a0)
	}
}
