package uarch

import (
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// squashPair runs the same workload on both kernels under a (possibly
// shrunken) configuration and returns the stats, asserting bit-identity.
// The squash edge cases all reduce to "both kernels walked back the exact
// same in-flight state", which only Stats equality can witness.
func squashPair(t *testing.T, cfg config.Config, bench string, instrs uint64) Stats {
	t.Helper()
	run := func(k Kernel) Stats {
		p, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		h, err := mem.NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCoreKernel(0, cfg, trace.NewGenerator(p, 13, 0), h, k)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run(instrs)
	}
	ref, ev := run(KernelReference), run(KernelEvent)
	if ref != ev {
		t.Errorf("%s/%s: kernels diverge:\nref %+v\nevt %+v", cfg.Name, bench, ref, ev)
	}
	return ev
}

// TestSquashWithFullROB forces mispredict squashes to land while the ROB and
// IQ are saturated: a tiny window on a branchy workload. The event kernel
// must drop every stale readyQ/wakeup reference for the popped entries or it
// would issue squashed work (caught as a Stats divergence or occupancy
// underflow by the invariant checks).
func TestSquashWithFullROB(t *testing.T) {
	s := suite(t)
	cfg := s.Configs[config.Base]
	cfg.Core.ROBSize = 16
	cfg.Core.IQSize = 12
	st := squashPair(t, cfg, "Gobmk", 30_000)
	if st.StallROB == 0 {
		t.Error("shrunken ROB must produce ROB-full dispatch stalls")
	}
	if st.Mispredicts == 0 {
		t.Error("Gobmk must mispredict — the test needs squashes in flight")
	}
}

// TestSquashBTBMissOnlyRedirect exercises the redirect path taken by
// correctly predicted branches that nonetheless missed in the BTB: the
// squash triggers without a mispredict. Lbm's biased branches predict well,
// so its BTB misses dominate its redirects.
func TestSquashBTBMissOnlyRedirect(t *testing.T) {
	s := suite(t)
	st := squashPair(t, s.Configs[config.Base], "Lbm", 30_000)
	if st.BTBMisses == 0 {
		t.Error("expected BTB misses to exercise the btbMiss-only redirect")
	}
	if st.BTBMisses <= st.Mispredicts {
		t.Logf("note: BTBMisses %d <= Mispredicts %d (still exercises the path)", st.BTBMisses, st.Mispredicts)
	}
}

// TestSquashForwardingRecordsSurvive leans on a store-heavy, branchy
// workload so mispredict squashes regularly land with recently dispatched
// stores in the program-order ring. Forwarding is decided at dispatch from
// that ring, which is stream state: records deliberately survive squashes
// (the squashed instructions' addresses were on the correct path up to the
// redirect), so both kernels must keep forwarding identically across them —
// bit-identity plus a nonzero Forwards count pins the shared-probe design.
func TestSquashForwardingRecordsSurvive(t *testing.T) {
	s := suite(t)
	st := squashPair(t, s.Configs[config.Base], "Bzip2", 40_000)
	if st.Forwards == 0 {
		t.Error("Bzip2 must exercise store-to-load forwarding")
	}
	if st.Mispredicts == 0 {
		t.Error("Bzip2 must mispredict so squashes pop indexed stores")
	}
	if st.SQSearches == 0 {
		t.Error("loads must search the store queue")
	}
}
