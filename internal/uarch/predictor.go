// Package uarch implements the cycle-level out-of-order core of Table 9:
// fetch with a tournament branch predictor and BTB, decode/rename with a
// RAT and physical register free list, dispatch into ROB/IQ/LSQ, oldest
// first wakeup-select issue over the functional units, store-to-load
// forwarding, and in-order commit. It is the Multi2Sim substitute driving
// Figures 6-10.
package uarch

import (
	"vertical3d/internal/config"
)

// PredictorStats counts prediction events.
type PredictorStats struct {
	Lookups     uint64
	Mispredicts uint64
	BTBMisses   uint64
}

// Predictor is the tournament predictor of Table 9: a selector table chooses
// between a local (per-PC history) predictor and a global (gshare)
// predictor; a set-associative BTB provides targets.
type Predictor struct {
	selector []uint8
	local    []uint8
	localHis []uint16
	global   []uint8
	ghr      uint32

	tblMask  uint32
	hisMask  uint32
	localLen uint

	btbTags    []uint64
	btbTargets []uint64
	btbSets    uint32
	btbWays    int

	Stats PredictorStats
}

// NewPredictor builds the predictor from the core parameters.
func NewPredictor(p config.CoreParams) *Predictor {
	n := p.PredTable
	if n <= 0 {
		n = 4096
	}
	sets := p.BTBSize / p.BTBAssoc
	pr := &Predictor{
		selector: make([]uint8, n),
		local:    make([]uint8, n),
		localHis: make([]uint16, n),
		global:   make([]uint8, n),

		tblMask:  uint32(n - 1),
		hisMask:  uint32(n - 1),
		localLen: 10,

		btbTags:    make([]uint64, p.BTBSize),
		btbTargets: make([]uint64, p.BTBSize),
		btbSets:    uint32(sets),
		btbWays:    p.BTBAssoc,
	}
	for i := range pr.selector {
		pr.selector[i] = 1 // weakly prefer local
		pr.local[i] = 1
		pr.global[i] = 1
	}
	return pr
}

func taken2(c uint8) bool { return c >= 2 }

func bump(c uint8, t bool) uint8 {
	if t {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predict returns the predicted direction for pc, the BTB target, and
// whether the BTB held the target (a taken prediction without a target
// still redirects late).
func (p *Predictor) Predict(pc uint64) (taken bool, target uint64, btbHit bool) {
	p.Stats.Lookups++
	idx := uint32(pc>>2) & p.tblMask
	gidx := (uint32(pc>>2) ^ p.ghr) & p.tblMask
	lidx := uint32(p.localHis[idx]) & p.hisMask

	useGlobal := taken2(p.selector[idx])
	if useGlobal {
		taken = taken2(p.global[gidx])
	} else {
		taken = taken2(p.local[lidx])
	}

	set := (uint32(pc>>2) % p.btbSets) * uint32(p.btbWays)
	for w := 0; w < p.btbWays; w++ {
		if p.btbTags[set+uint32(w)] == pc {
			return taken, p.btbTargets[set+uint32(w)], true
		}
	}
	return taken, 0, false
}

// Update trains the predictor with the resolved outcome.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) {
	idx := uint32(pc>>2) & p.tblMask
	gidx := (uint32(pc>>2) ^ p.ghr) & p.tblMask
	lidx := uint32(p.localHis[idx]) & p.hisMask

	lCorrect := taken2(p.local[lidx]) == taken
	gCorrect := taken2(p.global[gidx]) == taken
	if gCorrect != lCorrect {
		p.selector[idx] = bump(p.selector[idx], gCorrect)
	}
	p.local[lidx] = bump(p.local[lidx], taken)
	p.global[gidx] = bump(p.global[gidx], taken)

	p.localHis[idx] = (p.localHis[idx]<<1 | b2u16(taken)) & uint16((1<<p.localLen)-1)
	p.ghr = p.ghr<<1 | uint32(b2u16(taken))

	if taken {
		set := (uint32(pc>>2) % p.btbSets) * uint32(p.btbWays)
		// Simple way-0-shift insertion: move ways down, insert at 0.
		for w := 0; w < p.btbWays; w++ {
			if p.btbTags[set+uint32(w)] == pc {
				p.btbTargets[set+uint32(w)] = target
				return
			}
		}
		for w := p.btbWays - 1; w > 0; w-- {
			p.btbTags[set+uint32(w)] = p.btbTags[set+uint32(w-1)]
			p.btbTargets[set+uint32(w)] = p.btbTargets[set+uint32(w-1)]
		}
		p.btbTags[set] = pc
		p.btbTargets[set] = target
	}
}

func b2u16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
