package resultcache

import (
	"encoding/json"

	"vertical3d/internal/journal"
)

// diskLookup serves one cell from the disk tier: the identity's .m3dj
// segments are indexed on first touch (journal.Open verifies magic, header
// identity and every record CRC; foreign segments are skipped, corrupt ones
// quarantined) and the index re-serves the raw canonical JSON without
// decoding. The index is keyed by the identity's String — not its 64-bit
// hash — so two identities can never collide into each other's records.
//
// An identity whose segments cannot be opened (unusable directory,
// unreadable entries) is remembered as nil and degrades to memory-only
// serving: the failure is counted once in Stats.DiskErrors, never returned.
func (c *Cache) diskLookup(key Key) (json.RawMessage, bool) {
	return c.diskIndex(key.ID).LookupRaw(key.Cell) // nil-safe: a degraded identity misses
}

// diskIndex returns the identity's journal read index, opening and caching
// it on first touch. Returns nil — which every journal method treats as an
// empty index — when the disk tier is disabled or the identity's segments
// are unusable.
func (c *Cache) diskIndex(id journal.Identity) *journal.Journal {
	c.mu.Lock()
	dir := c.diskDir
	if dir == "" {
		c.mu.Unlock()
		return nil
	}
	idStr := id.String()
	jn, indexed := c.journals[idStr]
	c.mu.Unlock()
	if indexed {
		return jn
	}

	// Open outside the lock: indexing reads every matching segment.
	// Two goroutines racing on a fresh identity may both open it; the
	// second index simply replaces the first with identical contents.
	opened, err := journal.Open(dir, id)
	c.mu.Lock()
	if c.diskDir != dir {
		// SetDiskDir moved the tier mid-open; drop this index.
		c.mu.Unlock()
		return nil
	}
	if c.journals == nil {
		c.journals = map[string]*journal.Journal{}
	}
	if err != nil {
		c.stats.DiskErrors++
		opened = nil
	}
	c.journals[idStr] = opened
	c.mu.Unlock()
	return opened
}
