package resultcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"vertical3d/internal/journal"
)

// cellResult is a stand-in for a sweep cell result: plain exported fields
// that round-trip JSON bit-identically, like every journaled result type.
type cellResult struct {
	Benchmark string
	Design    string
	IPC       float64
	Cycles    uint64
}

func testKey(cell string) Key {
	return Key{
		ID: journal.Identity{
			Experiment: "fig6",
			Params:     journal.Params("warmup", "100", "seed", "42"),
		},
		Cell: cell,
	}
}

func TestDoComputesOnceThenServesFromMemory(t *testing.T) {
	c := New(1 << 20)
	var computes atomic.Int64
	want := cellResult{Benchmark: "Mcf", Design: "Base", IPC: 1.25, Cycles: 480_000}
	compute := func() (any, error) {
		computes.Add(1)
		return want, nil
	}

	var first cellResult
	src, err := c.Do(testKey("a"), &first, compute)
	if err != nil {
		t.Fatal(err)
	}
	if src != Computed {
		t.Fatalf("first Do source = %v, want Computed", src)
	}
	var second cellResult
	src, err = c.Do(testKey("a"), &second, compute)
	if err != nil {
		t.Fatal(err)
	}
	if src != Memory {
		t.Fatalf("second Do source = %v, want Memory", src)
	}
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", computes.Load())
	}
	if !reflect.DeepEqual(first, want) || !reflect.DeepEqual(second, first) {
		t.Fatalf("served values diverge: first %+v second %+v want %+v", first, second, want)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Computed != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 computed / 1 entry", s)
	}
}

func TestDoCoalescesConcurrentIdenticalCells(t *testing.T) {
	c := New(1 << 20)
	const waiters = 8
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	compute := func() (any, error) {
		computes.Add(1)
		close(started)
		<-release // hold the flight open until every waiter has queued
		return cellResult{Benchmark: "Milc", IPC: 0.9}, nil
	}

	results := make([]cellResult, waiters)
	sources := make([]Source, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sources[0], errs[0] = c.Do(testKey("b"), &results[0], compute)
	}()
	<-started
	// Every subsequent Do for the same key must find the open flight. Wait
	// for them to register as coalesced before releasing the leader.
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sources[i], errs[i] = c.Do(testKey("b"), &results[i], func() (any, error) {
				t.Error("coalesced waiter ran compute")
				return nil, nil
			})
		}(i)
	}
	for c.Stats().Coalesced != waiters-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", computes.Load())
	}
	coalesced := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if sources[i] == Coalesced {
			coalesced++
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("waiter %d result %+v != leader %+v", i, results[i], results[0])
		}
	}
	if coalesced != waiters-1 {
		t.Fatalf("%d waiters coalesced, want %d", coalesced, waiters-1)
	}
}

func TestDoNeverCachesErrors(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("cell failed")
	calls := 0
	_, err := c.Do(testKey("c"), &cellResult{}, func() (any, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("first Do error = %v, want %v", err, boom)
	}
	var got cellResult
	src, err := c.Do(testKey("c"), &got, func() (any, error) {
		calls++
		return cellResult{IPC: 2}, nil
	})
	if err != nil || src != Computed {
		t.Fatalf("retry = (%v, %v), want (Computed, nil)", src, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not cache)", calls)
	}
	if s := c.Stats(); s.Errors != 1 || s.Computed != 1 {
		t.Fatalf("stats = %+v, want 1 error / 1 computed", s)
	}
}

func TestEvictionRespectsByteBudgetAndKeepsNewest(t *testing.T) {
	// Each cellResult marshals to well under 200 bytes; a 300-byte budget
	// holds roughly two entries.
	c := New(300)
	for i := 0; i < 10; i++ {
		var out cellResult
		v := cellResult{Benchmark: fmt.Sprintf("bench-%d", i), IPC: float64(i)}
		if _, err := c.Do(testKey(fmt.Sprintf("cell-%d", i)), &out, func() (any, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Bytes > 300 && s.Entries > 1 {
		t.Fatalf("cache holds %d bytes in %d entries, budget 300", s.Bytes, s.Entries)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions under a budget 10 entries exceed")
	}
	// The newest entry must still serve from memory.
	var out cellResult
	src, err := c.Do(testKey("cell-9"), &out, func() (any, error) {
		t.Error("newest entry was evicted")
		return cellResult{}, nil
	})
	if err != nil || src != Memory {
		t.Fatalf("newest entry served from %v (%v), want Memory", src, err)
	}

	// A budget smaller than any single entry degrades to cache-of-one.
	tiny := New(1)
	for i := 0; i < 3; i++ {
		var o cellResult
		if _, err := tiny.Do(testKey(fmt.Sprintf("t-%d", i)), &o, func() (any, error) { return cellResult{IPC: 1}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if s := tiny.Stats(); s.Entries != 1 {
		t.Fatalf("oversized-entry cache holds %d entries, want 1", s.Entries)
	}
}

func TestDiskTierServesExistingJournalSegments(t *testing.T) {
	dir := t.TempDir()
	key := testKey("Mcf/Base#0123456789abcdef")
	want := cellResult{Benchmark: "Mcf", Design: "Base", IPC: 1.5, Cycles: 7}

	// A previous sweep journaled the cell.
	jn, err := journal.Open(dir, key.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Record(key.Cell, want); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	c := New(1 << 20)
	c.SetDiskDir(dir)
	var got cellResult
	src, err := c.Do(key, &got, func() (any, error) {
		t.Error("disk-resident cell was recomputed")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if src != Disk {
		t.Fatalf("source = %v, want Disk", src)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disk tier served %+v, want %+v", got, want)
	}
	// And the serve populated the memory tier.
	src, err = c.Do(key, &got, func() (any, error) { return nil, errors.New("no") })
	if err != nil || src != Memory {
		t.Fatalf("re-serve = (%v, %v), want (Memory, nil)", src, err)
	}
	if s := c.Stats(); s.DiskHits != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit / 1 memory hit", s)
	}

	// A foreign identity in the same directory must not be served.
	other := key
	other.ID.Experiment = "fig9"
	var miss cellResult
	src, err = c.Do(other, &miss, func() (any, error) { return cellResult{IPC: 9}, nil })
	if err != nil || src != Computed {
		t.Fatalf("foreign identity = (%v, %v), want (Computed, nil)", src, err)
	}
}

func TestDiskTierDegradesOnUnusableDirectory(t *testing.T) {
	// A regular file where the directory should be: journal.Open fails,
	// the identity degrades to memory-only and compute still runs.
	dir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(1 << 20)
	c.SetDiskDir(dir)
	var got cellResult
	src, err := c.Do(testKey("d"), &got, func() (any, error) { return cellResult{IPC: 3}, nil })
	if err != nil || src != Computed {
		t.Fatalf("Do = (%v, %v), want (Computed, nil)", src, err)
	}
	if got.IPC != 3 {
		t.Fatalf("got %+v, want IPC 3", got)
	}
	if s := c.Stats(); s.DiskErrors != 1 {
		t.Fatalf("stats = %+v, want 1 disk error", s)
	}
	// The degraded identity is remembered: no second open attempt.
	if _, err := c.Do(testKey("e"), &got, func() (any, error) { return cellResult{IPC: 4}, nil }); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.DiskErrors != 1 {
		t.Fatalf("degraded identity re-opened: %+v", s)
	}
}

func TestPanickingComputeReleasesTheFlight(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	waited := make(chan struct{})
	var waiterErr error
	go func() {
		defer close(waited)
		<-started
		_, waiterErr = c.Do(testKey("p"), &cellResult{}, func() (any, error) {
			return cellResult{}, nil
		})
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the leader")
			}
		}()
		_, _ = c.Do(testKey("p"), &cellResult{}, func() (any, error) {
			close(started)
			// Give the waiter a chance to coalesce onto this flight; if it
			// arrives after the panic it simply recomputes, which the final
			// Do below proves is possible either way.
			for c.Stats().Coalesced == 0 {
				runtime.Gosched()
			}
			panic("cell exploded")
		})
	}()
	<-waited
	if waiterErr == nil {
		t.Fatal("coalesced waiter got nil error from a panicked flight")
	}

	// The flight must be gone: a fresh Do computes instead of deadlocking.
	var got cellResult
	src, err := c.Do(testKey("p"), &got, func() (any, error) { return cellResult{IPC: 5}, nil })
	if err != nil || src != Computed {
		t.Fatalf("post-panic Do = (%v, %v), want (Computed, nil)", src, err)
	}
}

func TestNilCacheRunsComputeDirectly(t *testing.T) {
	var c *Cache
	want := cellResult{Benchmark: "Povray", IPC: 1.1}
	var got cellResult
	src, err := c.Do(testKey("n"), &got, func() (any, error) { return want, nil })
	if err != nil || src != Computed {
		t.Fatalf("nil-cache Do = (%v, %v), want (Computed, nil)", src, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nil-cache Do served %+v, want %+v", got, want)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil-cache stats = %+v, want zero", s)
	}
}
