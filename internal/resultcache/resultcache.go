// Package resultcache is the content-addressed per-cell result cache behind
// the m3dd serving layer. A sweep cell — one (benchmark × design) simulation
// — is a pure function of its journal identity tuple (experiment, sizing,
// seed, stream, kernel, sampling, warm mode) plus its cell key, so its
// result can be cached under that address and served to any later request
// for the same cell, whether it arrives in the same sweep, a repeated
// sweep, or a concurrent one.
//
// Three tiers, consulted in order:
//
//	memory    an LRU of canonical-JSON cell results under a byte budget —
//	          a hit costs one decode, ~100-1000× below a cold simulation;
//	flight    single-flight coalescing: N concurrent requests for one cell
//	          cost one simulation, the N-1 losers wait on the winner
//	          (the trace package's SharedRecording pattern, generalised
//	          from recordings to arbitrary journaled results);
//	disk      optional: existing .m3dj journal segments (see the journal
//	          package) are indexed per identity and their records re-served
//	          without re-simulation, so a directory of finished sweeps
//	          becomes a warm serving corpus.
//
// Values are stored as their canonical JSON encoding and every serve —
// including the first, freshly computed one — decodes from that encoding,
// so a cached cell is bit-identical to a journal-resumed one (every
// journaled result type round-trips JSON bit-identically; the resume
// oracles prove it). Errors are never cached: a failed cell is re-attempted
// by the next request, mirroring the journal's record-only-successes rule.
//
// The cache degrades rather than dies: an unusable disk directory (or an
// unreadable identity segment set) downgrades that identity to memory-only
// serving, counted in Stats.DiskErrors, never fatal.
package resultcache

import (
	"container/list"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"vertical3d/internal/journal"
)

// Key is the content address of one sweep cell: the sweep's journal
// identity (experiment name + every result-changing parameter) plus the
// cell key built by journal.CellKey (benchmark/design plus the fingerprint
// of the full input tuple). Two requests share a Key exactly when the
// journal layer would let them share a record.
type Key struct {
	ID   journal.Identity
	Cell string
}

// addr renders the key as the internal map address. Identity.String is
// injective over well-formed identities (ordered key=value pairs), and the
// cell key carries its own input fingerprint.
func (k Key) addr() string {
	return k.ID.String() + "\x00" + k.Cell
}

// Source reports which tier served a Do call.
type Source int

const (
	// Computed: no tier had the cell; the compute function ran.
	Computed Source = iota
	// Memory: served from the in-memory LRU.
	Memory
	// Disk: served from an indexed .m3dj journal segment.
	Disk
	// Coalesced: waited on a concurrent flight for the same cell.
	Coalesced
)

// String names the source for logs and stats pages.
func (s Source) String() string {
	switch s {
	case Computed:
		return "computed"
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	case Coalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Stats is a snapshot of the cache counters. Hits+Coalesced+DiskHits over
// total Do calls is the serve ratio; Coalesced is the witness that K
// concurrent identical sweeps executed ~one simulation's worth of cells.
type Stats struct {
	// Hits counts memory-tier serves; DiskHits disk-tier serves; Coalesced
	// calls that waited on a concurrent flight instead of computing.
	Hits      uint64 `json:"hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Coalesced uint64 `json:"coalesced"`
	// Computed counts compute runs that succeeded; Errors ones that failed
	// (failed cells are never cached).
	Computed uint64 `json:"computed"`
	Errors   uint64 `json:"errors"`
	// Evictions counts LRU entries dropped to respect the byte budget;
	// DiskErrors counts identities whose disk tier could not be opened and
	// degraded to memory-only serving.
	Evictions  uint64 `json:"evictions"`
	DiskErrors uint64 `json:"disk_errors"`
	// Entries and Bytes describe the current memory tier.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// entry is one memory-tier cell: the address plus the canonical JSON.
type entry struct {
	addr string
	raw  json.RawMessage
}

// flight is one in-progress computation. The winner closes done after
// settling val/err; losers block on done and read the settled fields.
type flight struct {
	done chan struct{}
	raw  json.RawMessage
	err  error
}

// Cache is a content-addressed cell-result cache with single-flight
// coalescing and an optional disk tier. All methods are safe for concurrent
// use; a nil *Cache is valid and behaves as an always-miss, never-coalesce
// cache (Do runs compute directly), so call sites need no guards.
type Cache struct {
	mu      sync.Mutex
	budget  int64 // memory-tier byte budget; <=0 = unbounded
	bytes   int64
	lru     *list.List               // front = most recently used; values are *entry
	items   map[string]*list.Element // addr -> element
	flights map[string]*flight       // addr -> in-progress computation
	stats   Stats

	diskDir  string
	journals map[string]*journal.Journal // identity string -> read index; nil = unusable

	// idCount counts memory-tier entries per identity string, feeding
	// KnownCells without a full LRU scan.
	idCount map[string]int
}

// New returns a cache whose memory tier holds at most budget bytes of
// canonical-JSON results (<=0 means unbounded). The newest entry is always
// retained even when it alone exceeds the budget, so a single oversized
// cell degrades to cache-of-one rather than thrashing.
func New(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		lru:     list.New(),
		items:   map[string]*list.Element{},
		flights: map[string]*flight{},
		idCount: map[string]int{},
	}
}

// SetDiskDir points the cache at a directory of .m3dj journal segments:
// each identity's segments are indexed lazily on its first miss and their
// records served without re-simulation. An empty dir disables the tier.
// Identities whose segments cannot be opened degrade to memory-only
// serving (Stats.DiskErrors). Safe to call concurrently with Do; affects
// identities not yet indexed.
func (c *Cache) SetDiskDir(dir string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.diskDir = dir
	c.journals = nil
	c.mu.Unlock()
}

// Stats returns a snapshot of the counters. Safe on a nil cache.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	return s
}

// Do serves the cell at key into out (a pointer, as for json.Unmarshal):
// memory tier, then a concurrent flight, then the disk tier, then compute.
// The value compute returns is stored as canonical JSON and out is decoded
// from that encoding — also on the computed path, so a request observes
// bit-identical bytes no matter which tier serves it. compute errors are
// returned unwrapped and never cached. A nil cache runs compute directly
// (still decoding through JSON, preserving the bit-identity contract).
func (c *Cache) Do(key Key, out any, compute func() (any, error)) (Source, error) {
	if c == nil {
		v, err := compute()
		if err != nil {
			return Computed, err
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return Computed, fmt.Errorf("resultcache: encode %s: %w", key.Cell, err)
		}
		return Computed, json.Unmarshal(raw, out)
	}

	addr := key.addr()
	c.mu.Lock()
	if el, ok := c.items[addr]; ok {
		c.lru.MoveToFront(el)
		raw := el.Value.(*entry).raw
		c.stats.Hits++
		c.mu.Unlock()
		return Memory, json.Unmarshal(raw, out)
	}
	if fl, ok := c.flights[addr]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return Coalesced, fl.err
		}
		return Coalesced, json.Unmarshal(fl.raw, out)
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[addr] = fl
	c.mu.Unlock()

	// This goroutine owns the flight: whatever happens — disk hit, compute
	// success, compute error, even a panic — the flight must be settled and
	// removed, or every coalesced waiter deadlocks. The panic re-raises so
	// the worker pool's PanicError recovery still sees it.
	settled := false
	settle := func(raw json.RawMessage, err error) {
		fl.raw, fl.err = raw, err
		c.mu.Lock()
		delete(c.flights, addr)
		c.mu.Unlock()
		close(fl.done)
		settled = true
	}
	defer func() {
		if !settled {
			r := recover()
			settle(nil, fmt.Errorf("resultcache: concurrent computation of %s panicked: %v", key.Cell, r))
			panic(r)
		}
	}()

	if raw, ok := c.diskLookup(key); ok {
		c.insert(addr, raw, &c.stats.DiskHits)
		settle(raw, nil)
		return Disk, json.Unmarshal(raw, out)
	}

	v, err := compute()
	if err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
		settle(nil, err)
		return Computed, err
	}
	raw, err := json.Marshal(v)
	if err != nil {
		err = fmt.Errorf("resultcache: encode %s: %w", key.Cell, err)
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
		settle(nil, err)
		return Computed, err
	}
	c.insert(addr, raw, &c.stats.Computed)
	settle(raw, nil)
	return Computed, json.Unmarshal(raw, out)
}

// insert stores one result in the memory tier, bumps counter and evicts
// from the LRU tail down to the byte budget (keeping at least the new
// entry).
func (c *Cache) insert(addr string, raw json.RawMessage, counter *uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	*counter++
	if el, ok := c.items[addr]; ok {
		// A racing Do for the same addr can insert between our flight
		// settling and this call only via the disk tier; the payloads are
		// identical by the identity contract, so keep the existing entry.
		c.lru.MoveToFront(el)
		return
	}
	c.items[addr] = c.lru.PushFront(&entry{addr: addr, raw: raw})
	c.bytes += int64(len(raw))
	c.idCount[identityOf(addr)]++
	for c.budget > 0 && c.bytes > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.items, e.addr)
		c.bytes -= int64(len(e.raw))
		if id := identityOf(e.addr); c.idCount[id] > 1 {
			c.idCount[id]--
		} else {
			delete(c.idCount, id)
		}
		c.stats.Evictions++
	}
}

// identityOf recovers the identity-string half of a cell address.
func identityOf(addr string) string {
	if i := strings.IndexByte(addr, 0); i >= 0 {
		return addr[:i]
	}
	return addr
}

// KnownCells reports how many cells of the given identity the cache can
// serve without simulation: memory-tier entries plus the disk-tier journal
// index (forced open if not yet indexed). Cells resident in both tiers are
// counted twice, so treat the value as a serviceability signal — the
// admission layer uses "greater than zero" to prefer cache-hit-serviceable
// jobs when shedding load — not an exact inventory. A nil cache knows
// nothing.
func (c *Cache) KnownCells(id journal.Identity) int {
	if c == nil {
		return 0
	}
	idStr := id.String()
	c.mu.Lock()
	n := c.idCount[idStr]
	c.mu.Unlock()
	return n + c.diskIndex(id).Len()
}
