// Package multicore runs parallel workloads on the multicore configurations
// of Figures 9-10: N out-of-order cores over the MESI/ring memory system,
// with barrier-synchronised phases and an Amdahl-style serial section, pairs
// of cores optionally sharing L2s and router stops (Figure 4).
package multicore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/parallel"
	"vertical3d/internal/power"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/warm"
)

// RunResult summarises one multicore execution.
type RunResult struct {
	Config config.MCConfig

	Cycles  uint64 // total cycles (sum over phases of the slowest core)
	Seconds float64
	Instrs  uint64

	CoreStats []uarch.Stats
	MemStats  mem.HierStats
	Energy    power.Breakdown
}

// Options tunes a run.
type Options struct {
	// TotalInstrs is the total parallel work in dynamic instructions,
	// divided evenly among the cores (plus the serial fraction on core 0).
	TotalInstrs uint64
	// WarmupPerCore instructions run per core before measurement.
	WarmupPerCore uint64
	// Phases is the number of barrier-delimited phases.
	Phases int
	Seed   int64
	// Lockstep interleaves the cores cycle by cycle within each phase,
	// exposing true memory-system contention; the default runs each core's
	// phase to completion in turn (faster, contention time-skewed).
	Lockstep bool

	// StreamBase offsets the per-core trace stream ids: core i draws
	// stream StreamBase+i. The default 0 keeps the historical behaviour
	// (core i = stream i); experiments that also run single-core cells at
	// the same seed can set a base so the streams cannot silently collide
	// with experiments.RunOptions.StreamID.
	StreamBase int

	// NoTraceCache disables the shared trace-recording cache and
	// regenerates each core's instruction stream inside every sweep cell
	// (the pre-replay behaviour). Results are bit-identical either way;
	// see experiments/tracecache_oracle_test.go.
	NoTraceCache bool

	// Workers bounds the worker pool of experiment sweeps that fan out
	// multiple Runs (experiments.Fig9With). Run itself is single-threaded;
	// 0 means parallel.DefaultWorkers(). Results are bit-identical at any
	// worker count.
	Workers int

	// Context, when non-nil, bounds an experiment sweep that fans out
	// multiple Runs: cancelling it stops dispatching new cells while
	// in-flight cells drain (the graceful-shutdown path). Run itself does
	// not consult it. Nil means context.Background().
	Context context.Context

	// JournalDir enables crash-safe checkpointing for experiment sweeps:
	// completed (benchmark × design) cells are appended to a write-ahead
	// journal there and merged bit-identically on resume. Empty disables
	// journaling. See the journal package.
	JournalDir string

	// TaskTimeout bounds each sweep-cell attempt and SweepTimeout the
	// whole sweep (zero = unbounded); Retry re-runs transiently failed
	// cells with jittered exponential backoff (zero value = one attempt).
	TaskTimeout  time.Duration
	SweepTimeout time.Duration
	Retry        parallel.Retry

	// WatchdogGrace and WatchdogLog arm the sweep pool's stuck-cell
	// watchdog: cells still running WatchdogGrace past their TaskTimeout
	// are reported to WatchdogLog once per attempt.
	WatchdogGrace time.Duration
	WatchdogLog   func(format string, args ...any)

	// KeepGoing completes an experiment sweep even when individual
	// (benchmark × design) cells fail or panic; failed cells are recorded
	// in the sweep result's Errors map and rendered as ERR.
	KeepGoing bool

	// CellHook, when non-nil, is invoked at the start of every sweep cell
	// with the cell's coordinates — the deterministic fault-injection seam
	// used by the chaos tests (guard/faultinject). Production callers leave
	// it nil.
	CellHook func(bench, design string)

	// Kernel selects the per-core simulation kernel. The zero value is
	// uarch.KernelEvent; uarch.KernelReference keeps the original scan
	// kernel for differential debugging. Both are bit-identical in every
	// Stats/HierStats output: lockstep runs advance cores with Step, which
	// never idle-skips, so the shared-memory interleaving is preserved, and
	// non-lockstep runs execute each core's phase sequentially, where
	// idle-skipping cannot reorder accesses.
	Kernel uarch.Kernel

	// Sample fast-forwards each core's warmup functionally (caches and
	// branch predictor only, no detailed pipeline) instead of simulating
	// it in detail. Multicore runs do not sample the measured phases —
	// the per-phase instruction budgets are too small for interval
	// sampling, and extrapolating per-core windows over a shared, mutually
	// interfering memory system would not be sound — so this trades only
	// warmup time, leaving the measured phases exact for the warmed state.
	// Runs with and without it carry distinct journal identities.
	Sample bool

	// WarmCache enables the warm-state snapshot cache for sampled runs:
	// the functional warmup of each (profile, seed, stream-base, topology,
	// warmup, geometry) identity is captured once and every other design
	// point restores the capture instead of re-warming every core (see
	// internal/warm). Results are bit-identical either way. Ignored
	// without Sample or with NoTraceCache (snapshots need replayer-backed
	// streams).
	WarmCache bool

	// Cache, when non-nil, adds the content-addressed result-cache tier in
	// front of the journal for experiment sweeps that fan out multiple
	// Runs (experiments.Fig9With): each cell consults cache → journal →
	// simulate and concurrent identical cells coalesce onto one
	// simulation. Run itself does not consult it. Results are
	// bit-identical with or without the tier. See internal/resultcache.
	Cache *resultcache.Cache
}

// DefaultOptions returns run options sized for the benchmark harness.
func DefaultOptions() Options {
	return Options{TotalInstrs: 600_000, WarmupPerCore: 30_000, Phases: 4, Seed: 42}
}

// coreSource returns core i's instruction source: by default a replayer
// over the process-wide shared recording of (profile, seed, StreamBase+i)
// — so a Fig9 sweep records each core's stream once and every design
// point replays it — or a fresh generator when the cache is disabled.
func coreSource(prof trace.Profile, opt Options, cores, i int) trace.Source {
	stream := opt.StreamBase + i
	if opt.NoTraceCache {
		return trace.NewGenerator(prof, opt.Seed, stream)
	}
	// Size for the instructions core i retires (its share of the parallel
	// work plus warmup, with the serial fraction on core 0); wrong-path
	// overfetch extends the recording on demand.
	hint := opt.WarmupPerCore + opt.TotalInstrs/uint64(cores)
	if i == 0 {
		hint += uint64(float64(opt.TotalInstrs) * prof.SerialFrac)
	}
	return trace.NewReplayer(trace.SharedRecording(prof, opt.Seed, stream, int(min(hint, 1<<30))))
}

// Run executes the profile on the multicore configuration. The same
// TotalInstrs of work is performed regardless of the core count, so designs
// with more cores finish sooner (modulo the serial fraction, sharing and
// coherence behaviour) — exactly the iso-work comparison of Figure 9.
func Run(mc config.MCConfig, prof trace.Profile, opt Options) (RunResult, error) {
	if mc.Cores < 1 {
		return RunResult{}, errors.New("multicore: need at least one core")
	}
	if opt.Phases < 1 {
		opt.Phases = 1
	}
	backend, err := mem.NewMulticore(mc)
	if err != nil {
		return RunResult{}, err
	}
	cores := make([]*uarch.Core, mc.Cores)
	for i := range cores {
		src := coreSource(prof, opt, mc.Cores, i)
		c, err := uarch.NewCoreKernel(i, mc.PerCore, src, backend, opt.Kernel)
		if err != nil {
			return RunResult{}, err
		}
		cores[i] = c
	}

	// Warm up all cores (caches, predictors) without counting time — in
	// sampled mode functionally, skipping the OoO backend. With the
	// snapshot cache, the functional warmup of an identity is captured
	// once and every later design point restores it instead (detailed
	// warmup is never cached: its state includes the pipeline and clock).
	doWarm := func() {
		for _, c := range cores {
			if opt.Sample {
				c.FastForward(opt.WarmupPerCore)
			} else {
				c.Run(opt.WarmupPerCore)
			}
		}
	}
	if opt.Sample && opt.WarmCache && !opt.NoTraceCache && opt.WarmupPerCore > 0 {
		id := warm.MCIdentity{
			Prof:       prof,
			Seed:       opt.Seed,
			StreamBase: opt.StreamBase,
			Cores:      mc.Cores,
			SharedL2:   mc.SharedL2,
			Warmup:     opt.WarmupPerCore,
			Geom:       warm.GeometryOf(mc.PerCore),
		}
		warm.MCWarmup(id, backend, cores, doWarm)
	} else {
		doWarm()
	}
	warmCy := make([]uint64, mc.Cores)
	warmIn := make([]uint64, mc.Cores)
	base := make([]uarch.Stats, mc.Cores)
	for i, c := range cores {
		base[i] = c.Stats
		warmCy[i] = c.Stats.Cycles
		warmIn[i] = c.Stats.Instrs
	}

	// Parallel work split: the serial fraction runs on core 0 only while
	// the others wait at the barrier.
	serial := uint64(float64(opt.TotalInstrs) * prof.SerialFrac)
	parallel := opt.TotalInstrs - serial
	perCore := parallel / uint64(mc.Cores)
	perPhase := perCore / uint64(opt.Phases)
	serialPerPhase := serial / uint64(opt.Phases)

	var totalCycles uint64
	target := make([]uint64, mc.Cores)
	for i := range target {
		target[i] = warmIn[i]
	}
	lastCy := warmCy

	for ph := 0; ph < opt.Phases; ph++ {
		var phaseMax uint64
		for i := range cores {
			target[i] += perPhase
			if i == 0 {
				target[i] += serialPerPhase
			}
		}
		if opt.Lockstep {
			// Advance every unfinished core one cycle per round until all
			// reach the barrier.
			for {
				running := false
				for i, c := range cores {
					if c.Stats.Instrs < target[i] {
						c.Step()
						running = true
					}
				}
				if !running {
					break
				}
			}
		} else {
			for i, c := range cores {
				c.Run(target[i])
			}
		}
		for i, c := range cores {
			d := c.Stats.Cycles - lastCy[i]
			if d > phaseMax {
				phaseMax = d
			}
		}
		for i, c := range cores {
			lastCy[i] = c.Stats.Cycles
		}
		totalCycles += phaseMax
	}

	res := RunResult{Config: mc, Cycles: totalCycles}
	res.Seconds = float64(totalCycles) / (mc.PerCore.FreqGHz * 1e9)
	hs := backend.Stats()
	res.MemStats = hs

	for i, c := range cores {
		st := c.Stats
		st.Cycles -= base[i].Cycles
		st.Instrs -= base[i].Instrs
		res.Instrs += st.Instrs
		res.CoreStats = append(res.CoreStats, st)
		// Idle cycles waiting at barriers still burn clock and leakage:
		// charge each core for the full phase duration.
		st.Cycles = totalCycles
		eb := power.Estimate(mc.PerCore, st, mem.HierStats{}, res.Seconds)
		res.Energy = res.Energy.Add(eb)
	}
	// Charge the shared memory system once.
	memOnly := power.Estimate(mc.PerCore, uarch.Stats{}, hs, res.Seconds)
	memOnly.LeakageJ = 0 // core leakage already charged per core
	memOnly.ClockJ = 0
	res.Energy = res.Energy.Add(memOnly)
	if err := res.Energy.Validate(); err != nil {
		return RunResult{}, fmt.Errorf("multicore %s/%s: %w", mc.Name, prof.Name, err)
	}
	return res, nil
}
