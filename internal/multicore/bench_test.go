package multicore

import (
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/tech"
	"vertical3d/internal/uarch"
	"vertical3d/internal/workload"
)

// BenchmarkMulticoreStep measures lockstep multicore throughput — the mode
// where cores advance one cycle at a time through Step, which never
// idle-skips. The event kernel's win here comes purely from the O(ready)
// issue stage and the indexed store forwarding, so this isolates those two
// optimisations from the idle-skip fast path measured by BenchmarkCoreRun.
func BenchmarkMulticoreStep(b *testing.B) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	m := config.DeriveMulticore(s)
	p, err := workload.ByName("Fft")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []uarch.Kernel{uarch.KernelEvent, uarch.KernelReference} {
		b.Run(k.String(), func(b *testing.B) {
			opt := Options{TotalInstrs: 120_000, WarmupPerCore: 4_000, Phases: 2,
				Seed: 42, Lockstep: true, Kernel: k}
			var retired uint64
			for i := 0; i < b.N; i++ {
				r, err := Run(m[config.MCBase], p, opt)
				if err != nil {
					b.Fatal(err)
				}
				retired += r.Instrs
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(retired)/sec/1e6, "mips")
			}
		})
	}
}
