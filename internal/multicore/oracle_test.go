package multicore

import (
	"reflect"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/uarch"
	"vertical3d/internal/workload"
)

// TestOracleLockstepKernelsBitIdentical pins the hardest equivalence: in
// lockstep mode the cores interleave their accesses to the shared MESI/ring
// backend cycle by cycle, so the kernels must agree not just per core but on
// the global memory-access order. Any idle-skip leak into Step, or any
// reordering of FetchExtra/DataExtra calls, diverges the coherence traffic
// counted in MemStats.
func TestOracleLockstepKernelsBitIdentical(t *testing.T) {
	m := mcs(t)
	for _, lockstep := range []bool{true, false} {
		for _, d := range []config.MulticoreDesign{config.MCBase, config.MCHet2X} {
			for _, bench := range []string{"Fft", "Ocean"} {
				p, err := workload.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				opt := quickOpt()
				opt.Lockstep = lockstep
				opt.Kernel = uarch.KernelReference
				ref, err := Run(m[d], p, opt)
				if err != nil {
					t.Fatal(err)
				}
				opt.Kernel = uarch.KernelEvent
				ev, err := Run(m[d], p, opt)
				if err != nil {
					t.Fatal(err)
				}
				name := m[d].Name + "/" + bench
				if lockstep {
					name += "/lockstep"
				}
				if ref.Cycles != ev.Cycles || ref.Instrs != ev.Instrs {
					t.Errorf("%s: cycles/instrs diverge: ref %d/%d, evt %d/%d",
						name, ref.Cycles, ref.Instrs, ev.Cycles, ev.Instrs)
				}
				if !reflect.DeepEqual(ref.CoreStats, ev.CoreStats) {
					t.Errorf("%s: CoreStats diverge:\nref %+v\nevt %+v", name, ref.CoreStats, ev.CoreStats)
				}
				if ref.MemStats != ev.MemStats {
					t.Errorf("%s: MemStats diverge:\nref %+v\nevt %+v", name, ref.MemStats, ev.MemStats)
				}
				if ref.Energy != ev.Energy {
					t.Errorf("%s: Energy diverges:\nref %+v\nevt %+v", name, ref.Energy, ev.Energy)
				}
			}
		}
	}
}
