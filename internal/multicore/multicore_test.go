package multicore

import (
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/tech"
	"vertical3d/internal/workload"
)

func quickOpt() Options {
	return Options{TotalInstrs: 60_000, WarmupPerCore: 4_000, Phases: 2, Seed: 1}
}

func mcs(t *testing.T) map[config.MulticoreDesign]config.MCConfig {
	t.Helper()
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	return config.DeriveMulticore(s)
}

func TestRunBasics(t *testing.T) {
	m := mcs(t)
	p, err := workload.ByName("Fft")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(m[config.MCBase], p, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Seconds <= 0 {
		t.Error("run must take time")
	}
	if len(r.CoreStats) != 4 {
		t.Errorf("expected 4 cores of stats, got %d", len(r.CoreStats))
	}
	if r.Instrs < 55_000 {
		t.Errorf("should retire ≈60k instructions, got %d", r.Instrs)
	}
	if r.Energy.TotalJ() <= 0 {
		t.Error("energy must be positive")
	}
	if r.MemStats.NoCHops == 0 {
		t.Error("a multicore run must use the NoC")
	}
}

func TestEightCoresFinishFaster(t *testing.T) {
	m := mcs(t)
	p, err := workload.ByName("Blackscholes") // highly parallel
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(m[config.MCBase], p, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	twoX, err := Run(m[config.MCHet2X], p, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	speedup := base.Seconds / twoX.Seconds
	if speedup < 1.3 {
		t.Errorf("8 cores at Base frequency should clearly beat 4 cores on parallel work, got %.2fx", speedup)
	}
	if speedup > 3.0 {
		t.Errorf("speedup %.2fx implausibly above the core-count ratio", speedup)
	}
}

func TestSharingCostsCoherence(t *testing.T) {
	m := mcs(t)
	low, err := workload.ByName("Blackscholes") // SharedFrac 0.02
	if err != nil {
		t.Fatal(err)
	}
	high, err := workload.ByName("Canneal") // SharedFrac 0.3
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(m[config.MCBase], low, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(m[config.MCBase], high, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if rh.MemStats.Invalidations <= rl.MemStats.Invalidations {
		t.Errorf("write-shared Canneal (%d invs) must out-invalidate Blackscholes (%d)",
			rh.MemStats.Invalidations, rl.MemStats.Invalidations)
	}
}

func TestSerialFractionLimitsScaling(t *testing.T) {
	m := mcs(t)
	p, err := workload.ByName("Fft")
	if err != nil {
		t.Fatal(err)
	}
	p.SerialFrac = 0
	free, err := Run(m[config.MCHet2X], p, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	p.SerialFrac = 0.30
	serial, err := Run(m[config.MCHet2X], p, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if serial.Seconds <= free.Seconds {
		t.Error("a serial fraction must slow the parallel run down (Amdahl)")
	}
}

func TestLowVoltageCutsPower(t *testing.T) {
	m := mcs(t)
	p, err := workload.ByName("Lu")
	if err != nil {
		t.Fatal(err)
	}
	het := m[config.MCHet]
	het.PerCore.FreqGHz = m[config.MCBase].PerCore.FreqGHz // isolate the Vdd effect
	hi, err := Run(het, p, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	het.PerCore.Vdd -= 0.05
	lo, err := Run(het, p, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if lo.Energy.AvgWatts() >= hi.Energy.AvgWatts() {
		t.Errorf("lower Vdd must cut power: %.2fW vs %.2fW", lo.Energy.AvgWatts(), hi.Energy.AvgWatts())
	}
}

func TestRunValidation(t *testing.T) {
	p, err := workload.ByName("Fft")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(config.MCConfig{}, p, quickOpt()); err == nil {
		t.Error("expected error for zero cores")
	}
}

func TestLockstepAgreesWithSequential(t *testing.T) {
	m := mcs(t)
	p, err := workload.ByName("Fft")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(m[config.MCBase], p, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	lock := quickOpt()
	lock.Lockstep = true
	ls, err := Run(m[config.MCBase], p, lock)
	if err != nil {
		t.Fatal(err)
	}
	diff := int64(ls.Instrs) - int64(seq.Instrs)
	if diff < -32 || diff > 32 {
		// Commit-width overshoot differs slightly between the modes.
		t.Errorf("both modes must retire (nearly) the same work: %d vs %d", ls.Instrs, seq.Instrs)
	}
	// Interleaving perturbs cache/coherence timing but should stay within
	// a factor of the phase-sequential estimate.
	ratio := float64(ls.Cycles) / float64(seq.Cycles)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("lockstep/sequential cycle ratio %.2f outside [0.5,2.0]", ratio)
	}
}
