package logic3d

import (
	"testing"
	"testing/quick"

	"vertical3d/internal/tech"
)

func TestSingleALUFrequencyGain(t *testing.T) {
	// Section 3.1 anchor: a two-layer M3D adder+bypass runs ≈15% faster.
	r, err := ALUBypass(tech.N22(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.FreqGain < 0.08 || r.FreqGain > 0.22 {
		t.Errorf("1-ALU M3D frequency gain %.1f%%, paper reports ≈15%%", r.FreqGain*100)
	}
	if r.FootprintSaving < 0.35 || r.FootprintSaving > 0.50 {
		t.Errorf("footprint saving %.0f%%, paper reports 41%%", r.FootprintSaving*100)
	}
}

func TestFourALUFrequencyGain(t *testing.T) {
	// Section 3.1 anchor: four ALUs with bypass gain ≈28% frequency and
	// ≈10% energy, because the bypass wire grows with ALU count.
	r, err := ALUBypass(tech.N22(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.FreqGain < 0.20 || r.FreqGain > 0.36 {
		t.Errorf("4-ALU M3D frequency gain %.1f%%, paper reports ≈28%%", r.FreqGain*100)
	}
	if r.EnergySaving < 0.04 || r.EnergySaving > 0.20 {
		t.Errorf("4-ALU M3D energy saving %.1f%%, paper reports ≈10%%", r.EnergySaving*100)
	}
}

func TestMoreALUsGainMore(t *testing.T) {
	n := tech.N22()
	prev := -1.0
	for _, k := range []int{1, 2, 4, 8} {
		r, err := ALUBypass(n, k)
		if err != nil {
			t.Fatal(err)
		}
		if r.FreqGain <= prev {
			t.Errorf("%d ALUs: frequency gain %.1f%% should exceed the smaller stage's %.1f%%",
				k, r.FreqGain*100, prev*100)
		}
		prev = r.FreqGain
	}
}

func TestALUBypassRejectsBadCount(t *testing.T) {
	if _, err := ALUBypass(tech.N22(), 0); err == nil {
		t.Error("expected error for zero ALUs")
	}
}

func TestCriticalPathFraction(t *testing.T) {
	a := NewCarrySkipAdder()
	if a.Blocks() != 16 {
		t.Errorf("64-bit adder with 4-bit blocks must have 16 blocks, got %d", a.Blocks())
	}
	f := a.CriticalPathFraction()
	if f < 0.005 || f > 0.06 {
		t.Errorf("critical path fraction %.3f, paper reports ≈1.5%%", f)
	}
}

func TestSlackFractionAnchors(t *testing.T) {
	if got := SlackFraction(0); got < 0.01 || got > 0.02 {
		t.Errorf("zero-slack critical fraction %.3f, paper reports 1.5%%", got)
	}
	if got := SlackFraction(0.20); got < 0.35 || got > 0.41 {
		t.Errorf("20%%-slack critical fraction %.2f, paper reports 38%%", got)
	}
	if SlackFraction(-0.1) != 1 {
		t.Error("negative slack means everything is critical")
	}
	if SlackFraction(10) != 1 {
		t.Error("slack fraction must saturate at 1")
	}
}

func TestTopLayerSlowdownHideable(t *testing.T) {
	// Section 4.1.1: even a 20% slower top layer leaves ≥50% of gates
	// placeable there, so the measured 17% penalty is always hideable.
	if !CanHideTopSlowdown(0.17) {
		t.Error("the 17% top-layer penalty must be hideable")
	}
	if !CanHideTopSlowdown(0.20) {
		t.Error("the paper argues even 20% slack leaves enough non-critical gates")
	}
	max := MaxTopSlowdown()
	if max < 0.20 || max > 0.60 {
		t.Errorf("max hideable slowdown %.2f outside plausible range", max)
	}
	if CanHideTopSlowdown(max + 0.05) {
		t.Error("slowdowns beyond the maximum must not be hideable")
	}
}

func TestSelectTreeLatencyUnchangedInHetero(t *testing.T) {
	// Section 4.4.1: placing local-grant generation in the top layer keeps
	// the select latency identical to the iso-layer design.
	n := tech.N22()
	s := NewSelectTree(84)
	if s.HeteroDelay(n) != s.Delay(n) {
		t.Error("hetero select latency must equal iso latency")
	}
	if s.Levels() < 2 || s.Levels() > 5 {
		t.Errorf("84-entry radix-4 tree depth %d implausible", s.Levels())
	}
	if NewSelectTree(1).Levels() != 1 {
		t.Error("degenerate tree must have one level")
	}
}

func TestSelectTreeDelayGrowsWithEntries(t *testing.T) {
	n := tech.N22()
	small, big := NewSelectTree(16), NewSelectTree(256)
	if big.Delay(n) <= small.Delay(n) {
		t.Error("bigger queues need deeper arbitration")
	}
}

func TestHeteroDecodePlan(t *testing.T) {
	p := HeteroDecodePlan()
	if !p.ComplexDecoderOnTop || p.ComplexExtraCycles != 1 {
		t.Errorf("Section 4.1.2: complex decoder goes on top with one extra cycle, got %+v", p)
	}
	if p.SimpleDecoders < 1 {
		t.Error("need simple decoders in the bottom layer")
	}
}

func TestPropertySlackFractionMonotone(t *testing.T) {
	f := func(aSeed, bSeed uint8) bool {
		a := float64(aSeed) / 255.0
		b := a + float64(bSeed+1)/512.0
		return SlackFraction(b) >= SlackFraction(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyM3DAlwaysFaster(t *testing.T) {
	n := tech.N22()
	f := func(seed uint8) bool {
		k := 1 + int(seed)%8
		r, err := ALUBypass(n, k)
		if err != nil {
			return false
		}
		return r.DelayM3D < r.Delay2D && r.EnergySaving > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAssignAdderBlocks(t *testing.T) {
	a := NewCarrySkipAdder()
	as, err := AssignAdderBlocks(a, 0.17)
	if err != nil {
		t.Fatal(err)
	}
	if !CriticalOnBottom(as) {
		t.Error("every critical block must stay in the bottom layer (Table 7)")
	}
	frac := TopFraction(as)
	// Section 4.1.1: roughly half the logic moves up; Figure 5 moves the
	// {32:63} propagate and {28:59} sum blocks.
	if frac < 0.30 || frac > 0.65 {
		t.Errorf("top-layer fraction %.2f outside [0.30,0.65]", frac)
	}
	// Bits {0:3} propagate must be bottom+critical.
	found := false
	for _, b := range as {
		if b.Block == "propagate[0:3]" {
			found = true
			if b.Layer != Bottom || !b.Critical {
				t.Errorf("propagate[0:3] must be critical and bottom: %+v", b)
			}
		}
	}
	if !found {
		t.Error("missing propagate[0:3] block")
	}
}

func TestAssignAdderBlocksSlowdownSensitivity(t *testing.T) {
	a := NewCarrySkipAdder()
	low, err := AssignAdderBlocks(a, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	high, err := AssignAdderBlocks(a, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if TopFraction(high) > TopFraction(low) {
		t.Error("a slower top layer cannot host more blocks")
	}
	if _, err := AssignAdderBlocks(a, -0.1); err == nil {
		t.Error("expected error for negative slowdown")
	}
	if _, err := AssignAdderBlocks(a, 5.0); err == nil {
		t.Error("expected error when the slowdown is unhideable")
	}
}
