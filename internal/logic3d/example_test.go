package logic3d_test

import (
	"fmt"

	"vertical3d/internal/logic3d"
)

// ExampleCanHideTopSlowdown reproduces Section 4.1.1's argument: the 17%
// top-layer penalty of current M3D technology is always hideable by
// slack-aware gate placement.
func ExampleCanHideTopSlowdown() {
	fmt.Println("17% hideable:", logic3d.CanHideTopSlowdown(0.17))
	fmt.Println("20% hideable:", logic3d.CanHideTopSlowdown(0.20))
	// Output:
	// 17% hideable: true
	// 20% hideable: true
}

// ExampleAssignAdderBlocks shows the Figure 5 partition of the 64-bit
// carry-skip adder: every critical block stays in the fast bottom layer.
func ExampleAssignAdderBlocks() {
	a := logic3d.NewCarrySkipAdder()
	as, err := logic3d.AssignAdderBlocks(a, 0.17)
	if err != nil {
		panic(err)
	}
	fmt.Println("critical blocks stay below:", logic3d.CriticalOnBottom(as))
	fmt.Printf("share of blocks moved up: %.0f%%\n", logic3d.TopFraction(as)*100)
	// Output:
	// critical blocks stay below: true
	// share of blocks moved up: 58%
}
