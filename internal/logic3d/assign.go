package logic3d

import (
	"errors"
	"fmt"
)

// Layer identifies a silicon layer in the two-layer stack.
type Layer int

const (
	// Bottom is the fast (HP) layer of a hetero M3D stack.
	Bottom Layer = iota
	// Top is the slower, low-temperature-processed layer.
	Top
)

// String names the layer.
func (l Layer) String() string {
	if l == Top {
		return "top"
	}
	return "bottom"
}

// BlockAssignment maps one adder block to a layer.
type BlockAssignment struct {
	Block string
	Layer Layer
	// Critical marks blocks on the stage's zero-slack path.
	Critical bool
}

// AssignAdderBlocks reproduces the Section 4.1.1 partition of the 64-bit
// carry-skip adder (Figure 5): the critical path — the carry-propagate
// block of bits {0:3}, the skip-mux chain, and the final sum — stays in the
// bottom layer; the carry-propagate blocks of bits {32:63} and the sum
// blocks of bits {28:59} move to the top layer, where their slack absorbs
// the process penalty. topSlowdown is the top layer's delay penalty; blocks
// whose slack (growing with distance from the LSB) exceeds it are eligible.
func AssignAdderBlocks(a CarrySkipAdder, topSlowdown float64) ([]BlockAssignment, error) {
	if topSlowdown < 0 {
		return nil, errors.New("logic3d: negative slowdown")
	}
	if !CanHideTopSlowdown(topSlowdown) {
		return nil, fmt.Errorf("logic3d: %.0f%% slowdown leaves under half the gates non-critical", topSlowdown*100)
	}
	blocks := a.Blocks()
	var out []BlockAssignment

	// Slack grows with distance from the LSB: the carry reaches block k
	// only after k skip-mux delays. The farther the top layer's penalty
	// eats into that slack, the later the first block that can move up.
	// With the 17% penalty this yields the paper's Figure 5 assignment:
	// propagate blocks of bits {32:63} and sum blocks of bits {28:59} on top.
	propFirstTop := int(float64(blocks) * (0.25 + topSlowdown))
	sumFirstTop := int(float64(blocks) * (0.30 + topSlowdown/2))
	for k := 0; k < blocks; k++ {
		lo, hi := k*a.BlockSize, (k+1)*a.BlockSize-1
		layer := Bottom
		critical := k == 0 // bits {0:3} generate the critical carry
		if !critical && k >= propFirstTop {
			layer = Top
		}
		out = append(out, BlockAssignment{
			Block:    fmt.Sprintf("propagate[%d:%d]", lo, hi),
			Layer:    layer,
			Critical: critical,
		})
		// Sum blocks: the final sum (MSB end consumes the late carry) is
		// critical; a mid-range window has enough slack to move up.
		sumCritical := k == blocks-1
		sumLayer := Bottom
		if !sumCritical && k >= sumFirstTop {
			sumLayer = Top
		}
		out = append(out, BlockAssignment{
			Block:    fmt.Sprintf("sum[%d:%d]", lo, hi),
			Layer:    sumLayer,
			Critical: sumCritical,
		})
	}
	out = append(out, BlockAssignment{Block: "skip-mux-chain", Layer: Bottom, Critical: true})
	return out, nil
}

// TopFraction returns the fraction of blocks assigned to the top layer.
func TopFraction(assignments []BlockAssignment) float64 {
	if len(assignments) == 0 {
		return 0
	}
	top := 0
	for _, a := range assignments {
		if a.Layer == Top {
			top++
		}
	}
	return float64(top) / float64(len(assignments))
}

// CriticalOnBottom reports whether every critical block stays in the fast
// layer — the invariant of the hetero-layer logic technique (Table 7).
func CriticalOnBottom(assignments []BlockAssignment) bool {
	for _, a := range assignments {
		if a.Critical && a.Layer != Bottom {
			return false
		}
	}
	return true
}
