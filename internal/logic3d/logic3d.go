// Package logic3d models the partitioning of logic pipeline stages into two
// M3D layers (Sections 3.1, 4.1 and 4.4.1 of the paper): the 64-bit
// carry-skip adder with its results-bypass network, the slack-based
// assignment of non-critical gates to the slower top layer, and the issue
// select tree.
//
// The paper obtained its logic-stage numbers from M3D place-and-route tools
// (Lim et al. [39, 44]); this package substitutes an explicit gate+wire
// delay model of the same circuits, calibrated to the three published
// anchors: a two-layer M3D layout of one ALU plus bypass achieves a 15%
// higher frequency and a 41% smaller footprint, and four ALUs with bypass
// paths achieve a 28% higher frequency with 10% lower energy.
package logic3d

import (
	"errors"
	"math"

	"vertical3d/internal/tech"
	"vertical3d/internal/wire"
)

// CarrySkipAdder describes the paper's Figure 5 circuit: a 64-bit carry-skip
// adder built from 4-bit carry-propagate blocks, skip muxes, and sum blocks.
type CarrySkipAdder struct {
	Bits      int
	BlockSize int
}

// NewCarrySkipAdder returns the 64-bit, 4-bit-block adder of Figure 5.
func NewCarrySkipAdder() CarrySkipAdder {
	return CarrySkipAdder{Bits: 64, BlockSize: 4}
}

// Blocks returns the number of carry-propagate blocks.
func (a CarrySkipAdder) Blocks() int { return a.Bits / a.BlockSize }

// GateCount estimates the total gate count: per bit roughly 10 gates for
// propagate/generate/sum plus one skip mux per block.
func (a CarrySkipAdder) GateCount() int {
	return a.Bits*10 + a.Blocks()
}

// CriticalPathGates returns the number of gates on the critical path: one
// carry-propagate block, the chain of skip muxes, and the final sum block
// (Figure 5's shaded path).
func (a CarrySkipAdder) CriticalPathGates() int {
	return a.BlockSize*2 + (a.Blocks() - 1) + 3
}

// CriticalPathFraction is the share of gates on the zero-slack critical
// path. The paper's P&R run reports ≈1.5% for the 64-bit adder.
func (a CarrySkipAdder) CriticalPathFraction() float64 {
	return float64(a.CriticalPathGates()) / float64(a.GateCount())
}

// GateDelay returns the pure gate (zero-wire) delay of the adder at the
// node: the carry-propagate block, the skip-mux chain, and the final sum,
// expressed through FO4 delays.
func (a CarrySkipAdder) GateDelay(n *tech.Node) float64 {
	fo4 := n.FO4()
	propagate := float64(a.BlockSize) * 1.0 * fo4 // ripple within first block
	muxChain := float64(a.Blocks()-1) * 0.45 * fo4
	sum := 2.0 * fo4
	return propagate + muxChain + sum
}

// SlackFraction returns the fraction of the stage's gates whose slack is
// below the given fraction of the stage delay — i.e. the gates that cannot
// tolerate that much slowdown and must stay in the fast bottom layer. The
// paper's P&R data anchors two points: 1.5% of gates at zero slack and 38%
// at 20% slack; the model interpolates linearly between and beyond them.
func SlackFraction(slack float64) float64 {
	if slack < 0 {
		return 1
	}
	const atZero, at20 = 0.015, 0.38
	f := atZero + (at20-atZero)*(slack/0.20)
	return math.Min(1, f)
}

// MaxTopSlowdown returns the largest top-layer slowdown for which at least
// half of the gates remain non-critical, so a balanced two-layer partition
// exists that leaves the stage delay unchanged (Section 4.1.1's argument).
func MaxTopSlowdown() float64 {
	lo, hi := 0.0, 2.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if SlackFraction(mid) <= 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// CanHideTopSlowdown reports whether critical-path-aware placement can fully
// absorb the given top-layer slowdown without lengthening the stage.
func CanHideTopSlowdown(slowdown float64) bool {
	return SlackFraction(slowdown) <= 0.5
}

// StageResult summarises a logic stage in 2D and folded into two M3D layers.
type StageResult struct {
	NumALUs int

	// Delay2D and DelayM3D are the stage critical-path delays in seconds.
	Delay2D  float64
	DelayM3D float64

	// FreqGain is DelayM3D's frequency advantage: Delay2D/DelayM3D - 1.
	FreqGain float64

	// EnergySaving is the fractional switching-energy reduction of the M3D
	// layout (wire energy shrinks with the footprint).
	EnergySaving float64

	// FootprintSaving is the fractional footprint reduction of the
	// two-layer layout.
	FootprintSaving float64
}

// Calibration constants for the ALU+bypass stage wire model.
const (
	// aluHeight is the bypass-bus span contributed per ALU in the 2D layout.
	aluHeight = 140e-6
	// localWireBase is the intra-adder local wiring delay share at 22nm.
	localWireFrac = 0.30
	// m3dLocalWireReduction is the local-wire-length reduction M3D
	// floorplanners achieve (up to 25% [38, 44]).
	m3dLocalWireReduction = 0.25
	// m3dFootprintSaving is the footprint reduction of the two-layer layout
	// observed by the paper's P&R run.
	m3dFootprintSaving = 0.41
)

// ALUBypass models numALUs ALUs sharing a full results-bypass network, the
// stage the paper lays out with M3D P&R tools in Section 3.1. The bypass
// wire grows with the number of ALUs, and its delay contribution grows
// superlinearly, which is why the 4-ALU stage gains more from folding than
// the single ALU.
func ALUBypass(n *tech.Node, numALUs int) (StageResult, error) {
	if numALUs < 1 {
		return StageResult{}, errors.New("logic3d: need at least one ALU")
	}
	adder := NewCarrySkipAdder()
	gate := adder.GateDelay(n)
	local2D := gate * localWireFrac

	bypassDelay := func(span float64) float64 {
		w := wire.Wire{Node: n, Class: wire.SemiGlobal, Length: span}
		// The bypass bus is mux-loaded at every ALU, so repeaters cannot
		// fully linearise it; charge the raw Elmore delay with a strong
		// driver plus a mux per ALU.
		drv := n.RInv / 24
		muxes := float64(numALUs) * 0.5 * n.FO4()
		return w.ElmoreDelay(drv, 8*n.CInv) + muxes
	}

	span2D := float64(numALUs) * aluHeight
	d2d := gate + local2D + bypassDelay(span2D)

	// Folding halves the stage footprint; wire spans scale with the linear
	// dimension, and cross-layer adjacency shortens the bus further.
	linear := math.Sqrt(1 - m3dFootprintSaving)
	span3D := span2D * linear * 0.75
	local3D := local2D * (1 - m3dLocalWireReduction)
	d3d := gate + local3D + bypassDelay(span3D)

	// Energy: gates unchanged, wire energy scales with length.
	wireEnergy2D := wire.Wire{Node: n, Class: wire.SemiGlobal, Length: span2D}.Capacitance() +
		wire.Wire{Node: n, Class: wire.Local, Length: span2D * 2}.Capacitance()
	wireEnergy3D := wire.Wire{Node: n, Class: wire.SemiGlobal, Length: span3D}.Capacitance() +
		wire.Wire{Node: n, Class: wire.Local, Length: span2D * 2 * (1 - m3dLocalWireReduction)}.Capacitance()
	gateEnergy := float64(adder.GateCount()*numALUs) * 1.5 * n.CInv
	e2d := (gateEnergy + wireEnergy2D) * n.Vdd * n.Vdd
	e3d := (gateEnergy + wireEnergy3D) * n.Vdd * n.Vdd

	return StageResult{
		NumALUs:         numALUs,
		Delay2D:         d2d,
		DelayM3D:        d3d,
		FreqGain:        d2d/d3d - 1,
		EnergySaving:    1 - e3d/e2d,
		FootprintSaving: m3dFootprintSaving,
	}, nil
}

// SelectTree models the issue-stage selection logic of Section 4.4.1: a
// multi-level arbitration tree over the issue queue entries with a Request
// phase and a Grant phase split into local-grant and arbiter-grant parts.
type SelectTree struct {
	Entries int
	Radix   int
}

// NewSelectTree returns the select tree for an issue queue of the given
// size with radix-4 arbiters.
func NewSelectTree(entries int) SelectTree {
	return SelectTree{Entries: entries, Radix: 4}
}

// Levels returns the arbitration depth.
func (s SelectTree) Levels() int {
	if s.Entries <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(s.Entries)) / math.Log(float64(s.Radix))))
}

// Delay returns the select latency: request propagation up the tree plus
// grant propagation down, in seconds. The local-grant generation overlaps
// the arbiter-grant chain and is off the critical path.
func (s SelectTree) Delay(n *tech.Node) float64 {
	perLevel := 1.2 * n.FO4()
	return float64(2*s.Levels()) * perLevel
}

// HeteroDelay returns the select latency when the tree is split across
// hetero M3D layers per Section 4.4.1: the request phase and arbiter-grant
// generation stay in the bottom layer, the non-critical local-grant
// generation moves to the top layer. The critical path is unchanged, so the
// latency equals the iso-layer one.
func (s SelectTree) HeteroDelay(n *tech.Node) float64 {
	return s.Delay(n)
}

// DecodePlan captures the hetero-layer decode-stage partition of Section
// 4.1.2: simple decoders in the bottom layer at full speed; the complex
// decoder and µcode ROM in the top layer with one extra cycle.
type DecodePlan struct {
	SimpleDecoders      int
	ComplexExtraCycles  int
	ComplexDecoderOnTop bool
}

// HeteroDecodePlan returns the plan used by the M3D-Het configurations.
func HeteroDecodePlan() DecodePlan {
	return DecodePlan{SimpleDecoders: 4, ComplexExtraCycles: 1, ComplexDecoderOnTop: true}
}
