package accel

import (
	"testing"
	"testing/quick"

	"vertical3d/internal/tech"
)

const freq = 3.5e9

func TestVerticalLinkFarCheaper(t *testing.T) {
	n := tech.N22()
	flat, vert := SideBySide2D(), VerticalM3D()

	lf, err := flat.TransferLatencyCycles(n, 256, freq)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := vert.TransferLatencyCycles(n, 256, freq)
	if err != nil {
		t.Fatal(err)
	}
	if lv*3 > lf {
		t.Errorf("vertical transfer (%d cycles) should be several times faster than 2D (%d)", lv, lf)
	}

	ef, err := flat.TransferEnergy(n, 256)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := vert.TransferEnergy(n, 256)
	if err != nil {
		t.Fatal(err)
	}
	if ev*5 > ef {
		t.Errorf("vertical transfer energy (%.3gJ) should be far below 2D (%.3gJ)", ev, ef)
	}
}

func TestFineGrainOffloadOnlyProfitableInM3D(t *testing.T) {
	// Section 5: a small kernel (200 core cycles, 128B operands, 4x engine)
	// is not worth shipping across a 2D chip but pays off through MIVs.
	n := tech.N22()
	o := Offload{CoreCycles: 200, AccelFactor: 4, PayloadBytes: 128}

	ok2d, _, err := SideBySide2D().Profitable(n, o, freq)
	if err != nil {
		t.Fatal(err)
	}
	ok3d, gain, err := VerticalM3D().Profitable(n, o, freq)
	if err != nil {
		t.Fatal(err)
	}
	if ok2d {
		t.Error("a 200-cycle kernel should not be worth offloading across a 2D bus")
	}
	if !ok3d || gain <= 0 {
		t.Errorf("the vertical engine should make the same kernel profitable (gain %d)", gain)
	}
}

func TestBreakEvenOrdering(t *testing.T) {
	n := tech.N22()
	be2d, err := SideBySide2D().BreakEvenCycles(n, 128, 4, freq)
	if err != nil {
		t.Fatal(err)
	}
	be3d, err := VerticalM3D().BreakEvenCycles(n, 128, 4, freq)
	if err != nil {
		t.Fatal(err)
	}
	if be3d*3 > be2d {
		t.Errorf("M3D break-even (%d cycles) should be several times below 2D (%d)", be3d, be2d)
	}
	if be3d < 2 {
		t.Errorf("break-even %d implausibly small", be3d)
	}
}

func TestValidation(t *testing.T) {
	n := tech.N22()
	if _, err := SideBySide2D().TransferLatencyCycles(n, -1, freq); err == nil {
		t.Error("expected error for negative bytes")
	}
	if _, err := SideBySide2D().TransferLatencyCycles(n, 1, 0); err == nil {
		t.Error("expected error for zero frequency")
	}
	if _, err := (Integration{BusBits: 0}).TransferLatencyCycles(n, 1, freq); err == nil {
		t.Error("expected error for zero-width bus")
	}
	if _, err := SideBySide2D().TransferEnergy(n, -1); err == nil {
		t.Error("expected error for negative bytes")
	}
	if _, _, err := SideBySide2D().Profitable(n, Offload{CoreCycles: -1, AccelFactor: 2}, freq); err == nil {
		t.Error("expected error for negative work")
	}
	if _, err := SideBySide2D().BreakEvenCycles(n, 64, 1.0, freq); err == nil {
		t.Error("expected error for non-accelerating engine")
	}
}

func TestPropertyBiggerPayloadsRaiseBreakEven(t *testing.T) {
	n := tech.N22()
	f := func(seed uint8) bool {
		p := 16 + int(seed)*4
		a, err1 := VerticalM3D().BreakEvenCycles(n, p, 4, freq)
		b, err2 := VerticalM3D().BreakEvenCycles(n, p*4, 4, freq)
		return err1 == nil && err2 == nil && b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
