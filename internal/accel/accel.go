// Package accel models the "novel architectures" opportunity of Section 5:
// tightly integrating specialised engines with a general-purpose core. In
// 2D, an accelerator sits beside the core and communicates over a
// bandwidth-limited semi-global bus; in M3D it sits directly above the
// datapath and communicates through dense MIV arrays, enabling fine-grained
// offload that a 2D layout cannot make profitable.
package accel

import (
	"errors"
	"math"

	"vertical3d/internal/tech"
	"vertical3d/internal/wire"
)

// Integration describes the physical link between the core and the engine.
type Integration struct {
	Name string

	// BusBits is the link width in bits.
	BusBits int

	// WireLenM is the link's wire length (per bit) in meters.
	WireLenM float64

	// Via is the inter-layer via used by vertical integration; Vertical
	// selects whether the link crosses layers at all.
	Via      tech.Via
	Vertical bool

	// InvokeOverheadCycles is the fixed per-invocation cost: a loosely
	// coupled 2D engine needs doorbells, synchronisation and cache
	// interaction; a vertically coupled engine reads the datapath directly.
	InvokeOverheadCycles int
}

// SideBySide2D returns the conventional layout: the engine is a neighbouring
// block, reached by a 128-bit semi-global bus about a core-width away.
func SideBySide2D() Integration {
	return Integration{
		Name:                 "2D-side-by-side",
		BusBits:              128,
		WireLenM:             1.5e-3,
		InvokeOverheadCycles: 150,
	}
}

// VerticalM3D returns the M3D layout of Section 5: the engine occupies the
// top layer directly above the datapath; thousands of MIVs form a very wide
// link with essentially no horizontal wire.
func VerticalM3D() Integration {
	return Integration{
		Name:                 "M3D-vertical",
		BusBits:              4096,
		WireLenM:             20e-6, // short local hop to the MIV array
		Via:                  tech.MIV(),
		Vertical:             true,
		InvokeOverheadCycles: 4,
	}
}

// TransferLatencyCycles returns the cycles needed to move `bytes` of
// operands across the link at the given core frequency: serialisation over
// the bus width plus the wire/via flight time.
func (in Integration) TransferLatencyCycles(n *tech.Node, bytes int, freqHz float64) (int, error) {
	if bytes < 0 || freqHz <= 0 {
		return 0, errors.New("accel: bad transfer parameters")
	}
	if in.BusBits < 1 {
		return 0, errors.New("accel: bus needs at least one bit")
	}
	beats := int(math.Ceil(float64(bytes*8) / float64(in.BusBits)))
	w := wire.Wire{Node: n, Class: wire.SemiGlobal, Length: in.WireLenM}
	flight := wire.DelayOrRaw(w)
	if in.Vertical {
		flight += in.Via.DriveDelay(n.RInv/8, 4*n.CInv)
	}
	flightCycles := int(math.Ceil(flight * freqHz))
	if flightCycles < 1 {
		flightCycles = 1
	}
	return in.InvokeOverheadCycles + beats + flightCycles, nil
}

// TransferEnergy returns the joules needed to move `bytes` across the link.
func (in Integration) TransferEnergy(n *tech.Node, bytes int) (float64, error) {
	if bytes < 0 {
		return 0, errors.New("accel: negative byte count")
	}
	w := wire.Wire{Node: n, Class: wire.SemiGlobal, Length: in.WireLenM}
	perBit := w.SwitchEnergy(2*n.CInv) / 2 // half the bits toggle
	if in.Vertical {
		perBit += in.Via.SwitchEnergy(n.Vdd) / 2
	}
	return perBit * float64(bytes*8), nil
}

// Offload describes one candidate offload: a kernel of coreCycles work on
// the core that the engine executes accelFactor times faster, with
// payloadBytes of operands in and results out.
type Offload struct {
	CoreCycles   int
	AccelFactor  float64
	PayloadBytes int
}

// Profitable reports whether offloading wins over running on the core, and
// the net cycle gain.
func (in Integration) Profitable(n *tech.Node, o Offload, freqHz float64) (bool, int, error) {
	if o.CoreCycles < 0 || o.AccelFactor <= 0 {
		return false, 0, errors.New("accel: bad offload spec")
	}
	xfer, err := in.TransferLatencyCycles(n, 2*o.PayloadBytes, freqHz) // in + out
	if err != nil {
		return false, 0, err
	}
	accelCycles := int(math.Ceil(float64(o.CoreCycles) / o.AccelFactor))
	gain := o.CoreCycles - (accelCycles + xfer)
	return gain > 0, gain, nil
}

// BreakEvenCycles returns the smallest kernel size (in core cycles) for
// which offloading the given payload becomes profitable — the fine-grain
// acceleration threshold Section 5 argues M3D lowers dramatically.
func (in Integration) BreakEvenCycles(n *tech.Node, payloadBytes int, accelFactor, freqHz float64) (int, error) {
	if accelFactor <= 1 {
		return 0, errors.New("accel: acceleration factor must exceed 1")
	}
	xfer, err := in.TransferLatencyCycles(n, 2*payloadBytes, freqHz)
	if err != nil {
		return 0, err
	}
	// gain > 0  ⇔  W - W/F - xfer > 0  ⇔  W > xfer * F/(F-1).
	be := int(math.Ceil(float64(xfer) * accelFactor / (accelFactor - 1)))
	return be, nil
}
