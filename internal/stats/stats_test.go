package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if m, err := Mean([]float64{1, 2, 3}); err != nil || m != 2 {
		t.Errorf("mean = %v, %v", m, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestGeomean(t *testing.T) {
	g, err := Geomean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v, %v", g, err)
	}
	if _, err := Geomean([]float64{1, -1}); err == nil {
		t.Error("expected error for non-positive values")
	}
	if _, err := Geomean(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestMaxAndNormalize(t *testing.T) {
	if m, err := Max([]float64{3, 1, 2}); err != nil || m != 3 {
		t.Errorf("max = %v, %v", m, err)
	}
	if _, err := Max(nil); err == nil {
		t.Error("expected error for empty input")
	}
	n, err := Normalize([]float64{2, 4}, 2)
	if err != nil || n[0] != 1 || n[1] != 2 {
		t.Errorf("normalize = %v, %v", n, err)
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("expected error for zero base")
	}
}

func TestPropertyGeomeanLeqMean(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g, err1 := Geomean(xs)
		m, err2 := Mean(xs)
		return err1 == nil && err2 == nil && g <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
