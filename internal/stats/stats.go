// Package stats provides the small numeric helpers the experiment harness
// uses to aggregate per-benchmark results.
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: mean of empty slice")
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Geomean returns the geometric mean; all inputs must be positive.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: geomean of empty slice")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean needs positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Max returns the maximum.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Normalize divides each element by base.
func Normalize(xs []float64, base float64) ([]float64, error) {
	if base == 0 {
		return nil, errors.New("stats: normalise by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out, nil
}
