package config

import (
	"testing"

	"vertical3d/internal/tech"
)

func derive(t *testing.T) *Suite {
	t.Helper()
	s, err := Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable9Defaults(t *testing.T) {
	p := DefaultCore()
	if p.IssueWidth != 6 || p.DispatchWidth != 4 || p.CommitWidth != 4 {
		t.Errorf("widths must be 4/6/4, got %d/%d/%d", p.DispatchWidth, p.IssueWidth, p.CommitWidth)
	}
	if p.ROBSize != 192 || p.IQSize != 84 || p.LQSize != 72 || p.SQSize != 56 {
		t.Error("window sizes disagree with Table 9")
	}
	if p.IntRF != 160 || p.FPRF != 160 || p.BTBSize != 4096 || p.RASSize != 32 {
		t.Error("register/predictor sizes disagree with Table 9")
	}
	if p.LoadToUseCycles != 4 || p.BranchPenaltyCycles != 14 || p.DRAMLatencyNs != 50 {
		t.Error("latency parameters disagree with Table 9 / Section 6")
	}
	if p.IL1.SizeKB != 32 || p.DL1.SizeKB != 32 || p.L2.SizeKB != 256 || p.L3.SizeKB != 2048 {
		t.Error("cache sizes disagree with Table 9")
	}
}

func TestFrequencyOrdering(t *testing.T) {
	s := derive(t)
	f := func(d Design) float64 { return s.Configs[d].FreqGHz }
	if f(TSV3D) != f(Base) {
		t.Error("TSV3D must run at the Base frequency (Section 6.1)")
	}
	// Paper's Table 11 ordering: Base < HetNaive < Het < Iso ≤ HetAgg.
	if !(f(Base) < f(M3DHetNaive) && f(M3DHetNaive) < f(M3DHet) &&
		f(M3DHet) < f(M3DIso) && f(M3DIso) <= f(M3DHetAgg)) {
		t.Errorf("frequency ordering broken: base=%.2f naive=%.2f het=%.2f iso=%.2f agg=%.2f",
			f(Base), f(M3DHetNaive), f(M3DHet), f(M3DIso), f(M3DHetAgg))
	}
	// Frequency gains in a plausible band around the paper's 6-32%.
	gain := f(M3DHet)/f(Base) - 1
	if gain < 0.08 || gain > 0.35 {
		t.Errorf("M3D-Het frequency gain %.1f%% outside [8,35]%%", gain*100)
	}
}

func TestThreeDPathsShortened(t *testing.T) {
	s := derive(t)
	base := s.Configs[Base].Core
	for _, d := range []Design{TSV3D, M3DIso, M3DHet, M3DHetAgg, M3DHetNaive} {
		c := s.Configs[d].Core
		if c.LoadToUseCycles != base.LoadToUseCycles-1 {
			t.Errorf("%v: load-to-use %d, want %d", d, c.LoadToUseCycles, base.LoadToUseCycles-1)
		}
		if c.BranchPenaltyCycles != base.BranchPenaltyCycles-2 {
			t.Errorf("%v: branch penalty %d, want %d", d, c.BranchPenaltyCycles, base.BranchPenaltyCycles-2)
		}
	}
}

func TestHeteroDecodePenaltyOnlyOnHetDesigns(t *testing.T) {
	s := derive(t)
	for _, d := range []Design{M3DHet, M3DHetAgg, M3DHetNaive} {
		if s.Configs[d].Core.ComplexDecodeExtra != 1 {
			t.Errorf("%v must pay the complex-decode cycle (Section 4.1.2)", d)
		}
	}
	for _, d := range []Design{Base, TSV3D, M3DIso} {
		if s.Configs[d].Core.ComplexDecodeExtra != 0 {
			t.Errorf("%v must not pay the complex-decode cycle", d)
		}
	}
}

func TestEnergyFactorsSane(t *testing.T) {
	s := derive(t)
	for _, d := range SingleCoreDesigns() {
		f := s.Configs[d].EnergyFactors
		for name, v := range map[string]float64{"SRAM": f.SRAM, "Logic": f.Logic, "Clock": f.Clock, "Wire": f.Wire, "Leakage": f.Leakage} {
			if v <= 0 || v > 1.0001 {
				t.Errorf("%v %s factor %v outside (0,1]", d, name, v)
			}
		}
	}
	// M3D saves more than TSV3D in every category.
	m3d := s.Configs[M3DHet].EnergyFactors
	tsv := s.Configs[TSV3D].EnergyFactors
	if m3d.SRAM >= tsv.SRAM || m3d.Clock >= tsv.Clock {
		t.Errorf("M3D must beat TSV3D on SRAM/clock energy: %+v vs %+v", m3d, tsv)
	}
}

func TestMulticoreConfigs(t *testing.T) {
	s := derive(t)
	mcs := DeriveMulticore(s)
	if len(mcs) != 5 {
		t.Fatalf("expected 5 multicore designs, got %d", len(mcs))
	}
	if mcs[MCBase].Cores != 4 || mcs[MCHet2X].Cores != 8 {
		t.Error("core counts: Base=4, Het-2X=8 (Section 6.1)")
	}
	if mcs[MCBase].SharedL2 || !mcs[MCHet].SharedL2 {
		t.Error("3D multicores share L2s; Base does not (Figure 4)")
	}
	if mcs[MCHetW].PerCore.Core.IssueWidth != 8 {
		t.Errorf("Het-W issue width %d, want 8", mcs[MCHetW].PerCore.Core.IssueWidth)
	}
	if mcs[MCHetW].PerCore.FreqGHz != mcs[MCBase].PerCore.FreqGHz {
		t.Error("Het-W runs at Base frequency")
	}
	if mcs[MCHet2X].PerCore.Vdd >= mcs[MCBase].PerCore.Vdd {
		t.Error("Het-2X lowers Vdd by 50mV")
	}
	if mcs[MCHet].RouterHopCycles >= mcs[MCBase].RouterHopCycles {
		t.Error("shared router stops must shorten hops")
	}
	for d, mc := range mcs {
		if mc.Name != d.String() {
			t.Errorf("config name %q != design %q", mc.Name, d)
		}
	}
}

func TestDesignStrings(t *testing.T) {
	if Base.String() != "Base" || M3DHet.String() != "M3D-Het" || MCHet2X.String() != "M3D-Het-2X" {
		t.Error("design names wrong")
	}
	if len(SingleCoreDesigns()) != 6 || len(MulticoreDesigns()) != 5 {
		t.Error("design lists wrong length")
	}
	if Base.Is3D() || !TSV3D.Is3D() || !M3DHet.Is3D() {
		t.Error("Is3D misclassifies")
	}
}

func TestExtensionDesigns(t *testing.T) {
	s := derive(t)
	lp := s.Configs[M3DHetLP]
	het := s.Configs[M3DHet]
	if lp.FreqGHz != het.FreqGHz {
		t.Error("M3D-Het-LP runs at M3D-Het's frequency (Section 7.1.2)")
	}
	if lp.EnergyFactors.SRAM >= het.EnergyFactors.SRAM ||
		lp.EnergyFactors.Leakage >= het.EnergyFactors.Leakage {
		t.Error("the FDSOI top layer must lower the energy factors")
	}
	isoAgg := s.Configs[M3DIsoAgg]
	if isoAgg.FreqGHz < s.Configs[M3DIso].FreqGHz {
		t.Error("M3D-IsoAgg is limited by fewer structures, so it cannot be slower than M3D-Iso")
	}
	if M3DIsoAgg.String() != "M3D-IsoAgg" || M3DHetLP.String() != "M3D-Het-LP" {
		t.Error("extension design names wrong")
	}
}
